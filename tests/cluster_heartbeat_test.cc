// Heartbeat failure-detector edge cases, driven through the probe
// workload (heapless checksum stages with a scripted mid-stage
// self-kill):
//   1. lost heartbeats with a healthy executor — probes succeed, nobody
//      is killed;
//   2. a real mid-stage death — the stage's partial results are
//      quarantined, the replacement is fast-forwarded, the checksum is
//      bit-identical;
//   3. the replacement dies too — retries exhaust and the job fails
//      loudly instead of merging partial state.

#include <gtest/gtest.h>

#include <cstdlib>

#include "fault/task_failure.h"
#include "spark/config.h"
#include "spark/dist.h"
#include "workloads/dist_entry.h"

namespace deca {
namespace {

spark::SparkConfig Config(spark::DistMode mode) {
  spark::SparkConfig cfg;
  cfg.num_executors = 2;
  cfg.partitions_per_executor = 2;
  cfg.heap.heap_bytes = 32u << 20;
  cfg.dist_mode = mode;
  cfg.cluster.heartbeat_interval_ms = 10;
  cfg.cluster.heartbeat_miss_threshold = 2;
  cfg.cluster.reconnect_probes = 2;
  cfg.cluster.retry_backoff_base_ms = 5;
  return cfg;
}

workloads::ProbeParams BaseProbe(spark::DistMode mode) {
  workloads::ProbeParams p;
  p.stages = 3;
  p.items_per_partition = 1u << 20;  // long enough to span monitor ticks
  p.spark = Config(mode);
  return p;
}

TEST(ClusterHeartbeatTest, LostHeartbeatsWithHealthyExecutorNoKill) {
  workloads::ProbeResult base =
      workloads::RunDistProbe(BaseProbe(spark::DistMode::kInProcess));
  ASSERT_NE(base.checksum, 0u);

  // The driver monitor pretends executor 1's next pings were lost. The
  // misses cross the threshold, the backoff probes run — and succeed,
  // because the daemon is perfectly healthy. A lost heartbeat alone must
  // never kill an executor.
  workloads::ProbeParams p = BaseProbe(spark::DistMode::kProcess);
  p.spark.cluster.test_suppress_heartbeats_executor = 1;
  p.spark.cluster.test_suppress_heartbeats_count = 2;
  workloads::ProbeResult r = workloads::RunDistProbe(p);

  EXPECT_EQ(r.checksum, base.checksum);
  ASSERT_TRUE(r.run.dist_active);
  EXPECT_GE(r.run.cluster.heartbeat_misses, 2u);
  EXPECT_GE(r.run.cluster.reconnect_probes, 1u);
  EXPECT_EQ(r.run.cluster.executors_declared_dead, 0u);
  EXPECT_EQ(r.run.cluster.executors_killed, 0u);
  EXPECT_EQ(r.run.cluster.executors_respawned, 0u);
  EXPECT_EQ(r.run.cluster.stage_quarantines, 0u);
  EXPECT_EQ(r.run.executor_wipes, 0u);
}

TEST(ClusterHeartbeatTest, MidStageDeathQuarantinesAndRecovers) {
  workloads::ProbeResult base =
      workloads::RunDistProbe(BaseProbe(spark::DistMode::kInProcess));

  // Generation 0 of executor 1 self-kills (_exit) the instant it starts
  // task 1 of stage 1 — a mid-stage death with partial results already
  // returned for stage 1. Those partials must be discarded (quarantined),
  // the respawned generation fast-forwarded, and the stage retried to the
  // same checksum.
  workloads::ProbeParams p = BaseProbe(spark::DistMode::kProcess);
  p.die_stage = 1;
  p.die_partition = 1;  // partition 1 -> executor 1
  p.die_generations = 1;
  workloads::ProbeResult r = workloads::RunDistProbe(p);

  EXPECT_EQ(r.checksum, base.checksum);
  ASSERT_TRUE(r.run.dist_active);
  EXPECT_EQ(r.run.cluster.executors_declared_dead, 1u);
  EXPECT_EQ(r.run.cluster.executors_respawned, 1u);
  EXPECT_GE(r.run.cluster.stage_quarantines, 1u);
  // Nobody ordered this kill; the daemon died on its own.
  EXPECT_EQ(r.run.cluster.executors_killed, 0u);
  // Lost-executor bookkeeping mirrors a crash-wipe.
  EXPECT_EQ(r.run.executor_wipes, 1u);
}

TEST(ClusterHeartbeatTest, ReplacementDyingTooFailsTheJob) {
  // Generations 0 AND 1 self-kill at the same task; two stage attempts
  // are all max_task_failures=2 allows, so the job must fail with the
  // executor-lost error — never silently merge a partial stage.
  workloads::ProbeParams p = BaseProbe(spark::DistMode::kProcess);
  p.die_stage = 1;
  p.die_partition = 1;
  p.die_generations = 2;
  p.spark.max_task_failures = 2;
  EXPECT_THROW(workloads::RunDistProbe(p), fault::ExecutorLostError);
}

}  // namespace
}  // namespace deca
