#include <gtest/gtest.h>

#include "workloads/kmeans.h"
#include "workloads/lr.h"

namespace deca::workloads {
namespace {

MlParams SmallParams(Mode mode) {
  MlParams p;
  p.dims = 10;
  p.num_points = 20000;
  p.iterations = 3;
  p.mode = mode;
  p.spark.num_executors = 2;
  p.spark.partitions_per_executor = 2;
  p.spark.heap.heap_bytes = 48u << 20;
  p.spark.spill_dir = "/tmp/deca_test_spill_ml";
  return p;
}

TEST(LrTypesTest, ClassifiesAsSfstWithLayout) {
  jvm::ClassRegistry registry;
  LrTypes types(&registry, 10);
  EXPECT_EQ(types.classified(), analysis::SizeType::kStaticFixed);
  EXPECT_EQ(types.layout().static_size(), 8u + 80u);
  EXPECT_EQ(types.layout().field("label").offset, 0u);
  EXPECT_EQ(types.layout().field("features.data").offset, 8u);
}

TEST(LrTypesTest, RecordOpsRoundTrips) {
  jvm::ClassRegistry registry;
  LrTypes types(&registry, 4);
  jvm::HeapConfig hc;
  hc.heap_bytes = 8u << 20;
  jvm::Heap heap(hc, &registry);
  jvm::HandleScope scope(&heap);
  double feats[4] = {1.0, -2.5, 3.25, 0.0};
  jvm::Handle lp = scope.Make(types.NewLabeledPoint(&heap, 1.0, feats));

  // Serialize -> deserialize.
  ByteWriter w;
  types.ops().serialize(&heap, lp.get(), &w);
  ByteReader r(w.data(), w.size());
  jvm::Handle lp2 = scope.Make(types.ops().deserialize(&heap, &r));
  EXPECT_EQ(heap.GetField<double>(lp2.get(), types.lp_label_off()), 1.0);

  // Decompose -> reconstruct.
  std::vector<uint8_t> seg(types.ops().deca_bytes(&heap, lp.get()));
  types.ops().decompose(&heap, lp.get(), seg.data());
  EXPECT_EQ(LoadRaw<double>(seg.data()), 1.0);
  EXPECT_EQ(LoadRaw<double>(seg.data() + 8 + 16), 3.25);
  jvm::Handle lp3 = scope.Make(types.ops().reconstruct(&heap, seg.data()));
  jvm::ObjRef dv = heap.GetRefField(lp3.get(), types.lp_features_off());
  jvm::ObjRef data = heap.GetRefField(dv, types.dv_data_off());
  for (uint32_t j = 0; j < 4; ++j) {
    EXPECT_EQ(heap.GetElem<double>(data, j), feats[j]);
  }
}

TEST(LrWorkloadTest, AllModesComputeIdenticalWeights) {
  LrResult spark = RunLogisticRegression(SmallParams(Mode::kSpark));
  LrResult ser = RunLogisticRegression(SmallParams(Mode::kSparkSer));
  LrResult deca = RunLogisticRegression(SmallParams(Mode::kDeca));
  ASSERT_EQ(spark.weights.size(), 10u);
  for (size_t j = 0; j < spark.weights.size(); ++j) {
    EXPECT_DOUBLE_EQ(spark.weights[j], ser.weights[j]) << "dim " << j;
    EXPECT_DOUBLE_EQ(spark.weights[j], deca.weights[j]) << "dim " << j;
  }
  EXPECT_GT(spark.run.exec_ms, 0.0);
  EXPECT_GT(deca.run.exec_ms, 0.0);
}

TEST(LrWorkloadTest, DecaCachesFewerBytesThanSpark) {
  LrResult spark = RunLogisticRegression(SmallParams(Mode::kSpark));
  LrResult deca = RunLogisticRegression(SmallParams(Mode::kDeca));
  EXPECT_LT(deca.run.cached_mb, spark.run.cached_mb);
}

TEST(LrWorkloadTest, ProfileSeriesRecorded) {
  MlParams p = SmallParams(Mode::kSpark);
  p.profile = true;
  LrResult r = RunLogisticRegression(p);
  ASSERT_EQ(r.run.object_counts.size(), 3u);  // one sample per iteration
  // Cached LabeledPoint count stays stable across iterations (they are
  // long-living — paper Figure 9a).
  EXPECT_GT(r.run.object_counts.values[0], 0.0);
  EXPECT_EQ(r.run.object_counts.values[0], r.run.object_counts.values[2]);
}

TEST(KMeansWorkloadTest, AllModesComputeIdenticalCenters) {
  MlParams p = SmallParams(Mode::kSpark);
  p.clusters = 4;
  KMeansResult spark = RunKMeans(p);
  p.mode = Mode::kSparkSer;
  KMeansResult ser = RunKMeans(p);
  p.mode = Mode::kDeca;
  KMeansResult deca = RunKMeans(p);
  ASSERT_EQ(spark.centers.size(), 4u);
  for (size_t c = 0; c < spark.centers.size(); ++c) {
    for (size_t j = 0; j < spark.centers[c].size(); ++j) {
      EXPECT_NEAR(spark.centers[c][j], ser.centers[c][j], 1e-9);
      EXPECT_NEAR(spark.centers[c][j], deca.centers[c][j], 1e-9);
    }
  }
}

TEST(KMeansWorkloadTest, CentersConvergeNearClusterMeans) {
  MlParams p = SmallParams(Mode::kDeca);
  p.clusters = 4;
  p.iterations = 5;
  KMeansResult r = RunKMeans(p);
  // Generated clusters sit at (c*10, ...); centers should land near them.
  std::vector<bool> found(4, false);
  for (const auto& center : r.centers) {
    for (int c = 0; c < 4; ++c) {
      bool near = true;
      for (double v : center) {
        if (std::abs(v - c * 10.0) > 2.0) near = false;
      }
      if (near) found[static_cast<size_t>(c)] = true;
    }
  }
  for (int c = 0; c < 4; ++c) EXPECT_TRUE(found[static_cast<size_t>(c)]);
}

}  // namespace
}  // namespace deca::workloads
