// Native arena page-allocator tests (src/alloc): size-class geometry,
// slab pooling and write integrity, the direct-map path, counting parity
// between arena and fallback modes, all three huge-page rungs (including
// the forced MAP_HUGETLB -> plain-mmap fallback), cross-thread frees and
// shard steals, the crash-wipe zero-leak invariant, and the engine-level
// DECA_ARENA=0|1 equivalence matrix (digests, GC counts, fault counters,
// and alloc counters bit-identical across seeds, thread counts, and the
// in-process vs one-daemon-per-executor backends).

#include <gtest/gtest.h>

#include <cstring>
#include <thread>
#include <vector>

#include "alloc/arena.h"
#include "alloc/page_allocator.h"
#include "core/page.h"
#include "jvm/class_registry.h"
#include "jvm/heap.h"
#include "spark/config.h"
#include "workloads/wordcount.h"

namespace deca {
namespace {

alloc::ArenaOptions EnabledOptions() {
  alloc::ArenaOptions o;
  o.enabled = true;
  return o;
}

TEST(ArenaAllocatorTest, SizeClassGeometry) {
  using A = alloc::ArenaAllocator;
  EXPECT_EQ(A::SizeClass(1), 0);
  EXPECT_EQ(A::SizeClass(64), 0);
  EXPECT_EQ(A::SizeClass(65), 1);
  EXPECT_EQ(A::SizeClass(128), 1);
  EXPECT_EQ(A::SizeClass(4u << 20), A::kNumClasses - 1);
  EXPECT_EQ(A::SizeClass((4u << 20) + 1), -1);
  size_t prev = 0;
  for (int c = 0; c < A::kNumClasses; ++c) {
    size_t bytes = A::ClassBytes(c);
    EXPECT_EQ(bytes & (bytes - 1), 0u) << "class " << c << " not pow2";
    EXPECT_GT(bytes, prev);
    prev = bytes;
  }
  EXPECT_EQ(A::ClassBytes(0), A::kMinClassBytes);
  EXPECT_EQ(A::ClassBytes(A::kNumClasses - 1), A::kMaxClassBytes);
}

TEST(ArenaAllocatorTest, SlabReuseAndWriteIntegrity) {
  alloc::ArenaAllocator arena(EnabledOptions());
  alloc::PageAllocator pa(&arena, /*shards=*/1);
  alloc::Block a = pa.Allocate(40000);
  ASSERT_TRUE(a.valid());
  EXPECT_EQ(a.kind, alloc::Block::kSlab);
  EXPECT_GE(a.cap, a.size);
  EXPECT_EQ(a.size, 40000u);
  std::memset(a.data, 0xab, a.size);
  EXPECT_EQ(a.data[0], 0xab);
  EXPECT_EQ(a.data[a.size - 1], 0xab);
  uint8_t* first = a.data;
  pa.Free(&a);
  EXPECT_FALSE(a.valid());

  // Same class again: the slab comes off this thread's shard stack.
  alloc::Block b = pa.Allocate(50000);
  EXPECT_EQ(b.data, first);
  pa.Free(&b);
  alloc::AllocStats s = pa.Stats();
  EXPECT_EQ(s.alloc_calls, 2u);
  EXPECT_EQ(s.free_calls, 2u);
  EXPECT_EQ(s.bytes_requested, 90000u);
  EXPECT_GE(s.slab_reuses, 1u);
}

TEST(ArenaAllocatorTest, DirectMapPathAboveMaxClass) {
  alloc::ArenaAllocator arena(EnabledOptions());
  alloc::PageAllocator pa(&arena, /*shards=*/1);
  const size_t big = (4u << 20) + 4096;
  alloc::Block b = pa.Allocate(big);
  ASSERT_TRUE(b.valid());
  EXPECT_EQ(b.kind, alloc::Block::kDirect);
  // Fresh anonymous mapping: zero-filled.
  EXPECT_EQ(b.data[0], 0);
  EXPECT_EQ(b.data[big - 1], 0);
  b.data[big - 1] = 7;
  pa.Free(&b);
  alloc::AllocStats s = pa.Stats();
  EXPECT_EQ(s.direct_maps, 1u);
  EXPECT_EQ(s.direct_unmaps, 1u);
  EXPECT_TRUE(arena.AllSlabsReturned());
}

// The determinism contract: an identical request sequence produces
// identical alloc_calls/free_calls/bytes_requested whether the arena backs
// the blocks or new[] does.
TEST(ArenaAllocatorTest, FallbackModeCountsIdentically) {
  alloc::ArenaAllocator arena(EnabledOptions());
  alloc::PageAllocator on(&arena, /*shards=*/2);
  alloc::ArenaOptions off_opts;  // enabled == false
  alloc::PageAllocator off(off_opts, /*shards=*/2);
  EXPECT_TRUE(on.arena_active());
  EXPECT_FALSE(off.arena_active());

  const size_t sizes[] = {100, 4096, 70000, 1u << 20, (4u << 20) + 1};
  for (alloc::PageAllocator* pa : {&on, &off}) {
    std::vector<alloc::Block> live;
    for (size_t n : sizes) live.push_back(pa->Allocate(n));
    for (auto& b : live) {
      ASSERT_TRUE(b.valid());
      b.data[0] = 1;  // every mode hands out writable memory
      pa->Free(&b);
    }
    pa->NoteAlloc(12345);
    pa->NoteFree();
  }
  alloc::AllocStats a = on.Stats();
  alloc::AllocStats f = off.Stats();
  EXPECT_EQ(a.alloc_calls, f.alloc_calls);
  EXPECT_EQ(a.free_calls, f.free_calls);
  EXPECT_EQ(a.bytes_requested, f.bytes_requested);
  // The environment-dependent plane differs by design: the fallback never
  // touches slabs or mappings.
  EXPECT_EQ(f.slab_allocs + f.slab_reuses + f.direct_maps, 0u);
}

TEST(ArenaAllocatorTest, HugePageModesAllServeWritableMemory) {
  for (alloc::HugePageMode mode :
       {alloc::HugePageMode::kOff, alloc::HugePageMode::kMadvise,
        alloc::HugePageMode::kHugetlb}) {
    SCOPED_TRACE(alloc::HugePageModeName(mode));
    alloc::ArenaOptions o = EnabledOptions();
    o.huge_pages = mode;  // kHugetlb must fall back when no hugetlb pool
    alloc::ArenaAllocator arena(o);
    alloc::PageAllocator pa(&arena, /*shards=*/1);
    alloc::Block b = pa.Allocate(256u << 10);
    ASSERT_TRUE(b.valid());
    std::memset(b.data, 0x5a, b.size);
    EXPECT_EQ(b.data[b.size - 1], 0x5a);
    pa.Free(&b);
    alloc::AllocStats s;
    arena.AddGlobalStats(&s);
    EXPECT_GE(s.chunks_mapped, 1u);
    EXPECT_GE(s.arena_bytes_reserved, o.chunk_bytes);
  }
}

TEST(ArenaAllocatorTest, RemoteFreesAndShardSteals) {
  alloc::ArenaAllocator arena(EnabledOptions());
  alloc::PageAllocator pa(&arena, /*shards=*/2);
  constexpr int kBlocks = 16;
  std::vector<alloc::Block> blocks(kBlocks);

  // Thread A allocates (registers shard 0), thread B frees (shard 1):
  // every free is remote, and B's subsequent allocations drain what A's
  // blocks left on B's stack, then raid A's shard.
  std::thread alloc_thread([&] {
    for (auto& b : blocks) {
      b = pa.Allocate(64u << 10);
      b.data[0] = 1;
    }
  });
  alloc_thread.join();
  std::thread free_thread([&] {
    for (auto& b : blocks) pa.Free(&b);
    // Re-allocate more than this shard holds to force a steal or a carve.
    std::vector<alloc::Block> again(kBlocks);
    for (auto& b : again) b = pa.Allocate(64u << 10);
    for (auto& b : again) pa.Free(&b);
  });
  free_thread.join();

  alloc::AllocStats s = pa.Stats();
  EXPECT_EQ(s.alloc_calls, 2u * kBlocks);
  EXPECT_EQ(s.free_calls, 2u * kBlocks);
  EXPECT_GE(s.remote_frees, static_cast<uint64_t>(kBlocks));
  EXPECT_GE(s.slab_reuses, static_cast<uint64_t>(kBlocks));
}

// Crash-wipe path: Heap::Reset() wipes the simulated heap in place (the
// arena block stays checked out for the heap's lifetime), and tearing the
// heap + allocator down returns every slab — the zero-leak invariant
// ASan enforces on this whole binary.
TEST(ArenaAllocatorTest, CrashWipeAndTeardownLeakNothing) {
  alloc::ArenaAllocator arena(EnabledOptions());
  {
    alloc::PageAllocator pa(&arena, /*shards=*/1);
    jvm::ClassRegistry registry;
    jvm::HeapConfig hc;
    hc.heap_bytes = 8u << 20;
    hc.page_allocator = &pa;
    jvm::Heap heap(hc, &registry);
    {
      core::PageGroup pages(&heap, 16u << 10);
      for (int i = 0; i < 1000; ++i) pages.Append(64);
      EXPECT_GT(pages.page_count(), 0u);
    }
    heap.Reset();  // executor crash-wipe
    // Post-wipe the heap is reusable and still arena-backed.
    core::PageGroup after(&heap, 16u << 10);
    after.Append(64);
  }
  EXPECT_TRUE(arena.AllSlabsReturned());
}

spark::SparkConfig ArenaConfig(bool arena_on, int threads,
                               spark::DistMode mode) {
  spark::SparkConfig cfg;
  cfg.num_executors = 2;
  cfg.partitions_per_executor = 2;
  cfg.heap.heap_bytes = 32u << 20;
  cfg.num_worker_threads = threads;
  cfg.dist_mode = mode;
  cfg.arena.enabled = arena_on;
  cfg.cluster.heartbeat_interval_ms = 20;
  cfg.cluster.heartbeat_miss_threshold = 2;
  cfg.cluster.reconnect_probes = 2;
  cfg.cluster.retry_backoff_base_ms = 5;
  return cfg;
}

workloads::WordCountResult Wc(bool arena_on, int threads, uint64_t seed,
                              spark::DistMode mode,
                              workloads::Mode wmode) {
  workloads::WordCountParams p;
  p.total_words = 1u << 15;
  p.distinct_keys = 500;
  p.seed = seed;
  p.mode = wmode;
  p.spark = ArenaConfig(arena_on, threads, mode);
  return workloads::RunWordCount(p);
}

void ExpectSameResult(const workloads::WordCountResult& a,
                      const workloads::WordCountResult& b) {
  EXPECT_EQ(a.total_count, b.total_count);
  EXPECT_EQ(a.distinct_found, b.distinct_found);
  EXPECT_EQ(a.shuffle_bytes, b.shuffle_bytes);
  EXPECT_EQ(a.run.minor_gcs, b.run.minor_gcs);
  EXPECT_EQ(a.run.full_gcs, b.run.full_gcs);
  EXPECT_EQ(a.run.task_retries, b.run.task_retries);
  EXPECT_EQ(a.run.injected_faults, b.run.injected_faults);
  EXPECT_EQ(a.run.oom_recoveries, b.run.oom_recoveries);
  EXPECT_EQ(a.run.pressure_evictions, b.run.pressure_evictions);
  // The allocator's deterministic plane is part of the contract too.
  EXPECT_EQ(a.run.alloc.alloc_calls, b.run.alloc.alloc_calls);
  EXPECT_EQ(a.run.alloc.free_calls, b.run.alloc.free_calls);
  EXPECT_EQ(a.run.alloc.bytes_requested, b.run.alloc.bytes_requested);
}

TEST(ArenaEngineTest, ArenaOffOnEquivalenceMatrix) {
  for (uint64_t seed : {7u, 8u}) {
    for (int threads : {0, 2}) {
      for (workloads::Mode wmode :
           {workloads::Mode::kSpark, workloads::Mode::kDeca}) {
        SCOPED_TRACE(testing::Message()
                     << "seed=" << seed << " threads=" << threads
                     << " mode=" << workloads::ModeName(wmode));
        workloads::WordCountResult off =
            Wc(false, threads, seed, spark::DistMode::kInProcess, wmode);
        workloads::WordCountResult on =
            Wc(true, threads, seed, spark::DistMode::kInProcess, wmode);
        EXPECT_FALSE(off.run.alloc_arena);
        EXPECT_TRUE(on.run.alloc_arena);
        EXPECT_TRUE(on.run.alloc_active);
        EXPECT_GT(on.run.alloc.alloc_calls, 0u);
        ExpectSameResult(off, on);
      }
    }
  }
}

TEST(ArenaEngineTest, ArenaProcessModeMatchesInProcess) {
  workloads::WordCountResult local =
      Wc(true, 0, 7, spark::DistMode::kInProcess, workloads::Mode::kDeca);
  workloads::WordCountResult proc =
      Wc(true, 0, 7, spark::DistMode::kProcess, workloads::Mode::kDeca);
  ASSERT_TRUE(proc.run.dist_active);
  ExpectSameResult(local, proc);
}

// After every context above has been torn down, the process-global arena
// must hold every slab it ever carved — nothing checked out, nothing lost.
TEST(ArenaEngineTest, ZGlobalArenaZeroLeakAfterAllRuns) {
  alloc::ArenaAllocator* global = alloc::ArenaAllocator::GlobalIfCreated();
  ASSERT_NE(global, nullptr);  // the equivalence matrix created it
  EXPECT_TRUE(global->AllSlabsReturned());
}

}  // namespace
}  // namespace deca
