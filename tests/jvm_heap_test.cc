#include <gtest/gtest.h>

#include "jvm/class_registry.h"
#include "jvm/heap.h"
#include "jvm/heap_profiler.h"

namespace deca::jvm {
namespace {

class HeapTest : public ::testing::Test {
 protected:
  HeapTest() {
    node_class_ = registry_.RegisterClass(
        "Node", {{"value", FieldKind::kDouble}, {"next", FieldKind::kRef}});
    HeapConfig cfg;
    cfg.heap_bytes = 8u << 20;
    heap_ = std::make_unique<Heap>(cfg, &registry_);
  }

  ClassRegistry registry_;
  uint32_t node_class_;
  std::unique_ptr<Heap> heap_;
};

TEST_F(HeapTest, ClassLayout) {
  const ClassInfo& node = registry_.Get(node_class_);
  EXPECT_EQ(node.FieldOffset("value"), 0u);
  EXPECT_EQ(node.FieldOffset("next"), 8u);
  EXPECT_EQ(node.payload_bytes(), 16u);
  EXPECT_EQ(node.ObjectBytes(0), kHeaderBytes + 16u);
  EXPECT_EQ(node.ref_offsets().size(), 1u);
  EXPECT_EQ(node.ref_offsets()[0], 8u);
}

TEST_F(HeapTest, ArrayLayout) {
  const ClassInfo& darr = registry_.Get(registry_.double_array_class());
  EXPECT_TRUE(darr.is_array());
  EXPECT_EQ(darr.ObjectBytes(10), kHeaderBytes + 80u);
  // Odd-length byte arrays pad to 8.
  const ClassInfo& barr = registry_.Get(registry_.byte_array_class());
  EXPECT_EQ(barr.ObjectBytes(13), kHeaderBytes + 16u);
}

TEST_F(HeapTest, FieldOffsetAlignment) {
  uint32_t c = registry_.RegisterClass(
      "Mixed", {{"flag", FieldKind::kBool},
                {"count", FieldKind::kInt},
                {"weight", FieldKind::kDouble},
                {"tag", FieldKind::kByte}});
  const ClassInfo& ci = registry_.Get(c);
  EXPECT_EQ(ci.FieldOffset("flag"), 0u);
  EXPECT_EQ(ci.FieldOffset("count"), 4u);
  EXPECT_EQ(ci.FieldOffset("weight"), 8u);
  EXPECT_EQ(ci.FieldOffset("tag"), 16u);
  EXPECT_EQ(ci.payload_bytes(), 24u);
}

TEST_F(HeapTest, AllocateAndAccessInstance) {
  ObjRef n = heap_->AllocateInstance(node_class_);
  ASSERT_NE(n, kNullRef);
  const ClassInfo& ci = registry_.Get(node_class_);
  EXPECT_EQ(heap_->GetField<double>(n, ci.FieldOffset("value")), 0.0);
  heap_->SetField<double>(n, ci.FieldOffset("value"), 2.5);
  EXPECT_EQ(heap_->GetField<double>(n, ci.FieldOffset("value")), 2.5);
  EXPECT_EQ(heap_->GetRefField(n, ci.FieldOffset("next")), kNullRef);
}

TEST_F(HeapTest, AllocateAndAccessArray) {
  ObjRef a = heap_->AllocateArray(registry_.double_array_class(), 16);
  EXPECT_EQ(heap_->ArrayLength(a), 16u);
  for (uint32_t i = 0; i < 16; ++i) {
    EXPECT_EQ(heap_->GetElem<double>(a, i), 0.0);
    heap_->SetElem<double>(a, i, i * 1.5);
  }
  for (uint32_t i = 0; i < 16; ++i) {
    EXPECT_EQ(heap_->GetElem<double>(a, i), i * 1.5);
  }
}

TEST_F(HeapTest, HandleSurvivesMinorGc) {
  HandleScope scope(heap_.get());
  Handle h = scope.Make(heap_->AllocateInstance(node_class_));
  heap_->SetField<double>(h.get(), 0, 42.0);
  ObjRef before = h.get();
  heap_->CollectMinor();
  // The object moved (copying GC) but the handle was updated.
  EXPECT_NE(h.get(), before);
  EXPECT_EQ(heap_->GetField<double>(h.get(), 0), 42.0);
}

TEST_F(HeapTest, UnrootedObjectIsCollected) {
  uint64_t before = heap_->CountInstances(node_class_);
  heap_->AllocateInstance(node_class_);
  EXPECT_EQ(heap_->CountInstances(node_class_), before + 1);
  heap_->CollectMinor();
  EXPECT_EQ(heap_->CountInstances(node_class_), before);
}

TEST_F(HeapTest, LinkedStructureSurvivesFullGc) {
  const ClassInfo& ci = registry_.Get(node_class_);
  uint32_t off_value = ci.FieldOffset("value");
  uint32_t off_next = ci.FieldOffset("next");
  HandleScope scope(heap_.get());
  Handle head = scope.Make(kNullRef);
  for (int i = 0; i < 100; ++i) {
    ObjRef n = heap_->AllocateInstance(node_class_);
    heap_->SetField<double>(n, off_value, i);
    heap_->SetRefField(n, off_next, head.get());
    head.set(n);
  }
  heap_->CollectFull();
  heap_->Verify();
  ObjRef cur = head.get();
  for (int i = 99; i >= 0; --i) {
    ASSERT_NE(cur, kNullRef);
    EXPECT_EQ(heap_->GetField<double>(cur, off_value), i);
    cur = heap_->GetRefField(cur, off_next);
  }
  EXPECT_EQ(cur, kNullRef);
}

TEST_F(HeapTest, OldToYoungReferenceTrackedByRemset) {
  const ClassInfo& ci = registry_.Get(node_class_);
  uint32_t off_next = ci.FieldOffset("next");
  HandleScope scope(heap_.get());
  Handle old_node = scope.Make(heap_->AllocateInstance(node_class_));
  // Promote it via a full collection.
  heap_->CollectFull();
  EXPECT_FALSE(heap_->collector()->IsYoung(old_node.get()));
  // Store a young object into the old one; only the remembered set keeps
  // the young object alive across the next minor GC.
  ObjRef young = heap_->AllocateInstance(node_class_);
  heap_->SetField<double>(young, 0, 7.0);
  heap_->SetRefField(old_node.get(), off_next, young);
  heap_->CollectMinor();
  ObjRef next = heap_->GetRefField(old_node.get(), off_next);
  ASSERT_NE(next, kNullRef);
  EXPECT_EQ(heap_->GetField<double>(next, 0), 7.0);
  heap_->Verify();
}

TEST_F(HeapTest, VectorRootProviderKeepsObjectsAlive) {
  VectorRootProvider roots;
  heap_->AddRootProvider(&roots);
  ObjRef n = heap_->AllocateInstance(node_class_);
  heap_->SetField<double>(n, 0, 13.0);
  roots.refs().push_back(n);
  heap_->CollectFull();
  // The provider's slot was updated in place by the moving collector.
  EXPECT_EQ(heap_->GetField<double>(roots.refs()[0], 0), 13.0);
  heap_->RemoveRootProvider(&roots);
  heap_->CollectFull();
  EXPECT_EQ(heap_->CountInstances(node_class_), 0u);
}

TEST_F(HeapTest, LargeObjectAllocatedInOldGen) {
  // 64 KB > large_object_bytes (32 KB default).
  ObjRef big = heap_->AllocateArray(registry_.byte_array_class(), 64 << 10);
  EXPECT_FALSE(heap_->collector()->IsYoung(big));
}

TEST_F(HeapTest, TryAllocateReturnsNullOnOom) {
  HeapConfig cfg;
  cfg.heap_bytes = 1u << 20;
  Heap small(cfg, &registry_);
  HandleScope scope(&small);
  // Pin ever more data until allocation fails.
  std::vector<Handle> pins;
  ObjRef r;
  int allocated = 0;
  do {
    r = small.TryAllocateArray(registry_.byte_array_class(), 64 << 10);
    if (r != kNullRef) {
      pins.push_back(scope.Make(r));
      ++allocated;
    }
  } while (r != kNullRef && allocated < 1000);
  EXPECT_EQ(r, kNullRef);
  EXPECT_GT(allocated, 5);
}

TEST_F(HeapTest, GcStatsAccumulate) {
  HandleScope scope(heap_.get());
  Handle h = scope.Make(heap_->AllocateInstance(node_class_));
  (void)h;
  heap_->CollectMinor();
  heap_->CollectFull();
  const GcStats& st = heap_->stats();
  EXPECT_GE(st.minor_count, 1u);
  EXPECT_GE(st.full_count, 1u);
  EXPECT_GT(st.objects_allocated, 0u);
  EXPECT_GT(st.TotalPauseMs(), 0.0);
}

TEST_F(HeapTest, CountAllInstances) {
  HandleScope scope(heap_.get());
  Handle a = scope.Make(heap_->AllocateInstance(node_class_));
  Handle b = scope.Make(heap_->AllocateArray(registry_.int_array_class(), 4));
  (void)a;
  (void)b;
  auto counts = heap_->CountAllInstances();
  EXPECT_EQ(counts[node_class_], 1u);
  EXPECT_EQ(counts[registry_.int_array_class()], 1u);
}

TEST_F(HeapTest, HeapProfilerTracksCounts) {
  HeapProfiler prof(heap_.get(), node_class_);
  prof.Sample(0.0);
  HandleScope scope(heap_.get());
  Handle a = scope.Make(heap_->AllocateInstance(node_class_));
  Handle b = scope.Make(heap_->AllocateInstance(node_class_));
  (void)a;
  (void)b;
  prof.Sample(1.0);
  EXPECT_EQ(prof.object_counts().values[0], 0.0);
  EXPECT_EQ(prof.object_counts().values[1], 2.0);
}

TEST_F(HeapTest, HandleScopeReleasesSlots) {
  size_t base = heap_->handle_top();
  {
    HandleScope scope(heap_.get());
    scope.Make(heap_->AllocateInstance(node_class_));
    scope.Make(heap_->AllocateInstance(node_class_));
    EXPECT_EQ(heap_->handle_top(), base + 2);
  }
  EXPECT_EQ(heap_->handle_top(), base);
}

TEST_F(HeapTest, BoxedValueClasses) {
  ObjRef d = heap_->AllocateInstance(registry_.boxed_double_class());
  heap_->SetField<double>(d, 0, 6.5);
  EXPECT_EQ(heap_->GetField<double>(d, 0), 6.5);
  EXPECT_EQ(heap_->ObjectBytes(d), kHeaderBytes + 8u);
}

TEST_F(HeapTest, RefArrayTracing) {
  HandleScope scope(heap_.get());
  Handle arr =
      scope.Make(heap_->AllocateArray(registry_.ref_array_class(), 8));
  for (uint32_t i = 0; i < 8; ++i) {
    HandleScope inner(heap_.get());
    ObjRef n = heap_->AllocateInstance(node_class_);
    heap_->SetField<double>(n, 0, i);
    heap_->SetRefElem(arr.get(), i, n);
  }
  heap_->CollectFull();
  heap_->Verify();
  for (uint32_t i = 0; i < 8; ++i) {
    ObjRef n = heap_->GetRefElem(arr.get(), i);
    ASSERT_NE(n, kNullRef);
    EXPECT_EQ(heap_->GetField<double>(n, 0), i);
  }
}

}  // namespace
}  // namespace deca::jvm
