#include <gtest/gtest.h>

#include <numeric>

#include "spark/typed_rdd.h"

namespace deca::spark {
namespace {

SparkConfig SmallConfig() {
  SparkConfig cfg;
  cfg.num_executors = 2;
  cfg.partitions_per_executor = 2;
  cfg.heap.heap_bytes = 24u << 20;
  cfg.spill_dir = "/tmp/deca_test_spill_typed";
  return cfg;
}

TEST(TypedRddTest, ParallelizeCountCollect) {
  SparkContext ctx(SmallConfig());
  std::vector<int64_t> data(1000);
  std::iota(data.begin(), data.end(), 0);
  auto rdd = TypedRdd<int64_t>::Parallelize(&ctx, MakeBoxedLongAdapter(),
                                            data);
  EXPECT_EQ(rdd.Count(), 1000u);
  std::vector<int64_t> collected = rdd.Collect();
  std::sort(collected.begin(), collected.end());
  EXPECT_EQ(collected, data);
}

TEST(TypedRddTest, MapFilterReducePipeline) {
  SparkContext ctx(SmallConfig());
  std::vector<int64_t> data(500);
  std::iota(data.begin(), data.end(), 1);
  auto rdd = TypedRdd<int64_t>::Parallelize(&ctx, MakeBoxedLongAdapter(),
                                            data);
  auto doubled = rdd.Map([](const int64_t& v) { return v * 2; });
  auto big = doubled.Filter([](const int64_t& v) { return v > 500; });
  // doubled values in (500, 1000]: v in 251..500 -> 250 values.
  EXPECT_EQ(big.Count(), 250u);
  int64_t sum = big.Reduce(0, [](const int64_t& a, const int64_t& b) {
    return a + b;
  });
  int64_t expected = 0;
  for (int64_t v = 251; v <= 500; ++v) expected += 2 * v;
  EXPECT_EQ(sum, expected);
}

TEST(TypedRddTest, MapToDifferentType) {
  SparkContext ctx(SmallConfig());
  std::vector<int64_t> data{1, 2, 3, 4};
  auto rdd = TypedRdd<int64_t>::Parallelize(&ctx, MakeBoxedLongAdapter(),
                                            data);
  auto halves = rdd.Map<double>(
      MakeBoxedDoubleAdapter(),
      [](const int64_t& v) { return static_cast<double>(v) / 2.0; });
  double sum = halves.Reduce(
      0.0, [](const double& a, const double& b) { return a + b; });
  EXPECT_DOUBLE_EQ(sum, 5.0);
}

TEST(TypedRddTest, DataLivesInManagedHeapsAndSurvivesGc) {
  SparkContext ctx(SmallConfig());
  std::vector<int64_t> data(2000);
  std::iota(data.begin(), data.end(), 100);
  auto rdd = TypedRdd<int64_t>::Parallelize(&ctx, MakeBoxedLongAdapter(),
                                            data);
  // The records are real managed objects: force collections everywhere.
  for (int e = 0; e < ctx.num_executors(); ++e) {
    ctx.executor(e)->heap()->CollectFull();
    ctx.executor(e)->heap()->Verify();
  }
  int64_t sum = rdd.Reduce(0, [](const int64_t& a, const int64_t& b) {
    return a + b;
  });
  EXPECT_EQ(sum, std::accumulate(data.begin(), data.end(), int64_t{0}));
}

TEST(TypedRddTest, SourceRddReusableAfterDerivation) {
  SparkContext ctx(SmallConfig());
  std::vector<int64_t> data{5, 10, 15};
  auto rdd = TypedRdd<int64_t>::Parallelize(&ctx, MakeBoxedLongAdapter(),
                                            data);
  auto derived = rdd.Map([](const int64_t& v) { return v + 1; });
  EXPECT_EQ(rdd.Count(), 3u);       // source intact
  EXPECT_EQ(derived.Count(), 3u);
  EXPECT_EQ(rdd.Reduce(0, [](const int64_t& a, const int64_t& b) {
    return a + b;
  }), 30);
  EXPECT_EQ(derived.Reduce(0, [](const int64_t& a, const int64_t& b) {
    return a + b;
  }), 33);
}

TEST(TypedRddTest, EmptyDataset) {
  SparkContext ctx(SmallConfig());
  auto rdd = TypedRdd<int64_t>::Parallelize(&ctx, MakeBoxedLongAdapter(), {});
  EXPECT_EQ(rdd.Count(), 0u);
  EXPECT_TRUE(rdd.Collect().empty());
  EXPECT_EQ(rdd.Filter([](const int64_t&) { return true; }).Count(), 0u);
}

}  // namespace
}  // namespace deca::spark
