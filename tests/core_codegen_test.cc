#include <gtest/gtest.h>

#include "analysis/udt_type.h"
#include "core/sudt_codegen.h"

namespace deca::core {
namespace {

using jvm::FieldKind;

TEST(SudtCodegenTest, SfstAccessorHasConstexprOffsets) {
  analysis::TypeUniverse u;
  const auto* darr =
      u.DefineArray("Array[Double]", {u.Primitive(FieldKind::kDouble)});
  auto* dv = u.DefineClass("DenseVector");
  u.AddField(dv, "data", true, {darr});
  auto* lp = u.DefineClass("LabeledPoint");
  u.AddField(lp, "label", false, {u.Primitive(FieldKind::kDouble)});
  u.AddField(lp, "features", false, {dv});
  LengthResolver lengths;
  lengths.SetFixedLength(dv, "data", 10);
  SudtLayout layout = SudtLayout::Build(lp, lengths);

  std::string code = GenerateSudtAccessor("LabeledPointView", layout);
  EXPECT_NE(code.find("struct LabeledPointView"), std::string::npos);
  EXPECT_NE(code.find("k_label_offset = 0"), std::string::npos);
  EXPECT_NE(code.find("k_features_data_offset = 8"), std::string::npos);
  EXPECT_NE(code.find("k_features_data_count = 10"), std::string::npos);
  EXPECT_NE(code.find("kRecordBytes = 88"), std::string::npos);
  // Scalar getter reads at the constant offset; array getter scales by the
  // element width.
  EXPECT_NE(code.find("LoadRaw<double>(base + 0)"), std::string::npos);
  EXPECT_NE(code.find("base + 8 + i * 8"), std::string::npos);
}

TEST(SudtCodegenTest, RfstAccessorComputesRuntimeOffsets) {
  analysis::TypeUniverse u;
  const auto* larr =
      u.DefineArray("Array[Long]", {u.Primitive(FieldKind::kLong)});
  auto* adj = u.DefineClass("Adjacency");
  u.AddField(adj, "vertex", false, {u.Primitive(FieldKind::kLong)});
  u.AddField(adj, "neighbors", true, {larr});
  SudtLayout layout = SudtLayout::Build(adj, LengthResolver());

  std::string code = GenerateSudtAccessor("AdjacencyView", layout);
  EXPECT_NE(code.find("kFixedBytes = 8"), std::string::npos);
  EXPECT_NE(code.find("var_offset"), std::string::npos);
  EXPECT_NE(code.find("neighbors_length()"), std::string::npos);
  EXPECT_NE(code.find("record_bytes()"), std::string::npos);
  // No static record size for RFSTs.
  EXPECT_EQ(code.find("kRecordBytes"), std::string::npos);
}

TEST(SudtCodegenTest, PathsBecomeValidIdentifiers) {
  analysis::TypeUniverse u;
  auto* inner = u.DefineClass("Inner");
  u.AddField(inner, "x", false, {u.Primitive(FieldKind::kInt)});
  auto* outer = u.DefineClass("Outer");
  u.AddField(outer, "inner", true, {inner});
  SudtLayout layout = SudtLayout::Build(outer, LengthResolver());
  std::string code = GenerateSudtAccessor("OuterView", layout);
  EXPECT_NE(code.find("inner_x()"), std::string::npos);
  EXPECT_EQ(code.find("inner.x()"), std::string::npos);
}

}  // namespace
}  // namespace deca::core
