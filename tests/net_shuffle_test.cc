// Network-shuffle equivalence tests: the loopback (and TCP) transports
// must produce bit-identical workload results, GC counts, and fault
// counters to the local in-memory shuffle — with and without injected
// faults — across a seed x threads x fault-config matrix. The wire layer
// may only add net.* counters, never change what is computed.
//
// CI varies DECA_FAULT_SEED; every test here must hold for any seed.

#include <gtest/gtest.h>

#include <cstdlib>
#include <vector>

#include "fault/fault_config.h"
#include "spark/config.h"
#include "workloads/lr.h"
#include "workloads/wordcount.h"

namespace deca {
namespace {

uint64_t TestSeed() {
  const char* s = std::getenv("DECA_FAULT_SEED");
  return s != nullptr ? std::strtoull(s, nullptr, 10) : 1337;
}

spark::SparkConfig SmallConfig() {
  spark::SparkConfig cfg;
  cfg.num_executors = 2;
  cfg.partitions_per_executor = 2;
  cfg.heap.heap_bytes = 32u << 20;
  return cfg;
}

workloads::WordCountResult RunWc(const spark::SparkConfig& spark,
                                 workloads::Mode mode, int threads) {
  workloads::WordCountParams p;
  p.total_words = uint64_t{1} << 16;
  p.distinct_keys = 512;
  p.mode = mode;
  p.spark = spark;
  p.spark.num_worker_threads = threads;
  return workloads::RunWordCount(p);
}

workloads::LrResult RunLr(const spark::SparkConfig& spark, int threads) {
  workloads::MlParams p;
  p.dims = 10;
  p.num_points = 20000;
  p.iterations = 3;
  p.mode = workloads::Mode::kSpark;
  p.spark = spark;
  p.spark.num_worker_threads = threads;
  return workloads::RunLogisticRegression(p);
}

// Everything the wire must not perturb, in one comparison.
void ExpectWcEquivalent(const workloads::WordCountResult& net,
                        const workloads::WordCountResult& local) {
  EXPECT_EQ(net.total_count, local.total_count);
  EXPECT_EQ(net.distinct_found, local.distinct_found);
  EXPECT_EQ(net.shuffle_bytes, local.shuffle_bytes);
  EXPECT_EQ(net.run.minor_gcs, local.run.minor_gcs);
  EXPECT_EQ(net.run.full_gcs, local.run.full_gcs);
  EXPECT_EQ(net.run.task_retries, local.run.task_retries);
  EXPECT_EQ(net.run.injected_faults, local.run.injected_faults);
  EXPECT_EQ(net.run.oom_recoveries, local.run.oom_recoveries);
  EXPECT_EQ(net.run.executor_wipes, local.run.executor_wipes);
  EXPECT_EQ(net.run.recomputed_blocks, local.run.recomputed_blocks);
}

// ---------------------------------------------------------------------------
// Seed matrix: local vs loopback, both workload modes, sequential and
// parallel, fault-free and under injected task+fetch failures and OOM.

TEST(NetShuffleEquivalence, WordCountSeedMatrixBitIdentical) {
  std::vector<fault::FaultConfig> fault_configs(3);
  fault_configs[1].task_failure_prob = 0.5;
  fault_configs[1].fetch_failure_prob = 0.25;
  fault_configs[2].oom_failure_prob = 1.0;

  for (uint64_t seed : {TestSeed(), TestSeed() + 1, uint64_t{99}}) {
    for (size_t fi = 0; fi < fault_configs.size(); ++fi) {
      fault::FaultConfig fc = fault_configs[fi];
      fc.seed = seed;
      for (workloads::Mode mode :
           {workloads::Mode::kSpark, workloads::Mode::kDeca}) {
        spark::SparkConfig cfg = SmallConfig();
        cfg.fault = fc;
        workloads::WordCountResult local =
            RunWc(cfg, mode, /*threads=*/0);
        cfg.shuffle_transport = spark::ShuffleTransport::kLoopback;
        for (int threads : {0, 2}) {
          SCOPED_TRACE(testing::Message()
                       << "seed=" << seed << " faults=" << fi << " mode="
                       << static_cast<int>(mode) << " threads=" << threads);
          workloads::WordCountResult net = RunWc(cfg, mode, threads);
          ExpectWcEquivalent(net, local);
          EXPECT_TRUE(net.run.net_active);
          EXPECT_FALSE(local.run.net_active);
          EXPECT_GT(net.run.net.wire_bytes, 0u);
          if (fi == 1) {
            EXPECT_GT(net.run.injected_faults, 0u);
          }
        }
      }
    }
  }
}

TEST(NetShuffleEquivalence, LrCrashWipeBitIdentical) {
  fault::FaultConfig fc;
  fc.seed = TestSeed();
  fc.crash_wipe_stage = 1;
  fc.crash_wipe_executor = 1;

  spark::SparkConfig cfg = SmallConfig();
  cfg.fault = fc;
  workloads::LrResult local = RunLr(cfg, /*threads=*/0);
  ASSERT_EQ(local.weights.size(), 10u);
  EXPECT_EQ(local.run.executor_wipes, 1u);

  cfg.shuffle_transport = spark::ShuffleTransport::kLoopback;
  for (int threads : {0, 2}) {
    SCOPED_TRACE(threads);
    workloads::LrResult net = RunLr(cfg, threads);
    ASSERT_EQ(net.weights.size(), local.weights.size());
    for (size_t j = 0; j < local.weights.size(); ++j) {
      EXPECT_EQ(net.weights[j], local.weights[j]) << "dim " << j;
    }
    EXPECT_EQ(net.run.minor_gcs, local.run.minor_gcs);
    EXPECT_EQ(net.run.full_gcs, local.run.full_gcs);
    EXPECT_EQ(net.run.executor_wipes, 1u);
    EXPECT_EQ(net.run.recomputed_blocks, local.run.recomputed_blocks);
  }
}

// The wire plane itself must replay identically: two loopback runs with
// the same seed agree on every deterministic counter, and so do
// sequential vs parallel runs of the same configuration.
TEST(NetShuffleEquivalence, WireCountersDeterministic) {
  spark::SparkConfig cfg = SmallConfig();
  cfg.shuffle_transport = spark::ShuffleTransport::kLoopback;
  cfg.fault.seed = TestSeed();
  cfg.fault.fetch_failure_prob = 0.25;
  cfg.net_latency_us = 50;
  cfg.net_bandwidth_mbps = 100;

  workloads::WordCountResult a = RunWc(cfg, workloads::Mode::kDeca, 0);
  for (int threads : {0, 2}) {
    SCOPED_TRACE(threads);
    workloads::WordCountResult b =
        RunWc(cfg, workloads::Mode::kDeca, threads);
    ExpectWcEquivalent(b, a);
    EXPECT_EQ(b.run.net.wire_bytes, a.run.net.wire_bytes);
    EXPECT_EQ(b.run.net.payload_bytes, a.run.net.payload_bytes);
    EXPECT_EQ(b.run.net.messages, a.run.net.messages);
    EXPECT_EQ(b.run.net.index_requests, a.run.net.index_requests);
    EXPECT_EQ(b.run.net.slice_requests, a.run.net.slice_requests);
    EXPECT_EQ(b.run.net.records_encoded, a.run.net.records_encoded);
    EXPECT_EQ(b.run.net.records_decoded, a.run.net.records_decoded);
    EXPECT_EQ(b.run.net.fetch_retries, a.run.net.fetch_retries);
    EXPECT_EQ(b.run.net.injected_fetch_failures,
              a.run.net.injected_fetch_failures);
    EXPECT_EQ(b.run.net.flow_stalls, a.run.net.flow_stalls);
    EXPECT_EQ(b.run.net.virtual_wire_us, a.run.net.virtual_wire_us);
  }
  EXPECT_GT(a.run.net.virtual_wire_us, 0u);
}

// ---------------------------------------------------------------------------
// Wire codecs: page vs record on the identical Deca payload.

TEST(NetShuffleCodec, PageShipsFewerBytesAndEncodesNoRecords) {
  spark::SparkConfig cfg = SmallConfig();
  cfg.shuffle_transport = spark::ShuffleTransport::kLoopback;

  cfg.shuffle_wire_codec = spark::ShuffleWireCodec::kPage;
  workloads::WordCountResult page =
      RunWc(cfg, workloads::Mode::kDeca, 0);
  cfg.shuffle_wire_codec = spark::ShuffleWireCodec::kRecord;
  workloads::WordCountResult rec = RunWc(cfg, workloads::Mode::kDeca, 0);

  ExpectWcEquivalent(rec, page);
  // Page mode moves the chunk bytes untouched: no per-record work at all.
  EXPECT_EQ(page.run.net.records_encoded, 0u);
  EXPECT_EQ(page.run.net.records_decoded, 0u);
  // Record mode re-serializes every (word, count) pair and pays per-record
  // length prefixes on the wire.
  EXPECT_GT(rec.run.net.records_encoded, 0u);
  EXPECT_EQ(rec.run.net.records_decoded, rec.run.net.records_encoded);
  EXPECT_GT(rec.run.net.wire_bytes, page.run.net.wire_bytes);
  // Identical payload either way — the codec only changes framing.
  EXPECT_EQ(rec.run.net.payload_bytes, page.run.net.payload_bytes);
}

TEST(NetShuffleCodec, AutoFollowsWorkloadMode) {
  spark::SparkConfig cfg = SmallConfig();
  cfg.shuffle_transport = spark::ShuffleTransport::kLoopback;
  // Deca under kAuto ships pages: zero records encoded.
  workloads::WordCountResult deca =
      RunWc(cfg, workloads::Mode::kDeca, 0);
  EXPECT_EQ(deca.run.net.records_encoded, 0u);
  // Spark object mode under kAuto serializes per record.
  workloads::WordCountResult jvm =
      RunWc(cfg, workloads::Mode::kSpark, 0);
  EXPECT_GT(jvm.run.net.records_encoded, 0u);
  EXPECT_EQ(jvm.run.net.records_decoded, jvm.run.net.records_encoded);
}

// ---------------------------------------------------------------------------
// Flow control and the retry path.

TEST(NetShuffleFlowControl, TinyWindowStallsWithoutChangingResults) {
  spark::SparkConfig cfg = SmallConfig();
  cfg.shuffle_transport = spark::ShuffleTransport::kLoopback;
  workloads::WordCountResult wide =
      RunWc(cfg, workloads::Mode::kDeca, 0);
  EXPECT_EQ(wide.run.net.flow_stalls, 0u);

  // A window of one chunk forces a stall on every full frame in flight.
  cfg.net_fetch_chunk_bytes = 1u << 10;
  cfg.net_max_inflight_bytes = 1u << 10;
  workloads::WordCountResult narrow =
      RunWc(cfg, workloads::Mode::kDeca, 0);
  ExpectWcEquivalent(narrow, wide);
  EXPECT_GT(narrow.run.net.flow_stalls, 0u);
  // Smaller slices mean strictly more fetch round-trips.
  EXPECT_GT(narrow.run.net.slice_requests, wide.run.net.slice_requests);
}

TEST(NetShuffleRetry, InjectedFetchFailuresCrossTheWire) {
  spark::SparkConfig cfg = SmallConfig();
  cfg.shuffle_transport = spark::ShuffleTransport::kLoopback;
  cfg.fault.seed = TestSeed();
  cfg.fault.fetch_failure_prob = 0.6;
  workloads::WordCountResult r = RunWc(cfg, workloads::Mode::kDeca, 0);

  spark::SparkConfig base = SmallConfig();
  base.fault = cfg.fault;
  workloads::WordCountResult local = RunWc(base, workloads::Mode::kDeca, 0);
  ExpectWcEquivalent(r, local);
  // Each injected fetch failure travelled the transport as a doomed probe
  // RPC (observed server-side) and burned virtual backoff time.
  EXPECT_GT(r.run.injected_faults, 0u);
  EXPECT_EQ(r.run.net.injected_fetch_failures, r.run.injected_faults);
  EXPECT_EQ(r.run.net.fetch_retries,
            r.run.injected_faults *
                static_cast<uint64_t>(cfg.net_fetch_retries));
  EXPECT_GT(r.run.net.virtual_wire_us, 0u);
}

// ---------------------------------------------------------------------------
// TCP transport: real sockets, same bytes, same results.

TEST(NetShuffleTcp, SmallWordCountMatchesLocal) {
  spark::SparkConfig cfg = SmallConfig();
  workloads::WordCountResult local =
      RunWc(cfg, workloads::Mode::kDeca, 0);

  cfg.shuffle_transport = spark::ShuffleTransport::kTcp;
  workloads::WordCountResult tcp = RunWc(cfg, workloads::Mode::kDeca, 0);
  ExpectWcEquivalent(tcp, local);
  EXPECT_TRUE(tcp.run.net_active);
  EXPECT_GT(tcp.run.net.wire_bytes, 0u);
  EXPECT_EQ(tcp.run.net.records_encoded, 0u);
}

}  // namespace
}  // namespace deca
