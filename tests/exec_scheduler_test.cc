#include <gtest/gtest.h>

#include <atomic>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <vector>

#include "exec/metrics_sink.h"
#include "exec/scheduler.h"
#include "exec/stage_barrier.h"
#include "exec/task_queue.h"

namespace deca::exec {
namespace {

// -- TaskQueue ----------------------------------------------------------------

TEST(TaskQueueTest, FifoOrder) {
  TaskQueue q;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    q.Push([&order, i] { order.push_back(i); });
  }
  EXPECT_EQ(q.size(), 5u);
  std::function<void()> fn;
  while (q.size() > 0) {
    ASSERT_TRUE(q.Pop(&fn));
    fn();
  }
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(TaskQueueTest, CloseDrainsThenReturnsFalse) {
  TaskQueue q;
  int ran = 0;
  q.Push([&ran] { ++ran; });
  q.Push([&ran] { ++ran; });
  q.Close();
  std::function<void()> fn;
  while (q.Pop(&fn)) fn();
  EXPECT_EQ(ran, 2);
}

TEST(TaskQueueTest, PopBlocksUntilPush) {
  TaskQueue q;
  std::atomic<int> got{0};
  std::thread consumer([&] {
    std::function<void()> fn;
    while (q.Pop(&fn)) fn();
  });
  q.Push([&got] { got.store(1); });
  q.Close();
  consumer.join();
  EXPECT_EQ(got.load(), 1);
}

// -- StageBarrier -------------------------------------------------------------

TEST(StageBarrierTest, WaitsForAllArrivals) {
  StageBarrier barrier(3);
  std::vector<std::thread> arrivers;
  for (int i = 0; i < 3; ++i) {
    arrivers.emplace_back([&barrier] { barrier.Arrive(); });
  }
  barrier.Wait();
  EXPECT_EQ(barrier.arrived(), 3);
  for (auto& t : arrivers) t.join();
}

TEST(StageBarrierTest, ZeroExpectedDoesNotBlock) {
  StageBarrier barrier(0);
  barrier.Wait();
  EXPECT_EQ(barrier.arrived(), 0);
}

// -- TaskScheduler ------------------------------------------------------------

TEST(TaskSchedulerTest, SequentialFallbackRunsInlineInPartitionOrder) {
  TaskScheduler sched(4, /*num_worker_threads=*/0);
  EXPECT_FALSE(sched.parallel());
  std::thread::id driver = std::this_thread::get_id();
  EXPECT_EQ(sched.MutatorThreadId(0), driver);
  std::vector<int> order;
  sched.RunStage(8, [&](int p, double queue_ms) {
    EXPECT_EQ(std::this_thread::get_id(), driver);
    EXPECT_EQ(queue_ms, 0.0);
    order.push_back(p);
  });
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4, 5, 6, 7}));
}

TEST(TaskSchedulerTest, PlacementIsDeterministic) {
  TaskScheduler sched(4, /*num_worker_threads=*/2);
  for (int p = 0; p < 16; ++p) {
    EXPECT_EQ(sched.ExecutorOfPartition(p), p % 4);
  }
  // Executors are striped over the two workers.
  EXPECT_EQ(sched.num_workers(), 2);
  EXPECT_EQ(sched.WorkerOfExecutor(0), 0);
  EXPECT_EQ(sched.WorkerOfExecutor(1), 1);
  EXPECT_EQ(sched.WorkerOfExecutor(2), 0);
  EXPECT_EQ(sched.WorkerOfExecutor(3), 1);
}

TEST(TaskSchedulerTest, WorkerCountIsCappedByExecutors) {
  TaskScheduler sched(2, /*num_worker_threads=*/16);
  EXPECT_EQ(sched.num_workers(), 2);
}

// Each executor must see its partitions in ascending order (the sequential
// subsequence) no matter how workers interleave.
TEST(TaskSchedulerTest, PerExecutorTasksRunInPartitionOrder) {
  const int kExecutors = 4;
  const int kPartitions = 32;
  for (int threads : {1, 2, 4}) {
    TaskScheduler sched(kExecutors, threads);
    ASSERT_TRUE(sched.parallel());
    std::vector<std::vector<int>> seen(kExecutors);
    std::mutex mu;
    sched.RunStage(kPartitions, [&](int p, double queue_ms) {
      EXPECT_GE(queue_ms, 0.0);
      std::lock_guard<std::mutex> lock(mu);
      seen[static_cast<size_t>(sched.ExecutorOfPartition(p))].push_back(p);
    });
    for (int e = 0; e < kExecutors; ++e) {
      std::vector<int> expected;
      for (int p = e; p < kPartitions; p += kExecutors) expected.push_back(p);
      EXPECT_EQ(seen[static_cast<size_t>(e)], expected)
          << "executor " << e << " with " << threads << " threads";
    }
  }
}

// Tasks of the same executor run on one thread; that thread matches
// MutatorThreadId.
TEST(TaskSchedulerTest, ExecutorPinnedToOneThread) {
  const int kExecutors = 4;
  TaskScheduler sched(kExecutors, 2);
  std::vector<std::thread::id> task_thread(16);
  sched.RunStage(16, [&](int p, double) {
    task_thread[static_cast<size_t>(p)] = std::this_thread::get_id();
  });
  for (int p = 0; p < 16; ++p) {
    EXPECT_EQ(task_thread[static_cast<size_t>(p)],
              sched.MutatorThreadId(sched.ExecutorOfPartition(p)))
        << "partition " << p;
  }
}

TEST(TaskSchedulerTest, RunStageIsABarrier) {
  TaskScheduler sched(4, 4);
  std::atomic<int> done{0};
  sched.RunStage(32, [&](int, double) {
    done.fetch_add(1, std::memory_order_relaxed);
  });
  // Every task completed before RunStage returned.
  EXPECT_EQ(done.load(), 32);
}

TEST(TaskSchedulerTest, LowestFailingPartitionWinsDeterministically) {
  for (int threads : {0, 1, 4}) {
    TaskScheduler sched(4, threads);
    int caught = -1;
    try {
      sched.RunStage(8, [&](int p, double) {
        if (p == 5 || p == 2) {
          throw std::runtime_error("boom " + std::to_string(p));
        }
      });
    } catch (const std::runtime_error& e) {
      caught = e.what()[5] - '0';
    }
    // Sequential mode throws at the first failing partition (2) and the
    // parallel mode rethrows the lowest failing slot — same answer.
    EXPECT_EQ(caught, 2) << threads << " threads";
  }
}

TEST(TaskSchedulerTest, SchedulerSurvivesAFailedStage) {
  TaskScheduler sched(2, 2);
  EXPECT_THROW(
      sched.RunStage(4, [&](int, double) { throw std::runtime_error("x"); }),
      std::runtime_error);
  // Later stages still run normally on the same workers.
  std::atomic<int> ran{0};
  sched.RunStage(4, [&](int, double) { ran.fetch_add(1); });
  EXPECT_EQ(ran.load(), 4);
}

TEST(TaskSchedulerTest, ManyStagesStress) {
  TaskScheduler sched(3, 3);
  std::atomic<int> total{0};
  for (int s = 0; s < 200; ++s) {
    sched.RunStage(9, [&](int, double) {
      total.fetch_add(1, std::memory_order_relaxed);
    });
  }
  EXPECT_EQ(total.load(), 200 * 9);
}

// -- MetricsSink --------------------------------------------------------------

TEST(MetricsSinkTest, FoldsSlotsInPartitionOrder) {
  MetricsSink sink;
  sink.BeginStage(3);
  // Report out of completion order; the fold must still be 0,1,2.
  spark::TaskMetrics t2;
  t2.total_ms = 30;
  t2.queue_ms = 3;
  sink.Report(2, t2);
  spark::TaskMetrics t0;
  t0.total_ms = 10;
  t0.queue_ms = 1;
  sink.Report(0, t0);
  spark::TaskMetrics t1;
  t1.total_ms = 20;
  t1.queue_ms = 2;
  sink.Report(1, t1);

  spark::JobMetrics job;
  sink.EndStage(&job);
  EXPECT_DOUBLE_EQ(job.tasks.total_ms, 60.0);
  EXPECT_DOUBLE_EQ(job.tasks.queue_ms, 6.0);
  EXPECT_DOUBLE_EQ(job.slowest_task.total_ms, 30.0);
}

TEST(MetricsSinkTest, ConcurrentReportsAreSafe) {
  MetricsSink sink;
  const int kPartitions = 64;
  sink.BeginStage(kPartitions);
  std::vector<std::thread> reporters;
  for (int p = 0; p < kPartitions; ++p) {
    reporters.emplace_back([&sink, p] {
      spark::TaskMetrics t;
      t.total_ms = 1;
      sink.Report(p, t);
    });
  }
  for (auto& t : reporters) t.join();
  spark::JobMetrics job;
  sink.EndStage(&job);
  EXPECT_DOUBLE_EQ(job.tasks.total_ms, static_cast<double>(kPartitions));
}

TEST(MetricsSinkTest, UnreportedSlotsAreSkipped) {
  MetricsSink sink;
  sink.BeginStage(4);
  spark::TaskMetrics t;
  t.total_ms = 5;
  sink.Report(1, t);
  spark::JobMetrics job;
  sink.EndStage(&job);
  EXPECT_DOUBLE_EQ(job.tasks.total_ms, 5.0);
}

}  // namespace
}  // namespace deca::exec
