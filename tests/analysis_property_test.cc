#include <gtest/gtest.h>

#include "analysis/global_classifier.h"
#include "analysis/local_classifier.h"
#include "common/random.h"
#include "core/sudt_layout.h"

namespace deca::analysis {
namespace {

using jvm::FieldKind;

/// Random annotated-type generator: builds acyclic type trees out of
/// primitives, final/non-final class fields, and primitive arrays.
struct RandomTypeGen {
  RandomTypeGen(TypeUniverse* u, uint64_t seed) : universe(u), rng(seed) {}

  const UdtType* Primitive() {
    static const FieldKind kinds[] = {FieldKind::kInt, FieldKind::kLong,
                                      FieldKind::kDouble, FieldKind::kByte,
                                      FieldKind::kFloat};
    return universe->Primitive(kinds[rng.NextBounded(5)]);
  }

  const UdtType* Array() {
    return universe->DefineArray("arr" + std::to_string(++counter),
                                 {Primitive()});
  }

  /// depth-bounded random class; `allow_arrays` controls whether RFST
  /// parts may appear.
  // GCC 12 falsely reports overlapping memcpy (-Wrestrict) and
  // maybe-uninitialized strings in the inlined `"cls" + to_string(...)`
  // operator+ chains below (gcc PR105329).
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wrestrict"
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"
#endif
  const UdtType* Class(int depth, bool allow_arrays, bool all_final) {
    UdtType* cls =
        universe->DefineClass("cls" + std::to_string(++counter));
    uint64_t nfields = 1 + rng.NextBounded(4);
    for (uint64_t i = 0; i < nfields; ++i) {
      std::string name = "f" + std::to_string(i);
      uint64_t pick = rng.NextBounded(depth > 0 ? 3 : 1);
      bool is_final = all_final || rng.NextBounded(2) == 0;
      if (pick == 0) {
        universe->AddField(cls, name, is_final, {Primitive()});
      } else if (pick == 1 && allow_arrays) {
        universe->AddField(cls, name, is_final, {Array()});
      } else {
        universe->AddField(cls, name, is_final,
                           {Class(depth - 1, allow_arrays, all_final)});
      }
    }
    return cls;
  }
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic pop
#endif

  TypeUniverse* universe;
  Rng rng;
  int counter = 0;
};

class ClassifierPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ClassifierPropertyTest, PrimitiveOnlyTreesAreAlwaysSfst) {
  TypeUniverse u;
  RandomTypeGen gen(&u, GetParam());
  const UdtType* t = gen.Class(3, /*allow_arrays=*/false, false);
  LocalClassifier local;
  EXPECT_EQ(local.Classify(t), SizeType::kStaticFixed);
}

TEST_P(ClassifierPropertyTest, VariabilityOrderIsMonotonic) {
  // Adding a non-final array-holding field to any type can only increase
  // (never decrease) its variability.
  TypeUniverse u;
  RandomTypeGen gen(&u, GetParam() * 31);
  UdtType* t = u.DefineClass("subject");
  u.AddField(t, "base", true, {gen.Class(2, true, true)});
  LocalClassifier local;
  SizeType before = local.Classify(t);
  u.AddField(t, "vst_field", /*is_final=*/false, {gen.Array()});
  SizeType after = local.Classify(t);
  EXPECT_GE(static_cast<int>(after), static_cast<int>(before));
  EXPECT_EQ(after, SizeType::kVariable);
}

TEST_P(ClassifierPropertyTest, GlobalNeverCoarserThanLocal) {
  // The global classifier may only refine (reduce variability), never
  // worsen it.
  TypeUniverse u;
  RandomTypeGen gen(&u, GetParam() * 77);
  const UdtType* t = gen.Class(3, true, false);
  LocalClassifier local;
  CallGraph empty_cg;
  MethodInfo main;
  main.name = "main";
  empty_cg.AddMethod(main);
  empty_cg.SetEntry("main");
  GlobalClassifier global(&empty_cg);
  SizeType l = local.Classify(t);
  SizeType g = global.Classify(t);
  if (l == SizeType::kRecurDef) {
    EXPECT_EQ(g, SizeType::kRecurDef);
  } else {
    EXPECT_LE(static_cast<int>(g), static_cast<int>(l));
  }
}

TEST_P(ClassifierPropertyTest, SfstLayoutSizeMatchesLeafSum) {
  // For SFST trees (all-final, no arrays) the synthesized layout's static
  // size must equal the sum of primitive leaf widths — the paper's
  // data-size definition.
  TypeUniverse u;
  RandomTypeGen gen(&u, GetParam() * 13);
  const UdtType* t = gen.Class(3, /*allow_arrays=*/false, true);
  LocalClassifier local;
  ASSERT_EQ(local.Classify(t), SizeType::kStaticFixed);
  core::SudtLayout layout = core::SudtLayout::Build(t, core::LengthResolver());
  // Independently sum leaf widths.
  std::function<uint32_t(const UdtType*)> leaf_sum =
      [&](const UdtType* ty) -> uint32_t {
    if (ty->is_primitive()) return jvm::FieldKindBytes(ty->primitive_kind());
    uint32_t total = 0;
    for (const auto& f : ty->fields()) total += leaf_sum(f.type_set[0]);
    return total;
  };
  EXPECT_EQ(layout.static_size(), leaf_sum(t));
  // Offsets are dense and non-overlapping.
  uint32_t expected_offset = 0;
  for (const auto& f : layout.fixed_fields()) {
    EXPECT_EQ(f.offset, expected_offset);
    expected_offset += jvm::FieldKindBytes(f.kind) * f.count;
  }
}

TEST_P(ClassifierPropertyTest, FixedLengthEvidenceRefinesRandomTree) {
  // Take a tree with exactly one array leaf; with a single constant-length
  // allocation site the global classifier must reach SFST, and the layout
  // must account length*elem bytes for it.
  TypeUniverse u;
  Rng rng(GetParam() * 7);
  const UdtType* arr =
      u.DefineArray("data[]", {u.Primitive(FieldKind::kDouble)});
  UdtType* inner = u.DefineClass("Inner");
  u.AddField(inner, "data", true, {arr});
  UdtType* outer = u.DefineClass("Outer");
  u.AddField(outer, "tag", false, {u.Primitive(FieldKind::kLong)});
  u.AddField(outer, "inner", true, {inner});

  uint32_t len = 1 + static_cast<uint32_t>(rng.NextBounded(64));
  CallGraph cg;
  MethodInfo main;
  main.name = "main";
  main.statements.push_back({Statement::Kind::kNewArrayAssign,
                             {inner, "data"},
                             arr,
                             SymExpr::Constant(len),
                             ""});
  cg.AddMethod(main);
  cg.SetEntry("main");
  GlobalClassifier global(&cg);
  ASSERT_EQ(global.Classify(outer), SizeType::kStaticFixed);

  core::LengthResolver lengths;
  lengths.SetFixedLength(inner, "data", len);
  core::SudtLayout layout = core::SudtLayout::Build(outer, lengths);
  EXPECT_EQ(layout.static_size(), 8u + 8u * len);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ClassifierPropertyTest,
                         ::testing::Range<uint64_t>(1, 13));

}  // namespace
}  // namespace deca::analysis
