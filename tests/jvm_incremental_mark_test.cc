// Correctness of the resumable SATB mark cycle (jvm/incremental_mark.h)
// and determinism of the sampling allocation profiler (jvm/heap_profiler.h).
//
// The central property: a sliced mark with mutator progress between the
// slices — reference overwrites and fresh allocations — must produce the
// same live set a monolithic mark would have produced from the snapshot
// at Begin, plus exactly the objects allocated during the cycle
// (allocate-black). Garbage that was unreachable at Begin must stay
// unmarked. Every test asserts no collection ran while raw ObjRefs were
// held, so the refs tracked by the test never move.

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <set>
#include <thread>
#include <vector>

#include "common/random.h"
#include "jvm/class_registry.h"
#include "jvm/heap.h"
#include "jvm/heap_profiler.h"
#include "jvm/incremental_mark.h"

namespace deca::jvm {
namespace {

// Field offsets in the Node class below: double at 0, ref at 8.
constexpr uint32_t kNodeNextOff = 8;
constexpr uint32_t kPairAOff = 0;
constexpr uint32_t kPairBOff = 4;

struct Classes {
  uint32_t node;
  uint32_t pair;
  uint32_t ref_array;
};

Classes RegisterClasses(ClassRegistry* registry) {
  Classes c;
  c.node = registry->RegisterClass(
      "Node", {{"value", FieldKind::kDouble}, {"next", FieldKind::kRef}});
  c.pair = registry->RegisterClass(
      "Pair", {{"a", FieldKind::kRef}, {"b", FieldKind::kRef}});
  c.ref_array = registry->RegisterArrayClass("Node[]", FieldKind::kRef);
  return c;
}

/// A randomly wired object graph whose refs stay valid because no
/// collection runs while the test holds them (asserted by the caller).
struct Graph {
  std::vector<ObjRef> live;     // nodes/pairs/arrays wired together
  std::vector<ObjRef> garbage;  // allocated before the cycle, unreachable
  VectorRootProvider roots;     // retains a subset of `live`
};

/// Builds `n_live` randomly connected objects (a third of them rooted)
/// plus `n_garbage` unreachable ones. Allocation volume stays far below
/// the young generation so no collection triggers mid-build.
void BuildGraph(Heap* heap, const Classes& cls, Rng* rng, size_t n_live,
                size_t n_garbage, Graph* g) {
  for (size_t i = 0; i < n_live; ++i) {
    uint64_t kind = rng->NextBounded(4);
    ObjRef r;
    if (kind == 0) {
      r = heap->AllocateArray(cls.ref_array,
                              1 + static_cast<uint32_t>(rng->NextBounded(6)));
    } else if (kind == 1) {
      r = heap->AllocateInstance(cls.pair);
    } else {
      r = heap->AllocateInstance(cls.node);
      heap->SetField<double>(r, 0, static_cast<double>(i));
    }
    g->live.push_back(r);
  }
  // Wire random edges between live objects (every slot type accepted).
  for (ObjRef r : g->live) {
    auto pick = [&]() { return g->live[rng->NextBounded(g->live.size())]; };
    uint32_t cid = heap->ClassIdOf(r);
    if (cid == cls.node) {
      heap->SetRefField(r, kNodeNextOff, pick());
    } else if (cid == cls.pair) {
      heap->SetRefField(r, kPairAOff, pick());
      heap->SetRefField(r, kPairBOff, pick());
    } else {
      for (uint32_t i = 0; i < heap->ArrayLength(r); ++i) {
        heap->SetRefElem(r, i, pick());
      }
    }
  }
  for (size_t i = 0; i < g->live.size(); i += 3) {
    g->roots.refs().push_back(g->live[i]);
  }
  heap->AddRootProvider(&g->roots);
  for (size_t i = 0; i < n_garbage; ++i) {
    g->garbage.push_back(heap->AllocateInstance(cls.node));
  }
}

/// The test's own transitive closure from the heap's roots — the set a
/// monolithic mark must reproduce exactly.
std::set<ObjRef> ReachableSet(Heap* heap) {
  std::set<ObjRef> seen;
  std::vector<ObjRef> stack;
  heap->VisitRoots([&](ObjRef* s) {
    if (seen.insert(*s).second) stack.push_back(*s);
  });
  while (!stack.empty()) {
    ObjRef r = stack.back();
    stack.pop_back();
    heap->VisitRefSlots(r, [&](ObjRef* s) {
      if (*s != kNullRef && seen.insert(*s).second) stack.push_back(*s);
    });
  }
  return seen;
}

std::unique_ptr<Heap> MakeHeap(ClassRegistry* registry,
                               GcAlgorithm algo = GcAlgorithm::kParallelScavenge,
                               size_t bytes = 16u << 20) {
  HeapConfig cfg;
  cfg.heap_bytes = bytes;
  cfg.algorithm = algo;
  return std::make_unique<Heap>(cfg, registry);
}

/// Runs the sliced-vs-monolithic equivalence for one (seed, algorithm)
/// combination on its own heap. Uses EXPECT so it can run off-thread.
void RunSlicedVsMonolithic(uint64_t seed, GcAlgorithm algo) {
  ClassRegistry registry;
  Classes cls = RegisterClasses(&registry);
  auto heap = MakeHeap(&registry, algo);
  Rng rng(seed);
  Graph g;
  BuildGraph(heap.get(), cls, &rng, /*n_live=*/600, /*n_garbage=*/300, &g);

  std::set<ObjRef> reachable = ReachableSet(heap.get());
  EXPECT_GT(reachable.size(), g.live.size() / 3);  // roots alone

  // Phase 1: monolithic mark (budget 0 — a single Step drains fully, no
  // mutator progress). The marked set must be exactly the reachable set.
  const uint64_t epoch_mono = 1000 + seed;
  IncrementalMarker mono(heap.get());
  mono.Begin(epoch_mono);
  EXPECT_TRUE(mono.Step(/*budget_ms=*/0.0, /*standalone=*/false));
  for (ObjRef r : g.live) {
    EXPECT_EQ(GcIsMarkedIn(heap->GcWordOf(r), epoch_mono),
              reachable.count(r) != 0)
        << "monolithic mark disagrees with reachability for ref " << r;
  }
  for (ObjRef r : g.garbage) {
    EXPECT_FALSE(GcIsMarkedIn(heap->GcWordOf(r), epoch_mono));
  }

  // Phase 2: sliced mark over the same snapshot (the graph is unchanged),
  // with edge overwrites and fresh allocations between slices. SATB says
  // the marked set must still equal the snapshot's reachable set, plus
  // exactly the objects allocated during the cycle. Mutations rewire
  // edges only between snapshot-reachable objects: linking a
  // snapshot-unreachable object mid-cycle may legitimately mark it (the
  // scan of an unvisited gray object sees the new edge), which would
  // break the exact-equality assertion without being a marker bug.
  const uint64_t epoch_inc = epoch_mono + 1;
  std::vector<ObjRef> reach_vec(reachable.begin(), reachable.end());
  IncrementalMarker inc(heap.get());
  inc.Begin(epoch_inc);
  std::vector<ObjRef> fresh;
  bool done = false;
  int rounds = 0;
  while (!done) {
    done = inc.Step(/*budget_ms=*/1e-9, /*standalone=*/true);
    ++rounds;
    if (done) break;
    // Mutator progress: rewire a few live edges (the SATB log must keep
    // the overwritten targets marked) and allocate black.
    for (int i = 0; i < 8; ++i) {
      ObjRef victim = reach_vec[rng.NextBounded(reach_vec.size())];
      ObjRef target = reach_vec[rng.NextBounded(reach_vec.size())];
      uint32_t cid = heap->ClassIdOf(victim);
      if (cid == cls.node) {
        heap->SetRefField(victim, kNodeNextOff, target);
      } else if (cid == cls.pair) {
        heap->SetRefField(victim, kPairAOff, target);
      } else if (heap->ArrayLength(victim) > 0) {
        heap->SetRefElem(victim, 0, target);
      }
    }
    ObjRef baby = heap->AllocateInstance(cls.node);
    EXPECT_TRUE(GcIsMarkedIn(heap->GcWordOf(baby), epoch_inc))
        << "objects allocated mid-cycle must be marked black";
    fresh.push_back(baby);
  }
  EXPECT_GT(rounds, 1) << "tiny budget must force more than one slice";

  for (ObjRef r : g.live) {
    EXPECT_EQ(GcIsMarkedIn(heap->GcWordOf(r), epoch_inc),
              reachable.count(r) != 0)
        << "sliced mark disagrees with the monolithic live set for " << r;
  }
  for (ObjRef r : fresh) {
    EXPECT_TRUE(GcIsMarkedIn(heap->GcWordOf(r), epoch_inc));
  }
  for (ObjRef r : g.garbage) {
    EXPECT_FALSE(GcIsMarkedIn(heap->GcWordOf(r), epoch_inc));
  }

  // After the cycle completes the marker must be deregistered: new
  // allocations are no longer marked into its epoch.
  ObjRef late = heap->AllocateInstance(cls.node);
  EXPECT_FALSE(GcIsMarkedIn(heap->GcWordOf(late), epoch_inc));

  // No collection may have run — the raw refs above would have moved.
  EXPECT_EQ(heap->stats().minor_count, 0u);
  EXPECT_EQ(heap->stats().full_count, 0u);
  heap->RemoveRootProvider(&g.roots);
}

TEST(IncrementalMarkTest, SlicedMatchesMonolithicAcrossSeeds) {
  for (uint64_t seed : {1u, 7u, 23u, 99u}) {
    RunSlicedVsMonolithic(seed, GcAlgorithm::kParallelScavenge);
  }
}

TEST(IncrementalMarkTest, SlicedMatchesMonolithicAcrossCollectors) {
  for (GcAlgorithm algo :
       {GcAlgorithm::kParallelScavenge, GcAlgorithm::kConcurrentMarkSweep,
        GcAlgorithm::kG1}) {
    RunSlicedVsMonolithic(42, algo);
  }
}

// The heaps are single-mutator but independent, so the whole equivalence
// must hold with one heap per thread running concurrently (this is the
// TSan surface: marker state, SATB hooks, and histograms must never be
// shared across heaps).
TEST(IncrementalMarkTest, SlicedMatchesMonolithicOnConcurrentHeaps) {
  std::vector<std::thread> threads;
  for (uint64_t t = 0; t < 4; ++t) {
    threads.emplace_back(
        [t] { RunSlicedVsMonolithic(100 + t, GcAlgorithm::kParallelScavenge); });
  }
  for (auto& th : threads) th.join();
}

TEST(IncrementalMarkTest, BudgetZeroDrainsInOneSliceAfterRootScan) {
  ClassRegistry registry;
  Classes cls = RegisterClasses(&registry);
  auto heap = MakeHeap(&registry);
  Rng rng(5);
  Graph g;
  BuildGraph(heap.get(), cls, &rng, 200, 0, &g);

  uint64_t slices_before = heap->stats().mark_slices;
  IncrementalMarker m(heap.get());
  m.Begin(777);
  EXPECT_TRUE(m.Step(0.0, /*standalone=*/false));
  // Root-scan slice + one drain slice, nothing in between.
  EXPECT_EQ(heap->stats().mark_slices, slices_before + 2);
  EXPECT_FALSE(m.active());
  EXPECT_GT(m.live_bytes(), 0u);
  heap->RemoveRootProvider(&g.roots);
}

// A crash-wipe (Heap::Reset, as executor loss recovery does) with a mark
// cycle mid-flight must abandon the cycle, and the marker must be usable
// for a fresh cycle on the repopulated heap.
TEST(IncrementalMarkTest, CrashWipeAbandonsActiveCycle) {
  ClassRegistry registry;
  Classes cls = RegisterClasses(&registry);
  auto heap = MakeHeap(&registry);
  Rng rng(11);
  auto g = std::make_unique<Graph>();
  BuildGraph(heap.get(), cls, &rng, 2000, 0, g.get());

  IncrementalMarker m(heap.get());
  m.Begin(31);
  // A tiny budget cannot drain 2000 objects in its first 64-object batch.
  EXPECT_FALSE(m.Step(1e-9, /*standalone=*/true));
  EXPECT_TRUE(m.active());
  EXPECT_EQ(heap->active_marker(), &m);

  heap->RemoveRootProvider(&g->roots);
  g.reset();
  heap->Reset();  // wipes the heap and must Abandon() the marker
  EXPECT_FALSE(m.active());
  EXPECT_EQ(heap->active_marker(), nullptr);

  // The same marker starts a clean cycle on the wiped heap.
  Graph g2;
  BuildGraph(heap.get(), cls, &rng, 100, 50, &g2);
  std::set<ObjRef> reachable = ReachableSet(heap.get());
  m.Begin(32);
  EXPECT_TRUE(m.Step(0.0, /*standalone=*/false));
  for (ObjRef r : g2.live) {
    EXPECT_EQ(GcIsMarkedIn(heap->GcWordOf(r), 32), reachable.count(r) != 0);
  }
  heap->RemoveRootProvider(&g2.roots);
}

/// Runs a fixed allocation/collection schedule with a profiler attached
/// and returns its site table.
std::map<uint32_t, AllocationSiteProfiler::SiteStats> ProfileOnce(
    uint64_t profiler_seed) {
  ClassRegistry registry;
  Classes cls = RegisterClasses(&registry);
  auto heap = MakeHeap(&registry, GcAlgorithm::kParallelScavenge, 4u << 20);
  AllocationSiteProfiler profiler(/*sample_bytes=*/256, profiler_seed);
  heap->SetAllocProfiler(&profiler);

  VectorRootProvider retained;
  heap->AddRootProvider(&retained);
  Rng rng(3);
  for (int i = 0; i < 4000; ++i) {
    HandleScope scope(heap.get());
    ObjRef r;
    uint64_t kind = rng.NextBounded(3);
    if (kind == 0) {
      r = heap->AllocateArray(cls.ref_array,
                              1 + static_cast<uint32_t>(rng.NextBounded(8)));
    } else if (kind == 1) {
      r = heap->AllocateInstance(cls.pair);
    } else {
      r = heap->AllocateInstance(cls.node);
    }
    if (i % 7 == 0) retained.refs().push_back(r);
    if (i % 1000 == 999) heap->CollectMinor();
  }
  heap->CollectMinor();
  heap->SetAllocProfiler(nullptr);
  heap->RemoveRootProvider(&retained);
  EXPECT_GT(profiler.total_sampled(), 0u);
  return profiler.sites();
}

TEST(AllocationProfilerTest, SameSeedSameSiteTable) {
  auto a = ProfileOnce(17);
  auto b = ProfileOnce(17);
  ASSERT_EQ(a.size(), b.size());
  for (auto ita = a.begin(), itb = b.begin(); ita != a.end(); ++ita, ++itb) {
    EXPECT_EQ(ita->first, itb->first);
    EXPECT_EQ(ita->second.sampled, itb->second.sampled);
    EXPECT_EQ(ita->second.observed, itb->second.observed);
    EXPECT_EQ(ita->second.survived, itb->second.survived);
    EXPECT_EQ(ita->second.promoted, itb->second.promoted);
    EXPECT_EQ(ita->second.bytes, itb->second.bytes);
    EXPECT_EQ(ita->second.size_min, itb->second.size_min);
    EXPECT_EQ(ita->second.size_max, itb->second.size_max);
  }
}

TEST(AllocationProfilerTest, ObservesSurvivorsAcrossMinorCollections) {
  auto sites = ProfileOnce(17);
  uint64_t observed = 0;
  uint64_t sampled = 0;
  for (const auto& [cls_id, s] : sites) {
    sampled += s.sampled;
    observed += s.observed;
    EXPECT_LE(s.observed, s.sampled);
    EXPECT_EQ(s.observed, s.survived + s.promoted);
    EXPECT_LE(s.size_min, s.size_max);
  }
  EXPECT_GT(sampled, 0u);
  // Every 7th allocation is retained, so survivors must be observed.
  EXPECT_GT(observed, 0u);
}

}  // namespace
}  // namespace deca::jvm
