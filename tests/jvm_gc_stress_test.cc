#include <gtest/gtest.h>

#include <tuple>
#include <vector>

#include "common/random.h"
#include "core/page.h"
#include "jvm/class_registry.h"
#include "jvm/heap.h"

namespace deca::jvm {
namespace {

/// Randomized mutator fuzz against every collector at several heap sizes:
/// builds and mutates object graphs, drops roots, allocates arrays of many
/// shapes, and verifies full heap consistency after every collection
/// burst. The heap's Verify() checks that every reachable reference lands
/// on a live object start.
class GcFuzzTest
    : public ::testing::TestWithParam<std::tuple<GcAlgorithm, size_t>> {};

TEST_P(GcFuzzTest, RandomMutatorKeepsHeapConsistent) {
  auto [algo, heap_mb] = GetParam();
  ClassRegistry registry;
  uint32_t node = registry.RegisterClass(
      "Node", {{"value", FieldKind::kLong}, {"next", FieldKind::kRef}});
  uint32_t holder = registry.RegisterClass(
      "Holder", {{"a", FieldKind::kRef},
                 {"weight", FieldKind::kDouble},
                 {"b", FieldKind::kRef}});
  HeapConfig cfg;
  cfg.heap_bytes = heap_mb << 20;
  cfg.algorithm = algo;
  Heap heap(cfg, &registry);
  uint32_t holder_a = registry.Get(holder).FieldOffset("a");
  uint32_t holder_b = registry.Get(holder).FieldOffset("b");

  VectorRootProvider roots;
  heap.AddRootProvider(&roots);
  Rng rng(1234 + heap_mb);
  int64_t next_value = 0;

  for (int round = 0; round < 40; ++round) {
    // Allocate a burst of random structures.
    for (int i = 0; i < 400; ++i) {
      HandleScope scope(&heap);
      switch (rng.NextBounded(4)) {
        case 0: {  // linked pair
          Handle n1 = scope.Make(heap.AllocateInstance(node));
          heap.SetField<int64_t>(n1.get(), 0, next_value++);
          Handle n2 = scope.Make(heap.AllocateInstance(node));
          heap.SetField<int64_t>(n2.get(), 0, next_value++);
          heap.SetRefField(n2.get(), 8, n1.get());
          if (rng.NextBounded(4) == 0) roots.refs().push_back(n2.get());
          break;
        }
        case 1: {  // holder linking two random roots
          Handle h = scope.Make(heap.AllocateInstance(holder));
          if (!roots.refs().empty()) {
            heap.SetRefField(
                h.get(), holder_a,
                roots.refs()[rng.NextBounded(roots.refs().size())]);
            heap.SetRefField(
                h.get(), holder_b,
                roots.refs()[rng.NextBounded(roots.refs().size())]);
          }
          if (rng.NextBounded(3) == 0) roots.refs().push_back(h.get());
          break;
        }
        case 2: {  // primitive array garbage of random size
          heap.AllocateArray(registry.double_array_class(),
                             static_cast<uint32_t>(rng.NextBounded(500)));
          break;
        }
        default: {  // ref array pinning random roots
          Handle arr = scope.Make(
              heap.AllocateArray(registry.ref_array_class(), 16));
          for (uint32_t j = 0; j < 16 && !roots.refs().empty(); ++j) {
            heap.SetRefElem(
                arr.get(), j,
                roots.refs()[rng.NextBounded(roots.refs().size())]);
          }
          if (rng.NextBounded(5) == 0) roots.refs().push_back(arr.get());
          break;
        }
      }
    }
    // Randomly drop some roots, mutate others.
    if (roots.refs().size() > 300) {
      roots.refs().erase(roots.refs().begin(),
                         roots.refs().begin() + 200);
    }
    if (round % 3 == 0) heap.CollectMinor();
    if (round % 7 == 0) heap.CollectFull();
    heap.Verify();
  }
  heap.RemoveRootProvider(&roots);
  heap.CollectFull();
  heap.Verify();
}

TEST_P(GcFuzzTest, PageGroupsSurviveChurn) {
  auto [algo, heap_mb] = GetParam();
  ClassRegistry registry;
  uint32_t node = registry.RegisterClass(
      "Node", {{"value", FieldKind::kLong}, {"next", FieldKind::kRef}});
  HeapConfig cfg;
  cfg.heap_bytes = heap_mb << 20;
  cfg.algorithm = algo;
  Heap heap(cfg, &registry);

  core::PageGroup pages(&heap, 8 << 10);
  std::vector<core::SegPtr> segs;
  Rng rng(99);
  for (int round = 0; round < 20; ++round) {
    for (int i = 0; i < 200; ++i) {
      core::SegPtr s = pages.Append(24);
      StoreRaw<int64_t>(pages.Resolve(s), segs.size());
      segs.push_back(s);
    }
    // Object churn to force collections around the pages.
    for (int i = 0; i < 3000; ++i) heap.AllocateInstance(node);
    heap.CollectMinor();
  }
  heap.CollectFull();
  for (size_t i = 0; i < segs.size(); ++i) {
    ASSERT_EQ(LoadRaw<int64_t>(pages.Resolve(segs[i])),
              static_cast<int64_t>(i));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, GcFuzzTest,
    ::testing::Combine(::testing::Values(GcAlgorithm::kParallelScavenge,
                                         GcAlgorithm::kConcurrentMarkSweep,
                                         GcAlgorithm::kG1),
                       ::testing::Values<size_t>(4, 8, 24)),
    [](const ::testing::TestParamInfo<std::tuple<GcAlgorithm, size_t>>&
           info) {
      return std::string(GcAlgorithmName(std::get<0>(info.param))) + "_" +
             std::to_string(std::get<1>(info.param)) + "MB";
    });

/// Tenure-threshold sweep: objects must end up in the old generation after
/// exactly `threshold` surviving minor collections.
class TenureTest : public ::testing::TestWithParam<uint32_t> {};

TEST_P(TenureTest, PromotionHappensAtThreshold) {
  ClassRegistry registry;
  uint32_t node = registry.RegisterClass(
      "Node", {{"value", FieldKind::kLong}, {"next", FieldKind::kRef}});
  HeapConfig cfg;
  cfg.heap_bytes = 8u << 20;
  cfg.tenure_threshold = GetParam();
  Heap heap(cfg, &registry);
  HandleScope scope(&heap);
  Handle obj = scope.Make(heap.AllocateInstance(node));
  for (uint32_t i = 0; i + 1 < GetParam(); ++i) {
    heap.CollectMinor();
    EXPECT_TRUE(heap.collector()->IsYoung(obj.get()))
        << "promoted too early at minor GC " << i;
  }
  heap.CollectMinor();
  EXPECT_FALSE(heap.collector()->IsYoung(obj.get()));
}

INSTANTIATE_TEST_SUITE_P(Thresholds, TenureTest,
                         ::testing::Values(1u, 2u, 4u, 8u));

/// CMS fragmentation: alternate pinned/dropped large arrays until the free
/// list fragments, then force allocations that only fit after coalescing
/// or compaction fallback.
TEST(CmsFragmentationTest, CompactionFallbackRecovers) {
  ClassRegistry registry;
  HeapConfig cfg;
  cfg.heap_bytes = 8u << 20;
  cfg.algorithm = GcAlgorithm::kConcurrentMarkSweep;
  Heap heap(cfg, &registry);
  VectorRootProvider roots;
  heap.AddRootProvider(&roots);
  // Fill old gen with alternating pinned/garbage 64KB arrays.
  for (int i = 0; i < 80; ++i) {
    ObjRef a = heap.AllocateArray(registry.byte_array_class(), 60 << 10);
    if (i % 2 == 0) roots.refs().push_back(a);
  }
  heap.CollectFull();  // sweep -> fragmented free list
  // A 2x-sized allocation cannot fit a single fragment; the compaction
  // fallback must make room.
  ObjRef big = heap.AllocateArray(registry.byte_array_class(), 150 << 10);
  EXPECT_NE(big, kNullRef);
  heap.Verify();
  heap.RemoveRootProvider(&roots);
}

/// G1 evacuation failure: pin nearly the whole heap, then force young GCs.
/// The collector must degrade via in-place promotion, not crash, and the
/// heap must stay consistent.
TEST(G1EvacFailureTest, InPlacePromotionKeepsHeapConsistent) {
  ClassRegistry registry;
  uint32_t node = registry.RegisterClass(
      "Node", {{"value", FieldKind::kLong}, {"next", FieldKind::kRef}});
  HeapConfig cfg;
  cfg.heap_bytes = 8u << 20;
  cfg.algorithm = GcAlgorithm::kG1;
  Heap heap(cfg, &registry);
  VectorRootProvider roots;
  heap.AddRootProvider(&roots);
  // Pin ~70% of the heap.
  for (int i = 0; i < 56; ++i) {
    roots.refs().push_back(
        heap.AllocateArray(registry.byte_array_class(), 100 << 10));
  }
  // Allocate live young data and churn.
  for (int i = 0; i < 20000; ++i) {
    ObjRef n = heap.AllocateInstance(node);
    heap.SetField<int64_t>(n, 0, i);
    if (i % 50 == 0) roots.refs().push_back(n);
  }
  heap.CollectMinor();
  heap.Verify();
  // All pinned values intact.
  int64_t expect = 0;
  for (ObjRef r : roots.refs()) {
    if (heap.ClassIdOf(r) == node) {
      EXPECT_EQ(heap.GetField<int64_t>(r, 0), expect);
      expect += 50;
    }
  }
  heap.RemoveRootProvider(&roots);
}

/// Remembered sets must stay precise across promotion + mutation cycles.
TEST(RemsetTest, MutatedOldObjectsRediscoveredEachCycle) {
  for (GcAlgorithm algo :
       {GcAlgorithm::kParallelScavenge, GcAlgorithm::kConcurrentMarkSweep,
        GcAlgorithm::kG1}) {
    ClassRegistry registry;
    uint32_t node = registry.RegisterClass(
        "Node", {{"value", FieldKind::kLong}, {"next", FieldKind::kRef}});
    HeapConfig cfg;
    cfg.heap_bytes = 8u << 20;
    cfg.algorithm = algo;
    Heap heap(cfg, &registry);
    HandleScope scope(&heap);
    Handle old_obj = scope.Make(heap.AllocateInstance(node));
    for (uint32_t i = 0; i <= cfg.tenure_threshold; ++i) heap.CollectMinor();
    ASSERT_FALSE(heap.collector()->IsYoung(old_obj.get()));
    for (int round = 0; round < 10; ++round) {
      ObjRef young = heap.AllocateInstance(node);
      heap.SetField<int64_t>(young, 0, round);
      heap.SetRefField(old_obj.get(), 8, young);
      heap.CollectMinor();
      ObjRef now = heap.GetRefField(old_obj.get(), 8);
      ASSERT_NE(now, kNullRef) << GcAlgorithmName(algo);
      ASSERT_EQ(heap.GetField<int64_t>(now, 0), round)
          << GcAlgorithmName(algo);
    }
  }
}

}  // namespace
}  // namespace deca::jvm
