#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "spark/context.h"

namespace deca::spark {
namespace {

/// Test record: class Rec { long id; double val; }.
struct RecModel {
  explicit RecModel(jvm::ClassRegistry* registry) {
    class_id = registry->RegisterClass(
        "Rec",
        {{"id", jvm::FieldKind::kLong}, {"val", jvm::FieldKind::kDouble}});
    ops.managed_bytes = [](jvm::Heap*, jvm::ObjRef) -> uint64_t {
      return jvm::kHeaderBytes + 16;
    };
    ops.serialize = [](jvm::Heap* h, jvm::ObjRef r, ByteWriter* w) {
      w->WriteVarI64(h->GetField<int64_t>(r, 0));
      w->Write<double>(h->GetField<double>(r, 8));
    };
    uint32_t cid = class_id;
    ops.deserialize = [cid](jvm::Heap* h, ByteReader* r) {
      int64_t id = r->ReadVarI64();
      double val = r->Read<double>();
      jvm::ObjRef rec = h->AllocateInstance(cid);
      h->SetField<int64_t>(rec, 0, id);
      h->SetField<double>(rec, 8, val);
      return rec;
    };
  }

  uint32_t class_id;
  RecordOps ops;
};

SparkConfig OneExecutorConfig() {
  SparkConfig cfg;
  cfg.num_executors = 1;
  cfg.partitions_per_executor = 1;
  cfg.heap.heap_bytes = 16u << 20;
  cfg.spill_dir = "/tmp/deca_test_swap";
  return cfg;
}

/// A serialized block forced to disk must stream back byte-identical, with
/// the swap accounted as a pressure eviction and the reload's disk time
/// charged to spill_ms.
TEST(BlockStoreSwapTest, SerializedBlockRoundTripsThroughSwapFile) {
  SparkConfig cfg = OneExecutorConfig();
  cfg.cache_level = StorageLevel::kMemorySerialized;
  SparkContext ctx(cfg);
  RecModel model(ctx.registry());
  ctx.RegisterCachedRdd(3, &model.ops);

  const int n = 5000;
  std::vector<uint8_t> before;
  ctx.RunStage("build", [&](TaskContext& tc) {
    jvm::Heap* h = tc.heap();
    jvm::HandleScope scope(h);
    jvm::Handle arr =
        scope.Make(h->AllocateArray(h->registry()->ref_array_class(), n));
    for (int i = 0; i < n; ++i) {
      jvm::HandleScope inner(h);
      jvm::ObjRef rec = h->AllocateInstance(model.class_id);
      h->SetField<int64_t>(rec, 0, i * 31);
      h->SetField<double>(rec, 8, i * 0.125);
      h->SetRefElem(arr.get(), static_cast<uint32_t>(i), rec);
    }
    tc.cache()->PutObjects({3, 0}, arr.get(), n, &tc.metrics());
    // Snapshot the in-memory serialized bytes for the later comparison.
    LoadedBlock block = tc.cache()->Get({3, 0}, &tc.metrics());
    ASSERT_TRUE(block.valid());
    ASSERT_NE(block.serialized, jvm::kNullRef);
    const uint8_t* data = h->ArrayData(block.serialized);
    before.assign(data, data + h->ArrayLength(block.serialized));
  });
  ASSERT_FALSE(before.empty());

  Executor* e = ctx.executor(0);
  uint64_t held = e->memory()->storage_used();
  EXPECT_GT(held, 0u);

  // The OOM degradation ladder swaps the block out.
  uint64_t evicted = e->memory()->EvictStorageForOom(UINT64_MAX);
  EXPECT_EQ(evicted, 1u);
  EXPECT_EQ(e->cache()->pressure_evictions(), 1u);
  EXPECT_EQ(e->cache()->swap_out_count(), 1u);
  EXPECT_EQ(e->cache()->memory_bytes(), 0u);
  EXPECT_GT(e->cache()->disk_bytes(), 0u);
  // The swap released the block's storage reservation.
  EXPECT_EQ(e->memory()->storage_used(), 0u);
  e->VerifyMemoryAccounting();

  double spill0 = ctx.metrics().tasks.spill_ms;
  ctx.RunStage("reload", [&](TaskContext& tc) {
    jvm::Heap* h = tc.heap();
    LoadedBlock block = tc.cache()->Get({3, 0}, &tc.metrics());
    ASSERT_TRUE(block.valid());
    EXPECT_TRUE(block.temporary);
    ASSERT_NE(block.serialized, jvm::kNullRef);
    ASSERT_EQ(h->ArrayLength(block.serialized),
              static_cast<uint32_t>(before.size()));
    EXPECT_EQ(std::memcmp(h->ArrayData(block.serialized), before.data(),
                          before.size()),
              0);
  });
  // Streaming the block back from disk is spill time.
  EXPECT_GT(ctx.metrics().tasks.spill_ms, spill0);
  // Swapped blocks stay on disk; the counters must not drift.
  EXPECT_EQ(e->cache()->memory_bytes(), 0u);
  EXPECT_GT(e->cache()->disk_bytes(), 0u);
}

/// A Deca page-group block swaps as raw page bytes (no serialization) and
/// must reload byte-identical.
TEST(BlockStoreSwapTest, PageGroupBlockRoundTripsThroughSwapFile) {
  SparkConfig cfg = OneExecutorConfig();
  cfg.cache_level = StorageLevel::kDecaPages;
  cfg.deca_page_bytes = 4096;
  SparkContext ctx(cfg);

  const int n = 3000;
  std::vector<uint8_t> before(static_cast<size_t>(n) * 16);
  ctx.RunStage("build", [&](TaskContext& tc) {
    auto pages = std::make_shared<core::PageGroup>(tc.heap(), 4096);
    for (int i = 0; i < n; ++i) {
      core::SegPtr s = pages->Append(16);
      uint8_t* p = pages->Resolve(s);
      StoreRaw<int64_t>(p, 0x0123456789abcdefLL ^ i);
      StoreRaw<double>(p + 8, i * 3.5);
      std::memcpy(before.data() + static_cast<size_t>(i) * 16, p, 16);
    }
    tc.cache()->PutPages({9, 0}, std::move(pages), n, &tc.metrics());
  });

  Executor* e = ctx.executor(0);
  // The cached group was re-tagged execution -> storage.
  EXPECT_GT(e->memory()->storage_used(), 0u);
  EXPECT_EQ(e->memory()->exec_used(), 0u);

  uint64_t evicted = e->memory()->EvictStorageForOom(UINT64_MAX);
  EXPECT_EQ(evicted, 1u);
  EXPECT_EQ(e->cache()->pressure_evictions(), 1u);
  // Destroying the swapped group released its storage page charge.
  EXPECT_EQ(e->memory()->storage_used(), 0u);
  EXPECT_EQ(e->memory()->page_bytes(), 0u);
  e->VerifyMemoryAccounting();

  double ser0 = ctx.metrics().tasks.ser_ms;
  double spill0 = ctx.metrics().tasks.spill_ms;
  ctx.RunStage("reload", [&](TaskContext& tc) {
    LoadedBlock block = tc.cache()->Get({9, 0}, &tc.metrics());
    ASSERT_TRUE(block.valid());
    EXPECT_TRUE(block.temporary);
    ASSERT_NE(block.pages, nullptr);
    core::PageScanner scan(block.pages.get());
    size_t i = 0;
    while (!scan.AtEnd()) {
      ASSERT_LT(i, static_cast<size_t>(n));
      EXPECT_EQ(std::memcmp(scan.Cur(), before.data() + i * 16, 16), 0);
      scan.Advance(16);
      ++i;
    }
    EXPECT_EQ(i, static_cast<size_t>(n));
  });
  // Raw page reload: disk time but no deserialization.
  EXPECT_GT(ctx.metrics().tasks.spill_ms, spill0);
  EXPECT_EQ(ctx.metrics().tasks.ser_ms, ser0);
  EXPECT_EQ(ctx.metrics().tasks.deser_ms, 0.0);
}

SparkConfig TieredConfig() {
  SparkConfig cfg = OneExecutorConfig();
  cfg.storage_tiers = 3;
  return cfg;
}

/// Builds `blocks` object blocks of `n` Rec records each under rdd 3.
void PutRecBlocks(SparkContext* ctx, const RecModel& model, int blocks,
                  int n) {
  ctx->RunStage("build", [&](TaskContext& tc) {
    jvm::Heap* h = tc.heap();
    for (int b = 0; b < blocks; ++b) {
      jvm::HandleScope scope(h);
      jvm::Handle arr = scope.Make(h->AllocateArray(
          h->registry()->ref_array_class(), static_cast<uint32_t>(n)));
      for (int i = 0; i < n; ++i) {
        jvm::HandleScope inner(h);
        jvm::ObjRef rec = h->AllocateInstance(model.class_id);
        h->SetField<int64_t>(rec, 0, b * 100000 + i);
        h->SetField<double>(rec, 8, b + i * 0.5);
        h->SetRefElem(arr.get(), static_cast<uint32_t>(i), rec);
      }
      tc.cache()->PutObjects({3, b}, arr.get(), static_cast<uint32_t>(n),
                             &tc.metrics());
    }
  });
}

/// The full tier ladder: demotion compacts T0 heap blocks into off-heap
/// T1 buffers, pressure eviction then cascades T1 to disk, and accesses
/// climb back up one tier at a time under AdmitPolicy::kAlways.
TEST(BlockStoreTierTest, DemoteThenCascadeThenClimbBack) {
  SparkConfig cfg = TieredConfig();
  cfg.admit_policy = AdmitPolicy::kAlways;
  SparkContext ctx(cfg);
  RecModel model(ctx.registry());
  ctx.RegisterCachedRdd(3, &model.ops);
  PutRecBlocks(&ctx, model, 3, 500);

  Executor* e = ctx.executor(0);
  CacheManager* cache = e->cache();
  uint64_t heap_held = cache->memory_bytes();
  ASSERT_GT(heap_held, 0u);

  // Stage 1 of the eviction ladder: everything compacts into T1. The
  // packed payload is smaller than the heap estimate, and nothing has
  // touched disk yet.
  uint64_t demoted = cache->DemoteUnderPressure(UINT64_MAX, false);
  EXPECT_EQ(demoted, 3u);
  EXPECT_EQ(cache->demote_t1_count(), 3u);
  EXPECT_EQ(cache->memory_bytes(), cache->t1_resident_bytes());
  EXPECT_GT(cache->t1_resident_bytes(), 0u);
  EXPECT_LT(cache->memory_bytes(), heap_held);
  EXPECT_EQ(cache->disk_bytes(), 0u);
  EXPECT_EQ(cache->swap_out_count(), 0u);
  cache->VerifyAccounting();
  e->VerifyMemoryAccounting();

  // Stage 2: pressure eviction cascades T1 to swap files.
  uint64_t evicted = cache->EvictUnderPressure(UINT64_MAX);
  EXPECT_EQ(evicted, 3u);
  EXPECT_EQ(cache->swap_out_count(), 3u);
  EXPECT_EQ(cache->t1_resident_bytes(), 0u);
  EXPECT_EQ(cache->memory_bytes(), 0u);
  EXPECT_GT(cache->disk_bytes(), 0u);
  cache->VerifyAccounting();
  e->VerifyMemoryAccounting();

  // Climb back: a T2 hit re-admits into T1 (still a temporary view), the
  // following T1 hit re-admits into T0 (the canonical copy again).
  ctx.RunStage("climb", [&](TaskContext& tc) {
    LoadedBlock first = tc.cache()->Get({3, 1}, &tc.metrics());
    ASSERT_TRUE(first.valid());
    EXPECT_TRUE(first.temporary);
    LoadedBlock second = tc.cache()->Get({3, 1}, &tc.metrics());
    ASSERT_TRUE(second.valid());
    EXPECT_FALSE(second.temporary);
    ASSERT_NE(second.object_array, jvm::kNullRef);
    jvm::Heap* h = tc.heap();
    jvm::ObjRef rec = h->GetRefElem(second.object_array, 7);
    EXPECT_EQ(h->GetField<int64_t>(rec, 0), 100007);
    EXPECT_EQ(h->GetField<double>(rec, 8), 1 + 7 * 0.5);
  });
  TierCounters tiers = cache->tier_counters();
  EXPECT_EQ(tiers.t2_hits, 1u);
  EXPECT_EQ(tiers.t1_hits, 1u);
  EXPECT_EQ(tiers.promotes, 2u);
  EXPECT_GT(cache->memory_bytes(), 0u);
}

/// kOnSecondAccess: the first access to a demoted block is served as a
/// zero-materialization packed view; the second re-admits it.
TEST(BlockStoreTierTest, LazyGetPromotesOnSecondAccess) {
  SparkConfig cfg = TieredConfig();
  cfg.admit_policy = AdmitPolicy::kOnSecondAccess;
  SparkContext ctx(cfg);
  RecModel model(ctx.registry());
  ctx.RegisterCachedRdd(3, &model.ops);
  PutRecBlocks(&ctx, model, 1, 500);

  CacheManager* cache = ctx.executor(0)->cache();
  ASSERT_EQ(cache->DemoteUnderPressure(UINT64_MAX, false), 1u);
  uint64_t packed_size = cache->t1_resident_bytes();
  ASSERT_GT(packed_size, 0u);

  ctx.RunStage("first", [&](TaskContext& tc) {
    LoadedBlock b = tc.cache()->GetLazy({3, 0}, &tc.metrics());
    ASSERT_TRUE(b.valid());
    EXPECT_TRUE(b.temporary);
    EXPECT_EQ(b.object_array, jvm::kNullRef);  // nothing materialized
    ASSERT_NE(b.packed, nullptr);
    EXPECT_EQ(b.level, StorageLevel::kMemoryObjects);
  });
  EXPECT_EQ(cache->admit_reject_count(), 1u);
  EXPECT_EQ(cache->promote_count(), 0u);
  EXPECT_EQ(cache->t1_resident_bytes(), packed_size);  // still demoted

  ctx.RunStage("second", [&](TaskContext& tc) {
    LoadedBlock b = tc.cache()->GetLazy({3, 0}, &tc.metrics());
    ASSERT_TRUE(b.valid());
    EXPECT_FALSE(b.temporary);
    ASSERT_NE(b.object_array, jvm::kNullRef);
    jvm::Heap* h = tc.heap();
    jvm::ObjRef rec = h->GetRefElem(b.object_array, 123);
    EXPECT_EQ(h->GetField<int64_t>(rec, 0), 123);
  });
  EXPECT_EQ(cache->promote_count(), 1u);
  EXPECT_EQ(cache->t1_resident_bytes(), 0u);  // back in T0
  cache->VerifyAccounting();
}

/// kNever: demoted blocks are served as packed views forever; no access
/// pattern earns them back into the heap.
TEST(BlockStoreTierTest, AdmitNeverKeepsBlocksPacked) {
  SparkConfig cfg = TieredConfig();
  cfg.admit_policy = AdmitPolicy::kNever;
  SparkContext ctx(cfg);
  RecModel model(ctx.registry());
  ctx.RegisterCachedRdd(3, &model.ops);
  PutRecBlocks(&ctx, model, 1, 500);

  CacheManager* cache = ctx.executor(0)->cache();
  ASSERT_EQ(cache->DemoteUnderPressure(UINT64_MAX, false), 1u);
  uint64_t packed_size = cache->t1_resident_bytes();

  ctx.RunStage("hammer", [&](TaskContext& tc) {
    for (int i = 0; i < 5; ++i) {
      LoadedBlock b = tc.cache()->GetLazy({3, 0}, &tc.metrics());
      ASSERT_TRUE(b.valid());
      EXPECT_TRUE(b.temporary);
      ASSERT_NE(b.packed, nullptr);
    }
  });
  EXPECT_EQ(cache->admit_reject_count(), 5u);
  EXPECT_EQ(cache->promote_count(), 0u);
  EXPECT_EQ(cache->t1_resident_bytes(), packed_size);
  cache->VerifyAccounting();
}

/// A crash-wipe landing while blocks sit on every rung of the ladder
/// (T0 + T1 + T2) must zero all meters and lose every block — lineage
/// recovery, not the store, owns bringing them back.
TEST(BlockStoreTierTest, CrashWipeMidDemotionZeroesEveryTier) {
  SparkConfig cfg = TieredConfig();
  SparkContext ctx(cfg);
  RecModel model(ctx.registry());
  ctx.RegisterCachedRdd(3, &model.ops);
  PutRecBlocks(&ctx, model, 3, 500);

  Executor* e = ctx.executor(0);
  CacheManager* cache = e->cache();
  // One block to T1, then cascade it to T2, then another to T1: the
  // ladder is mid-demotion with one block on each rung.
  ASSERT_GT(cache->DemoteUnderPressure(1, false), 0u);
  ASSERT_GT(cache->EvictUnderPressure(1), 0u);
  ASSERT_GT(cache->DemoteUnderPressure(1, false), 0u);
  ASSERT_GT(cache->t1_resident_bytes(), 0u);
  ASSERT_GT(cache->disk_bytes(), 0u);
  ASSERT_GT(cache->memory_bytes(), cache->t1_resident_bytes());  // T0 left

  cache->DropAllForWipe();
  EXPECT_EQ(cache->memory_bytes(), 0u);
  EXPECT_EQ(cache->disk_bytes(), 0u);
  EXPECT_EQ(cache->t1_resident_bytes(), 0u);
  cache->VerifyAccounting();
  e->VerifyMemoryAccounting();

  ctx.RunStage("lost", [&](TaskContext& tc) {
    for (int b = 0; b < 3; ++b) {
      LoadedBlock blk = tc.cache()->Get({3, b}, &tc.metrics());
      EXPECT_FALSE(blk.valid());
    }
  });
  EXPECT_EQ(cache->tier_counters().misses, 3u);
}

/// Cache-thrash equivalence matrix: a working set ~2x the executor
/// budget hammered with skewed point reads must produce one digest across
/// {legacy 2-tier, 3-tier always/second/never} and across the sequential
/// and threaded runtimes (the threaded run doubles as the TSan exercise:
/// two executor threads churn their stores while the driver polls the
/// atomic meters at barriers).
TEST(BlockStoreTierTest, ThrashDigestMatrixAcrossTiersAndThreads) {
  struct Outcome {
    uint64_t digest = 0;
    uint64_t demotes = 0;
    uint64_t rejects = 0;
    uint64_t swaps = 0;
  };
  constexpr int kBlocksPerPartition = 6;
  constexpr int kRecsPerBlock = 256;

  auto run = [&](int tiers, AdmitPolicy admit, int threads,
                 bool crash_wipe) {
    SparkConfig cfg;
    cfg.num_executors = 2;
    cfg.partitions_per_executor = 2;
    cfg.num_worker_threads = threads;
    cfg.heap.heap_bytes = 16u << 20;
    // Tight unified budget: the per-executor working set is ~2x this, so
    // every variant demotes and/or swaps continuously.
    cfg.executor_memory_bytes = 64u << 10;
    cfg.storage_tiers = tiers;
    cfg.admit_policy = admit;
    cfg.spill_dir = "/tmp/deca_test_thrash";
    if (crash_wipe) {
      // Wipe executor 1 between thrash stages: every tier it held (T0,
      // T1, and swap files) is lost at once and must come back through
      // lineage replay.
      cfg.fault.crash_wipe_stage = 2;
      cfg.fault.crash_wipe_executor = 1;
    }
    SparkContext ctx(cfg);
    RecModel model(ctx.registry());
    ctx.RegisterCachedRdd(7, &model.ops);

    auto load_task = [&](TaskContext& tc) {
      jvm::Heap* h = tc.heap();
      for (int b = 0; b < kBlocksPerPartition; ++b) {
        jvm::HandleScope scope(h);
        jvm::Handle arr = scope.Make(h->AllocateArray(
            h->registry()->ref_array_class(), kRecsPerBlock));
        for (int i = 0; i < kRecsPerBlock; ++i) {
          jvm::HandleScope inner(h);
          jvm::ObjRef rec = h->AllocateInstance(model.class_id);
          h->SetField<int64_t>(rec, 0,
                               tc.partition() * 1000000 + b * 1000 + i);
          h->SetField<double>(rec, 8, tc.partition() + b * 0.25 + i);
          h->SetRefElem(arr.get(), static_cast<uint32_t>(i), rec);
        }
        tc.cache()->PutObjects({7, tc.partition() * 16 + b}, arr.get(),
                               kRecsPerBlock, &tc.metrics());
      }
    };
    ctx.RunStage("load", load_task);
    ctx.RegisterLineage(7, load_task);

    uint64_t digest = 0;
    for (int s = 0; s < 3; ++s) {
      auto blobs = ctx.RunCollectStage(
          "thrash", [&, s](TaskContext& tc) -> std::vector<uint8_t> {
            jvm::Heap* h = tc.heap();
            uint64_t x = 0x243f6a8885a308d3ULL ^
                         (static_cast<uint64_t>(s) << 32) ^
                         static_cast<uint64_t>(tc.partition());
            uint64_t d = 0;
            for (int q = 0; q < 200; ++q) {
              x = x * 6364136223846793005ULL + 1442695040888963407ULL;
              int b = static_cast<int>((x >> 33) % kBlocksPerPartition);
              int slot = static_cast<int>((x >> 13) % kRecsPerBlock);
              LoadedBlock blk = tc.cache()->Get(
                  {7, tc.partition() * 16 + b}, &tc.metrics());
              EXPECT_TRUE(blk.valid());
              jvm::ObjRef rec = h->GetRefElem(
                  blk.object_array, static_cast<uint32_t>(slot));
              uint64_t vbits;
              double v = h->GetField<double>(rec, 8);
              std::memcpy(&vbits, &v, sizeof(vbits));
              d = d * 1099511628211ULL ^
                  (static_cast<uint64_t>(h->GetField<int64_t>(rec, 0)) +
                   0x9e3779b97f4a7c15ULL * vbits);
            }
            ByteWriter w;
            w.WriteVarU64(d);
            return w.TakeBuffer();
          });
      for (const auto& blob : blobs) {
        ByteReader r(blob.data(), blob.size());
        digest = digest * 1099511628211ULL ^ r.ReadVarU64();
      }
    }

    Outcome out;
    out.digest = digest;
    for (int i = 0; i < cfg.num_executors; ++i) {
      CacheManager* c = ctx.executor(i)->cache();
      c->VerifyAccounting();
      out.demotes += c->demote_t1_count();
      out.rejects += c->admit_reject_count();
      out.swaps += c->swap_out_count();
    }
    return out;
  };

  Outcome legacy = run(2, AdmitPolicy::kOnSecondAccess, 0, false);
  Outcome always = run(3, AdmitPolicy::kAlways, 0, false);
  Outcome second = run(3, AdmitPolicy::kOnSecondAccess, 0, false);
  Outcome never = run(3, AdmitPolicy::kNever, 0, false);
  Outcome threaded = run(3, AdmitPolicy::kOnSecondAccess, 2, false);
  Outcome wiped = run(3, AdmitPolicy::kOnSecondAccess, 0, true);
  Outcome wiped_legacy = run(2, AdmitPolicy::kOnSecondAccess, 0, true);

  // One digest across every tier policy, both runtimes, and a mid-run
  // crash-wipe: tier placement may differ, record values may not.
  EXPECT_EQ(always.digest, legacy.digest);
  EXPECT_EQ(second.digest, legacy.digest);
  EXPECT_EQ(never.digest, legacy.digest);
  EXPECT_EQ(threaded.digest, legacy.digest);
  EXPECT_EQ(wiped.digest, legacy.digest);
  EXPECT_EQ(wiped_legacy.digest, legacy.digest);
  // The matrix only means something if the variants actually thrashed.
  EXPECT_EQ(legacy.demotes, 0u);  // no T1 without the middle tier
  EXPECT_GT(legacy.swaps, 0u);
  EXPECT_GT(always.demotes, 0u);
  EXPECT_GT(never.demotes, 0u);
  EXPECT_GT(never.rejects, 0u);
  // Same config, same counters: the threaded runtime is bit-identical.
  EXPECT_EQ(threaded.demotes, second.demotes);
  EXPECT_EQ(threaded.swaps, second.swaps);
}

}  // namespace
}  // namespace deca::spark
