#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "spark/context.h"

namespace deca::spark {
namespace {

/// Test record: class Rec { long id; double val; }.
struct RecModel {
  explicit RecModel(jvm::ClassRegistry* registry) {
    class_id = registry->RegisterClass(
        "Rec",
        {{"id", jvm::FieldKind::kLong}, {"val", jvm::FieldKind::kDouble}});
    ops.managed_bytes = [](jvm::Heap*, jvm::ObjRef) -> uint64_t {
      return jvm::kHeaderBytes + 16;
    };
    ops.serialize = [](jvm::Heap* h, jvm::ObjRef r, ByteWriter* w) {
      w->WriteVarI64(h->GetField<int64_t>(r, 0));
      w->Write<double>(h->GetField<double>(r, 8));
    };
    uint32_t cid = class_id;
    ops.deserialize = [cid](jvm::Heap* h, ByteReader* r) {
      int64_t id = r->ReadVarI64();
      double val = r->Read<double>();
      jvm::ObjRef rec = h->AllocateInstance(cid);
      h->SetField<int64_t>(rec, 0, id);
      h->SetField<double>(rec, 8, val);
      return rec;
    };
  }

  uint32_t class_id;
  RecordOps ops;
};

SparkConfig OneExecutorConfig() {
  SparkConfig cfg;
  cfg.num_executors = 1;
  cfg.partitions_per_executor = 1;
  cfg.heap.heap_bytes = 16u << 20;
  cfg.spill_dir = "/tmp/deca_test_swap";
  return cfg;
}

/// A serialized block forced to disk must stream back byte-identical, with
/// the swap accounted as a pressure eviction and the reload's disk time
/// charged to spill_ms.
TEST(BlockStoreSwapTest, SerializedBlockRoundTripsThroughSwapFile) {
  SparkConfig cfg = OneExecutorConfig();
  cfg.cache_level = StorageLevel::kMemorySerialized;
  SparkContext ctx(cfg);
  RecModel model(ctx.registry());
  ctx.RegisterCachedRdd(3, &model.ops);

  const int n = 5000;
  std::vector<uint8_t> before;
  ctx.RunStage("build", [&](TaskContext& tc) {
    jvm::Heap* h = tc.heap();
    jvm::HandleScope scope(h);
    jvm::Handle arr =
        scope.Make(h->AllocateArray(h->registry()->ref_array_class(), n));
    for (int i = 0; i < n; ++i) {
      jvm::HandleScope inner(h);
      jvm::ObjRef rec = h->AllocateInstance(model.class_id);
      h->SetField<int64_t>(rec, 0, i * 31);
      h->SetField<double>(rec, 8, i * 0.125);
      h->SetRefElem(arr.get(), static_cast<uint32_t>(i), rec);
    }
    tc.cache()->PutObjects({3, 0}, arr.get(), n, &tc.metrics());
    // Snapshot the in-memory serialized bytes for the later comparison.
    LoadedBlock block = tc.cache()->Get({3, 0}, &tc.metrics());
    ASSERT_TRUE(block.valid());
    ASSERT_NE(block.serialized, jvm::kNullRef);
    const uint8_t* data = h->ArrayData(block.serialized);
    before.assign(data, data + h->ArrayLength(block.serialized));
  });
  ASSERT_FALSE(before.empty());

  Executor* e = ctx.executor(0);
  uint64_t held = e->memory()->storage_used();
  EXPECT_GT(held, 0u);

  // The OOM degradation ladder swaps the block out.
  uint64_t evicted = e->memory()->EvictStorageForOom(UINT64_MAX);
  EXPECT_EQ(evicted, 1u);
  EXPECT_EQ(e->cache()->pressure_evictions(), 1u);
  EXPECT_EQ(e->cache()->swap_out_count(), 1u);
  EXPECT_EQ(e->cache()->memory_bytes(), 0u);
  EXPECT_GT(e->cache()->disk_bytes(), 0u);
  // The swap released the block's storage reservation.
  EXPECT_EQ(e->memory()->storage_used(), 0u);
  e->VerifyMemoryAccounting();

  double spill0 = ctx.metrics().tasks.spill_ms;
  ctx.RunStage("reload", [&](TaskContext& tc) {
    jvm::Heap* h = tc.heap();
    LoadedBlock block = tc.cache()->Get({3, 0}, &tc.metrics());
    ASSERT_TRUE(block.valid());
    EXPECT_TRUE(block.temporary);
    ASSERT_NE(block.serialized, jvm::kNullRef);
    ASSERT_EQ(h->ArrayLength(block.serialized),
              static_cast<uint32_t>(before.size()));
    EXPECT_EQ(std::memcmp(h->ArrayData(block.serialized), before.data(),
                          before.size()),
              0);
  });
  // Streaming the block back from disk is spill time.
  EXPECT_GT(ctx.metrics().tasks.spill_ms, spill0);
  // Swapped blocks stay on disk; the counters must not drift.
  EXPECT_EQ(e->cache()->memory_bytes(), 0u);
  EXPECT_GT(e->cache()->disk_bytes(), 0u);
}

/// A Deca page-group block swaps as raw page bytes (no serialization) and
/// must reload byte-identical.
TEST(BlockStoreSwapTest, PageGroupBlockRoundTripsThroughSwapFile) {
  SparkConfig cfg = OneExecutorConfig();
  cfg.cache_level = StorageLevel::kDecaPages;
  cfg.deca_page_bytes = 4096;
  SparkContext ctx(cfg);

  const int n = 3000;
  std::vector<uint8_t> before(static_cast<size_t>(n) * 16);
  ctx.RunStage("build", [&](TaskContext& tc) {
    auto pages = std::make_shared<core::PageGroup>(tc.heap(), 4096);
    for (int i = 0; i < n; ++i) {
      core::SegPtr s = pages->Append(16);
      uint8_t* p = pages->Resolve(s);
      StoreRaw<int64_t>(p, 0x0123456789abcdefLL ^ i);
      StoreRaw<double>(p + 8, i * 3.5);
      std::memcpy(before.data() + static_cast<size_t>(i) * 16, p, 16);
    }
    tc.cache()->PutPages({9, 0}, std::move(pages), n, &tc.metrics());
  });

  Executor* e = ctx.executor(0);
  // The cached group was re-tagged execution -> storage.
  EXPECT_GT(e->memory()->storage_used(), 0u);
  EXPECT_EQ(e->memory()->exec_used(), 0u);

  uint64_t evicted = e->memory()->EvictStorageForOom(UINT64_MAX);
  EXPECT_EQ(evicted, 1u);
  EXPECT_EQ(e->cache()->pressure_evictions(), 1u);
  // Destroying the swapped group released its storage page charge.
  EXPECT_EQ(e->memory()->storage_used(), 0u);
  EXPECT_EQ(e->memory()->page_bytes(), 0u);
  e->VerifyMemoryAccounting();

  double ser0 = ctx.metrics().tasks.ser_ms;
  double spill0 = ctx.metrics().tasks.spill_ms;
  ctx.RunStage("reload", [&](TaskContext& tc) {
    LoadedBlock block = tc.cache()->Get({9, 0}, &tc.metrics());
    ASSERT_TRUE(block.valid());
    EXPECT_TRUE(block.temporary);
    ASSERT_NE(block.pages, nullptr);
    core::PageScanner scan(block.pages.get());
    size_t i = 0;
    while (!scan.AtEnd()) {
      ASSERT_LT(i, static_cast<size_t>(n));
      EXPECT_EQ(std::memcmp(scan.Cur(), before.data() + i * 16, 16), 0);
      scan.Advance(16);
      ++i;
    }
    EXPECT_EQ(i, static_cast<size_t>(n));
  });
  // Raw page reload: disk time but no deserialization.
  EXPECT_GT(ctx.metrics().tasks.spill_ms, spill0);
  EXPECT_EQ(ctx.metrics().tasks.ser_ms, ser0);
  EXPECT_EQ(ctx.metrics().tasks.deser_ms, 0.0);
}

}  // namespace
}  // namespace deca::spark
