// Micro-batch streaming tests: epoch-region reclaim (tumbling and
// sliding), window pinning, bounded replay logs, parallel==sequential
// window digests across a seed x threads matrix, and mid-epoch
// crash-wipe recovery. Every RunEpochs boundary re-verifies the unified
// memory accounting identity (aborts on violation), so each end-to-end
// test here is also an accounting test.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <memory>
#include <vector>

#include "core/page.h"
#include "jvm/heap.h"
#include "spark/context.h"
#include "stream/epoch_region.h"
#include "stream/stream_context.h"
#include "workloads/stream.h"

namespace deca {
namespace {

spark::SparkConfig SmallConfig() {
  spark::SparkConfig cfg;
  cfg.num_executors = 2;
  cfg.partitions_per_executor = 2;
  cfg.heap.heap_bytes = 32u << 20;
  return cfg;
}

uint64_t PageBytesAcrossExecutors(spark::SparkContext& ctx) {
  uint64_t total = 0;
  for (int i = 0; i < ctx.num_executors(); ++i) {
    total += ctx.executor(i)->memory()->page_bytes();
  }
  return total;
}

// ---------------------------------------------------------------------------
// StreamContext + EpochRegion lifecycle (synthetic epochs).

TEST(EpochRegionTest, TumblingEpochsReclaimEverything) {
  spark::SparkConfig cfg = SmallConfig();
  spark::SparkContext ctx(cfg);
  stream::StreamOptions opts;
  opts.epochs = 6;
  opts.window = 2;

  stream::StreamContext sc(&ctx, opts);
  std::vector<int> window_starts;
  uint64_t adopted = 0;
  sc.RunEpochs(
      [&](int e, stream::EpochRegion& region) {
        // Build a page group on executor 0's heap and hand it to the
        // epoch (the paper's region-owns-pages reclamation).
        jvm::Heap* h = ctx.executor(0)->heap();
        auto pages = std::make_shared<core::PageGroup>(h, 4096);
        for (int i = 0; i < 64; ++i) {
          core::SegPtr seg = pages->Append(32);
          std::memset(pages->Resolve(seg), e + 1, 32);
        }
        adopted += pages->footprint_bytes();
        region.AdoptPages(0, std::move(pages));
        EXPECT_EQ(region.pins(), 1);  // exactly one tumbling window
        EXPECT_GT(region.adopted_page_bytes(), 0u);
      },
      [&](const stream::StreamWindow& w) {
        window_starts.push_back(w.start);
        EXPECT_EQ(w.end - w.start, opts.window);
        // Every covered epoch is still live while its window runs.
        for (int e = w.start; e < w.end; ++e) {
          ASSERT_NE(sc.region(e), nullptr);
          EXPECT_FALSE(sc.region(e)->reclaimed());
        }
      });

  EXPECT_EQ(sc.epochs_run(), 6);
  EXPECT_EQ(sc.windows_emitted(), 3);
  EXPECT_EQ(window_starts, (std::vector<int>{0, 2, 4}));
  EXPECT_EQ(sc.live_regions(), 0u);
  EXPECT_GE(sc.reclaimed_bytes(), adopted);
  EXPECT_EQ(PageBytesAcrossExecutors(ctx), 0u);
}

TEST(EpochRegionTest, SlidingWindowsPinEpochsUntilLastReaderRetires) {
  spark::SparkConfig cfg = SmallConfig();
  spark::SparkContext ctx(cfg);
  stream::StreamOptions opts;
  opts.epochs = 8;
  opts.window = 4;
  opts.slide = 2;

  stream::StreamContext sc(&ctx, opts);
  size_t max_live = 0;
  sc.RunEpochs(
      [&](int e, stream::EpochRegion& region) {
        jvm::Heap* h = ctx.executor(0)->heap();
        auto pages = std::make_shared<core::PageGroup>(h, 4096);
        pages->Append(64);
        region.AdoptPages(0, std::move(pages));
        max_live = std::max(max_live, sc.live_regions());
        // Overlap count: interior epochs are read by two windows.
        int expected = (e >= 2 && e <= 5) ? 2 : 1;
        EXPECT_EQ(region.pins(), expected) << "epoch " << e;
      },
      [&](const stream::StreamWindow& w) {
        for (int e = w.start; e < w.end; ++e) {
          ASSERT_NE(sc.region(e), nullptr) << "epoch " << e << " of window "
                                           << w.index;
        }
      });

  // [0,4) [2,6) [4,8): three complete windows; no region outlives its
  // last reader and the live set never exceeds one window span.
  EXPECT_EQ(sc.windows_emitted(), 3);
  EXPECT_EQ(sc.live_regions(), 0u);
  EXPECT_LE(max_live, static_cast<size_t>(opts.window));
  EXPECT_EQ(PageBytesAcrossExecutors(ctx), 0u);
}

TEST(EpochRegionTest, TailEpochsWithNoWindowReclaimAtOwnClose) {
  spark::SparkConfig cfg = SmallConfig();
  spark::SparkContext ctx(cfg);
  stream::StreamOptions opts;
  opts.epochs = 7;  // epochs 4..6 can never complete a window
  opts.window = 4;

  stream::StreamContext sc(&ctx, opts);
  sc.RunEpochs(
      [&](int e, stream::EpochRegion& region) {
        if (e >= 4) {
          EXPECT_EQ(region.pins(), 0) << "epoch " << e;
        }
      },
      [&](const stream::StreamWindow&) {});
  EXPECT_EQ(sc.windows_emitted(), 1);
  EXPECT_EQ(sc.live_regions(), 0u);
}

TEST(EpochRegionTest, ReclaimIsIdempotent) {
  spark::SparkConfig cfg = SmallConfig();
  spark::SparkContext ctx(cfg);
  stream::EpochRegion region(0, cfg.num_executors);
  jvm::Heap* h = ctx.executor(0)->heap();
  auto pages = std::make_shared<core::PageGroup>(h, 4096);
  pages->Append(128);
  region.AdoptPages(0, std::move(pages));

  uint64_t freed = region.Reclaim(&ctx);
  EXPECT_GT(freed, 0u);
  EXPECT_TRUE(region.reclaimed());
  EXPECT_EQ(region.Reclaim(&ctx), 0u);
  EXPECT_EQ(PageBytesAcrossExecutors(ctx), 0u);
}

// ---------------------------------------------------------------------------
// Streaming workloads: reclaim leaves nothing behind.

using StreamFn = workloads::StreamResult (*)(const workloads::StreamParams&);

workloads::StreamParams SmallStream(StreamFn, workloads::Mode mode,
                                    uint64_t seed, int threads) {
  workloads::StreamParams p;
  p.stream.epochs = 8;
  p.stream.window = 2;
  p.records_per_epoch = 4000;
  p.distinct_keys = 256;
  p.mode = mode;
  p.seed = seed;
  p.spark = SmallConfig();
  p.spark.num_worker_threads = threads;
  return p;
}

struct NamedStream {
  const char* name;
  StreamFn fn;
};

const NamedStream kStreams[] = {
    {"wordcount", workloads::RunStreamWordCount},
    {"sessionize", workloads::RunStreamSessionize},
    {"sliding", workloads::RunStreamSlidingAgg},
};

TEST(StreamWorkloadTest, SteadyStateEndsWithEmptyDataPlane) {
  for (const auto& s : kStreams) {
    for (auto mode : {workloads::Mode::kDeca, workloads::Mode::kSpark}) {
      workloads::StreamResult r =
          s.fn(SmallStream(s.fn, mode, /*seed=*/3, /*threads=*/0));
      EXPECT_EQ(r.run.epochs_run, 8u) << s.name;
      EXPECT_EQ(r.windows, 4u) << s.name;
      EXPECT_GT(r.records_processed, 0u) << s.name;
      // All epoch state reclaimed: the data-plane footprint sampled at
      // the final epoch boundary (pages + cache memory + swap) is empty.
      // (cached_mb reports the PEAK, which is legitimately nonzero.)
      EXPECT_EQ(r.run.footprint_end_bytes, 0u) << s.name;
      EXPECT_GT(r.run.cached_mb, 0) << s.name;
      EXPECT_GT(r.run.epoch_reclaimed_bytes, 0u) << s.name;
    }
  }
}

TEST(StreamWorkloadTest, SlidingWindowsOverlapCorrectly) {
  workloads::StreamParams p = SmallStream(
      workloads::RunStreamSlidingAgg, workloads::Mode::kDeca, 3, 0);
  p.stream.epochs = 10;
  p.stream.window = 4;
  p.stream.slide = 2;
  workloads::StreamResult r = workloads::RunStreamSlidingAgg(p);
  EXPECT_EQ(r.windows, 4u);  // [0,4) [2,6) [4,8) [6,10)
  EXPECT_GT(r.digest, 0u);
}

// ---------------------------------------------------------------------------
// Determinism: parallel == sequential, Deca == Spark == SparkSer, across
// seeds. Window digests are bit-compared.

TEST(StreamDeterminismTest, ParallelMatchesSequentialAcrossSeeds) {
  for (const auto& s : kStreams) {
    for (uint64_t seed : {1ull, 7ull}) {
      workloads::StreamResult seq =
          s.fn(SmallStream(s.fn, workloads::Mode::kDeca, seed, 0));
      workloads::StreamResult par =
          s.fn(SmallStream(s.fn, workloads::Mode::kDeca, seed, 2));
      EXPECT_EQ(seq.digest, par.digest) << s.name << " seed " << seed;
      EXPECT_EQ(seq.windows, par.windows) << s.name << " seed " << seed;
      EXPECT_EQ(seq.records_processed, par.records_processed)
          << s.name << " seed " << seed;
    }
  }
}

TEST(StreamDeterminismTest, ModesAgreeOnWindowOutputs) {
  for (const auto& s : kStreams) {
    workloads::StreamResult deca =
        s.fn(SmallStream(s.fn, workloads::Mode::kDeca, 5, 0));
    workloads::StreamResult spark =
        s.fn(SmallStream(s.fn, workloads::Mode::kSpark, 5, 0));
    workloads::StreamResult ser =
        s.fn(SmallStream(s.fn, workloads::Mode::kSparkSer, 5, 0));
    EXPECT_EQ(deca.digest, spark.digest) << s.name;
    EXPECT_EQ(deca.digest, ser.digest) << s.name;
    EXPECT_EQ(deca.windows, spark.windows) << s.name;
  }
}

// ---------------------------------------------------------------------------
// Crash-wipe mid-epoch: lineage replay reproduces bit-identical windows.

TEST(StreamFaultTest, MidEpochCrashWipeReproducesWindows) {
  for (const auto& s : kStreams) {
    for (auto mode : {workloads::Mode::kDeca, workloads::Mode::kSpark}) {
      workloads::StreamResult clean =
          s.fn(SmallStream(s.fn, mode, /*seed=*/11, /*threads=*/0));
      // Wipe executor 1 a few stages in — mid-stream, while at least one
      // epoch region is live and holds adopted blocks.
      workloads::StreamParams p =
          SmallStream(s.fn, mode, /*seed=*/11, /*threads=*/0);
      p.spark.fault.seed = 11;
      p.spark.fault.crash_wipe_stage = 5;
      p.spark.fault.crash_wipe_executor = 1;
      workloads::StreamResult wiped = s.fn(p);
      EXPECT_EQ(wiped.run.executor_wipes, 1u) << s.name;
      EXPECT_EQ(clean.digest, wiped.digest)
          << s.name << " mode " << workloads::ModeName(mode);
      EXPECT_EQ(clean.windows, wiped.windows) << s.name;
    }
  }
}

TEST(StreamFaultTest, CrashWipeBeforeWindowStageStillReproduces) {
  // Stage 4 is the first window merge of the tumbling wordcount stream
  // (map,reduce / map,reduce, window): the wiped executor's cached epoch
  // blocks must be rebuilt from lineage before the window reads them.
  workloads::StreamResult clean = workloads::RunStreamWordCount(
      SmallStream(workloads::RunStreamWordCount, workloads::Mode::kDeca, 13,
                  0));
  workloads::StreamParams p = SmallStream(workloads::RunStreamWordCount,
                                          workloads::Mode::kDeca, 13, 0);
  p.spark.fault.crash_wipe_stage = 4;
  p.spark.fault.crash_wipe_executor = 0;
  workloads::StreamResult wiped = workloads::RunStreamWordCount(p);
  EXPECT_EQ(wiped.run.executor_wipes, 1u);
  EXPECT_EQ(clean.digest, wiped.digest);
}

// ---------------------------------------------------------------------------
// Replay log stays bounded: reclaim retires epoch lineage.

TEST(StreamLineageTest, ReclaimDropsEpochLineage) {
  spark::SparkConfig cfg = SmallConfig();
  workloads::StreamParams p = SmallStream(
      workloads::RunStreamWordCount, workloads::Mode::kDeca, 3, 0);
  p.stream.epochs = 12;
  // The workload constructs its own context, so probe the mechanism
  // directly: register lineage, adopt, reclaim, count.
  spark::SparkContext ctx(cfg);
  stream::EpochRegion region(0, cfg.num_executors);
  int token = ctx.RegisterLineage(1000, [](spark::TaskContext&) {});
  region.AdoptLineage(token);
  EXPECT_EQ(ctx.replay_stage_count(), 1u);
  region.Reclaim(&ctx);
  EXPECT_EQ(ctx.replay_stage_count(), 0u);
  // Unknown tokens are ignored (already-dropped lineage).
  ctx.DropLineage(token);
  EXPECT_EQ(ctx.replay_stage_count(), 0u);
}

TEST(StreamLineageTest, FootprintStaysBoundedOverManyEpochs) {
  workloads::StreamParams p = SmallStream(
      workloads::RunStreamWordCount, workloads::Mode::kDeca, 3, 0);
  p.stream.epochs = 24;
  p.stream.window = 2;
  workloads::StreamResult r = workloads::RunStreamWordCount(p);
  EXPECT_EQ(r.run.epochs_run, 24u);
  // Steady state: the data-plane footprint at the last epoch boundary is
  // no worse than the early-run baseline plus slack (bounded drift).
  EXPECT_LE(r.run.footprint_end_bytes,
            r.run.footprint_base_bytes + (64u << 10));
  EXPECT_GE(r.run.footprint_peak_bytes, r.run.footprint_end_bytes);
}

}  // namespace
}  // namespace deca
