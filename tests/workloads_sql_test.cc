#include <gtest/gtest.h>

#include "workloads/sql.h"

namespace deca::workloads {
namespace {

SqlParams SmallSql(SqlEngine engine) {
  SqlParams p;
  p.rankings_rows = 40000;
  p.uservisits_rows = 80000;
  p.engine = engine;
  p.spark.num_executors = 2;
  p.spark.partitions_per_executor = 2;
  p.spark.heap.heap_bytes = 64u << 20;
  p.spark.spill_dir = "/tmp/deca_test_spill_sql";
  return p;
}

class SqlEngineTest : public ::testing::TestWithParam<SqlEngine> {};

TEST_P(SqlEngineTest, QueriesProduceSaneResults) {
  SqlResult r = RunSqlQueries(SmallSql(GetParam()));
  // pageRank uniform in [0, 1000): ~90% pass "> 100".
  EXPECT_GT(r.q1_matches, 30000u);
  EXPECT_LT(r.q1_matches, 40000u);
  EXPECT_GT(r.q1_rank_sum, 0.0);
  // The 5-char prefix "ddd.d" has exactly 10^4 possible values; with 80k
  // rows nearly all appear.
  EXPECT_GT(r.q2_groups, 9000u);
  EXPECT_LE(r.q2_groups, 10000u);
  // adRevenue uniform in [0,1): total ~ rows/2.
  EXPECT_NEAR(r.q2_revenue_sum, 40000.0, 2000.0);
  EXPECT_GT(r.cached_mb, 0.0);
}

INSTANTIATE_TEST_SUITE_P(
    Engines, SqlEngineTest,
    ::testing::Values(SqlEngine::kSparkRdd, SqlEngine::kSparkSql,
                      SqlEngine::kDeca),
    [](const ::testing::TestParamInfo<SqlEngine>& info) {
      return std::string(SqlEngineName(info.param));
    });

TEST(SqlTest, EnginesAgreeExactly) {
  SqlResult spark = RunSqlQueries(SmallSql(SqlEngine::kSparkRdd));
  SqlResult sql = RunSqlQueries(SmallSql(SqlEngine::kSparkSql));
  SqlResult deca = RunSqlQueries(SmallSql(SqlEngine::kDeca));
  EXPECT_EQ(spark.q1_matches, sql.q1_matches);
  EXPECT_EQ(spark.q1_matches, deca.q1_matches);
  EXPECT_DOUBLE_EQ(spark.q1_rank_sum, sql.q1_rank_sum);
  EXPECT_DOUBLE_EQ(spark.q1_rank_sum, deca.q1_rank_sum);
  EXPECT_EQ(spark.q2_groups, sql.q2_groups);
  EXPECT_EQ(spark.q2_groups, deca.q2_groups);
  EXPECT_NEAR(spark.q2_revenue_sum, sql.q2_revenue_sum, 1e-6);
  EXPECT_NEAR(spark.q2_revenue_sum, deca.q2_revenue_sum, 1e-6);
}

TEST(SqlTest, ColumnarAndDecaCacheLessThanObjects) {
  SqlResult spark = RunSqlQueries(SmallSql(SqlEngine::kSparkRdd));
  SqlResult sql = RunSqlQueries(SmallSql(SqlEngine::kSparkSql));
  SqlResult deca = RunSqlQueries(SmallSql(SqlEngine::kDeca));
  // Table 6 shape: Spark object caching is ~3x larger than columnar/Deca.
  EXPECT_GT(spark.cached_mb, 1.5 * sql.cached_mb);
  EXPECT_GT(spark.cached_mb, 1.5 * deca.cached_mb);
}

}  // namespace
}  // namespace deca::workloads
