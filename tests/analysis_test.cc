#include <gtest/gtest.h>

#include "analysis/global_classifier.h"
#include "analysis/local_classifier.h"
#include "analysis/method_ir.h"
#include "analysis/sym_expr.h"

namespace deca::analysis {
namespace {

using jvm::FieldKind;

TEST(SymExprTest, ConstantsAndArithmetic) {
  SymExpr a = SymExpr::Constant(2);
  SymExpr b = SymExpr::Constant(3);
  EXPECT_TRUE((a + b).IsConstant());
  EXPECT_EQ((a + b).ConstantValue(), 5);
  EXPECT_EQ((a * 4).ConstantValue(), 8);
  EXPECT_EQ((a - b).ConstantValue(), -1);
}

TEST(SymExprTest, PaperFigure4Example) {
  // val a = input.readString().toInt()  // a == Symbol(1)
  // val b = 2 + a - 1                   // b == Symbol(1) + 1
  // val c = a + 1                       // c == Symbol(1) + 1
  SymExpr a = SymExpr::Symbol(1);
  SymExpr b = SymExpr::Constant(2) + a - SymExpr::Constant(1);
  SymExpr c = a + SymExpr::Constant(1);
  EXPECT_TRUE(b.EquivalentTo(c));
  EXPECT_FALSE(b.EquivalentTo(a));
}

TEST(SymExprTest, DifferentSymbolsNotEquivalent) {
  SymExpr s1 = SymExpr::Symbol(1);
  SymExpr s2 = SymExpr::Symbol(2);
  EXPECT_FALSE(s1.EquivalentTo(s2));
  EXPECT_TRUE((s1 + s2).EquivalentTo(s2 + s1));
  // s1 - s1 cancels to a constant.
  EXPECT_TRUE((s1 - s1).IsConstant());
}

TEST(SymExprTest, UnknownNeverEquivalent) {
  SymExpr u = SymExpr::Unknown();
  EXPECT_FALSE(u.EquivalentTo(u));
  EXPECT_TRUE((u + SymExpr::Constant(1)).is_unknown());
}

// -- local classification -----------------------------------------------------

class ClassifierTest : public ::testing::Test {
 protected:
  TypeUniverse u_;
  LocalClassifier local_;
};

TEST_F(ClassifierTest, PrimitiveIsSfst) {
  EXPECT_EQ(local_.Classify(u_.Primitive(FieldKind::kDouble)),
            SizeType::kStaticFixed);
}

TEST_F(ClassifierTest, AllPrimitiveFieldsIsSfst) {
  UdtType* point = u_.DefineClass("Point");
  u_.AddField(point, "x", false, {u_.Primitive(FieldKind::kDouble)});
  u_.AddField(point, "y", false, {u_.Primitive(FieldKind::kDouble)});
  EXPECT_EQ(local_.Classify(point), SizeType::kStaticFixed);
}

TEST_F(ClassifierTest, PrimitiveArrayIsRfst) {
  const UdtType* arr =
      u_.DefineArray("double[]", {u_.Primitive(FieldKind::kDouble)});
  EXPECT_EQ(local_.Classify(arr), SizeType::kRuntimeFixed);
}

TEST_F(ClassifierTest, ArrayOfArraysIsVst) {
  const UdtType* inner =
      u_.DefineArray("double[]", {u_.Primitive(FieldKind::kDouble)});
  const UdtType* outer = u_.DefineArray("double[][]", {inner});
  EXPECT_EQ(local_.Classify(outer), SizeType::kVariable);
}

TEST_F(ClassifierTest, FinalArrayFieldIsRfst) {
  const UdtType* arr =
      u_.DefineArray("double[]", {u_.Primitive(FieldKind::kDouble)});
  UdtType* holder = u_.DefineClass("Holder");
  u_.AddField(holder, "data", /*is_final=*/true, {arr});
  EXPECT_EQ(local_.Classify(holder), SizeType::kRuntimeFixed);
}

TEST_F(ClassifierTest, NonFinalArrayFieldIsVst) {
  const UdtType* arr =
      u_.DefineArray("double[]", {u_.Primitive(FieldKind::kDouble)});
  UdtType* holder = u_.DefineClass("Holder");
  u_.AddField(holder, "data", /*is_final=*/false, {arr});
  EXPECT_EQ(local_.Classify(holder), SizeType::kVariable);
}

TEST_F(ClassifierTest, RecursiveTypeDetected) {
  UdtType* node = u_.DefineClass("ListNode");
  u_.AddField(node, "value", false, {u_.Primitive(FieldKind::kInt)});
  u_.AddField(node, "next", false, {node});
  EXPECT_EQ(local_.Classify(node), SizeType::kRecurDef);
}

TEST_F(ClassifierTest, MutualRecursionDetected) {
  UdtType* a = u_.DefineClass("A");
  UdtType* b = u_.DefineClass("B");
  u_.AddField(a, "b", false, {b});
  u_.AddField(b, "a", false, {a});
  EXPECT_EQ(local_.Classify(a), SizeType::kRecurDef);
  EXPECT_EQ(local_.Classify(b), SizeType::kRecurDef);
}

TEST_F(ClassifierTest, SharedDiamondIsNotRecursive) {
  // A -> {B, C}, B -> D, C -> D: shared but acyclic.
  UdtType* d = u_.DefineClass("D");
  u_.AddField(d, "v", false, {u_.Primitive(FieldKind::kLong)});
  UdtType* b = u_.DefineClass("B");
  u_.AddField(b, "d", false, {d});
  UdtType* c = u_.DefineClass("C");
  u_.AddField(c, "d", false, {d});
  UdtType* a = u_.DefineClass("A");
  u_.AddField(a, "b", false, {b});
  u_.AddField(a, "c", false, {c});
  EXPECT_EQ(local_.Classify(a), SizeType::kStaticFixed);
}

/// Builds the paper's running example (Figures 1 and 3):
///   class DenseVector(val data: Array[Double], offset/stride/length: Int)
///   class LabeledPoint(var label: Double, var features: Vector[Double])
struct LabeledPointModel {
  explicit LabeledPointModel(TypeUniverse* u) {
    data_array = u->DefineArray("Array[Double]",
                                {u->Primitive(FieldKind::kDouble)});
    dense_vector = u->DefineClass("DenseVector");
    u->AddField(dense_vector, "data", /*is_final=*/true, {data_array});
    u->AddField(dense_vector, "offset", false,
                {u->Primitive(FieldKind::kInt)});
    u->AddField(dense_vector, "stride", false,
                {u->Primitive(FieldKind::kInt)});
    u->AddField(dense_vector, "length", false,
                {u->Primitive(FieldKind::kInt)});
    labeled_point = u->DefineClass("LabeledPoint");
    u->AddField(labeled_point, "label", false,
                {u->Primitive(FieldKind::kDouble)});
    u->AddField(labeled_point, "features", /*is_final=*/false,
                {dense_vector});
  }

  const UdtType* data_array;
  UdtType* dense_vector;
  UdtType* labeled_point;
};

TEST_F(ClassifierTest, PaperLabeledPointLocallyVst) {
  LabeledPointModel m(&u_);
  // Section 3.2: "both features and LabeledPoint belong to VST".
  EXPECT_EQ(local_.Classify(m.dense_vector), SizeType::kRuntimeFixed);
  EXPECT_EQ(local_.Classify(m.labeled_point), SizeType::kVariable);
}

// -- global classification ----------------------------------------------------

// GCC at -O3 flags the aggregate Statement initializers in the tests
// below as maybe-uninitialized through the inlined std::string members of
// FieldRef — a known reachability false positive (every string is
// constructed before use).
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"
#endif

TEST_F(ClassifierTest, PaperLabeledPointGloballySfst) {
  LabeledPointModel m(&u_);
  // The LR map UDF: `new LabeledPoint(new DenseVector(new Array[Double](D)),
  // label)` with global constant D (paper Section 3.3).
  CallGraph cg;
  MethodInfo map_udf;
  map_udf.name = "LR.map";
  map_udf.statements.push_back(
      {Statement::Kind::kCall, {}, nullptr, {}, "LabeledPoint.<init>"});
  MethodInfo lp_ctor;
  lp_ctor.name = "LabeledPoint.<init>";
  lp_ctor.ctor_of = m.labeled_point;
  lp_ctor.statements.push_back({Statement::Kind::kFieldAssign,
                                {m.labeled_point, "features"},
                                nullptr,
                                {},
                                ""});
  lp_ctor.statements.push_back(
      {Statement::Kind::kCall, {}, nullptr, {}, "DenseVector.<init>"});
  MethodInfo dv_ctor;
  dv_ctor.name = "DenseVector.<init>";
  dv_ctor.ctor_of = m.dense_vector;
  dv_ctor.statements.push_back({Statement::Kind::kNewArrayAssign,
                                {m.dense_vector, "data"},
                                m.data_array,
                                SymExpr::Constant(10),
                                ""});
  cg.AddMethod(map_udf);
  cg.AddMethod(lp_ctor);
  cg.AddMethod(dv_ctor);
  cg.SetEntry("LR.map");

  GlobalClassifier global(&cg);
  EXPECT_EQ(global.Classify(m.labeled_point), SizeType::kStaticFixed);
  EXPECT_EQ(global.Classify(m.dense_vector), SizeType::kStaticFixed);
}

TEST_F(ClassifierTest, DifferentAllocationLengthsStayRfst) {
  LabeledPointModel m(&u_);
  CallGraph cg;
  MethodInfo entry;
  entry.name = "main";
  // Two allocation sites with different lengths: not fixed-length.
  entry.statements.push_back({Statement::Kind::kNewArrayAssign,
                              {m.dense_vector, "data"},
                              m.data_array,
                              SymExpr::Constant(10),
                              ""});
  entry.statements.push_back({Statement::Kind::kNewArrayAssign,
                              {m.dense_vector, "data"},
                              m.data_array,
                              SymExpr::Constant(20),
                              ""});
  // `features` assigned only in the constructor.
  MethodInfo lp_ctor;
  lp_ctor.name = "LabeledPoint.<init>";
  lp_ctor.ctor_of = m.labeled_point;
  lp_ctor.statements.push_back({Statement::Kind::kFieldAssign,
                                {m.labeled_point, "features"},
                                nullptr,
                                {},
                                ""});
  entry.statements.push_back(
      {Statement::Kind::kCall, {}, nullptr, {}, "LabeledPoint.<init>"});
  cg.AddMethod(entry);
  cg.AddMethod(lp_ctor);
  cg.SetEntry("main");

  GlobalClassifier global(&cg);
  // DenseVector cannot be SFST (lengths differ) but data is final, so it
  // stays RFST; LabeledPoint.features is init-only, so RRefine succeeds.
  EXPECT_EQ(global.Classify(m.dense_vector), SizeType::kRuntimeFixed);
  EXPECT_EQ(global.Classify(m.labeled_point), SizeType::kRuntimeFixed);
}

TEST_F(ClassifierTest, ReassignedFieldStaysVst) {
  LabeledPointModel m(&u_);
  CallGraph cg;
  MethodInfo entry;
  entry.name = "main";
  // `features` reassigned outside any constructor: not init-only.
  entry.statements.push_back({Statement::Kind::kFieldAssign,
                              {m.labeled_point, "features"},
                              nullptr,
                              {},
                              ""});
  cg.AddMethod(entry);
  cg.SetEntry("main");
  GlobalClassifier global(&cg);
  EXPECT_EQ(global.Classify(m.labeled_point), SizeType::kVariable);
}

TEST_F(ClassifierTest, SymbolicButEqualLengthsRefineToSfst) {
  // Paper Figure 4: lengths `2 + a - 1` and `a + 1` are provably equal even
  // though `a` is unknown at optimization time.
  LabeledPointModel m(&u_);
  SymExpr a = SymExpr::Symbol(1);
  CallGraph cg;
  MethodInfo entry;
  entry.name = "main";
  entry.statements.push_back({Statement::Kind::kNewArrayAssign,
                              {m.dense_vector, "data"},
                              m.data_array,
                              SymExpr::Constant(2) + a - SymExpr::Constant(1),
                              ""});
  entry.statements.push_back({Statement::Kind::kNewArrayAssign,
                              {m.dense_vector, "data"},
                              m.data_array,
                              a + SymExpr::Constant(1),
                              ""});
  MethodInfo lp_ctor;
  lp_ctor.name = "LabeledPoint.<init>";
  lp_ctor.ctor_of = m.labeled_point;
  lp_ctor.statements.push_back({Statement::Kind::kFieldAssign,
                                {m.labeled_point, "features"},
                                nullptr,
                                {},
                                ""});
  entry.statements.push_back(
      {Statement::Kind::kCall, {}, nullptr, {}, "LabeledPoint.<init>"});
  cg.AddMethod(entry);
  cg.AddMethod(lp_ctor);
  cg.SetEntry("main");
  GlobalClassifier global(&cg);
  EXPECT_EQ(global.Classify(m.labeled_point), SizeType::kStaticFixed);
}

TEST_F(ClassifierTest, UnreachableMethodsIgnored) {
  LabeledPointModel m(&u_);
  CallGraph cg;
  MethodInfo entry;
  entry.name = "main";
  entry.statements.push_back({Statement::Kind::kNewArrayAssign,
                              {m.dense_vector, "data"},
                              m.data_array,
                              SymExpr::Constant(10),
                              ""});
  // A method that would break fixed-length, but is never called.
  MethodInfo rogue;
  rogue.name = "rogue";
  rogue.statements.push_back({Statement::Kind::kNewArrayAssign,
                              {m.dense_vector, "data"},
                              m.data_array,
                              SymExpr::Constant(99),
                              ""});
  MethodInfo lp_ctor;
  lp_ctor.name = "LabeledPoint.<init>";
  lp_ctor.ctor_of = m.labeled_point;
  lp_ctor.statements.push_back({Statement::Kind::kFieldAssign,
                                {m.labeled_point, "features"},
                                nullptr,
                                {},
                                ""});
  entry.statements.push_back(
      {Statement::Kind::kCall, {}, nullptr, {}, "LabeledPoint.<init>"});
  cg.AddMethod(entry);
  cg.AddMethod(rogue);
  cg.AddMethod(lp_ctor);
  cg.SetEntry("main");
  GlobalClassifier global(&cg);
  EXPECT_EQ(global.Classify(m.labeled_point), SizeType::kStaticFixed);
}

TEST_F(ClassifierTest, DoubleAssignmentInCtorChainNotInitOnly) {
  UdtType* box = u_.DefineClass("Box");
  const UdtType* arr =
      u_.DefineArray("int[]", {u_.Primitive(FieldKind::kInt)});
  u_.AddField(box, "payload", false, {arr});
  CallGraph cg;
  MethodInfo ctor;
  ctor.name = "Box.<init>";
  ctor.ctor_of = box;
  ctor.statements.push_back({Statement::Kind::kFieldAssign,
                             {box, "payload"},
                             nullptr,
                             {},
                             ""});
  ctor.statements.push_back(
      {Statement::Kind::kCall, {}, nullptr, {}, "Box.helper"});
  MethodInfo helper;
  helper.name = "Box.helper";
  helper.statements.push_back({Statement::Kind::kFieldAssign,
                               {box, "payload"},
                               nullptr,
                               {},
                               ""});
  MethodInfo entry;
  entry.name = "main";
  entry.statements.push_back(
      {Statement::Kind::kCall, {}, nullptr, {}, "Box.<init>"});
  cg.AddMethod(entry);
  cg.AddMethod(ctor);
  cg.AddMethod(helper);
  cg.SetEntry("main");
  EXPECT_FALSE(cg.IsInitOnly({box, "payload"}));
}

#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic pop
#endif

TEST_F(ClassifierTest, RecursiveTypeNeverRefined) {
  UdtType* node = u_.DefineClass("Node");
  u_.AddField(node, "next", true, {node});
  CallGraph cg;
  MethodInfo entry;
  entry.name = "main";
  cg.AddMethod(entry);
  cg.SetEntry("main");
  GlobalClassifier global(&cg);
  EXPECT_EQ(global.Classify(node), SizeType::kRecurDef);
}


TEST_F(ClassifierTest, PointsToInferenceCollectsAllocationSites) {
  LabeledPointModel m(&u_);
  const UdtType* sparse = u_.DefineClass("SparseVector");
  CallGraph cg;
  MethodInfo entry;
  entry.name = "main";
  entry.statements.push_back({Statement::Kind::kNewObjectAssign,
                              {m.labeled_point, "features"},
                              m.dense_vector,
                              {},
                              ""});
  entry.statements.push_back({Statement::Kind::kNewObjectAssign,
                              {m.labeled_point, "features"},
                              sparse,
                              {},
                              ""});
  // Duplicate site: not repeated in the set.
  entry.statements.push_back({Statement::Kind::kNewObjectAssign,
                              {m.labeled_point, "features"},
                              m.dense_vector,
                              {},
                              ""});
  cg.AddMethod(entry);
  cg.SetEntry("main");
  auto types = cg.InferTypeSet({m.labeled_point, "features"});
  ASSERT_EQ(types.size(), 2u);
  EXPECT_EQ(types[0], m.dense_vector);
  EXPECT_EQ(types[1], sparse);
  // A field never allocated to yields the empty set.
  EXPECT_TRUE(cg.InferTypeSet({m.labeled_point, "label"}).empty());
}

TEST_F(ClassifierTest, PolymorphicTypeSetMakesFieldVariable) {
  // The paper's SparseVector remark (Section 3.2): with both DenseVector
  // and SparseVector in `features`' type-set, the field cannot be SFST.
  LabeledPointModel m(&u_);
  auto* sparse = u_.DefineClass("SparseVector");
  const auto* iarr =
      u_.DefineArray("Array[Int]", {u_.Primitive(FieldKind::kInt)});
  u_.AddField(sparse, "indices", /*is_final=*/false, {iarr});
  UdtType* lp2 = u_.DefineClass("LabeledPoint2");
  u_.AddField(lp2, "label", false, {u_.Primitive(FieldKind::kDouble)});
  u_.AddField(lp2, "features", false, {m.dense_vector, sparse});
  EXPECT_EQ(local_.Classify(lp2), SizeType::kVariable);
}

// -- phased refinement --------------------------------------------------------

TEST_F(ClassifierTest, PhasedRefinementVstBecomesRfstLater) {
  // Phase 0 reassigns `features` (building phase); phase 1 never touches
  // it. The paper's Section 3.4 pattern: VST while being built, RFST once
  // emitted to a materialized container.
  LabeledPointModel m(&u_);
  CallGraph phase0;
  {
    MethodInfo entry;
    entry.name = "phase0";
    entry.statements.push_back({Statement::Kind::kFieldAssign,
                                {m.labeled_point, "features"},
                                nullptr,
                                {},
                                ""});
    phase0.AddMethod(entry);
    phase0.SetEntry("phase0");
  }
  CallGraph phase1;
  {
    MethodInfo entry;
    entry.name = "phase1";  // read-only phase
    phase1.AddMethod(entry);
    phase1.SetEntry("phase1");
  }
  PhasedRefinement phased({&phase0, &phase1});
  EXPECT_EQ(phased.ClassifyInPhase(m.labeled_point, 0), SizeType::kVariable);
  EXPECT_EQ(phased.ClassifyInPhase(m.labeled_point, 1),
            SizeType::kRuntimeFixed);
  auto all = phased.ClassifyAllPhases(m.labeled_point);
  ASSERT_EQ(all.size(), 2u);
  EXPECT_EQ(all[0], SizeType::kVariable);
  EXPECT_EQ(all[1], SizeType::kRuntimeFixed);
}

}  // namespace
}  // namespace deca::analysis
