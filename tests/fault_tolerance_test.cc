// Fault-tolerance subsystem tests: deterministic injection, bounded task
// retry, crash-wipe + lineage recovery, and OOM graceful degradation.
//
// The injection seed can be varied from the outside (the CI fault matrix
// sets DECA_FAULT_SEED); every test here must hold for any seed.

#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <string>
#include <vector>

#include "fault/fault_config.h"
#include "fault/fault_injector.h"
#include "fault/task_failure.h"
#include "jvm/heap.h"
#include "spark/context.h"
#include "spark/typed_rdd.h"
#include "workloads/lr.h"
#include "workloads/wordcount.h"

namespace deca {
namespace {

uint64_t TestSeed() {
  const char* s = std::getenv("DECA_FAULT_SEED");
  return s != nullptr ? std::strtoull(s, nullptr, 10) : 1337;
}

spark::SparkConfig SmallConfig() {
  spark::SparkConfig cfg;
  cfg.num_executors = 2;
  cfg.partitions_per_executor = 2;
  cfg.heap.heap_bytes = 32u << 20;
  return cfg;
}

// ---------------------------------------------------------------------------
// FaultInjector: pure-hash decisions.

int Decision(fault::FaultInjector* inj, int stage, int partition,
             int attempt) {
  try {
    inj->OnTaskAttempt(stage, partition, attempt, nullptr);
  } catch (const fault::InjectedTaskFailure&) {
    return 1;
  } catch (const fault::ShuffleFetchFailure&) {
    return 2;
  }
  return 0;
}

TEST(FaultInjectorTest, DecisionsAreDeterministicPerSeed) {
  fault::FaultConfig fc;
  fc.seed = TestSeed();
  fc.task_failure_prob = 0.5;
  fc.fetch_failure_prob = 0.25;
  fault::FaultInjector a(fc, 4);
  fault::FaultInjector b(fc, 4);
  fc.seed = TestSeed() + 1;
  fault::FaultInjector other(fc, 4);

  int fired = 0;
  int differs = 0;
  for (int s = 0; s < 4; ++s) {
    for (int p = 0; p < 8; ++p) {
      for (int at = 0; at < 4; ++at) {
        int da = Decision(&a, s, p, at);
        EXPECT_EQ(da, Decision(&b, s, p, at));
        if (da != Decision(&other, s, p, at)) ++differs;
        if (da != 0) ++fired;
        // The last allowed attempt always runs clean.
        if (at == 3) {
          EXPECT_EQ(da, 0);
        }
      }
    }
  }
  EXPECT_GT(fired, 0);
  EXPECT_GT(differs, 0);
  EXPECT_EQ(a.TakeFired(), static_cast<uint64_t>(fired));
  EXPECT_EQ(a.TakeFired(), 0u);  // drained
}

TEST(FaultInjectorTest, ArmedAllocationFailureThrowsInjectedOom) {
  spark::SparkConfig cfg = SmallConfig();
  cfg.num_executors = 1;
  cfg.partitions_per_executor = 1;
  spark::SparkContext ctx(cfg);
  jvm::Heap* h = ctx.executor(0)->heap();

  fault::FaultConfig fc;
  fc.seed = TestSeed();
  fc.oom_failure_prob = 1.0;
  fault::FaultInjector inj(fc, 4);
  inj.OnTaskAttempt(/*stage=*/0, /*partition=*/0, /*attempt=*/0, h);
  try {
    h->AllocateInstance(h->registry()->boxed_long_class());
    FAIL() << "armed allocation should have thrown";
  } catch (const jvm::OutOfMemoryError& oom) {
    EXPECT_TRUE(oom.injected());
    EXPECT_FALSE(oom.heap_dump().empty());
  }
  // One-shot: the next allocation succeeds and the heap is untouched.
  uint64_t allocated = h->stats().objects_allocated;
  EXPECT_NE(h->AllocateInstance(h->registry()->boxed_long_class()),
            jvm::kNullRef);
  EXPECT_EQ(h->stats().objects_allocated, allocated + 1);
}

// ---------------------------------------------------------------------------
// End-to-end determinism under injection.

workloads::WordCountResult RunWc(const fault::FaultConfig& fc, int threads) {
  workloads::WordCountParams p;
  p.total_words = 1u << 16;
  p.distinct_keys = 1000;
  p.mode = workloads::Mode::kSpark;
  p.spark = SmallConfig();
  p.spark.num_worker_threads = threads;
  p.spark.fault = fc;
  return workloads::RunWordCount(p);
}

TEST(FaultToleranceTest, WordCountBitIdenticalUnderInjectedFaults) {
  workloads::WordCountResult base = RunWc(fault::FaultConfig{}, 0);
  EXPECT_EQ(base.run.task_retries, 0u);
  EXPECT_EQ(base.run.injected_faults, 0u);
  EXPECT_EQ(base.run.executor_wipes, 0u);
  EXPECT_EQ(base.run.recomputed_blocks, 0u);
  EXPECT_EQ(base.run.pressure_evictions, 0u);
  EXPECT_EQ(base.run.oom_recoveries, 0u);
  EXPECT_EQ(base.total_count, uint64_t{1} << 16);

  fault::FaultConfig fc;
  fc.seed = TestSeed();
  fc.task_failure_prob = 0.5;
  fc.fetch_failure_prob = 0.25;
  for (int threads : {0, 2}) {
    SCOPED_TRACE(threads);
    workloads::WordCountResult r = RunWc(fc, threads);
    EXPECT_EQ(r.total_count, base.total_count);
    EXPECT_EQ(r.distinct_found, base.distinct_found);
    EXPECT_EQ(r.shuffle_bytes, base.shuffle_bytes);
    // Failures fire before the task body touches the heap, so the GC
    // history replays exactly.
    EXPECT_EQ(r.run.minor_gcs, base.run.minor_gcs);
    EXPECT_EQ(r.run.full_gcs, base.run.full_gcs);
    EXPECT_GT(r.run.task_retries, 0u);
    EXPECT_EQ(r.run.injected_faults, r.run.task_retries);
  }
}

TEST(FaultToleranceTest, WordCountInjectedOomDegradesGracefully) {
  workloads::WordCountResult base = RunWc(fault::FaultConfig{}, 0);

  fault::FaultConfig fc;
  fc.seed = TestSeed();
  fc.oom_failure_prob = 1.0;  // every non-final attempt OOMs
  workloads::WordCountResult r = RunWc(fc, 0);
  EXPECT_EQ(r.total_count, base.total_count);
  EXPECT_EQ(r.distinct_found, base.distinct_found);
  EXPECT_EQ(r.shuffle_bytes, base.shuffle_bytes);
  // The forced failure fires at the attempt's first allocation, before any
  // object is written — the surviving attempt's GC history is unperturbed.
  EXPECT_EQ(r.run.minor_gcs, base.run.minor_gcs);
  EXPECT_EQ(r.run.full_gcs, base.run.full_gcs);
  // 2 stages x 4 tasks, each burning every attempt but the last.
  uint64_t tasks = 2ull * 4;
  EXPECT_EQ(r.run.task_retries, tasks * 3);
  EXPECT_EQ(r.run.injected_faults, tasks * 3);
}

// ---------------------------------------------------------------------------
// Crash-wipe + lineage recovery.

workloads::LrResult RunLr(const fault::FaultConfig& fc, int threads) {
  workloads::MlParams p;
  p.dims = 10;
  p.num_points = 20000;
  p.iterations = 3;
  p.mode = workloads::Mode::kSpark;
  p.spark = SmallConfig();
  p.spark.num_worker_threads = threads;
  p.spark.fault = fc;
  return workloads::RunLogisticRegression(p);
}

TEST(FaultToleranceTest, LrCrashWipeBeforeFirstIterationBitIdentical) {
  workloads::LrResult base = RunLr(fault::FaultConfig{}, 0);
  ASSERT_EQ(base.weights.size(), 10u);

  fault::FaultConfig fc;
  fc.seed = TestSeed();
  fc.crash_wipe_stage = 1;  // stage 0 = load, 1 = first gradient stage
  fc.crash_wipe_executor = 1;
  for (int threads : {0, 2}) {
    SCOPED_TRACE(threads);
    workloads::LrResult r = RunLr(fc, threads);
    ASSERT_EQ(r.weights.size(), base.weights.size());
    for (size_t j = 0; j < base.weights.size(); ++j) {
      EXPECT_EQ(r.weights[j], base.weights[j]) << "dim " << j;
    }
    // The wiped heap replays its exact load history before the first
    // gradient stage, so even the GC counts match the fault-free run.
    EXPECT_EQ(r.run.minor_gcs, base.run.minor_gcs);
    EXPECT_EQ(r.run.full_gcs, base.run.full_gcs);
    EXPECT_EQ(r.run.executor_wipes, 1u);
    // Executor 1 owns 2 of the 4 partitions.
    EXPECT_EQ(r.run.recomputed_blocks, 2u);
  }
}

TEST(FaultToleranceTest, LrCrashWipeMidRunRecoversWeights) {
  workloads::LrResult base = RunLr(fault::FaultConfig{}, 0);

  fault::FaultConfig fc;
  fc.seed = TestSeed();
  fc.crash_wipe_stage = 2;  // between the first and second gradient stages
  fc.crash_wipe_executor = 0;
  workloads::LrResult r = RunLr(fc, 0);
  ASSERT_EQ(r.weights.size(), base.weights.size());
  for (size_t j = 0; j < base.weights.size(); ++j) {
    EXPECT_EQ(r.weights[j], base.weights[j]) << "dim " << j;
  }
  EXPECT_EQ(r.run.executor_wipes, 1u);
  EXPECT_EQ(r.run.recomputed_blocks, 2u);
}

TEST(FaultToleranceTest, TypedRddWipeRecomputesFromLineage) {
  spark::SparkConfig cfg = SmallConfig();
  spark::SparkContext ctx(cfg);

  std::vector<int64_t> values;
  for (int64_t i = 0; i < 100; ++i) values.push_back(i);
  auto rdd = spark::TypedRdd<int64_t>::Parallelize(
      &ctx, spark::MakeBoxedLongAdapter(), values);
  auto doubled = rdd.Map([](const int64_t& v) { return 2 * v; });

  std::vector<int64_t> before = doubled.Collect();
  ASSERT_EQ(before.size(), values.size());
  EXPECT_EQ(ctx.metrics().recomputed_blocks, 0u);

  ctx.WipeExecutor(0);
  std::vector<int64_t> after = doubled.Collect();
  EXPECT_EQ(after, before);
  // Executor 0 owns partitions 0 and 2: each lost block of `doubled`
  // recomputes through its (also lost) parent block.
  EXPECT_EQ(ctx.metrics().recomputed_blocks, 4u);
  EXPECT_EQ(ctx.metrics().executor_wipes, 1u);
}

// ---------------------------------------------------------------------------
// OOM graceful degradation (genuine heap exhaustion, no injection).

TEST(FaultToleranceTest, GenuineOomDegradesToEvictionAndRetry) {
  spark::SparkConfig cfg;
  cfg.num_executors = 1;
  cfg.partitions_per_executor = 1;
  cfg.heap.heap_bytes = 8u << 20;     // young 2MB, old 6MB
  cfg.heap.tenure_threshold = 1;      // promote pinned blocks quickly
  spark::SparkContext ctx(cfg);
  workloads::LrTypes types(ctx.registry(), /*dims=*/10);
  constexpr int kRdd = 7;
  ctx.RegisterCachedRdd(kRdd, &types.ops());

  // Cache ~2.4MB of points as 30 pinned object blocks (under the 2.6MB
  // storage budget, so nothing swaps out on its own).
  constexpr uint32_t kBlocks = 30;
  constexpr uint32_t kPerBlock = 500;
  ctx.RunStage("load", [&](spark::TaskContext& tc) {
    jvm::Heap* h = tc.heap();
    std::vector<double> feats(10);
    for (uint32_t b = 0; b < kBlocks; ++b) {
      jvm::HandleScope scope(h);
      jvm::Handle arr = scope.Make(
          h->AllocateArray(h->registry()->ref_array_class(), kPerBlock));
      for (uint32_t i = 0; i < kPerBlock; ++i) {
        for (auto& f : feats) f = static_cast<double>(b + i);
        jvm::HandleScope inner(h);
        jvm::ObjRef lp = types.NewLabeledPoint(h, 1.0, feats.data());
        h->SetRefElem(arr.get(), i, lp);
      }
      tc.cache()->PutObjects({kRdd, static_cast<int>(b)}, arr.get(),
                             kPerBlock, &tc.metrics());
    }
  });
  ASSERT_GT(ctx.CachedMemoryBytes(), 0u);

  // A 5.8MB array cannot coexist with the pinned blocks in the 6MB old
  // gen: the allocation must be rescued by evicting the cache to disk plus
  // one full collection — not by aborting the process.
  ctx.RunStage("bigalloc", [&](spark::TaskContext& tc) {
    jvm::Heap* h = tc.heap();
    jvm::ObjRef big = h->AllocateArray(h->registry()->double_array_class(),
                                       725000);
    EXPECT_NE(big, jvm::kNullRef);
  });
  EXPECT_GT(ctx.TotalPressureEvictions(), 0u);
  EXPECT_GE(ctx.TotalOomRecoveries(), 1u);
  EXPECT_EQ(ctx.CachedMemoryBytes(), 0u);  // everything went to disk

  // The evicted blocks stream back from their swap files intact.
  uint64_t total_points = 0;
  ctx.RunStage("reread", [&](spark::TaskContext& tc) {
    for (uint32_t b = 0; b < kBlocks; ++b) {
      spark::LoadedBlock blk =
          tc.cache()->Get({kRdd, static_cast<int>(b)}, &tc.metrics());
      ASSERT_TRUE(blk.valid());
      total_points += blk.count;
    }
  });
  EXPECT_EQ(total_points, uint64_t{kBlocks} * kPerBlock);
}

TEST(FaultToleranceTest, ExhaustedOomFailsTaskWithCollectorDump) {
  spark::SparkConfig cfg;
  cfg.num_executors = 1;
  cfg.partitions_per_executor = 1;
  cfg.heap.heap_bytes = 4u << 20;  // old gen 3MB
  spark::SparkContext ctx(cfg);

  // Pins 1MB arrays until the old generation genuinely cannot hold
  // another; with nothing cached, the degradation ladder has nothing to
  // shed and the task must fail with a retryable OOM after max attempts.
  try {
    ctx.RunStage("fill", [&](spark::TaskContext& tc) {
      jvm::Heap* h = tc.heap();
      jvm::HandleScope scope(h);
      jvm::Handle pins = scope.Make(
          h->AllocateArray(h->registry()->ref_array_class(), 8));
      for (uint32_t i = 0; i < 8; ++i) {
        jvm::ObjRef arr = h->AllocateArray(
            h->registry()->double_array_class(), 131072);  // 1MB
        h->SetRefElem(pins.get(), i, arr);
      }
    });
    FAIL() << "stage should have failed with TaskOomFailure";
  } catch (const fault::TaskOomFailure& oom) {
    EXPECT_FALSE(oom.heap_dump().empty());
    EXPECT_NE(oom.heap_dump().find("full GCs"), std::string::npos);
    EXPECT_EQ(oom.attempt(), cfg.max_task_failures - 1);
  }
}

// ---------------------------------------------------------------------------
// Retry semantics.

TEST(FaultToleranceTest, ManualTaskFailureRetriedOncePerPartition) {
  spark::SparkConfig cfg = SmallConfig();
  spark::SparkContext ctx(cfg);
  int nparts = ctx.num_partitions();
  std::vector<char> failed(static_cast<size_t>(nparts), 0);
  std::vector<int> runs(static_cast<size_t>(nparts), 0);
  ctx.RunStage("flaky", [&](spark::TaskContext& tc) {
    size_t p = static_cast<size_t>(tc.partition());
    ++runs[p];
    if (!failed[p]) {
      failed[p] = 1;
      throw fault::InjectedTaskFailure(0, tc.partition(), 0);
    }
  });
  EXPECT_EQ(ctx.metrics().task_retries, static_cast<uint64_t>(nparts));
  for (int r : runs) EXPECT_EQ(r, 2);
}

TEST(FaultToleranceTest, NonRetryableExceptionPropagatesImmediately) {
  spark::SparkConfig cfg = SmallConfig();
  spark::SparkContext ctx(cfg);
  std::vector<int> runs(static_cast<size_t>(ctx.num_partitions()), 0);
  EXPECT_THROW(ctx.RunStage("broken",
                            [&](spark::TaskContext& tc) {
                              ++runs[static_cast<size_t>(tc.partition())];
                              throw std::runtime_error("application bug");
                            }),
               std::runtime_error);
  // No retry for foreign exception types (later partitions may not have
  // started at all — the sequential path stops at the first error).
  EXPECT_EQ(runs[0], 1);
  for (int r : runs) EXPECT_LE(r, 1);
}

// ---------------------------------------------------------------------------
// Spill-directory hygiene.

TEST(FaultToleranceTest, SpillDirUniquePerContextAndRemoved) {
  spark::SparkConfig cfg = SmallConfig();
  std::string a_dir;
  std::string b_dir;
  {
    spark::SparkContext a(cfg);
    spark::SparkContext b(cfg);
    a_dir = a.config().spill_dir;
    b_dir = b.config().spill_dir;
    EXPECT_NE(a_dir, b_dir);
    EXPECT_TRUE(std::filesystem::exists(a_dir));
    EXPECT_TRUE(std::filesystem::exists(b_dir));
  }
  EXPECT_FALSE(std::filesystem::exists(a_dir));
  EXPECT_FALSE(std::filesystem::exists(b_dir));
}

TEST(FaultToleranceDeathTest, UnwritableSpillDirFailsWithPath) {
  spark::SparkConfig cfg = SmallConfig();
  cfg.spill_dir = "/proc/deca_no_such_spill";  // procfs: mkdir must fail
  EXPECT_DEATH({ spark::SparkContext ctx(cfg); }, "cannot create spill dir");
}

}  // namespace
}  // namespace deca
