#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>

#include "common/random.h"
#include "spark/context.h"

namespace deca::spark {
namespace {

/// Shuffle ops over (i64 key, i64 value) with sum combining, usable in
/// both object and decomposed modes.
ShuffleOps SumOps() {
  ShuffleOps ops;
  ops.key_hash = [](jvm::Heap* h, jvm::ObjRef k) -> uint64_t {
    return static_cast<uint64_t>(h->GetField<int64_t>(k, 0)) *
           0x9e3779b97f4a7c15ULL;
  };
  ops.key_equals = [](jvm::Heap* h, jvm::ObjRef a, jvm::ObjRef b) {
    return h->GetField<int64_t>(a, 0) == h->GetField<int64_t>(b, 0);
  };
  ops.combine = [](jvm::Heap* h, jvm::ObjRef agg, jvm::ObjRef v) {
    int64_t sum = h->GetField<int64_t>(agg, 0) + h->GetField<int64_t>(v, 0);
    jvm::ObjRef fresh =
        h->AllocateInstance(h->registry()->boxed_long_class());
    h->SetField<int64_t>(fresh, 0, sum);
    return fresh;
  };
  ops.entry_bytes = [](jvm::Heap*, jvm::ObjRef, jvm::ObjRef) -> uint64_t {
    return 56;
  };
  ops.deca_key_bytes = 8;
  ops.deca_value_bytes = 8;
  ops.deca_key_hash = [](const uint8_t* k) -> uint64_t {
    return LoadRaw<uint64_t>(k) * 0x9e3779b97f4a7c15ULL;
  };
  ops.deca_combine = [](uint8_t* agg, const uint8_t* v) {
    StoreRaw<int64_t>(agg, LoadRaw<int64_t>(agg) + LoadRaw<int64_t>(v));
  };
  return ops;
}

/// Property: for any random insert sequence, the object-mode buffer, the
/// Deca buffer, and a reference std::map agree exactly.
class BufferEquivalenceTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(BufferEquivalenceTest, ObjectAndDecaBuffersMatchReference) {
  SparkConfig cfg;
  cfg.num_executors = 1;
  cfg.heap.heap_bytes = 24u << 20;
  cfg.spill_dir = "/tmp/deca_test_spill_prop";
  SparkContext ctx(cfg);
  jvm::Heap* h = ctx.executor(0)->heap();
  ShuffleOps ops = SumOps();

  Rng rng(GetParam());
  uint64_t key_space = 1 + rng.NextBounded(3000);
  int inserts = 1000 + static_cast<int>(rng.NextBounded(9000));

  std::map<int64_t, int64_t> reference;
  ObjectHashShuffleBuffer obj_buf(h, &ops);
  DecaHashShuffleBuffer deca_buf(h, &ops, 16 << 10);

  Rng data_rng(GetParam() * 97 + 1);
  for (int i = 0; i < inserts; ++i) {
    int64_t key = static_cast<int64_t>(data_rng.NextBounded(key_space));
    int64_t value = static_cast<int64_t>(data_rng.NextBounded(100)) - 50;
    reference[key] += value;
    {
      jvm::HandleScope scope(h);
      jvm::Handle k = scope.Make(
          h->AllocateInstance(h->registry()->boxed_long_class()));
      h->SetField<int64_t>(k.get(), 0, key);
      jvm::Handle v = scope.Make(
          h->AllocateInstance(h->registry()->boxed_long_class()));
      h->SetField<int64_t>(v.get(), 0, value);
      obj_buf.Insert(k.get(), v.get());
    }
    deca_buf.Insert(reinterpret_cast<const uint8_t*>(&key),
                    reinterpret_cast<const uint8_t*>(&value));
  }

  std::map<int64_t, int64_t> from_obj;
  obj_buf.ForEach([&](jvm::ObjRef k, jvm::ObjRef v) {
    from_obj[h->GetField<int64_t>(k, 0)] = h->GetField<int64_t>(v, 0);
  });
  std::map<int64_t, int64_t> from_deca;
  deca_buf.ForEach([&](const uint8_t* e) {
    from_deca[LoadRaw<int64_t>(e)] = LoadRaw<int64_t>(e + 8);
  });
  EXPECT_EQ(from_obj, reference);
  EXPECT_EQ(from_deca, reference);
  EXPECT_EQ(obj_buf.size(), reference.size());
  EXPECT_EQ(deca_buf.size(), reference.size());
}

INSTANTIATE_TEST_SUITE_P(Seeds, BufferEquivalenceTest,
                         ::testing::Range<uint64_t>(1, 11));

TEST(GroupByBufferStressTest, ManyGroupsManyValues) {
  SparkConfig cfg;
  cfg.num_executors = 1;
  cfg.heap.heap_bytes = 32u << 20;
  cfg.spill_dir = "/tmp/deca_test_spill_prop";
  SparkContext ctx(cfg);
  jvm::Heap* h = ctx.executor(0)->heap();
  ShuffleOps ops = SumOps();
  ObjectGroupByBuffer buf(h, &ops);
  Rng rng(42);
  std::map<int64_t, std::multiset<int64_t>> reference;
  for (int i = 0; i < 20000; ++i) {
    int64_t key = static_cast<int64_t>(rng.NextBounded(700));
    int64_t value = static_cast<int64_t>(rng.NextBounded(1'000'000));
    reference[key].insert(value);
    jvm::HandleScope scope(h);
    jvm::Handle k = scope.Make(
        h->AllocateInstance(h->registry()->boxed_long_class()));
    h->SetField<int64_t>(k.get(), 0, key);
    jvm::Handle v = scope.Make(
        h->AllocateInstance(h->registry()->boxed_long_class()));
    h->SetField<int64_t>(v.get(), 0, value);
    buf.Insert(k.get(), v.get());
  }
  ASSERT_EQ(buf.size(), reference.size());
  buf.ForEach([&](jvm::ObjRef k, jvm::ObjRef values, uint32_t count) {
    std::multiset<int64_t> got;
    for (uint32_t j = 0; j < count; ++j) {
      got.insert(h->GetField<int64_t>(h->GetRefElem(values, j), 0));
    }
    EXPECT_EQ(got, reference[h->GetField<int64_t>(k, 0)]);
  });
}

TEST(ShuffleBufferClearTest, ClearedBufferReusable) {
  SparkConfig cfg;
  cfg.num_executors = 1;
  cfg.heap.heap_bytes = 16u << 20;
  cfg.spill_dir = "/tmp/deca_test_spill_prop";
  SparkContext ctx(cfg);
  jvm::Heap* h = ctx.executor(0)->heap();
  ShuffleOps ops = SumOps();
  DecaHashShuffleBuffer buf(h, &ops, 8 << 10);
  for (int round = 0; round < 5; ++round) {
    for (int64_t k = 0; k < 500; ++k) {
      int64_t one = 1;
      buf.Insert(reinterpret_cast<const uint8_t*>(&k),
                 reinterpret_cast<const uint8_t*>(&one));
    }
    EXPECT_EQ(buf.size(), 500u);
    buf.Clear();
    EXPECT_EQ(buf.size(), 0u);
  }
}

/// Cache eviction property: with a random mixture of block sizes and a
/// tight budget, every block remains readable and byte-identical.
class CacheEvictionPropertyTest : public ::testing::TestWithParam<uint64_t> {
};

TEST_P(CacheEvictionPropertyTest, AllBlocksSurviveEvictionChurn) {
  SparkConfig cfg;
  cfg.num_executors = 1;
  cfg.partitions_per_executor = 1;
  cfg.heap.heap_bytes = 24u << 20;
  cfg.memory_fraction = 0.1;  // tiny budget: most blocks must swap
  cfg.cache_level = StorageLevel::kDecaPages;
  cfg.spill_dir = "/tmp/deca_test_spill_prop";
  SparkContext ctx(cfg);
  Rng rng(GetParam() * 3 + 1);
  const int blocks = 12;
  std::vector<uint32_t> counts(blocks);
  ctx.RunStage("build", [&](TaskContext& tc) {
    for (int b = 0; b < blocks; ++b) {
      uint32_t n = 100 + static_cast<uint32_t>(rng.NextBounded(3000));
      counts[static_cast<size_t>(b)] = n;
      auto pages = std::make_shared<core::PageGroup>(tc.heap(), 16 << 10);
      for (uint32_t i = 0; i < n; ++i) {
        core::SegPtr s = pages->Append(16);
        uint8_t* p = pages->Resolve(s);
        StoreRaw<uint64_t>(p, static_cast<uint64_t>(b) << 32 | i);
        StoreRaw<uint64_t>(p + 8, i * 3);
      }
      tc.cache()->PutPages({50, b}, pages, n, &tc.metrics());
    }
  });
  // Read back in random order multiple times.
  ctx.RunStage("read", [&](TaskContext& tc) {
    for (int round = 0; round < 3; ++round) {
      for (int b = 0; b < blocks; ++b) {
        int pick = static_cast<int>(rng.NextBounded(blocks));
        LoadedBlock block = tc.cache()->Get({50, pick}, &tc.metrics());
        ASSERT_TRUE(block.valid());
        ASSERT_EQ(block.count, counts[static_cast<size_t>(pick)]);
        core::PageScanner scan(block.pages.get());
        uint32_t i = 0;
        while (!scan.AtEnd()) {
          uint8_t* p = scan.Cur();
          ASSERT_EQ(LoadRaw<uint64_t>(p),
                    static_cast<uint64_t>(pick) << 32 | i);
          ASSERT_EQ(LoadRaw<uint64_t>(p + 8), i * 3);
          scan.Advance(16);
          ++i;
        }
        ASSERT_EQ(i, counts[static_cast<size_t>(pick)]);
      }
    }
  });
}

INSTANTIATE_TEST_SUITE_P(Seeds, CacheEvictionPropertyTest,
                         ::testing::Range<uint64_t>(1, 6));


/// The static-offset hash table (paper Section 4.3.2, "the pointer array
/// can be avoided") must agree with the pointer-array variant.
class StaticOffsetBufferTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(StaticOffsetBufferTest, MatchesPointerArrayVariant) {
  SparkConfig cfg;
  cfg.num_executors = 1;
  cfg.heap.heap_bytes = 24u << 20;
  cfg.spill_dir = "/tmp/deca_test_spill_prop";
  SparkContext ctx(cfg);
  jvm::Heap* h = ctx.executor(0)->heap();
  ShuffleOps ops = SumOps();
  DecaHashShuffleBuffer ptr_buf(h, &ops, 16 << 10);
  DecaStaticHashShuffleBuffer static_buf(h, &ops, 16 << 10);
  Rng rng(GetParam() * 11 + 5);
  for (int i = 0; i < 8000; ++i) {
    int64_t key = static_cast<int64_t>(rng.NextBounded(900));
    int64_t value = static_cast<int64_t>(rng.NextBounded(50));
    ptr_buf.Insert(reinterpret_cast<const uint8_t*>(&key),
                   reinterpret_cast<const uint8_t*>(&value));
    static_buf.Insert(reinterpret_cast<const uint8_t*>(&key),
                      reinterpret_cast<const uint8_t*>(&value));
  }
  std::map<int64_t, int64_t> from_ptr, from_static;
  ptr_buf.ForEach([&](const uint8_t* e) {
    from_ptr[LoadRaw<int64_t>(e)] = LoadRaw<int64_t>(e + 8);
  });
  static_buf.ForEach([&](const uint8_t* e) {
    from_static[LoadRaw<int64_t>(e)] = LoadRaw<int64_t>(e + 8);
  });
  EXPECT_EQ(from_ptr, from_static);
  EXPECT_EQ(ptr_buf.size(), static_buf.size());
}

INSTANTIATE_TEST_SUITE_P(Seeds, StaticOffsetBufferTest,
                         ::testing::Range<uint64_t>(1, 6));

/// Appendix C: the sort-spill writer must emit a globally sorted stream
/// regardless of how many runs were spilled.
class SortSpillTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SortSpillTest, MergedStreamIsSortedAndComplete) {
  SparkConfig cfg;
  cfg.num_executors = 1;
  cfg.heap.heap_bytes = 24u << 20;
  cfg.spill_dir = "/tmp/deca_test_spill_prop";
  // Tiny unified budget: the execution pool denies pages early, forcing
  // several spills (the writer spills when its page probe is denied).
  uint64_t budget = GetParam() % 2 == 0 ? (32u << 10) : (1u << 20);
  cfg.executor_memory_bytes = budget;
  SparkContext ctx(cfg);
  jvm::Heap* h = ctx.executor(0)->heap();
  auto less = [](const uint8_t* a, const uint8_t* b) {
    return LoadRaw<int64_t>(a) < LoadRaw<int64_t>(b);
  };
  DecaSortSpillWriter writer(h, 8 << 10, "/tmp/deca_test_spill_prop", less);
  Rng rng(GetParam() * 7 + 3);
  std::multiset<int64_t> expected;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    int64_t key = static_cast<int64_t>(rng.NextBounded(1'000'000));
    expected.insert(key);
    uint8_t rec[16];
    StoreRaw<int64_t>(rec, key);
    StoreRaw<int64_t>(rec + 8, key * 2);
    writer.Append(rec, 16);
  }
  if (budget < (1u << 20)) {
    EXPECT_GT(writer.spill_count(), 1u);
  }
  std::vector<int64_t> merged;
  writer.Merge([&](const uint8_t* rec, uint32_t bytes) {
    ASSERT_EQ(bytes, 16u);
    int64_t key = LoadRaw<int64_t>(rec);
    ASSERT_EQ(LoadRaw<int64_t>(rec + 8), key * 2);  // payload intact
    merged.push_back(key);
  });
  ASSERT_EQ(merged.size(), static_cast<size_t>(n));
  EXPECT_TRUE(std::is_sorted(merged.begin(), merged.end()));
  EXPECT_EQ(std::multiset<int64_t>(merged.begin(), merged.end()), expected);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SortSpillTest,
                         ::testing::Range<uint64_t>(1, 7));

}  // namespace
}  // namespace deca::spark
