#include <gtest/gtest.h>

#include <cmath>
#include <map>

#include "common/bytes.h"
#include "common/clock.h"
#include "common/histogram.h"
#include "common/random.h"
#include "common/table_printer.h"

namespace deca {
namespace {

TEST(RngTest, Deterministic) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, BoundedStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    uint64_t v = rng.NextBounded(17);
    EXPECT_LT(v, 17u);
  }
}

TEST(RngTest, BoundedCoversRange) {
  Rng rng(9);
  std::map<uint64_t, int> counts;
  for (int i = 0; i < 8000; ++i) counts[rng.NextBounded(8)]++;
  EXPECT_EQ(counts.size(), 8u);
  for (const auto& [k, c] : counts) EXPECT_GT(c, 700) << "bucket " << k;
}

TEST(RngTest, DoubleInUnitInterval) {
  Rng rng(3);
  for (int i = 0; i < 10000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, GaussianMoments) {
  Rng rng(11);
  double sum = 0, sq = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    double g = rng.NextGaussian();
    sum += g;
    sq += g * g;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sq / n, 1.0, 0.02);
}

TEST(ZipfTest, RankZeroMostPopular) {
  ZipfSampler z(1000, 1.0, 5);
  std::map<uint64_t, int> counts;
  for (int i = 0; i < 50000; ++i) counts[z.Next()]++;
  EXPECT_GT(counts[0], counts[1]);
  EXPECT_GT(counts[0], counts[10]);
  EXPECT_GT(counts[1], counts[100]);
}

TEST(ZipfTest, AllSamplesInRange) {
  ZipfSampler z(50, 1.2, 6);
  for (int i = 0; i < 10000; ++i) EXPECT_LT(z.Next(), 50u);
}

TEST(ZipfTest, LargeNUsesTailApproximation) {
  ZipfSampler z(100'000'000, 1.0, 8);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(z.Next(), 100'000'000u);
}

TEST(BytesTest, VarintRoundTrip) {
  ByteWriter w;
  const uint64_t values[] = {0, 1, 127, 128, 300, 1u << 20, 0xffffffffull,
                             0xdeadbeefcafeull};
  for (uint64_t v : values) w.WriteVarU64(v);
  ByteReader r(w.data(), w.size());
  for (uint64_t v : values) EXPECT_EQ(r.ReadVarU64(), v);
  EXPECT_TRUE(r.AtEnd());
}

TEST(BytesTest, SignedVarintRoundTrip) {
  ByteWriter w;
  const int64_t values[] = {0, -1, 1, -64, 63, -1000000, 1000000,
                            INT64_MIN, INT64_MAX};
  for (int64_t v : values) w.WriteVarI64(v);
  ByteReader r(w.data(), w.size());
  for (int64_t v : values) EXPECT_EQ(r.ReadVarI64(), v);
}

TEST(BytesTest, StringAndRawRoundTrip) {
  ByteWriter w;
  w.WriteString("hello world");
  w.Write<double>(3.25);
  w.Write<uint32_t>(77);
  ByteReader r(w.data(), w.size());
  EXPECT_EQ(r.ReadString(), "hello world");
  EXPECT_EQ(r.Read<double>(), 3.25);
  EXPECT_EQ(r.Read<uint32_t>(), 77u);
}

TEST(BytesTest, AlignUp) {
  EXPECT_EQ(AlignUp(0, 8), 0u);
  EXPECT_EQ(AlignUp(1, 8), 8u);
  EXPECT_EQ(AlignUp(8, 8), 8u);
  EXPECT_EQ(AlignUp(9, 8), 16u);
}

TEST(BytesTest, HumanBytes) {
  EXPECT_EQ(HumanBytes(512), "512B");
  EXPECT_EQ(HumanBytes(2048), "2.0KB");
  EXPECT_EQ(HumanBytes(3 * 1024 * 1024), "3.0MB");
}

TEST(HistogramTest, BasicStats) {
  Histogram h;
  for (int i = 1; i <= 100; ++i) h.Add(i);
  EXPECT_EQ(h.count(), 100u);
  EXPECT_DOUBLE_EQ(h.Mean(), 50.5);
  EXPECT_DOUBLE_EQ(h.Min(), 1);
  EXPECT_DOUBLE_EQ(h.Max(), 100);
  EXPECT_NEAR(h.Percentile(50), 50.5, 1.0);
  EXPECT_NEAR(h.Percentile(99), 99, 1.1);
}

TEST(StopwatchTest, PauseExcludesTime) {
  Stopwatch sw;
  sw.Stop();
  int64_t t0 = sw.ElapsedNanos();
  // Busy-wait a little while stopped.
  volatile uint64_t x = 0;
  for (int i = 0; i < 1000000; ++i) {
    x = x + static_cast<uint64_t>(i);
  }
  EXPECT_EQ(sw.ElapsedNanos(), t0);
  sw.Start();
  EXPECT_GE(sw.ElapsedNanos(), t0);
}

TEST(TablePrinterTest, AlignsColumns) {
  TablePrinter t({"name", "value"});
  t.AddRow({"a", "1"});
  t.AddRow({"longer", "22"});
  std::string s = t.ToString();
  EXPECT_NE(s.find("| name   | value |"), std::string::npos);
  EXPECT_NE(s.find("| longer | 22    |"), std::string::npos);
}

}  // namespace
}  // namespace deca
