#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/random.h"
#include "jvm/class_registry.h"
#include "jvm/g1_collector.h"
#include "jvm/gen_collector.h"
#include "jvm/heap.h"

namespace deca::jvm {
namespace {

/// Stress and invariant tests run against all three collectors.
class CollectorTest : public ::testing::TestWithParam<GcAlgorithm> {
 protected:
  CollectorTest() {
    node_class_ = registry_.RegisterClass(
        "Node", {{"value", FieldKind::kDouble}, {"next", FieldKind::kRef}});
    pair_class_ = registry_.RegisterClass(
        "Pair", {{"a", FieldKind::kRef}, {"b", FieldKind::kRef}});
  }

  std::unique_ptr<Heap> MakeHeap(size_t bytes = 8u << 20) {
    HeapConfig cfg;
    cfg.heap_bytes = bytes;
    cfg.algorithm = GetParam();
    return std::make_unique<Heap>(cfg, &registry_);
  }

  /// Builds a managed linked list of `n` nodes with values seed, seed+1, ...
  ObjRef BuildList(Heap* heap, int n, double seed) {
    HandleScope scope(heap);
    Handle head = scope.Make(kNullRef);
    for (int i = n - 1; i >= 0; --i) {
      ObjRef node = heap->AllocateInstance(node_class_);
      heap->SetField<double>(node, 0, seed + i);
      heap->SetRefField(node, 8, head.get());
      head.set(node);
    }
    return head.get();
  }

  void CheckList(Heap* heap, ObjRef head, int n, double seed) {
    ObjRef cur = head;
    for (int i = 0; i < n; ++i) {
      ASSERT_NE(cur, kNullRef) << "list truncated at " << i;
      ASSERT_EQ(heap->GetField<double>(cur, 0), seed + i);
      cur = heap->GetRefField(cur, 8);
    }
    ASSERT_EQ(cur, kNullRef);
  }

  ClassRegistry registry_;
  uint32_t node_class_;
  uint32_t pair_class_;
};

TEST_P(CollectorTest, SurvivesRepeatedMinorGcs) {
  auto heap = MakeHeap();
  HandleScope scope(heap.get());
  Handle list = scope.Make(BuildList(heap.get(), 500, 1.0));
  for (int i = 0; i < 10; ++i) {
    BuildList(heap.get(), 200, 999.0);  // garbage
    heap->CollectMinor();
    CheckList(heap.get(), list.get(), 500, 1.0);
  }
  heap->Verify();
}

TEST_P(CollectorTest, SurvivesRepeatedFullGcs) {
  auto heap = MakeHeap();
  HandleScope scope(heap.get());
  Handle list = scope.Make(BuildList(heap.get(), 500, 5.0));
  for (int i = 0; i < 5; ++i) {
    BuildList(heap.get(), 300, 999.0);
    heap->CollectFull();
    CheckList(heap.get(), list.get(), 500, 5.0);
  }
  heap->Verify();
}

TEST_P(CollectorTest, AgingPromotesLongLivedObjects) {
  auto heap = MakeHeap();
  HandleScope scope(heap.get());
  Handle list = scope.Make(BuildList(heap.get(), 100, 0.0));
  uint32_t thr = heap->config().tenure_threshold;
  for (uint32_t i = 0; i <= thr; ++i) heap->CollectMinor();
  EXPECT_FALSE(heap->collector()->IsYoung(list.get()));
  EXPECT_GT(heap->stats().objects_promoted, 0u);
  CheckList(heap.get(), list.get(), 100, 0.0);
}

TEST_P(CollectorTest, GarbageIsActuallyReclaimed) {
  auto heap = MakeHeap();
  // Large transient arrays would exhaust the heap if not reclaimed.
  for (int i = 0; i < 2000; ++i) {
    heap->AllocateArray(registry_.byte_array_class(), 16 << 10);
  }
  SUCCEED();
}

TEST_P(CollectorTest, LargeObjectChurn) {
  auto heap = MakeHeap();
  HandleScope scope(heap.get());
  std::vector<Handle> pins;
  // Keep every 5th large array alive; the rest are garbage.
  for (int i = 0; i < 200; ++i) {
    ObjRef a = heap->AllocateArray(registry_.byte_array_class(), 100 << 10);
    heap->ArrayData(a)[0] = static_cast<uint8_t>(i);
    if (i % 5 == 0) pins.push_back(scope.Make(a));
  }
  for (size_t k = 0; k < pins.size(); ++k) {
    EXPECT_EQ(heap->ArrayData(pins[k].get())[0],
              static_cast<uint8_t>(k * 5));
  }
  heap->Verify();
}

TEST_P(CollectorTest, RandomGraphChurnKeepsHeapConsistent) {
  auto heap = MakeHeap();
  Rng rng(2024);
  VectorRootProvider roots;
  heap->AddRootProvider(&roots);
  auto& pinned = roots.refs();
  for (int round = 0; round < 30; ++round) {
    // Allocate pairs linking random pinned nodes.
    for (int i = 0; i < 300; ++i) {
      HandleScope scope(heap.get());
      ObjRef p = heap->AllocateInstance(pair_class_);
      Handle hp = scope.Make(p);
      if (!pinned.empty()) {
        ObjRef a = pinned[rng.NextBounded(pinned.size())];
        heap->SetRefField(hp.get(), 0, a);
      }
      ObjRef n = heap->AllocateInstance(node_class_);
      heap->SetField<double>(n, 0, round);
      heap->SetRefField(hp.get(), 4, n);  // Pair.b
      if (rng.NextBounded(10) == 0) pinned.push_back(hp.get());
    }
    // Randomly unpin some.
    if (pinned.size() > 200) pinned.resize(100);
    if (round % 7 == 0) heap->CollectFull();
    heap->Verify();
  }
  heap->RemoveRootProvider(&roots);
}

TEST_P(CollectorTest, WriteBarrierCatchesAllOldToYoungEdges) {
  auto heap = MakeHeap();
  Rng rng(7);
  HandleScope scope(heap.get());
  // Create an array of refs and age it into the old generation.
  Handle arr =
      scope.Make(heap->AllocateArray(registry_.ref_array_class(), 64));
  for (uint32_t i = 0; i <= heap->config().tenure_threshold; ++i) {
    heap->CollectMinor();
  }
  EXPECT_FALSE(heap->collector()->IsYoung(arr.get()));
  // Store fresh young nodes into it, then minor-collect repeatedly.
  for (int round = 0; round < 5; ++round) {
    for (uint32_t i = 0; i < 64; ++i) {
      ObjRef n = heap->AllocateInstance(node_class_);
      heap->SetField<double>(n, 0, round * 100.0 + i);
      heap->SetRefElem(arr.get(), i, n);
    }
    BuildList(heap.get(), 500, -1);  // garbage to provoke movement
    heap->CollectMinor();
    for (uint32_t i = 0; i < 64; ++i) {
      ObjRef n = heap->GetRefElem(arr.get(), i);
      ASSERT_NE(n, kNullRef);
      ASSERT_EQ(heap->GetField<double>(n, 0), round * 100.0 + i);
    }
  }
  heap->Verify();
}

TEST_P(CollectorTest, UsedBytesShrinksAfterFullGc) {
  auto heap = MakeHeap();
  HandleScope scope(heap.get());
  Handle keep = scope.Make(BuildList(heap.get(), 100, 0.0));
  (void)keep;
  for (int i = 0; i < 50; ++i) {
    heap->AllocateArray(registry_.byte_array_class(), 8 << 10);
  }
  size_t before = heap->used_bytes();
  heap->CollectFull();
  size_t after = heap->used_bytes();
  EXPECT_LT(after, before);
  // The 100 kept nodes are ~3.2 KB; allow generous slack for roots.
  EXPECT_LT(after, 256u << 10);
}

TEST_P(CollectorTest, StatsCountCollections) {
  auto heap = MakeHeap();
  HandleScope scope(heap.get());
  Handle h = scope.Make(BuildList(heap.get(), 10, 0.0));
  (void)h;
  uint64_t minor0 = heap->stats().minor_count;
  heap->CollectMinor();
  EXPECT_EQ(heap->stats().minor_count, minor0 + 1);
  uint64_t full0 = heap->stats().full_count;
  heap->CollectFull();
  EXPECT_EQ(heap->stats().full_count, full0 + 1);
}

INSTANTIATE_TEST_SUITE_P(
    AllCollectors, CollectorTest,
    ::testing::Values(GcAlgorithm::kParallelScavenge,
                      GcAlgorithm::kConcurrentMarkSweep, GcAlgorithm::kG1),
    [](const ::testing::TestParamInfo<GcAlgorithm>& info) {
      return std::string(GcAlgorithmName(info.param));
    });

// -- collector-specific behaviours -------------------------------------------

TEST(CmsSpecificTest, FreeListCoalescesAfterSweep) {
  ClassRegistry registry;
  HeapConfig cfg;
  cfg.heap_bytes = 8u << 20;
  cfg.algorithm = GcAlgorithm::kConcurrentMarkSweep;
  Heap heap(cfg, &registry);
  HandleScope scope(&heap);
  // Alternate pinned / garbage large arrays to fragment the old gen.
  std::vector<Handle> pins;
  for (int i = 0; i < 20; ++i) {
    ObjRef a = heap.AllocateArray(registry.byte_array_class(), 64 << 10);
    if (i % 2 == 0) pins.push_back(scope.Make(a));
  }
  heap.CollectFull();
  auto* cms = static_cast<CmsCollector*>(heap.collector());
  EXPECT_GT(cms->FreeListChunks(), 1u);
  // Release everything; a full GC should coalesce into few chunks.
  pins.clear();
  // (handles still hold slots; emulate release by overwriting)
  heap.CollectFull();
  heap.Verify();
}

TEST(CmsSpecificTest, ConcurrentTimeAccounted) {
  ClassRegistry registry;
  uint32_t node = registry.RegisterClass(
      "Node", {{"value", FieldKind::kDouble}, {"next", FieldKind::kRef}});
  HeapConfig cfg;
  cfg.heap_bytes = 8u << 20;
  cfg.algorithm = GcAlgorithm::kConcurrentMarkSweep;
  Heap heap(cfg, &registry);
  HandleScope scope(&heap);
  Handle keep = scope.Make(heap.AllocateInstance(node));
  (void)keep;
  heap.CollectFull();
  EXPECT_GT(heap.stats().concurrent_ms, 0.0);
}

TEST(G1SpecificTest, HumongousObjectsUseContiguousRegions) {
  ClassRegistry registry;
  HeapConfig cfg;
  cfg.heap_bytes = 8u << 20;
  cfg.algorithm = GcAlgorithm::kG1;
  Heap heap(cfg, &registry);
  auto* g1 = static_cast<G1Collector*>(heap.collector());
  size_t region = g1->region_bytes();
  HandleScope scope(&heap);
  // Allocate an object spanning ~3 regions.
  Handle big = scope.Make(heap.AllocateArray(
      registry.byte_array_class(), static_cast<uint32_t>(3 * region - 64)));
  heap.ArrayData(big.get())[0] = 0xAB;
  size_t free_before = g1->free_region_count();
  heap.CollectFull();
  EXPECT_EQ(heap.ArrayData(big.get())[0], 0xAB);
  // Humongous objects are never moved by mixed collections.
  heap.Verify();
  // Release and collect: regions return to the free list.
  big.set(kNullRef);
  heap.CollectFull();
  EXPECT_GT(g1->free_region_count(), free_before);
}

TEST(G1SpecificTest, WhollyDeadOldRegionsFreedWithoutCopying) {
  ClassRegistry registry;
  HeapConfig cfg;
  cfg.heap_bytes = 8u << 20;
  cfg.algorithm = GcAlgorithm::kG1;
  Heap heap(cfg, &registry);
  auto* g1 = static_cast<G1Collector*>(heap.collector());
  {
    HandleScope scope(&heap);
    std::vector<Handle> pins;
    for (int i = 0; i < 30; ++i) {
      pins.push_back(scope.Make(
          heap.AllocateArray(registry.byte_array_class(), 48 << 10)));
    }
    heap.CollectFull();  // everything old & live
  }
  // Handles are released: all those regions are now garbage.
  uint64_t copied_before = heap.stats().bytes_copied;
  heap.CollectFull();
  uint64_t copied = heap.stats().bytes_copied - copied_before;
  // Dead regions are freed in place: almost nothing is copied.
  EXPECT_LT(copied, 64u << 10);
  EXPECT_GT(g1->free_region_count(), g1->num_regions() / 2);
}

TEST(PsSpecificTest, FullGcCompactsOldGen) {
  ClassRegistry registry;
  HeapConfig cfg;
  cfg.heap_bytes = 8u << 20;
  cfg.algorithm = GcAlgorithm::kParallelScavenge;
  Heap heap(cfg, &registry);
  HandleScope scope(&heap);
  std::vector<Handle> pins;
  for (int i = 0; i < 40; ++i) {
    ObjRef a = heap.AllocateArray(registry.byte_array_class(), 64 << 10);
    heap.ArrayData(a)[7] = static_cast<uint8_t>(i);
    if (i % 2 == 0) pins.push_back(scope.Make(a));
  }
  size_t old_before = heap.old_used_bytes();
  heap.CollectFull();
  EXPECT_LT(heap.old_used_bytes(), old_before);
  for (size_t k = 0; k < pins.size(); ++k) {
    EXPECT_EQ(heap.ArrayData(pins[k].get())[7], static_cast<uint8_t>(2 * k));
  }
}

}  // namespace
}  // namespace deca::jvm
