#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "memory/memory_manager.h"
#include "spark/context.h"

namespace deca::memory {
namespace {

constexpr uint64_t kKb = 1024;

// -- ExecutorMemoryManager unit tests ---------------------------------------

TEST(MemoryManagerTest, ReserveReleaseRoundTrip) {
  ExecutorMemoryManager mm(100 * kKb, 0.5);
  EXPECT_EQ(mm.total_bytes(), 100 * kKb);
  EXPECT_EQ(mm.storage_floor_bytes(), 50 * kKb);
  {
    MemoryReservation r = mm.TryReserve(Pool::kExecution, 30 * kKb);
    ASSERT_TRUE(r.held());
    EXPECT_EQ(r.bytes(), 30 * kKb);
    EXPECT_EQ(mm.exec_used(), 30 * kKb);
  }
  // RAII: destruction returned the bytes.
  EXPECT_EQ(mm.exec_used(), 0u);
  EXPECT_EQ(mm.exec_peak(), 30 * kKb);
  EXPECT_EQ(mm.denied_reservations(), 0u);

  MemoryReservation r = mm.TryReserve(Pool::kStorage, 10 * kKb);
  ASSERT_TRUE(r.held());
  r.Release();
  r.Release();  // idempotent
  EXPECT_EQ(mm.storage_used(), 0u);
  EXPECT_EQ(mm.storage_peak(), 10 * kKb);
}

TEST(MemoryManagerTest, StorageBorrowsIdleExecutionMemory) {
  ExecutorMemoryManager mm(100 * kKb, 0.3);
  // With execution idle, storage may take the whole budget (its 30K floor
  // is only a protection, not a cap).
  MemoryReservation big = mm.TryReserve(Pool::kStorage, 90 * kKb);
  ASSERT_TRUE(big.held());
  // The storage cap is everything execution does not use — the whole
  // budget while execution is idle.
  EXPECT_EQ(mm.storage_limit(), 100 * kKb);
  EXPECT_FALSE(mm.StorageOverLimit());
  // Borrowed = bytes held beyond the floor.
  EXPECT_EQ(mm.borrowed_peak(), 60 * kKb);
  // A storage request past the total is denied (storage never evicts
  // execution, and there is nothing left).
  MemoryReservation over = mm.TryReserve(Pool::kStorage, 20 * kKb);
  EXPECT_FALSE(over.held());
  EXPECT_EQ(mm.denied_reservations(), 1u);
}

TEST(MemoryManagerTest, ExecutionEvictsStorageDownToFloorOnly) {
  ExecutorMemoryManager mm(100 * kKb, 0.4);
  // Simulated block store: holds storage reservations it can shed.
  std::vector<MemoryReservation> blocks;
  std::vector<uint64_t> evict_requests;
  mm.SetStorageEvictor([&](uint64_t need,
                           ExecutorMemoryManager::EvictStage stage,
                           bool for_oom) -> uint64_t {
    EXPECT_FALSE(for_oom);
    // This fake store has no off-heap tier: the demote stage sheds
    // nothing, like the real cache with storage_tiers=2.
    if (stage == ExecutorMemoryManager::EvictStage::kDemote) return 0;
    evict_requests.push_back(need);
    uint64_t evicted = 0;
    while (!blocks.empty() && evicted < need) {
      evicted += blocks.back().bytes();
      blocks.pop_back();
    }
    return evicted / (10 * kKb);
  });
  for (int i = 0; i < 8; ++i) {
    blocks.push_back(mm.TryReserve(Pool::kStorage, 10 * kKb));
    ASSERT_TRUE(blocks.back().held());
  }
  EXPECT_EQ(mm.storage_used(), 80 * kKb);

  // 50K execution request: 20K free, so 30K must come from eviction —
  // storage drops to 50K, still above its 40K floor.
  MemoryReservation r = mm.TryReserve(Pool::kExecution, 50 * kKb);
  ASSERT_TRUE(r.held());
  ASSERT_EQ(evict_requests.size(), 1u);
  EXPECT_EQ(evict_requests[0], 30 * kKb);
  EXPECT_EQ(mm.storage_used(), 50 * kKb);
  EXPECT_EQ(mm.denied_reservations(), 0u);

  // A further 20K request would need storage below its floor: the
  // evictor is asked for at most the evictable 10K, the grant still
  // fails, and the denial is counted.
  MemoryReservation r2 = mm.TryReserve(Pool::kExecution, 20 * kKb);
  EXPECT_FALSE(r2.held());
  EXPECT_EQ(mm.denied_reservations(), 1u);
  EXPECT_GE(mm.storage_used(), mm.storage_floor_bytes());
}

TEST(MemoryManagerTest, ForcedReserveOvercommitsAndCountsDenial) {
  ExecutorMemoryManager mm(10 * kKb, 0.5);
  MemoryReservation r = mm.Reserve(Pool::kStorage, 30 * kKb);
  ASSERT_TRUE(r.held());  // forced grants always hold...
  EXPECT_EQ(mm.storage_used(), 30 * kKb);
  EXPECT_EQ(mm.denied_reservations(), 1u);  // ...but the pressure shows
  EXPECT_TRUE(mm.StorageOverLimit());
}

TEST(MemoryManagerTest, ExecutionRoomProbeCountsDenial) {
  ExecutorMemoryManager mm(10 * kKb, 0.5);
  EXPECT_TRUE(mm.TryExecutionRoom(8 * kKb));
  EXPECT_EQ(mm.denied_reservations(), 0u);
  EXPECT_FALSE(mm.TryExecutionRoom(12 * kKb));
  EXPECT_EQ(mm.denied_reservations(), 1u);
  // Probes never charge.
  EXPECT_EQ(mm.exec_used(), 0u);
}

TEST(MemoryManagerTest, PageChargesAndPoolTransfer) {
  ExecutorMemoryManager mm(100 * kKb, 0.5);
  mm.ChargePages(Pool::kExecution, 20 * kKb);
  EXPECT_EQ(mm.exec_used(), 20 * kKb);
  EXPECT_EQ(mm.page_bytes(), 20 * kKb);
  // A shuffle-built page group handed to the cache moves pools without
  // double counting.
  mm.TransferPages(Pool::kExecution, Pool::kStorage, 20 * kKb);
  EXPECT_EQ(mm.exec_used(), 0u);
  EXPECT_EQ(mm.storage_used(), 20 * kKb);
  EXPECT_EQ(mm.page_bytes(), 20 * kKb);
  mm.UnchargePages(Pool::kStorage, 20 * kKb);
  EXPECT_EQ(mm.page_bytes(), 0u);
  EXPECT_EQ(mm.denied_reservations(), 0u);
}

class FakePages : public PageFootprintSource {
 public:
  explicit FakePages(uint64_t bytes) : bytes_(bytes) {}
  uint64_t footprint_bytes() const override { return bytes_; }

 private:
  uint64_t bytes_;
};

TEST(MemoryManagerTest, VerifyAccountingMatchesRegisteredSources) {
  ExecutorMemoryManager mm(100 * kKb, 0.5);
  mm.RegisterHeapCapacity(64 * kKb);
  FakePages a(12 * kKb), b(8 * kKb);
  mm.RegisterPageSource(&a);
  mm.RegisterPageSource(&b);
  mm.ChargePages(Pool::kExecution, 12 * kKb);
  mm.ChargePages(Pool::kStorage, 8 * kKb);
  mm.VerifyAccounting(64 * kKb);  // aborts on drift
  MemoryStats s = mm.Snapshot();
  EXPECT_EQ(s.page_bytes, 20 * kKb);
  EXPECT_EQ(s.heap_capacity, 64 * kKb);
  mm.UnregisterPageSource(&b);
  mm.UnchargePages(Pool::kStorage, 8 * kKb);
  mm.VerifyAccounting(64 * kKb);
}

// -- Stage-barrier invariants across the whole engine -----------------------

/// Test record: class Rec { long id; double val; } (same shape the engine
/// tests use).
struct RecModel {
  explicit RecModel(jvm::ClassRegistry* registry) {
    class_id = registry->RegisterClass(
        "Rec",
        {{"id", jvm::FieldKind::kLong}, {"val", jvm::FieldKind::kDouble}});
    ops.managed_bytes = [](jvm::Heap*, jvm::ObjRef) -> uint64_t {
      return jvm::kHeaderBytes + 16;
    };
    ops.serialize = [](jvm::Heap* h, jvm::ObjRef r, ByteWriter* w) {
      w->WriteVarI64(h->GetField<int64_t>(r, 0));
      w->Write<double>(h->GetField<double>(r, 8));
    };
    uint32_t cid = class_id;
    ops.deserialize = [cid](jvm::Heap* h, ByteReader* r) {
      int64_t id = r->ReadVarI64();
      double val = r->Read<double>();
      jvm::ObjRef rec = h->AllocateInstance(cid);
      h->SetField<int64_t>(rec, 0, id);
      h->SetField<double>(rec, 8, val);
      return rec;
    };
    ops.deca_bytes = [](jvm::Heap*, jvm::ObjRef) -> uint32_t { return 16; };
    ops.decompose = [](jvm::Heap* h, jvm::ObjRef r, uint8_t* out) {
      StoreRaw<int64_t>(out, h->GetField<int64_t>(r, 0));
      StoreRaw<double>(out + 8, h->GetField<double>(r, 8));
    };
    ops.reconstruct = [cid](jvm::Heap* h, const uint8_t* in) {
      jvm::ObjRef rec = h->AllocateInstance(cid);
      h->SetField<int64_t>(rec, 0, LoadRaw<int64_t>(in));
      h->SetField<double>(rec, 8, LoadRaw<double>(in + 8));
      return rec;
    };
  }

  uint32_t class_id;
  spark::RecordOps ops;
};

/// Everything the unified plane reports for one pipeline run, folded into
/// comparable per-executor rows (no wall-clock fields).
struct PipelineObservation {
  std::vector<uint64_t> numbers;

  bool operator==(const PipelineObservation& o) const {
    return numbers == o.numbers;
  }
};

/// A mini pipeline exercising every charge path at once: page-group cache
/// blocks (execution -> storage transfer + LRU swap-out), and a sort-spill
/// writer whose probes borrow execution memory back from storage. Returns
/// per-executor accounting; `threads` selects the sequential driver loop
/// (0) or the parallel runtime.
PipelineObservation RunPipeline(int threads) {
  spark::SparkConfig cfg;
  cfg.num_executors = 2;
  cfg.partitions_per_executor = 2;
  cfg.num_worker_threads = threads;
  cfg.heap.heap_bytes = 16u << 20;
  cfg.executor_memory_bytes = 256u << 10;  // tiny: forces swap + spill
  cfg.storage_fraction = 0.5;
  cfg.cache_level = spark::StorageLevel::kDecaPages;
  cfg.spill_dir = "/tmp/deca_test_mm";
  spark::SparkContext ctx(cfg);
  RecModel model(ctx.registry());
  ctx.RegisterCachedRdd(1, &model.ops);

  // Stage 1: each partition caches a ~160KB page-group block. Two blocks
  // per executor (320KB) overflow the 256KB budget -> LRU swap-out.
  ctx.RunStage("build", [&](spark::TaskContext& tc) {
    auto pages = std::make_shared<core::PageGroup>(tc.heap(), 16u << 10);
    const int n = 10000;
    for (int i = 0; i < n; ++i) {
      core::SegPtr s = pages->Append(16);
      uint8_t* p = pages->Resolve(s);
      StoreRaw<int64_t>(p, tc.partition() * 100000 + i);
      StoreRaw<double>(p + 8, i * 0.25);
    }
    tc.cache()->PutPages({1, tc.partition()}, std::move(pages), n,
                         &tc.metrics());
  });

  // Stage 2: sort-spill shuffle write. The execution pool must claw
  // memory back from storage (down to the floor) and then spill runs.
  std::vector<uint32_t> spill_counts(
      static_cast<size_t>(ctx.num_partitions()), 0);
  ctx.RunStage("spill", [&](spark::TaskContext& tc) {
    auto less = [](const uint8_t* a, const uint8_t* b) {
      return LoadRaw<int64_t>(a) < LoadRaw<int64_t>(b);
    };
    spark::DecaSortSpillWriter writer(tc.heap(), 8u << 10, cfg.spill_dir,
                                      less);
    uint8_t rec[16];
    const uint32_t n = 60000;  // ~960KB >> the ~256KB execution region
    for (uint32_t i = 0; i < n; ++i) {
      int64_t key = static_cast<int64_t>((i * 2654435761u) % 100000);
      StoreRaw<int64_t>(rec, key);
      StoreRaw<double>(rec + 8, 1.0);
      writer.Append(rec, 16);
    }
    int64_t last = INT64_MIN;
    uint32_t merged = 0;
    writer.Merge([&](const uint8_t* r, uint32_t bytes) {
      ASSERT_EQ(bytes, 16u);
      int64_t k = LoadRaw<int64_t>(r);
      ASSERT_GE(k, last);
      last = k;
      ++merged;
    });
    EXPECT_EQ(merged, n);
    spill_counts[static_cast<size_t>(tc.partition())] = writer.spill_count();
  });

  // Stage 3: swapped blocks stream back intact.
  ctx.RunStage("reload", [&](spark::TaskContext& tc) {
    spark::LoadedBlock block =
        tc.cache()->Get({1, tc.partition()}, &tc.metrics());
    ASSERT_TRUE(block.valid());
    core::PageScanner scan(block.pages.get());
    int i = 0;
    while (!scan.AtEnd()) {
      uint8_t* p = scan.Cur();
      ASSERT_EQ(LoadRaw<int64_t>(p), tc.partition() * 100000 + i);
      scan.Advance(16);
      ++i;
    }
    EXPECT_EQ(i, 10000);
  });

  // Fold everything comparable into one observation. The accounting
  // identity itself (pool charges == heap capacity registration + summed
  // page footprints) is asserted by VerifyMemoryAccounting at every stage
  // barrier above; re-check once more at the end.
  PipelineObservation obs;
  for (int e = 0; e < ctx.num_executors(); ++e) {
    ctx.executor(e)->VerifyMemoryAccounting();
    MemoryStats s = ctx.executor(e)->memory()->Snapshot();
    obs.numbers.insert(
        obs.numbers.end(),
        {s.total_bytes, s.storage_floor_bytes, s.exec_used, s.exec_peak,
         s.storage_used, s.storage_peak, s.borrowed_peak,
         s.denied_reservations, s.page_bytes, s.heap_capacity});
    obs.numbers.push_back(ctx.executor(e)->cache()->swap_out_count());
    obs.numbers.push_back(ctx.executor(e)->cache()->pressure_evictions());
  }
  for (uint32_t c : spill_counts) obs.numbers.push_back(c);
  return obs;
}

TEST(MemoryPipelineTest, PressurePathsFireUnderTinyBudget) {
  PipelineObservation obs = RunPipeline(0);
  // Layout per executor: [.., exec_peak(3), .., storage_peak(5),
  // borrowed_peak(6), denied(7), .., swap_outs(10), pressure(11)],
  // then one spill count per partition.
  ASSERT_EQ(obs.numbers.size(), 2 * 12 + 4u);
  for (int e = 0; e < 2; ++e) {
    size_t base = static_cast<size_t>(e) * 12;
    EXPECT_GT(obs.numbers[base + 3], 0u) << "exec peak, executor " << e;
    EXPECT_GT(obs.numbers[base + 5], 0u) << "storage peak, executor " << e;
    EXPECT_GT(obs.numbers[base + 7], 0u) << "denials, executor " << e;
    EXPECT_GT(obs.numbers[base + 10], 0u) << "swap-outs, executor " << e;
    // Pool arbitration is not an OOM rescue: the pressure counter stays 0.
    EXPECT_EQ(obs.numbers[base + 11], 0u) << "pressure, executor " << e;
  }
  for (size_t i = 24; i < obs.numbers.size(); ++i) {
    EXPECT_GT(obs.numbers[i], 1u) << "spill count, partition " << (i - 24);
  }
}

TEST(MemoryPipelineTest, ParallelRunsMatchSequentialAccounting) {
  PipelineObservation seq = RunPipeline(0);
  for (int threads : {2, 4}) {
    PipelineObservation par = RunPipeline(threads);
    EXPECT_EQ(seq, par) << "with " << threads << " worker threads";
  }
}

}  // namespace
}  // namespace deca::memory
