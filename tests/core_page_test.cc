#include <gtest/gtest.h>

#include "common/bytes.h"
#include "core/page.h"
#include "core/planner.h"
#include "core/sudt_layout.h"

namespace deca::core {
namespace {

using analysis::SizeType;
using jvm::FieldKind;

class PageTest : public ::testing::Test {
 protected:
  PageTest() {
    jvm::HeapConfig cfg;
    cfg.heap_bytes = 16u << 20;
    heap_ = std::make_unique<jvm::Heap>(cfg, &registry_);
  }
  jvm::ClassRegistry registry_;
  std::unique_ptr<jvm::Heap> heap_;
};

TEST_F(PageTest, AppendAndResolve) {
  PageGroup g(heap_.get(), 4096);
  SegPtr a = g.Append(16);
  SegPtr b = g.Append(24);
  EXPECT_EQ(a.page, 0u);
  EXPECT_EQ(a.offset, 0u);
  EXPECT_EQ(b.offset, 16u);
  StoreRaw<double>(g.Resolve(a), 1.5);
  StoreRaw<double>(g.Resolve(b), 2.5);
  EXPECT_EQ(LoadRaw<double>(g.Resolve(a)), 1.5);
  EXPECT_EQ(LoadRaw<double>(g.Resolve(b)), 2.5);
  EXPECT_EQ(g.segment_count(), 2u);
  EXPECT_EQ(g.used_bytes(), 40u);
}

TEST_F(PageTest, SegmentsNeverStraddlePages) {
  PageGroup g(heap_.get(), 100);
  g.Append(60);
  SegPtr b = g.Append(60);  // does not fit in page 0's remaining 40 bytes
  EXPECT_EQ(b.page, 1u);
  EXPECT_EQ(b.offset, 0u);
  EXPECT_EQ(g.page_count(), 2u);
  EXPECT_EQ(g.page_used(0), 60u);
  EXPECT_EQ(g.page_used(1), 60u);
}

TEST_F(PageTest, DataSurvivesFullGc) {
  PageGroup g(heap_.get(), 4096);
  std::vector<SegPtr> segs;
  for (int i = 0; i < 1000; ++i) {
    SegPtr s = g.Append(8);
    StoreRaw<double>(g.Resolve(s), i * 0.5);
    segs.push_back(s);
  }
  heap_->CollectFull();
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(LoadRaw<double>(g.Resolve(segs[i])), i * 0.5);
  }
}

TEST_F(PageTest, GcTracesPagesNotRecords) {
  // A page group with 100k records contributes only page_count objects.
  PageGroup g(heap_.get(), 64 << 10);
  for (int i = 0; i < 100000; ++i) g.Append(16);
  uint64_t traced_before = heap_->stats().objects_traced;
  heap_->CollectFull();
  uint64_t traced = heap_->stats().objects_traced - traced_before;
  // Pages only (plus a handful of runtime objects), not 100k records.
  EXPECT_LT(traced, g.page_count() + 10);
  EXPECT_GE(traced, g.page_count());
}

TEST_F(PageTest, DestructionReleasesSpace) {
  size_t used_before = heap_->old_used_bytes();
  {
    PageGroup g(heap_.get(), 64 << 10);
    for (int i = 0; i < 1000; ++i) g.Append(64);
    heap_->CollectFull();
    EXPECT_GT(heap_->old_used_bytes(), used_before);
  }
  heap_->CollectFull();
  EXPECT_LE(heap_->old_used_bytes(), used_before + (64u << 10));
}

TEST_F(PageTest, SharedGroupReclaimedByLastOwner) {
  auto g = std::make_shared<PageGroup>(heap_.get(), 4096);
  SegPtr s = g->Append(8);
  StoreRaw<double>(g->Resolve(s), 7.0);
  auto secondary = std::make_shared<PageGroup>(heap_.get(), 4096);
  secondary->AddDependency(g);
  g.reset();  // primary released; dependency keeps pages alive
  heap_->CollectFull();
  // The dependency vector is the only remaining owner.
  secondary.reset();
  heap_->CollectFull();
  SUCCEED();
}

TEST_F(PageTest, ScannerVisitsAllRecordsInOrder) {
  PageGroup g(heap_.get(), 128);  // small pages force page transitions
  for (int i = 0; i < 50; ++i) {
    SegPtr s = g.Append(16);
    StoreRaw<int64_t>(g.Resolve(s), i);
    StoreRaw<double>(g.Resolve(s) + 8, i * 2.0);
  }
  PageScanner scan(&g);
  int i = 0;
  while (!scan.AtEnd()) {
    uint8_t* p = scan.Cur();
    EXPECT_EQ(LoadRaw<int64_t>(p), i);
    EXPECT_EQ(LoadRaw<double>(p + 8), i * 2.0);
    scan.Advance(16);
    ++i;
  }
  EXPECT_EQ(i, 50);
}

TEST_F(PageTest, ScannerHandlesVariableRecords) {
  PageGroup g(heap_.get(), 256);
  // Records: u32 length + that many bytes.
  for (uint32_t len = 1; len <= 30; ++len) {
    SegPtr s = g.Append(4 + len);
    uint8_t* p = g.Resolve(s);
    StoreRaw<uint32_t>(p, len);
    for (uint32_t j = 0; j < len; ++j) p[4 + j] = static_cast<uint8_t>(len);
  }
  PageScanner scan(&g);
  uint32_t expect = 1;
  while (!scan.AtEnd()) {
    uint8_t* p = scan.Cur();
    uint32_t len = LoadRaw<uint32_t>(p);
    EXPECT_EQ(len, expect);
    EXPECT_EQ(p[4 + len - 1], static_cast<uint8_t>(len));
    scan.Advance(4 + len);
    ++expect;
  }
  EXPECT_EQ(expect, 31u);
}

TEST_F(PageTest, ClearDropsPages) {
  PageGroup g(heap_.get(), 4096);
  for (int i = 0; i < 100; ++i) g.Append(64);
  EXPECT_GT(g.page_count(), 0u);
  g.Clear();
  EXPECT_EQ(g.page_count(), 0u);
  EXPECT_EQ(g.used_bytes(), 0u);
  PageScanner scan(&g);
  EXPECT_TRUE(scan.AtEnd());
}

// -- SUDT layout ------------------------------------------------------------

class LayoutTest : public ::testing::Test {
 protected:
  analysis::TypeUniverse u_;
};

TEST_F(LayoutTest, PaperLabeledPointSfstLayout) {
  // Figure 2: [label | data(0) | data(1) | ... | data(D-1)] — references,
  // headers and the redundant offset/stride/length fields of the vector
  // are materialized as layout leaves too (they are primitive fields).
  const auto* darr =
      u_.DefineArray("Array[Double]", {u_.Primitive(FieldKind::kDouble)});
  auto* dv = u_.DefineClass("DenseVector");
  u_.AddField(dv, "data", true, {darr});
  auto* lp = u_.DefineClass("LabeledPoint");
  u_.AddField(lp, "label", false, {u_.Primitive(FieldKind::kDouble)});
  u_.AddField(lp, "features", false, {dv});

  LengthResolver lengths;
  lengths.SetFixedLength(dv, "data", 10);
  SudtLayout layout = SudtLayout::Build(lp, lengths);
  EXPECT_FALSE(layout.has_variable_part());
  EXPECT_EQ(layout.static_size(), 8u + 10 * 8u);
  EXPECT_EQ(layout.field("label").offset, 0u);
  EXPECT_EQ(layout.field("features.data").offset, 8u);
  EXPECT_EQ(layout.field("features.data").count, 10u);
}

TEST_F(LayoutTest, RfstLayoutHasVariableTail) {
  const auto* larr =
      u_.DefineArray("Array[Long]", {u_.Primitive(FieldKind::kLong)});
  auto* adj = u_.DefineClass("Adjacency");
  u_.AddField(adj, "vertex", false, {u_.Primitive(FieldKind::kLong)});
  u_.AddField(adj, "rank", false, {u_.Primitive(FieldKind::kDouble)});
  u_.AddField(adj, "neighbors", true, {larr});

  SudtLayout layout = SudtLayout::Build(adj, LengthResolver());
  EXPECT_TRUE(layout.has_variable_part());
  EXPECT_EQ(layout.fixed_bytes(), 16u);
  EXPECT_EQ(layout.field("vertex").offset, 0u);
  EXPECT_EQ(layout.field("rank").offset, 8u);
  EXPECT_TRUE(layout.field("neighbors").variable_length);
  // Record size: fixed + (u32 length + 8*len).
  EXPECT_EQ(layout.RuntimeSize({5}), 16u + 4u + 40u);
}

TEST_F(LayoutTest, FixedFieldsReorderedBeforeVariable) {
  const auto* barr =
      u_.DefineArray("Array[Byte]", {u_.Primitive(FieldKind::kByte)});
  auto* rec = u_.DefineClass("Record");
  u_.AddField(rec, "name", true, {barr});  // variable-length
  u_.AddField(rec, "score", false, {u_.Primitive(FieldKind::kDouble)});
  SudtLayout layout = SudtLayout::Build(rec, LengthResolver());
  // `score` declared after `name` but lands in the fixed prefix at 0.
  EXPECT_EQ(layout.field("score").offset, 0u);
  EXPECT_EQ(layout.fixed_bytes(), 8u);
  ASSERT_EQ(layout.variable_fields().size(), 1u);
  EXPECT_EQ(layout.variable_fields()[0].path, "name");
}

// -- planner ------------------------------------------------------------------

TEST(PlannerTest, CacheOutranksUdfVariables) {
  std::vector<ContainerSpec> group{
      {"udf", ContainerKind::kUdfVariables, 0, SizeType::kStaticFixed, false},
      {"cache", ContainerKind::kCacheBlock, 1, SizeType::kStaticFixed,
       false},
  };
  EXPECT_EQ(DecompositionPlanner::PrimaryIndex(group), 1);
  auto plan = DecompositionPlanner::Plan(group);
  EXPECT_EQ(plan[1].layout, ContainerLayout::kDecomposed);
  EXPECT_EQ(plan[0].layout, ContainerLayout::kPointersToPrimary);
  EXPECT_EQ(plan[0].primary_index, 1);
}

TEST(PlannerTest, FirstCreatedHighPriorityWins) {
  std::vector<ContainerSpec> group{
      {"shuffle", ContainerKind::kShuffleBuffer, 0, SizeType::kStaticFixed,
       false},
      {"cache", ContainerKind::kCacheBlock, 1, SizeType::kStaticFixed,
       false},
  };
  EXPECT_EQ(DecompositionPlanner::PrimaryIndex(group), 0);
}

TEST(PlannerTest, VstPrimaryKeepsObjects) {
  std::vector<ContainerSpec> group{
      {"cache", ContainerKind::kCacheBlock, 0, SizeType::kVariable, false},
  };
  auto plan = DecompositionPlanner::Plan(group);
  EXPECT_EQ(plan[0].layout, ContainerLayout::kObjects);
}

TEST(PlannerTest, SameObjectsShareThePageGroup) {
  std::vector<ContainerSpec> group{
      {"cacheA", ContainerKind::kCacheBlock, 0, SizeType::kStaticFixed,
       false},
      {"cacheB", ContainerKind::kCacheBlock, 1, SizeType::kStaticFixed,
       true},
  };
  auto plan = DecompositionPlanner::Plan(group);
  EXPECT_EQ(plan[0].layout, ContainerLayout::kDecomposed);
  EXPECT_EQ(plan[1].layout, ContainerLayout::kSharedPageInfo);
}

TEST(PlannerTest, PartiallyDecomposableCopiesOut) {
  // Paper Figure 7b: groupByKey shuffle output (VST in the buffer)
  // immediately cached; the cache decomposes its own copy.
  std::vector<ContainerSpec> group{
      {"shuffle", ContainerKind::kShuffleBuffer, 0, SizeType::kVariable,
       false},
      {"cache", ContainerKind::kCacheBlock, 1, SizeType::kRuntimeFixed,
       false},
  };
  auto plan = DecompositionPlanner::Plan(group);
  EXPECT_EQ(plan[0].layout, ContainerLayout::kObjects);
  EXPECT_EQ(plan[1].layout, ContainerLayout::kDecomposed);
}

TEST(PlannerTest, OrderedSecondaryGetsPointers) {
  std::vector<ContainerSpec> group{
      {"cache", ContainerKind::kCacheBlock, 0, SizeType::kStaticFixed,
       false},
      {"shuffle", ContainerKind::kShuffleBuffer, 1, SizeType::kStaticFixed,
       false},  // needs its own sort order
  };
  auto plan = DecompositionPlanner::Plan(group);
  EXPECT_EQ(plan[1].layout, ContainerLayout::kPointersToPrimary);
  EXPECT_EQ(plan[1].primary_index, 0);
}

}  // namespace
}  // namespace deca::core
