// Tracing + run-report subsystem tests (src/obs): ring-buffer overflow
// semantics, canonical ordering and span nesting on a real workload, the
// parallel == sequential trace-content contract, report JSON round-trip,
// and the regression-diff rules the CI bench gate relies on.

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "obs/run_report.h"
#include "obs/trace.h"
#include "workloads/lr.h"
#include "workloads/wordcount.h"

namespace deca {
namespace {

using obs::CanonicalLess;
using obs::Cat;
using obs::DiffOptions;
using obs::DiffReports;
using obs::ReportRun;
using obs::RunReport;
using obs::SameContent;
using obs::TraceEvent;
using obs::TraceLog;
using obs::TraceRecorder;

// ---------------------------------------------------------------------------
// TraceRecorder ring semantics.

TEST(TraceRecorderTest, RecordsIdentityAndSequence) {
  TraceRecorder rec(/*executor=*/3, /*capacity=*/16);
  rec.BeginWindow(/*stage=*/2, /*partition=*/5, /*attempt=*/1);
  rec.Record(Cat::kTask, "a", 100, 10, 1.0, 2.0, 3.0);
  rec.Record(Cat::kGc, "b", 200, -1);

  std::vector<TraceEvent> out;
  rec.Drain(&out);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_STREQ(out[0].name, "a");
  EXPECT_EQ(out[0].stage, 2);
  EXPECT_EQ(out[0].partition, 5);
  EXPECT_EQ(out[0].attempt, 1);
  EXPECT_EQ(out[0].executor, 3);
  EXPECT_EQ(out[0].seq, 0u);
  EXPECT_FALSE(out[0].instant());
  EXPECT_EQ(out[1].seq, 1u);
  EXPECT_TRUE(out[1].instant());
  EXPECT_EQ(rec.pending(), 0u);

  // A new window resets the sequence counter.
  rec.BeginWindow(2, 6, 0);
  rec.Record(Cat::kTask, "c", 300, -1);
  out.clear();
  rec.Drain(&out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].seq, 0u);
  EXPECT_EQ(out[0].partition, 6);
}

TEST(TraceRecorderTest, FullRingDropsOldestAndCounts) {
  constexpr uint32_t kCap = 8;
  TraceRecorder rec(/*executor=*/0, kCap);
  rec.BeginWindow(0, 0, 0);
  for (int i = 0; i < 20; ++i) {
    rec.Record(Cat::kTask, "e", i, -1, /*arg0=*/i);
  }
  EXPECT_EQ(rec.dropped_events(), 20u - kCap);
  EXPECT_EQ(rec.pending(), kCap);

  std::vector<TraceEvent> out;
  rec.Drain(&out);
  ASSERT_EQ(out.size(), kCap);
  // The survivors are the newest kCap events, oldest-first.
  for (uint32_t i = 0; i < kCap; ++i) {
    EXPECT_DOUBLE_EQ(out[i].arg0, 20.0 - kCap + i);
    EXPECT_EQ(out[i].seq, 20u - kCap + i);
  }
  // Drop counter is cumulative and unaffected by draining.
  EXPECT_EQ(rec.dropped_events(), 20u - kCap);
}

TEST(TraceRecorderTest, DisabledHooksAreNoOps) {
  // No recorder installed: Instant/ScopedSpan must be safe no-ops.
  obs::ScopedRecorder off(nullptr);
  EXPECT_EQ(obs::Current(), nullptr);
  obs::Instant(Cat::kMemory, "deny", 1.0);
  {
    obs::ScopedSpan span(Cat::kTask, "task");
    span.set_args(1, 2);
    span.set_time_arg(3);
  }
  EXPECT_EQ(obs::Current(), nullptr);
}

// ---------------------------------------------------------------------------
// Real-workload traces: structure, ordering, determinism.

workloads::MlParams TracedLr(int num_worker_threads) {
  workloads::MlParams p;
  p.num_points = 40'000;
  p.iterations = 3;
  p.mode = workloads::Mode::kSpark;
  p.spark.num_executors = 2;
  p.spark.partitions_per_executor = 2;
  p.spark.heap.heap_bytes = 32u << 20;
  p.spark.storage_fraction = 0.9;
  p.spark.num_worker_threads = num_worker_threads;
  p.spark.trace_enabled = true;
  return p;
}

TEST(WorkloadTraceTest, LogIsCanonicallyOrderedWithExpectedStructure) {
  workloads::LrResult r =
      workloads::RunLogisticRegression(TracedLr(/*num_worker_threads=*/0));
  ASSERT_NE(r.run.trace, nullptr);
  const TraceLog& log = *r.run.trace;
  ASSERT_FALSE(log.events.empty());
  EXPECT_EQ(log.dropped_events, 0u);
  EXPECT_EQ(log.num_executors, 2);

  // Canonically ordered, and the (stage, partition, attempt, seq) key is
  // unique across the whole log.
  for (size_t i = 1; i < log.events.size(); ++i) {
    const TraceEvent& a = log.events[i - 1];
    const TraceEvent& b = log.events[i];
    EXPECT_FALSE(CanonicalLess(b, a)) << "events out of order at " << i;
    bool same_key = a.stage == b.stage && a.partition == b.partition &&
                    a.attempt == b.attempt && a.seq == b.seq;
    EXPECT_FALSE(same_key) << "duplicate canonical key at " << i;
  }

  uint64_t stage_spans = 0;
  uint64_t task_spans = 0;
  uint64_t dispatches = 0;
  for (const TraceEvent& ev : log.events) {
    if (ev.cat == Cat::kStage && !ev.instant()) {
      ++stage_spans;
      // Driver window identity.
      EXPECT_EQ(ev.partition, -1);
      EXPECT_EQ(ev.attempt, -1);
      EXPECT_EQ(ev.executor, -1);
    }
    if (ev.cat == Cat::kTask && std::string(ev.name) == "task") {
      ++task_spans;
      EXPECT_GE(ev.partition, 0);
      EXPECT_GE(ev.attempt, 0);
      EXPECT_GE(ev.executor, 0);
      EXPECT_GE(ev.dur_ns, 0);
      // Each task span nests inside its stage's window: a stage span with
      // the same stage id exists.
      bool found = false;
      for (const TraceEvent& s : log.events) {
        if (s.cat == Cat::kStage && !s.instant() && s.stage == ev.stage) {
          found = true;
          break;
        }
      }
      EXPECT_TRUE(found) << "task span without stage span, stage "
                         << ev.stage;
    }
    if (ev.cat == Cat::kSched && std::string(ev.name) == "dispatch") {
      ++dispatches;
    }
  }
  EXPECT_GT(stage_spans, 0u);
  EXPECT_GT(task_spans, 0u);
  // One dispatch instant per task attempt.
  EXPECT_EQ(dispatches, task_spans);
}

TEST(WorkloadTraceTest, ParallelTraceContentMatchesSequential) {
  workloads::LrResult seq =
      workloads::RunLogisticRegression(TracedLr(/*num_worker_threads=*/0));
  workloads::LrResult par =
      workloads::RunLogisticRegression(TracedLr(/*num_worker_threads=*/2));
  ASSERT_NE(seq.run.trace, nullptr);
  ASSERT_NE(par.run.trace, nullptr);
  ASSERT_EQ(seq.run.trace->events.size(), par.run.trace->events.size());
  for (size_t i = 0; i < seq.run.trace->events.size(); ++i) {
    EXPECT_TRUE(
        SameContent(seq.run.trace->events[i], par.run.trace->events[i]))
        << "content diverges at event " << i << " ("
        << seq.run.trace->events[i].name << " vs "
        << par.run.trace->events[i].name << ")";
  }
  // And so do the aggregates' deterministic halves.
  auto sa = seq.run.trace->Aggregate();
  auto pa = par.run.trace->Aggregate();
  ASSERT_EQ(sa.size(), pa.size());
  for (size_t i = 0; i < sa.size(); ++i) {
    EXPECT_EQ(sa[i].cat, pa[i].cat);
    EXPECT_EQ(sa[i].name, pa[i].name);
    EXPECT_EQ(sa[i].count, pa[i].count);
  }
}

TEST(WorkloadTraceTest, TracingDoesNotPerturbSimulation) {
  workloads::MlParams off = TracedLr(0);
  off.spark.trace_enabled = false;
  workloads::LrResult a = workloads::RunLogisticRegression(off);
  workloads::LrResult b = workloads::RunLogisticRegression(TracedLr(0));
  EXPECT_EQ(a.run.trace, nullptr);
  EXPECT_EQ(a.run.minor_gcs, b.run.minor_gcs);
  EXPECT_EQ(a.run.full_gcs, b.run.full_gcs);
  ASSERT_EQ(a.weights.size(), b.weights.size());
  for (size_t i = 0; i < a.weights.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.weights[i], b.weights[i]);
  }
}

// ---------------------------------------------------------------------------
// RunReport JSON round-trip and diffing.

RunReport SampleReport() {
  RunReport rep;
  rep.bench = "sample_bench";
  ReportRun run;
  run.label = "WC/Deca";
  run.Add("minor_gcs", 17, /*exact=*/true);
  run.Add("exec_pool_peak_bytes", 123456789.0, true);
  run.Add("exec_ms", 42.125, /*exact=*/false);
  run.Add("gc_ms", 7.0625, false);
  // Values that stress float round-tripping.
  run.Add("tricky", 0.1 + 0.2, false);
  obs::SpanAgg agg;
  agg.cat = "task";
  agg.name = "task";
  agg.count = 8;
  agg.total_ms = 39.5;
  run.spans.push_back(agg);
  run.epochs.present = true;
  run.epochs.epochs_run = 240;
  run.epochs.windows = 60;
  run.epochs.reclaimed_bytes = 987654321;
  run.epochs.pause_p50_ms = 0.5;
  run.epochs.pause_p99_ms = 2.25;
  run.epochs.reclaim_p99_ms = 1.125;
  rep.runs.push_back(run);

  ReportRun run2;
  run2.label = "WC/Spark";
  run2.Add("minor_gcs", 210, true);
  run2.Add("exec_ms", 99.5, false);
  rep.runs.push_back(run2);
  return rep;
}

TEST(RunReportTest, JsonRoundTripPreservesEverything) {
  RunReport rep = SampleReport();
  std::string err;
  ASSERT_TRUE(Validate(rep, &err)) << err;
  std::string json = ToJson(rep);
  RunReport back;
  ASSERT_TRUE(FromJson(json, &back, &err)) << err;
  EXPECT_TRUE(ReportsEqual(rep, back));
  // Stability: a second round trip emits identical text.
  EXPECT_EQ(json, ToJson(back));
}

TEST(RunReportTest, FromJsonRejectsGarbageAndWrongSchema) {
  RunReport out;
  std::string err;
  EXPECT_FALSE(FromJson("not json", &out, &err));
  EXPECT_FALSE(FromJson("{}", &out, &err));
  EXPECT_FALSE(FromJson(
      R"({"schema":"other","version":1,"bench":"x","runs":[]})", &out,
      &err));
}

TEST(RunReportTest, WorkloadReportValidatesAndRoundTrips) {
  // End-to-end: a real traced run, packed the way bench_util does.
  workloads::LrResult r = workloads::RunLogisticRegression(TracedLr(0));
  RunReport rep;
  rep.bench = "obs_trace_test";
  ReportRun run;
  run.label = "LR/Spark";
  run.Add("minor_gcs", static_cast<double>(r.run.minor_gcs), true);
  run.Add("full_gcs", static_cast<double>(r.run.full_gcs), true);
  run.Add("exec_ms", r.run.exec_ms, false);
  run.Add("gc_ms", r.run.gc_ms, false);
  run.spans = r.run.trace->Aggregate();
  rep.runs.push_back(run);

  std::string err;
  ASSERT_TRUE(Validate(rep, &err)) << err;
  RunReport back;
  ASSERT_TRUE(FromJson(ToJson(rep), &back, &err)) << err;
  EXPECT_TRUE(ReportsEqual(rep, back));
}

TEST(RunReportDiffTest, IdenticalReportsPass) {
  RunReport rep = SampleReport();
  EXPECT_TRUE(DiffReports(rep, rep, DiffOptions{}).ok());
}

TEST(RunReportDiffTest, ExactCounterMismatchFails) {
  RunReport base = SampleReport();
  RunReport cur = base;
  cur.runs[0].metrics[0].value += 1;  // minor_gcs 17 -> 18
  DiffOptions opt;
  auto d = DiffReports(base, cur, opt);
  ASSERT_FALSE(d.ok());
  EXPECT_NE(d.failures[0].find("minor_gcs"), std::string::npos);
}

TEST(RunReportDiffTest, TimeThresholdGatesRegressionsOnly) {
  RunReport base = SampleReport();
  DiffOptions opt;  // +15%, 1 ms floor

  RunReport worse = base;
  worse.runs[0].Find("exec_ms");
  for (auto& m : worse.runs[0].metrics) {
    if (m.name == "exec_ms") m.value *= 1.20;  // 42.1 -> 50.6: fails
  }
  EXPECT_FALSE(DiffReports(base, worse, opt).ok());

  RunReport mild = base;
  for (auto& m : mild.runs[0].metrics) {
    if (m.name == "exec_ms") m.value *= 1.10;  // within threshold
  }
  EXPECT_TRUE(DiffReports(base, mild, opt).ok());

  RunReport better = base;
  for (auto& m : better.runs[0].metrics) {
    if (m.name == "exec_ms") m.value *= 0.5;  // improvements always pass
  }
  EXPECT_TRUE(DiffReports(base, better, opt).ok());

  // The absolute floor suppresses sub-ms noise: +20% of 7.06 ms ≈ 1.4 ms
  // fails, but +20% of a 0.1 ms metric would not.
  RunReport tiny_base = base;
  RunReport tiny_cur = base;
  for (auto& m : tiny_base.runs[0].metrics) {
    if (m.name == "gc_ms") m.value = 0.1;
  }
  for (auto& m : tiny_cur.runs[0].metrics) {
    if (m.name == "gc_ms") m.value = 0.12;
  }
  EXPECT_TRUE(DiffReports(tiny_base, tiny_cur, opt).ok());
}

TEST(RunReportDiffTest, MissingRunOrMetricFailsExtrasPass) {
  RunReport base = SampleReport();

  RunReport missing_run = base;
  missing_run.runs.pop_back();
  EXPECT_FALSE(DiffReports(base, missing_run, DiffOptions{}).ok());

  RunReport missing_metric = base;
  missing_metric.runs[0].metrics.erase(
      missing_metric.runs[0].metrics.begin());
  EXPECT_FALSE(DiffReports(base, missing_metric, DiffOptions{}).ok());

  // Reports may grow: extra runs/metrics in `current` are fine.
  RunReport grown = base;
  ReportRun extra;
  extra.label = "WC/SparkSer";
  extra.Add("exec_ms", 1.0, false);
  grown.runs.push_back(extra);
  grown.runs[0].Add("new_metric", 3.0, true);
  EXPECT_TRUE(DiffReports(base, grown, DiffOptions{}).ok());
}

TEST(RunReportDiffTest, EpochCountersExactPausesThresholded) {
  RunReport base = SampleReport();

  // Epoch counters are deterministic: any drift fails.
  RunReport bad_windows = base;
  bad_windows.runs[0].epochs.windows += 1;
  auto d = DiffReports(base, bad_windows, DiffOptions{});
  ASSERT_FALSE(d.ok());
  EXPECT_NE(d.failures[0].find("windows"), std::string::npos);

  RunReport bad_bytes = base;
  bad_bytes.runs[0].epochs.reclaimed_bytes -= 1;
  EXPECT_FALSE(DiffReports(base, bad_bytes, DiffOptions{}).ok());

  // Pauses are wall times: gated by threshold + floor, regressions only.
  RunReport slow = base;
  slow.runs[0].epochs.pause_p99_ms = 5.0;  // 2.25 -> 5.0 fails
  EXPECT_FALSE(DiffReports(base, slow, DiffOptions{}).ok());

  RunReport mild = base;
  mild.runs[0].epochs.pause_p99_ms *= 1.05;  // within threshold/floor
  EXPECT_TRUE(DiffReports(base, mild, DiffOptions{}).ok());

  RunReport better = base;
  better.runs[0].epochs.pause_p99_ms *= 0.5;
  EXPECT_TRUE(DiffReports(base, better, DiffOptions{}).ok());

  // A baseline with an epoch plane requires one in `current`.
  RunReport stripped = base;
  stripped.runs[0].epochs = obs::EpochAgg{};
  EXPECT_FALSE(DiffReports(base, stripped, DiffOptions{}).ok());
  // The reverse (baseline batch, current streaming) is growth: allowed.
  EXPECT_TRUE(DiffReports(stripped, base, DiffOptions{}).ok());
}

TEST(RunReportDiffTest, SpanCountsExactTotalsThresholded) {
  RunReport base = SampleReport();

  RunReport bad_count = base;
  bad_count.runs[0].spans[0].count += 1;
  EXPECT_FALSE(DiffReports(base, bad_count, DiffOptions{}).ok());

  RunReport slow_spans = base;
  slow_spans.runs[0].spans[0].total_ms *= 1.5;
  EXPECT_FALSE(DiffReports(base, slow_spans, DiffOptions{}).ok());

  RunReport mild_spans = base;
  mild_spans.runs[0].spans[0].total_ms *= 1.05;
  EXPECT_TRUE(DiffReports(base, mild_spans, DiffOptions{}).ok());
}

}  // namespace
}  // namespace deca
