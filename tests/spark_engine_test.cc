#include <gtest/gtest.h>

#include <map>
#include <thread>
#include <utility>
#include <vector>

#include "common/random.h"
#include "spark/context.h"
#include "workloads/lr.h"
#include "workloads/wordcount.h"

namespace deca::spark {
namespace {

/// Test record: class Rec { long id; double val; }.
struct RecModel {
  explicit RecModel(jvm::ClassRegistry* registry) {
    class_id = registry->RegisterClass(
        "Rec", {{"id", jvm::FieldKind::kLong}, {"val", jvm::FieldKind::kDouble}});
    ops.managed_bytes = [](jvm::Heap*, jvm::ObjRef) -> uint64_t {
      return jvm::kHeaderBytes + 16;
    };
    ops.serialize = [](jvm::Heap* h, jvm::ObjRef r, ByteWriter* w) {
      w->WriteVarI64(h->GetField<int64_t>(r, 0));
      w->Write<double>(h->GetField<double>(r, 8));
    };
    uint32_t cid = class_id;
    ops.deserialize = [cid](jvm::Heap* h, ByteReader* r) {
      int64_t id = r->ReadVarI64();
      double val = r->Read<double>();
      jvm::ObjRef rec = h->AllocateInstance(cid);
      h->SetField<int64_t>(rec, 0, id);
      h->SetField<double>(rec, 8, val);
      return rec;
    };
    ops.deca_bytes = [](jvm::Heap*, jvm::ObjRef) -> uint32_t { return 16; };
    ops.decompose = [](jvm::Heap* h, jvm::ObjRef r, uint8_t* out) {
      StoreRaw<int64_t>(out, h->GetField<int64_t>(r, 0));
      StoreRaw<double>(out + 8, h->GetField<double>(r, 8));
    };
    ops.reconstruct = [cid](jvm::Heap* h, const uint8_t* in) {
      jvm::ObjRef rec = h->AllocateInstance(cid);
      h->SetField<int64_t>(rec, 0, LoadRaw<int64_t>(in));
      h->SetField<double>(rec, 8, LoadRaw<double>(in + 8));
      return rec;
    };
  }

  uint32_t class_id;
  RecordOps ops;
};

/// Shuffle ops over (boxed long key, boxed long count) with sum combining.
struct SumShuffleModel {
  explicit SumShuffleModel(jvm::ClassRegistry* registry) {
    uint32_t key_cls = registry->boxed_long_class();
    ops.key_hash = [](jvm::Heap* h, jvm::ObjRef k) -> uint64_t {
      uint64_t v = static_cast<uint64_t>(h->GetField<int64_t>(k, 0));
      return v * 0x9e3779b97f4a7c15ULL;
    };
    ops.key_equals = [](jvm::Heap* h, jvm::ObjRef a, jvm::ObjRef b) {
      return h->GetField<int64_t>(a, 0) == h->GetField<int64_t>(b, 0);
    };
    ops.combine = [](jvm::Heap* h, jvm::ObjRef agg, jvm::ObjRef v) {
      int64_t sum = h->GetField<int64_t>(agg, 0) + h->GetField<int64_t>(v, 0);
      jvm::ObjRef fresh = h->AllocateInstance(h->registry()->boxed_long_class());
      h->SetField<int64_t>(fresh, 0, sum);
      return fresh;
    };
    ops.entry_bytes = [](jvm::Heap*, jvm::ObjRef, jvm::ObjRef) -> uint64_t {
      return 2 * (jvm::kHeaderBytes + 8) + 8;
    };
    ops.serialize_key = [](jvm::Heap* h, jvm::ObjRef k, ByteWriter* w) {
      w->WriteVarI64(h->GetField<int64_t>(k, 0));
    };
    ops.serialize_value = [](jvm::Heap* h, jvm::ObjRef v, ByteWriter* w) {
      w->WriteVarI64(h->GetField<int64_t>(v, 0));
    };
    ops.deserialize_key = [key_cls](jvm::Heap* h, ByteReader* r) {
      jvm::ObjRef k = h->AllocateInstance(key_cls);
      h->SetField<int64_t>(k, 0, r->ReadVarI64());
      return k;
    };
    ops.deserialize_value = ops.deserialize_key;
    // Deca mode: 8-byte key, 8-byte value, in-place sum.
    ops.deca_key_bytes = 8;
    ops.deca_value_bytes = 8;
    ops.deca_key_hash = [](const uint8_t* k) -> uint64_t {
      return LoadRaw<uint64_t>(k) * 0x9e3779b97f4a7c15ULL;
    };
    ops.deca_combine = [](uint8_t* agg, const uint8_t* v) {
      StoreRaw<int64_t>(agg, LoadRaw<int64_t>(agg) + LoadRaw<int64_t>(v));
    };
  }

  ShuffleOps ops;
};

SparkConfig SmallConfig() {
  SparkConfig cfg;
  cfg.num_executors = 2;
  cfg.partitions_per_executor = 2;
  cfg.heap.heap_bytes = 16u << 20;
  cfg.spill_dir = "/tmp/deca_test_spill";
  return cfg;
}

TEST(SparkContextTest, StageRunsOneTaskPerPartition) {
  SparkContext ctx(SmallConfig());
  int runs = 0;
  std::vector<int> partitions;
  ctx.RunStage("count", [&](TaskContext& tc) {
    ++runs;
    partitions.push_back(tc.partition());
  });
  EXPECT_EQ(runs, 4);
  EXPECT_EQ(partitions, (std::vector<int>{0, 1, 2, 3}));
  EXPECT_GT(ctx.metrics().wall_ms, 0.0);
}

TEST(SparkContextTest, TaskGcAttributed) {
  SparkContext ctx(SmallConfig());
  ctx.RunStage("alloc", [&](TaskContext& tc) {
    jvm::Heap* h = tc.heap();
    for (int i = 0; i < 200000; ++i) {
      h->AllocateInstance(h->registry()->boxed_long_class());
    }
  });
  EXPECT_GT(ctx.metrics().tasks.gc_ms, 0.0);
  EXPECT_GT(ctx.TotalMinorGcs(), 0u);
}

class CacheTest : public ::testing::TestWithParam<StorageLevel> {};

TEST_P(CacheTest, PutGetRoundTrip) {
  SparkConfig cfg = SmallConfig();
  cfg.cache_level = GetParam();
  SparkContext ctx(cfg);
  RecModel model(ctx.registry());
  ctx.RegisterCachedRdd(1, &model.ops);

  const int n = 100;
  ctx.RunStage("build", [&](TaskContext& tc) {
    jvm::Heap* h = tc.heap();
    if (GetParam() == StorageLevel::kDecaPages) {
      auto pages = std::make_shared<core::PageGroup>(h, 4096);
      for (int i = 0; i < n; ++i) {
        core::SegPtr s = pages->Append(16);
        uint8_t* p = pages->Resolve(s);
        StoreRaw<int64_t>(p, tc.partition() * 1000 + i);
        StoreRaw<double>(p + 8, i * 0.5);
      }
      tc.cache()->PutPages({1, tc.partition()}, pages, n, &tc.metrics());
      return;
    }
    jvm::HandleScope scope(h);
    jvm::Handle arr = scope.Make(
        h->AllocateArray(h->registry()->ref_array_class(), n));
    for (int i = 0; i < n; ++i) {
      jvm::HandleScope inner(h);
      jvm::ObjRef rec = h->AllocateInstance(model.class_id);
      h->SetField<int64_t>(rec, 0, tc.partition() * 1000 + i);
      h->SetField<double>(rec, 8, i * 0.5);
      h->SetRefElem(arr.get(), static_cast<uint32_t>(i), rec);
    }
    tc.cache()->PutObjects({1, tc.partition()}, arr.get(), n, &tc.metrics());
  });

  ctx.RunStage("read", [&](TaskContext& tc) {
    jvm::Heap* h = tc.heap();
    LoadedBlock block = tc.cache()->Get({1, tc.partition()}, &tc.metrics());
    ASSERT_TRUE(block.valid());
    ASSERT_EQ(block.count, static_cast<uint32_t>(n));
    switch (block.level) {
      case StorageLevel::kMemoryObjects: {
        for (int i = 0; i < n; ++i) {
          jvm::ObjRef rec =
              h->GetRefElem(block.object_array, static_cast<uint32_t>(i));
          EXPECT_EQ(h->GetField<int64_t>(rec, 0), tc.partition() * 1000 + i);
          EXPECT_EQ(h->GetField<double>(rec, 8), i * 0.5);
        }
        break;
      }
      case StorageLevel::kMemorySerialized: {
        ByteReader r(h->ArrayData(block.serialized),
                     h->ArrayLength(block.serialized));
        jvm::HandleScope scope(h);
        for (int i = 0; i < n; ++i) {
          jvm::ObjRef rec = model.ops.deserialize(h, &r);
          EXPECT_EQ(h->GetField<int64_t>(rec, 0), tc.partition() * 1000 + i);
          (void)scope;
        }
        break;
      }
      case StorageLevel::kDecaPages: {
        core::PageScanner scan(block.pages.get());
        int i = 0;
        while (!scan.AtEnd()) {
          uint8_t* p = scan.Cur();
          EXPECT_EQ(LoadRaw<int64_t>(p), tc.partition() * 1000 + i);
          EXPECT_EQ(LoadRaw<double>(p + 8), i * 0.5);
          scan.Advance(16);
          ++i;
        }
        EXPECT_EQ(i, n);
        break;
      }
    }
  });
}

INSTANTIATE_TEST_SUITE_P(
    AllLevels, CacheTest,
    ::testing::Values(StorageLevel::kMemoryObjects,
                      StorageLevel::kMemorySerialized,
                      StorageLevel::kDecaPages),
    [](const ::testing::TestParamInfo<StorageLevel>& info) {
      return std::string(StorageLevelName(info.param));
    });

TEST(CacheSwapTest, EvictsToDiskAndStreamsBack) {
  SparkConfig cfg = SmallConfig();
  cfg.num_executors = 1;
  cfg.partitions_per_executor = 1;
  cfg.heap.heap_bytes = 16u << 20;
  cfg.memory_fraction = 0.02;  // tiny storage budget forces eviction
  cfg.storage_fraction = 0.5;
  SparkContext ctx(cfg);
  RecModel model(ctx.registry());
  ctx.RegisterCachedRdd(7, &model.ops);
  const int n = 5000;  // ~160KB of objects > ~160KB budget
  ctx.RunStage("build", [&](TaskContext& tc) {
    jvm::Heap* h = tc.heap();
    for (int b = 0; b < 4; ++b) {
      jvm::HandleScope scope(h);
      jvm::Handle arr = scope.Make(
          h->AllocateArray(h->registry()->ref_array_class(), n));
      for (int i = 0; i < n; ++i) {
        jvm::HandleScope inner(h);
        jvm::ObjRef rec = h->AllocateInstance(model.class_id);
        h->SetField<int64_t>(rec, 0, b * 100000 + i);
        h->SetRefElem(arr.get(), static_cast<uint32_t>(i), rec);
      }
      tc.cache()->PutObjects({7, b}, arr.get(), n, &tc.metrics());
    }
  });
  Executor* e = ctx.executor(0);
  EXPECT_GT(e->cache()->swap_out_count(), 0u);
  EXPECT_GT(e->cache()->disk_bytes(), 0u);
  // All four blocks readable, including swapped ones.
  ctx.RunStage("read", [&](TaskContext& tc) {
    jvm::Heap* h = tc.heap();
    for (int b = 0; b < 4; ++b) {
      jvm::HandleScope scope(h);
      LoadedBlock block = tc.cache()->Get({7, b}, &tc.metrics());
      ASSERT_TRUE(block.valid());
      jvm::Handle arr = scope.Make(block.object_array);
      for (int i = 0; i < n; i += 977) {
        jvm::ObjRef rec =
            h->GetRefElem(arr.get(), static_cast<uint32_t>(i));
        EXPECT_EQ(h->GetField<int64_t>(rec, 0), b * 100000 + i);
      }
    }
  });
  EXPECT_GT(ctx.metrics().tasks.spill_ms, 0.0);
}

TEST(ShuffleServiceTest, ChunkRouting) {
  LocalShuffleService svc;
  int id = svc.RegisterShuffle(3);
  svc.PutChunk(id, 0, /*map_partition=*/0, {1, 2, 3});
  svc.PutChunk(id, 2, /*map_partition=*/0, {4});
  svc.PutChunk(id, 0, /*map_partition=*/1, {5, 6});
  EXPECT_EQ(svc.GetChunks(id, 0).size(), 2u);
  EXPECT_EQ(svc.GetChunks(id, 1).size(), 0u);
  EXPECT_EQ(svc.GetChunks(id, 2).size(), 1u);
  EXPECT_EQ(svc.total_bytes(id), 6u);
  svc.Release(id);
  EXPECT_EQ(svc.total_bytes(id), 0u);
}

// Reduce-side chunk order must be the map partition order regardless of
// the order map tasks deposited them (the parallel runtime's determinism
// contract).
TEST(ShuffleServiceTest, ChunksSortedByMapPartition) {
  LocalShuffleService svc;
  int id = svc.RegisterShuffle(1);
  svc.PutChunk(id, 0, /*map_partition=*/3, {30});
  svc.PutChunk(id, 0, /*map_partition=*/0, {0});
  svc.PutChunk(id, 0, /*map_partition=*/2, {20});
  svc.PutChunk(id, 0, /*map_partition=*/1, {10});
  const auto& chunks = svc.GetChunks(id, 0);
  ASSERT_EQ(chunks.size(), 4u);
  for (size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(chunks[i][0], static_cast<uint8_t>(10 * i));
  }
}

TEST(ShuffleServiceTest, ConcurrentPutChunkKeepsDeterministicOrder) {
  LocalShuffleService svc;
  const int kMappers = 32;
  int id = svc.RegisterShuffle(2);
  std::vector<std::thread> mappers;
  for (int m = 0; m < kMappers; ++m) {
    mappers.emplace_back([&svc, id, m] {
      for (int r = 0; r < 2; ++r) {
        svc.PutChunk(id, r, m, {static_cast<uint8_t>(m)});
      }
    });
  }
  for (auto& t : mappers) t.join();
  for (int r = 0; r < 2; ++r) {
    const auto& chunks = svc.GetChunks(id, r);
    ASSERT_EQ(chunks.size(), static_cast<size_t>(kMappers));
    for (int m = 0; m < kMappers; ++m) {
      EXPECT_EQ(chunks[static_cast<size_t>(m)][0], static_cast<uint8_t>(m));
    }
  }
}

TEST(ObjectHashBufferTest, EagerCombineAggregates) {
  SparkContext ctx(SmallConfig());
  SumShuffleModel model(ctx.registry());
  jvm::Heap* h = ctx.executor(0)->heap();
  ObjectHashShuffleBuffer buf(h, &model.ops);
  Rng rng(5);
  std::map<int64_t, int64_t> expected;
  for (int i = 0; i < 5000; ++i) {
    int64_t key = static_cast<int64_t>(rng.NextBounded(100));
    jvm::HandleScope scope(h);
    jvm::Handle k = scope.Make(
        h->AllocateInstance(h->registry()->boxed_long_class()));
    h->SetField<int64_t>(k.get(), 0, key);
    jvm::Handle v = scope.Make(
        h->AllocateInstance(h->registry()->boxed_long_class()));
    h->SetField<int64_t>(v.get(), 0, 1);
    buf.Insert(k.get(), v.get());
    expected[key] += 1;
  }
  EXPECT_EQ(buf.size(), 100u);
  std::map<int64_t, int64_t> actual;
  buf.ForEach([&](jvm::ObjRef k, jvm::ObjRef v) {
    actual[h->GetField<int64_t>(k, 0)] = h->GetField<int64_t>(v, 0);
  });
  EXPECT_EQ(actual, expected);
}

TEST(DecaHashBufferTest, InPlaceCombineMatchesObjectMode) {
  SparkContext ctx(SmallConfig());
  SumShuffleModel model(ctx.registry());
  jvm::Heap* h = ctx.executor(0)->heap();
  DecaHashShuffleBuffer buf(h, &model.ops, 4096);
  Rng rng(5);
  std::map<int64_t, int64_t> expected;
  uint64_t allocs_before = h->stats().objects_allocated;
  for (int i = 0; i < 5000; ++i) {
    int64_t key = static_cast<int64_t>(rng.NextBounded(100));
    int64_t one = 1;
    buf.Insert(reinterpret_cast<const uint8_t*>(&key),
               reinterpret_cast<const uint8_t*>(&one));
    expected[key] += 1;
  }
  EXPECT_EQ(buf.size(), 100u);
  // Only page allocations: far fewer objects than the 10000 boxed values
  // object mode would create.
  EXPECT_LT(h->stats().objects_allocated - allocs_before, 10u);
  std::map<int64_t, int64_t> actual;
  buf.ForEach([&](const uint8_t* entry) {
    actual[LoadRaw<int64_t>(entry)] = LoadRaw<int64_t>(entry + 8);
  });
  EXPECT_EQ(actual, expected);
}

TEST(GroupByBufferTest, GroupsAllValues) {
  SparkContext ctx(SmallConfig());
  SumShuffleModel model(ctx.registry());
  jvm::Heap* h = ctx.executor(0)->heap();
  ObjectGroupByBuffer buf(h, &model.ops);
  for (int i = 0; i < 300; ++i) {
    jvm::HandleScope scope(h);
    jvm::Handle k = scope.Make(
        h->AllocateInstance(h->registry()->boxed_long_class()));
    h->SetField<int64_t>(k.get(), 0, i % 10);
    jvm::Handle v = scope.Make(
        h->AllocateInstance(h->registry()->boxed_long_class()));
    h->SetField<int64_t>(v.get(), 0, i);
    buf.Insert(k.get(), v.get());
  }
  EXPECT_EQ(buf.size(), 10u);
  std::map<int64_t, int64_t> group_sizes;
  buf.ForEach([&](jvm::ObjRef k, jvm::ObjRef values, uint32_t count) {
    group_sizes[h->GetField<int64_t>(k, 0)] = count;
    // Values are intact managed objects.
    for (uint32_t j = 0; j < count; ++j) {
      jvm::ObjRef v = h->GetRefElem(values, j);
      EXPECT_EQ(h->GetField<int64_t>(v, 0) % 10, h->GetField<int64_t>(k, 0));
    }
  });
  for (const auto& [k, c] : group_sizes) EXPECT_EQ(c, 30) << "key " << k;
}

TEST(DecaSortBufferTest, SortsByKey) {
  SparkContext ctx(SmallConfig());
  jvm::Heap* h = ctx.executor(0)->heap();
  DecaSortShuffleBuffer buf(h, 4096);
  Rng rng(11);
  std::vector<int64_t> keys;
  for (int i = 0; i < 500; ++i) {
    int64_t k = static_cast<int64_t>(rng.NextBounded(100000));
    keys.push_back(k);
    uint8_t rec[8];
    StoreRaw<int64_t>(rec, k);
    buf.Append(rec, 8);
  }
  std::sort(keys.begin(), keys.end());
  std::vector<int64_t> sorted;
  buf.SortAndVisit(
      [](const uint8_t* a, const uint8_t* b) {
        return LoadRaw<int64_t>(a) < LoadRaw<int64_t>(b);
      },
      [&](const uint8_t* rec, uint32_t) {
        sorted.push_back(LoadRaw<int64_t>(rec));
      });
  EXPECT_EQ(sorted, keys);
}

/// End-to-end two-stage word count through the shuffle service. Factored
/// into a helper so the parallel-equivalence tests below can run the same
/// job with different worker-thread counts and compare outcomes bitwise.
struct MiniWcOutcome {
  std::map<int64_t, int64_t> totals;
  // (minor, full) GC counts per executor heap.
  std::vector<std::pair<uint64_t, uint64_t>> gc_per_executor;
};

MiniWcOutcome RunMiniWordCount(bool deca, int worker_threads) {
  SparkConfig cfg = SmallConfig();
  cfg.deca_shuffle = deca;
  cfg.num_worker_threads = worker_threads;
  SparkContext ctx(cfg);
  SumShuffleModel model(ctx.registry());
  const int reducers = ctx.num_partitions();
  int shuffle_id = ctx.shuffle()->RegisterShuffle(reducers);
  const int kWordsPerTask = 20000;
  const int kDistinct = 500;

  // Map stage: count words with eager combining, then write per-reducer
  // chunks of (key, count) pairs.
  ctx.RunStage("map", [&](TaskContext& tc) {
    jvm::Heap* h = tc.heap();
    Rng rng(100 + static_cast<uint64_t>(tc.partition()));
    std::vector<ByteWriter> outs(static_cast<size_t>(reducers));
    if (deca) {
      DecaHashShuffleBuffer buf(h, &model.ops, cfg.deca_page_bytes);
      for (int i = 0; i < kWordsPerTask; ++i) {
        int64_t word = static_cast<int64_t>(rng.NextBounded(kDistinct));
        int64_t one = 1;
        buf.Insert(reinterpret_cast<const uint8_t*>(&word),
                   reinterpret_cast<const uint8_t*>(&one));
      }
      buf.ForEach([&](const uint8_t* entry) {
        uint64_t hash = model.ops.deca_key_hash(entry);
        ByteWriter& w = outs[hash % static_cast<uint64_t>(reducers)];
        // Raw decomposed bytes: no serialization.
        w.WriteBytes(entry, 16);
      });
    } else {
      ObjectHashShuffleBuffer buf(h, &model.ops);
      for (int i = 0; i < kWordsPerTask; ++i) {
        int64_t word = static_cast<int64_t>(rng.NextBounded(kDistinct));
        jvm::HandleScope scope(h);
        jvm::Handle k = scope.Make(
            h->AllocateInstance(h->registry()->boxed_long_class()));
        h->SetField<int64_t>(k.get(), 0, word);
        jvm::Handle v = scope.Make(
            h->AllocateInstance(h->registry()->boxed_long_class()));
        h->SetField<int64_t>(v.get(), 0, 1);
        buf.Insert(k.get(), v.get());
      }
      buf.ForEach([&](jvm::ObjRef k, jvm::ObjRef v) {
        uint64_t hash = model.ops.key_hash(h, k);
        ByteWriter& w = outs[hash % static_cast<uint64_t>(reducers)];
        model.ops.serialize_key(h, k, &w);
        model.ops.serialize_value(h, v, &w);
      });
    }
    for (int r = 0; r < reducers; ++r) {
      ctx.shuffle()->PutChunk(shuffle_id, r, tc.partition(),
                              outs[static_cast<size_t>(r)].TakeBuffer());
    }
  });

  // Reduce stage: merge chunks into per-partition maps (disjoint slots;
  // merged in partition order after the barrier).
  std::vector<std::map<int64_t, int64_t>> part_totals(
      static_cast<size_t>(reducers));
  ctx.RunStage("reduce", [&](TaskContext& tc) {
    jvm::Heap* h = tc.heap();
    std::map<int64_t, int64_t>& totals =
        part_totals[static_cast<size_t>(tc.partition())];
    const auto& chunks =
        ctx.shuffle()->GetChunks(shuffle_id, tc.partition());
    if (deca) {
      DecaHashShuffleBuffer buf(h, &model.ops, cfg.deca_page_bytes);
      for (const auto& chunk : chunks) {
        for (size_t off = 0; off < chunk.size(); off += 16) {
          buf.Insert(chunk.data() + off, chunk.data() + off + 8);
        }
      }
      buf.ForEach([&](const uint8_t* entry) {
        totals[LoadRaw<int64_t>(entry)] += LoadRaw<int64_t>(entry + 8);
      });
    } else {
      ObjectHashShuffleBuffer buf(h, &model.ops);
      for (const auto& chunk : chunks) {
        ByteReader r(chunk.data(), chunk.size());
        while (!r.AtEnd()) {
          jvm::HandleScope scope(h);
          jvm::Handle k = scope.Make(model.ops.deserialize_key(h, &r));
          jvm::Handle v = scope.Make(model.ops.deserialize_value(h, &r));
          buf.Insert(k.get(), v.get());
        }
      }
      buf.ForEach([&](jvm::ObjRef k, jvm::ObjRef v) {
        totals[h->GetField<int64_t>(k, 0)] += h->GetField<int64_t>(v, 0);
      });
    }
  });

  MiniWcOutcome outcome;
  for (const auto& part : part_totals) {
    for (const auto& [k, c] : part) outcome.totals[k] += c;
  }
  for (int e = 0; e < ctx.num_executors(); ++e) {
    const auto& stats = ctx.executor(e)->heap()->stats();
    outcome.gc_per_executor.emplace_back(stats.minor_count, stats.full_count);
  }
  return outcome;
}

class MiniWordCountTest : public ::testing::TestWithParam<bool> {};

TEST_P(MiniWordCountTest, TwoStageAggregation) {
  const int kWordsPerTask = 20000;
  const int kDistinct = 500;
  MiniWcOutcome o = RunMiniWordCount(GetParam(), /*worker_threads=*/0);
  // Every word counted exactly once across reducers.
  int64_t total = 0;
  for (const auto& [k, c] : o.totals) total += c;
  EXPECT_EQ(total, 4ll * kWordsPerTask);
  EXPECT_EQ(o.totals.size(), static_cast<size_t>(kDistinct));
}

// The tentpole guarantee: running the same job on the parallel runtime
// yields bit-identical results AND the same per-executor GC history.
TEST_P(MiniWordCountTest, ParallelMatchesSequential) {
  MiniWcOutcome seq = RunMiniWordCount(GetParam(), /*worker_threads=*/0);
  for (int threads : {1, 2, 4}) {
    MiniWcOutcome par = RunMiniWordCount(GetParam(), threads);
    EXPECT_EQ(par.totals, seq.totals) << threads << " threads";
    EXPECT_EQ(par.gc_per_executor, seq.gc_per_executor)
        << threads << " threads";
  }
}

INSTANTIATE_TEST_SUITE_P(Modes, MiniWordCountTest, ::testing::Bool(),
                         [](const ::testing::TestParamInfo<bool>& info) {
                           return info.param ? "Deca" : "Spark";
                         });

// Full workloads across the two modes: outputs (including float results)
// and GC counts must match exactly.
TEST(ParallelWorkloadEquivalenceTest, WordCount) {
  workloads::WordCountParams p;
  p.total_words = 120000;
  p.distinct_keys = 3000;
  p.spark = SmallConfig();
  p.spark.num_executors = 4;
  workloads::WordCountResult seq = workloads::RunWordCount(p);
  p.spark.num_worker_threads = 4;
  workloads::WordCountResult par = workloads::RunWordCount(p);
  EXPECT_EQ(par.total_count, seq.total_count);
  EXPECT_EQ(par.distinct_found, seq.distinct_found);
  EXPECT_EQ(par.shuffle_bytes, seq.shuffle_bytes);
  EXPECT_EQ(par.run.minor_gcs, seq.run.minor_gcs);
  EXPECT_EQ(par.run.full_gcs, seq.run.full_gcs);
}

TEST(ParallelWorkloadEquivalenceTest, LogisticRegression) {
  workloads::MlParams p;
  p.num_points = 40000;
  p.iterations = 3;
  p.spark = SmallConfig();
  p.spark.num_executors = 4;
  workloads::LrResult seq = workloads::RunLogisticRegression(p);
  p.spark.num_worker_threads = 4;
  workloads::LrResult par = workloads::RunLogisticRegression(p);
  ASSERT_EQ(par.weights.size(), seq.weights.size());
  for (size_t j = 0; j < seq.weights.size(); ++j) {
    // Bitwise equality: the per-partition gradient fold fixes the float
    // accumulation order.
    EXPECT_EQ(par.weights[j], seq.weights[j]) << "weight " << j;
  }
  EXPECT_EQ(par.run.minor_gcs, seq.run.minor_gcs);
  EXPECT_EQ(par.run.full_gcs, seq.run.full_gcs);
}

}  // namespace
}  // namespace deca::spark
