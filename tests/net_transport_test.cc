// src/net unit tests: message framing, the two chunk wire codecs, the
// loopback transport's ordering/accounting, the TCP transport, and the
// BlockServer side of the shuffle wire protocol.

#include <gtest/gtest.h>

#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <thread>
#include <vector>

#include "net/block_server.h"
#include "net/control.h"
#include "net/loopback_transport.h"
#include "net/socket_io.h"
#include "net/tcp_transport.h"
#include "net/wire.h"

namespace deca::net {
namespace {

std::vector<uint8_t> Payload(size_t n, uint8_t seed = 1) {
  std::vector<uint8_t> p(n);
  for (size_t i = 0; i < n; ++i) {
    p[i] = static_cast<uint8_t>(seed + i * 31);
  }
  return p;
}

// -- framing ------------------------------------------------------------------

TEST(WireFraming, RoundTrip) {
  ByteWriter body;
  body.Write<uint8_t>(42);
  body.WriteVarU64(123456);
  body.WriteString("hello");
  std::vector<uint8_t> wire = FrameMessage(body);

  ByteReader r(nullptr, 0);
  ASSERT_TRUE(UnframeMessage(wire, &r));
  EXPECT_EQ(r.Read<uint8_t>(), 42);
  EXPECT_EQ(r.ReadVarU64(), 123456u);
  EXPECT_EQ(r.ReadString(), "hello");
  EXPECT_TRUE(r.AtEnd());
}

TEST(WireFraming, RejectsTruncatedAndOversized) {
  ByteWriter body;
  body.WriteVarU64(7);
  std::vector<uint8_t> wire = FrameMessage(body);
  ByteReader r(nullptr, 0);

  std::vector<uint8_t> truncated(wire.begin(), wire.end() - 1);
  EXPECT_FALSE(UnframeMessage(truncated, &r));

  std::vector<uint8_t> padded = wire;
  padded.push_back(0);
  EXPECT_FALSE(UnframeMessage(padded, &r));

  EXPECT_FALSE(UnframeMessage({}, &r));
}

// -- chunk codecs -------------------------------------------------------------

TEST(WireCodecs, PageRoundTripNoRecordWork) {
  std::vector<uint8_t> payload = Payload(1000);
  NetStats stats;
  std::vector<uint8_t> frame =
      EncodeFrame(WireCodec::kPage, payload, ChunkMeta{}, &stats);
  std::vector<uint8_t> out;
  ASSERT_TRUE(DecodeFrame(frame, &out, &stats));
  EXPECT_EQ(out, payload);
  // The serialization-elimination claim: zero records visited either way.
  EXPECT_EQ(stats.records_encoded.load(), 0u);
  EXPECT_EQ(stats.records_decoded.load(), 0u);
}

TEST(WireCodecs, RecordFixedStrideRoundTrip) {
  std::vector<uint8_t> payload = Payload(160);
  ChunkMeta meta;
  meta.fixed_record_bytes = 16;
  NetStats stats;
  std::vector<uint8_t> frame =
      EncodeFrame(WireCodec::kRecord, payload, meta, &stats);
  std::vector<uint8_t> out;
  ASSERT_TRUE(DecodeFrame(frame, &out, &stats));
  EXPECT_EQ(out, payload);
  EXPECT_EQ(stats.records_encoded.load(), 10u);
  EXPECT_EQ(stats.records_decoded.load(), 10u);
}

TEST(WireCodecs, RecordExplicitLensRoundTrip) {
  std::vector<uint8_t> payload = Payload(10);
  ChunkMeta meta;
  meta.record_lens = {3, 2, 5};
  NetStats stats;
  std::vector<uint8_t> frame =
      EncodeFrame(WireCodec::kRecord, payload, meta, &stats);
  std::vector<uint8_t> out;
  ASSERT_TRUE(DecodeFrame(frame, &out, &stats));
  EXPECT_EQ(out, payload);
  EXPECT_EQ(stats.records_encoded.load(), 3u);
}

TEST(WireCodecs, RecordFallbackWholeChunk) {
  std::vector<uint8_t> payload = Payload(77);
  NetStats stats;
  std::vector<uint8_t> frame =
      EncodeFrame(WireCodec::kRecord, payload, ChunkMeta{}, &stats);
  std::vector<uint8_t> out;
  ASSERT_TRUE(DecodeFrame(frame, &out, &stats));
  EXPECT_EQ(out, payload);
  EXPECT_EQ(stats.records_encoded.load(), 1u);
}

TEST(WireCodecs, PageFrameSmallerThanRecordFrame) {
  std::vector<uint8_t> payload = Payload(4096);
  ChunkMeta meta;
  meta.fixed_record_bytes = 16;
  std::vector<uint8_t> page =
      EncodeFrame(WireCodec::kPage, payload, meta, nullptr);
  std::vector<uint8_t> record =
      EncodeFrame(WireCodec::kRecord, payload, meta, nullptr);
  // Per-record length varints cost wire bytes the page codec never pays.
  EXPECT_LT(page.size(), record.size());
}

TEST(WireCodecs, DecodeRejectsMalformed) {
  std::vector<uint8_t> out;
  EXPECT_FALSE(DecodeFrame({}, &out, nullptr));
  EXPECT_FALSE(DecodeFrame({/*codec=*/99, 0}, &out, nullptr));
  // Page frame whose declared length disagrees with the buffer.
  ByteWriter w;
  w.Write<uint8_t>(static_cast<uint8_t>(WireCodec::kPage));
  w.WriteVarU64(100);
  w.WriteBytes(Payload(10).data(), 10);
  std::vector<uint8_t> bad(w.data(), w.data() + w.size());
  EXPECT_FALSE(DecodeFrame(bad, &out, nullptr));
}

// -- loopback transport -------------------------------------------------------

std::vector<uint8_t> EchoHandler(const std::vector<uint8_t>& request) {
  return request;
}

TEST(LoopbackTransport, EchoAndByteAccounting) {
  NetStats stats;
  LoopbackTransport t(2, LoopbackOptions{}, &stats);
  t.Bind(0, EchoHandler);
  t.Bind(1, EchoHandler);
  ByteWriter body;
  body.WriteString("ping");
  std::vector<uint8_t> wire = FrameMessage(body);
  std::vector<uint8_t> resp = t.Call(0, 1, wire);
  EXPECT_EQ(resp, wire);
  EXPECT_EQ(stats.messages.load(), 1u);
  EXPECT_EQ(stats.wire_bytes.load(), 2 * wire.size());
  EXPECT_EQ(stats.virtual_wire_us.load(), 0u);
}

TEST(LoopbackTransport, VirtualLatencyAndBandwidth) {
  NetStats stats;
  LoopbackOptions opts;
  opts.latency_us = 100;
  opts.bandwidth_mbps = 8;  // 1 byte per microsecond
  LoopbackTransport t(1, opts, &stats);
  t.Bind(0, EchoHandler);
  std::vector<uint8_t> msg(500, 7);
  t.Call(0, 0, msg);
  // 100us latency + (500 + 500) bytes * 8 bits / 8 mbps = 1000us.
  EXPECT_EQ(stats.virtual_wire_us.load(), 1100u);
}

TEST(LoopbackTransport, ConcurrentCallsAreSerialized) {
  NetStats stats;
  LoopbackTransport t(2, LoopbackOptions{}, &stats);
  t.Bind(0, EchoHandler);
  t.Bind(1, EchoHandler);
  constexpr int kCalls = 200;
  std::vector<std::thread> threads;
  for (int i = 0; i < 4; ++i) {
    threads.emplace_back([&t, i] {
      std::vector<uint8_t> msg(32, static_cast<uint8_t>(i));
      for (int c = 0; c < kCalls; ++c) {
        std::vector<uint8_t> resp = t.Call(i % 2, (i + 1) % 2, msg);
        ASSERT_EQ(resp, msg);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(stats.messages.load(), 4u * kCalls);
  // Distinct links may overlap (that is fine); the test's real assertion
  // is that every call returned its own response under contention.
}

// -- TCP transport ------------------------------------------------------------

TEST(TcpTransport, EchoOverRealSockets) {
  NetStats stats;
  TcpTransport t(2, &stats);
  t.Bind(0, EchoHandler);
  t.Bind(1, EchoHandler);
  ByteWriter body;
  body.WriteString("over tcp");
  std::vector<uint8_t> wire = FrameMessage(body);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(t.Call(0, 1, wire), wire);
    EXPECT_EQ(t.Call(1, 0, wire), wire);
  }
  EXPECT_EQ(stats.messages.load(), 20u);
  EXPECT_EQ(stats.wire_bytes.load(), 40 * wire.size());
}

TEST(TcpTransport, LargeMessage) {
  TcpTransport t(1, nullptr);
  t.Bind(0, EchoHandler);
  ByteWriter body;
  std::vector<uint8_t> blob = Payload(1 << 20);
  body.WriteBytes(blob.data(), blob.size());
  std::vector<uint8_t> wire = FrameMessage(body);
  EXPECT_EQ(t.Call(0, 0, wire), wire);
}

// -- block server -------------------------------------------------------------

std::vector<uint8_t> IndexRequest(int shuffle, int reducer) {
  ByteWriter w;
  w.Write<uint8_t>(static_cast<uint8_t>(MsgType::kIndexRequest));
  w.WriteVarU64(static_cast<uint64_t>(shuffle));
  w.WriteVarU64(static_cast<uint64_t>(reducer));
  return FrameMessage(w);
}

std::vector<uint8_t> FetchRequest(int shuffle, int reducer, int mapper,
                                  uint64_t offset, uint64_t max_bytes) {
  ByteWriter w;
  w.Write<uint8_t>(static_cast<uint8_t>(MsgType::kFetchRequest));
  w.WriteVarU64(static_cast<uint64_t>(shuffle));
  w.WriteVarU64(static_cast<uint64_t>(reducer));
  w.WriteVarU64(static_cast<uint64_t>(mapper));
  w.WriteVarU64(offset);
  w.WriteVarU64(max_bytes);
  return FrameMessage(w);
}

TEST(BlockServer, IndexSortedByMapperAndSlicedFetch) {
  BlockServer server(nullptr);
  // Registered out of order: the index must come back mapper-sorted.
  server.Register(0, 0, 3, Payload(300, 3), 300);
  server.Register(0, 0, 1, Payload(100, 1), 100);
  server.Register(0, 1, 2, Payload(50, 2), 50);

  ByteReader r(nullptr, 0);
  std::vector<uint8_t> resp = server.HandleRequest(IndexRequest(0, 0));
  ASSERT_TRUE(UnframeMessage(resp, &r));
  EXPECT_EQ(r.Read<uint8_t>(), static_cast<uint8_t>(MsgType::kIndexResponse));
  ASSERT_EQ(r.ReadVarU64(), 2u);
  EXPECT_EQ(r.ReadVarU64(), 1u);  // mapper 1 first
  uint64_t frame1_bytes = r.ReadVarU64();
  EXPECT_EQ(r.ReadVarU64(), 3u);
  EXPECT_EQ(r.ReadVarU64(), 300u);

  // Fetch mapper 1's frame in 40-byte slices and reassemble.
  std::vector<uint8_t> frame;
  while (frame.size() < frame1_bytes) {
    resp = server.HandleRequest(FetchRequest(0, 0, 1, frame.size(), 40));
    ByteReader fr(nullptr, 0);
    ASSERT_TRUE(UnframeMessage(resp, &fr));
    EXPECT_EQ(fr.Read<uint8_t>(),
              static_cast<uint8_t>(MsgType::kFetchResponse));
    ASSERT_EQ(fr.Read<uint8_t>(), static_cast<uint8_t>(WireStatus::kOk));
    EXPECT_EQ(fr.ReadVarU64(), frame1_bytes);
    uint64_t n = fr.ReadVarU64();
    size_t off = frame.size();
    frame.resize(off + n);
    fr.ReadBytes(frame.data() + off, n);
  }
  EXPECT_EQ(frame, Payload(100, 1));
  EXPECT_EQ(server.PayloadBytes(0), 450u);
}

TEST(BlockServer, NotFoundAndFailProbe) {
  BlockServer server(nullptr);
  ByteReader r(nullptr, 0);
  std::vector<uint8_t> resp = server.HandleRequest(FetchRequest(0, 0, 9, 0, 10));
  ASSERT_TRUE(UnframeMessage(resp, &r));
  EXPECT_EQ(r.Read<uint8_t>(), static_cast<uint8_t>(MsgType::kErrorResponse));
  EXPECT_EQ(r.Read<uint8_t>(), static_cast<uint8_t>(WireStatus::kNotFound));

  ByteWriter probe;
  probe.Write<uint8_t>(static_cast<uint8_t>(MsgType::kFailProbe));
  probe.WriteVarU64(1);
  probe.WriteVarU64(2);
  probe.WriteVarU64(0);
  resp = server.HandleRequest(FrameMessage(probe));
  ASSERT_TRUE(UnframeMessage(resp, &r));
  EXPECT_EQ(r.Read<uint8_t>(), static_cast<uint8_t>(MsgType::kErrorResponse));
  EXPECT_EQ(r.Read<uint8_t>(),
            static_cast<uint8_t>(WireStatus::kInjectedFailure));
}

TEST(BlockServer, DropReleaseAndReplace) {
  BlockServer server(nullptr);
  server.Register(0, 0, 0, Payload(10), 10);
  server.Register(0, 1, 0, Payload(20), 20);
  server.Register(0, 0, 2, Payload(30), 30);
  server.Register(1, 0, 0, Payload(40), 40);
  EXPECT_EQ(server.PayloadBytes(0), 60u);

  // A retried map task's second deposit replaces the first.
  server.Register(0, 0, 0, Payload(15), 15);
  EXPECT_EQ(server.PayloadBytes(0), 65u);

  // Drop removes mapper 0's frames in every reducer bucket of shuffle 0.
  server.Drop(0, 0);
  EXPECT_EQ(server.PayloadBytes(0), 30u);
  EXPECT_EQ(server.PayloadBytes(1), 40u);

  server.Release(0);
  EXPECT_EQ(server.PayloadBytes(0), 0u);
  EXPECT_EQ(server.PayloadBytes(1), 40u);
}

// -- socket hardening + control plane -----------------------------------------

TEST(SocketIo, RefusedConnectThrowsTypedRetryableError) {
  // Bind-then-close: the port is (very likely) unbound and refuses.
  uint16_t port = 0;
  int fd = ListenLoopback(&port);
  ::close(fd);
  try {
    DialLoopback(port);
    FAIL() << "connect to a closed port should throw";
  } catch (const ConnectError& e) {
    EXPECT_EQ(e.port(), port);
    EXPECT_NE(e.error_code(), 0);
    EXPECT_TRUE(e.retryable());
  }
  // The retry wrapper gives up with the same typed error, so reconnect
  // paths (registration, heartbeat probes) can keep backing off.
  EXPECT_THROW(DialLoopbackRetry(port, 2, 1), ConnectError);
}

TEST(SocketIo, WriteAllAndReadAllMoveExactBytes) {
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  std::vector<uint8_t> sent = Payload(1 << 20, 7);  // spans many segments
  std::thread writer(
      [&] { EXPECT_TRUE(WriteAll(fds[0], sent.data(), sent.size())); });
  std::vector<uint8_t> got(sent.size());
  EXPECT_TRUE(ReadAll(fds[1], got.data(), got.size()));
  writer.join();
  EXPECT_EQ(got, sent);
  // EOF after the peer closes is a clean false, not an exception.
  ::close(fds[0]);
  uint8_t one;
  EXPECT_FALSE(ReadAll(fds[1], &one, 1));
  ::close(fds[1]);
}

TEST(RpcControl, RoundTripAndDeadline) {
  std::atomic<int> slow{0};
  RpcServer server([&](const std::vector<uint8_t>& req) {
    if (slow.load() != 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(300));
    }
    std::vector<uint8_t> resp = req;  // echo
    return resp;
  });
  RpcClient client(server.port(), /*connect_attempts=*/5,
                   /*backoff_base_ms=*/5);

  ByteWriter w;
  w.Write<uint8_t>(static_cast<uint8_t>(CtrlType::kHeartbeat));
  w.WriteVarU64(99);
  std::vector<uint8_t> frame = FrameMessage(w);
  EXPECT_EQ(client.Call(frame, /*deadline_ms=*/2000), frame);

  // A response that misses its deadline surfaces as RpcError(timed_out);
  // the request is never resent.
  slow.store(1);
  try {
    client.Call(frame, /*deadline_ms=*/50);
    FAIL() << "deadline should have fired";
  } catch (const RpcError& e) {
    EXPECT_TRUE(e.timed_out());
  }
  // The client reconnects transparently on the next call.
  slow.store(0);
  EXPECT_EQ(client.Call(frame, /*deadline_ms=*/2000), frame);
  server.Stop();
}

TEST(RpcControl, StoppedServerRefusesWithConnectError) {
  uint16_t port;
  {
    RpcServer server([](const std::vector<uint8_t>& req) { return req; });
    port = server.port();
  }
  RpcClient client(port, /*connect_attempts=*/2, /*backoff_base_ms=*/1);
  EXPECT_THROW(client.Call({1, 2, 3}, 100), ConnectError);
}

}  // namespace
}  // namespace deca::net
