#include <gtest/gtest.h>

#include "workloads/graph.h"
#include "workloads/wordcount.h"

namespace deca::workloads {
namespace {

spark::SparkConfig SmallSpark() {
  spark::SparkConfig cfg;
  cfg.num_executors = 2;
  cfg.partitions_per_executor = 2;
  cfg.heap.heap_bytes = 48u << 20;
  cfg.spill_dir = "/tmp/deca_test_spill_graph";
  return cfg;
}

class WcModeTest : public ::testing::TestWithParam<Mode> {};

TEST_P(WcModeTest, CountsEveryWordOnce) {
  WordCountParams p;
  p.total_words = 200000;
  p.distinct_keys = 1000;
  p.mode = GetParam();
  p.spark = SmallSpark();
  WordCountResult r = RunWordCount(p);
  EXPECT_EQ(r.total_count, 200000u);
  EXPECT_EQ(r.distinct_found, 1000u);
  EXPECT_GT(r.shuffle_bytes, 0u);
}

TEST_P(WcModeTest, SkewedKeysStillExact) {
  WordCountParams p;
  p.total_words = 100000;
  p.distinct_keys = 5000;
  p.zipf_s = 1.0;
  p.mode = GetParam();
  p.spark = SmallSpark();
  WordCountResult r = RunWordCount(p);
  EXPECT_EQ(r.total_count, 100000u);
  EXPECT_LE(r.distinct_found, 5000u);
  EXPECT_GT(r.distinct_found, 100u);
}

INSTANTIATE_TEST_SUITE_P(Modes, WcModeTest,
                         ::testing::Values(Mode::kSpark, Mode::kDeca),
                         [](const ::testing::TestParamInfo<Mode>& info) {
                           return std::string(ModeName(info.param));
                         });

TEST(WcTest, ModesAgreeOnDistinctCounts) {
  WordCountParams p;
  p.total_words = 100000;
  p.distinct_keys = 777;
  p.spark = SmallSpark();
  p.mode = Mode::kSpark;
  WordCountResult spark = RunWordCount(p);
  p.mode = Mode::kDeca;
  WordCountResult deca = RunWordCount(p);
  EXPECT_EQ(spark.total_count, deca.total_count);
  EXPECT_EQ(spark.distinct_found, deca.distinct_found);
}

TEST(WcTest, ProfilerTracksTuple2Lifetimes) {
  WordCountParams p;
  p.total_words = 400000;
  p.distinct_keys = 20000;
  p.spark = SmallSpark();
  p.mode = Mode::kSpark;
  p.profile = true;
  p.profile_every = 50000;
  WordCountResult r = RunWordCount(p);
  EXPECT_GT(r.run.object_counts.size(), 2u);
  // Deca mode keeps no Tuple2s at all.
  p.mode = Mode::kDeca;
  WordCountResult d = RunWordCount(p);
  for (double v : d.run.object_counts.values) EXPECT_EQ(v, 0.0);
}

TEST(WcTest, DecaShufflesFewerOrEqualBytes) {
  WordCountParams p;
  p.total_words = 200000;
  p.distinct_keys = 50000;
  p.spark = SmallSpark();
  p.mode = Mode::kSpark;
  WordCountResult spark = RunWordCount(p);
  p.mode = Mode::kDeca;
  WordCountResult deca = RunWordCount(p);
  // Deca writes fixed 16B entries; Spark writes varints — sizes differ but
  // both are sane and nonzero.
  EXPECT_GT(spark.shuffle_bytes, 0u);
  EXPECT_GT(deca.shuffle_bytes, 0u);
}

class GraphModeTest : public ::testing::TestWithParam<Mode> {};

TEST_P(GraphModeTest, PageRankMassConserved) {
  GraphParams p;
  p.num_vertices = 1 << 12;
  p.num_edges = 1 << 15;
  p.iterations = 3;
  p.mode = GetParam();
  p.spark = SmallSpark();
  PageRankResult r = RunPageRank(p);
  EXPECT_GT(r.vertices_ranked, 100u);
  EXPECT_GT(r.rank_sum, 0.0);
  EXPECT_GT(r.adjacency_records, 0u);
}

TEST_P(GraphModeTest, ConnectedComponentsFindsComponents) {
  GraphParams p;
  p.num_vertices = 1 << 12;
  p.num_edges = 1 << 15;
  p.iterations = 8;
  p.mode = GetParam();
  p.spark = SmallSpark();
  ConnectedComponentsResult r = RunConnectedComponents(p);
  EXPECT_GT(r.components, 0u);
  EXPECT_GT(r.label_updates, 0u);
}

INSTANTIATE_TEST_SUITE_P(Modes, GraphModeTest,
                         ::testing::Values(Mode::kSpark, Mode::kSparkSer,
                                           Mode::kDeca),
                         [](const ::testing::TestParamInfo<Mode>& info) {
                           return std::string(ModeName(info.param));
                         });

TEST(GraphPlanTest, Figure7bVerdicts) {
  // The full pipeline — phased classification + container planning — must
  // arrive at the paper's Figure 7(b) layout decisions.
  GraphPlan plan = PlanAdjacencyContainers();
  EXPECT_EQ(plan.buffer_phase_size_type, analysis::SizeType::kVariable);
  EXPECT_EQ(plan.cache_phase_size_type, analysis::SizeType::kRuntimeFixed);
  EXPECT_EQ(plan.shuffle_layout, core::ContainerLayout::kObjects);
  EXPECT_EQ(plan.cache_layout, core::ContainerLayout::kDecomposed);
}

TEST(GraphTest, AllModesAgreeOnResults) {
  GraphParams p;
  p.num_vertices = 1 << 12;
  p.num_edges = 1 << 15;
  p.iterations = 3;
  p.spark = SmallSpark();

  p.mode = Mode::kSpark;
  PageRankResult pr_spark = RunPageRank(p);
  ConnectedComponentsResult cc_spark = RunConnectedComponents(p);
  p.mode = Mode::kDeca;
  PageRankResult pr_deca = RunPageRank(p);
  ConnectedComponentsResult cc_deca = RunConnectedComponents(p);
  p.mode = Mode::kSparkSer;
  PageRankResult pr_ser = RunPageRank(p);

  EXPECT_EQ(pr_spark.vertices_ranked, pr_deca.vertices_ranked);
  EXPECT_EQ(pr_spark.vertices_ranked, pr_ser.vertices_ranked);
  // Floating-point sums differ only by association order.
  EXPECT_NEAR(pr_spark.rank_sum, pr_deca.rank_sum,
              1e-6 * pr_spark.rank_sum);
  EXPECT_NEAR(pr_spark.rank_sum, pr_ser.rank_sum, 1e-6 * pr_spark.rank_sum);
  // Min-label propagation is order-independent: exact match.
  EXPECT_EQ(cc_spark.components, cc_deca.components);
}

}  // namespace
}  // namespace deca::workloads
