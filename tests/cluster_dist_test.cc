// Distributed control-plane equivalence matrix: every workload digest,
// GC count, and fault counter must be bit-identical between the
// in-process backend and the one-daemon-per-executor backend — across
// seeds, worker-thread counts, and fault scripts, including a real
// SIGKILL-and-respawn recovery per seed.
//
// The injection seed can be varied from the outside (the CI fault matrix
// sets DECA_FAULT_SEED); every test here must hold for any seed.

#include <gtest/gtest.h>

#include <cstdlib>
#include <vector>

#include "fault/fault_config.h"
#include "spark/config.h"
#include "spark/dist.h"
#include "workloads/dist_entry.h"
#include "workloads/lr.h"
#include "workloads/wordcount.h"

namespace deca {
namespace {

uint64_t TestSeed() {
  const char* s = std::getenv("DECA_FAULT_SEED");
  return s != nullptr ? std::strtoull(s, nullptr, 10) : 1337;
}

// Small control-plane timings so death detection (missed pings + failed
// probes) completes in tens of milliseconds instead of seconds.
spark::ClusterKnobs FastKnobs() {
  spark::ClusterKnobs k;
  k.heartbeat_interval_ms = 20;
  k.heartbeat_miss_threshold = 2;
  k.reconnect_probes = 2;
  k.retry_backoff_base_ms = 5;
  return k;
}

spark::SparkConfig Config(spark::DistMode mode, int threads) {
  spark::SparkConfig cfg;
  cfg.num_executors = 2;
  cfg.partitions_per_executor = 2;
  cfg.heap.heap_bytes = 32u << 20;
  cfg.num_worker_threads = threads;
  cfg.dist_mode = mode;
  cfg.cluster = FastKnobs();
  return cfg;
}

workloads::WordCountResult Wc(spark::DistMode mode, int threads,
                              const fault::FaultConfig& fc) {
  workloads::WordCountParams p;
  p.total_words = 1u << 15;
  p.distinct_keys = 500;
  p.mode = workloads::Mode::kSpark;
  p.spark = Config(mode, threads);
  p.spark.fault = fc;
  return workloads::RunWordCount(p);
}

workloads::LrResult Lr(spark::DistMode mode, int threads,
                       const fault::FaultConfig& fc) {
  workloads::MlParams p;
  p.dims = 10;
  p.num_points = 10000;
  p.iterations = 2;
  p.mode = workloads::Mode::kSpark;
  p.spark = Config(mode, threads);
  p.spark.fault = fc;
  return workloads::RunLogisticRegression(p);
}

void ExpectSameRun(const workloads::RunResult& a,
                   const workloads::RunResult& b) {
  EXPECT_EQ(a.minor_gcs, b.minor_gcs);
  EXPECT_EQ(a.full_gcs, b.full_gcs);
  EXPECT_EQ(a.task_retries, b.task_retries);
  EXPECT_EQ(a.injected_faults, b.injected_faults);
  EXPECT_EQ(a.executor_wipes, b.executor_wipes);
  EXPECT_EQ(a.recomputed_blocks, b.recomputed_blocks);
  EXPECT_EQ(a.oom_recoveries, b.oom_recoveries);
}

TEST(ClusterDistTest, WordCountMatrixLocalEqualsProcess) {
  for (uint64_t seed : {TestSeed(), TestSeed() + 1}) {
    for (bool inject : {false, true}) {
      SCOPED_TRACE(testing::Message() << "seed=" << seed
                                      << " inject=" << inject);
      fault::FaultConfig fc;
      fc.seed = seed;
      if (inject) {
        fc.task_failure_prob = 0.5;
        fc.fetch_failure_prob = 0.25;
      }
      workloads::WordCountResult base = Wc(spark::DistMode::kInProcess, 0, fc);
      EXPECT_FALSE(base.run.dist_active);
      if (inject) {
        EXPECT_GT(base.run.task_retries, 0u);
      }

      workloads::WordCountResult par = Wc(spark::DistMode::kInProcess, 2, fc);
      EXPECT_EQ(par.total_count, base.total_count);
      EXPECT_EQ(par.distinct_found, base.distinct_found);
      EXPECT_EQ(par.shuffle_bytes, base.shuffle_bytes);
      ExpectSameRun(par.run, base.run);

      workloads::WordCountResult proc = Wc(spark::DistMode::kProcess, 0, fc);
      EXPECT_EQ(proc.total_count, base.total_count);
      EXPECT_EQ(proc.distinct_found, base.distinct_found);
      EXPECT_EQ(proc.shuffle_bytes, base.shuffle_bytes);
      ExpectSameRun(proc.run, base.run);
      ASSERT_TRUE(proc.run.dist_active);
      EXPECT_EQ(proc.run.cluster.executors_spawned, 2u);
      EXPECT_EQ(proc.run.cluster.executors_killed, 0u);
      EXPECT_EQ(proc.run.cluster.executors_declared_dead, 0u);
      EXPECT_EQ(proc.run.cluster.stage_quarantines, 0u);
      EXPECT_GT(proc.run.cluster.rpc_messages, 0u);
    }
  }
}

TEST(ClusterDistTest, LrWeightsBitIdenticalAcrossBackends) {
  for (uint64_t seed : {TestSeed(), TestSeed() + 1}) {
    SCOPED_TRACE(testing::Message() << "seed=" << seed);
    fault::FaultConfig fc;
    fc.seed = seed;
    workloads::LrResult base = Lr(spark::DistMode::kInProcess, 0, fc);
    ASSERT_EQ(base.weights.size(), 10u);

    fc.task_failure_prob = 0.3;
    workloads::LrResult flaky = Lr(spark::DistMode::kInProcess, 0, fc);
    EXPECT_GT(flaky.run.task_retries, 0u);

    for (int threads : {0, 2}) {
      SCOPED_TRACE(threads);
      workloads::LrResult proc = Lr(spark::DistMode::kProcess, threads, fc);
      ASSERT_EQ(proc.weights.size(), base.weights.size());
      for (size_t j = 0; j < base.weights.size(); ++j) {
        EXPECT_EQ(proc.weights[j], base.weights[j]) << "dim " << j;
      }
      ExpectSameRun(proc.run, flaky.run);
      ASSERT_TRUE(proc.run.dist_active);
      EXPECT_EQ(proc.run.cluster.executors_spawned, 2u);
      EXPECT_EQ(proc.run.cluster.executors_killed, 0u);
    }
  }
}

// The tentpole recovery claim: in process mode a scripted crash-wipe is a
// real SIGKILL of the daemon. The driver must detect the death through
// missed heartbeats + failed reconnect probes, respawn the next
// generation, fast-forward it through the program log, replay lineage
// over RPC — and land on bit-identical weights, GC counts, and fault
// counters as the in-process wipe.
TEST(ClusterDistTest, CrashWipeIsARealSigkillAndRespawnPerSeed) {
  for (uint64_t seed : {TestSeed(), TestSeed() + 1}) {
    SCOPED_TRACE(testing::Message() << "seed=" << seed);
    fault::FaultConfig fc;
    fc.seed = seed;
    fc.crash_wipe_stage = 1;  // stage 0 = load, 1 = first gradient stage
    fc.crash_wipe_executor = 1;

    workloads::LrResult base = Lr(spark::DistMode::kInProcess, 0, fc);
    EXPECT_EQ(base.run.executor_wipes, 1u);

    workloads::LrResult proc = Lr(spark::DistMode::kProcess, 0, fc);
    ASSERT_EQ(proc.weights.size(), base.weights.size());
    for (size_t j = 0; j < base.weights.size(); ++j) {
      EXPECT_EQ(proc.weights[j], base.weights[j]) << "dim " << j;
    }
    ExpectSameRun(proc.run, base.run);
    ASSERT_TRUE(proc.run.dist_active);
    EXPECT_EQ(proc.run.cluster.executors_killed, 1u);
    EXPECT_EQ(proc.run.cluster.executors_declared_dead, 1u);
    EXPECT_EQ(proc.run.cluster.executors_respawned, 1u);
    EXPECT_EQ(proc.run.cluster.executors_spawned, 3u);  // 2 + 1 respawn
    // The kill lands between stages; no partial stage results existed.
    EXPECT_EQ(proc.run.cluster.stage_quarantines, 0u);
    // Death was established the honest way: probes ran and failed.
    EXPECT_GT(proc.run.cluster.heartbeat_misses, 0u);
    EXPECT_GT(proc.run.cluster.reconnect_probes, 0u);
  }
}

}  // namespace
}  // namespace deca
