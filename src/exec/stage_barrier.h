#ifndef DECA_EXEC_STAGE_BARRIER_H_
#define DECA_EXEC_STAGE_BARRIER_H_

#include <condition_variable>
#include <mutex>

namespace deca::exec {

/// Stage-end barrier: worker threads call Arrive() once per finished task;
/// the driver blocks in Wait() until every expected task has arrived.
/// Cross-executor reads (shuffle chunks, cached blocks of other heaps,
/// driver-side result folding) are only legal after Wait() returns — the
/// barrier is the synchronization point that makes the parallel runtime's
/// "reads only after the stage barrier" contract hold.
class StageBarrier {
 public:
  explicit StageBarrier(int expected) : expected_(expected) {}

  StageBarrier(const StageBarrier&) = delete;
  StageBarrier& operator=(const StageBarrier&) = delete;

  /// Marks one task complete; wakes waiters once all have arrived.
  void Arrive() {
    std::lock_guard<std::mutex> lock(mu_);
    ++arrived_;
    if (arrived_ >= expected_) cv_.notify_all();
  }

  /// Blocks until `expected` tasks have arrived.
  void Wait() {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [this] { return arrived_ >= expected_; });
  }

  int arrived() const {
    std::lock_guard<std::mutex> lock(mu_);
    return arrived_;
  }

 private:
  mutable std::mutex mu_;
  std::condition_variable cv_;
  int expected_;
  int arrived_ = 0;
};

}  // namespace deca::exec

#endif  // DECA_EXEC_STAGE_BARRIER_H_
