#ifndef DECA_EXEC_METRICS_SINK_H_
#define DECA_EXEC_METRICS_SINK_H_

#include <mutex>
#include <vector>

#include "spark/metrics.h"

namespace deca::exec {

/// Thread-safe collection point for per-task metrics: executor threads
/// report each finished task into a per-partition slot, and the driver
/// folds the slots into the job's aggregate AFTER the stage barrier, in
/// partition order. Buffering per partition (instead of accumulating in
/// completion order, as the old driver loop mutated JobMetrics directly)
/// keeps the floating-point accumulation order — and thus the aggregate
/// values — identical between sequential and parallel modes.
class MetricsSink {
 public:
  /// Starts a new stage with `num_partitions` task slots.
  void BeginStage(int num_partitions);

  /// Records a finished task's metrics. Thread-safe; each partition must
  /// report at most once per stage.
  void Report(int partition, const spark::TaskMetrics& m);

  /// Folds every reported slot into `out` in partition order. Call from
  /// the driver after the stage barrier.
  void EndStage(spark::JobMetrics* out);

 private:
  std::mutex mu_;
  std::vector<spark::TaskMetrics> slots_;
  std::vector<uint8_t> reported_;
};

}  // namespace deca::exec

#endif  // DECA_EXEC_METRICS_SINK_H_
