#include "exec/metrics_sink.h"

#include "common/logging.h"

namespace deca::exec {

void MetricsSink::BeginStage(int num_partitions) {
  std::lock_guard<std::mutex> lock(mu_);
  slots_.assign(static_cast<size_t>(num_partitions), spark::TaskMetrics());
  reported_.assign(static_cast<size_t>(num_partitions), 0);
}

void MetricsSink::Report(int partition, const spark::TaskMetrics& m) {
  std::lock_guard<std::mutex> lock(mu_);
  DECA_CHECK_LT(static_cast<size_t>(partition), slots_.size());
  DECA_CHECK(!reported_[static_cast<size_t>(partition)])
      << "partition " << partition << " reported twice";
  slots_[static_cast<size_t>(partition)] = m;
  reported_[static_cast<size_t>(partition)] = 1;
}

void MetricsSink::EndStage(spark::JobMetrics* out) {
  std::lock_guard<std::mutex> lock(mu_);
  for (size_t p = 0; p < slots_.size(); ++p) {
    if (reported_[p]) out->ObserveTask(slots_[p]);
  }
  slots_.clear();
  reported_.clear();
}

}  // namespace deca::exec
