#ifndef DECA_EXEC_EXECUTOR_THREAD_H_
#define DECA_EXEC_EXECUTOR_THREAD_H_

#include <thread>

#include "exec/task_queue.h"

namespace deca::exec {

/// One OS worker thread draining one FIFO task queue until the queue is
/// closed. Every executor (heap) assigned to a worker has exactly this
/// thread as its mutator while a stage runs — the unit of parallelism is
/// the executor precisely because its heap already has a single mutator
/// and stop-the-world collections then need no cross-thread handshake.
class ExecutorThread {
 public:
  explicit ExecutorThread(int worker_index);
  /// Closes the queue and joins the thread; queued tasks still drain.
  ~ExecutorThread();

  ExecutorThread(const ExecutorThread&) = delete;
  ExecutorThread& operator=(const ExecutorThread&) = delete;

  TaskQueue* queue() { return &queue_; }
  int worker_index() const { return worker_index_; }
  std::thread::id thread_id() const { return thread_.get_id(); }

 private:
  void Loop();

  int worker_index_;
  TaskQueue queue_;
  std::thread thread_;
};

}  // namespace deca::exec

#endif  // DECA_EXEC_EXECUTOR_THREAD_H_
