#include "exec/task_queue.h"

#include "common/logging.h"

namespace deca::exec {

void TaskQueue::Push(std::function<void()> fn) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    DECA_CHECK(!closed_) << "Push on closed TaskQueue";
    tasks_.push_back(std::move(fn));
  }
  cv_.notify_one();
}

bool TaskQueue::Pop(std::function<void()>* out) {
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait(lock, [this] { return closed_ || !tasks_.empty(); });
  if (tasks_.empty()) return false;
  *out = std::move(tasks_.front());
  tasks_.pop_front();
  return true;
}

void TaskQueue::Close() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    closed_ = true;
  }
  cv_.notify_all();
}

size_t TaskQueue::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return tasks_.size();
}

}  // namespace deca::exec
