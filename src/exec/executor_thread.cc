#include "exec/executor_thread.h"

namespace deca::exec {

ExecutorThread::ExecutorThread(int worker_index)
    : worker_index_(worker_index), thread_([this] { Loop(); }) {}

ExecutorThread::~ExecutorThread() {
  queue_.Close();
  if (thread_.joinable()) thread_.join();
}

void ExecutorThread::Loop() {
  std::function<void()> task;
  while (queue_.Pop(&task)) {
    task();
    task = nullptr;  // release captures before blocking in Pop again
  }
}

}  // namespace deca::exec
