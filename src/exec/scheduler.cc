#include "exec/scheduler.h"

#include <algorithm>
#include <exception>

#include "common/clock.h"
#include "common/logging.h"
#include "exec/stage_barrier.h"
#include "obs/trace.h"

namespace deca::exec {

TaskScheduler::TaskScheduler(int num_executors, int num_worker_threads)
    : num_executors_(num_executors) {
  DECA_CHECK_GT(num_executors, 0);
  DECA_CHECK_GE(num_worker_threads, 0);
  int n = std::min(num_worker_threads, num_executors);
  workers_.reserve(static_cast<size_t>(n));
  for (int w = 0; w < n; ++w) {
    workers_.push_back(std::make_unique<ExecutorThread>(w));
  }
}

TaskScheduler::~TaskScheduler() = default;

std::thread::id TaskScheduler::MutatorThreadId(int executor) const {
  if (!parallel()) return std::this_thread::get_id();
  return workers_[static_cast<size_t>(WorkerOfExecutor(executor))]
      ->thread_id();
}

void TaskScheduler::RunStage(int num_partitions, const StageTask& task,
                             const char* stage_name) {
  if (!parallel()) {
    for (int p = 0; p < num_partitions; ++p) {
      // Recorded on the driver recorder in both modes, before the task
      // body runs, so the dispatch sequence is mode-independent.
      obs::Instant(obs::Cat::kSched, "dispatch", p, ExecutorOfPartition(p));
      task(p, /*queue_ms=*/0.0);
    }
    return;
  }
  StageBarrier barrier(num_partitions);
  // One slot per partition: workers write disjoint entries, the driver
  // reads only after the barrier, and rethrowing the lowest failing
  // partition keeps error propagation deterministic.
  std::vector<std::exception_ptr> errors(
      static_cast<size_t>(num_partitions));
  for (int p = 0; p < num_partitions; ++p) {
    int w = WorkerOfExecutor(ExecutorOfPartition(p));
    obs::Instant(obs::Cat::kSched, "dispatch", p, ExecutorOfPartition(p));
    Stopwatch queued;
    workers_[static_cast<size_t>(w)]->queue()->Push(
        [&task, &barrier, &errors, p, queued] {
          double queue_ms = queued.ElapsedMillis();
          try {
            task(p, queue_ms);
          } catch (...) {
            errors[static_cast<size_t>(p)] = std::current_exception();
          }
          barrier.Arrive();
        });
  }
  barrier.Wait();
  int first_failed = -1;
  for (int p = 0; p < num_partitions; ++p) {
    if (!errors[static_cast<size_t>(p)]) continue;
    if (first_failed < 0) {
      first_failed = p;
      continue;
    }
    // Only the lowest failing partition's exception propagates; log the
    // rest so they are not silently swallowed.
    try {
      std::rethrow_exception(errors[static_cast<size_t>(p)]);
    } catch (const std::exception& ex) {
      DECA_LOG(Warning) << "stage '" << stage_name
                        << "': suppressed failure in partition " << p << ": "
                        << ex.what();
    } catch (...) {
      DECA_LOG(Warning) << "stage '" << stage_name
                        << "': suppressed non-standard exception in partition "
                        << p;
    }
  }
  if (first_failed >= 0) {
    std::rethrow_exception(errors[static_cast<size_t>(first_failed)]);
  }
}

}  // namespace deca::exec
