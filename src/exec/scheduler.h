#ifndef DECA_EXEC_SCHEDULER_H_
#define DECA_EXEC_SCHEDULER_H_

#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "exec/executor_thread.h"

namespace deca::exec {

/// Executor-granularity task scheduler. A stage is a set of tasks, one per
/// partition; the scheduler dispatches each task to the worker thread that
/// owns the partition's executor, in partition order, and blocks the
/// driver at a stage-end barrier until all tasks complete.
///
/// Determinism contract (parallel results bit-identical to sequential):
///  - Placement is owned here. Both the sequential and the parallel path —
///    and the engine's `executor_for_partition` — ask ExecutorOfPartition,
///    so the two modes can never disagree about which heap a partition's
///    objects live in.
///  - Per-executor task order is the sequential order. Tasks are enqueued
///    in ascending partition order onto FIFO queues, so each heap sees its
///    subsequence of partitions — and thus its allocation/GC history — in
///    exactly the order the sequential loop produces.
///  - A heap never has two mutators: a worker serves every executor
///    mapped to it, and an executor is mapped to exactly one worker.
///
/// With num_worker_threads == 0 no threads are spawned and RunStage runs
/// every task inline on the calling thread (the legacy driver loop).
class TaskScheduler {
 public:
  /// A stage task: invoked once per partition; `queue_ms` is the
  /// scheduler delay the task spent queued before starting (0 when
  /// sequential).
  using StageTask = std::function<void(int partition, double queue_ms)>;

  /// Spawns min(num_worker_threads, num_executors) worker threads
  /// (none when num_worker_threads == 0).
  TaskScheduler(int num_executors, int num_worker_threads);
  ~TaskScheduler();

  TaskScheduler(const TaskScheduler&) = delete;
  TaskScheduler& operator=(const TaskScheduler&) = delete;

  bool parallel() const { return !workers_.empty(); }
  int num_workers() const { return static_cast<int>(workers_.size()); }

  /// The single source of truth for partition placement.
  int ExecutorOfPartition(int partition) const {
    return partition % num_executors_;
  }

  /// The worker thread serving `executor` (executors are striped over
  /// workers when there are fewer workers than executors).
  int WorkerOfExecutor(int executor) const {
    return executor % static_cast<int>(workers_.size());
  }

  /// The mutator thread of `executor`'s heap while stages run: its
  /// worker's thread in parallel mode, the calling (driver) thread
  /// otherwise.
  std::thread::id MutatorThreadId(int executor) const;

  /// Runs one stage: `task(p, queue_ms)` once per partition p in
  /// [0, num_partitions). Returns after the stage barrier. If tasks
  /// threw, rethrows the exception of the lowest-numbered failing
  /// partition (deterministic); the remaining tasks still run to
  /// completion first, and their suppressed failures are logged with
  /// `stage_name` so multi-partition failures are diagnosable.
  void RunStage(int num_partitions, const StageTask& task,
                const char* stage_name = "");

 private:
  int num_executors_;
  std::vector<std::unique_ptr<ExecutorThread>> workers_;
};

}  // namespace deca::exec

#endif  // DECA_EXEC_SCHEDULER_H_
