#ifndef DECA_EXEC_TASK_QUEUE_H_
#define DECA_EXEC_TASK_QUEUE_H_

#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>

namespace deca::exec {

/// Unbounded FIFO of closures feeding one worker thread (multi-producer,
/// single-consumer in practice; safe for any number of either). The FIFO
/// discipline is load-bearing: tasks are enqueued in partition order, so
/// every heap sees its tasks — and therefore its allocations and GCs — in
/// exactly the order the sequential driver loop would produce.
class TaskQueue {
 public:
  TaskQueue() = default;
  TaskQueue(const TaskQueue&) = delete;
  TaskQueue& operator=(const TaskQueue&) = delete;

  /// Enqueues a task. Must not be called after Close().
  void Push(std::function<void()> fn);

  /// Blocks until a task is available (returned via `out`, true) or the
  /// queue is closed and drained (false).
  bool Pop(std::function<void()>* out);

  /// Wakes all poppers; Pop() keeps returning queued tasks until the
  /// queue is drained, then returns false.
  void Close();

  size_t size() const;

 private:
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> tasks_;
  bool closed_ = false;
};

}  // namespace deca::exec

#endif  // DECA_EXEC_TASK_QUEUE_H_
