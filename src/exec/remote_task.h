#ifndef DECA_EXEC_REMOTE_TASK_H_
#define DECA_EXEC_REMOTE_TASK_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "spark/metrics.h"

namespace deca::exec {

/// What a remotely executed task attempt produced, from the daemon's
/// point of view. The driver maps these back onto the exact exception
/// types the in-process scheduler would have seen, so retry accounting
/// and fault counters stay bit-identical across the two modes.
enum class RemoteTaskStatus : uint8_t {
  kOk = 0,
  kInjectedFailure = 1,  // -> fault::InjectedTaskFailure
  kFetchFailure = 2,     // -> fault::ShuffleFetchFailure
  kOom = 3,              // -> OutOfMemoryError / fault::TaskOomFailure
  kFatal = 4,            // unexpected exception: propagate as-is
};

/// Writes a length-prefixed byte blob.
inline void WriteBlob(ByteWriter* w, const std::vector<uint8_t>& blob) {
  w->WriteVarU64(blob.size());
  w->WriteBytes(blob.data(), blob.size());
}

inline std::vector<uint8_t> ReadBlob(ByteReader* r) {
  std::vector<uint8_t> blob(r->ReadVarU64());
  r->ReadBytes(blob.data(), blob.size());
  return blob;
}

/// One task attempt dispatched over the control plane. In SPMD mode the
/// daemon already runs the same program, so the envelope carries only
/// coordinates — the closure is found by (stage seq, partition) in the
/// daemon's currently-serving stage. `attempt == -1` marks a lineage
/// replay execution (RegisterLineage body, looked up by replay_token).
struct RemoteTaskEnvelope {
  int32_t stage = 0;
  int32_t partition = 0;
  int32_t attempt = 0;
  bool collect = false;       // task returns a result blob
  int64_t replay_token = -1;  // >= 0 for replay executions
  double queue_ms = 0.0;      // driver-side dispatch queue time

  void Encode(ByteWriter* w) const {
    w->WriteVarI64(stage);
    w->WriteVarI64(partition);
    w->WriteVarI64(attempt);
    w->Write<uint8_t>(collect ? 1 : 0);
    w->WriteVarI64(replay_token);
    w->Write<double>(queue_ms);
  }
  static RemoteTaskEnvelope Decode(ByteReader* r) {
    RemoteTaskEnvelope e;
    e.stage = static_cast<int32_t>(r->ReadVarI64());
    e.partition = static_cast<int32_t>(r->ReadVarI64());
    e.attempt = static_cast<int32_t>(r->ReadVarI64());
    e.collect = r->Read<uint8_t>() != 0;
    e.replay_token = r->ReadVarI64();
    e.queue_ms = r->Read<double>();
    return e;
  }
};

/// The attempt's outcome. `fired_delta` is how many injected faults the
/// daemon's (identically seeded) injector fired during this attempt, so
/// the driver's injected-fault counter matches the in-process run.
struct RemoteTaskOutcome {
  RemoteTaskStatus status = RemoteTaskStatus::kOk;
  uint64_t fired_delta = 0;
  spark::TaskMetrics metrics;
  std::string message;          // failure detail (kFatal), empty otherwise
  std::string heap_dump;        // collector state dump (kOom only)
  std::vector<uint8_t> result;  // collect blob (kOk + collect only)

  void Encode(ByteWriter* w) const {
    w->Write<uint8_t>(static_cast<uint8_t>(status));
    w->WriteVarU64(fired_delta);
    w->Write<double>(metrics.total_ms);
    w->Write<double>(metrics.queue_ms);
    w->Write<double>(metrics.gc_ms);
    w->Write<double>(metrics.shuffle_read_ms);
    w->Write<double>(metrics.shuffle_write_ms);
    w->Write<double>(metrics.ser_ms);
    w->Write<double>(metrics.deser_ms);
    w->Write<double>(metrics.spill_ms);
    w->WriteVarU64(metrics.exec_pool_peak_bytes);
    w->WriteVarU64(metrics.storage_pool_peak_bytes);
    w->WriteVarU64(metrics.borrowed_bytes);
    w->WriteVarU64(metrics.denied_reservations);
    w->WriteString(message);
    w->WriteString(heap_dump);
    WriteBlob(w, result);
  }
  static RemoteTaskOutcome Decode(ByteReader* r) {
    RemoteTaskOutcome o;
    o.status = static_cast<RemoteTaskStatus>(r->Read<uint8_t>());
    o.fired_delta = r->ReadVarU64();
    o.metrics.total_ms = r->Read<double>();
    o.metrics.queue_ms = r->Read<double>();
    o.metrics.gc_ms = r->Read<double>();
    o.metrics.shuffle_read_ms = r->Read<double>();
    o.metrics.shuffle_write_ms = r->Read<double>();
    o.metrics.ser_ms = r->Read<double>();
    o.metrics.deser_ms = r->Read<double>();
    o.metrics.spill_ms = r->Read<double>();
    o.metrics.exec_pool_peak_bytes = r->ReadVarU64();
    o.metrics.storage_pool_peak_bytes = r->ReadVarU64();
    o.metrics.borrowed_bytes = r->ReadVarU64();
    o.metrics.denied_reservations = r->ReadVarU64();
    o.message = r->ReadString();
    o.heap_dump = r->ReadString();
    o.result = ReadBlob(r);
    return o;
  }
};

}  // namespace deca::exec

#endif  // DECA_EXEC_REMOTE_TASK_H_
