#ifndef DECA_WORKLOADS_WORDCOUNT_H_
#define DECA_WORKLOADS_WORDCOUNT_H_

#include <cstdint>

#include "workloads/common.h"

namespace deca::workloads {

/// Parameters for the two-stage WordCount benchmark (paper Section 6.1).
/// Words are modelled as 64-bit ids drawn from `distinct_keys` values
/// (the paper's Hadoop RandomWriter datasets are parameterized the same
/// way: total size x unique key count); the GC behaviour under study lives
/// in the shuffle buffer's Tuple2/boxed-value objects, which are preserved
/// exactly.
struct WordCountParams {
  uint64_t total_words = 1 << 20;   // across all partitions
  uint64_t distinct_keys = 10000;
  double zipf_s = 0.0;              // 0 = uniform, >0 = skewed popularity
  Mode mode = Mode::kSpark;
  spark::SparkConfig spark;
  /// Sample live Tuple2 count + cumulative GC time during the map stage
  /// (Figure 8a), every `profile_every` processed words.
  bool profile = false;
  uint64_t profile_every = 200000;
  uint64_t seed = 99;
};

struct WordCountResult {
  RunResult run;
  uint64_t total_count = 0;     // sum of all counts (== total_words)
  uint64_t distinct_found = 0;  // number of distinct keys observed
  uint64_t shuffle_bytes = 0;
};

WordCountResult RunWordCount(const WordCountParams& params);

}  // namespace deca::workloads

#endif  // DECA_WORKLOADS_WORDCOUNT_H_
