#ifndef DECA_WORKLOADS_STREAM_H_
#define DECA_WORKLOADS_STREAM_H_

#include <cstdint>

#include "stream/stream_context.h"
#include "workloads/common.h"

namespace deca::workloads {

/// Shared parameters of the three micro-batch streaming workloads. Each
/// epoch ingests `records_per_epoch` records (split across partitions),
/// runs its stages inside an epoch region, and windows of
/// `stream.window` epochs fire every `stream.slide` epochs.
struct StreamParams {
  stream::StreamOptions stream;
  uint64_t records_per_epoch = 20000;
  uint64_t distinct_keys = 2048;
  /// Sessionization: two visits of one user belong to the same session
  /// when the time gap between them is at most this (epoch time units;
  /// each epoch spans 1000 units).
  int64_t session_gap = 1500;
  Mode mode = Mode::kDeca;
  spark::SparkConfig spark;
  uint64_t seed = 2016;
};

/// Result of a streaming run. `digest` folds every window's
/// order-independent output summary in window order, so two runs agree
/// bit-for-bit iff every window produced identical results — the
/// parallel==sequential and crash-replay checks compare exactly this.
struct StreamResult {
  RunResult run;
  uint64_t windows = 0;
  uint64_t digest = 0;
  uint64_t records_processed = 0;
  double throughput_rps = 0;  // records ingested per wall-clock second
};

/// Windowed wordcount: per epoch a hash-combining map/shuffle/reduce
/// materializes a per-partition count table; a window merges its epochs'
/// tables (total, distinct, key checksum).
StreamResult RunStreamWordCount(const StreamParams& params);

/// Web-log sessionization over UserVisit-shaped rows (sourceIP,
/// visitDate, adRevenue in cents): per epoch, per-user visit partials;
/// a window stitches partials across epochs in time order and counts
/// sessions split by `session_gap`.
StreamResult RunStreamSessionize(const StreamParams& params);

/// Sliding-window aggregation (sum/min/max/count of a value stream):
/// tiny per-epoch partials, overlapping windows — the pinning
/// stress-case where one epoch stays live across several windows.
StreamResult RunStreamSlidingAgg(const StreamParams& params);

}  // namespace deca::workloads

#endif  // DECA_WORKLOADS_STREAM_H_
