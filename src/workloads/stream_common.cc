#include "workloads/stream_common.h"

namespace deca::workloads {

void FillStreamRun(const stream::StreamContext& sc, RunResult* run) {
  run->epochs_run = static_cast<uint64_t>(sc.epochs_run());
  run->windows_emitted = static_cast<uint64_t>(sc.windows_emitted());
  run->epoch_pause_p50_ms = sc.epoch_pause_ms().Percentile(50);
  run->epoch_pause_p99_ms = sc.epoch_pause_ms().Percentile(99);
  run->epoch_reclaim_p99_ms = sc.reclaim_ms().Percentile(99);
  run->epoch_reclaimed_bytes = sc.reclaimed_bytes();
  run->footprint_base_bytes = sc.footprint_base_bytes();
  run->footprint_end_bytes = sc.footprint_end_bytes();
  run->footprint_peak_bytes = sc.footprint_peak_bytes();
  // "Slowest task" over thousands of microsecond-scale epoch stages is
  // pure host-scheduling noise (which task wins varies per run, and its
  // byte peaks swing with it) — streaming runs report the per-epoch
  // pause/footprint plane instead.
  run->slowest_task = spark::TaskMetrics{};
}

}  // namespace deca::workloads
