#ifndef DECA_WORKLOADS_KMEANS_H_
#define DECA_WORKLOADS_KMEANS_H_

#include <vector>

#include "workloads/common.h"
#include "workloads/lr.h"

namespace deca::workloads {

struct KMeansResult {
  RunResult run;
  /// Final centroids (clusters x dims), for cross-mode validation.
  std::vector<std::vector<double>> centers;
};

/// Runs the paper's KMeans benchmark: cached points plus an aggregated
/// shuffle per iteration (Table 1: two stages, multiple jobs, static
/// cache, aggregated shuffle). The per-cluster partial aggregates are
/// (sum vector, count) pairs — SFST values that Deca combines in place in
/// its shuffle pages, while Spark allocates a fresh aggregate object per
/// merge.
KMeansResult RunKMeans(const MlParams& params);

}  // namespace deca::workloads

#endif  // DECA_WORKLOADS_KMEANS_H_
