#ifndef DECA_WORKLOADS_COMMON_H_
#define DECA_WORKLOADS_COMMON_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/histogram.h"
#include "memory/memory_manager.h"
#include "net/net_stats.h"
#include "obs/trace.h"
#include "spark/context.h"

namespace deca::workloads {

/// Which system variant executes a workload (paper Section 6's
/// Spark / SparkSer / Deca contenders).
enum class Mode {
  kSpark,     // deserialized object caching, object shuffle buffers
  kSparkSer,  // Kryo-serialized caching (paper's "SparkSer")
  kDeca,      // lifetime-based decomposed pages (cache + shuffle)
};

const char* ModeName(Mode m);

/// Applies a mode to a SparkConfig (cache level + shuffle path).
void ApplyMode(Mode mode, spark::SparkConfig* config);

/// Common result record every workload reports; bench harnesses format
/// these into the paper's tables and figure series.
struct RunResult {
  Mode mode = Mode::kSpark;
  double exec_ms = 0;        // end-to-end (excluding data loading when the
                             // paper excludes it)
  double load_ms = 0;        // input loading/caching stage
  double gc_ms = 0;          // total stop-the-world GC across executors
  double concurrent_gc_ms = 0;
  uint64_t minor_gcs = 0;
  uint64_t full_gcs = 0;
  double cached_mb = 0;      // peak in-memory cached data
  double swapped_mb = 0;     // cache bytes swapped to disk
  double shuffle_read_ms = 0;
  double shuffle_write_ms = 0;
  double ser_ms = 0;
  double deser_ms = 0;
  double spill_ms = 0;
  double compute_ms = 0;
  spark::TaskMetrics slowest_task;

  // Fault-tolerance counters (all zero on a fault-free run).
  uint64_t task_retries = 0;
  uint64_t injected_faults = 0;
  uint64_t executor_wipes = 0;
  uint64_t recomputed_blocks = 0;
  uint64_t pressure_evictions = 0;
  uint64_t oom_recoveries = 0;

  // Unified memory-manager plane: denial total plus one snapshot per
  // executor (executor-id order) for the per-executor memory table.
  uint64_t denied_reservations = 0;
  std::vector<memory::MemoryStats> executor_memory;

  // Wire plane (network shuffle transports only; net_active is false and
  // the snapshot stays zero under the local shuffle).
  bool net_active = false;
  net::NetStatsSnapshot net;

  // Control plane (multi-process runs only; dist_active is false and the
  // counters stay zero in-process).
  bool dist_active = false;
  spark::ClusterCounters cluster;

  // Native-allocator plane (src/alloc). alloc_active is true whenever the
  // executors routed allocations through their PageAllocators (both arena
  // and fallback modes count, so the call/byte counters are bit-identical
  // across DECA_ARENA=0|1); alloc_arena records whether the mmap arena
  // actually backed them.
  bool alloc_active = false;
  bool alloc_arena = false;
  alloc::AllocStats alloc;

  // Storage-tier plane (block store T0/T1/T2). tier_active is true when
  // storage_tiers >= 3 enabled the serialized off-heap tier; the counters
  // are filled either way (with the tier disabled only the T0/T2 and
  // hit/miss fields can be non-zero).
  bool tier_active = false;
  spark::TierCounters tier;

  // GC pause plane (schema v4): mark-slice / pause-event counts summed
  // across executors, pause and slice latency percentiles composed by
  // max. mark_slices is deterministic at pause_budget_ms=0 (monolithic
  // marks record exactly one slice each).
  spark::GcPauseAggregate pauses;

  // Streaming plane (all zero unless the run was a micro-batch stream).
  // Pauses are per-epoch stop-the-world GC + region-reclaim stalls; the
  // footprint samples are the data-plane bytes (native page charges +
  // block store) at epoch boundaries — base at epoch 10, so end vs base
  // is the steady-state drift.
  uint64_t epochs_run = 0;
  uint64_t windows_emitted = 0;
  double epoch_pause_p50_ms = 0;
  double epoch_pause_p99_ms = 0;
  double epoch_reclaim_p99_ms = 0;
  uint64_t epoch_reclaimed_bytes = 0;
  uint64_t footprint_base_bytes = 0;
  uint64_t footprint_end_bytes = 0;
  uint64_t footprint_peak_bytes = 0;

  // Optional lifetime profile (figures 8a / 9a): live tracked-object count
  // and cumulative GC ms sampled over run time.
  TimeSeries object_counts;
  TimeSeries gc_series;

  // Merged structured trace of the run (null unless tracing was enabled).
  std::shared_ptr<obs::TraceLog> trace;
};

/// Fills the GC/cache/metric fields of `result` from a finished context.
void FinalizeResult(spark::SparkContext* ctx, RunResult* result);

}  // namespace deca::workloads

#endif  // DECA_WORKLOADS_COMMON_H_
