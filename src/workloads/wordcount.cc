#include "workloads/wordcount.h"

#include <cstring>

#include "analysis/global_classifier.h"
#include "analysis/profiled_classifier.h"
#include "cluster/scoped_job.h"
#include "common/clock.h"
#include "common/logging.h"
#include "common/random.h"
#include "jvm/heap_profiler.h"
#include "spark/shuffle.h"
#include "workloads/dist_entry.h"

namespace deca::workloads {

using analysis::SizeType;
using jvm::FieldKind;
using jvm::HandleScope;
using jvm::ObjRef;

namespace {

/// Managed Tuple2 plus the (word, count) shuffle operations.
struct WcTypes {
  explicit WcTypes(jvm::ClassRegistry* registry) {
    tuple2_cls = registry->RegisterClass(
        "scala.Tuple2", {{"_1", FieldKind::kRef}, {"_2", FieldKind::kRef}});
    ops.key_hash = [](jvm::Heap* h, ObjRef k) -> uint64_t {
      return static_cast<uint64_t>(h->GetField<int64_t>(k, 0)) *
             0x9e3779b97f4a7c15ULL;
    };
    ops.key_equals = [](jvm::Heap* h, ObjRef a, ObjRef b) {
      return h->GetField<int64_t>(a, 0) == h->GetField<int64_t>(b, 0);
    };
    ops.combine = [](jvm::Heap* h, ObjRef agg, ObjRef v) -> ObjRef {
      int64_t sum =
          h->GetField<int64_t>(agg, 0) + h->GetField<int64_t>(v, 0);
      ObjRef fresh =
          h->AllocateInstance(h->registry()->boxed_long_class());
      h->SetField<int64_t>(fresh, 0, sum);
      return fresh;
    };
    ops.entry_bytes = [](jvm::Heap*, ObjRef, ObjRef) -> uint64_t {
      // Tuple2 + two boxed longs + table slot.
      return 3 * (jvm::kHeaderBytes + 8) + 8;
    };
    ops.serialize_key = [](jvm::Heap* h, ObjRef k, ByteWriter* w) {
      w->WriteVarI64(h->GetField<int64_t>(k, 0));
    };
    ops.serialize_value = ops.serialize_key;
    ops.deserialize_key = [](jvm::Heap* h, ByteReader* r) -> ObjRef {
      ObjRef k = h->AllocateInstance(h->registry()->boxed_long_class());
      h->SetField<int64_t>(k, 0, r->ReadVarI64());
      return k;
    };
    ops.deserialize_value = ops.deserialize_key;
    ops.deca_key_bytes = 8;
    ops.deca_value_bytes = 8;
    ops.deca_key_hash = [](const uint8_t* k) -> uint64_t {
      return LoadRaw<uint64_t>(k) * 0x9e3779b97f4a7c15ULL;
    };
    ops.deca_combine = [](uint8_t* agg, const uint8_t* v) {
      StoreRaw<int64_t>(agg, LoadRaw<int64_t>(agg) + LoadRaw<int64_t>(v));
    };
  }

  uint32_t tuple2_cls;
  spark::ShuffleOps ops;
};

// GCC at -O3 flags the aggregate Statement initializers below as
// maybe-uninitialized through the inlined std::string members of FieldRef
// — a known reachability false positive (every string is constructed
// before use).
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"
#endif
/// Static size-type of the map UDF's (word, 1) record: Tuple2's `_1`/`_2`
/// are Scala vals (final) referencing boxed longs whose payload is one
/// final primitive, so the classification proves SFST; the call graph
/// records the UDF's allocation sites for the points-to inference.
SizeType StaticTupleSizeType() {
  analysis::TypeUniverse u;
  auto* lng = u.DefineClass("java.lang.Long");
  u.AddField(lng, "value", /*is_final=*/true,
             {u.Primitive(FieldKind::kLong)});
  auto* t2 = u.DefineClass("scala.Tuple2");
  u.AddField(t2, "_1", /*is_final=*/true, {lng});
  u.AddField(t2, "_2", /*is_final=*/true, {lng});
  analysis::MethodInfo map_udf;
  map_udf.name = "WC.map";
  map_udf.statements.push_back({analysis::Statement::Kind::kNewObjectAssign,
                                {t2, "_1"},
                                lng,
                                {},
                                ""});
  map_udf.statements.push_back({analysis::Statement::Kind::kNewObjectAssign,
                                {t2, "_2"},
                                lng,
                                {},
                                ""});
  analysis::CallGraph cg;
  cg.AddMethod(map_udf);
  cg.SetEntry("WC.map");
  return analysis::GlobalClassifier(&cg).Classify(t2);
}
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic pop
#endif

/// Online size-type of the Tuple2 record: calibrates the sampling
/// allocation profiler on a scratch heap allocating the same record graph
/// the object-mode map stage builds (tuple + two boxed longs).
SizeType ProfiledTupleSizeType(jvm::ClassRegistry* registry,
                               uint32_t tuple2_cls,
                               const jvm::HeapConfig& hc) {
  analysis::CalibrationOptions opts;
  if (hc.profile_sample_bytes > 0) opts.sample_bytes = hc.profile_sample_bytes;
  opts.seed = hc.profile_seed;
  analysis::ProfiledClassifier prof = analysis::CalibrateProfile(
      registry, opts, [tuple2_cls](jvm::Heap* h) -> ObjRef {
        HandleScope scope(h);
        jvm::Handle key = scope.Make(
            h->AllocateInstance(h->registry()->boxed_long_class()));
        jvm::Handle one = scope.Make(
            h->AllocateInstance(h->registry()->boxed_long_class()));
        ObjRef tuple = h->AllocateInstance(tuple2_cls);
        h->SetRefField(tuple, 0, key.get());
        h->SetRefField(tuple, 4, one.get());
        return tuple;
      });
  return prof.Classify(tuple2_cls);
}

}  // namespace

WordCountResult RunWordCount(const WordCountParams& params) {
  spark::SparkConfig cfg = params.spark;
  ApplyMode(params.mode, &cfg);
  // SPMD seam: a no-op in-process; spawns/joins the executor daemons in
  // process mode. Must outlive the context.
  cluster::ScopedJob job(&cfg, "wordcount", EncodeWordCountParams(params));
  spark::SparkContext ctx(cfg);
  WcTypes types(ctx.registry());

  bool deca = params.mode == Mode::kDeca;
  if (deca) {
    // The optimizer's verdict gates the decomposed path. The static proof
    // always runs; under DECA_LIFETIME_SOURCE=profiled the online verdict
    // must agree with it before it may stand in (so executor heaps and
    // digests are bit-identical across sources), and oracle asserts the
    // author's ground truth against the same proof.
    SizeType st = StaticTupleSizeType();
    DECA_CHECK(st == SizeType::kStaticFixed)
        << "WordCount Tuple2 must classify as SFST";
    if (cfg.lifetime_source == spark::LifetimeSource::kProfiled) {
      SizeType online =
          ProfiledTupleSizeType(ctx.registry(), types.tuple2_cls, cfg.heap);
      DECA_CHECK(online == st)
          << "profiled Tuple2 verdict " << analysis::SizeTypeName(online)
          << " disagrees with static " << analysis::SizeTypeName(st);
    }
  }
  // Heap profiling needs the mutating heap in this process; in process
  // mode executor 0's mutator lives in a daemon, so the profile is off.
  bool profile = params.profile && ctx.role() == spark::DistRole::kLocal;
  WordCountResult result;
  result.run.mode = params.mode;
  int parts = ctx.num_partitions();
  uint64_t per_part = params.total_words / static_cast<uint64_t>(parts);
  int shuffle_id = ctx.shuffle()->RegisterShuffle(parts);
  size_t shuffle_budget = cfg.shuffle_budget_bytes();

  std::unique_ptr<jvm::HeapProfiler> profiler;
  if (profile) {
    profiler = std::make_unique<jvm::HeapProfiler>(
        ctx.executor(0)->heap(), types.tuple2_cls);
  }
  Stopwatch run_sw;

  // -- map stage: count words with eager combining, spill-flushing when
  // the buffer exceeds the shuffle memory budget. A map stage: if an
  // executor crash-wipes later, its deposited chunks are dropped and the
  // lost partitions deterministically re-executed.
  ctx.RunMapStage("map", shuffle_id, [&](spark::TaskContext& tc) {
    jvm::Heap* h = tc.heap();
    bool profiled = profile && tc.executor()->id() == 0;
    std::unique_ptr<Rng> word_rng;
    std::unique_ptr<ZipfSampler> zipf;
    uint64_t task_seed = params.seed + static_cast<uint64_t>(tc.partition());
    if (params.zipf_s > 0) {
      zipf = std::make_unique<ZipfSampler>(params.distinct_keys,
                                           params.zipf_s, task_seed);
    } else {
      word_rng = std::make_unique<Rng>(task_seed);
    }
    auto next_word = [&]() -> int64_t {
      return static_cast<int64_t>(
          zipf ? zipf->Next() : word_rng->NextBounded(params.distinct_keys));
    };
    std::vector<ByteWriter> outs(static_cast<size_t>(parts));
    // Record boundaries for the network shuffle's record-serialized wire
    // codec: Deca chunks are a uniform 16-byte stride, object chunks log
    // each serialized pair's length. Unused under the local shuffle.
    std::vector<net::ChunkMeta> metas(static_cast<size_t>(parts));
    if (deca) {
      for (auto& meta : metas) meta.fixed_record_bytes = 16;
    }
    auto flush_deca = [&](spark::DecaHashShuffleBuffer& buf) {
      buf.ForEach([&](const uint8_t* entry) {
        uint64_t hash = types.ops.deca_key_hash(entry);
        outs[hash % static_cast<uint64_t>(parts)].WriteBytes(entry, 16);
      });
      buf.Clear();
    };
    auto flush_object = [&](spark::ObjectHashShuffleBuffer& buf) {
      buf.ForEach([&](ObjRef k, ObjRef v) {
        uint64_t hash = types.ops.key_hash(h, k);
        size_t r = hash % static_cast<uint64_t>(parts);
        ByteWriter& w = outs[r];
        size_t before = w.size();
        {
          ScopedTimerMs t(&tc.metrics().ser_ms);
          types.ops.serialize_key(h, k, &w);
          types.ops.serialize_value(h, v, &w);
        }
        metas[r].record_lens.push_back(
            static_cast<uint32_t>(w.size() - before));
      });
      buf.Clear();
    };
    if (deca) {
      spark::DecaHashShuffleBuffer buf(h, &types.ops, cfg.deca_page_bytes);
      for (uint64_t i = 0; i < per_part; ++i) {
        int64_t word = next_word();
        int64_t one = 1;
        buf.Insert(reinterpret_cast<const uint8_t*>(&word),
                   reinterpret_cast<const uint8_t*>(&one));
        if (buf.estimated_bytes() > shuffle_budget) flush_deca(buf);
        if (profiled && (i + 1) % params.profile_every == 0) {
          profiler->Sample(run_sw.ElapsedMillis());
        }
      }
      flush_deca(buf);
    } else {
      spark::ObjectHashShuffleBuffer buf(h, &types.ops);
      for (uint64_t i = 0; i < per_part; ++i) {
        int64_t word = next_word();
        HandleScope scope(h);
        // The map UDF emits a Tuple2 per word (paper Figure 8a tracks
        // these); the buffer then keeps only key/value.
        jvm::Handle key = scope.Make(
            h->AllocateInstance(h->registry()->boxed_long_class()));
        h->SetField<int64_t>(key.get(), 0, word);
        jvm::Handle one = scope.Make(
            h->AllocateInstance(h->registry()->boxed_long_class()));
        h->SetField<int64_t>(one.get(), 0, 1);
        jvm::Handle tuple = scope.Make(h->AllocateInstance(types.tuple2_cls));
        h->SetRefField(tuple.get(), 0, key.get());
        h->SetRefField(tuple.get(), 4, one.get());
        buf.Insert(h->GetRefField(tuple.get(), 0),
                   h->GetRefField(tuple.get(), 4));
        if (buf.estimated_bytes() > shuffle_budget) flush_object(buf);
        if (profiled && (i + 1) % params.profile_every == 0) {
          profiler->Sample(run_sw.ElapsedMillis());
        }
      }
      flush_object(buf);
    }
    ScopedTimerMs t(&tc.metrics().shuffle_write_ms);
    for (int r = 0; r < parts; ++r) {
      ctx.shuffle()->PutChunk(shuffle_id, r, tc.partition(),
                              outs[static_cast<size_t>(r)].TakeBuffer(),
                              metas[static_cast<size_t>(r)]);
    }
  });

  result.shuffle_bytes = ctx.ShuffleTotalBytes(shuffle_id);

  // -- reduce stage: merge per-reducer chunks. A collect stage: each
  // task's (total, distinct) blob is gathered in partition order (and
  // broadcast to every process in distributed mode), then folded below.
  auto blobs = ctx.RunCollectStage("reduce", [&](spark::TaskContext& tc)
                                                 -> std::vector<uint8_t> {
    // Accumulate locally and emit at task end, so a retried attempt
    // that failed mid-merge cannot double-count.
    uint64_t total = 0;
    uint64_t distinct = 0;
    jvm::Heap* h = tc.heap();
    const auto& chunks = ctx.shuffle()->GetChunks(shuffle_id, tc.partition());
    if (deca) {
      spark::DecaHashShuffleBuffer buf(h, &types.ops, cfg.deca_page_bytes);
      for (const auto& chunk : chunks) {
        ScopedTimerMs t(&tc.metrics().shuffle_read_ms);
        for (size_t off = 0; off < chunk.size(); off += 16) {
          buf.Insert(chunk.data() + off, chunk.data() + off + 8);
        }
      }
      buf.ForEach([&](const uint8_t* entry) {
        total += static_cast<uint64_t>(LoadRaw<int64_t>(entry + 8));
        ++distinct;
      });
    } else {
      spark::ObjectHashShuffleBuffer buf(h, &types.ops);
      for (const auto& chunk : chunks) {
        ByteReader r(chunk.data(), chunk.size());
        while (!r.AtEnd()) {
          HandleScope scope(h);
          jvm::Handle k, v;
          {
            ScopedTimerMs t(&tc.metrics().deser_ms);
            k = scope.Make(types.ops.deserialize_key(h, &r));
            v = scope.Make(types.ops.deserialize_value(h, &r));
          }
          buf.Insert(k.get(), v.get());
        }
      }
      buf.ForEach([&](ObjRef, ObjRef v) {
        total += static_cast<uint64_t>(h->GetField<int64_t>(v, 0));
        ++distinct;
      });
    }
    ByteWriter w;
    w.WriteVarU64(total);
    w.WriteVarU64(distinct);
    return w.TakeBuffer();
  });
  ctx.shuffle()->Release(shuffle_id);

  uint64_t total = 0;
  uint64_t distinct = 0;
  for (const auto& blob : blobs) {
    ByteReader r(blob.data(), blob.size());
    total += r.ReadVarU64();
    distinct += r.ReadVarU64();
  }

  result.run.exec_ms = run_sw.ElapsedMillis();
  result.total_count = total;
  result.distinct_found = distinct;
  FinalizeResult(&ctx, &result.run);
  if (profiler != nullptr) {
    result.run.object_counts = profiler->object_counts();
    result.run.gc_series = profiler->gc_time_ms();
  }
  return result;
}

}  // namespace deca::workloads
