#ifndef DECA_WORKLOADS_GRAPH_H_
#define DECA_WORKLOADS_GRAPH_H_

#include <cstdint>

#include "core/planner.h"
#include "workloads/common.h"

namespace deca::workloads {

/// The optimizer's decisions for the graph workloads' adjacency data,
/// derived by running the paper's machinery end to end: phased
/// classification of the grouped-value type (VST while the groupByKey
/// buffer builds it, RFST once emitted to the cache — Section 3.4), then
/// the container ownership/decomposability rules (Section 4.3). The
/// expected outcome is the paper's Figure 7(b): the shuffle buffer keeps
/// objects, the cached copy is decomposed.
struct GraphPlan {
  analysis::SizeType buffer_phase_size_type;  // during grouping
  analysis::SizeType cache_phase_size_type;   // after materialization
  core::ContainerLayout shuffle_layout;
  core::ContainerLayout cache_layout;
};

/// Runs the classification + planning pipeline for the adjacency data.
GraphPlan PlanAdjacencyContainers();

/// Parameters for the two iterative graph benchmarks (paper Section 6.3).
/// Graphs are RMAT-generated with power-law degrees; the paper's
/// LiveJournal/WebBase/HiBench graphs are matched by vertex/edge counts.
struct GraphParams {
  uint64_t num_vertices = 1 << 16;
  uint64_t num_edges = 1 << 20;
  int iterations = 10;
  Mode mode = Mode::kSpark;
  spark::SparkConfig spark;
  uint64_t seed = 7;
};

struct PageRankResult {
  RunResult run;
  double rank_sum = 0;           // sum of final ranks (validation)
  uint64_t vertices_ranked = 0;  // vertices with at least one in-edge
  uint64_t adjacency_records = 0;
};

/// PageRank: groupByKey builds cached adjacency lists (the paper's
/// partially decomposable scenario, Figure 7b — the grouping shuffle
/// buffer stays in object form, the cache copy is decomposed under Deca),
/// then every iteration shuffles rank contributions with eager summing.
PageRankResult RunPageRank(const GraphParams& params);

struct ConnectedComponentsResult {
  RunResult run;
  uint64_t components = 0;  // distinct labels after `iterations` rounds
  uint64_t label_updates = 0;
};

/// Connected components via iterative min-label propagation over the same
/// cached adjacency structure.
ConnectedComponentsResult RunConnectedComponents(const GraphParams& params);

}  // namespace deca::workloads

#endif  // DECA_WORKLOADS_GRAPH_H_
