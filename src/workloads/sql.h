#ifndef DECA_WORKLOADS_SQL_H_
#define DECA_WORKLOADS_SQL_H_

#include <cstdint>

#include "workloads/common.h"

namespace deca::workloads {

/// The three contenders of the paper's Table 6.
enum class SqlEngine {
  kSparkRdd,   // hand-written RDD program over row objects
  kSparkSql,   // columnar in-memory tables + serialized aggregation
               // (Spark SQL with Tungsten)
  kDeca,       // row-wise decomposed pages + decomposed shuffle
};

const char* SqlEngineName(SqlEngine e);

/// Scaled-down AMPLab Big Data Benchmark tables (the paper samples the
/// Common Crawl corpus; we generate rows with the same schema shape:
/// fixed-width URL/IP strings, uniform ranks and revenues).
struct SqlParams {
  uint64_t rankings_rows = 200000;
  uint64_t uservisits_rows = 600000;
  int rank_threshold = 100;  // Query 1 predicate: pageRank > threshold
  SqlEngine engine = SqlEngine::kSparkRdd;
  spark::SparkConfig spark;
  uint64_t seed = 2016;
};

struct SqlResult {
  RunResult run;
  uint64_t q1_matches = 0;     // rows passing the Query 1 filter
  double q1_rank_sum = 0;      // checksum of selected pageRanks
  uint64_t q2_groups = 0;      // distinct SUBSTR(sourceIP, 1, 5) groups
  double q2_revenue_sum = 0;   // total aggregated adRevenue
  double q1_exec_ms = 0;
  double q2_exec_ms = 0;
  double q1_gc_ms = 0;
  double q2_gc_ms = 0;
  double cached_mb = 0;
};

/// Runs both exploratory queries of paper Section 6.6 against fully
/// cached tables:
///   Q1: SELECT pageURL, pageRank FROM rankings WHERE pageRank > 100
///   Q2: SELECT SUBSTR(sourceIP,1,5), SUM(adRevenue) FROM uservisits
///       GROUP BY SUBSTR(sourceIP,1,5)
SqlResult RunSqlQueries(const SqlParams& params);

}  // namespace deca::workloads

#endif  // DECA_WORKLOADS_SQL_H_
