#include "workloads/graph.h"

#include <cstring>
#include <set>
#include <unordered_map>

#include "common/clock.h"
#include "common/logging.h"
#include "common/random.h"
#include "analysis/global_classifier.h"
#include "spark/shuffle.h"
#include "workloads/lr.h"

namespace deca::workloads {

using jvm::FieldKind;
using jvm::HandleScope;
using jvm::ObjRef;

namespace {

constexpr int kLinksRddId = 3;

/// Deca adjacency record: [id:i64 | total_degree:u32 | count:u32 |
/// dsts:i64*count]. Hub vertices whose lists exceed one page are split
/// into multiple records carrying the same id and total_degree.
constexpr uint32_t kAdjHeaderBytes = 16;

uint64_t MixHash(uint64_t v) { return v * 0x9e3779b97f4a7c15ULL; }

/// Managed types and shuffle operations for the graph workloads.
struct GraphTypes {
  explicit GraphTypes(jvm::ClassRegistry* registry) {
    vertex_links_cls = registry->RegisterClass(
        "VertexLinks",
        {{"id", FieldKind::kLong}, {"neighbors", FieldKind::kRef}});
    const auto& ci = registry->Get(vertex_links_cls);
    id_off = ci.FieldOffset("id");
    neighbors_off = ci.FieldOffset("neighbors");

    // -- cache swap ops for VertexLinks blocks (object mode).
    uint32_t id_o = id_off;
    uint32_t nb_o = neighbors_off;
    uint32_t cls = vertex_links_cls;
    links_ops.managed_bytes = [id_o, nb_o](jvm::Heap* h,
                                           ObjRef r) -> uint64_t {
      (void)id_o;
      ObjRef nbrs = h->GetRefField(r, nb_o);
      return (jvm::kHeaderBytes + 16) + h->ObjectBytes(nbrs);
    };
    links_ops.serialize = [id_o, nb_o](jvm::Heap* h, ObjRef r,
                                       ByteWriter* w) {
      w->WriteVarI64(h->GetField<int64_t>(r, id_o));
      ObjRef nbrs = h->GetRefField(r, nb_o);
      uint32_t n = h->ArrayLength(nbrs);
      w->WriteVarU64(n);
      w->WriteBytes(h->ArrayData(nbrs), 8ull * n);
    };
    links_ops.deserialize = [cls, id_o, nb_o](jvm::Heap* h,
                                              ByteReader* r) -> ObjRef {
      HandleScope scope(h);
      int64_t id = r->ReadVarI64();
      uint32_t n = static_cast<uint32_t>(r->ReadVarU64());
      jvm::Handle nbrs = scope.Make(
          h->AllocateArray(h->registry()->long_array_class(), n));
      r->ReadBytes(h->ArrayData(nbrs.get()), 8ull * n);
      ObjRef v = h->AllocateInstance(cls);
      h->SetField<int64_t>(v, id_o, id);
      h->SetRefField(v, nb_o, nbrs.get());
      return v;
    };

    // -- (src, dst) edge shuffle (groupByKey; no map-side combine).
    auto long_hash = [](jvm::Heap* h, ObjRef k) -> uint64_t {
      return MixHash(static_cast<uint64_t>(h->GetField<int64_t>(k, 0)));
    };
    auto long_eq = [](jvm::Heap* h, ObjRef a, ObjRef b) {
      return h->GetField<int64_t>(a, 0) == h->GetField<int64_t>(b, 0);
    };
    auto box_entry = [](jvm::Heap*, ObjRef, ObjRef) -> uint64_t {
      return 2 * (jvm::kHeaderBytes + 8) + 8;
    };
    auto ser_long = [](jvm::Heap* h, ObjRef k, ByteWriter* w) {
      w->WriteVarI64(h->GetField<int64_t>(k, 0));
    };
    auto deser_long = [](jvm::Heap* h, ByteReader* r) -> ObjRef {
      ObjRef k = h->AllocateInstance(h->registry()->boxed_long_class());
      h->SetField<int64_t>(k, 0, r->ReadVarI64());
      return k;
    };
    edge_ops.key_hash = long_hash;
    edge_ops.key_equals = long_eq;
    edge_ops.entry_bytes = box_entry;
    edge_ops.serialize_key = ser_long;
    edge_ops.serialize_value = ser_long;
    edge_ops.deserialize_key = deser_long;
    edge_ops.deserialize_value = deser_long;

    // -- (vertex, contribution) sum shuffle for PageRank.
    contrib_ops.key_hash = long_hash;
    contrib_ops.key_equals = long_eq;
    contrib_ops.combine = [](jvm::Heap* h, ObjRef agg, ObjRef v) -> ObjRef {
      double sum = h->GetField<double>(agg, 0) + h->GetField<double>(v, 0);
      ObjRef fresh =
          h->AllocateInstance(h->registry()->boxed_double_class());
      h->SetField<double>(fresh, 0, sum);
      return fresh;
    };
    contrib_ops.entry_bytes = box_entry;
    contrib_ops.serialize_key = ser_long;
    contrib_ops.serialize_value = [](jvm::Heap* h, ObjRef v, ByteWriter* w) {
      w->Write<double>(h->GetField<double>(v, 0));
    };
    contrib_ops.deserialize_key = deser_long;
    contrib_ops.deserialize_value = [](jvm::Heap* h,
                                       ByteReader* r) -> ObjRef {
      ObjRef v = h->AllocateInstance(h->registry()->boxed_double_class());
      h->SetField<double>(v, 0, r->Read<double>());
      return v;
    };
    contrib_ops.deca_key_bytes = 8;
    contrib_ops.deca_value_bytes = 8;
    contrib_ops.deca_key_hash = [](const uint8_t* k) -> uint64_t {
      return MixHash(LoadRaw<uint64_t>(k));
    };
    contrib_ops.deca_combine = [](uint8_t* agg, const uint8_t* v) {
      StoreRaw<double>(agg, LoadRaw<double>(agg) + LoadRaw<double>(v));
    };

    // -- (vertex, label) min shuffle for ConnectedComponents.
    label_ops = contrib_ops;
    label_ops.combine = [](jvm::Heap* h, ObjRef agg, ObjRef v) -> ObjRef {
      int64_t m = std::min(h->GetField<int64_t>(agg, 0),
                           h->GetField<int64_t>(v, 0));
      ObjRef fresh = h->AllocateInstance(h->registry()->boxed_long_class());
      h->SetField<int64_t>(fresh, 0, m);
      return fresh;
    };
    label_ops.serialize_value = ser_long;
    label_ops.deserialize_value = deser_long;
    label_ops.deca_combine = [](uint8_t* agg, const uint8_t* v) {
      StoreRaw<int64_t>(agg,
                        std::min(LoadRaw<int64_t>(agg), LoadRaw<int64_t>(v)));
    };
  }

  uint32_t vertex_links_cls;
  uint32_t id_off, neighbors_off;
  spark::RecordOps links_ops;
  spark::ShuffleOps edge_ops;
  spark::ShuffleOps contrib_ops;
  spark::ShuffleOps label_ops;
};

}  // namespace

GraphPlan PlanAdjacencyContainers() {
  using analysis::CallGraph;
  using analysis::MethodInfo;
  using analysis::Statement;

  // Annotated types: the grouping buffer's value container is a growable
  // ArrayBuffer {size: Int, elems: var Array[Long]}; the cached record is
  // VertexLinks {id: Long, neighbors: val Array[Long]}.
  analysis::TypeUniverse u;
  const auto* larr = u.DefineArray(
      "Array[Long]", {u.Primitive(jvm::FieldKind::kLong)});
  auto* array_buffer = u.DefineClass("ArrayBuffer");
  u.AddField(array_buffer, "size", false,
             {u.Primitive(jvm::FieldKind::kInt)});
  u.AddField(array_buffer, "elems", /*is_final=*/false, {larr});
  auto* vertex_links = u.DefineClass("VertexLinks");
  u.AddField(vertex_links, "id", false,
             {u.Primitive(jvm::FieldKind::kLong)});
  u.AddField(vertex_links, "neighbors", /*is_final=*/true, {larr});

  // Phase 0 (grouping): the combining function appends, reallocating the
  // elems array with data-dependent lengths — classic VST behaviour.
  CallGraph phase0;
  {
    MethodInfo main;
    main.name = "groupByKey.insert";
    main.statements.push_back({Statement::Kind::kNewArrayAssign,
                               {array_buffer, "elems"},
                               larr,
                               analysis::SymExpr::Unknown(),
                               ""});
    main.statements.push_back({Statement::Kind::kFieldAssign,
                               {array_buffer, "elems"},
                               nullptr,
                               {},
                               ""});
    phase0.AddMethod(main);
    phase0.SetEntry("groupByKey.insert");
  }
  // Phase 1 (iterate): the cached VertexLinks are only read.
  CallGraph phase1;
  {
    MethodInfo main;
    main.name = "pagerank.iterate";
    phase1.AddMethod(main);
    phase1.SetEntry("pagerank.iterate");
  }
  analysis::PhasedRefinement phased({&phase0, &phase1});
  GraphPlan plan;
  plan.buffer_phase_size_type = phased.ClassifyInPhase(array_buffer, 0);
  plan.cache_phase_size_type = phased.ClassifyInPhase(vertex_links, 1);

  // Container planning (Section 4.3): the shuffle buffer is created first
  // and holds the same objects the cache later copies out.
  std::vector<core::ContainerSpec> group{
      {"groupByKey-buffer", core::ContainerKind::kShuffleBuffer, 0,
       plan.buffer_phase_size_type, false},
      {"links-cache", core::ContainerKind::kCacheBlock, 1,
       plan.cache_phase_size_type, false},
  };
  auto decisions = core::DecompositionPlanner::Plan(group);
  plan.shuffle_layout = decisions[0].layout;
  plan.cache_layout = decisions[1].layout;
  return plan;
}

namespace {

/// One RMAT edge with the canonical (0.57, 0.19, 0.19, 0.05) quadrant
/// probabilities.
std::pair<uint64_t, uint64_t> RmatEdge(Rng* rng, int scale) {
  uint64_t src = 0, dst = 0;
  for (int i = 0; i < scale; ++i) {
    double r = rng->NextDouble();
    int q = r < 0.57 ? 0 : (r < 0.76 ? 1 : (r < 0.95 ? 2 : 3));
    src = (src << 1) | static_cast<uint64_t>(q >> 1);
    dst = (dst << 1) | static_cast<uint64_t>(q & 1);
  }
  return {src, dst};
}

int ScaleFor(uint64_t vertices) {
  int scale = 1;
  while ((1ull << scale) < vertices) ++scale;
  return scale;
}

/// Builds and caches the adjacency lists: edge generation stage, then a
/// groupByKey stage whose output is cached (decomposed under Deca — the
/// partially decomposable scenario of Figure 7b). Returns total adjacency
/// records cached.
uint64_t BuildAdjacency(spark::SparkContext* ctx, const GraphParams& params,
                        const GraphTypes& types, bool deca) {
  if (deca) {
    // The optimizer's verdict gates the decomposed path (Figure 7b): the
    // grouping buffer must stay in object form, the cache copy may be
    // decomposed.
    GraphPlan plan = PlanAdjacencyContainers();
    DECA_CHECK(plan.shuffle_layout == core::ContainerLayout::kObjects);
    DECA_CHECK(plan.cache_layout == core::ContainerLayout::kDecomposed);
  }
  int parts = ctx->num_partitions();
  int scale = ScaleFor(params.num_vertices);
  uint64_t per_part = params.num_edges / static_cast<uint64_t>(parts);
  int edge_shuffle = ctx->shuffle()->RegisterShuffle(parts);
  const spark::SparkConfig& cfg = ctx->config();

  ctx->RunStage("edges", [&](spark::TaskContext& tc) {
    Rng rng(params.seed + 1000 + static_cast<uint64_t>(tc.partition()));
    std::vector<ByteWriter> outs(static_cast<size_t>(parts));
    for (uint64_t i = 0; i < per_part; ++i) {
      auto [src, dst] = RmatEdge(&rng, scale);
      if (src == dst) continue;  // drop self loops
      ByteWriter& w = outs[MixHash(src) % static_cast<uint64_t>(parts)];
      if (deca) {
        // SFST pair: raw 16-byte segments, no serialization.
        w.Write<int64_t>(static_cast<int64_t>(src));
        w.Write<int64_t>(static_cast<int64_t>(dst));
      } else {
        ScopedTimerMs t(&tc.metrics().ser_ms);
        w.WriteVarI64(static_cast<int64_t>(src));
        w.WriteVarI64(static_cast<int64_t>(dst));
      }
    }
    ScopedTimerMs t(&tc.metrics().shuffle_write_ms);
    for (int r = 0; r < parts; ++r) {
      ctx->shuffle()->PutChunk(edge_shuffle, r, tc.partition(),
                               outs[static_cast<size_t>(r)].TakeBuffer());
    }
  });

  // Per-partition record counts, summed after the barrier (parallel-safe).
  std::vector<uint64_t> part_records(static_cast<size_t>(parts), 0);
  ctx->RunStage("group", [&](spark::TaskContext& tc) {
    jvm::Heap* h = tc.heap();
    // The grouping buffer holds managed objects in BOTH modes: its value
    // arrays are VSTs while being built (paper Section 4.3.3).
    spark::ObjectGroupByBuffer groups(h, &types.edge_ops);
    const auto& chunks =
        ctx->shuffle()->GetChunks(edge_shuffle, tc.partition());
    for (const auto& chunk : chunks) {
      if (deca) {
        for (size_t off = 0; off < chunk.size(); off += 16) {
          HandleScope scope(h);
          jvm::Handle k = scope.Make(
              h->AllocateInstance(h->registry()->boxed_long_class()));
          h->SetField<int64_t>(k.get(), 0,
                               LoadRaw<int64_t>(chunk.data() + off));
          jvm::Handle v = scope.Make(
              h->AllocateInstance(h->registry()->boxed_long_class()));
          h->SetField<int64_t>(v.get(), 0,
                               LoadRaw<int64_t>(chunk.data() + off + 8));
          groups.Insert(k.get(), v.get());
        }
      } else {
        ByteReader r(chunk.data(), chunk.size());
        while (!r.AtEnd()) {
          HandleScope scope(h);
          jvm::Handle k, v;
          {
            ScopedTimerMs t(&tc.metrics().deser_ms);
            k = scope.Make(types.edge_ops.deserialize_key(h, &r));
            v = scope.Make(types.edge_ops.deserialize_value(h, &r));
          }
          groups.Insert(k.get(), v.get());
        }
      }
    }
    uint32_t count = 0;
    if (deca) {
      // Decompose the grouped output straight into cache pages; the
      // object-form shuffle buffer dies at stage end. Sub-blocks of a few
      // MB keep materialization interleaved with eviction.
      int sub = 0;
      uint32_t sub_count = 0;
      auto pages = std::make_shared<core::PageGroup>(h, cfg.deca_page_bytes);
      auto flush = [&]() {
        if (sub_count == 0) return;
        tc.cache()->PutPages({kLinksRddId, tc.partition() * 1024 + sub},
                             pages, sub_count, &tc.metrics());
        pages = std::make_shared<core::PageGroup>(h, cfg.deca_page_bytes);
        sub_count = 0;
        ++sub;
      };
      uint32_t max_per_rec =
          (cfg.deca_page_bytes - kAdjHeaderBytes) / 8;
      groups.ForEach([&](ObjRef key, ObjRef values, uint32_t n) {
        // Page appends may trigger GC; hold the group refs in handles.
        HandleScope inner(h);
        jvm::Handle hvals = inner.Make(values);
        int64_t id = h->GetField<int64_t>(key, 0);
        uint32_t emitted = 0;
        while (emitted < n) {
          uint32_t batch = std::min(n - emitted, max_per_rec);
          core::SegPtr seg =
              pages->Append(kAdjHeaderBytes + 8 * batch);
          uint8_t* p = pages->Resolve(seg);
          StoreRaw<int64_t>(p, id);
          StoreRaw<uint32_t>(p + 8, n);  // total degree
          StoreRaw<uint32_t>(p + 12, batch);
          for (uint32_t j = 0; j < batch; ++j) {
            ObjRef dv = h->GetRefElem(hvals.get(), emitted + j);
            StoreRaw<int64_t>(p + kAdjHeaderBytes + 8ull * j,
                              h->GetField<int64_t>(dv, 0));
          }
          emitted += batch;
          ++count;
          ++sub_count;
        }
        if (pages->used_bytes() >= kPointSubBlockBytes) flush();
      });
      flush();
    } else {
      // Materialize VertexLinks objects into cached Object[] sub-blocks.
      // Pass 1 (no allocation => group order is stable): compute sub-block
      // boundaries by estimated managed bytes.
      std::vector<uint32_t> sub_sizes;
      {
        uint64_t bytes = 0;
        uint32_t in_sub = 0;
        groups.ForEach([&](ObjRef, ObjRef, uint32_t n) {
          bytes += 48 + 8ull * n;
          ++in_sub;
          if (bytes >= kPointSubBlockBytes) {
            sub_sizes.push_back(in_sub);
            bytes = 0;
            in_sub = 0;
          }
        });
        if (in_sub > 0) sub_sizes.push_back(in_sub);
      }
      // Pass 2: fill and cache each sub-block.
      int sub = 0;
      uint32_t group_idx = 0;
      uint32_t filled = 0;
      HandleScope scope(h);
      jvm::Handle arr = scope.Make(
          sub_sizes.empty()
              ? jvm::kNullRef
              : h->AllocateArray(h->registry()->ref_array_class(),
                                 sub_sizes[0]));
      groups.ForEach([&](ObjRef key, ObjRef values, uint32_t n) {
        // Allocations below may trigger GC; hold the group refs in handles.
        HandleScope inner(h);
        jvm::Handle hvals = inner.Make(values);
        int64_t id = h->GetField<int64_t>(key, 0);
        jvm::Handle nbrs = inner.Make(
            h->AllocateArray(h->registry()->long_array_class(), n));
        for (uint32_t j = 0; j < n; ++j) {
          ObjRef dv = h->GetRefElem(hvals.get(), j);
          h->SetElem<int64_t>(nbrs.get(), j, h->GetField<int64_t>(dv, 0));
        }
        jvm::Handle links =
            inner.Make(h->AllocateInstance(types.vertex_links_cls));
        h->SetField<int64_t>(links.get(), types.id_off, id);
        h->SetRefField(links.get(), types.neighbors_off, nbrs.get());
        h->SetRefElem(arr.get(), filled, links.get());
        ++filled;
        ++group_idx;
        ++count;
        if (filled == sub_sizes[static_cast<size_t>(sub)]) {
          tc.cache()->PutObjects({kLinksRddId, tc.partition() * 1024 + sub},
                                 arr.get(), filled, &tc.metrics());
          ++sub;
          filled = 0;
          if (static_cast<size_t>(sub) < sub_sizes.size()) {
            arr.set(h->AllocateArray(h->registry()->ref_array_class(),
                                     sub_sizes[static_cast<size_t>(sub)]));
          }
        }
      });
    }
    part_records[static_cast<size_t>(tc.partition())] = count;
  });
  ctx->shuffle()->Release(edge_shuffle);
  uint64_t total_records = 0;
  for (uint64_t c : part_records) total_records += c;
  return total_records;
}

}  // namespace

PageRankResult RunPageRank(const GraphParams& params) {
  spark::SparkConfig cfg = params.spark;
  ApplyMode(params.mode, &cfg);
  spark::SparkContext ctx(cfg);
  GraphTypes types(ctx.registry());
  ctx.RegisterCachedRdd(kLinksRddId, &types.links_ops);
  bool deca = params.mode == Mode::kDeca;

  PageRankResult result;
  result.run.mode = params.mode;
  int parts = ctx.num_partitions();

  Stopwatch load_sw;
  result.adjacency_records = BuildAdjacency(&ctx, params, types, deca);
  result.run.load_ms = load_sw.ElapsedMillis();
  ctx.ResetMetrics();

  Stopwatch exec_sw;
  int prev_shuffle = -1;
  for (int iter = 0; iter < params.iterations; ++iter) {
    int next_shuffle = ctx.shuffle()->RegisterShuffle(parts);
    ctx.RunStage("rank-iter", [&](spark::TaskContext& tc) {
      jvm::Heap* h = tc.heap();
      // 1. Aggregate the previous iteration's contributions into this
      //    partition's rank table.
      std::unordered_map<int64_t, double> ranks;
      if (prev_shuffle >= 0) {
        const auto& chunks =
            ctx.shuffle()->GetChunks(prev_shuffle, tc.partition());
        if (deca) {
          spark::DecaHashShuffleBuffer buf(h, &types.contrib_ops,
                                           cfg.deca_page_bytes);
          for (const auto& chunk : chunks) {
            ScopedTimerMs t(&tc.metrics().shuffle_read_ms);
            for (size_t off = 0; off < chunk.size(); off += 16) {
              buf.Insert(chunk.data() + off, chunk.data() + off + 8);
            }
          }
          buf.ForEach([&](const uint8_t* e) {
            ranks[LoadRaw<int64_t>(e)] =
                0.15 + 0.85 * LoadRaw<double>(e + 8);
          });
        } else {
          spark::ObjectHashShuffleBuffer buf(h, &types.contrib_ops);
          for (const auto& chunk : chunks) {
            ByteReader r(chunk.data(), chunk.size());
            while (!r.AtEnd()) {
              HandleScope scope(h);
              jvm::Handle k, v;
              {
                ScopedTimerMs t(&tc.metrics().deser_ms);
                k = scope.Make(types.contrib_ops.deserialize_key(h, &r));
                v = scope.Make(types.contrib_ops.deserialize_value(h, &r));
              }
              buf.Insert(k.get(), v.get());
            }
          }
          buf.ForEach([&](ObjRef k, ObjRef v) {
            ranks[h->GetField<int64_t>(k, 0)] =
                0.15 + 0.85 * h->GetField<double>(v, 0);
          });
        }
      }
      auto rank_of = [&](int64_t v) -> double {
        if (iter == 0) return 1.0;
        auto it = ranks.find(v);
        return it == ranks.end() ? 0.15 : it->second;
      };

      // 2. Scan the cached adjacency sub-blocks and emit contributions.
      std::vector<ByteWriter> outs(static_cast<size_t>(parts));
      if (deca) {
        spark::DecaHashShuffleBuffer buf(h, &types.contrib_ops,
                                         cfg.deca_page_bytes);
        ForEachPointBlock(tc, kLinksRddId,
                          [&](const spark::LoadedBlock& block) {
          core::PageScanner scan(block.pages.get());
          while (!scan.AtEnd()) {
            const uint8_t* p = scan.Cur();
            int64_t id = LoadRaw<int64_t>(p);
            uint32_t degree = LoadRaw<uint32_t>(p + 8);
            uint32_t n = LoadRaw<uint32_t>(p + 12);
            double contrib = rank_of(id) / degree;
            for (uint32_t j = 0; j < n; ++j) {
              int64_t dst = LoadRaw<int64_t>(p + kAdjHeaderBytes + 8ull * j);
              buf.Insert(reinterpret_cast<const uint8_t*>(&dst),
                         reinterpret_cast<const uint8_t*>(&contrib));
            }
            scan.Advance(kAdjHeaderBytes + 8 * n);
          }
        });
        buf.ForEach([&](const uint8_t* e) {
          uint64_t hash = types.contrib_ops.deca_key_hash(e);
          outs[hash % static_cast<uint64_t>(parts)].WriteBytes(e, 16);
        });
      } else {
        spark::ObjectHashShuffleBuffer buf(h, &types.contrib_ops);
        auto process_links = [&](ObjRef links) {
          HandleScope inner(h);
          jvm::Handle hl = inner.Make(links);
          int64_t id = h->GetField<int64_t>(hl.get(), types.id_off);
          double contrib;
          {
            ObjRef nbrs = h->GetRefField(hl.get(), types.neighbors_off);
            contrib = rank_of(id) / h->ArrayLength(nbrs);
          }
          uint32_t n =
              h->ArrayLength(h->GetRefField(hl.get(), types.neighbors_off));
          for (uint32_t j = 0; j < n; ++j) {
            ObjRef nbrs = h->GetRefField(hl.get(), types.neighbors_off);
            int64_t dst = h->GetElem<int64_t>(nbrs, j);
            HandleScope pair_scope(h);
            jvm::Handle k = pair_scope.Make(
                h->AllocateInstance(h->registry()->boxed_long_class()));
            h->SetField<int64_t>(k.get(), 0, dst);
            jvm::Handle v = pair_scope.Make(
                h->AllocateInstance(h->registry()->boxed_double_class()));
            h->SetField<double>(v.get(), 0, contrib);
            buf.Insert(k.get(), v.get());
          }
        };
        ForEachPointBlock(tc, kLinksRddId,
                          [&](const spark::LoadedBlock& block) {
          HandleScope scope(h);
          if (block.level == spark::StorageLevel::kMemoryObjects) {
            jvm::Handle arr = scope.Make(block.object_array);
            for (uint32_t i = 0; i < block.count; ++i) {
              process_links(h->GetRefElem(arr.get(), i));
            }
          } else {
            // SparkSer: deserialize every record each iteration.
            jvm::Handle bytes = scope.Make(block.serialized);
            size_t size = h->ArrayLength(bytes.get());
            std::vector<uint8_t> snapshot(size);
            std::memcpy(snapshot.data(), h->ArrayData(bytes.get()), size);
            ByteReader r(snapshot.data(), size);
            for (uint32_t i = 0; i < block.count; ++i) {
              ObjRef links;
              {
                ScopedTimerMs t(&tc.metrics().deser_ms);
                links = types.links_ops.deserialize(h, &r);
              }
              process_links(links);
            }
          }
        });
        buf.ForEach([&](ObjRef k, ObjRef v) {
          uint64_t hash = types.contrib_ops.key_hash(h, k);
          ByteWriter& w = outs[hash % static_cast<uint64_t>(parts)];
          ScopedTimerMs t(&tc.metrics().ser_ms);
          types.contrib_ops.serialize_key(h, k, &w);
          types.contrib_ops.serialize_value(h, v, &w);
        });
      }
      {
        ScopedTimerMs t(&tc.metrics().shuffle_write_ms);
        for (int r = 0; r < parts; ++r) {
          ctx.shuffle()->PutChunk(next_shuffle, r, tc.partition(),
                                  outs[static_cast<size_t>(r)].TakeBuffer());
        }
      }
    });
    if (prev_shuffle >= 0) ctx.shuffle()->Release(prev_shuffle);
    prev_shuffle = next_shuffle;
  }

  // Final aggregation: fold the last contributions into ranks.
  // Per-partition slots folded in partition order after the barrier so
  // the float sum is identical in parallel mode.
  std::vector<double> part_rank_sum(static_cast<size_t>(parts), 0.0);
  std::vector<uint64_t> part_ranked(static_cast<size_t>(parts), 0);
  ctx.RunStage("finalize", [&](spark::TaskContext& tc) {
    double& rank_sum = part_rank_sum[static_cast<size_t>(tc.partition())];
    uint64_t& ranked = part_ranked[static_cast<size_t>(tc.partition())];
    jvm::Heap* h = tc.heap();
    const auto& chunks =
        ctx.shuffle()->GetChunks(prev_shuffle, tc.partition());
    if (deca) {
      spark::DecaHashShuffleBuffer buf(h, &types.contrib_ops,
                                       cfg.deca_page_bytes);
      for (const auto& chunk : chunks) {
        for (size_t off = 0; off < chunk.size(); off += 16) {
          buf.Insert(chunk.data() + off, chunk.data() + off + 8);
        }
      }
      buf.ForEach([&](const uint8_t* e) {
        rank_sum += 0.15 + 0.85 * LoadRaw<double>(e + 8);
        ++ranked;
      });
    } else {
      spark::ObjectHashShuffleBuffer buf(h, &types.contrib_ops);
      for (const auto& chunk : chunks) {
        ByteReader r(chunk.data(), chunk.size());
        while (!r.AtEnd()) {
          HandleScope scope(h);
          jvm::Handle k = scope.Make(types.contrib_ops.deserialize_key(h, &r));
          jvm::Handle v =
              scope.Make(types.contrib_ops.deserialize_value(h, &r));
          buf.Insert(k.get(), v.get());
        }
      }
      buf.ForEach([&](ObjRef, ObjRef v) {
        rank_sum += 0.15 + 0.85 * h->GetField<double>(v, 0);
        ++ranked;
      });
    }
  });
  ctx.shuffle()->Release(prev_shuffle);

  double rank_sum = 0;
  uint64_t ranked = 0;
  for (int p = 0; p < parts; ++p) {
    rank_sum += part_rank_sum[static_cast<size_t>(p)];
    ranked += part_ranked[static_cast<size_t>(p)];
  }
  result.run.exec_ms = exec_sw.ElapsedMillis();
  result.rank_sum = rank_sum;
  result.vertices_ranked = ranked;
  FinalizeResult(&ctx, &result.run);
  return result;
}

ConnectedComponentsResult RunConnectedComponents(const GraphParams& params) {
  spark::SparkConfig cfg = params.spark;
  ApplyMode(params.mode, &cfg);
  spark::SparkContext ctx(cfg);
  GraphTypes types(ctx.registry());
  ctx.RegisterCachedRdd(kLinksRddId, &types.links_ops);
  bool deca = params.mode == Mode::kDeca;

  ConnectedComponentsResult result;
  result.run.mode = params.mode;
  int parts = ctx.num_partitions();

  Stopwatch load_sw;
  BuildAdjacency(&ctx, params, types, deca);
  result.run.load_ms = load_sw.ElapsedMillis();
  ctx.ResetMetrics();

  // Per-partition vertex labels, kept across iterations (vertices default
  // to their own id).
  std::vector<std::unordered_map<int64_t, int64_t>> labels(
      static_cast<size_t>(parts));
  auto label_of = [&](int p, int64_t v) -> int64_t {
    auto& map = labels[static_cast<size_t>(p)];
    auto it = map.find(v);
    return it == map.end() ? v : it->second;
  };

  Stopwatch exec_sw;
  int prev_shuffle = -1;
  uint64_t total_updates = 0;
  for (int iter = 0; iter < params.iterations; ++iter) {
    int next_shuffle = ctx.shuffle()->RegisterShuffle(parts);
    std::vector<uint64_t> part_updates(static_cast<size_t>(parts), 0);
    ctx.RunStage("cc-iter", [&](spark::TaskContext& tc) {
      jvm::Heap* h = tc.heap();
      int p = tc.partition();
      uint64_t& updates = part_updates[static_cast<size_t>(p)];
      // 1. Apply incoming label minima.
      if (prev_shuffle >= 0) {
        const auto& chunks = ctx.shuffle()->GetChunks(prev_shuffle, p);
        auto apply = [&](int64_t v, int64_t l) {
          int64_t cur = label_of(p, v);
          if (l < cur) {
            labels[static_cast<size_t>(p)][v] = l;
            ++updates;
          }
        };
        if (deca) {
          spark::DecaHashShuffleBuffer buf(h, &types.label_ops,
                                           cfg.deca_page_bytes);
          for (const auto& chunk : chunks) {
            ScopedTimerMs t(&tc.metrics().shuffle_read_ms);
            for (size_t off = 0; off < chunk.size(); off += 16) {
              buf.Insert(chunk.data() + off, chunk.data() + off + 8);
            }
          }
          buf.ForEach([&](const uint8_t* e) {
            apply(LoadRaw<int64_t>(e), LoadRaw<int64_t>(e + 8));
          });
        } else {
          spark::ObjectHashShuffleBuffer buf(h, &types.label_ops);
          for (const auto& chunk : chunks) {
            ByteReader r(chunk.data(), chunk.size());
            while (!r.AtEnd()) {
              HandleScope scope(h);
              jvm::Handle k, v;
              {
                ScopedTimerMs t(&tc.metrics().deser_ms);
                k = scope.Make(types.label_ops.deserialize_key(h, &r));
                v = scope.Make(types.label_ops.deserialize_value(h, &r));
              }
              buf.Insert(k.get(), v.get());
            }
          }
          buf.ForEach([&](ObjRef k, ObjRef v) {
            apply(h->GetField<int64_t>(k, 0), h->GetField<int64_t>(v, 0));
          });
        }
      }
      // 2. Propagate labels along edges (over all adjacency sub-blocks).
      std::vector<ByteWriter> outs(static_cast<size_t>(parts));
      if (deca) {
        spark::DecaHashShuffleBuffer buf(h, &types.label_ops,
                                         cfg.deca_page_bytes);
        ForEachPointBlock(tc, kLinksRddId,
                          [&](const spark::LoadedBlock& block) {
          core::PageScanner scan(block.pages.get());
          while (!scan.AtEnd()) {
            const uint8_t* rec = scan.Cur();
            int64_t id = LoadRaw<int64_t>(rec);
            uint32_t n = LoadRaw<uint32_t>(rec + 12);
            int64_t l = label_of(p, id);
            for (uint32_t j = 0; j < n; ++j) {
              int64_t dst =
                  LoadRaw<int64_t>(rec + kAdjHeaderBytes + 8ull * j);
              buf.Insert(reinterpret_cast<const uint8_t*>(&dst),
                         reinterpret_cast<const uint8_t*>(&l));
            }
            scan.Advance(kAdjHeaderBytes + 8 * n);
          }
        });
        buf.ForEach([&](const uint8_t* e) {
          uint64_t hash = types.label_ops.deca_key_hash(e);
          outs[hash % static_cast<uint64_t>(parts)].WriteBytes(e, 16);
        });
      } else {
        spark::ObjectHashShuffleBuffer buf(h, &types.label_ops);
        auto process_links = [&](ObjRef links) {
          HandleScope inner(h);
          jvm::Handle hl = inner.Make(links);
          int64_t id = h->GetField<int64_t>(hl.get(), types.id_off);
          int64_t l = label_of(p, id);
          uint32_t n =
              h->ArrayLength(h->GetRefField(hl.get(), types.neighbors_off));
          for (uint32_t j = 0; j < n; ++j) {
            ObjRef nbrs = h->GetRefField(hl.get(), types.neighbors_off);
            int64_t dst = h->GetElem<int64_t>(nbrs, j);
            HandleScope pair_scope(h);
            jvm::Handle k = pair_scope.Make(
                h->AllocateInstance(h->registry()->boxed_long_class()));
            h->SetField<int64_t>(k.get(), 0, dst);
            jvm::Handle v = pair_scope.Make(
                h->AllocateInstance(h->registry()->boxed_long_class()));
            h->SetField<int64_t>(v.get(), 0, l);
            buf.Insert(k.get(), v.get());
          }
        };
        ForEachPointBlock(tc, kLinksRddId,
                          [&](const spark::LoadedBlock& block) {
          HandleScope scope(h);
          if (block.level == spark::StorageLevel::kMemoryObjects) {
            jvm::Handle arr = scope.Make(block.object_array);
            for (uint32_t i = 0; i < block.count; ++i) {
              process_links(h->GetRefElem(arr.get(), i));
            }
          } else {
            jvm::Handle bytes = scope.Make(block.serialized);
            size_t size = h->ArrayLength(bytes.get());
            std::vector<uint8_t> snapshot(size);
            std::memcpy(snapshot.data(), h->ArrayData(bytes.get()), size);
            ByteReader r(snapshot.data(), size);
            for (uint32_t i = 0; i < block.count; ++i) {
              ObjRef links;
              {
                ScopedTimerMs t(&tc.metrics().deser_ms);
                links = types.links_ops.deserialize(h, &r);
              }
              process_links(links);
            }
          }
        });
        buf.ForEach([&](ObjRef k, ObjRef v) {
          uint64_t hash = types.label_ops.key_hash(h, k);
          ByteWriter& w = outs[hash % static_cast<uint64_t>(parts)];
          ScopedTimerMs t(&tc.metrics().ser_ms);
          types.label_ops.serialize_key(h, k, &w);
          types.label_ops.serialize_value(h, v, &w);
        });
      }
      {
        ScopedTimerMs t(&tc.metrics().shuffle_write_ms);
        for (int r = 0; r < parts; ++r) {
          ctx.shuffle()->PutChunk(next_shuffle, r, tc.partition(),
                                  outs[static_cast<size_t>(r)].TakeBuffer());
        }
      }
    });
    if (prev_shuffle >= 0) ctx.shuffle()->Release(prev_shuffle);
    prev_shuffle = next_shuffle;
    uint64_t updates = 0;
    for (uint64_t u : part_updates) updates += u;
    total_updates += updates;
    if (iter > 0 && updates == 0) break;
  }

  // Apply the final round of messages so labels are consistent.
  std::vector<uint64_t> final_updates(static_cast<size_t>(parts), 0);
  ctx.RunStage("cc-final", [&](spark::TaskContext& tc) {
    jvm::Heap* h = tc.heap();
    int p = tc.partition();
    const auto& chunks = ctx.shuffle()->GetChunks(prev_shuffle, p);
    auto apply = [&](int64_t v, int64_t l) {
      if (l < label_of(p, v)) {
        labels[static_cast<size_t>(p)][v] = l;
        ++final_updates[static_cast<size_t>(p)];
      }
    };
    if (deca) {
      for (const auto& chunk : chunks) {
        for (size_t off = 0; off < chunk.size(); off += 16) {
          apply(LoadRaw<int64_t>(chunk.data() + off),
                LoadRaw<int64_t>(chunk.data() + off + 8));
        }
      }
    } else {
      for (const auto& chunk : chunks) {
        ByteReader r(chunk.data(), chunk.size());
        while (!r.AtEnd()) {
          HandleScope scope(h);
          jvm::Handle k = scope.Make(types.label_ops.deserialize_key(h, &r));
          jvm::Handle v =
              scope.Make(types.label_ops.deserialize_value(h, &r));
          apply(h->GetField<int64_t>(k.get(), 0),
                h->GetField<int64_t>(v.get(), 0));
        }
      }
    }
  });
  ctx.shuffle()->Release(prev_shuffle);
  for (uint64_t u : final_updates) total_updates += u;

  // Count distinct labels among all labelled vertices.
  std::set<int64_t> distinct;
  for (const auto& map : labels) {
    for (const auto& [v, l] : map) {
      (void)v;
      distinct.insert(l);
    }
  }
  result.run.exec_ms = exec_sw.ElapsedMillis();
  result.components = distinct.size();
  result.label_updates = total_updates;
  FinalizeResult(&ctx, &result.run);
  return result;
}

}  // namespace deca::workloads
