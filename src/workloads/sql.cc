#include "workloads/sql.h"

#include <cstring>

#include "common/clock.h"
#include "common/logging.h"
#include "common/random.h"
#include "spark/shuffle.h"

namespace deca::workloads {

using jvm::FieldKind;
using jvm::HandleScope;
using jvm::ObjRef;

namespace {

constexpr int kRankingsRddId = 10;
constexpr int kVisitsRddId = 11;
constexpr uint32_t kUrlBytes = 24;
constexpr uint32_t kIpBytes = 16;  // 15 significant chars, padded
// Deca row widths.
constexpr uint32_t kRankingRowBytes = 8 + kUrlBytes;        // rank,dur,url
constexpr uint32_t kVisitRowBytes = 16 + kIpBytes + kUrlBytes;

/// Managed row classes + shuffle ops for Query 2's (ipPrefix, revenue)
/// aggregation.
struct SqlTypes {
  explicit SqlTypes(jvm::ClassRegistry* registry) {
    ranking_cls = registry->RegisterClass(
        "Ranking", {{"pageRank", FieldKind::kInt},
                    {"avgDuration", FieldKind::kInt},
                    {"pageURL", FieldKind::kRef}});
    visit_cls = registry->RegisterClass(
        "UserVisit", {{"visitDate", FieldKind::kLong},
                      {"adRevenue", FieldKind::kDouble},
                      {"sourceIP", FieldKind::kRef},
                      {"destURL", FieldKind::kRef}});
    const auto& rc = registry->Get(ranking_cls);
    r_rank_off = rc.FieldOffset("pageRank");
    r_dur_off = rc.FieldOffset("avgDuration");
    r_url_off = rc.FieldOffset("pageURL");
    const auto& vc = registry->Get(visit_cls);
    v_date_off = vc.FieldOffset("visitDate");
    v_rev_off = vc.FieldOffset("adRevenue");
    v_ip_off = vc.FieldOffset("sourceIP");
    v_url_off = vc.FieldOffset("destURL");

    // Swap ops (only needed if budgets force eviction; tables normally fit).
    uint32_t rr = r_rank_off, rd = r_dur_off, ru = r_url_off;
    uint32_t rcls = ranking_cls;
    rankings_ops.managed_bytes = [](jvm::Heap*, ObjRef) -> uint64_t {
      return (jvm::kHeaderBytes + 16) + (jvm::kHeaderBytes + kUrlBytes);
    };
    rankings_ops.serialize = [rr, rd, ru](jvm::Heap* h, ObjRef r,
                                          ByteWriter* w) {
      w->Write<int32_t>(h->GetField<int32_t>(r, rr));
      w->Write<int32_t>(h->GetField<int32_t>(r, rd));
      w->WriteBytes(h->ArrayData(h->GetRefField(r, ru)), kUrlBytes);
    };
    rankings_ops.deserialize = [rr, rd, ru, rcls](jvm::Heap* h,
                                                  ByteReader* rd_in) -> ObjRef {
      HandleScope scope(h);
      int32_t rank = rd_in->Read<int32_t>();
      int32_t dur = rd_in->Read<int32_t>();
      jvm::Handle url = scope.Make(
          h->AllocateArray(h->registry()->byte_array_class(), kUrlBytes));
      rd_in->ReadBytes(h->ArrayData(url.get()), kUrlBytes);
      ObjRef rec = h->AllocateInstance(rcls);
      h->SetField<int32_t>(rec, rr, rank);
      h->SetField<int32_t>(rec, rd, dur);
      h->SetRefField(rec, ru, url.get());
      return rec;
    };
    uint32_t vd = v_date_off, vr = v_rev_off, vi = v_ip_off, vu = v_url_off;
    uint32_t vcls = visit_cls;
    visits_ops.managed_bytes = [](jvm::Heap*, ObjRef) -> uint64_t {
      return (jvm::kHeaderBytes + 24) + (jvm::kHeaderBytes + kIpBytes) +
             (jvm::kHeaderBytes + kUrlBytes);
    };
    visits_ops.serialize = [vd, vr, vi, vu](jvm::Heap* h, ObjRef r,
                                            ByteWriter* w) {
      w->Write<int64_t>(h->GetField<int64_t>(r, vd));
      w->Write<double>(h->GetField<double>(r, vr));
      w->WriteBytes(h->ArrayData(h->GetRefField(r, vi)), kIpBytes);
      w->WriteBytes(h->ArrayData(h->GetRefField(r, vu)), kUrlBytes);
    };
    visits_ops.deserialize = [vd, vr, vi, vu, vcls](
                                 jvm::Heap* h, ByteReader* rd_in) -> ObjRef {
      HandleScope scope(h);
      int64_t date = rd_in->Read<int64_t>();
      double rev = rd_in->Read<double>();
      jvm::Handle ip = scope.Make(
          h->AllocateArray(h->registry()->byte_array_class(), kIpBytes));
      rd_in->ReadBytes(h->ArrayData(ip.get()), kIpBytes);
      jvm::Handle url = scope.Make(
          h->AllocateArray(h->registry()->byte_array_class(), kUrlBytes));
      rd_in->ReadBytes(h->ArrayData(url.get()), kUrlBytes);
      ObjRef rec = h->AllocateInstance(vcls);
      h->SetField<int64_t>(rec, vd, date);
      h->SetField<double>(rec, vr, rev);
      h->SetRefField(rec, vi, ip.get());
      h->SetRefField(rec, vu, url.get());
      return rec;
    };

    // Q2 shuffle ops: key = 5-char IP prefix packed into i64, value =
    // revenue sum.
    agg_ops.key_hash = [](jvm::Heap* h, ObjRef k) -> uint64_t {
      return static_cast<uint64_t>(h->GetField<int64_t>(k, 0)) *
             0x9e3779b97f4a7c15ULL;
    };
    agg_ops.key_equals = [](jvm::Heap* h, ObjRef a, ObjRef b) {
      return h->GetField<int64_t>(a, 0) == h->GetField<int64_t>(b, 0);
    };
    agg_ops.combine = [](jvm::Heap* h, ObjRef agg, ObjRef v) -> ObjRef {
      double sum = h->GetField<double>(agg, 0) + h->GetField<double>(v, 0);
      ObjRef fresh =
          h->AllocateInstance(h->registry()->boxed_double_class());
      h->SetField<double>(fresh, 0, sum);
      return fresh;
    };
    agg_ops.entry_bytes = [](jvm::Heap*, ObjRef, ObjRef) -> uint64_t {
      return 2 * (jvm::kHeaderBytes + 8) + 8;
    };
    agg_ops.serialize_key = [](jvm::Heap* h, ObjRef k, ByteWriter* w) {
      w->Write<int64_t>(h->GetField<int64_t>(k, 0));
    };
    agg_ops.serialize_value = [](jvm::Heap* h, ObjRef v, ByteWriter* w) {
      w->Write<double>(h->GetField<double>(v, 0));
    };
    agg_ops.deserialize_key = [](jvm::Heap* h, ByteReader* r) -> ObjRef {
      ObjRef k = h->AllocateInstance(h->registry()->boxed_long_class());
      h->SetField<int64_t>(k, 0, r->Read<int64_t>());
      return k;
    };
    agg_ops.deserialize_value = [](jvm::Heap* h, ByteReader* r) -> ObjRef {
      ObjRef v = h->AllocateInstance(h->registry()->boxed_double_class());
      h->SetField<double>(v, 0, r->Read<double>());
      return v;
    };
    agg_ops.deca_key_bytes = 8;
    agg_ops.deca_value_bytes = 8;
    agg_ops.deca_key_hash = [](const uint8_t* k) -> uint64_t {
      return LoadRaw<uint64_t>(k) * 0x9e3779b97f4a7c15ULL;
    };
    agg_ops.deca_combine = [](uint8_t* agg, const uint8_t* v) {
      StoreRaw<double>(agg, LoadRaw<double>(agg) + LoadRaw<double>(v));
    };
  }

  uint32_t ranking_cls, visit_cls;
  uint32_t r_rank_off, r_dur_off, r_url_off;
  uint32_t v_date_off, v_rev_off, v_ip_off, v_url_off;
  spark::RecordOps rankings_ops, visits_ops;
  spark::ShuffleOps agg_ops;
};

/// A Spark-SQL-style cached columnar table store: one managed array per
/// column per partition, so the GC sees a handful of objects per block
/// regardless of row count (the paper's "serialized column-oriented
/// format"). Each executor heap gets its own root provider holding the
/// column arrays of the partitions it executes.
struct ColumnarTables {
  void Register(spark::SparkContext* ctx) {
    providers.resize(static_cast<size_t>(ctx->num_executors()));
    for (int e = 0; e < ctx->num_executors(); ++e) {
      providers[static_cast<size_t>(e)] =
          std::make_unique<jvm::VectorRootProvider>();
      ctx->executor(e)->heap()->AddRootProvider(
          providers[static_cast<size_t>(e)].get());
    }
    int parts = ctx->num_partitions();
    rankings_counts.resize(static_cast<size_t>(parts));
    visits_counts.resize(static_cast<size_t>(parts));
    rankings_base.resize(static_cast<size_t>(parts));
    visits_base.resize(static_cast<size_t>(parts));
  }

  void Unregister(spark::SparkContext* ctx) {
    for (int e = 0; e < ctx->num_executors(); ++e) {
      ctx->executor(e)->heap()->RemoveRootProvider(
          providers[static_cast<size_t>(e)].get());
    }
  }

  std::vector<ObjRef>& refs_for(spark::TaskContext* tc) {
    return providers[static_cast<size_t>(tc->executor()->id())]->refs();
  }

  // Per partition: rankings {ranks int[], durs int[], urls byte[]} then
  // uservisits {dates long[], revs double[], ips byte[], urls byte[]};
  // bases index into the owning executor's provider refs.
  std::vector<std::unique_ptr<jvm::VectorRootProvider>> providers;
  std::vector<uint32_t> rankings_counts;
  std::vector<uint32_t> visits_counts;
  std::vector<size_t> rankings_base;
  std::vector<size_t> visits_base;
  uint64_t bytes = 0;
};

void FillIp(Rng* rng, uint8_t* out) {
  // "ddd.ddd.ddd.ddd" style fixed-width address.
  for (uint32_t i = 0; i < 15; ++i) {
    out[i] = (i == 3 || i == 7 || i == 11)
                 ? '.'
                 : static_cast<uint8_t>('0' + rng->NextBounded(10));
  }
  out[15] = 0;
}

void FillUrl(Rng* rng, uint8_t* out) {
  static const char alphabet[] = "abcdefghijklmnopqrstuvwxyz";
  std::memcpy(out, "http://", 7);
  for (uint32_t i = 7; i < kUrlBytes; ++i) {
    out[i] = static_cast<uint8_t>(alphabet[rng->NextBounded(26)]);
  }
}

int64_t IpPrefixKey(const uint8_t* ip) {
  // SUBSTR(sourceIP, 1, 5) packed into an integer key.
  int64_t key = 0;
  for (int i = 0; i < 5; ++i) key = (key << 8) | ip[i];
  return key;
}

}  // namespace

const char* SqlEngineName(SqlEngine e) {
  switch (e) {
    case SqlEngine::kSparkRdd:
      return "Spark";
    case SqlEngine::kSparkSql:
      return "SparkSQL";
    case SqlEngine::kDeca:
      return "Deca";
  }
  return "?";
}

SqlResult RunSqlQueries(const SqlParams& params) {
  spark::SparkConfig cfg = params.spark;
  cfg.cache_level = params.engine == SqlEngine::kDeca
                        ? spark::StorageLevel::kDecaPages
                        : spark::StorageLevel::kMemoryObjects;
  spark::SparkContext ctx(cfg);
  SqlTypes types(ctx.registry());
  ctx.RegisterCachedRdd(kRankingsRddId, &types.rankings_ops);
  ctx.RegisterCachedRdd(kVisitsRddId, &types.visits_ops);

  SqlResult result;
  int parts = ctx.num_partitions();
  uint64_t ranks_per_part =
      params.rankings_rows / static_cast<uint64_t>(parts);
  uint64_t visits_per_part =
      params.uservisits_rows / static_cast<uint64_t>(parts);

  ColumnarTables columnar;
  if (params.engine == SqlEngine::kSparkSql) columnar.Register(&ctx);

  // -- load & cache both tables.
  ctx.RunStage("load", [&](spark::TaskContext& tc) {
    jvm::Heap* h = tc.heap();
    Rng rng(params.seed + static_cast<uint64_t>(tc.partition()));
    uint8_t url[kUrlBytes];
    uint8_t ip[kIpBytes];
    switch (params.engine) {
      case SqlEngine::kSparkRdd: {
        HandleScope scope(h);
        jvm::Handle rarr = scope.Make(h->AllocateArray(
            h->registry()->ref_array_class(),
            static_cast<uint32_t>(ranks_per_part)));
        for (uint64_t i = 0; i < ranks_per_part; ++i) {
          HandleScope inner(h);
          FillUrl(&rng, url);
          jvm::Handle urlh = inner.Make(h->AllocateArray(
              h->registry()->byte_array_class(), kUrlBytes));
          std::memcpy(h->ArrayData(urlh.get()), url, kUrlBytes);
          ObjRef rec = h->AllocateInstance(types.ranking_cls);
          h->SetField<int32_t>(rec, types.r_rank_off,
                               static_cast<int32_t>(rng.NextBounded(1000)));
          h->SetField<int32_t>(rec, types.r_dur_off,
                               static_cast<int32_t>(rng.NextBounded(100)));
          h->SetRefField(rec, types.r_url_off, urlh.get());
          h->SetRefElem(rarr.get(), static_cast<uint32_t>(i), rec);
        }
        tc.cache()->PutObjects({kRankingsRddId, tc.partition()}, rarr.get(),
                               static_cast<uint32_t>(ranks_per_part),
                               &tc.metrics());
        jvm::Handle varr = scope.Make(h->AllocateArray(
            h->registry()->ref_array_class(),
            static_cast<uint32_t>(visits_per_part)));
        for (uint64_t i = 0; i < visits_per_part; ++i) {
          HandleScope inner(h);
          FillIp(&rng, ip);
          FillUrl(&rng, url);
          jvm::Handle iph = inner.Make(h->AllocateArray(
              h->registry()->byte_array_class(), kIpBytes));
          std::memcpy(h->ArrayData(iph.get()), ip, kIpBytes);
          jvm::Handle urlh = inner.Make(h->AllocateArray(
              h->registry()->byte_array_class(), kUrlBytes));
          std::memcpy(h->ArrayData(urlh.get()), url, kUrlBytes);
          ObjRef rec = h->AllocateInstance(types.visit_cls);
          h->SetField<int64_t>(rec, types.v_date_off,
                               static_cast<int64_t>(rng.NextBounded(365)));
          h->SetField<double>(rec, types.v_rev_off, rng.NextDouble());
          h->SetRefField(rec, types.v_ip_off, iph.get());
          h->SetRefField(rec, types.v_url_off, urlh.get());
          h->SetRefElem(varr.get(), static_cast<uint32_t>(i), rec);
        }
        tc.cache()->PutObjects({kVisitsRddId, tc.partition()}, varr.get(),
                               static_cast<uint32_t>(visits_per_part),
                               &tc.metrics());
        break;
      }
      case SqlEngine::kSparkSql: {
        size_t p = static_cast<size_t>(tc.partition());
        std::vector<ObjRef>& refs = columnar.refs_for(&tc);
        HandleScope scope(h);
        columnar.rankings_base[p] = refs.size();
        jvm::Handle ranks = scope.Make(h->AllocateArray(
            h->registry()->int_array_class(),
            static_cast<uint32_t>(ranks_per_part)));
        jvm::Handle durs = scope.Make(h->AllocateArray(
            h->registry()->int_array_class(),
            static_cast<uint32_t>(ranks_per_part)));
        jvm::Handle urls = scope.Make(h->AllocateArray(
            h->registry()->byte_array_class(),
            static_cast<uint32_t>(ranks_per_part * kUrlBytes)));
        for (uint64_t i = 0; i < ranks_per_part; ++i) {
          FillUrl(&rng, url);
          h->SetElem<int32_t>(ranks.get(), static_cast<uint32_t>(i),
                              static_cast<int32_t>(rng.NextBounded(1000)));
          h->SetElem<int32_t>(durs.get(), static_cast<uint32_t>(i),
                              static_cast<int32_t>(rng.NextBounded(100)));
          std::memcpy(h->ArrayData(urls.get()) + i * kUrlBytes, url,
                      kUrlBytes);
        }
        refs.push_back(ranks.get());
        refs.push_back(durs.get());
        refs.push_back(urls.get());
        columnar.rankings_counts[p] = static_cast<uint32_t>(ranks_per_part);
        columnar.visits_base[p] = refs.size();
        jvm::Handle dates = scope.Make(h->AllocateArray(
            h->registry()->long_array_class(),
            static_cast<uint32_t>(visits_per_part)));
        jvm::Handle revs = scope.Make(h->AllocateArray(
            h->registry()->double_array_class(),
            static_cast<uint32_t>(visits_per_part)));
        jvm::Handle ips = scope.Make(h->AllocateArray(
            h->registry()->byte_array_class(),
            static_cast<uint32_t>(visits_per_part * kIpBytes)));
        jvm::Handle vurls = scope.Make(h->AllocateArray(
            h->registry()->byte_array_class(),
            static_cast<uint32_t>(visits_per_part * kUrlBytes)));
        for (uint64_t i = 0; i < visits_per_part; ++i) {
          FillIp(&rng, ip);
          FillUrl(&rng, url);
          h->SetElem<int64_t>(dates.get(), static_cast<uint32_t>(i),
                              static_cast<int64_t>(rng.NextBounded(365)));
          h->SetElem<double>(revs.get(), static_cast<uint32_t>(i),
                             rng.NextDouble());
          std::memcpy(h->ArrayData(ips.get()) + i * kIpBytes, ip, kIpBytes);
          std::memcpy(h->ArrayData(vurls.get()) + i * kUrlBytes, url,
                      kUrlBytes);
        }
        refs.push_back(dates.get());
        refs.push_back(revs.get());
        refs.push_back(ips.get());
        refs.push_back(vurls.get());
        columnar.visits_counts[p] = static_cast<uint32_t>(visits_per_part);
        columnar.bytes += ranks_per_part * (8 + kUrlBytes) +
                          visits_per_part * (16 + kIpBytes + kUrlBytes);
        break;
      }
      case SqlEngine::kDeca: {
        auto rpages =
            std::make_shared<core::PageGroup>(h, cfg.deca_page_bytes);
        for (uint64_t i = 0; i < ranks_per_part; ++i) {
          FillUrl(&rng, url);
          core::SegPtr seg = rpages->Append(kRankingRowBytes);
          uint8_t* p = rpages->Resolve(seg);
          StoreRaw<int32_t>(p, static_cast<int32_t>(rng.NextBounded(1000)));
          StoreRaw<int32_t>(p + 4,
                            static_cast<int32_t>(rng.NextBounded(100)));
          std::memcpy(p + 8, url, kUrlBytes);
        }
        tc.cache()->PutPages({kRankingsRddId, tc.partition()}, rpages,
                             static_cast<uint32_t>(ranks_per_part),
                             &tc.metrics());
        auto vpages =
            std::make_shared<core::PageGroup>(h, cfg.deca_page_bytes);
        for (uint64_t i = 0; i < visits_per_part; ++i) {
          FillIp(&rng, ip);
          FillUrl(&rng, url);
          core::SegPtr seg = vpages->Append(kVisitRowBytes);
          uint8_t* p = vpages->Resolve(seg);
          StoreRaw<int64_t>(p, static_cast<int64_t>(rng.NextBounded(365)));
          StoreRaw<double>(p + 8, rng.NextDouble());
          std::memcpy(p + 16, ip, kIpBytes);
          std::memcpy(p + 16 + kIpBytes, url, kUrlBytes);
        }
        tc.cache()->PutPages({kVisitsRddId, tc.partition()}, vpages,
                             static_cast<uint32_t>(visits_per_part),
                             &tc.metrics());
        break;
      }
    }
  });
  result.run.load_ms = ctx.metrics().wall_ms;
  ctx.ResetMetrics();

  // ---- Query 1: filter scan over rankings.
  double gc0 = ctx.TotalGcPauseMs();
  Stopwatch q1_sw;
  // Per-partition slots folded in partition order post-stage: identical
  // counts and float sums whether the stage ran sequentially or not.
  std::vector<uint64_t> part_q1_matches(static_cast<size_t>(parts), 0);
  std::vector<double> part_q1_sum(static_cast<size_t>(parts), 0.0);
  ctx.RunStage("q1", [&](spark::TaskContext& tc) {
    uint64_t& q1_matches = part_q1_matches[static_cast<size_t>(tc.partition())];
    double& q1_sum = part_q1_sum[static_cast<size_t>(tc.partition())];
    jvm::Heap* h = tc.heap();
    int32_t threshold = params.rank_threshold;
    switch (params.engine) {
      case SqlEngine::kSparkRdd: {
        HandleScope scope(h);
        spark::LoadedBlock block =
            tc.cache()->Get({kRankingsRddId, tc.partition()}, &tc.metrics());
        jvm::Handle arr = scope.Make(block.object_array);
        for (uint32_t i = 0; i < block.count; ++i) {
          ObjRef rec = h->GetRefElem(arr.get(), i);
          int32_t rank = h->GetField<int32_t>(rec, types.r_rank_off);
          if (rank > threshold) {
            ++q1_matches;
            q1_sum += rank;
          }
        }
        break;
      }
      case SqlEngine::kSparkSql: {
        size_t p = static_cast<size_t>(tc.partition());
        ObjRef ranks = columnar.refs_for(&tc)[columnar.rankings_base[p]];
        uint32_t n = columnar.rankings_counts[p];
        for (uint32_t i = 0; i < n; ++i) {
          int32_t rank = h->GetElem<int32_t>(ranks, i);
          if (rank > threshold) {
            ++q1_matches;
            q1_sum += rank;
          }
        }
        break;
      }
      case SqlEngine::kDeca: {
        spark::LoadedBlock block =
            tc.cache()->Get({kRankingsRddId, tc.partition()}, &tc.metrics());
        core::PageScanner scan(block.pages.get());
        while (!scan.AtEnd()) {
          const uint8_t* p = scan.Cur();
          int32_t rank = LoadRaw<int32_t>(p);
          if (rank > threshold) {
            ++q1_matches;
            q1_sum += rank;
          }
          scan.Advance(kRankingRowBytes);
        }
        break;
      }
    }
  });
  result.q1_exec_ms = q1_sw.ElapsedMillis();
  result.q1_gc_ms = ctx.TotalGcPauseMs() - gc0;
  uint64_t q1_matches = 0;
  double q1_sum = 0;
  for (int p = 0; p < parts; ++p) {
    q1_matches += part_q1_matches[static_cast<size_t>(p)];
    q1_sum += part_q1_sum[static_cast<size_t>(p)];
  }
  result.q1_matches = q1_matches;
  result.q1_rank_sum = q1_sum;

  // ---- Query 2: GroupBy aggregation over uservisits.
  gc0 = ctx.TotalGcPauseMs();
  Stopwatch q2_sw;
  int shuffle_id = ctx.shuffle()->RegisterShuffle(parts);
  bool byte_shuffle = params.engine != SqlEngine::kSparkRdd;
  ctx.RunStage("q2-map", [&](spark::TaskContext& tc) {
    jvm::Heap* h = tc.heap();
    std::vector<ByteWriter> outs(static_cast<size_t>(parts));
    auto emit_deca = [&](spark::DecaHashShuffleBuffer& buf) {
      buf.ForEach([&](const uint8_t* e) {
        uint64_t hash = types.agg_ops.deca_key_hash(e);
        outs[hash % static_cast<uint64_t>(parts)].WriteBytes(e, 16);
      });
    };
    if (byte_shuffle) {
      // Spark SQL (Tungsten) and Deca both aggregate over serialized /
      // decomposed bytes.
      spark::DecaHashShuffleBuffer buf(h, &types.agg_ops,
                                       cfg.deca_page_bytes);
      auto insert = [&](int64_t key, double rev) {
        buf.Insert(reinterpret_cast<const uint8_t*>(&key),
                   reinterpret_cast<const uint8_t*>(&rev));
      };
      if (params.engine == SqlEngine::kSparkSql) {
        size_t p = static_cast<size_t>(tc.partition());
        size_t base = columnar.visits_base[p];
        std::vector<ObjRef>& refs = columnar.refs_for(&tc);
        uint32_t n = columnar.visits_counts[p];
        for (uint32_t i = 0; i < n; ++i) {
          // Re-resolve the column arrays every row: page-group inserts may
          // trigger GC and move them (the provider keeps refs updated).
          ObjRef revs = refs[base + 1];
          ObjRef ips = refs[base + 2];
          insert(IpPrefixKey(h->ArrayData(ips) + i * kIpBytes),
                 h->GetElem<double>(revs, i));
        }
      } else {
        spark::LoadedBlock block =
            tc.cache()->Get({kVisitsRddId, tc.partition()}, &tc.metrics());
        core::PageScanner scan(block.pages.get());
        while (!scan.AtEnd()) {
          const uint8_t* p = scan.Cur();
          insert(IpPrefixKey(p + 16), LoadRaw<double>(p + 8));
          scan.Advance(kVisitRowBytes);
        }
      }
      emit_deca(buf);
    } else {
      spark::ObjectHashShuffleBuffer buf(h, &types.agg_ops);
      HandleScope scope(h);
      spark::LoadedBlock block =
          tc.cache()->Get({kVisitsRddId, tc.partition()}, &tc.metrics());
      jvm::Handle arr = scope.Make(block.object_array);
      for (uint32_t i = 0; i < block.count; ++i) {
        HandleScope inner(h);
        ObjRef rec = h->GetRefElem(arr.get(), i);
        ObjRef iph = h->GetRefField(rec, types.v_ip_off);
        int64_t key = IpPrefixKey(h->ArrayData(iph));
        double rev = h->GetField<double>(rec, types.v_rev_off);
        jvm::Handle k = inner.Make(
            h->AllocateInstance(h->registry()->boxed_long_class()));
        h->SetField<int64_t>(k.get(), 0, key);
        jvm::Handle v = inner.Make(
            h->AllocateInstance(h->registry()->boxed_double_class()));
        h->SetField<double>(v.get(), 0, rev);
        buf.Insert(k.get(), v.get());
      }
      buf.ForEach([&](ObjRef k, ObjRef v) {
        uint64_t hash = types.agg_ops.key_hash(h, k);
        ByteWriter& w = outs[hash % static_cast<uint64_t>(parts)];
        ScopedTimerMs t(&tc.metrics().ser_ms);
        types.agg_ops.serialize_key(h, k, &w);
        types.agg_ops.serialize_value(h, v, &w);
      });
    }
    ScopedTimerMs t(&tc.metrics().shuffle_write_ms);
    for (int r = 0; r < parts; ++r) {
      ctx.shuffle()->PutChunk(shuffle_id, r, tc.partition(),
                              outs[static_cast<size_t>(r)].TakeBuffer());
    }
  });

  std::vector<uint64_t> part_groups(static_cast<size_t>(parts), 0);
  std::vector<double> part_revenue(static_cast<size_t>(parts), 0.0);
  ctx.RunStage("q2-reduce", [&](spark::TaskContext& tc) {
    uint64_t& groups = part_groups[static_cast<size_t>(tc.partition())];
    double& revenue = part_revenue[static_cast<size_t>(tc.partition())];
    jvm::Heap* h = tc.heap();
    const auto& chunks = ctx.shuffle()->GetChunks(shuffle_id, tc.partition());
    if (byte_shuffle) {
      spark::DecaHashShuffleBuffer buf(h, &types.agg_ops,
                                       cfg.deca_page_bytes);
      for (const auto& chunk : chunks) {
        ScopedTimerMs t(&tc.metrics().shuffle_read_ms);
        for (size_t off = 0; off < chunk.size(); off += 16) {
          buf.Insert(chunk.data() + off, chunk.data() + off + 8);
        }
      }
      buf.ForEach([&](const uint8_t* e) {
        ++groups;
        revenue += LoadRaw<double>(e + 8);
      });
    } else {
      spark::ObjectHashShuffleBuffer buf(h, &types.agg_ops);
      for (const auto& chunk : chunks) {
        ByteReader r(chunk.data(), chunk.size());
        while (!r.AtEnd()) {
          HandleScope scope(h);
          jvm::Handle k, v;
          {
            ScopedTimerMs t(&tc.metrics().deser_ms);
            k = scope.Make(types.agg_ops.deserialize_key(h, &r));
            v = scope.Make(types.agg_ops.deserialize_value(h, &r));
          }
          buf.Insert(k.get(), v.get());
        }
      }
      buf.ForEach([&](ObjRef, ObjRef v) {
        ++groups;
        revenue += h->GetField<double>(v, 0);
      });
    }
  });
  ctx.shuffle()->Release(shuffle_id);
  result.q2_exec_ms = q2_sw.ElapsedMillis();
  result.q2_gc_ms = ctx.TotalGcPauseMs() - gc0;
  uint64_t groups = 0;
  double revenue = 0;
  for (int p = 0; p < parts; ++p) {
    groups += part_groups[static_cast<size_t>(p)];
    revenue += part_revenue[static_cast<size_t>(p)];
  }
  result.q2_groups = groups;
  result.q2_revenue_sum = revenue;

  result.run.exec_ms = result.q1_exec_ms + result.q2_exec_ms;
  FinalizeResult(&ctx, &result.run);
  if (params.engine == SqlEngine::kSparkSql) {
    result.cached_mb = static_cast<double>(columnar.bytes) / (1 << 20);
    columnar.Unregister(&ctx);
  } else {
    result.cached_mb = result.run.cached_mb;
  }
  return result;
}

}  // namespace deca::workloads
