#include "workloads/lr.h"

#include <cmath>

#include "analysis/profiled_classifier.h"
#include "cluster/scoped_job.h"
#include "common/clock.h"
#include "common/logging.h"
#include "common/random.h"
#include "jvm/heap_profiler.h"
#include "workloads/dist_entry.h"

namespace deca::workloads {

using analysis::SizeType;
using analysis::Statement;
using analysis::SymExpr;
using jvm::FieldKind;
using jvm::HandleScope;
using jvm::ObjRef;

LrTypes::LrTypes(jvm::ClassRegistry* registry, int dims)
    : dims_(dims), registry_(registry) {
  // Managed class layouts mirroring the Scala classes of paper Figure 1.
  dense_vector_cls_ = registry->RegisterClass(
      "DenseVector", {{"data", FieldKind::kRef},
                      {"offset", FieldKind::kInt},
                      {"stride", FieldKind::kInt},
                      {"length", FieldKind::kInt}});
  labeled_point_cls_ = registry->RegisterClass(
      "LabeledPoint",
      {{"label", FieldKind::kDouble}, {"features", FieldKind::kRef}});
  const jvm::ClassInfo& dv = registry->Get(dense_vector_cls_);
  const jvm::ClassInfo& lp = registry->Get(labeled_point_cls_);
  dv_data_off_ = dv.FieldOffset("data");
  dv_offset_off_ = dv.FieldOffset("offset");
  dv_stride_off_ = dv.FieldOffset("stride");
  dv_length_off_ = dv.FieldOffset("length");
  lp_label_off_ = lp.FieldOffset("label");
  lp_features_off_ = lp.FieldOffset("features");

  BuildUdtModel();
  BuildOps();
}

// GCC at -O3 flags the aggregate Statement initializers below as
// maybe-uninitialized through the inlined std::string members of FieldRef
// — a known reachability false positive (every string is constructed
// before use).
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"
#endif
void LrTypes::BuildUdtModel() {
  // Annotated types (paper Figure 3).
  const auto* darr = universe_.DefineArray(
      "Array[Double]", {universe_.Primitive(FieldKind::kDouble)});
  auto* dv = universe_.DefineClass("DenseVector");
  universe_.AddField(dv, "data", /*is_final=*/true, {darr});
  universe_.AddField(dv, "offset", false,
                     {universe_.Primitive(FieldKind::kInt)});
  universe_.AddField(dv, "stride", false,
                     {universe_.Primitive(FieldKind::kInt)});
  universe_.AddField(dv, "length", false,
                     {universe_.Primitive(FieldKind::kInt)});
  auto* lp = universe_.DefineClass("LabeledPoint");
  universe_.AddField(lp, "label", false,
                     {universe_.Primitive(FieldKind::kDouble)});
  universe_.AddField(lp, "features", /*is_final=*/false, {dv});
  lp_udt_ = lp;

  // The LR stage's call graph: the map UDF of Figure 1 constructs each
  // point via the two constructors; `features.data` is always `new
  // Array[Double](D)` with the global constant D.
  analysis::MethodInfo map_udf;
  map_udf.name = "LR.map";
  map_udf.statements.push_back(
      {Statement::Kind::kCall, {}, nullptr, {}, "LabeledPoint.<init>"});
  analysis::MethodInfo lp_ctor;
  lp_ctor.name = "LabeledPoint.<init>";
  lp_ctor.ctor_of = lp;
  lp_ctor.statements.push_back({Statement::Kind::kNewObjectAssign,
                                {lp, "features"},
                                dv,
                                {},
                                ""});
  lp_ctor.statements.push_back(
      {Statement::Kind::kCall, {}, nullptr, {}, "DenseVector.<init>"});
  analysis::MethodInfo dv_ctor;
  dv_ctor.name = "DenseVector.<init>";
  dv_ctor.ctor_of = dv;
  dv_ctor.statements.push_back({Statement::Kind::kNewArrayAssign,
                                {dv, "data"},
                                darr,
                                SymExpr::Constant(dims_),
                                ""});
  stage_cg_.AddMethod(map_udf);
  stage_cg_.AddMethod(lp_ctor);
  stage_cg_.AddMethod(dv_ctor);
  stage_cg_.SetEntry("LR.map");

  // Pre-processing (paper Section 5): the per-field type-sets come from
  // points-to analysis over the stage's code. Verify the inferred set for
  // `features` matches the model's declared set: exactly {DenseVector}.
  auto inferred = stage_cg_.InferTypeSet({lp, "features"});
  DECA_CHECK_EQ(inferred.size(), 1u);
  DECA_CHECK(inferred[0] == dv);

  analysis::GlobalClassifier classifier(&stage_cg_);
  classified_ = classifier.Classify(lp);
  if (classified_ == SizeType::kStaticFixed) {
    core::LengthResolver lengths;
    lengths.SetFixedLength(dv, "data",
                           static_cast<uint32_t>(dims_));
    // offset/stride/length are compile-time constants after the
    // optimizer's constant propagation (always 0/1/D), so the transformed
    // code elides them — the layout of paper Figure 2.
    layout_ = core::SudtLayout::Build(lp, lengths,
                                      {"features.offset", "features.stride",
                                       "features.length"});
  }
}
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic pop
#endif

jvm::ObjRef LrTypes::NewLabeledPoint(jvm::Heap* heap, double label,
                                     const double* features) const {
  HandleScope scope(heap);
  jvm::Handle data = scope.Make(heap->AllocateArray(
      heap->registry()->double_array_class(), static_cast<uint32_t>(dims_)));
  std::memcpy(heap->ArrayData(data.get()), features,
              sizeof(double) * static_cast<size_t>(dims_));
  jvm::Handle dv = scope.Make(heap->AllocateInstance(dense_vector_cls_));
  heap->SetRefField(dv.get(), dv_data_off_, data.get());
  heap->SetField<int32_t>(dv.get(), dv_offset_off_, 0);
  heap->SetField<int32_t>(dv.get(), dv_stride_off_, 1);
  heap->SetField<int32_t>(dv.get(), dv_length_off_, dims_);
  ObjRef lp = heap->AllocateInstance(labeled_point_cls_);
  heap->SetField<double>(lp, lp_label_off_, label);
  heap->SetRefField(lp, lp_features_off_, dv.get());
  return lp;
}

void LrTypes::BuildOps() {
  int dims = dims_;
  uint32_t lp_label = lp_label_off_;
  uint32_t lp_features = lp_features_off_;
  uint32_t dv_data = dv_data_off_;
  const LrTypes* self = this;

  ops_.managed_bytes = [dims](jvm::Heap* h, ObjRef lp) -> uint64_t {
    (void)lp;
    const auto* reg = h->registry();
    return reg->Get(reg->FindId("LabeledPoint")).ObjectBytes(0) +
           reg->Get(reg->FindId("DenseVector")).ObjectBytes(0) +
           reg->Get(reg->double_array_class())
               .ObjectBytes(static_cast<uint32_t>(dims));
  };
  ops_.serialize = [lp_label, lp_features, dv_data, dims](
                       jvm::Heap* h, ObjRef lp, ByteWriter* w) {
    w->Write<double>(h->GetField<double>(lp, lp_label));
    ObjRef dv = h->GetRefField(lp, lp_features);
    ObjRef data = h->GetRefField(dv, dv_data);
    w->WriteVarU64(static_cast<uint64_t>(dims));
    w->WriteBytes(h->ArrayData(data),
                  sizeof(double) * static_cast<size_t>(dims));
  };
  ops_.deserialize = [self](jvm::Heap* h, ByteReader* r) -> ObjRef {
    double label = r->Read<double>();
    uint64_t n = r->ReadVarU64();
    std::vector<double> tmp(n);
    r->ReadBytes(reinterpret_cast<uint8_t*>(tmp.data()),
                 sizeof(double) * n);
    return self->NewLabeledPoint(h, label, tmp.data());
  };
  uint32_t rec_bytes = 8 + 8 * static_cast<uint32_t>(dims);
  ops_.deca_bytes = [rec_bytes](jvm::Heap*, ObjRef) { return rec_bytes; };
  ops_.decompose = [lp_label, lp_features, dv_data, dims](
                       jvm::Heap* h, ObjRef lp, uint8_t* out) {
    StoreRaw<double>(out, h->GetField<double>(lp, lp_label));
    ObjRef dv = h->GetRefField(lp, lp_features);
    ObjRef data = h->GetRefField(dv, dv_data);
    std::memcpy(out + 8, h->ArrayData(data),
                sizeof(double) * static_cast<size_t>(dims));
  };
  ops_.reconstruct = [self](jvm::Heap* h, const uint8_t* in) -> ObjRef {
    double label = LoadRaw<double>(in);
    return self->NewLabeledPoint(
        h, label, reinterpret_cast<const double*>(in + 8));
  };
}

void CachePoints(spark::TaskContext& tc, const LrTypes& types, int rdd_id,
                 bool deca, uint32_t page_bytes, uint64_t count,
                 const std::function<double(double* feats)>& gen) {
  jvm::Heap* h = tc.heap();
  int dims = types.dims();
  uint64_t obj_bytes_per_point =
      types.ops().managed_bytes(h, jvm::kNullRef) + 4;
  uint64_t per_sub =
      std::max<uint64_t>(64, kPointSubBlockBytes / obj_bytes_per_point);
  std::vector<double> feats(static_cast<size_t>(dims));
  uint64_t done = 0;
  int sub = 0;
  while (done < count) {
    uint32_t n = static_cast<uint32_t>(std::min(per_sub, count - done));
    spark::BlockKey key{rdd_id, tc.partition() * 1024 + sub};
    if (deca) {
      auto pages = std::make_shared<core::PageGroup>(h, page_bytes);
      uint32_t rec = 8 + 8 * static_cast<uint32_t>(dims);
      for (uint32_t i = 0; i < n; ++i) {
        double label = gen(feats.data());
        core::SegPtr seg = pages->Append(rec);
        uint8_t* p = pages->Resolve(seg);
        StoreRaw<double>(p, label);
        std::memcpy(p + 8, feats.data(), sizeof(double) * feats.size());
      }
      tc.cache()->PutPages(key, pages, n, &tc.metrics());
    } else {
      HandleScope scope(h);
      jvm::Handle arr = scope.Make(
          h->AllocateArray(h->registry()->ref_array_class(), n));
      for (uint32_t i = 0; i < n; ++i) {
        double label = gen(feats.data());
        HandleScope inner(h);
        ObjRef lp = types.NewLabeledPoint(h, label, feats.data());
        h->SetRefElem(arr.get(), i, lp);
      }
      tc.cache()->PutObjects(key, arr.get(), n, &tc.metrics());
    }
    done += n;
    ++sub;
  }
}

void ForEachPointBlock(
    spark::TaskContext& tc, int rdd_id,
    const std::function<void(const spark::LoadedBlock&)>& fn) {
  for (int sub = 0; sub < 1024; ++sub) {
    spark::LoadedBlock b = tc.cache()->Get(
        {rdd_id, tc.partition() * 1024 + sub}, &tc.metrics());
    if (!b.valid()) break;
    fn(b);
  }
}

namespace {

constexpr int kLrRddId = 1;

/// Object-mode gradient kernel for one point: mirrors the Scala UDF
/// `p.features * ((1/(1+exp(-label*dot))-1) * label)` including the
/// temporary result vector it allocates per point.
void ObjectGradient(jvm::Heap* h, const LrTypes& types, ObjRef lp,
                    const std::vector<double>& weights, double* grad) {
  int dims = types.dims();
  double label = h->GetField<double>(lp, types.lp_label_off());
  ObjRef dv = h->GetRefField(lp, types.lp_features_off());
  ObjRef data = h->GetRefField(dv, types.dv_data_off());
  double dot = 0;
  for (int j = 0; j < dims; ++j) {
    dot += weights[static_cast<size_t>(j)] *
           h->GetElem<double>(data, static_cast<uint32_t>(j));
  }
  double factor = (1.0 / (1.0 + std::exp(-label * dot)) - 1.0) * label;
  // The Scala code materializes `p.features * factor` as a fresh
  // DenseVector before the reduce combines it — the per-point temporary
  // object churn of paper Section 2.2.
  HandleScope scope(h);
  jvm::Handle tmp = scope.Make(h->AllocateArray(
      h->registry()->double_array_class(), static_cast<uint32_t>(dims)));
  for (int j = 0; j < dims; ++j) {
    h->SetElem<double>(tmp.get(), static_cast<uint32_t>(j),
                       h->GetElem<double>(data, static_cast<uint32_t>(j)) *
                           factor);
  }
  for (int j = 0; j < dims; ++j) {
    grad[j] += h->GetElem<double>(tmp.get(), static_cast<uint32_t>(j));
  }
}

/// Deca-mode gradient kernel: the transformed code of paper Figure 12 —
/// sequential reads from the decomposed byte segment, results written into
/// a pre-allocated array, no object creation.
void DecaGradient(const uint8_t* rec, int dims,
                  const std::vector<double>& weights, double* grad) {
  double label = LoadRaw<double>(rec);
  const uint8_t* feats = rec + 8;
  double dot = 0;
  for (int j = 0; j < dims; ++j) {
    dot += weights[static_cast<size_t>(j)] *
           LoadRaw<double>(feats + 8 * static_cast<size_t>(j));
  }
  double factor = (1.0 / (1.0 + std::exp(-label * dot)) - 1.0) * label;
  for (int j = 0; j < dims; ++j) {
    grad[j] += LoadRaw<double>(feats + 8 * static_cast<size_t>(j)) * factor;
  }
}

}  // namespace

LrResult RunLogisticRegression(const MlParams& params) {
  spark::SparkConfig cfg = params.spark;
  ApplyMode(params.mode, &cfg);
  // SPMD seam: a no-op in-process; spawns/joins the executor daemons in
  // process mode. Must outlive the context.
  cluster::ScopedJob job(&cfg, "lr", EncodeMlParams(params));
  spark::SparkContext ctx(cfg);
  LrTypes types(ctx.registry(), params.dims);
  ctx.RegisterCachedRdd(kLrRddId, &types.ops());

  bool deca = params.mode == Mode::kDeca;
  if (deca) {
    // The optimizer's verdict gates the decomposed path — exactly what the
    // paper's code transformation does for safely decomposable UDTs.
    DECA_CHECK(types.classified() == SizeType::kStaticFixed)
        << "LR LabeledPoint must classify as SFST";
    if (cfg.lifetime_source == spark::LifetimeSource::kProfiled) {
      // Online calibration: allocate the same LabeledPoint graph the
      // object path builds in a scratch heap and require the profiled
      // verdict to agree with the static proof before it gates anything
      // (executor heaps and digests stay bit-identical across sources).
      analysis::CalibrationOptions opts;
      opts.heap_bytes = 8u << 20;  // dims-sized feature arrays need room
      opts.records = 512;
      opts.retain_every = 8;
      if (cfg.heap.profile_sample_bytes > 0) {
        opts.sample_bytes = cfg.heap.profile_sample_bytes;
      }
      opts.seed = cfg.heap.profile_seed;
      std::vector<double> feats(static_cast<size_t>(params.dims), 0.5);
      analysis::ProfiledClassifier prof = analysis::CalibrateProfile(
          ctx.registry(), opts, [&types, &feats](jvm::Heap* h) {
            return types.NewLabeledPoint(h, 1.0, feats.data());
          });
      SizeType online = prof.Classify(types.labeled_point_cls());
      DECA_CHECK(online == SizeType::kStaticFixed)
          << "profiled LabeledPoint verdict "
          << analysis::SizeTypeName(online) << " disagrees with static SFST";
    }
  }

  LrResult result;
  result.run.mode = params.mode;
  int parts = ctx.num_partitions();
  uint64_t per_part = params.num_points / static_cast<uint64_t>(parts);
  int dims = params.dims;

  // -- load & cache the training points (paper excludes this from exec).
  // Named so it can double as the cached RDD's lineage: if an executor
  // crash-wipes, the lost partitions are reloaded by re-running this task
  // (deterministic — the generator reseeds per partition).
  auto load_task = [&types, &params, deca, dims, per_part,
                    page_bytes = cfg.deca_page_bytes](spark::TaskContext& tc) {
    Rng rng(params.seed + static_cast<uint64_t>(tc.partition()));
    CachePoints(tc, types, kLrRddId, deca, page_bytes, per_part,
                [&](double* feats) {
                  double label = rng.NextBounded(2) == 0 ? -1.0 : 1.0;
                  for (int j = 0; j < dims; ++j) {
                    feats[j] = rng.NextGaussian() + label;
                  }
                  return label;
                });
  };
  Stopwatch load_sw;
  ctx.RunStage("load", load_task);
  ctx.RegisterLineage(kLrRddId, load_task);
  result.run.load_ms = load_sw.ElapsedMillis();
  ctx.ResetMetrics();

  // -- iterate gradient descent.
  Rng wrng(params.seed * 31 + 7);
  std::vector<double> weights(static_cast<size_t>(dims));
  for (auto& w : weights) w = 2.0 * wrng.NextDouble() - 1.0;

  jvm::HeapProfiler* profiler = nullptr;
  std::unique_ptr<jvm::HeapProfiler> profiler_holder;
  // Heap profiling needs the mutating heap in this process (off in
  // process mode, where executor 0's mutator lives in a daemon).
  if (params.profile && ctx.role() == spark::DistRole::kLocal) {
    profiler_holder = std::make_unique<jvm::HeapProfiler>(
        ctx.executor(0)->heap(), types.labeled_point_cls());
    profiler = profiler_holder.get();
  }

  Stopwatch exec_sw;
  for (int iter = 0; iter < params.iterations; ++iter) {
    // A collect stage: per-partition gradient blobs, folded in partition
    // order after the barrier so float accumulation is identical in
    // parallel and distributed modes (where the barrier broadcasts the
    // same blobs to every process and the weights advance in lockstep).
    auto blobs = ctx.RunCollectStage("gradient", [&](spark::TaskContext& tc)
                                                     -> std::vector<uint8_t> {
      jvm::Heap* h = tc.heap();
      // Accumulate locally and assign the slot at task end, so a retried
      // attempt that failed mid-scan cannot double-count points.
      std::vector<double> grad(static_cast<size_t>(dims), 0.0);
      ForEachPointBlock(tc, kLrRddId, [&](const spark::LoadedBlock& block) {
        HandleScope scope(h);
        switch (block.level) {
          case spark::StorageLevel::kMemoryObjects: {
            jvm::Handle arr = scope.Make(block.object_array);
            for (uint32_t i = 0; i < block.count; ++i) {
              ObjRef lp = h->GetRefElem(arr.get(), i);
              ObjectGradient(h, types, lp, weights, grad.data());
            }
            break;
          }
          case spark::StorageLevel::kMemorySerialized: {
            jvm::Handle bytes = scope.Make(block.serialized);
            // Deserialize each point into temporary objects, then compute
            // (the SparkSer path of paper Section 6.2).
            size_t size = h->ArrayLength(bytes.get());
            std::vector<uint8_t> snapshot(size);
            std::memcpy(snapshot.data(), h->ArrayData(bytes.get()), size);
            ByteReader r(snapshot.data(), size);
            for (uint32_t i = 0; i < block.count; ++i) {
              HandleScope inner(h);
              ObjRef lp;
              {
                ScopedTimerMs t(&tc.metrics().deser_ms);
                lp = types.ops().deserialize(h, &r);
              }
              ObjectGradient(h, types, lp, weights, grad.data());
            }
            break;
          }
          case spark::StorageLevel::kDecaPages: {
            uint32_t rec = 8 + 8 * static_cast<uint32_t>(dims);
            core::PageScanner scan(block.pages.get());
            while (!scan.AtEnd()) {
              DecaGradient(scan.Cur(), dims, weights, grad.data());
              scan.Advance(rec);
            }
            break;
          }
        }
      });
      ByteWriter w;
      for (int j = 0; j < dims; ++j) {
        w.Write<double>(grad[static_cast<size_t>(j)]);
      }
      return w.TakeBuffer();
    });
    std::vector<double> gradient(static_cast<size_t>(dims), 0.0);
    for (int p = 0; p < parts; ++p) {
      ByteReader r(blobs[static_cast<size_t>(p)].data(),
                   blobs[static_cast<size_t>(p)].size());
      for (int j = 0; j < dims; ++j) {
        gradient[static_cast<size_t>(j)] += r.Read<double>();
      }
    }
    double n = static_cast<double>(params.num_points);
    for (int j = 0; j < dims; ++j) {
      weights[static_cast<size_t>(j)] -=
          gradient[static_cast<size_t>(j)] / n;
    }
    if (profiler != nullptr) profiler->Sample(exec_sw.ElapsedMillis());
  }
  result.run.exec_ms = exec_sw.ElapsedMillis();
  result.weights = weights;
  FinalizeResult(&ctx, &result.run);
  if (profiler != nullptr) {
    result.run.object_counts = profiler->object_counts();
    result.run.gc_series = profiler->gc_time_ms();
  }
  return result;
}

}  // namespace deca::workloads
