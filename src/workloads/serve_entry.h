#ifndef DECA_WORKLOADS_SERVE_ENTRY_H_
#define DECA_WORKLOADS_SERVE_ENTRY_H_

#include <cstdint>

#include "workloads/common.h"

namespace deca::workloads {

/// Closed-loop query-serving driver (ROADMAP open item 3): cache a fixed
/// dataset of user records larger than executor memory, then fire stages
/// of small deterministic point queries against it. Built to stress the
/// tiered block store — with DECA_STORAGE_TIER=3 the cold tail of the
/// working set compacts into serialized off-heap buffers (and disk past
/// the T1 cap) instead of thrashing heap blocks to disk, and hot blocks
/// earn their way back up under the admission policy.
struct ServeParams {
  /// Records across all partitions. Each record is a LabeledPoint-shaped
  /// user row: one double key plus `record_doubles` feature values.
  uint64_t num_records = 1 << 16;
  int record_doubles = 16;
  /// Point queries each partition serves per stage.
  int queries_per_task = 256;
  /// Closed-loop rounds; every stage draws a fresh deterministic query
  /// set, so tier residency keeps churning.
  int serve_stages = 8;
  Mode mode = Mode::kSpark;
  uint64_t seed = 42;
  spark::SparkConfig spark;
};

struct ServeResult {
  RunResult run;
  /// Fold of the values every query read, in (stage, partition, query)
  /// order — bit-identical across modes, thread counts, tier policies,
  /// and fault injection.
  uint64_t digest = 0;
  uint64_t queries = 0;
  double qps = 0;  // queries / wall second across the serve stages
  double latency_p50_ms = 0;
  double latency_p99_ms = 0;
};

/// Records per cached sub-block. Small on purpose: a query touches one
/// sub-block, so the tier state machine moves fine-grained units and a
/// skewed query stream keeps a hot subset resident.
inline constexpr uint32_t kServeSubBlockRecords = 1024;

ServeResult RunServeCache(const ServeParams& params);

}  // namespace deca::workloads

#endif  // DECA_WORKLOADS_SERVE_ENTRY_H_
