#ifndef DECA_WORKLOADS_STREAM_COMMON_H_
#define DECA_WORKLOADS_STREAM_COMMON_H_

#include <cstdint>

#include "stream/stream_context.h"
#include "workloads/stream.h"

namespace deca::workloads {

/// Per-epoch cached tables cycle through a fixed ring of rdd ids, so the
/// cache's per-rdd RecordOps registrations stay bounded over an unbounded
/// stream. Safe as long as window depth <= kStreamRddSlots: a slot's
/// previous tenant is always reclaimed (blocks evicted by its region)
/// before the id comes around again.
constexpr int kStreamRddBase = 1000;
constexpr int kStreamRddSlots = 256;

inline int StreamRdd(int epoch) {
  return kStreamRddBase + epoch % kStreamRddSlots;
}

/// splitmix64 finalizer: the digest/key mixer of the stream workloads.
inline uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// FNV-style fold: windows fold in emission order, values within a
/// window must already be order-independent sums.
inline uint64_t FoldDigest(uint64_t digest, uint64_t v) {
  return (digest ^ Mix64(v)) * 1099511628211ULL;
}

/// Copies a finished stream context's epoch aggregates into the run
/// record (pause percentiles, reclaimed bytes, footprint drift samples).
void FillStreamRun(const stream::StreamContext& sc, RunResult* run);

}  // namespace deca::workloads

#endif  // DECA_WORKLOADS_STREAM_COMMON_H_
