#include <cstring>
#include <memory>
#include <vector>

#include "common/clock.h"
#include "common/logging.h"
#include "common/random.h"
#include "core/page.h"
#include "spark/shuffle.h"
#include "workloads/stream_common.h"

namespace deca::workloads {

using jvm::FieldKind;
using jvm::HandleScope;
using jvm::ObjRef;

namespace {

/// Managed (word, count) record class, shuffle ops (shared with the
/// window merge) and the cached-block record ops for swap.
struct SwcTypes {
  explicit SwcTypes(jvm::ClassRegistry* registry) {
    tuple2_cls = registry->RegisterClass(
        "scala.Tuple2", {{"_1", FieldKind::kRef}, {"_2", FieldKind::kRef}});
    const auto& tc = registry->Get(tuple2_cls);
    t1_off = tc.FieldOffset("_1");
    t2_off = tc.FieldOffset("_2");
    pair_cls = registry->RegisterClass(
        "WcPair", {{"word", FieldKind::kLong}, {"count", FieldKind::kLong}});
    const auto& pc = registry->Get(pair_cls);
    word_off = pc.FieldOffset("word");
    count_off = pc.FieldOffset("count");

    ops.key_hash = [](jvm::Heap* h, ObjRef k) -> uint64_t {
      return static_cast<uint64_t>(h->GetField<int64_t>(k, 0)) *
             0x9e3779b97f4a7c15ULL;
    };
    ops.key_equals = [](jvm::Heap* h, ObjRef a, ObjRef b) {
      return h->GetField<int64_t>(a, 0) == h->GetField<int64_t>(b, 0);
    };
    ops.combine = [](jvm::Heap* h, ObjRef agg, ObjRef v) -> ObjRef {
      int64_t sum = h->GetField<int64_t>(agg, 0) + h->GetField<int64_t>(v, 0);
      ObjRef fresh = h->AllocateInstance(h->registry()->boxed_long_class());
      h->SetField<int64_t>(fresh, 0, sum);
      return fresh;
    };
    ops.entry_bytes = [](jvm::Heap*, ObjRef, ObjRef) -> uint64_t {
      return 3 * (jvm::kHeaderBytes + 8) + 8;
    };
    ops.serialize_key = [](jvm::Heap* h, ObjRef k, ByteWriter* w) {
      w->WriteVarI64(h->GetField<int64_t>(k, 0));
    };
    ops.serialize_value = ops.serialize_key;
    ops.deserialize_key = [](jvm::Heap* h, ByteReader* r) -> ObjRef {
      ObjRef k = h->AllocateInstance(h->registry()->boxed_long_class());
      h->SetField<int64_t>(k, 0, r->ReadVarI64());
      return k;
    };
    ops.deserialize_value = ops.deserialize_key;
    ops.deca_key_bytes = 8;
    ops.deca_value_bytes = 8;
    ops.deca_key_hash = [](const uint8_t* k) -> uint64_t {
      return LoadRaw<uint64_t>(k) * 0x9e3779b97f4a7c15ULL;
    };
    ops.deca_combine = [](uint8_t* agg, const uint8_t* v) {
      StoreRaw<int64_t>(agg, LoadRaw<int64_t>(agg) + LoadRaw<int64_t>(v));
    };

    uint32_t wo = word_off;
    uint32_t co = count_off;
    uint32_t cls = pair_cls;
    rec_ops.managed_bytes = [](jvm::Heap*, ObjRef) -> uint64_t {
      return jvm::kHeaderBytes + 16 + 4;  // instance + Object[] slot
    };
    rec_ops.serialize = [wo, co](jvm::Heap* h, ObjRef r, ByteWriter* w) {
      w->Write<int64_t>(h->GetField<int64_t>(r, wo));
      w->Write<int64_t>(h->GetField<int64_t>(r, co));
    };
    rec_ops.deserialize = [cls, wo, co](jvm::Heap* h,
                                        ByteReader* r) -> ObjRef {
      ObjRef rec = h->AllocateInstance(cls);
      h->SetField<int64_t>(rec, wo, r->Read<int64_t>());
      h->SetField<int64_t>(rec, co, r->Read<int64_t>());
      return rec;
    };
  }

  uint32_t tuple2_cls;
  uint32_t t1_off;
  uint32_t t2_off;
  uint32_t pair_cls;
  uint32_t word_off;
  uint32_t count_off;
  spark::ShuffleOps ops;
  spark::RecordOps rec_ops;
};

}  // namespace

StreamResult RunStreamWordCount(const StreamParams& params) {
  spark::SparkConfig cfg = params.spark;
  ApplyMode(params.mode, &cfg);
  spark::SparkContext ctx(cfg);
  SwcTypes types(ctx.registry());
  for (int slot = 0; slot < kStreamRddSlots; ++slot) {
    ctx.RegisterCachedRdd(kStreamRddBase + slot, &types.rec_ops);
  }

  const bool deca = params.mode == Mode::kDeca;
  const int parts = ctx.num_partitions();
  const uint64_t per_part =
      std::max<uint64_t>(1, params.records_per_epoch /
                                static_cast<uint64_t>(parts));
  const size_t shuffle_budget = cfg.shuffle_budget_bytes();
  DECA_CHECK_LE(params.stream.window, kStreamRddSlots);

  StreamResult result;
  result.run.mode = params.mode;
  stream::StreamContext stream(&ctx, params.stream);
  Stopwatch run_sw;

  auto per_epoch = [&](int e, stream::EpochRegion& region) {
    int sid = ctx.shuffle()->RegisterShuffle(parts);
    region.AdoptShuffle(sid);

    // -- map: hash-combine this epoch's words, deposit per-reducer chunks.
    auto map_fn = [&ctx, &types, &params, deca, parts, per_part,
                   shuffle_budget, e, sid,
                   page_bytes = cfg.deca_page_bytes](spark::TaskContext& tc) {
      jvm::Heap* h = tc.heap();
      Rng rng(Mix64(params.seed ^ static_cast<uint64_t>(e)) +
              static_cast<uint64_t>(tc.partition()));
      std::vector<ByteWriter> outs(static_cast<size_t>(parts));
      std::vector<net::ChunkMeta> metas(static_cast<size_t>(parts));
      if (deca) {
        for (auto& meta : metas) meta.fixed_record_bytes = 16;
      }
      auto flush_deca = [&](spark::DecaHashShuffleBuffer& buf) {
        buf.ForEach([&](const uint8_t* entry) {
          uint64_t hash = types.ops.deca_key_hash(entry);
          outs[hash % static_cast<uint64_t>(parts)].WriteBytes(entry, 16);
        });
        buf.Clear();
      };
      auto flush_object = [&](spark::ObjectHashShuffleBuffer& buf) {
        buf.ForEach([&](ObjRef k, ObjRef v) {
          uint64_t hash = types.ops.key_hash(h, k);
          size_t r = hash % static_cast<uint64_t>(parts);
          ByteWriter& w = outs[r];
          size_t before = w.size();
          {
            ScopedTimerMs t(&tc.metrics().ser_ms);
            types.ops.serialize_key(h, k, &w);
            types.ops.serialize_value(h, v, &w);
          }
          metas[r].record_lens.push_back(
              static_cast<uint32_t>(w.size() - before));
        });
        buf.Clear();
      };
      if (deca) {
        spark::DecaHashShuffleBuffer buf(h, &types.ops, page_bytes);
        for (uint64_t i = 0; i < per_part; ++i) {
          int64_t word =
              static_cast<int64_t>(rng.NextBounded(params.distinct_keys));
          int64_t one = 1;
          buf.Insert(reinterpret_cast<const uint8_t*>(&word),
                     reinterpret_cast<const uint8_t*>(&one));
          if (buf.estimated_bytes() > shuffle_budget) flush_deca(buf);
        }
        flush_deca(buf);
      } else {
        spark::ObjectHashShuffleBuffer buf(h, &types.ops);
        for (uint64_t i = 0; i < per_part; ++i) {
          int64_t word =
              static_cast<int64_t>(rng.NextBounded(params.distinct_keys));
          HandleScope scope(h);
          // Per-record Tuple2 + boxed key/value churn, exactly as the
          // batch workload models the Scala UDF.
          jvm::Handle key = scope.Make(
              h->AllocateInstance(h->registry()->boxed_long_class()));
          h->SetField<int64_t>(key.get(), 0, word);
          jvm::Handle one = scope.Make(
              h->AllocateInstance(h->registry()->boxed_long_class()));
          h->SetField<int64_t>(one.get(), 0, 1);
          jvm::Handle tuple =
              scope.Make(h->AllocateInstance(types.tuple2_cls));
          h->SetRefField(tuple.get(), types.t1_off, key.get());
          h->SetRefField(tuple.get(), types.t2_off, one.get());
          buf.Insert(h->GetRefField(tuple.get(), types.t1_off),
                     h->GetRefField(tuple.get(), types.t2_off));
          if (buf.estimated_bytes() > shuffle_budget) flush_object(buf);
        }
        flush_object(buf);
      }
      ScopedTimerMs t(&tc.metrics().shuffle_write_ms);
      for (int r = 0; r < parts; ++r) {
        ctx.shuffle()->PutChunk(sid, r, tc.partition(),
                                outs[static_cast<size_t>(r)].TakeBuffer(),
                                metas[static_cast<size_t>(r)]);
      }
    };
    region.AdoptLineage(ctx.RunMapStage("stream-map", sid, map_fn));

    // -- reduce: merge this epoch's chunks into a per-partition count
    // table, cached as the epoch's block (and adopted by the region).
    // Doubles as the block's lineage: chunks outlive the block (both are
    // region-owned), so a replay re-reads them deterministically.
    auto reduce_fn = [&ctx, &types, &stream, deca, e, sid,
                      page_bytes =
                          cfg.deca_page_bytes](spark::TaskContext& tc) {
      jvm::Heap* h = tc.heap();
      int p = tc.partition();
      const auto& chunks = ctx.shuffle()->GetChunks(sid, p);
      spark::BlockKey key{StreamRdd(e), p};
      if (deca) {
        spark::DecaHashShuffleBuffer buf(h, &types.ops, page_bytes);
        for (const auto& chunk : chunks) {
          ScopedTimerMs t(&tc.metrics().shuffle_read_ms);
          for (size_t off = 0; off < chunk.size(); off += 16) {
            buf.Insert(chunk.data() + off, chunk.data() + off + 8);
          }
        }
        // Stage to native bytes first: page appends may GC, which would
        // invalidate the entry pointers a live ForEach hands out.
        std::vector<uint8_t> entries;
        entries.reserve(static_cast<size_t>(buf.size()) * 16);
        buf.ForEach([&](const uint8_t* entry) {
          entries.insert(entries.end(), entry, entry + 16);
        });
        auto pages = std::make_shared<core::PageGroup>(h, page_bytes);
        for (size_t off = 0; off < entries.size(); off += 16) {
          core::SegPtr seg = pages->Append(16);
          std::memcpy(pages->Resolve(seg), entries.data() + off, 16);
        }
        tc.cache()->PutPages(key, pages,
                             static_cast<uint32_t>(entries.size() / 16),
                             &tc.metrics());
      } else {
        spark::ObjectHashShuffleBuffer buf(h, &types.ops);
        for (const auto& chunk : chunks) {
          ByteReader r(chunk.data(), chunk.size());
          while (!r.AtEnd()) {
            HandleScope scope(h);
            jvm::Handle k, v;
            {
              ScopedTimerMs t(&tc.metrics().deser_ms);
              k = scope.Make(types.ops.deserialize_key(h, &r));
              v = scope.Make(types.ops.deserialize_value(h, &r));
            }
            buf.Insert(k.get(), v.get());
          }
        }
        std::vector<std::pair<int64_t, int64_t>> rows;
        rows.reserve(buf.size());
        buf.ForEach([&](ObjRef k, ObjRef v) {
          rows.emplace_back(h->GetField<int64_t>(k, 0),
                            h->GetField<int64_t>(v, 0));
        });
        HandleScope scope(h);
        jvm::Handle arr = scope.Make(h->AllocateArray(
            h->registry()->ref_array_class(),
            static_cast<uint32_t>(rows.size())));
        for (uint32_t i = 0; i < rows.size(); ++i) {
          ObjRef rec = h->AllocateInstance(types.pair_cls);
          h->SetField<int64_t>(rec, types.word_off, rows[i].first);
          h->SetField<int64_t>(rec, types.count_off, rows[i].second);
          h->SetRefElem(arr.get(), i, rec);
        }
        tc.cache()->PutObjects(key, arr.get(),
                               static_cast<uint32_t>(rows.size()),
                               &tc.metrics());
      }
      if (stream::EpochRegion* region = stream.region(e)) {
        region->AdoptBlock(tc.executor()->id(), key);
      }
    };
    ctx.RunStage("stream-reduce", reduce_fn);
    region.AdoptLineage(ctx.RegisterLineage(StreamRdd(e), reduce_fn));
  };

  uint64_t digest = 0;
  auto on_window = [&](const stream::StreamWindow& w) {
    std::vector<uint64_t> wtotal(static_cast<size_t>(parts), 0);
    std::vector<uint64_t> wdistinct(static_cast<size_t>(parts), 0);
    std::vector<uint64_t> wsum(static_cast<size_t>(parts), 0);
    ctx.RunStage("stream-window", [&](spark::TaskContext& tc) {
      jvm::Heap* h = tc.heap();
      int p = tc.partition();
      uint64_t total = 0;
      uint64_t distinct = 0;
      uint64_t checksum = 0;
      if (deca) {
        spark::DecaHashShuffleBuffer merge(h, &types.ops,
                                           cfg.deca_page_bytes);
        for (int ep = w.start; ep < w.end; ++ep) {
          spark::LoadedBlock b =
              tc.cache()->Get({StreamRdd(ep), p}, &tc.metrics());
          if (!b.valid()) continue;
          core::PageScanner scan(b.pages.get());
          while (!scan.AtEnd()) {
            uint8_t row[16];
            std::memcpy(row, scan.Cur(), 16);
            scan.Advance(16);
            merge.Insert(row, row + 8);  // may GC; row is native
          }
        }
        merge.ForEach([&](const uint8_t* entry) {
          uint64_t count = static_cast<uint64_t>(LoadRaw<int64_t>(entry + 8));
          total += count;
          ++distinct;
          checksum += Mix64(LoadRaw<uint64_t>(entry)) * count;
        });
      } else {
        spark::ObjectHashShuffleBuffer merge(h, &types.ops);
        auto insert_boxed = [&](int64_t word, int64_t count) {
          HandleScope inner(h);
          jvm::Handle k = inner.Make(
              h->AllocateInstance(h->registry()->boxed_long_class()));
          h->SetField<int64_t>(k.get(), 0, word);
          jvm::Handle v = inner.Make(
              h->AllocateInstance(h->registry()->boxed_long_class()));
          h->SetField<int64_t>(v.get(), 0, count);
          merge.Insert(k.get(), v.get());
        };
        for (int ep = w.start; ep < w.end; ++ep) {
          spark::LoadedBlock b =
              tc.cache()->Get({StreamRdd(ep), p}, &tc.metrics());
          if (!b.valid()) continue;
          HandleScope scope(h);
          if (b.level == spark::StorageLevel::kMemorySerialized) {
            // SparkSer: snapshot the byte[] natively (deserialization
            // allocates, which may move the managed array), then rebuild
            // each record as temporary objects.
            jvm::Handle bytes = scope.Make(b.serialized);
            size_t size = h->ArrayLength(bytes.get());
            std::vector<uint8_t> snapshot(size);
            std::memcpy(snapshot.data(), h->ArrayData(bytes.get()), size);
            ByteReader r(snapshot.data(), size);
            for (uint32_t i = 0; i < b.count; ++i) {
              HandleScope inner(h);
              ObjRef rec;
              {
                ScopedTimerMs t(&tc.metrics().deser_ms);
                rec = types.rec_ops.deserialize(h, &r);
              }
              insert_boxed(h->GetField<int64_t>(rec, types.word_off),
                           h->GetField<int64_t>(rec, types.count_off));
            }
          } else {
            jvm::Handle arr = scope.Make(b.object_array);
            for (uint32_t i = 0; i < b.count; ++i) {
              // Read the record's fields before insert_boxed allocates.
              ObjRef rec = h->GetRefElem(arr.get(), i);
              int64_t word = h->GetField<int64_t>(rec, types.word_off);
              int64_t count = h->GetField<int64_t>(rec, types.count_off);
              insert_boxed(word, count);
            }
          }
        }
        merge.ForEach([&](ObjRef k, ObjRef v) {
          uint64_t count =
              static_cast<uint64_t>(h->GetField<int64_t>(v, 0));
          total += count;
          ++distinct;
          checksum +=
              Mix64(static_cast<uint64_t>(h->GetField<int64_t>(k, 0))) *
              count;
        });
      }
      wtotal[static_cast<size_t>(p)] = total;
      wdistinct[static_cast<size_t>(p)] = distinct;
      wsum[static_cast<size_t>(p)] = checksum;
    });
    uint64_t total = 0;
    uint64_t distinct = 0;
    uint64_t checksum = 0;
    for (int p = 0; p < parts; ++p) {
      total += wtotal[static_cast<size_t>(p)];
      distinct += wdistinct[static_cast<size_t>(p)];
      checksum += wsum[static_cast<size_t>(p)];
    }
    digest = FoldDigest(digest, total);
    digest = FoldDigest(digest, distinct);
    digest = FoldDigest(digest, checksum);
    result.records_processed += total;
  };

  stream.RunEpochs(per_epoch, on_window);

  result.run.exec_ms = run_sw.ElapsedMillis();
  result.windows = static_cast<uint64_t>(stream.windows_emitted());
  result.digest = digest;
  uint64_t ingested = static_cast<uint64_t>(params.stream.epochs) *
                      per_part * static_cast<uint64_t>(parts);
  result.throughput_rps =
      result.run.exec_ms > 0
          ? static_cast<double>(ingested) / (result.run.exec_ms / 1000.0)
          : 0;
  FinalizeResult(&ctx, &result.run);
  FillStreamRun(stream, &result.run);  // after finalize: overrides slowest_task
  return result;
}

}  // namespace deca::workloads
