#include "workloads/kmeans.h"

#include <cmath>
#include <cstring>
#include <limits>

#include "common/clock.h"
#include "common/logging.h"
#include "common/random.h"

namespace deca::workloads {

using jvm::FieldKind;
using jvm::HandleScope;
using jvm::ObjRef;

namespace {

constexpr int kPointsRddId = 2;

/// Managed classes + shuffle ops for the per-cluster partial aggregates:
/// class ClusterStat { long count; double[] sums; }.
struct KMeansShuffle {
  KMeansShuffle(jvm::ClassRegistry* registry, int dims_in) : dims(dims_in) {
    stat_cls = registry->RegisterClass(
        "ClusterStat",
        {{"count", FieldKind::kLong}, {"sums", FieldKind::kRef}});
    const auto& ci = registry->Get(stat_cls);
    count_off = ci.FieldOffset("count");
    sums_off = ci.FieldOffset("sums");

    int d = dims;
    uint32_t stat_count = count_off;
    uint32_t stat_sums = sums_off;
    uint32_t cls = stat_cls;

    ops.key_hash = [](jvm::Heap* h, ObjRef k) -> uint64_t {
      return static_cast<uint64_t>(h->GetField<int64_t>(k, 0)) *
             0x9e3779b97f4a7c15ULL;
    };
    ops.key_equals = [](jvm::Heap* h, ObjRef a, ObjRef b) {
      return h->GetField<int64_t>(a, 0) == h->GetField<int64_t>(b, 0);
    };
    // Spark-style merge: a fresh ClusterStat (and sums array) per combine.
    ops.combine = [d, cls, stat_count, stat_sums](
                      jvm::Heap* h, ObjRef agg, ObjRef v) -> ObjRef {
      HandleScope scope(h);
      jvm::Handle ha = scope.Make(agg);
      jvm::Handle hv = scope.Make(v);
      jvm::Handle sums = scope.Make(h->AllocateArray(
          h->registry()->double_array_class(), static_cast<uint32_t>(d)));
      ObjRef asums = h->GetRefField(ha.get(), stat_sums);
      ObjRef vsums = h->GetRefField(hv.get(), stat_sums);
      for (int j = 0; j < d; ++j) {
        h->SetElem<double>(
            sums.get(), static_cast<uint32_t>(j),
            h->GetElem<double>(asums, static_cast<uint32_t>(j)) +
                h->GetElem<double>(vsums, static_cast<uint32_t>(j)));
      }
      jvm::Handle fresh = scope.Make(h->AllocateInstance(cls));
      h->SetField<int64_t>(fresh.get(), stat_count,
                           h->GetField<int64_t>(ha.get(), stat_count) +
                               h->GetField<int64_t>(hv.get(), stat_count));
      h->SetRefField(fresh.get(), stat_sums, sums.get());
      return fresh.get();
    };
    ops.entry_bytes = [d](jvm::Heap*, ObjRef, ObjRef) -> uint64_t {
      return (jvm::kHeaderBytes + 8) + (jvm::kHeaderBytes + 16) +
             (jvm::kHeaderBytes + 8ull * static_cast<uint64_t>(d)) + 8;
    };
    ops.serialize_key = [](jvm::Heap* h, ObjRef k, ByteWriter* w) {
      w->WriteVarI64(h->GetField<int64_t>(k, 0));
    };
    ops.serialize_value = [d, stat_count, stat_sums](jvm::Heap* h, ObjRef v,
                                                     ByteWriter* w) {
      w->WriteVarI64(h->GetField<int64_t>(v, stat_count));
      ObjRef sums = h->GetRefField(v, stat_sums);
      w->WriteBytes(h->ArrayData(sums), 8 * static_cast<size_t>(d));
    };
    ops.deserialize_key = [](jvm::Heap* h, ByteReader* r) -> ObjRef {
      ObjRef k = h->AllocateInstance(h->registry()->boxed_long_class());
      h->SetField<int64_t>(k, 0, r->ReadVarI64());
      return k;
    };
    ops.deserialize_value = [d, cls, stat_count, stat_sums](
                                jvm::Heap* h, ByteReader* r) -> ObjRef {
      HandleScope scope(h);
      int64_t count = r->ReadVarI64();
      jvm::Handle sums = scope.Make(h->AllocateArray(
          h->registry()->double_array_class(), static_cast<uint32_t>(d)));
      r->ReadBytes(h->ArrayData(sums.get()), 8 * static_cast<size_t>(d));
      ObjRef v = h->AllocateInstance(cls);
      h->SetField<int64_t>(v, stat_count, count);
      h->SetRefField(v, stat_sums, sums.get());
      return v;
    };
    // Deca: [count:i64 | sums: d doubles], summed in place.
    ops.deca_key_bytes = 8;
    ops.deca_value_bytes = 8 + 8 * static_cast<uint32_t>(d);
    ops.deca_key_hash = [](const uint8_t* k) -> uint64_t {
      return LoadRaw<uint64_t>(k) * 0x9e3779b97f4a7c15ULL;
    };
    ops.deca_combine = [d](uint8_t* agg, const uint8_t* v) {
      StoreRaw<int64_t>(agg, LoadRaw<int64_t>(agg) + LoadRaw<int64_t>(v));
      for (int j = 0; j < d; ++j) {
        size_t off = 8 + 8 * static_cast<size_t>(j);
        StoreRaw<double>(agg + off, LoadRaw<double>(agg + off) +
                                        LoadRaw<double>(v + off));
      }
    };
  }

  int dims;
  uint32_t stat_cls;
  uint32_t count_off, sums_off;
  spark::ShuffleOps ops;
};

int NearestCenter(const std::vector<std::vector<double>>& centers,
                  const double* point, int dims) {
  int best = 0;
  double best_d = std::numeric_limits<double>::max();
  for (size_t c = 0; c < centers.size(); ++c) {
    double dist = 0;
    for (int j = 0; j < dims; ++j) {
      double diff = centers[c][static_cast<size_t>(j)] - point[j];
      dist += diff * diff;
    }
    if (dist < best_d) {
      best_d = dist;
      best = static_cast<int>(c);
    }
  }
  return best;
}

}  // namespace

KMeansResult RunKMeans(const MlParams& params) {
  spark::SparkConfig cfg = params.spark;
  ApplyMode(params.mode, &cfg);
  spark::SparkContext ctx(cfg);
  LrTypes types(ctx.registry(), params.dims);
  KMeansShuffle shuffle(ctx.registry(), params.dims);
  ctx.RegisterCachedRdd(kPointsRddId, &types.ops());

  bool deca = params.mode == Mode::kDeca;
  KMeansResult result;
  result.run.mode = params.mode;
  int parts = ctx.num_partitions();
  uint64_t per_part = params.num_points / static_cast<uint64_t>(parts);
  int dims = params.dims;
  int k = params.clusters;

  // -- load & cache points (mixture of k Gaussians).
  Stopwatch load_sw;
  ctx.RunStage("load", [&](spark::TaskContext& tc) {
    Rng rng(params.seed + static_cast<uint64_t>(tc.partition()));
    CachePoints(tc, types, kPointsRddId, deca, cfg.deca_page_bytes, per_part,
                [&](double* feats) {
                  int cluster = static_cast<int>(
                      rng.NextBounded(static_cast<uint64_t>(k)));
                  for (int j = 0; j < dims; ++j) {
                    feats[j] = cluster * 10.0 + rng.NextGaussian();
                  }
                  return 0.0;
                });
  });
  result.run.load_ms = load_sw.ElapsedMillis();
  ctx.ResetMetrics();

  // -- initial centers: k points spread across clusters.
  std::vector<std::vector<double>> centers(
      static_cast<size_t>(k), std::vector<double>(static_cast<size_t>(dims)));
  Rng crng(params.seed * 17 + 3);
  for (int c = 0; c < k; ++c) {
    for (int j = 0; j < dims; ++j) {
      centers[static_cast<size_t>(c)][static_cast<size_t>(j)] =
          c * 10.0 + crng.NextGaussian() * 2.0;
    }
  }

  Stopwatch exec_sw;
  for (int iter = 0; iter < params.iterations; ++iter) {
    int shuffle_id = ctx.shuffle()->RegisterShuffle(parts);

    // Map: assign points to centers, eagerly combining per-cluster sums.
    ctx.RunStage("assign", [&](spark::TaskContext& tc) {
      jvm::Heap* h = tc.heap();
      std::vector<ByteWriter> outs(static_cast<size_t>(parts));
      if (deca) {
        spark::DecaHashShuffleBuffer buf(h, &shuffle.ops,
                                         cfg.deca_page_bytes);
        std::vector<uint8_t> value(8 + 8 * static_cast<size_t>(dims));
        uint32_t rec = 8 + 8 * static_cast<uint32_t>(dims);
        ForEachPointBlock(tc, kPointsRddId,
                          [&](const spark::LoadedBlock& block) {
          core::PageScanner scan(block.pages.get());
          while (!scan.AtEnd()) {
            const uint8_t* p = scan.Cur();
            const double* feats = reinterpret_cast<const double*>(p + 8);
            int64_t c = NearestCenter(centers, feats, dims);
            StoreRaw<int64_t>(value.data(), 1);
            std::memcpy(value.data() + 8, feats,
                        8 * static_cast<size_t>(dims));
            buf.Insert(reinterpret_cast<const uint8_t*>(&c), value.data());
            scan.Advance(rec);
          }
        });
        uint32_t entry = 8 + shuffle.ops.deca_value_bytes;
        buf.ForEach([&](const uint8_t* e) {
          uint64_t hash = shuffle.ops.deca_key_hash(e);
          ScopedTimerMs t(&tc.metrics().shuffle_write_ms);
          outs[hash % static_cast<uint64_t>(parts)].WriteBytes(e, entry);
        });
      } else {
        spark::ObjectHashShuffleBuffer buf(h, &shuffle.ops);
        std::vector<double> feats(static_cast<size_t>(dims));
        // Emits one fresh (key, ClusterStat) pair per point — Spark's map
        // output objects.
        auto emit_point = [&]() {
          HandleScope inner(h);
          int64_t c = NearestCenter(centers, feats.data(), dims);
          jvm::Handle key = inner.Make(
              h->AllocateInstance(h->registry()->boxed_long_class()));
          h->SetField<int64_t>(key.get(), 0, c);
          jvm::Handle sums = inner.Make(h->AllocateArray(
              h->registry()->double_array_class(),
              static_cast<uint32_t>(dims)));
          std::memcpy(h->ArrayData(sums.get()), feats.data(),
                      8 * static_cast<size_t>(dims));
          jvm::Handle stat =
              inner.Make(h->AllocateInstance(shuffle.stat_cls));
          h->SetField<int64_t>(stat.get(), shuffle.count_off, 1);
          h->SetRefField(stat.get(), shuffle.sums_off, sums.get());
          buf.Insert(key.get(), stat.get());
        };
        ForEachPointBlock(tc, kPointsRddId,
                          [&](const spark::LoadedBlock& block) {
          HandleScope scope(h);
          if (block.level == spark::StorageLevel::kMemoryObjects) {
            jvm::Handle arr = scope.Make(block.object_array);
            for (uint32_t i = 0; i < block.count; ++i) {
              ObjRef lp = h->GetRefElem(arr.get(), i);
              ObjRef dv = h->GetRefField(lp, types.lp_features_off());
              ObjRef data = h->GetRefField(dv, types.dv_data_off());
              for (int j = 0; j < dims; ++j) {
                feats[static_cast<size_t>(j)] =
                    h->GetElem<double>(data, static_cast<uint32_t>(j));
              }
              emit_point();
            }
          } else {
            // SparkSer: deserialize every point, then compute.
            jvm::Handle bytes = scope.Make(block.serialized);
            size_t size = h->ArrayLength(bytes.get());
            std::vector<uint8_t> snapshot(size);
            std::memcpy(snapshot.data(), h->ArrayData(bytes.get()), size);
            ByteReader r(snapshot.data(), size);
            for (uint32_t i = 0; i < block.count; ++i) {
              HandleScope inner(h);
              ObjRef lp;
              {
                ScopedTimerMs t(&tc.metrics().deser_ms);
                lp = types.ops().deserialize(h, &r);
              }
              jvm::Handle hlp = inner.Make(lp);
              ObjRef dv = h->GetRefField(hlp.get(), types.lp_features_off());
              ObjRef data = h->GetRefField(dv, types.dv_data_off());
              for (int j = 0; j < dims; ++j) {
                feats[static_cast<size_t>(j)] =
                    h->GetElem<double>(data, static_cast<uint32_t>(j));
              }
              emit_point();
            }
          }
        });
        buf.ForEach([&](ObjRef kk, ObjRef vv) {
          uint64_t hash = shuffle.ops.key_hash(h, kk);
          ByteWriter& w = outs[hash % static_cast<uint64_t>(parts)];
          ScopedTimerMs t(&tc.metrics().ser_ms);
          shuffle.ops.serialize_key(h, kk, &w);
          shuffle.ops.serialize_value(h, vv, &w);
        });
      }
      {
        ScopedTimerMs t(&tc.metrics().shuffle_write_ms);
        for (int r = 0; r < parts; ++r) {
          ctx.shuffle()->PutChunk(shuffle_id, r, tc.partition(),
                                  outs[static_cast<size_t>(r)].TakeBuffer());
        }
      }
    });

    // Reduce: merge partial aggregates, emit new centers. Each cluster
    // key hashes to exactly one reducer, so concurrent tasks write
    // disjoint counts[c] / new_centers[c] rows — no races, and the
    // per-cluster float accumulation order is fixed by the reducer's
    // (map-partition-sorted) chunk order.
    std::vector<std::vector<double>> new_centers(
        static_cast<size_t>(k),
        std::vector<double>(static_cast<size_t>(dims), 0.0));
    std::vector<int64_t> counts(static_cast<size_t>(k), 0);
    ctx.RunStage("update", [&](spark::TaskContext& tc) {
      jvm::Heap* h = tc.heap();
      const auto& chunks =
          ctx.shuffle()->GetChunks(shuffle_id, tc.partition());
      if (deca) {
        spark::DecaHashShuffleBuffer buf(h, &shuffle.ops,
                                         cfg.deca_page_bytes);
        uint32_t entry = 8 + shuffle.ops.deca_value_bytes;
        for (const auto& chunk : chunks) {
          ScopedTimerMs t(&tc.metrics().shuffle_read_ms);
          for (size_t off = 0; off < chunk.size(); off += entry) {
            buf.Insert(chunk.data() + off, chunk.data() + off + 8);
          }
        }
        buf.ForEach([&](const uint8_t* e) {
          int64_t c = LoadRaw<int64_t>(e);
          counts[static_cast<size_t>(c)] += LoadRaw<int64_t>(e + 8);
          for (int j = 0; j < dims; ++j) {
            new_centers[static_cast<size_t>(c)][static_cast<size_t>(j)] +=
                LoadRaw<double>(e + 16 + 8 * static_cast<size_t>(j));
          }
        });
      } else {
        spark::ObjectHashShuffleBuffer buf(h, &shuffle.ops);
        for (const auto& chunk : chunks) {
          ByteReader r(chunk.data(), chunk.size());
          while (!r.AtEnd()) {
            HandleScope inner(h);
            jvm::Handle kk, vv;
            {
              ScopedTimerMs t(&tc.metrics().deser_ms);
              kk = inner.Make(shuffle.ops.deserialize_key(h, &r));
              vv = inner.Make(shuffle.ops.deserialize_value(h, &r));
            }
            buf.Insert(kk.get(), vv.get());
          }
        }
        buf.ForEach([&](ObjRef kk, ObjRef vv) {
          int64_t c = h->GetField<int64_t>(kk, 0);
          counts[static_cast<size_t>(c)] +=
              h->GetField<int64_t>(vv, shuffle.count_off);
          ObjRef sums = h->GetRefField(vv, shuffle.sums_off);
          for (int j = 0; j < dims; ++j) {
            new_centers[static_cast<size_t>(c)][static_cast<size_t>(j)] +=
                h->GetElem<double>(sums, static_cast<uint32_t>(j));
          }
        });
      }
    });
    ctx.shuffle()->Release(shuffle_id);
    for (int c = 0; c < k; ++c) {
      if (counts[static_cast<size_t>(c)] == 0) continue;
      for (int j = 0; j < dims; ++j) {
        centers[static_cast<size_t>(c)][static_cast<size_t>(j)] =
            new_centers[static_cast<size_t>(c)][static_cast<size_t>(j)] /
            static_cast<double>(counts[static_cast<size_t>(c)]);
      }
    }
  }
  result.run.exec_ms = exec_sw.ElapsedMillis();
  result.centers = centers;
  FinalizeResult(&ctx, &result.run);
  return result;
}

}  // namespace deca::workloads
