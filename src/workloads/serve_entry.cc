#include "workloads/serve_entry.h"

#include <algorithm>
#include <cstring>

#include "cluster/scoped_job.h"
#include "common/clock.h"
#include "common/logging.h"
#include "common/random.h"
#include "workloads/dist_entry.h"
#include "workloads/lr.h"

namespace deca::workloads {

using jvm::HandleScope;
using jvm::ObjRef;

namespace {

constexpr int kServeRddId = 9;

uint64_t DoubleBits(double v) {
  uint64_t b;
  std::memcpy(&b, &v, sizeof(b));
  return b;
}

uint64_t MixBits(uint64_t x) {
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdULL;
  x ^= x >> 33;
  return x;
}

size_t VarU64Len(uint64_t v) {
  size_t n = 1;
  while (v >= 0x80) {
    v >>= 7;
    ++n;
  }
  return n;
}

/// Reads record `slot`'s key value and feature `j` out of a loaded block
/// without materializing anything the query does not touch. Covers every
/// representation GetLazy can hand back: the three T0 heap forms, and the
/// packed T1/T2 payloads (Kryo run or raw page bytes) served when the
/// admission policy rejects promotion.
void ReadRecord(jvm::Heap* h, const LrTypes& types,
                const spark::LoadedBlock& b, uint32_t slot, int j,
                double* label, double* feat) {
  int dims = types.dims();
  size_t raw_rec = 8 + 8 * static_cast<size_t>(dims);
  size_t ser_rec = 8 + VarU64Len(static_cast<uint64_t>(dims)) +
                   8 * static_cast<size_t>(dims);
  auto read_ser = [&](const uint8_t* base) {
    // Fixed-stride Kryo records: double label, varint dims, dims doubles.
    const uint8_t* p = base + static_cast<size_t>(slot) * ser_rec;
    *label = LoadRaw<double>(p);
    *feat = LoadRaw<double>(p + (ser_rec - 8 * static_cast<size_t>(dims)) +
                            8 * static_cast<size_t>(j));
  };
  auto read_raw = [&](const uint8_t* rec) {
    *label = LoadRaw<double>(rec);
    *feat = LoadRaw<double>(rec + 8 + 8 * static_cast<size_t>(j));
  };
  if (b.object_array != jvm::kNullRef) {
    ObjRef lp = h->GetRefElem(b.object_array, slot);
    *label = h->GetField<double>(lp, types.lp_label_off());
    ObjRef dv = h->GetRefField(lp, types.lp_features_off());
    ObjRef data = h->GetRefField(dv, types.dv_data_off());
    *feat = h->GetElem<double>(data, static_cast<uint32_t>(j));
    return;
  }
  if (b.serialized != jvm::kNullRef) {
    read_ser(h->ArrayData(b.serialized));
    return;
  }
  if (b.pages != nullptr) {
    // Random access into the page group: PageScanner is a sequential
    // cursor (Normalize drops the intra-page remainder at boundaries), so
    // index the page directly — records never span pages, and Append
    // packs them without padding, so page_used is a record multiple.
    const core::PageGroup& pg = *b.pages;
    uint32_t page = 0;
    uint32_t rem = slot;
    for (;; ++page) {
      DECA_CHECK_LT(page, pg.page_count())
          << "slot " << slot << " out of range in page group";
      uint32_t n = pg.page_used(page) / static_cast<uint32_t>(raw_rec);
      if (rem < n) break;
      rem -= n;
    }
    read_raw(pg.Resolve({page, rem * static_cast<uint32_t>(raw_rec)}));
    return;
  }
  DECA_CHECK(b.packed != nullptr) << "invalid block reached ReadRecord";
  if (b.level == spark::StorageLevel::kDecaPages) {
    // Raw page bytes: walk page headers, then index into the page that
    // holds `slot` (records never span pages).
    core::RawPageCursor cur(b.packed->data(), b.packed->size());
    const uint8_t* page = nullptr;
    uint32_t used = 0;
    uint32_t base = 0;
    while (cur.Next(&page, &used)) {
      uint32_t n = used / static_cast<uint32_t>(raw_rec);
      if (slot < base + n) {
        read_raw(page + static_cast<size_t>(slot - base) * raw_rec);
        return;
      }
      base += n;
    }
    DECA_CHECK(false) << "slot " << slot << " out of range in raw pages";
  } else {
    read_ser(b.packed->data());
  }
}

}  // namespace

ServeResult RunServeCache(const ServeParams& params) {
  spark::SparkConfig cfg = params.spark;
  ApplyMode(params.mode, &cfg);
  cluster::ScopedJob job(&cfg, "serve", EncodeServeParams(params));
  spark::SparkContext ctx(cfg);
  LrTypes types(ctx.registry(), params.record_doubles);
  ctx.RegisterCachedRdd(kServeRddId, &types.ops());
  bool deca = params.mode == Mode::kDeca;

  ServeResult result;
  result.run.mode = params.mode;
  int parts = ctx.num_partitions();
  uint64_t per_part = params.num_records / static_cast<uint64_t>(parts);
  DECA_CHECK_LE(per_part, 1024ull * kServeSubBlockRecords)
      << "partition overflows the sub-block key space";
  int dims = params.record_doubles;

  // -- build: cache the user table in kServeSubBlockRecords-record
  // sub-blocks. Registered as the RDD's lineage so a crash-wiped
  // executor's partitions reload deterministically before the next stage.
  auto load_task = [&types, &params, deca, dims, per_part,
                    page_bytes = cfg.deca_page_bytes](spark::TaskContext& tc) {
    jvm::Heap* h = tc.heap();
    Rng rng(params.seed + static_cast<uint64_t>(tc.partition()));
    std::vector<double> feats(static_cast<size_t>(dims));
    auto gen = [&rng, dims](double* f) {
      for (int j = 0; j < dims; ++j) f[j] = rng.NextDouble(-1.0, 1.0);
      return rng.NextDouble(0.0, 1e6);
    };
    uint64_t done = 0;
    int sub = 0;
    while (done < per_part) {
      uint32_t n = static_cast<uint32_t>(
          std::min<uint64_t>(kServeSubBlockRecords, per_part - done));
      spark::BlockKey key{kServeRddId, tc.partition() * 1024 + sub};
      if (deca) {
        auto pages = std::make_shared<core::PageGroup>(h, page_bytes);
        uint32_t rec = 8 + 8 * static_cast<uint32_t>(dims);
        for (uint32_t i = 0; i < n; ++i) {
          double label = gen(feats.data());
          core::SegPtr seg = pages->Append(rec);
          uint8_t* p = pages->Resolve(seg);
          StoreRaw<double>(p, label);
          std::memcpy(p + 8, feats.data(), sizeof(double) * feats.size());
        }
        tc.cache()->PutPages(key, pages, n, &tc.metrics());
      } else {
        HandleScope scope(h);
        jvm::Handle arr = scope.Make(
            h->AllocateArray(h->registry()->ref_array_class(), n));
        for (uint32_t i = 0; i < n; ++i) {
          double label = gen(feats.data());
          HandleScope inner(h);
          ObjRef lp = types.NewLabeledPoint(h, label, feats.data());
          h->SetRefElem(arr.get(), i, lp);
        }
        tc.cache()->PutObjects(key, arr.get(), n, &tc.metrics());
      }
      done += n;
      ++sub;
    }
  };
  Stopwatch load_sw;
  ctx.RunStage("load", load_task);
  ctx.RegisterLineage(kServeRddId, load_task);
  result.run.load_ms = load_sw.ElapsedMillis();
  ctx.ResetMetrics();

  // -- serve: closed-loop stages of Zipf-skewed point queries. The skew
  // gives the admission policy something to exploit — a hot head of
  // sub-blocks worth keeping in T0, a cold tail better left packed.
  Stopwatch exec_sw;
  Histogram lat;
  uint64_t digest = 0;
  for (int s = 0; s < params.serve_stages; ++s) {
    auto blobs = ctx.RunCollectStage(
        "serve", [&, s](spark::TaskContext& tc) -> std::vector<uint8_t> {
          jvm::Heap* h = tc.heap();
          ZipfSampler zipf(per_part, 1.05,
                           params.seed * 1000003ULL +
                               static_cast<uint64_t>(s + 1) * 8191ULL +
                               static_cast<uint64_t>(tc.partition()));
          uint64_t d = 0;
          std::vector<double> lats;
          lats.reserve(static_cast<size_t>(params.queries_per_task));
          for (int q = 0; q < params.queries_per_task; ++q) {
            uint64_t idx = zipf.Next();
            int sub = static_cast<int>(idx / kServeSubBlockRecords);
            uint32_t slot =
                static_cast<uint32_t>(idx % kServeSubBlockRecords);
            Stopwatch sw;
            spark::LoadedBlock b = tc.cache()->GetLazy(
                {kServeRddId, tc.partition() * 1024 + sub}, &tc.metrics());
            DECA_CHECK(b.valid()) << "lost block escaped lineage replay";
            double label = 0, feat = 0;
            ReadRecord(h, types, b, slot, q % dims, &label, &feat);
            lats.push_back(sw.ElapsedMillis());
            // Value-only fold: identical across modes, tier policies,
            // collectors, thread counts, and fault injection.
            d = d * 1099511628211ULL ^
                MixBits(DoubleBits(label) +
                        0x9e3779b97f4a7c15ULL * DoubleBits(feat));
          }
          ByteWriter w;
          w.WriteVarU64(d);
          w.WriteVarU64(lats.size());
          for (double ms : lats) w.Write<double>(ms);
          return w.TakeBuffer();
        });
    // Partition-order fold; latency samples merge into one distribution.
    for (const auto& blob : blobs) {
      ByteReader r(blob.data(), blob.size());
      digest = digest * 1099511628211ULL ^ r.ReadVarU64();
      uint64_t n = r.ReadVarU64();
      for (uint64_t i = 0; i < n; ++i) lat.Add(r.Read<double>());
    }
  }
  result.run.exec_ms = exec_sw.ElapsedMillis();
  result.digest = digest;
  result.queries = static_cast<uint64_t>(params.serve_stages) *
                   static_cast<uint64_t>(parts) *
                   static_cast<uint64_t>(params.queries_per_task);
  result.qps = result.run.exec_ms > 0
                   ? static_cast<double>(result.queries) /
                         (result.run.exec_ms / 1000.0)
                   : 0;
  if (lat.count() > 0) {
    result.latency_p50_ms = lat.Percentile(50);
    result.latency_p99_ms = lat.Percentile(99);
  }
  FinalizeResult(&ctx, &result.run);
  return result;
}

}  // namespace deca::workloads
