#ifndef DECA_WORKLOADS_LR_H_
#define DECA_WORKLOADS_LR_H_

#include <vector>

#include "analysis/global_classifier.h"
#include "core/sudt_layout.h"
#include "spark/context.h"
#include "workloads/common.h"

namespace deca::workloads {

/// Parameters shared by the two iterative ML workloads (LR and KMeans).
struct MlParams {
  int dims = 10;
  uint64_t num_points = 100000;  // across all partitions
  int iterations = 10;
  int clusters = 10;  // KMeans only
  Mode mode = Mode::kSpark;
  spark::SparkConfig spark;
  /// Sample live LabeledPoint count + GC time once per iteration
  /// (Figure 9a).
  bool profile = false;
  uint64_t seed = 42;
};

/// The managed types, annotated-type model, classification verdict, and
/// record operations for the paper's LabeledPoint/DenseVector running
/// example. Built once per context.
class LrTypes {
 public:
  LrTypes(jvm::ClassRegistry* registry, int dims);

  uint32_t labeled_point_cls() const { return labeled_point_cls_; }
  uint32_t dense_vector_cls() const { return dense_vector_cls_; }
  const spark::RecordOps& ops() const { return ops_; }
  const core::SudtLayout& layout() const { return layout_; }
  int dims() const { return dims_; }

  /// Size-type of LabeledPoint per the global classifier over the LR
  /// stage's call graph (paper Section 3.3: SFST).
  analysis::SizeType classified() const { return classified_; }

  /// Builds one LabeledPoint object graph in `heap`; caller roots it.
  jvm::ObjRef NewLabeledPoint(jvm::Heap* heap, double label,
                              const double* features) const;

  // Cached field offsets.
  uint32_t lp_label_off() const { return lp_label_off_; }
  uint32_t lp_features_off() const { return lp_features_off_; }
  uint32_t dv_data_off() const { return dv_data_off_; }

 private:
  void BuildUdtModel();
  void BuildOps();

  int dims_;
  jvm::ClassRegistry* registry_;
  uint32_t labeled_point_cls_;
  uint32_t dense_vector_cls_;
  uint32_t lp_label_off_, lp_features_off_;
  uint32_t dv_data_off_, dv_offset_off_, dv_stride_off_, dv_length_off_;

  analysis::TypeUniverse universe_;
  const analysis::UdtType* lp_udt_ = nullptr;
  analysis::CallGraph stage_cg_;
  analysis::SizeType classified_ = analysis::SizeType::kVariable;
  core::SudtLayout layout_;
  spark::RecordOps ops_;
};

struct LrResult {
  RunResult run;
  std::vector<double> weights;  // final model, for cross-mode validation
};

/// Points are cached as sub-blocks of at most this many bytes (object
/// form), so block materialization interleaves with LRU eviction the way
/// Spark's unroll memory does.
inline constexpr uint64_t kPointSubBlockBytes = 4u << 20;

/// Generates and caches `count` points for this task's partition as
/// sub-blocks under `rdd_id`. `gen` fills the feature buffer and returns
/// the label. Used by both LR and KMeans.
void CachePoints(spark::TaskContext& tc, const LrTypes& types, int rdd_id,
                 bool deca, uint32_t page_bytes, uint64_t count,
                 const std::function<double(double* feats)>& gen);

/// Visits every cached sub-block of (rdd_id, this partition) in order,
/// streaming swapped ones back from disk. Blocks are fetched one at a time
/// — the callback must root any managed refs it holds across allocations.
void ForEachPointBlock(
    spark::TaskContext& tc, int rdd_id,
    const std::function<void(const spark::LoadedBlock&)>& fn);

/// Runs the paper's Logistic Regression benchmark (Figure 1's program):
/// cache the labeled points, then `iterations` gradient steps. Execution
/// time excludes the load stage, as in the paper (Section 6.2).
LrResult RunLogisticRegression(const MlParams& params);

}  // namespace deca::workloads

#endif  // DECA_WORKLOADS_LR_H_
