#include "workloads/dist_entry.h"

#include <unistd.h>

#include "cluster/daemon_runtime.h"
#include "cluster/scoped_job.h"
#include "cluster/workload_registry.h"
#include "common/bytes.h"
#include "common/clock.h"

namespace deca::workloads {

std::vector<uint8_t> EncodeWordCountParams(const WordCountParams& p) {
  ByteWriter w;
  w.WriteVarU64(p.total_words);
  w.WriteVarU64(p.distinct_keys);
  w.Write<double>(p.zipf_s);
  w.Write<uint8_t>(static_cast<uint8_t>(p.mode));
  w.Write<uint8_t>(p.profile ? 1 : 0);
  w.WriteVarU64(p.profile_every);
  w.WriteVarU64(p.seed);
  return w.TakeBuffer();
}

WordCountParams DecodeWordCountParams(const std::vector<uint8_t>& blob) {
  ByteReader r(blob.data(), blob.size());
  WordCountParams p;
  p.total_words = r.ReadVarU64();
  p.distinct_keys = r.ReadVarU64();
  p.zipf_s = r.Read<double>();
  p.mode = static_cast<Mode>(r.Read<uint8_t>());
  p.profile = r.Read<uint8_t>() != 0;
  p.profile_every = r.ReadVarU64();
  p.seed = r.ReadVarU64();
  return p;
}

std::vector<uint8_t> EncodeMlParams(const MlParams& p) {
  ByteWriter w;
  w.WriteVarI64(p.dims);
  w.WriteVarU64(p.num_points);
  w.WriteVarI64(p.iterations);
  w.WriteVarI64(p.clusters);
  w.Write<uint8_t>(static_cast<uint8_t>(p.mode));
  w.Write<uint8_t>(p.profile ? 1 : 0);
  w.WriteVarU64(p.seed);
  return w.TakeBuffer();
}

MlParams DecodeMlParams(const std::vector<uint8_t>& blob) {
  ByteReader r(blob.data(), blob.size());
  MlParams p;
  p.dims = static_cast<int>(r.ReadVarI64());
  p.num_points = r.ReadVarU64();
  p.iterations = static_cast<int>(r.ReadVarI64());
  p.clusters = static_cast<int>(r.ReadVarI64());
  p.mode = static_cast<Mode>(r.Read<uint8_t>());
  p.profile = r.Read<uint8_t>() != 0;
  p.seed = r.ReadVarU64();
  return p;
}

std::vector<uint8_t> EncodeServeParams(const ServeParams& p) {
  ByteWriter w;
  w.WriteVarU64(p.num_records);
  w.WriteVarI64(p.record_doubles);
  w.WriteVarI64(p.queries_per_task);
  w.WriteVarI64(p.serve_stages);
  w.Write<uint8_t>(static_cast<uint8_t>(p.mode));
  w.WriteVarU64(p.seed);
  return w.TakeBuffer();
}

ServeParams DecodeServeParams(const std::vector<uint8_t>& blob) {
  ByteReader r(blob.data(), blob.size());
  ServeParams p;
  p.num_records = r.ReadVarU64();
  p.record_doubles = static_cast<int>(r.ReadVarI64());
  p.queries_per_task = static_cast<int>(r.ReadVarI64());
  p.serve_stages = static_cast<int>(r.ReadVarI64());
  p.mode = static_cast<Mode>(r.Read<uint8_t>());
  p.seed = r.ReadVarU64();
  return p;
}

std::vector<uint8_t> EncodeProbeParams(const ProbeParams& p) {
  ByteWriter w;
  w.WriteVarI64(p.stages);
  w.WriteVarU64(p.items_per_partition);
  w.WriteVarI64(p.die_stage);
  w.WriteVarI64(p.die_partition);
  w.WriteVarI64(p.die_generations);
  return w.TakeBuffer();
}

ProbeParams DecodeProbeParams(const std::vector<uint8_t>& blob) {
  ByteReader r(blob.data(), blob.size());
  ProbeParams p;
  p.stages = static_cast<int>(r.ReadVarI64());
  p.items_per_partition = r.ReadVarU64();
  p.die_stage = static_cast<int>(r.ReadVarI64());
  p.die_partition = static_cast<int>(r.ReadVarI64());
  p.die_generations = static_cast<int>(r.ReadVarI64());
  return p;
}

ProbeResult RunDistProbe(const ProbeParams& params) {
  spark::SparkConfig cfg = params.spark;
  cluster::ScopedJob job(&cfg, "probe", EncodeProbeParams(params));
  spark::SparkContext ctx(cfg);

  ProbeResult result;
  Stopwatch sw;
  uint64_t checksum = 0;
  for (int s = 0; s < params.stages; ++s) {
    auto blobs = ctx.RunCollectStage(
        "probe", [&params, s](spark::TaskContext& tc) -> std::vector<uint8_t> {
          cluster::DaemonRuntime* rt = cluster::DaemonRuntime::Current();
          if (rt != nullptr && s == params.die_stage &&
              tc.partition() == params.die_partition &&
              rt->generation() < params.die_generations) {
            // Sudden death, indistinguishable from a SIGKILL: no reply,
            // no unwinding, the heartbeat monitor must find out.
            _exit(137);
          }
          uint64_t h = 0;
          for (uint64_t i = 0; i < params.items_per_partition; ++i) {
            uint64_t x = (static_cast<uint64_t>(s) << 32) ^
                         (static_cast<uint64_t>(tc.partition()) << 16) ^ i;
            x *= 0x9e3779b97f4a7c15ULL;
            x ^= x >> 29;
            h ^= x;
          }
          ByteWriter w;
          w.WriteVarU64(h);
          return w.TakeBuffer();
        });
    // Position-sensitive fold so a permuted gather would show up.
    for (const auto& blob : blobs) {
      ByteReader r(blob.data(), blob.size());
      checksum = checksum * 1099511628211ULL ^ r.ReadVarU64();
    }
  }
  result.checksum = checksum;
  result.run.exec_ms = sw.ElapsedMillis();
  FinalizeResult(&ctx, &result.run);
  return result;
}

void RegisterDistWorkloads() {
  cluster::RegisterWorkload(
      "wordcount", [](const spark::SparkConfig& base,
                      const std::vector<uint8_t>& blob) {
        WordCountParams p = DecodeWordCountParams(blob);
        p.spark = base;
        RunWordCount(p);
      });
  cluster::RegisterWorkload(
      "lr", [](const spark::SparkConfig& base,
               const std::vector<uint8_t>& blob) {
        MlParams p = DecodeMlParams(blob);
        p.spark = base;
        RunLogisticRegression(p);
      });
  cluster::RegisterWorkload(
      "serve", [](const spark::SparkConfig& base,
                  const std::vector<uint8_t>& blob) {
        ServeParams p = DecodeServeParams(blob);
        p.spark = base;
        RunServeCache(p);
      });
  cluster::RegisterWorkload(
      "probe", [](const spark::SparkConfig& base,
                  const std::vector<uint8_t>& blob) {
        ProbeParams p = DecodeProbeParams(blob);
        p.spark = base;
        RunDistProbe(p);
      });
}

}  // namespace deca::workloads
