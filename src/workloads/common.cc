#include "workloads/common.h"

namespace deca::workloads {

const char* ModeName(Mode m) {
  switch (m) {
    case Mode::kSpark:
      return "Spark";
    case Mode::kSparkSer:
      return "SparkSer";
    case Mode::kDeca:
      return "Deca";
  }
  return "?";
}

void ApplyMode(Mode mode, spark::SparkConfig* config) {
  switch (mode) {
    case Mode::kSpark:
      config->cache_level = spark::StorageLevel::kMemoryObjects;
      config->deca_shuffle = false;
      break;
    case Mode::kSparkSer:
      config->cache_level = spark::StorageLevel::kMemorySerialized;
      config->deca_shuffle = false;
      break;
    case Mode::kDeca:
      config->cache_level = spark::StorageLevel::kDecaPages;
      config->deca_shuffle = true;
      break;
  }
}

void FinalizeResult(spark::SparkContext* ctx, RunResult* result) {
  result->gc_ms = ctx->TotalGcPauseMs();
  result->concurrent_gc_ms = ctx->TotalConcurrentGcMs();
  result->minor_gcs = ctx->TotalMinorGcs();
  result->full_gcs = ctx->TotalFullGcs();
  result->cached_mb =
      static_cast<double>(ctx->PeakCachedMemoryBytes()) / (1 << 20);
  result->swapped_mb = static_cast<double>(ctx->SwappedBytes()) / (1 << 20);
  const spark::TaskMetrics& t = ctx->metrics().tasks;
  result->shuffle_read_ms = t.shuffle_read_ms;
  result->shuffle_write_ms = t.shuffle_write_ms;
  result->ser_ms = t.ser_ms;
  result->deser_ms = t.deser_ms;
  result->spill_ms = t.spill_ms;
  result->compute_ms = t.compute_ms();
  result->slowest_task = ctx->metrics().slowest_task;
  result->task_retries = ctx->metrics().task_retries;
  result->injected_faults = ctx->metrics().injected_faults;
  result->executor_wipes = ctx->metrics().executor_wipes;
  result->recomputed_blocks = ctx->metrics().recomputed_blocks;
  result->pressure_evictions = ctx->TotalPressureEvictions();
  result->oom_recoveries = ctx->TotalOomRecoveries();
  result->denied_reservations = ctx->TotalDeniedReservations();
  result->executor_memory = ctx->ExecutorMemorySnapshots();
  result->tier_active = ctx->config().t1_enabled();
  result->tier = ctx->TotalTierCounters();
  result->alloc = ctx->TotalAllocStats();
  result->alloc_active = result->alloc.alloc_calls > 0;
  result->alloc_arena = ctx->config().arena_enabled();
  result->pauses = ctx->TotalGcPauses();
  if (ctx->net_stats() != nullptr) {
    result->net_active = true;
    result->net = ctx->net_stats()->Snapshot();
  }
  if (ctx->role() == spark::DistRole::kDriver) {
    result->dist_active = true;
    result->cluster = ctx->cluster_counters();
  }
  result->trace = ctx->TakeTraceLog();
}

}  // namespace deca::workloads
