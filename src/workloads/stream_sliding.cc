#include <algorithm>
#include <cstring>
#include <memory>
#include <vector>

#include "common/clock.h"
#include "common/logging.h"
#include "common/random.h"
#include "core/page.h"
#include "workloads/stream_common.h"

namespace deca::workloads {

using jvm::FieldKind;
using jvm::HandleScope;
using jvm::ObjRef;

namespace {

/// Per-partition epoch partial: (sum, min, max, count) of the epoch's
/// values — one 32-byte record per partition per epoch.
constexpr uint32_t kPartialBytes = 32;

struct Partial {
  int64_t sum = 0;
  int64_t min = INT64_MAX;
  int64_t max = INT64_MIN;
  int64_t count = 0;

  void Add(int64_t v) {
    sum += v;
    min = std::min(min, v);
    max = std::max(max, v);
    ++count;
  }
  void Merge(const Partial& o) {
    if (o.count == 0) return;
    sum += o.sum;
    min = std::min(min, o.min);
    max = std::max(max, o.max);
    count += o.count;
  }
};

struct SlideTypes {
  explicit SlideTypes(jvm::ClassRegistry* registry) {
    partial_cls = registry->RegisterClass("AggPartial",
                                          {{"sum", FieldKind::kLong},
                                           {"min", FieldKind::kLong},
                                           {"max", FieldKind::kLong},
                                           {"count", FieldKind::kLong}});
    const auto& pc = registry->Get(partial_cls);
    sum_off = pc.FieldOffset("sum");
    min_off = pc.FieldOffset("min");
    max_off = pc.FieldOffset("max");
    count_off = pc.FieldOffset("count");

    uint32_t so = sum_off, mo = min_off, xo = max_off, co = count_off;
    uint32_t cls = partial_cls;
    rec_ops.managed_bytes = [](jvm::Heap*, ObjRef) -> uint64_t {
      return jvm::kHeaderBytes + kPartialBytes + 4;
    };
    rec_ops.serialize = [so, mo, xo, co](jvm::Heap* h, ObjRef r,
                                         ByteWriter* w) {
      w->Write<int64_t>(h->GetField<int64_t>(r, so));
      w->Write<int64_t>(h->GetField<int64_t>(r, mo));
      w->Write<int64_t>(h->GetField<int64_t>(r, xo));
      w->Write<int64_t>(h->GetField<int64_t>(r, co));
    };
    rec_ops.deserialize = [cls, so, mo, xo, co](jvm::Heap* h,
                                                ByteReader* r) -> ObjRef {
      ObjRef rec = h->AllocateInstance(cls);
      h->SetField<int64_t>(rec, so, r->Read<int64_t>());
      h->SetField<int64_t>(rec, mo, r->Read<int64_t>());
      h->SetField<int64_t>(rec, xo, r->Read<int64_t>());
      h->SetField<int64_t>(rec, co, r->Read<int64_t>());
      return rec;
    };
  }

  uint32_t partial_cls;
  uint32_t sum_off, min_off, max_off, count_off;
  spark::RecordOps rec_ops;
};

}  // namespace

StreamResult RunStreamSlidingAgg(const StreamParams& params) {
  spark::SparkConfig cfg = params.spark;
  ApplyMode(params.mode, &cfg);
  spark::SparkContext ctx(cfg);
  SlideTypes types(ctx.registry());
  for (int slot = 0; slot < kStreamRddSlots; ++slot) {
    ctx.RegisterCachedRdd(kStreamRddBase + slot, &types.rec_ops);
  }

  const bool deca = params.mode == Mode::kDeca;
  const int parts = ctx.num_partitions();
  const uint64_t per_part =
      std::max<uint64_t>(1, params.records_per_epoch /
                                static_cast<uint64_t>(parts));
  DECA_CHECK_LE(params.stream.window, kStreamRddSlots);

  StreamResult result;
  result.run.mode = params.mode;
  stream::StreamContext stream(&ctx, params.stream);
  Stopwatch run_sw;

  auto per_epoch = [&](int e, stream::EpochRegion& region) {
    // One stage: aggregate this epoch's values into a per-partition
    // partial and cache it as the epoch's block. Doubles as the block's
    // lineage (pure regeneration — no shuffle input).
    auto agg_fn = [&ctx, &types, &params, &stream, deca, per_part, e,
                   page_bytes = cfg.deca_page_bytes](spark::TaskContext& tc) {
      jvm::Heap* h = tc.heap();
      Rng rng(Mix64(params.seed ^ (0x511dEULL + static_cast<uint64_t>(e))) +
              static_cast<uint64_t>(tc.partition()));
      Partial acc;
      if (deca) {
        for (uint64_t i = 0; i < per_part; ++i) {
          acc.Add(static_cast<int64_t>(rng.NextBounded(1'000'000)) - 500'000);
        }
      } else {
        // Object mode boxes every sample and folds through a fresh
        // partial per step — the per-record temporary churn of a
        // DStream-style reduce.
        HandleScope scope(h);
        jvm::Handle agg = scope.Make(h->AllocateInstance(types.partial_cls));
        h->SetField<int64_t>(agg.get(), types.min_off, INT64_MAX);
        h->SetField<int64_t>(agg.get(), types.max_off, INT64_MIN);
        for (uint64_t i = 0; i < per_part; ++i) {
          int64_t v =
              static_cast<int64_t>(rng.NextBounded(1'000'000)) - 500'000;
          HandleScope inner(h);
          jvm::Handle boxed = inner.Make(
              h->AllocateInstance(h->registry()->boxed_long_class()));
          h->SetField<int64_t>(boxed.get(), 0, v);
          jvm::Handle fresh =
              inner.Make(h->AllocateInstance(types.partial_cls));
          int64_t bv = h->GetField<int64_t>(boxed.get(), 0);
          h->SetField<int64_t>(
              fresh.get(), types.sum_off,
              h->GetField<int64_t>(agg.get(), types.sum_off) + bv);
          h->SetField<int64_t>(
              fresh.get(), types.min_off,
              std::min(h->GetField<int64_t>(agg.get(), types.min_off), bv));
          h->SetField<int64_t>(
              fresh.get(), types.max_off,
              std::max(h->GetField<int64_t>(agg.get(), types.max_off), bv));
          h->SetField<int64_t>(
              fresh.get(), types.count_off,
              h->GetField<int64_t>(agg.get(), types.count_off) + 1);
          agg.set(fresh.get());  // outer-scope slot; inner roots die here
        }
        acc.sum = h->GetField<int64_t>(agg.get(), types.sum_off);
        acc.min = h->GetField<int64_t>(agg.get(), types.min_off);
        acc.max = h->GetField<int64_t>(agg.get(), types.max_off);
        acc.count = h->GetField<int64_t>(agg.get(), types.count_off);
      }
      spark::BlockKey key{StreamRdd(e), tc.partition()};
      if (deca) {
        auto pages = std::make_shared<core::PageGroup>(h, page_bytes);
        core::SegPtr seg = pages->Append(kPartialBytes);
        uint8_t* d = pages->Resolve(seg);
        StoreRaw<int64_t>(d, acc.sum);
        StoreRaw<int64_t>(d + 8, acc.min);
        StoreRaw<int64_t>(d + 16, acc.max);
        StoreRaw<int64_t>(d + 24, acc.count);
        tc.cache()->PutPages(key, pages, 1, &tc.metrics());
      } else {
        HandleScope scope(h);
        jvm::Handle arr =
            scope.Make(h->AllocateArray(h->registry()->ref_array_class(), 1));
        ObjRef rec = h->AllocateInstance(types.partial_cls);
        h->SetField<int64_t>(rec, types.sum_off, acc.sum);
        h->SetField<int64_t>(rec, types.min_off, acc.min);
        h->SetField<int64_t>(rec, types.max_off, acc.max);
        h->SetField<int64_t>(rec, types.count_off, acc.count);
        h->SetRefElem(arr.get(), 0, rec);
        tc.cache()->PutObjects(key, arr.get(), 1, &tc.metrics());
      }
      if (stream::EpochRegion* region = stream.region(e)) {
        region->AdoptBlock(tc.executor()->id(), key);
      }
    };
    ctx.RunStage("slide-agg", agg_fn);
    region.AdoptLineage(ctx.RegisterLineage(StreamRdd(e), agg_fn));
  };

  uint64_t digest = 0;
  auto on_window = [&](const stream::StreamWindow& w) {
    std::vector<Partial> wparts(static_cast<size_t>(parts));
    ctx.RunStage("slide-window", [&](spark::TaskContext& tc) {
      jvm::Heap* h = tc.heap();
      int p = tc.partition();
      Partial acc;
      for (int ep = w.start; ep < w.end; ++ep) {
        spark::LoadedBlock b =
            tc.cache()->Get({StreamRdd(ep), p}, &tc.metrics());
        if (!b.valid()) continue;
        Partial block;
        if (b.level == spark::StorageLevel::kDecaPages) {
          core::PageScanner scan(b.pages.get());
          const uint8_t* d = scan.Cur();
          block.sum = LoadRaw<int64_t>(d);
          block.min = LoadRaw<int64_t>(d + 8);
          block.max = LoadRaw<int64_t>(d + 16);
          block.count = LoadRaw<int64_t>(d + 24);
        } else if (b.level == spark::StorageLevel::kMemorySerialized) {
          HandleScope scope(h);
          jvm::Handle bytes = scope.Make(b.serialized);
          size_t size = h->ArrayLength(bytes.get());
          std::vector<uint8_t> snapshot(size);
          std::memcpy(snapshot.data(), h->ArrayData(bytes.get()), size);
          ByteReader r(snapshot.data(), size);
          ObjRef rec;
          {
            ScopedTimerMs t(&tc.metrics().deser_ms);
            rec = types.rec_ops.deserialize(h, &r);
          }
          block.sum = h->GetField<int64_t>(rec, types.sum_off);
          block.min = h->GetField<int64_t>(rec, types.min_off);
          block.max = h->GetField<int64_t>(rec, types.max_off);
          block.count = h->GetField<int64_t>(rec, types.count_off);
        } else {
          HandleScope scope(h);
          jvm::Handle arr = scope.Make(b.object_array);
          ObjRef rec = h->GetRefElem(arr.get(), 0);
          block.sum = h->GetField<int64_t>(rec, types.sum_off);
          block.min = h->GetField<int64_t>(rec, types.min_off);
          block.max = h->GetField<int64_t>(rec, types.max_off);
          block.count = h->GetField<int64_t>(rec, types.count_off);
        }
        acc.Merge(block);
      }
      wparts[static_cast<size_t>(p)] = acc;
    });
    Partial acc;
    for (int p = 0; p < parts; ++p) {
      acc.Merge(wparts[static_cast<size_t>(p)]);
    }
    digest = FoldDigest(digest, static_cast<uint64_t>(acc.sum));
    digest = FoldDigest(digest, static_cast<uint64_t>(acc.min));
    digest = FoldDigest(digest, static_cast<uint64_t>(acc.max));
    digest = FoldDigest(digest, static_cast<uint64_t>(acc.count));
    result.records_processed += static_cast<uint64_t>(acc.count);
  };

  stream.RunEpochs(per_epoch, on_window);

  result.run.exec_ms = run_sw.ElapsedMillis();
  result.windows = static_cast<uint64_t>(stream.windows_emitted());
  result.digest = digest;
  uint64_t ingested = static_cast<uint64_t>(params.stream.epochs) * per_part *
                      static_cast<uint64_t>(parts);
  result.throughput_rps =
      result.run.exec_ms > 0
          ? static_cast<double>(ingested) / (result.run.exec_ms / 1000.0)
          : 0;
  FinalizeResult(&ctx, &result.run);
  FillStreamRun(stream, &result.run);  // after finalize: overrides slowest_task
  return result;
}

}  // namespace deca::workloads
