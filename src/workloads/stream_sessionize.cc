#include <cstring>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/clock.h"
#include "common/logging.h"
#include "common/random.h"
#include "core/page.h"
#include "spark/shuffle.h"
#include "workloads/stream_common.h"

namespace deca::workloads {

using jvm::FieldKind;
using jvm::HandleScope;
using jvm::ObjRef;

namespace {

/// One user's visit partial for one epoch: (first_ts, last_ts, visits,
/// revenue cents). Revenue is integer cents so partial sums are exact and
/// order-independent across modes. Decomposed layout: ip (8) followed by
/// the four value longs (32) — a 40-byte SFST entry.
constexpr uint32_t kValueBytes = 32;
constexpr uint32_t kEntryBytes = 8 + kValueBytes;

struct SessTypes {
  explicit SessTypes(jvm::ClassRegistry* registry) {
    agg_cls = registry->RegisterClass("SessionAgg",
                                      {{"first", FieldKind::kLong},
                                       {"last", FieldKind::kLong},
                                       {"visits", FieldKind::kLong},
                                       {"cents", FieldKind::kLong}});
    const auto& ac = registry->Get(agg_cls);
    first_off = ac.FieldOffset("first");
    last_off = ac.FieldOffset("last");
    visits_off = ac.FieldOffset("visits");
    cents_off = ac.FieldOffset("cents");
    row_cls = registry->RegisterClass("SessionRow",
                                      {{"ip", FieldKind::kLong},
                                       {"first", FieldKind::kLong},
                                       {"last", FieldKind::kLong},
                                       {"visits", FieldKind::kLong},
                                       {"cents", FieldKind::kLong}});
    const auto& rc = registry->Get(row_cls);
    ip_off = rc.FieldOffset("ip");
    rfirst_off = rc.FieldOffset("first");
    rlast_off = rc.FieldOffset("last");
    rvisits_off = rc.FieldOffset("visits");
    rcents_off = rc.FieldOffset("cents");

    ops.key_hash = [](jvm::Heap* h, ObjRef k) -> uint64_t {
      return static_cast<uint64_t>(h->GetField<int64_t>(k, 0)) *
             0x9e3779b97f4a7c15ULL;
    };
    ops.key_equals = [](jvm::Heap* h, ObjRef a, ObjRef b) {
      return h->GetField<int64_t>(a, 0) == h->GetField<int64_t>(b, 0);
    };
    uint32_t fo = first_off, lo = last_off, vo = visits_off, co = cents_off;
    uint32_t cls = agg_cls;
    ops.combine = [cls, fo, lo, vo, co](jvm::Heap* h, ObjRef agg,
                                        ObjRef v) -> ObjRef {
      int64_t first = std::min(h->GetField<int64_t>(agg, fo),
                               h->GetField<int64_t>(v, fo));
      int64_t last = std::max(h->GetField<int64_t>(agg, lo),
                              h->GetField<int64_t>(v, lo));
      int64_t visits =
          h->GetField<int64_t>(agg, vo) + h->GetField<int64_t>(v, vo);
      int64_t cents =
          h->GetField<int64_t>(agg, co) + h->GetField<int64_t>(v, co);
      // Fresh aggregate per merge, like Spark's aggregator closures.
      ObjRef fresh = h->AllocateInstance(cls);
      h->SetField<int64_t>(fresh, fo, first);
      h->SetField<int64_t>(fresh, lo, last);
      h->SetField<int64_t>(fresh, vo, visits);
      h->SetField<int64_t>(fresh, co, cents);
      return fresh;
    };
    ops.entry_bytes = [](jvm::Heap*, ObjRef, ObjRef) -> uint64_t {
      return (jvm::kHeaderBytes + 8) + (jvm::kHeaderBytes + 32) + 8;
    };
    ops.serialize_key = [](jvm::Heap* h, ObjRef k, ByteWriter* w) {
      w->WriteVarI64(h->GetField<int64_t>(k, 0));
    };
    ops.serialize_value = [fo, lo, vo, co](jvm::Heap* h, ObjRef v,
                                           ByteWriter* w) {
      w->WriteVarI64(h->GetField<int64_t>(v, fo));
      w->WriteVarI64(h->GetField<int64_t>(v, lo));
      w->WriteVarI64(h->GetField<int64_t>(v, vo));
      w->WriteVarI64(h->GetField<int64_t>(v, co));
    };
    ops.deserialize_key = [](jvm::Heap* h, ByteReader* r) -> ObjRef {
      ObjRef k = h->AllocateInstance(h->registry()->boxed_long_class());
      h->SetField<int64_t>(k, 0, r->ReadVarI64());
      return k;
    };
    ops.deserialize_value = [cls, fo, lo, vo, co](jvm::Heap* h,
                                                  ByteReader* r) -> ObjRef {
      ObjRef v = h->AllocateInstance(cls);
      h->SetField<int64_t>(v, fo, r->ReadVarI64());
      h->SetField<int64_t>(v, lo, r->ReadVarI64());
      h->SetField<int64_t>(v, vo, r->ReadVarI64());
      h->SetField<int64_t>(v, co, r->ReadVarI64());
      return v;
    };
    ops.deca_key_bytes = 8;
    ops.deca_value_bytes = kValueBytes;
    ops.deca_key_hash = [](const uint8_t* k) -> uint64_t {
      return LoadRaw<uint64_t>(k) * 0x9e3779b97f4a7c15ULL;
    };
    ops.deca_combine = [](uint8_t* agg, const uint8_t* v) {
      StoreRaw<int64_t>(agg, std::min(LoadRaw<int64_t>(agg),
                                      LoadRaw<int64_t>(v)));
      StoreRaw<int64_t>(agg + 8, std::max(LoadRaw<int64_t>(agg + 8),
                                          LoadRaw<int64_t>(v + 8)));
      StoreRaw<int64_t>(agg + 16,
                        LoadRaw<int64_t>(agg + 16) + LoadRaw<int64_t>(v + 16));
      StoreRaw<int64_t>(agg + 24,
                        LoadRaw<int64_t>(agg + 24) + LoadRaw<int64_t>(v + 24));
    };

    uint32_t io = ip_off;
    uint32_t ro[4] = {rfirst_off, rlast_off, rvisits_off, rcents_off};
    uint32_t rcls = row_cls;
    rec_ops.managed_bytes = [](jvm::Heap*, ObjRef) -> uint64_t {
      return jvm::kHeaderBytes + 40 + 4;
    };
    rec_ops.serialize = [io, ro](jvm::Heap* h, ObjRef r, ByteWriter* w) {
      w->Write<int64_t>(h->GetField<int64_t>(r, io));
      for (int i = 0; i < 4; ++i) {
        w->Write<int64_t>(h->GetField<int64_t>(r, ro[i]));
      }
    };
    rec_ops.deserialize = [rcls, io, ro](jvm::Heap* h,
                                         ByteReader* r) -> ObjRef {
      ObjRef rec = h->AllocateInstance(rcls);
      h->SetField<int64_t>(rec, io, r->Read<int64_t>());
      for (int i = 0; i < 4; ++i) {
        h->SetField<int64_t>(rec, ro[i], r->Read<int64_t>());
      }
      return rec;
    };
  }

  uint32_t agg_cls;
  uint32_t first_off, last_off, visits_off, cents_off;
  uint32_t row_cls;
  uint32_t ip_off, rfirst_off, rlast_off, rvisits_off, rcents_off;
  spark::ShuffleOps ops;
  spark::RecordOps rec_ops;
};

/// A native visit partial (the window stitcher's working form).
struct Partial {
  int64_t ip;
  int64_t first;
  int64_t last;
  int64_t visits;
  int64_t cents;
};

}  // namespace

StreamResult RunStreamSessionize(const StreamParams& params) {
  spark::SparkConfig cfg = params.spark;
  ApplyMode(params.mode, &cfg);
  spark::SparkContext ctx(cfg);
  SessTypes types(ctx.registry());
  for (int slot = 0; slot < kStreamRddSlots; ++slot) {
    ctx.RegisterCachedRdd(kStreamRddBase + slot, &types.rec_ops);
  }

  const bool deca = params.mode == Mode::kDeca;
  const int parts = ctx.num_partitions();
  const uint64_t per_part =
      std::max<uint64_t>(1, params.records_per_epoch /
                                static_cast<uint64_t>(parts));
  const size_t shuffle_budget = cfg.shuffle_budget_bytes();
  DECA_CHECK_LE(params.stream.window, kStreamRddSlots);

  StreamResult result;
  result.run.mode = params.mode;
  stream::StreamContext stream(&ctx, params.stream);
  Stopwatch run_sw;

  auto per_epoch = [&](int e, stream::EpochRegion& region) {
    int sid = ctx.shuffle()->RegisterShuffle(parts);
    region.AdoptShuffle(sid);

    // -- map: per-user visit partials for this epoch. Each epoch spans
    // 1000 time units; the active-user subset rotates each epoch so users
    // naturally go quiet and reappear, splitting sessions at the gap.
    auto map_fn = [&ctx, &types, &params, deca, parts, per_part,
                   shuffle_budget, e, sid,
                   page_bytes = cfg.deca_page_bytes](spark::TaskContext& tc) {
      jvm::Heap* h = tc.heap();
      Rng rng(Mix64(params.seed ^ (0x5e55ULL + static_cast<uint64_t>(e))) +
              static_cast<uint64_t>(tc.partition()));
      const uint64_t keys = std::max<uint64_t>(2, params.distinct_keys);
      const uint64_t rotate = e * std::max<uint64_t>(1, keys / 8);
      std::vector<ByteWriter> outs(static_cast<size_t>(parts));
      std::vector<net::ChunkMeta> metas(static_cast<size_t>(parts));
      if (deca) {
        for (auto& meta : metas) meta.fixed_record_bytes = kEntryBytes;
      }
      auto next_visit = [&](int64_t i) -> Partial {
        Partial p;
        p.ip = static_cast<int64_t>((rotate + rng.NextBounded(keys / 2)) %
                                    keys);
        p.first = p.last =
            static_cast<int64_t>(e) * 1000 +
            (i * 1000) / static_cast<int64_t>(per_part);
        p.visits = 1;
        p.cents = static_cast<int64_t>(rng.NextBounded(10000));
        return p;
      };
      auto flush_deca = [&](spark::DecaHashShuffleBuffer& buf) {
        buf.ForEach([&](const uint8_t* entry) {
          uint64_t hash = types.ops.deca_key_hash(entry);
          outs[hash % static_cast<uint64_t>(parts)].WriteBytes(entry,
                                                               kEntryBytes);
        });
        buf.Clear();
      };
      auto flush_object = [&](spark::ObjectHashShuffleBuffer& buf) {
        buf.ForEach([&](ObjRef k, ObjRef v) {
          uint64_t hash = types.ops.key_hash(h, k);
          size_t r = hash % static_cast<uint64_t>(parts);
          ByteWriter& w = outs[r];
          size_t before = w.size();
          {
            ScopedTimerMs t(&tc.metrics().ser_ms);
            types.ops.serialize_key(h, k, &w);
            types.ops.serialize_value(h, v, &w);
          }
          metas[r].record_lens.push_back(
              static_cast<uint32_t>(w.size() - before));
        });
        buf.Clear();
      };
      if (deca) {
        spark::DecaHashShuffleBuffer buf(h, &types.ops, page_bytes);
        for (uint64_t i = 0; i < per_part; ++i) {
          Partial p = next_visit(static_cast<int64_t>(i));
          uint8_t value[kValueBytes];
          StoreRaw<int64_t>(value, p.first);
          StoreRaw<int64_t>(value + 8, p.last);
          StoreRaw<int64_t>(value + 16, p.visits);
          StoreRaw<int64_t>(value + 24, p.cents);
          buf.Insert(reinterpret_cast<const uint8_t*>(&p.ip), value);
          if (buf.estimated_bytes() > shuffle_budget) flush_deca(buf);
        }
        flush_deca(buf);
      } else {
        spark::ObjectHashShuffleBuffer buf(h, &types.ops);
        for (uint64_t i = 0; i < per_part; ++i) {
          Partial p = next_visit(static_cast<int64_t>(i));
          HandleScope scope(h);
          jvm::Handle key = scope.Make(
              h->AllocateInstance(h->registry()->boxed_long_class()));
          h->SetField<int64_t>(key.get(), 0, p.ip);
          jvm::Handle val = scope.Make(h->AllocateInstance(types.agg_cls));
          h->SetField<int64_t>(val.get(), types.first_off, p.first);
          h->SetField<int64_t>(val.get(), types.last_off, p.last);
          h->SetField<int64_t>(val.get(), types.visits_off, p.visits);
          h->SetField<int64_t>(val.get(), types.cents_off, p.cents);
          buf.Insert(key.get(), val.get());
          if (buf.estimated_bytes() > shuffle_budget) flush_object(buf);
        }
        flush_object(buf);
      }
      ScopedTimerMs t(&tc.metrics().shuffle_write_ms);
      for (int r = 0; r < parts; ++r) {
        ctx.shuffle()->PutChunk(sid, r, tc.partition(),
                                outs[static_cast<size_t>(r)].TakeBuffer(),
                                metas[static_cast<size_t>(r)]);
      }
    };
    region.AdoptLineage(ctx.RunMapStage("sess-map", sid, map_fn));

    // -- reduce: merge partials per ip; cache as the epoch's SessionRow
    // block. An ip hashes to one reducer, so a user's whole window history
    // lives in one partition — the stitcher never needs cross-partition
    // state.
    auto reduce_fn = [&ctx, &types, &stream, deca, e, sid,
                      page_bytes =
                          cfg.deca_page_bytes](spark::TaskContext& tc) {
      jvm::Heap* h = tc.heap();
      int p = tc.partition();
      const auto& chunks = ctx.shuffle()->GetChunks(sid, p);
      spark::BlockKey key{StreamRdd(e), p};
      if (deca) {
        spark::DecaHashShuffleBuffer buf(h, &types.ops, page_bytes);
        for (const auto& chunk : chunks) {
          ScopedTimerMs t(&tc.metrics().shuffle_read_ms);
          for (size_t off = 0; off < chunk.size(); off += kEntryBytes) {
            buf.Insert(chunk.data() + off, chunk.data() + off + 8);
          }
        }
        std::vector<uint8_t> entries;
        entries.reserve(static_cast<size_t>(buf.size()) * kEntryBytes);
        buf.ForEach([&](const uint8_t* entry) {
          entries.insert(entries.end(), entry, entry + kEntryBytes);
        });
        auto pages = std::make_shared<core::PageGroup>(h, page_bytes);
        for (size_t off = 0; off < entries.size(); off += kEntryBytes) {
          core::SegPtr seg = pages->Append(kEntryBytes);
          std::memcpy(pages->Resolve(seg), entries.data() + off, kEntryBytes);
        }
        tc.cache()->PutPages(
            key, pages, static_cast<uint32_t>(entries.size() / kEntryBytes),
            &tc.metrics());
      } else {
        spark::ObjectHashShuffleBuffer buf(h, &types.ops);
        for (const auto& chunk : chunks) {
          ByteReader r(chunk.data(), chunk.size());
          while (!r.AtEnd()) {
            HandleScope scope(h);
            jvm::Handle k, v;
            {
              ScopedTimerMs t(&tc.metrics().deser_ms);
              k = scope.Make(types.ops.deserialize_key(h, &r));
              v = scope.Make(types.ops.deserialize_value(h, &r));
            }
            buf.Insert(k.get(), v.get());
          }
        }
        std::vector<Partial> rows;
        rows.reserve(buf.size());
        buf.ForEach([&](ObjRef k, ObjRef v) {
          rows.push_back({h->GetField<int64_t>(k, 0),
                          h->GetField<int64_t>(v, types.first_off),
                          h->GetField<int64_t>(v, types.last_off),
                          h->GetField<int64_t>(v, types.visits_off),
                          h->GetField<int64_t>(v, types.cents_off)});
        });
        HandleScope scope(h);
        jvm::Handle arr = scope.Make(h->AllocateArray(
            h->registry()->ref_array_class(),
            static_cast<uint32_t>(rows.size())));
        for (uint32_t i = 0; i < rows.size(); ++i) {
          ObjRef rec = h->AllocateInstance(types.row_cls);
          h->SetField<int64_t>(rec, types.ip_off, rows[i].ip);
          h->SetField<int64_t>(rec, types.rfirst_off, rows[i].first);
          h->SetField<int64_t>(rec, types.rlast_off, rows[i].last);
          h->SetField<int64_t>(rec, types.rvisits_off, rows[i].visits);
          h->SetField<int64_t>(rec, types.rcents_off, rows[i].cents);
          h->SetRefElem(arr.get(), i, rec);
        }
        tc.cache()->PutObjects(key, arr.get(),
                               static_cast<uint32_t>(rows.size()),
                               &tc.metrics());
      }
      if (stream::EpochRegion* region = stream.region(e)) {
        region->AdoptBlock(tc.executor()->id(), key);
      }
    };
    ctx.RunStage("sess-reduce", reduce_fn);
    region.AdoptLineage(ctx.RegisterLineage(StreamRdd(e), reduce_fn));
  };

  uint64_t digest = 0;
  auto on_window = [&](const stream::StreamWindow& w) {
    std::vector<uint64_t> wsessions(static_cast<size_t>(parts), 0);
    std::vector<uint64_t> wvisits(static_cast<size_t>(parts), 0);
    std::vector<uint64_t> wcents(static_cast<size_t>(parts), 0);
    ctx.RunStage("sess-window", [&](spark::TaskContext& tc) {
      jvm::Heap* h = tc.heap();
      int p = tc.partition();
      uint64_t sessions = 0;
      uint64_t visits = 0;
      uint64_t cents = 0;
      // ip -> last_ts of its most recent session in this window; epochs
      // stitch in time order. Counters are per-ip independent sums, so
      // within-epoch entry order never matters.
      std::unordered_map<int64_t, int64_t> prev;
      std::vector<Partial> rows;
      for (int ep = w.start; ep < w.end; ++ep) {
        spark::LoadedBlock b =
            tc.cache()->Get({StreamRdd(ep), p}, &tc.metrics());
        if (!b.valid()) continue;
        rows.clear();
        if (b.level == spark::StorageLevel::kDecaPages) {
          core::PageScanner scan(b.pages.get());
          while (!scan.AtEnd()) {
            const uint8_t* r = scan.Cur();
            rows.push_back({LoadRaw<int64_t>(r), LoadRaw<int64_t>(r + 8),
                            LoadRaw<int64_t>(r + 16), LoadRaw<int64_t>(r + 24),
                            LoadRaw<int64_t>(r + 32)});
            scan.Advance(kEntryBytes);
          }
        } else if (b.level == spark::StorageLevel::kMemorySerialized) {
          HandleScope scope(h);
          jvm::Handle bytes = scope.Make(b.serialized);
          size_t size = h->ArrayLength(bytes.get());
          std::vector<uint8_t> snapshot(size);
          std::memcpy(snapshot.data(), h->ArrayData(bytes.get()), size);
          ByteReader r(snapshot.data(), size);
          for (uint32_t i = 0; i < b.count; ++i) {
            HandleScope inner(h);
            ObjRef rec;
            {
              ScopedTimerMs t(&tc.metrics().deser_ms);
              rec = types.rec_ops.deserialize(h, &r);
            }
            rows.push_back({h->GetField<int64_t>(rec, types.ip_off),
                            h->GetField<int64_t>(rec, types.rfirst_off),
                            h->GetField<int64_t>(rec, types.rlast_off),
                            h->GetField<int64_t>(rec, types.rvisits_off),
                            h->GetField<int64_t>(rec, types.rcents_off)});
          }
        } else {
          HandleScope scope(h);
          jvm::Handle arr = scope.Make(b.object_array);
          for (uint32_t i = 0; i < b.count; ++i) {
            ObjRef rec = h->GetRefElem(arr.get(), i);
            rows.push_back({h->GetField<int64_t>(rec, types.ip_off),
                            h->GetField<int64_t>(rec, types.rfirst_off),
                            h->GetField<int64_t>(rec, types.rlast_off),
                            h->GetField<int64_t>(rec, types.rvisits_off),
                            h->GetField<int64_t>(rec, types.rcents_off)});
          }
        }
        for (const Partial& r : rows) {
          auto it = prev.find(r.ip);
          if (it == prev.end() || r.first - it->second > params.session_gap) {
            ++sessions;
          }
          prev[r.ip] = r.last;
          visits += static_cast<uint64_t>(r.visits);
          cents += static_cast<uint64_t>(r.cents);
        }
      }
      wsessions[static_cast<size_t>(p)] = sessions;
      wvisits[static_cast<size_t>(p)] = visits;
      wcents[static_cast<size_t>(p)] = cents;
    });
    uint64_t sessions = 0;
    uint64_t visits = 0;
    uint64_t cents = 0;
    for (int p = 0; p < parts; ++p) {
      sessions += wsessions[static_cast<size_t>(p)];
      visits += wvisits[static_cast<size_t>(p)];
      cents += wcents[static_cast<size_t>(p)];
    }
    digest = FoldDigest(digest, sessions);
    digest = FoldDigest(digest, visits);
    digest = FoldDigest(digest, cents);
    result.records_processed += visits;
  };

  stream.RunEpochs(per_epoch, on_window);

  result.run.exec_ms = run_sw.ElapsedMillis();
  result.windows = static_cast<uint64_t>(stream.windows_emitted());
  result.digest = digest;
  uint64_t ingested = static_cast<uint64_t>(params.stream.epochs) * per_part *
                      static_cast<uint64_t>(parts);
  result.throughput_rps =
      result.run.exec_ms > 0
          ? static_cast<double>(ingested) / (result.run.exec_ms / 1000.0)
          : 0;
  FinalizeResult(&ctx, &result.run);
  FillStreamRun(stream, &result.run);  // after finalize: overrides slowest_task
  return result;
}

}  // namespace deca::workloads
