#ifndef DECA_WORKLOADS_DIST_ENTRY_H_
#define DECA_WORKLOADS_DIST_ENTRY_H_

#include <cstdint>
#include <vector>

#include "workloads/common.h"
#include "workloads/lr.h"
#include "workloads/serve_entry.h"
#include "workloads/wordcount.h"

namespace deca::workloads {

/// Workload-parameter codecs for the cluster job spec. Only workload
/// fields travel here — the SparkConfig ships separately in the
/// JobSpec, and the daemon-side wrappers graft it back on before
/// running, so there is exactly one authoritative config per job.
std::vector<uint8_t> EncodeWordCountParams(const WordCountParams& p);
WordCountParams DecodeWordCountParams(const std::vector<uint8_t>& blob);

std::vector<uint8_t> EncodeMlParams(const MlParams& p);
MlParams DecodeMlParams(const std::vector<uint8_t>& blob);

std::vector<uint8_t> EncodeServeParams(const ServeParams& p);
ServeParams DecodeServeParams(const std::vector<uint8_t>& blob);

/// A scripted control-plane exercise: `stages` shuffle-free
/// compute-and-collect stages over heapless checksum tasks. With a
/// `die_*` script, the daemon whose generation is still below
/// `die_generations` kills itself (_exit) the instant it starts
/// task `die_partition` of stage `die_stage` — a real mid-stage
/// SIGKILL-grade death for the quarantine/recovery tests. Duplicate
/// re-execution of probe tasks is harmless by construction: they
/// allocate nothing and collect pure values.
struct ProbeParams {
  int stages = 3;
  uint64_t items_per_partition = 1 << 12;
  int die_stage = -1;
  int die_partition = -1;
  int die_generations = 0;  // generations [0, N) self-kill
  spark::SparkConfig spark;
};

struct ProbeResult {
  RunResult run;
  uint64_t checksum = 0;
};

ProbeResult RunDistProbe(const ProbeParams& params);

std::vector<uint8_t> EncodeProbeParams(const ProbeParams& p);
ProbeParams DecodeProbeParams(const std::vector<uint8_t>& blob);

/// Registers every distributed workload with the cluster registry.
/// Called explicitly from daemon mains (static initializers in a static
/// library would be dropped by the linker).
void RegisterDistWorkloads();

}  // namespace deca::workloads

#endif  // DECA_WORKLOADS_DIST_ENTRY_H_
