#include "stream/stream_context.h"

#include <algorithm>

#include "common/clock.h"
#include "common/logging.h"
#include "obs/trace.h"

namespace deca::stream {

StreamContext::StreamContext(spark::SparkContext* ctx,
                             const StreamOptions& opts)
    : ctx_(ctx), opts_(opts) {
  DECA_CHECK_GT(opts_.epochs, 0);
  DECA_CHECK_GT(opts_.window, 0);
  DECA_CHECK_GE(opts_.slide, 0);
  DECA_CHECK_LE(opts_.effective_slide(), opts_.window)
      << "slide > window would leave epochs no window ever reads";
  ctx_->AddWipeListener(this);
}

StreamContext::~StreamContext() {
  // An aborted run (exception mid-stream) may leave live regions; their
  // page groups must release before the executors go away.
  for (auto& [epoch, region] : regions_) {
    reclaimed_bytes_ += region->Reclaim(ctx_);
  }
  regions_.clear();
  ctx_->RemoveWipeListener(this);
}

EpochRegion* StreamContext::region(int epoch) const {
  auto it = regions_.find(epoch);
  return it == regions_.end() ? nullptr : it->second.get();
}

void StreamContext::OnExecutorWipe(int executor_id) {
  // Stale-reference drop: every live epoch loses the dying heap's page
  // groups and block keys now; lineage replay re-adopts what it rebuilds.
  for (auto& [epoch, region] : regions_) {
    region->DropExecutorState(executor_id);
  }
}

obs::TraceRecorder* StreamContext::EpochTraceWindow(int e, int phase) {
  obs::TraceRecorder* d = ctx_->tracer()->driver();
  if (d != nullptr) {
    d->BeginWindow(/*stage=*/-2, /*partition=*/-1, /*attempt=*/e * 2 + phase);
  }
  return d;
}

uint64_t StreamContext::SampleFootprint() const {
  uint64_t total = 0;
  for (int i = 0; i < ctx_->num_executors(); ++i) {
    spark::Executor* e = ctx_->executor(i);
    total += e->memory()->page_bytes();
    total += e->cache()->memory_bytes() + e->cache()->disk_bytes();
  }
  return total;
}

void StreamContext::OpenEpoch(int e) {
  auto region = std::make_unique<EpochRegion>(e, ctx_->num_executors());
  // One pin per window that overlaps this epoch and completes within the
  // stream; epochs only incomplete windows would cover start unpinned and
  // reclaim at their own close.
  const int s = opts_.effective_slide();
  int pins = 0;
  for (int k = 0; k * s <= e; ++k) {
    if (e < k * s + opts_.window && k * s + opts_.window <= opts_.epochs) {
      ++pins;
    }
  }
  for (int i = 0; i < pins; ++i) region->Pin();
  obs::TraceRecorder* d = EpochTraceWindow(e, /*phase=*/0);
  obs::ScopedRecorder scope(d);
  obs::Instant(obs::Cat::kEpoch, "epoch_open", e, pins);
  regions_.emplace(e, std::move(region));
}

double StreamContext::ReclaimRegion(int epoch) {
  auto it = regions_.find(epoch);
  if (it == regions_.end()) return 0;
  Stopwatch sw;
  uint64_t freed = it->second->Reclaim(ctx_);
  reclaimed_bytes_ += freed;
  regions_.erase(it);
  double ms = sw.ElapsedMillis();
  if (obs::TraceRecorder* r = obs::Current()) {
    r->CompleteSpanMs(obs::Cat::kEpoch, "epoch_reclaim", ms, epoch,
                      static_cast<double>(freed));
  }
  return ms;
}

void StreamContext::CloseEpoch(int e, const WindowFn& on_window,
                               double* reclaim_ms_out) {
  const int s = opts_.effective_slide();
  const int rel = e + 1 - opts_.window;
  const bool fires = rel >= 0 && rel % s == 0;
  StreamWindow w;
  if (fires) {
    w.index = rel / s;
    w.start = rel;
    w.end = e + 1;
    on_window(w);
    ++windows_emitted_;
  }
  // Window stages rebound the driver lane; reclaim events need the epoch
  // close window back.
  obs::TraceRecorder* d = EpochTraceWindow(e, /*phase=*/1);
  obs::ScopedRecorder scope(d);
  double reclaim_total = 0;
  if (fires) {
    for (int ep = w.start; ep < w.end; ++ep) {
      EpochRegion* r = region(ep);
      if (r != nullptr && r->Unpin() == 0) reclaim_total += ReclaimRegion(ep);
    }
  }
  // A tail epoch no complete window covers retires at its own boundary.
  if (EpochRegion* own = region(e); own != nullptr && own->pins() == 0) {
    reclaim_total += ReclaimRegion(e);
  }
  obs::Instant(obs::Cat::kEpoch, "epoch_close", e,
               static_cast<double>(regions_.size()));
  *reclaim_ms_out = reclaim_total;
}

void StreamContext::RunEpochs(const EpochFn& per_epoch,
                              const WindowFn& on_window) {
  const int base_epoch = std::min(9, opts_.epochs - 1);
  for (int e = 0; e < opts_.epochs; ++e) {
    OpenEpoch(e);
    double gc0 = ctx_->TotalGcPauseMs();
    per_epoch(e, *regions_.at(e));
    double reclaim_ms = 0;
    CloseEpoch(e, on_window, &reclaim_ms);
    pause_ms_.Add((ctx_->TotalGcPauseMs() - gc0) + reclaim_ms);
    reclaim_ms_.Add(reclaim_ms);
    // The accounting identity must hold with all planes settled at every
    // epoch boundary — region charge/release is atomic as far as any
    // observer of the manager can tell.
    for (int i = 0; i < ctx_->num_executors(); ++i) {
      ctx_->executor(i)->VerifyMemoryAccounting();
    }
    uint64_t fp = SampleFootprint();
    footprint_end_ = fp;
    footprint_peak_ = std::max(footprint_peak_, fp);
    if (e == base_epoch) {
      footprint_base_ = fp;
      base_sampled_ = true;
    }
    ++epochs_run_;
  }
}

}  // namespace deca::stream
