#ifndef DECA_STREAM_STREAM_CONTEXT_H_
#define DECA_STREAM_STREAM_CONTEXT_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>

#include "common/histogram.h"
#include "spark/context.h"
#include "stream/epoch_region.h"

namespace deca::stream {

/// Windowing plan of a micro-batch stream. Windows cover `window`
/// consecutive epochs and start every `slide` epochs (slide == window is
/// tumbling; slide < window is sliding, overlapping windows each pinning
/// the epochs they cover). Only windows that complete within `epochs`
/// ever fire.
struct StreamOptions {
  int epochs = 60;
  int window = 4;
  int slide = 0;  // 0 = tumbling (slide == window)

  int effective_slide() const { return slide > 0 ? slide : window; }
};

/// One completed window: epochs [start, end).
struct StreamWindow {
  int index = 0;
  int start = 0;
  int end = 0;
};

/// Drives a windowed job epoch by epoch over one SparkContext. Each epoch
/// opens an EpochRegion, runs the caller's per-epoch stages (which adopt
/// their allocations into the region), fires every window that closes at
/// the epoch boundary, then unpins and reclaims regions whose last
/// overlapping window retired. At every epoch boundary the unified
/// memory accounting identity is re-verified across all executors, the
/// data-plane footprint is sampled (drift detection), and epoch
/// open/close/reclaim events land on the driver's trace lane.
///
/// Registered as a wipe listener: a mid-epoch executor crash drops every
/// live region's references into the dying heap before it resets;
/// lineage replay then rebuilds (and re-adopts) the lost epoch state, so
/// window outputs are bit-identical with or without the crash.
class StreamContext : public spark::WipeListener {
 public:
  StreamContext(spark::SparkContext* ctx, const StreamOptions& opts);
  ~StreamContext() override;

  StreamContext(const StreamContext&) = delete;
  StreamContext& operator=(const StreamContext&) = delete;

  using EpochFn = std::function<void(int epoch, EpochRegion& region)>;
  using WindowFn = std::function<void(const StreamWindow& window)>;

  /// The epoch loop: per_epoch runs the epoch's stages; on_window fires
  /// once per completed window, after which the window's epochs unpin.
  void RunEpochs(const EpochFn& per_epoch, const WindowFn& on_window);

  /// The live region for `epoch`; null once reclaimed (or never opened).
  EpochRegion* region(int epoch) const;
  size_t live_regions() const { return regions_.size(); }

  const spark::SparkContext* spark() const { return ctx_; }
  const StreamOptions& options() const { return opts_; }

  void OnExecutorWipe(int executor_id) override;

  // -- Steady-state metrics ------------------------------------------------

  int epochs_run() const { return epochs_run_; }
  int windows_emitted() const { return windows_emitted_; }
  /// Per-epoch pause: the epoch's stop-the-world GC time plus the wall
  /// time of region reclaim at its boundary (the two mutator-visible
  /// stalls the paper's comparison contrasts).
  const Histogram& epoch_pause_ms() const { return pause_ms_; }
  /// Region-reclaim wall time alone.
  const Histogram& reclaim_ms() const { return reclaim_ms_; }
  uint64_t reclaimed_bytes() const { return reclaimed_bytes_; }

  /// Data-plane footprint (native page charges + block-store bytes,
  /// memory and swap) sampled at each epoch boundary. `base` is the
  /// sample at epoch 10's close (or the first boundary of shorter runs):
  /// steady state must hold end within noise of base.
  uint64_t footprint_base_bytes() const { return footprint_base_; }
  uint64_t footprint_end_bytes() const { return footprint_end_; }
  uint64_t footprint_peak_bytes() const { return footprint_peak_; }

 private:
  void OpenEpoch(int e);
  /// Fires the window closing at epoch `e` (if any), unpins its epochs
  /// and reclaims regions that reach pin count zero. Reports the reclaim
  /// wall time spent at this boundary.
  void CloseEpoch(int e, const WindowFn& on_window, double* reclaim_ms_out);
  /// Reclaims and erases one region; returns its reclaim wall time.
  double ReclaimRegion(int epoch);
  /// Rebinds the driver trace lane to this epoch's bookkeeping window
  /// (stage -2 marks epoch-lifecycle events; `phase` 0 = open, 1 =
  /// close, keeping event keys unique and canonically ordered).
  obs::TraceRecorder* EpochTraceWindow(int e, int phase);
  uint64_t SampleFootprint() const;

  spark::SparkContext* ctx_;
  StreamOptions opts_;
  std::map<int, std::unique_ptr<EpochRegion>> regions_;
  int epochs_run_ = 0;
  int windows_emitted_ = 0;
  Histogram pause_ms_;
  Histogram reclaim_ms_;
  uint64_t reclaimed_bytes_ = 0;
  uint64_t footprint_base_ = 0;
  uint64_t footprint_end_ = 0;
  uint64_t footprint_peak_ = 0;
  bool base_sampled_ = false;
};

}  // namespace deca::stream

#endif  // DECA_STREAM_STREAM_CONTEXT_H_
