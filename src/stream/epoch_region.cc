#include "stream/epoch_region.h"

#include "common/logging.h"

namespace deca::stream {

EpochRegion::EpochRegion(int epoch, int num_executors) : epoch_(epoch) {
  DECA_CHECK_GT(num_executors, 0);
  slots_.resize(static_cast<size_t>(num_executors));
}

void EpochRegion::AdoptPages(int executor,
                             std::shared_ptr<core::PageGroup> pages) {
  slots_[static_cast<size_t>(executor)].pages.push_back(std::move(pages));
}

void EpochRegion::AdoptBlock(int executor, spark::BlockKey key) {
  slots_[static_cast<size_t>(executor)].blocks.push_back(key);
}

void EpochRegion::AdoptShuffle(int shuffle_id) {
  shuffles_.push_back(shuffle_id);
}

void EpochRegion::AdoptLineage(int token) {
  lineage_tokens_.push_back(token);
}

uint64_t EpochRegion::Reclaim(spark::SparkContext* ctx) {
  if (reclaimed_) return 0;
  reclaimed_ = true;
  uint64_t freed = 0;
  // Shuffle chunks measured before release (Release zeroes the buckets).
  for (int sid : shuffles_) freed += ctx->shuffle()->total_bytes(sid);
  for (size_t e = 0; e < slots_.size(); ++e) {
    Slot& slot = slots_[e];
    spark::CacheManager* cache = ctx->executor(static_cast<int>(e))->cache();
    uint64_t before = cache->memory_bytes() + cache->disk_bytes();
    for (const spark::BlockKey& key : slot.blocks) cache->Evict(key);
    freed += before - (cache->memory_bytes() + cache->disk_bytes());
    for (std::shared_ptr<core::PageGroup>& pages : slot.pages) {
      // Only count footprint the drop actually frees: a group another
      // container still shares survives its region (paper's depPages).
      if (pages.use_count() == 1) freed += pages->footprint_bytes();
      pages.reset();
    }
    slot.pages.clear();
    slot.blocks.clear();
  }
  // Lineage goes last: replaying a dropped epoch is impossible from here
  // on, which is exactly right — its data no longer exists to rebuild.
  for (int token : lineage_tokens_) ctx->DropLineage(token);
  lineage_tokens_.clear();
  for (int sid : shuffles_) ctx->shuffle()->Release(sid);
  shuffles_.clear();
  return freed;
}

void EpochRegion::DropExecutorState(int executor) {
  Slot& slot = slots_[static_cast<size_t>(executor)];
  // The heap is about to reset: page-group destructors must run now,
  // while their root providers and memory charges are still live.
  slot.pages.clear();
  // The wipe drops the executor's whole block store; stale keys must not
  // linger or replay-re-adopted blocks would be double-listed.
  slot.blocks.clear();
}

uint64_t EpochRegion::adopted_page_bytes() const {
  uint64_t total = 0;
  for (const Slot& slot : slots_) {
    for (const auto& pages : slot.pages) total += pages->footprint_bytes();
  }
  return total;
}

size_t EpochRegion::adopted_blocks() const {
  size_t total = 0;
  for (const Slot& slot : slots_) total += slot.blocks.size();
  return total;
}

}  // namespace deca::stream
