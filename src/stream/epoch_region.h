#ifndef DECA_STREAM_EPOCH_REGION_H_
#define DECA_STREAM_EPOCH_REGION_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "core/page.h"
#include "spark/block_store.h"
#include "spark/context.h"

namespace deca::stream {

/// Everything one streaming epoch allocated, across every plane of the
/// engine: page groups, cached blocks, shuffle deposits and the lineage
/// registered to rebuild them. The paper's lifetime claim, applied to
/// micro-batching: an epoch's data shares one lifetime — the window(s)
/// that read it — so the region reclaims all of it as a unit instead of
/// letting a collector rediscover each object's death individually.
///
/// Concurrency contract (matches the cache manager's): adoption of pages
/// and blocks happens on the owning executor's mutator thread into that
/// executor's private slot — no locks, no cross-slot writes. Shuffle and
/// lineage adoption, pinning and Reclaim are driver-side only, after the
/// stage barrier.
class EpochRegion {
 public:
  EpochRegion(int epoch, int num_executors);

  EpochRegion(const EpochRegion&) = delete;
  EpochRegion& operator=(const EpochRegion&) = delete;

  int epoch() const { return epoch_; }

  // -- Adoption: executor slots (mutator-thread side) ----------------------

  /// Takes shared ownership of a page group built during this epoch; the
  /// region's release at reclaim may be the last reference (the paper's
  /// reference-counted page-group reclamation, driven by window close).
  void AdoptPages(int executor, std::shared_ptr<core::PageGroup> pages);

  /// Tags a cached block as epoch data: reclaim evicts it from the
  /// executor's block store (memory or swap, wherever LRU moved it).
  void AdoptBlock(int executor, spark::BlockKey key);

  // -- Adoption: driver side -----------------------------------------------

  /// Tags a shuffle as epoch-scoped: reclaim releases its chunks. Because
  /// every epoch routes through its own shuffle id, release can never
  /// race an in-flight fetch — fetches of this id only happen in stages
  /// that complete before the region closes.
  void AdoptShuffle(int shuffle_id);

  /// Tags a replayable lineage stage (RunMapStage / RegisterLineage
  /// token) as epoch-scoped: reclaim drops it, so a later crash-wipe
  /// never resurrects reclaimed blocks and the replay log stays bounded
  /// over an unbounded stream.
  void AdoptLineage(int token);

  // -- Window pinning (driver side) ----------------------------------------

  /// One pin per not-yet-closed window that overlaps this epoch. Sliding
  /// windows (slide < window) hold multiple pins, keeping the epoch alive
  /// until its last overlapping window retires.
  void Pin() { ++pins_; }
  /// Returns the remaining pin count.
  int Unpin() { return --pins_; }
  int pins() const { return pins_; }

  /// Releases every adopted resource: evicts blocks, destroys page
  /// groups, releases shuffles, drops lineage. Driver-side, post-barrier.
  /// Returns the bytes freed (cache memory+disk delta, final page-group
  /// footprints, shuffle chunk bytes). Idempotent.
  uint64_t Reclaim(spark::SparkContext* ctx);
  bool reclaimed() const { return reclaimed_; }

  /// Crash-wipe path: drops this region's references into `executor`'s
  /// dying heap *before* the heap resets (wipe-listener order). Lineage
  /// replay re-adopts whatever it rebuilds.
  void DropExecutorState(int executor);

  // -- Introspection (tests, benches) --------------------------------------

  /// Current heap footprint of all adopted page groups.
  uint64_t adopted_page_bytes() const;
  size_t adopted_blocks() const;
  size_t adopted_shuffles() const { return shuffles_.size(); }
  size_t adopted_lineage() const { return lineage_tokens_.size(); }

 private:
  struct Slot {
    std::vector<std::shared_ptr<core::PageGroup>> pages;
    std::vector<spark::BlockKey> blocks;
  };

  int epoch_;
  int pins_ = 0;
  bool reclaimed_ = false;
  std::vector<Slot> slots_;          // one per executor
  std::vector<int> shuffles_;        // driver-side
  std::vector<int> lineage_tokens_;  // driver-side
};

}  // namespace deca::stream

#endif  // DECA_STREAM_EPOCH_REGION_H_
