#ifndef DECA_SPARK_SHUFFLE_H_
#define DECA_SPARK_SHUFFLE_H_

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <vector>

#include "core/page.h"
#include "jvm/heap.h"
#include "net/wire.h"
#include "spark/config.h"
#include "spark/metrics.h"
#include "spark/record_ops.h"

namespace deca::spark {

/// The shuffle seam: map tasks deposit per-reducer byte chunks; reduce
/// tasks fetch all chunks for their partition. Two implementations share
/// this interface — LocalShuffleService (direct in-memory, the original
/// path) and NetworkShuffleService (framed wire protocol over a src/net
/// Transport). Fetched chunks are byte-identical across implementations,
/// so downstream results, GC histories, and fault counters never depend
/// on which one is plugged in.
///
/// Concurrency contract (the src/exec runtime): PutChunk may be called
/// from any worker thread; implementations must keep each reducer's
/// chunk list sorted by map partition id so reduce-side iteration order
/// (and hence the reducer's allocation/GC history) is identical no
/// matter which map task finished first. DropMapOutput and Release are
/// stage-barrier side only. GetChunks runs from worker threads during
/// reduce tasks but only after the map stage's barrier.
class ShuffleService {
 public:
  virtual ~ShuffleService() = default;

  /// Registers a shuffle with `num_reducers` output partitions; returns
  /// its id.
  virtual int RegisterShuffle(int num_reducers) = 0;

  /// Deposits the bytes `map_partition` produced for `reducer`. Thread
  /// safe; empty chunks are dropped. A second deposit from the same map
  /// partition (a retried task) replaces the first. `meta` describes
  /// record boundaries for the record-serialized wire codec; the local
  /// service ignores it.
  virtual void PutChunk(int shuffle_id, int reducer, int map_partition,
                        std::vector<uint8_t> bytes,
                        const net::ChunkMeta& meta) = 0;

  /// Convenience overload for callers with no record metadata.
  void PutChunk(int shuffle_id, int reducer, int map_partition,
                std::vector<uint8_t> bytes) {
    PutChunk(shuffle_id, reducer, map_partition, std::move(bytes),
             net::ChunkMeta{});
  }

  /// Drops every chunk `map_partition` deposited (simulating map-output
  /// loss when its executor crashes). Stage-barrier side only.
  virtual void DropMapOutput(int shuffle_id, int map_partition) = 0;

  /// All chunks destined for `reducer`, ordered by map partition id.
  /// The reference stays valid until the next DropMapOutput/Release of
  /// this shuffle.
  virtual const std::vector<std::vector<uint8_t>>& GetChunks(
      int shuffle_id, int reducer) const = 0;

  virtual int num_reducers(int shuffle_id) const = 0;
  virtual uint64_t total_bytes(int shuffle_id) const = 0;
  /// Shuffles registered so far (ids are 0..num_shuffles()-1). Worker
  /// daemons size their per-shuffle byte snapshots from it.
  virtual int num_shuffles() const = 0;

  /// Frees a completed shuffle's chunks. Stage-barrier side only.
  virtual void Release(int shuffle_id) = 0;
};

/// In-process stand-in for Spark's shuffle files + block transfer service.
/// Chunks live in native memory (like OS page cache / disk in a real
/// deployment), outside any executor heap; fetch hands back references to
/// the deposited bytes with no wire protocol in between.
class LocalShuffleService final : public ShuffleService {
 public:
  using ShuffleService::PutChunk;

  int RegisterShuffle(int num_reducers) override;
  void PutChunk(int shuffle_id, int reducer, int map_partition,
                std::vector<uint8_t> bytes,
                const net::ChunkMeta& meta) override;
  void DropMapOutput(int shuffle_id, int map_partition) override;
  const std::vector<std::vector<uint8_t>>& GetChunks(int shuffle_id,
                                                     int reducer) const
      override;
  int num_reducers(int shuffle_id) const override;
  uint64_t total_bytes(int shuffle_id) const override;
  int num_shuffles() const override;
  void Release(int shuffle_id) override;

 private:
  struct ReducerBucket {
    std::mutex mu;                 // serializes map-side PutChunk writers
    std::vector<int> mappers;      // sorted map partition ids, parallel to
    std::vector<std::vector<uint8_t>> chunks;  // ...the chunk list
  };
  struct ShuffleData {
    int num_reducers = 0;
    std::vector<std::unique_ptr<ReducerBucket>> buckets;
  };
  ShuffleData* Find(int shuffle_id) const;

  mutable std::mutex mu_;  // guards shuffles_ registration/lookup
  // deque: references to elements stay valid as shuffles register.
  mutable std::deque<ShuffleData> shuffles_;
};

/// Map-side hash shuffle buffer with eager combining, object mode: an
/// open-addressing table whose key and aggregate-value entries are managed
/// objects (Spark's AppendOnlyMap). Every combine allocates a fresh value
/// object — the temporary-object churn of paper Section 4.2 case (2).
class ObjectHashShuffleBuffer {
 public:
  ObjectHashShuffleBuffer(jvm::Heap* heap, const ShuffleOps* ops,
                          uint32_t initial_capacity = 64);
  ~ObjectHashShuffleBuffer();

  /// Inserts (key, value), combining with the existing aggregate for the
  /// key if present. Both refs must be rooted by the caller (handles).
  void Insert(jvm::ObjRef key, jvm::ObjRef value);

  /// Iterates all (key, aggregate) entries. `fn` must not allocate.
  void ForEach(
      const std::function<void(jvm::ObjRef key, jvm::ObjRef value)>& fn) const;

  uint32_t size() const { return size_; }
  uint64_t estimated_bytes() const { return estimated_bytes_; }

  /// Drops all entries (spill flush): the table is reset to empty.
  void Clear();

 private:
  void Grow();

  jvm::Heap* heap_;
  const ShuffleOps* ops_;
  jvm::VectorRootProvider table_root_;  // holds the single table array ref
  uint32_t capacity_;
  uint32_t size_ = 0;
  uint64_t estimated_bytes_ = 0;

  jvm::ObjRef table() const { return table_root_.refs()[0]; }
};

/// Map-side hash shuffle buffer, Deca mode: decomposed SFST keys and
/// values live as fixed-size segments in a page group; a native pointer
/// array indexes them (paper Figure 6b). Combining reuses the aggregate's
/// page segment in place — no allocation, no dead value objects.
class DecaHashShuffleBuffer {
 public:
  DecaHashShuffleBuffer(jvm::Heap* heap, const ShuffleOps* ops,
                        uint32_t page_bytes, uint32_t initial_capacity = 64);

  /// Inserts a decomposed (key, value) pair, combining in place when the
  /// key exists.
  void Insert(const uint8_t* key, const uint8_t* value);

  /// Iterates entries as raw segment bytes (key immediately followed by
  /// value). `fn` must not allocate.
  void ForEach(const std::function<void(const uint8_t* entry)>& fn) const;

  uint32_t size() const { return size_; }
  const core::PageGroup& pages() const { return *pages_; }
  uint64_t estimated_bytes() const { return pages_->footprint_bytes(); }

  void Clear();

 private:
  static constexpr core::SegPtr kEmpty{UINT32_MAX, UINT32_MAX};
  void Grow();

  jvm::Heap* heap_;
  const ShuffleOps* ops_;
  std::shared_ptr<core::PageGroup> pages_;
  std::vector<core::SegPtr> slots_;  // native pointer array
  uint32_t size_ = 0;
  uint32_t entry_bytes_;
};

/// Map-side grouping buffer (groupByKey): keys map to managed ArrayBuffer
/// values (an Object[] grown geometrically). The combining function only
/// appends (paper Section 4.2 case (3)); the buffer itself is a VST and
/// stays in object form even under Deca (partially decomposable scenario).
class ObjectGroupByBuffer {
 public:
  ObjectGroupByBuffer(jvm::Heap* heap, const ShuffleOps* ops,
                      uint32_t initial_capacity = 64);
  ~ObjectGroupByBuffer();

  void Insert(jvm::ObjRef key, jvm::ObjRef value);

  /// Iterates groups: `values` is a managed Object[] whose first
  /// `count` elements are the group's values.
  void ForEach(const std::function<void(jvm::ObjRef key, jvm::ObjRef values,
                                        uint32_t count)>& fn) const;

  uint32_t size() const { return size_; }
  uint64_t estimated_bytes() const { return estimated_bytes_; }

 private:
  void Grow();

  jvm::Heap* heap_;
  const ShuffleOps* ops_;
  // refs[0] = key table (Object[]), refs[1] = value-array table (Object[]),
  // per-slot value arrays have their length in counts_.
  jvm::VectorRootProvider roots_;
  std::vector<uint32_t> counts_;
  uint32_t capacity_;
  uint32_t size_ = 0;
  uint64_t estimated_bytes_ = 0;

  jvm::ObjRef keys() const { return roots_.refs()[0]; }
  jvm::ObjRef vals() const { return roots_.refs()[1]; }
};

/// The static-offset variant of the Deca hash shuffle buffer (paper
/// Section 4.3.2): when both Key and Value are SFSTs, the pointer array is
/// unnecessary — the hash table *is* the page group, with slot addresses
/// computed arithmetically (slot i lives at page i / slots_per_page,
/// offset (i % slots_per_page) * slot_bytes). Each slot carries a one-byte
/// occupancy tag.
class DecaStaticHashShuffleBuffer {
 public:
  DecaStaticHashShuffleBuffer(jvm::Heap* heap, const ShuffleOps* ops,
                              uint32_t page_bytes,
                              uint32_t initial_capacity = 64);

  void Insert(const uint8_t* key, const uint8_t* value);

  /// Iterates entries as (key | value) byte spans.
  void ForEach(const std::function<void(const uint8_t* entry)>& fn) const;

  uint32_t size() const { return size_; }
  uint64_t footprint_bytes() const { return pages_->footprint_bytes(); }

 private:
  uint8_t* Slot(uint32_t i) const {
    return pages_->Resolve(
        {i / slots_per_page_, (i % slots_per_page_) * slot_bytes_});
  }
  /// Builds a fully-materialized page group of `capacity` zeroed slots.
  std::shared_ptr<core::PageGroup> MakeTable(uint32_t capacity);
  void Grow();

  jvm::Heap* heap_;
  const ShuffleOps* ops_;
  uint32_t page_bytes_;
  uint32_t slot_bytes_;       // 1 (occupancy) + key + value, 8-aligned
  uint32_t slots_per_page_;
  uint32_t capacity_;
  uint32_t size_ = 0;
  std::shared_ptr<core::PageGroup> pages_;
};

/// Sort-based shuffle with disk spilling (paper Appendix C): records
/// accumulate in a page group charged to the execution pool; when the
/// executor's memory manager denies the next page (no execution room even
/// after evicting storage to its floor) the run is sorted and spilled to
/// a file. The final pass streams a k-way merge of all spilled runs plus
/// the in-memory run, holding only one record per run in memory (the
/// paper's "small memory space, normally only one page" merge). A heap
/// without a memory manager never spills before Merge.
class DecaSortSpillWriter {
 public:
  using Less = std::function<bool(const uint8_t*, const uint8_t*)>;

  DecaSortSpillWriter(jvm::Heap* heap, uint32_t page_bytes,
                      std::string spill_dir, Less less);
  ~DecaSortSpillWriter();

  /// Appends one record; may sort + spill the current run to disk.
  void Append(const uint8_t* data, uint32_t bytes);

  /// Merges all runs in sorted order into `fn`. `spill_ms` (optional)
  /// accumulates disk time.
  void Merge(const std::function<void(const uint8_t*, uint32_t)>& fn,
             double* spill_ms = nullptr);

  uint32_t spill_count() const { return static_cast<uint32_t>(files_.size()); }
  uint64_t spilled_bytes() const { return spilled_bytes_; }

 private:
  void SpillCurrentRun();

  jvm::Heap* heap_;
  uint32_t page_bytes_;
  memory::ExecutorMemoryManager* mm_;  // may be null
  std::string dir_;
  Less less_;
  std::shared_ptr<core::PageGroup> pages_;
  std::vector<std::pair<core::SegPtr, uint32_t>> entries_;
  std::vector<std::string> files_;
  uint64_t spilled_bytes_ = 0;
};

/// Sort-based shuffle buffer, Deca mode: records append to a page group
/// and a native pointer array is sorted by key (paper Section 4.2 case
/// (1) — references die only when the buffer is released).
class DecaSortShuffleBuffer {
 public:
  DecaSortShuffleBuffer(jvm::Heap* heap, uint32_t page_bytes);

  /// Appends a record segment; `bytes` must embed everything needed
  /// downstream.
  core::SegPtr Append(const uint8_t* data, uint32_t bytes);

  /// Sorts the pointer array by `less` over the segment bytes and iterates
  /// in order.
  void SortAndVisit(
      const std::function<bool(const uint8_t*, const uint8_t*)>& less,
      const std::function<void(const uint8_t*, uint32_t bytes)>& fn);

  uint32_t size() const { return static_cast<uint32_t>(entries_.size()); }

 private:
  std::shared_ptr<core::PageGroup> pages_;
  std::vector<std::pair<core::SegPtr, uint32_t>> entries_;  // (seg, bytes)
};

}  // namespace deca::spark

#endif  // DECA_SPARK_SHUFFLE_H_
