#include "spark/block_store.h"

#include <algorithm>
#include <cstring>
#include <filesystem>
#include <utility>

#include "common/clock.h"
#include "common/logging.h"
#include "obs/trace.h"

namespace deca::spark {

const char* StorageLevelName(StorageLevel s) {
  switch (s) {
    case StorageLevel::kMemoryObjects:
      return "MEMORY_OBJECTS";
    case StorageLevel::kMemorySerialized:
      return "MEMORY_SER";
    case StorageLevel::kDecaPages:
      return "DECA_PAGES";
  }
  return "?";
}

const char* AdmitPolicyName(AdmitPolicy p) {
  switch (p) {
    case AdmitPolicy::kAlways:
      return "always";
    case AdmitPolicy::kOnSecondAccess:
      return "second_access";
    case AdmitPolicy::kNever:
      return "never";
  }
  return "?";
}

const char* LifetimeSourceName(LifetimeSource s) {
  switch (s) {
    case LifetimeSource::kStatic:
      return "static";
    case LifetimeSource::kProfiled:
      return "profiled";
    case LifetimeSource::kOracle:
      return "oracle";
  }
  return "?";
}

const char* ShuffleTransportName(ShuffleTransport t) {
  switch (t) {
    case ShuffleTransport::kLocal:
      return "local";
    case ShuffleTransport::kLoopback:
      return "loopback";
    case ShuffleTransport::kTcp:
      return "tcp";
  }
  return "?";
}

CacheManager::CacheManager(jvm::Heap* heap, const SparkConfig* config,
                           int executor_id)
    : heap_(heap),
      cfg_(config),
      mm_(heap->memory_manager()),
      executor_id_(executor_id),
      t1_cap_bytes_(static_cast<uint64_t>(
          config->t1_fraction *
          static_cast<double>(heap->memory_manager() != nullptr
                                  ? heap->memory_manager()->total_bytes()
                                  : config->storage_budget_bytes()))),
      t1_(heap->memory_manager()),
      t2_(config->spill_dir, executor_id, heap->page_allocator()) {
  heap_->AddRootProvider(this);
  std::error_code ec;
  std::filesystem::create_directories(cfg_->spill_dir, ec);
  DECA_CHECK(!ec) << "cannot create spill dir " << cfg_->spill_dir << ": "
                  << ec.message();
}

CacheManager::~CacheManager() {
  // T2's swap files are removed by the DiskTier destructor.
  heap_->RemoveRootProvider(this);
}

void CacheManager::VisitRoots(const std::function<void(jvm::ObjRef*)>& fn) {
  // The collector evacuates as it visits, so visit order decides object
  // placement. `blocks_` is hashed for lookup speed; visit in sorted key
  // order so GC behavior stays bit-identical to the ordered-map store this
  // replaced (and independent of hash-table history).
  std::vector<std::pair<BlockKey, jvm::ObjRef*>> roots;
  roots.reserve(blocks_.size());
  for (auto& [key, e] : blocks_) {
    if (e.data != jvm::kNullRef) roots.emplace_back(key, &e.data);
  }
  std::sort(roots.begin(), roots.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  for (auto& [key, slot] : roots) fn(slot);
}

void CacheManager::RegisterOps(int rdd_id, const RecordOps* ops) {
  ops_[rdd_id] = ops;
}

uint64_t CacheManager::EstimateObjectBlockBytes(const RecordOps* ops,
                                                jvm::ObjRef records,
                                                uint32_t count) const {
  uint64_t bytes = jvm::kHeaderBytes + 4ull * count;  // the Object[] itself
  for (uint32_t i = 0; i < count; ++i) {
    bytes += ops->managed_bytes(heap_, heap_->GetRefElem(records, i));
  }
  return bytes;
}

void CacheManager::SerializeRecords(const RecordOps* ops, jvm::ObjRef records,
                                    uint32_t count, ByteWriter* out) {
  for (uint32_t i = 0; i < count; ++i) {
    ops->serialize(heap_, heap_->GetRefElem(records, i), out);
  }
}

jvm::ObjRef CacheManager::DeserializeRecords(const RecordOps* ops,
                                             const uint8_t* data, size_t size,
                                             uint32_t count,
                                             TaskMetrics* metrics) {
  ScopedTimerMs timer(&metrics->deser_ms);
  jvm::HandleScope scope(heap_);
  jvm::Handle arr = scope.Make(
      heap_->AllocateArray(heap_->registry()->ref_array_class(), count));
  ByteReader reader(data, size);
  for (uint32_t i = 0; i < count; ++i) {
    jvm::ObjRef rec = ops->deserialize(heap_, &reader);
    heap_->SetRefElem(arr.get(), i, rec);
  }
  return arr.get();
}

PackedBlock CacheManager::Pack(BlockKey key, const Entry& e,
                               TaskMetrics* metrics) {
  PackedBlock p;
  p.level = e.level;
  p.count = e.count;
  alloc::PageAllocator* pa = heap_->page_allocator();
  switch (e.level) {
    case StorageLevel::kMemoryObjects: {
      const RecordOps* ops = ops_.at(key.rdd_id);
      ScopedTimerMs timer(&metrics->ser_ms);
      ByteWriter w;
      SerializeRecords(ops, e.data, e.count, &w);
      p.bytes = alloc::Bytes::FromWriter(pa, w.TakeBuffer());
      break;
    }
    case StorageLevel::kMemorySerialized: {
      // Already Kryo bytes; the packed form is the byte run itself.
      p.bytes = alloc::Bytes::Copy(pa, heap_->ArrayData(e.data),
                                   heap_->ArrayLength(e.data));
      break;
    }
    case StorageLevel::kDecaPages: {
      // Decomposed bytes pack as-is — no per-record serialization cost
      // (paper Appendix C). The staging buffer is sized exactly from
      // encoded_raw_bytes() and written in place, so arena mode never
      // round-trips through a growable vector.
      const size_t n = e.pages->encoded_raw_bytes();
      auto staged = alloc::Bytes::New(pa, n);
      const size_t written = e.pages->EncodeRawTo(staged->mutable_data());
      DECA_CHECK_EQ(written, n);
      p.bytes = std::move(staged);
      break;
    }
  }
  return p;
}

void CacheManager::Unpack(BlockKey key, const PackedBlock& packed,
                          LoadedBlock* block, TaskMetrics* metrics) {
  const alloc::Bytes& data = *packed.bytes;
  switch (packed.level) {
    case StorageLevel::kMemoryObjects: {
      const RecordOps* ops = ops_.at(key.rdd_id);
      block->object_array = DeserializeRecords(ops, data.data(), data.size(),
                                               packed.count, metrics);
      break;
    }
    case StorageLevel::kMemorySerialized: {
      jvm::ObjRef bytes = heap_->AllocateArray(
          heap_->registry()->byte_array_class(),
          static_cast<uint32_t>(data.size()));
      std::memcpy(heap_->ArrayData(bytes), data.data(), data.size());
      block->serialized = bytes;
      break;
    }
    case StorageLevel::kDecaPages: {
      // Raw page reload: no deserialization (paper Appendix C).
      ByteReader r(data.data(), data.size());
      block->pages = core::PageGroup::DecodeRaw(heap_, cfg_->deca_page_bytes,
                                                &r);
      break;
    }
  }
}

void CacheManager::PutObjects(BlockKey key, jvm::ObjRef records,
                              uint32_t count, TaskMetrics* metrics) {
  const RecordOps* ops = ops_.at(key.rdd_id);
  Entry e;
  e.count = count;
  if (cfg_->cache_level == StorageLevel::kMemorySerialized) {
    ByteWriter w;
    {
      ScopedTimerMs timer(&metrics->ser_ms);
      SerializeRecords(ops, records, count, &w);
    }
    jvm::HandleScope scope(heap_);
    jvm::Handle bytes = scope.Make(heap_->AllocateArray(
        heap_->registry()->byte_array_class(),
        static_cast<uint32_t>(w.size())));
    std::memcpy(heap_->ArrayData(bytes.get()), w.data(), w.size());
    e.level = StorageLevel::kMemorySerialized;
    e.data = bytes.get();
    e.bytes = jvm::kHeaderBytes + w.size();
  } else {
    e.level = StorageLevel::kMemoryObjects;
    e.data = records;
    e.bytes = EstimateObjectBlockBytes(ops, records, count);
  }
  e.charged_bytes = e.bytes;
  e.lru_tick = ++lru_clock_;
  // A retried task may re-deposit its block: replace the old copy.
  Evict(key);
  // The put itself never fails (MEMORY_AND_DISK semantics): overcommit is
  // granted, then EnforceBudget sheds LRU blocks until the pool fits.
  if (mm_ != nullptr) {
    e.reservation = mm_->Reserve(memory::Pool::kStorage, e.bytes);
  }
  uint64_t charged = e.bytes;
  blocks_.emplace(key, std::move(e));
  uint64_t now = memory_bytes_ += charged;
  if (now > peak_memory_bytes_.load(std::memory_order_relaxed)) {
    peak_memory_bytes_.store(now, std::memory_order_relaxed);
  }
  EnforceBudget(metrics);
}

void CacheManager::PutPages(BlockKey key,
                            std::shared_ptr<core::PageGroup> pages,
                            uint32_t count, TaskMetrics* metrics) {
  Entry e;
  e.level = StorageLevel::kDecaPages;
  e.count = count;
  e.pages = std::move(pages);
  e.bytes = e.pages->footprint_bytes();
  e.charged_bytes = e.bytes;
  e.lru_tick = ++lru_clock_;
  // A retried task may re-deposit its block: replace the old copy.
  Evict(key);
  // The group was built charging the execution pool (shuffle/agg path);
  // cache ownership moves its footprint to the storage pool.
  e.pages->SetChargePool(memory::Pool::kStorage);
  uint64_t charged = e.bytes;
  blocks_.emplace(key, std::move(e));
  uint64_t now = memory_bytes_ += charged;
  if (now > peak_memory_bytes_.load(std::memory_order_relaxed)) {
    peak_memory_bytes_.store(now, std::memory_order_relaxed);
  }
  EnforceBudget(metrics);
}

bool CacheManager::ShouldAdmit(uint64_t accesses) const {
  switch (cfg_->admit_policy) {
    case AdmitPolicy::kAlways:
      return true;
    case AdmitPolicy::kOnSecondAccess:
      return accesses >= 2;
    case AdmitPolicy::kNever:
      return false;
  }
  return false;
}

LoadedBlock CacheManager::Get(BlockKey key, TaskMetrics* metrics) {
  return GetInternal(key, /*lazy=*/false, metrics);
}

LoadedBlock CacheManager::GetLazy(BlockKey key, TaskMetrics* metrics) {
  return GetInternal(key, /*lazy=*/true, metrics);
}

LoadedBlock CacheManager::GetInternal(BlockKey key, bool lazy,
                                      TaskMetrics* metrics) {
  auto it = blocks_.find(key);
  if (it == blocks_.end()) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    return {};
  }
  Entry& e = it->second;
  e.lru_tick = ++lru_clock_;
  LoadedBlock block;
  block.level = e.level;
  block.count = e.count;

  if (e.tier == Tier::kT0) {
    t0_hits_.fetch_add(1, std::memory_order_relaxed);
    block.object_array =
        e.level == StorageLevel::kMemoryObjects ? e.data : jvm::kNullRef;
    block.serialized =
        e.level == StorageLevel::kMemorySerialized ? e.data : jvm::kNullRef;
    block.pages = e.pages;
    return block;
  }

  if (e.tier == Tier::kT1) {
    t1_hits_.fetch_add(1, std::memory_order_relaxed);
    ++e.accesses_since_demote;
    PackedBlock packed = t1_.Load(key, metrics);
    DECA_CHECK(packed.valid()) << "T1 entry without off-heap payload";
    if (ShouldAdmit(e.accesses_since_demote)) {
      double ms = 0;
      {
        ScopedTimerMs timer(&ms);
        PromoteToT0(key, &e, packed, &block, metrics);
      }
      promote_ms_.Add(ms);
      promote_count_.fetch_add(1, std::memory_order_relaxed);
      obs::Instant(obs::Cat::kCache, "promote_t0",
                   static_cast<double>(e.bytes),
                   static_cast<double>(key.partition));
      EnforceBudget(metrics, &key);
      return block;
    }
    admit_rejects_.fetch_add(1, std::memory_order_relaxed);
    block.temporary = true;
    if (lazy) {
      block.packed = packed.bytes;
      return block;
    }
    Unpack(key, packed, &block, metrics);
    return block;
  }

  // T2: stream the block back from its swap file (it stays on disk —
  // Spark's MEMORY_AND_DISK re-reads swapped blocks on every access —
  // unless the admission policy re-admits it into T1).
  t2_hits_.fetch_add(1, std::memory_order_relaxed);
  obs::Instant(obs::Cat::kCache, "swap_in",
               static_cast<double>(e.charged_bytes),
               static_cast<double>(key.partition));
  PackedBlock packed = t2_.Load(key, metrics);
  DECA_CHECK(packed.valid()) << "T2 entry without swap file";
  if (cfg_->t1_enabled()) {
    ++e.accesses_since_demote;
    if (ShouldAdmit(e.accesses_since_demote)) {
      double ms = 0;
      {
        ScopedTimerMs timer(&ms);
        PromoteToT1(key, &e, packed, metrics);
      }
      promote_ms_.Add(ms);
      promote_count_.fetch_add(1, std::memory_order_relaxed);
      obs::Instant(obs::Cat::kCache, "promote_t1",
                   static_cast<double>(packed.size()),
                   static_cast<double>(key.partition));
      EnforceBudget(metrics, &key);
    } else {
      admit_rejects_.fetch_add(1, std::memory_order_relaxed);
    }
  }
  block.temporary = true;
  if (lazy) {
    block.packed = packed.bytes;
    return block;
  }
  Unpack(key, packed, &block, metrics);
  return block;
}

void CacheManager::DemoteToT1(BlockKey key, Entry* e, TaskMetrics* metrics) {
  DECA_CHECK(e->tier == Tier::kT0);
  PackedBlock packed = Pack(key, *e, metrics);
  uint64_t psize = packed.size();
  // Cascade LRU T1 blocks to disk first if this one would overflow the cap
  // (the T1 -> T2 edge); the demoting block itself is not in T1 yet.
  EnsureT1Room(psize, metrics);
  // Release the heap representation before taking the off-heap charge, so
  // the storage pool sheds the (larger) heap estimate first.
  e->data = jvm::kNullRef;
  e->pages.reset();
  e->reservation.Release();
  memory_bytes_ -= e->charged_bytes;
  t1_.Store(key, std::move(packed), metrics);
  memory_bytes_ += psize;
  e->packed_bytes = psize;
  e->charged_bytes = psize;
  e->tier = Tier::kT1;
  e->accesses_since_demote = 0;
  demote_t1_count_.fetch_add(1, std::memory_order_relaxed);
  obs::Instant(obs::Cat::kCache, "demote_t1", static_cast<double>(psize),
               static_cast<double>(key.partition));
}

void CacheManager::SpillToT2(BlockKey key, Entry* e, TaskMetrics* metrics) {
  DECA_CHECK(e->tier != Tier::kT2);
  uint64_t mem_charged = e->charged_bytes;
  PackedBlock packed;
  if (e->tier == Tier::kT0) {
    packed = Pack(key, *e, metrics);
  } else {
    packed = t1_.Load(key, metrics);
    DECA_CHECK(packed.valid());
    t1_.Drop(key);
  }
  e->packed_bytes = packed.size();
  t2_.Store(key, std::move(packed), metrics);
  e->data = jvm::kNullRef;
  e->pages.reset();
  e->reservation.Release();
  memory_bytes_ -= mem_charged;
  // A T0 spill keeps charging the heap estimate to the disk meter (the
  // pre-tier accounting); a T1 spill charges its packed payload.
  disk_bytes_ += mem_charged;
  e->charged_bytes = mem_charged;
  e->tier = Tier::kT2;
  e->accesses_since_demote = 0;
  ++swap_out_count_;
  obs::Instant(obs::Cat::kCache, "swap_out",
               static_cast<double>(mem_charged),
               static_cast<double>(key.partition));
}

void CacheManager::PromoteToT0(BlockKey key, Entry* e,
                               const PackedBlock& packed, LoadedBlock* block,
                               TaskMetrics* metrics) {
  DECA_CHECK(e->tier == Tier::kT1);
  // Unpack allocates; a collection it triggers can re-enter the eviction
  // paths, so pin the entry or a reentrant SwapOutLru/EnsureT1Room could
  // spill it mid-promotion and the meter would be debited twice.
  e->pinned = true;
  Unpack(key, packed, block, metrics);
  e->pinned = false;
  block->temporary = false;
  memory_bytes_ -= e->charged_bytes;
  t1_.Drop(key);  // releases the off-heap storage reservation
  switch (e->level) {
    case StorageLevel::kMemoryObjects: {
      const RecordOps* ops = ops_.at(key.rdd_id);
      e->data = block->object_array;
      e->bytes = EstimateObjectBlockBytes(ops, e->data, e->count);
      break;
    }
    case StorageLevel::kMemorySerialized:
      e->data = block->serialized;
      e->bytes = jvm::kHeaderBytes + packed.size();
      break;
    case StorageLevel::kDecaPages:
      e->pages = block->pages;
      e->bytes = e->pages->footprint_bytes();
      // The reloaded group charged the execution pool on allocation; cache
      // ownership moves it to storage (same as PutPages).
      e->pages->SetChargePool(memory::Pool::kStorage);
      break;
  }
  if (mm_ != nullptr && e->level != StorageLevel::kDecaPages) {
    e->reservation = mm_->Reserve(memory::Pool::kStorage, e->bytes);
  }
  uint64_t now = memory_bytes_ += e->bytes;
  if (now > peak_memory_bytes_.load(std::memory_order_relaxed)) {
    peak_memory_bytes_.store(now, std::memory_order_relaxed);
  }
  e->charged_bytes = e->bytes;
  e->packed_bytes = 0;
  e->tier = Tier::kT0;
  e->accesses_since_demote = 0;
}

void CacheManager::PromoteToT1(BlockKey key, Entry* e, PackedBlock packed,
                               TaskMetrics* metrics) {
  DECA_CHECK(e->tier == Tier::kT2);
  uint64_t psize = packed.size();
  EnsureT1Room(psize, metrics);
  t2_.Drop(key);
  disk_bytes_ -= e->charged_bytes;
  t1_.Store(key, std::move(packed), metrics);
  uint64_t now = memory_bytes_ += psize;
  if (now > peak_memory_bytes_.load(std::memory_order_relaxed)) {
    peak_memory_bytes_.store(now, std::memory_order_relaxed);
  }
  e->packed_bytes = psize;
  e->charged_bytes = psize;
  e->tier = Tier::kT1;
  e->accesses_since_demote = 0;
}

void CacheManager::Evict(BlockKey key) {
  auto it = blocks_.find(key);
  if (it == blocks_.end()) return;
  Entry& e = it->second;
  switch (e.tier) {
    case Tier::kT0:
      memory_bytes_ -= e.charged_bytes;
      break;
    case Tier::kT1:
      memory_bytes_ -= e.charged_bytes;
      t1_.Drop(key);
      break;
    case Tier::kT2:
      disk_bytes_ -= e.charged_bytes;
      t2_.Drop(key);
      break;
  }
  blocks_.erase(it);
}

void CacheManager::EnsureT1Room(uint64_t incoming, TaskMetrics* metrics) {
  while (t1_.resident_bytes() + incoming > t1_cap_bytes_) {
    // Pick the least-recently-used T1 block and cascade it to disk.
    const BlockKey* victim = nullptr;
    Entry* victim_e = nullptr;
    uint64_t best_tick = UINT64_MAX;
    for (auto& [key, e] : blocks_) {
      if (e.tier != Tier::kT1 || e.pinned) continue;
      if (e.lru_tick < best_tick) {
        best_tick = e.lru_tick;
        victim = &key;
        victim_e = &e;
      }
    }
    if (victim == nullptr) return;  // T1 is empty; the cap is just small
    SpillToT2(*victim, victim_e, metrics);
  }
}

void CacheManager::EnforceBudget(TaskMetrics* metrics,
                                 const BlockKey* exclude) {
  if (mm_ != nullptr) {
    // The storage pool's limit is whatever the execution pool is not
    // using (Spark 1.6 borrowing); shed LRU blocks until it fits. A
    // page-group block shared with a live container keeps its charge
    // until the last reference drops, so the loop is bounded by the
    // in-memory block count, not by the charge reaching the limit.
    while (mm_->StorageOverLimit()) {
      if (cfg_->t1_enabled() && DemoteLru(metrics, exclude) > 0) continue;
      if (!SwapOutLru(metrics, exclude)) return;  // nothing left to evict
    }
    return;
  }
  // No manager (standalone cache in tests): legacy fixed budget.
  size_t budget = cfg_->storage_budget_bytes();
  while (memory_bytes_ > budget) {
    if (cfg_->t1_enabled() && DemoteLru(metrics, exclude) > 0) continue;
    if (!SwapOutLru(metrics, exclude)) return;  // nothing left to evict
  }
}

bool CacheManager::SwapOutLru(TaskMetrics* metrics, const BlockKey* exclude) {
  // Pick the least-recently-used in-memory (T0 or T1) block. lru ticks are
  // unique, so the victim is unique — the hashed map's iteration order
  // cannot leak into the choice.
  const BlockKey* victim = nullptr;
  Entry* victim_e = nullptr;
  uint64_t best_tick = UINT64_MAX;
  for (auto& [key, e] : blocks_) {
    if (e.tier == Tier::kT2 || e.pinned) continue;
    if (exclude != nullptr && key == *exclude) continue;
    if (e.lru_tick < best_tick) {
      best_tick = e.lru_tick;
      victim = &key;
      victim_e = &e;
    }
  }
  if (victim == nullptr) return false;
  SpillToT2(*victim, victim_e, metrics);
  return true;
}

uint64_t CacheManager::DemoteLru(TaskMetrics* metrics,
                                 const BlockKey* exclude) {
  const BlockKey* victim = nullptr;
  Entry* victim_e = nullptr;
  uint64_t best_tick = UINT64_MAX;
  for (auto& [key, e] : blocks_) {
    if (e.tier != Tier::kT0 || e.pinned) continue;
    if (exclude != nullptr && key == *exclude) continue;
    if (e.lru_tick < best_tick) {
      best_tick = e.lru_tick;
      victim = &key;
      victim_e = &e;
    }
  }
  if (victim == nullptr) return 0;
  uint64_t heap_bytes = victim_e->bytes;
  DemoteToT1(*victim, victim_e, metrics);
  return heap_bytes;
}

uint64_t CacheManager::EvictBytes(uint64_t need_bytes) {
  // Swap in-memory blocks out to disk (LRU first) until roughly
  // `need_bytes` of managed memory has been unpinned.
  uint64_t freed = 0;
  uint64_t evicted = 0;
  TaskMetrics scratch;  // disk time charged to the task via spill counters
  while (freed < need_bytes) {
    uint64_t before = memory_bytes_.load(std::memory_order_relaxed);
    if (!SwapOutLru(&scratch, nullptr)) break;
    freed += before - memory_bytes_.load(std::memory_order_relaxed);
    ++evicted;
  }
  return evicted;
}

uint64_t CacheManager::EvictUnderPressure(uint64_t need_bytes) {
  // Called from the heap's OOM handler (via the memory manager): unpin
  // managed memory so the follow-up full collection can reclaim it.
  uint64_t evicted = EvictBytes(need_bytes);
  pressure_evictions_.fetch_add(evicted, std::memory_order_relaxed);
  obs::Instant(obs::Cat::kCache, "evict_pressure",
               static_cast<double>(need_bytes),
               static_cast<double>(evicted));
  return evicted;
}

uint64_t CacheManager::EvictForExecution(uint64_t need_bytes) {
  // Execution-pool borrowing: routine pool arbitration, so it does not
  // count toward the OOM-pressure metric.
  uint64_t evicted = EvictBytes(need_bytes);
  obs::Instant(obs::Cat::kCache, "evict_exec",
               static_cast<double>(need_bytes),
               static_cast<double>(evicted));
  return evicted;
}

uint64_t CacheManager::DemoteUnderPressure(uint64_t need_bytes,
                                           bool for_oom) {
  // Demote stage of the two-stage eviction: a no-op with the off-heap
  // tier disabled, so the manager falls straight through to the legacy
  // spill stage with nothing observed.
  if (!cfg_->t1_enabled()) return 0;
  uint64_t freed = 0;
  uint64_t demoted = 0;
  TaskMetrics scratch;
  while (freed < need_bytes) {
    uint64_t heap_bytes = DemoteLru(&scratch, nullptr);
    if (heap_bytes == 0) break;
    // What matters for heap pressure is the heap footprint unpinned, not
    // the (smaller) storage-pool delta.
    freed += heap_bytes;
    ++demoted;
  }
  if (for_oom) {
    pressure_evictions_.fetch_add(demoted, std::memory_order_relaxed);
  }
  obs::Instant(obs::Cat::kCache, "demote_pressure",
               static_cast<double>(need_bytes),
               static_cast<double>(demoted));
  return demoted;
}

void CacheManager::DropAllForWipe() {
  // A crash-wipe loses everything the executor held: in-memory blocks,
  // off-heap buffers, and swap files alike. Lineage recovery rebuilds
  // them on next access.
  blocks_.clear();  // releases T0 reservations and page groups
  t1_.DropAll();
  t2_.DropAll();
  memory_bytes_.store(0, std::memory_order_relaxed);
  disk_bytes_.store(0, std::memory_order_relaxed);
}

void CacheManager::VerifyAccounting() const {
  uint64_t reserved = 0;
  uint64_t mem = 0;
  uint64_t disk = 0;
  for (const auto& [key, e] : blocks_) {
    reserved += e.reservation.bytes();
    if (e.tier == Tier::kT2) {
      disk += e.charged_bytes;
    } else {
      mem += e.charged_bytes;
    }
  }
  DECA_CHECK_EQ(mem, memory_bytes())
      << "cache memory meter diverged from per-entry charges";
  DECA_CHECK_EQ(disk, disk_bytes())
      << "cache disk meter diverged from per-entry charges";
  if (mm_ != nullptr) {
    // The cache plane is the only storage-pool reserver, so its per-entry
    // grants plus the off-heap tier's per-slot grants must equal the
    // pool's reserved bytes exactly. A `temporary` block that charged the
    // pool (a double charge — the entry still holds the canonical grant)
    // breaks this identity immediately.
    DECA_CHECK_EQ(reserved + t1_.reserved_bytes(), mm_->storage_reserved())
        << "storage-pool reservations diverged from cache-held grants";
  }
}

TierCounters CacheManager::tier_counters() const {
  TierCounters t;
  uint64_t mem = memory_bytes();
  uint64_t t1b = t1_.resident_bytes();
  t.t0_resident_bytes = mem > t1b ? mem - t1b : 0;
  t.t1_resident_bytes = t1b;
  t.t2_resident_bytes = t2_.resident_bytes();
  t.t1_peak_bytes = t1_.peak_resident_bytes();
  t.t0_hits = t0_hits_.load(std::memory_order_relaxed);
  t.t1_hits = t1_hits_.load(std::memory_order_relaxed);
  t.t2_hits = t2_hits_.load(std::memory_order_relaxed);
  t.misses = misses_.load(std::memory_order_relaxed);
  t.demotes_to_t1 = demote_t1_count_.load(std::memory_order_relaxed);
  t.demotes_to_t2 = swap_out_count_.load(std::memory_order_relaxed);
  t.promotes = promote_count_.load(std::memory_order_relaxed);
  t.admit_rejects = admit_rejects_.load(std::memory_order_relaxed);
  if (promote_ms_.count() > 0) {
    t.promote_p50_ms = promote_ms_.Percentile(50);
    t.promote_p99_ms = promote_ms_.Percentile(99);
  }
  return t;
}

}  // namespace deca::spark
