#include "spark/block_store.h"

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>

#include "common/clock.h"
#include "common/logging.h"
#include "obs/trace.h"

namespace deca::spark {

const char* StorageLevelName(StorageLevel s) {
  switch (s) {
    case StorageLevel::kMemoryObjects:
      return "MEMORY_OBJECTS";
    case StorageLevel::kMemorySerialized:
      return "MEMORY_SER";
    case StorageLevel::kDecaPages:
      return "DECA_PAGES";
  }
  return "?";
}

const char* ShuffleTransportName(ShuffleTransport t) {
  switch (t) {
    case ShuffleTransport::kLocal:
      return "local";
    case ShuffleTransport::kLoopback:
      return "loopback";
    case ShuffleTransport::kTcp:
      return "tcp";
  }
  return "?";
}

namespace {

void WriteFile(const std::string& path, const uint8_t* data, size_t size) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  DECA_CHECK(f != nullptr) << "cannot open swap file for writing: " << path
                           << ": " << std::strerror(errno);
  if (size > 0) {
    size_t n = std::fwrite(data, 1, size, f);
    DECA_CHECK_EQ(n, size);
  }
  std::fclose(f);
}

std::vector<uint8_t> ReadFile(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  DECA_CHECK(f != nullptr) << "cannot open swap file for reading: " << path
                           << ": " << std::strerror(errno);
  std::fseek(f, 0, SEEK_END);
  long size = std::ftell(f);
  std::fseek(f, 0, SEEK_SET);
  std::vector<uint8_t> data(static_cast<size_t>(size));
  if (size > 0) {
    size_t n = std::fread(data.data(), 1, data.size(), f);
    DECA_CHECK_EQ(n, data.size());
  }
  std::fclose(f);
  return data;
}

}  // namespace

CacheManager::CacheManager(jvm::Heap* heap, const SparkConfig* config,
                           int executor_id)
    : heap_(heap),
      cfg_(config),
      mm_(heap->memory_manager()),
      executor_id_(executor_id) {
  heap_->AddRootProvider(this);
  std::error_code ec;
  std::filesystem::create_directories(cfg_->spill_dir, ec);
  DECA_CHECK(!ec) << "cannot create spill dir " << cfg_->spill_dir << ": "
                  << ec.message();
}

CacheManager::~CacheManager() {
  for (auto& [key, e] : blocks_) {
    if (!e.disk_path.empty()) std::remove(e.disk_path.c_str());
  }
  heap_->RemoveRootProvider(this);
}

void CacheManager::VisitRoots(const std::function<void(jvm::ObjRef*)>& fn) {
  for (auto& [key, e] : blocks_) {
    if (e.data != jvm::kNullRef) fn(&e.data);
  }
}

void CacheManager::RegisterOps(int rdd_id, const RecordOps* ops) {
  ops_[rdd_id] = ops;
}

uint64_t CacheManager::EstimateObjectBlockBytes(const RecordOps* ops,
                                                jvm::ObjRef records,
                                                uint32_t count) const {
  uint64_t bytes = jvm::kHeaderBytes + 4ull * count;  // the Object[] itself
  for (uint32_t i = 0; i < count; ++i) {
    bytes += ops->managed_bytes(heap_, heap_->GetRefElem(records, i));
  }
  return bytes;
}

void CacheManager::SerializeRecords(const RecordOps* ops, jvm::ObjRef records,
                                    uint32_t count, ByteWriter* out) {
  for (uint32_t i = 0; i < count; ++i) {
    ops->serialize(heap_, heap_->GetRefElem(records, i), out);
  }
}

jvm::ObjRef CacheManager::DeserializeRecords(const RecordOps* ops,
                                             const uint8_t* data, size_t size,
                                             uint32_t count,
                                             TaskMetrics* metrics) {
  ScopedTimerMs timer(&metrics->deser_ms);
  jvm::HandleScope scope(heap_);
  jvm::Handle arr = scope.Make(
      heap_->AllocateArray(heap_->registry()->ref_array_class(), count));
  ByteReader reader(data, size);
  for (uint32_t i = 0; i < count; ++i) {
    jvm::ObjRef rec = ops->deserialize(heap_, &reader);
    heap_->SetRefElem(arr.get(), i, rec);
  }
  return arr.get();
}

void CacheManager::PutObjects(BlockKey key, jvm::ObjRef records,
                              uint32_t count, TaskMetrics* metrics) {
  const RecordOps* ops = ops_.at(key.rdd_id);
  Entry e;
  e.count = count;
  if (cfg_->cache_level == StorageLevel::kMemorySerialized) {
    ByteWriter w;
    {
      ScopedTimerMs timer(&metrics->ser_ms);
      SerializeRecords(ops, records, count, &w);
    }
    jvm::HandleScope scope(heap_);
    jvm::Handle bytes = scope.Make(heap_->AllocateArray(
        heap_->registry()->byte_array_class(),
        static_cast<uint32_t>(w.size())));
    std::memcpy(heap_->ArrayData(bytes.get()), w.data(), w.size());
    e.level = StorageLevel::kMemorySerialized;
    e.data = bytes.get();
    e.bytes = jvm::kHeaderBytes + w.size();
  } else {
    e.level = StorageLevel::kMemoryObjects;
    e.data = records;
    e.bytes = EstimateObjectBlockBytes(ops, records, count);
  }
  e.lru_tick = ++lru_clock_;
  // A retried task may re-deposit its block: replace the old copy.
  Evict(key);
  // The put itself never fails (MEMORY_AND_DISK semantics): overcommit is
  // granted, then EnforceBudget sheds LRU blocks until the pool fits.
  if (mm_ != nullptr) {
    e.reservation = mm_->Reserve(memory::Pool::kStorage, e.bytes);
  }
  blocks_.emplace(key, std::move(e));
  uint64_t now = memory_bytes_ += blocks_[key].bytes;
  if (now > peak_memory_bytes_.load(std::memory_order_relaxed)) {
    peak_memory_bytes_.store(now, std::memory_order_relaxed);
  }
  EnforceBudget(metrics);
}

void CacheManager::PutPages(BlockKey key,
                            std::shared_ptr<core::PageGroup> pages,
                            uint32_t count, TaskMetrics* metrics) {
  Entry e;
  e.level = StorageLevel::kDecaPages;
  e.count = count;
  e.pages = std::move(pages);
  e.bytes = e.pages->footprint_bytes();
  e.lru_tick = ++lru_clock_;
  // A retried task may re-deposit its block: replace the old copy.
  Evict(key);
  // The group was built charging the execution pool (shuffle/agg path);
  // cache ownership moves its footprint to the storage pool.
  e.pages->SetChargePool(memory::Pool::kStorage);
  blocks_.emplace(key, std::move(e));
  uint64_t now = memory_bytes_ += blocks_[key].bytes;
  if (now > peak_memory_bytes_.load(std::memory_order_relaxed)) {
    peak_memory_bytes_.store(now, std::memory_order_relaxed);
  }
  EnforceBudget(metrics);
}

LoadedBlock CacheManager::Get(BlockKey key, TaskMetrics* metrics) {
  auto it = blocks_.find(key);
  if (it == blocks_.end()) return {};
  Entry& e = it->second;
  e.lru_tick = ++lru_clock_;
  LoadedBlock block;
  block.level = e.level;
  block.count = e.count;
  if (!e.on_disk) {
    block.object_array =
        e.level == StorageLevel::kMemoryObjects ? e.data : jvm::kNullRef;
    block.serialized =
        e.level == StorageLevel::kMemorySerialized ? e.data : jvm::kNullRef;
    block.pages = e.pages;
    return block;
  }
  // Stream the block back from its swap file (it stays on disk; Spark's
  // MEMORY_AND_DISK re-reads swapped blocks on every access).
  obs::Instant(obs::Cat::kCache, "swap_in", static_cast<double>(e.bytes),
               static_cast<double>(key.partition));
  std::vector<uint8_t> data;
  {
    ScopedTimerMs timer(&metrics->spill_ms);
    data = ReadFile(e.disk_path);
  }
  block.temporary = true;
  switch (e.level) {
    case StorageLevel::kMemoryObjects: {
      const RecordOps* ops = ops_.at(key.rdd_id);
      block.object_array =
          DeserializeRecords(ops, data.data(), data.size(), e.count, metrics);
      break;
    }
    case StorageLevel::kMemorySerialized: {
      jvm::ObjRef bytes = heap_->AllocateArray(
          heap_->registry()->byte_array_class(),
          static_cast<uint32_t>(data.size()));
      std::memcpy(heap_->ArrayData(bytes), data.data(), data.size());
      block.serialized = bytes;
      break;
    }
    case StorageLevel::kDecaPages: {
      // Raw page reload: no deserialization (paper Appendix C).
      auto group = std::make_shared<core::PageGroup>(
          heap_, cfg_->deca_page_bytes);
      ByteReader r(data.data(), data.size());
      uint32_t pages = r.Read<uint32_t>();
      for (uint32_t i = 0; i < pages; ++i) {
        uint32_t used = r.Read<uint32_t>();
        core::SegPtr seg = group->Append(used);
        r.ReadBytes(group->Resolve(seg), used);
      }
      block.pages = std::move(group);
      break;
    }
  }
  return block;
}

void CacheManager::Evict(BlockKey key) {
  auto it = blocks_.find(key);
  if (it == blocks_.end()) return;
  if (!it->second.on_disk) memory_bytes_ -= it->second.bytes;
  if (!it->second.disk_path.empty()) {
    disk_bytes_ -= it->second.bytes;
    std::remove(it->second.disk_path.c_str());
  }
  blocks_.erase(it);
}

std::string CacheManager::SwapPath(BlockKey key) const {
  return cfg_->spill_dir + "/swap_e" + std::to_string(executor_id_) + "_r" +
         std::to_string(key.rdd_id) + "_p" + std::to_string(key.partition);
}

void CacheManager::SwapOut(BlockKey key, Entry* e, TaskMetrics* metrics) {
  std::string path = SwapPath(key);
  switch (e->level) {
    case StorageLevel::kMemoryObjects: {
      const RecordOps* ops = ops_.at(key.rdd_id);
      ByteWriter w;
      {
        ScopedTimerMs timer(&metrics->ser_ms);
        SerializeRecords(ops, e->data, e->count, &w);
      }
      ScopedTimerMs timer(&metrics->spill_ms);
      WriteFile(path, w.data(), w.size());
      break;
    }
    case StorageLevel::kMemorySerialized: {
      ScopedTimerMs timer(&metrics->spill_ms);
      WriteFile(path, heap_->ArrayData(e->data), heap_->ArrayLength(e->data));
      break;
    }
    case StorageLevel::kDecaPages: {
      // Decomposed bytes go to disk as-is.
      ScopedTimerMs timer(&metrics->spill_ms);
      ByteWriter w;
      w.Write<uint32_t>(e->pages->page_count());
      for (uint32_t i = 0; i < e->pages->page_count(); ++i) {
        uint32_t used = e->pages->page_used(i);
        w.Write<uint32_t>(used);
        w.WriteBytes(e->pages->Resolve({i, 0}), used);
      }
      WriteFile(path, w.data(), w.size());
      break;
    }
  }
  e->on_disk = true;
  e->disk_path = path;
  e->data = jvm::kNullRef;
  e->pages.reset();
  e->reservation.Release();
  memory_bytes_ -= e->bytes;
  disk_bytes_ += e->bytes;
  ++swap_out_count_;
  obs::Instant(obs::Cat::kCache, "swap_out", static_cast<double>(e->bytes),
               static_cast<double>(key.partition));
}

void CacheManager::EnforceBudget(TaskMetrics* metrics) {
  if (mm_ != nullptr) {
    // The storage pool's limit is whatever the execution pool is not
    // using (Spark 1.6 borrowing); shed LRU blocks until it fits. A
    // page-group block shared with a live container keeps its charge
    // until the last reference drops, so the loop is bounded by the
    // in-memory block count, not by the charge reaching the limit.
    while (mm_->StorageOverLimit()) {
      if (!SwapOutLru(metrics)) return;  // nothing left to evict
    }
    return;
  }
  // No manager (standalone cache in tests): legacy fixed budget.
  size_t budget = cfg_->storage_budget_bytes();
  while (memory_bytes_ > budget) {
    if (!SwapOutLru(metrics)) return;  // nothing left to evict
  }
}

bool CacheManager::SwapOutLru(TaskMetrics* metrics) {
  // Pick the least-recently-used in-memory block.
  BlockKey victim{};
  uint64_t best_tick = UINT64_MAX;
  for (auto& [key, e] : blocks_) {
    if (e.on_disk) continue;
    if (e.lru_tick < best_tick) {
      best_tick = e.lru_tick;
      victim = key;
    }
  }
  if (best_tick == UINT64_MAX) return false;
  SwapOut(victim, &blocks_[victim], metrics);
  return true;
}

uint64_t CacheManager::EvictBytes(uint64_t need_bytes) {
  // Swap in-memory blocks out to disk (LRU first) until roughly
  // `need_bytes` of managed memory has been unpinned.
  uint64_t freed = 0;
  uint64_t evicted = 0;
  TaskMetrics scratch;  // disk time charged to the task via spill counters
  while (freed < need_bytes) {
    uint64_t before = memory_bytes_.load(std::memory_order_relaxed);
    if (!SwapOutLru(&scratch)) break;
    freed += before - memory_bytes_.load(std::memory_order_relaxed);
    ++evicted;
  }
  return evicted;
}

uint64_t CacheManager::EvictUnderPressure(uint64_t need_bytes) {
  // Called from the heap's OOM handler (via the memory manager): unpin
  // managed memory so the follow-up full collection can reclaim it.
  uint64_t evicted = EvictBytes(need_bytes);
  pressure_evictions_.fetch_add(evicted, std::memory_order_relaxed);
  obs::Instant(obs::Cat::kCache, "evict_pressure",
               static_cast<double>(need_bytes),
               static_cast<double>(evicted));
  return evicted;
}

uint64_t CacheManager::EvictForExecution(uint64_t need_bytes) {
  // Execution-pool borrowing: routine pool arbitration, so it does not
  // count toward the OOM-pressure metric.
  uint64_t evicted = EvictBytes(need_bytes);
  obs::Instant(obs::Cat::kCache, "evict_exec",
               static_cast<double>(need_bytes),
               static_cast<double>(evicted));
  return evicted;
}

void CacheManager::DropAllForWipe() {
  // A crash-wipe loses everything the executor held: in-memory blocks and
  // their swap files alike. Lineage recovery rebuilds them on next access.
  for (auto& [key, e] : blocks_) {
    if (!e.disk_path.empty()) std::remove(e.disk_path.c_str());
  }
  blocks_.clear();
  memory_bytes_.store(0, std::memory_order_relaxed);
  disk_bytes_.store(0, std::memory_order_relaxed);
}

}  // namespace deca::spark
