#ifndef DECA_SPARK_BLOCK_STORE_H_
#define DECA_SPARK_BLOCK_STORE_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/histogram.h"
#include "core/page.h"
#include "jvm/heap.h"
#include "memory/memory_manager.h"
#include "spark/config.h"
#include "spark/metrics.h"
#include "spark/record_ops.h"
#include "spark/tier_backend.h"

namespace deca::spark {

/// A materialized cache block as returned to tasks. At most one heap
/// representation is set; `packed` carries the serialized off-heap bytes
/// when the block was served lazily from T1/T2 without materializing
/// (RecordCursor / RawPageCursor walk it). `temporary` marks data
/// materialized per-access from a lower tier (not re-inserted into the
/// store).
struct LoadedBlock {
  StorageLevel level = StorageLevel::kMemoryObjects;
  uint32_t count = 0;
  /// kMemoryObjects: a managed Object[] of record roots.
  jvm::ObjRef object_array = jvm::kNullRef;
  /// kMemorySerialized: a managed byte[] of concatenated records.
  jvm::ObjRef serialized = jvm::kNullRef;
  /// kDecaPages: the block's page group.
  std::shared_ptr<core::PageGroup> pages;
  /// Packed T1/T2 payload (lazy reads): Kryo records, the serialized
  /// byte run, or raw page bytes depending on `level`. Arena-backed under
  /// DECA_ARENA=1 (same data()/size() surface as the old vector payload).
  alloc::BytesPtr packed;
  bool temporary = false;

  bool valid() const {
    return object_array != jvm::kNullRef || serialized != jvm::kNullRef ||
           pages != nullptr || packed != nullptr;
  }
};

/// Per-executor cache manager: a three-tier block store with a per-block
/// tier state machine.
///
///   T0  heap blocks — deserialized Object[]s, serialized byte[]s, or
///       Deca page groups, exactly the pre-tier representations;
///   T1  compact serialized off-heap buffers (storage_tiers >= 3 only):
///       charged to the storage pool, invisible to GC root scans;
///   T2  swap files on disk.
///
/// Demotion (T0 -> T1 -> T2) is driven by the memory manager's two-stage
/// eviction callbacks and the put-path budget loop: blocks compact into
/// T1 first and cascade to disk only when T1 is full (t1_fraction) or
/// demotion alone cannot satisfy the request. Promotion is lazy: a Get on
/// a T1/T2 block materializes only that block and re-admits it one tier
/// up under the configured AdmitPolicy; rejected accesses are served as
/// temporary views. With storage_tiers == 2 (default) the ladder
/// degenerates to the legacy heap <-> disk store, bit-identical to every
/// prior release. Kryo-serialized blocks hold an explicit storage
/// reservation; page-group blocks are re-tagged to the storage pool, so
/// footprints move pools instead of being charged twice.
///
/// Registered as a GC root provider: T0 object/serialized blocks pin
/// their managed arrays; page groups pin their own pages; T1/T2 blocks
/// contribute nothing to root scans.
///
/// Concurrency contract (the src/exec runtime): a cache manager belongs
/// to one executor, and every Put/Get/Evict runs either on that
/// executor's mutator thread or on the driver after the stage barrier —
/// `blocks_` is never touched from two threads at once, and locking it
/// here would deadlock anyway (GC root visits re-enter during
/// allocation). Only the byte counters are read cross-thread (driver
/// progress/metric queries), so they are atomics.
class CacheManager : public jvm::RootProvider {
 public:
  CacheManager(jvm::Heap* heap, const SparkConfig* config, int executor_id);
  ~CacheManager() override;

  /// Associates the record operations used to (de)serialize blocks of
  /// `rdd_id` during demotion/swap.
  void RegisterOps(int rdd_id, const RecordOps* ops);

  /// Caches a block of managed records (level kMemoryObjects or, when the
  /// configured level is kMemorySerialized, serializes them). `records`
  /// must be a managed Object[].
  void PutObjects(BlockKey key, jvm::ObjRef records, uint32_t count,
                  TaskMetrics* metrics);

  /// Caches a Deca page-group block.
  void PutPages(BlockKey key, std::shared_ptr<core::PageGroup> pages,
                uint32_t count, TaskMetrics* metrics);

  /// Fetches a block, materializing a heap representation. T1/T2 blocks
  /// are promoted one tier when the admission policy admits them
  /// (re-inserted, non-temporary); otherwise the materialization is
  /// temporary, rebuilt on every access. Returns an invalid block if the
  /// key was never cached.
  LoadedBlock Get(BlockKey key, TaskMetrics* metrics);

  /// Like Get, but a T1/T2 block the admission policy rejects is returned
  /// as its packed payload (`LoadedBlock::packed`) with no heap
  /// materialization at all — point queries then deserialize only the
  /// records they touch via RecordCursor / RawPageCursor.
  LoadedBlock GetLazy(BlockKey key, TaskMetrics* metrics);

  /// Drops a block entirely (unpersist), whatever tier it is in.
  void Evict(BlockKey key);

  /// OOM degradation hook (EvictStage::kSpill arm): swaps LRU blocks to
  /// disk until about `need_bytes` of memory has been unpinned. Returns
  /// the number of blocks evicted (0 when nothing was in memory).
  uint64_t EvictUnderPressure(uint64_t need_bytes);

  /// Execution-pool borrowing hook: same LRU swap-out as
  /// EvictUnderPressure but does not count as a pressure eviction (it is
  /// routine pool arbitration, not an OOM rescue). The memory manager
  /// clamps `need_bytes` to what the storage floor permits.
  uint64_t EvictForExecution(uint64_t need_bytes);

  /// Demote stage (EvictStage::kDemote): compacts LRU T0 heap blocks
  /// into T1 off-heap buffers until about `need_bytes` of heap memory is
  /// unpinned. No-op (returns 0) when storage_tiers < 3. `for_oom`
  /// counts the demotions as pressure evictions.
  uint64_t DemoteUnderPressure(uint64_t need_bytes, bool for_oom);

  /// Simulated executor crash: drops every block (all tiers, memory and
  /// swap files) and zeroes the byte counters. Lost blocks are recomputed
  /// from lineage on the next access.
  void DropAllForWipe();

  /// Accounting invariants, asserted at every stage barrier: the byte
  /// counters match the per-entry state, and the storage-pool
  /// reservations held by T0/T1 blocks sum to exactly the manager's
  /// storage_reserved() — a `temporary` block that charged the pool (a
  /// double charge; its entry still holds the canonical grant) breaks
  /// this identity immediately. Aborts on violation.
  void VerifyAccounting() const;

  /// Blocks demoted/swapped out by the OOM degradation ladder.
  uint64_t pressure_evictions() const {
    return pressure_evictions_.load(std::memory_order_relaxed);
  }

  /// Total bytes of blocks currently held in memory (T0 heap estimate
  /// plus T1 off-heap payload).
  uint64_t memory_bytes() const {
    return memory_bytes_.load(std::memory_order_relaxed);
  }
  /// Total bytes of blocks currently swapped out.
  uint64_t disk_bytes() const {
    return disk_bytes_.load(std::memory_order_relaxed);
  }
  /// Peak in-memory footprint observed.
  uint64_t peak_memory_bytes() const {
    return peak_memory_bytes_.load(std::memory_order_relaxed);
  }
  uint64_t swap_out_count() const {
    return swap_out_count_.load(std::memory_order_relaxed);
  }
  uint64_t t1_resident_bytes() const { return t1_.resident_bytes(); }
  uint64_t demote_t1_count() const {
    return demote_t1_count_.load(std::memory_order_relaxed);
  }
  uint64_t promote_count() const {
    return promote_count_.load(std::memory_order_relaxed);
  }
  uint64_t admit_reject_count() const {
    return admit_rejects_.load(std::memory_order_relaxed);
  }

  /// Snapshot of the tier plane (driver reads after stage barriers).
  TierCounters tier_counters() const;

  void VisitRoots(const std::function<void(jvm::ObjRef*)>& fn) override;

 private:
  /// Where a block currently lives. Legal transitions: T0 -> T1 (demote,
  /// storage_tiers >= 3), T0 -> T2 (legacy spill), T1 -> T2 (cascade),
  /// T1 -> T0 and T2 -> T1 (lazy promote under the admission policy).
  enum class Tier : uint8_t { kT0, kT1, kT2 };

  struct Entry {
    StorageLevel level;
    Tier tier = Tier::kT0;
    uint32_t count = 0;
    jvm::ObjRef data = jvm::kNullRef;  // T0: Object[] or byte[]
    std::shared_ptr<core::PageGroup> pages;  // T0: kDecaPages
    uint64_t bytes = 0;  // T0 in-memory footprint estimate
    // Storage-pool grant for T0 object/serialized blocks (page-group
    // blocks charge via their group's pool tag; T1 payloads via the
    // OffHeapTier's per-slot reservation). Released on demotion/swap-out
    // and on entry destruction.
    memory::MemoryReservation reservation;
    uint64_t packed_bytes = 0;   // payload size while in T1/T2
    uint64_t charged_bytes = 0;  // amount added to the tier byte counter
    uint64_t accesses_since_demote = 0;  // drives the admission policy
    uint64_t lru_tick = 0;
    // True while a tier transition for this entry is in flight. Unpack
    // allocates on the managed heap, which can trigger a collection and
    // re-enter the eviction paths (OOM hooks, pool borrowing); a pinned
    // entry is skipped by every victim scan so it cannot be spilled out
    // from under its own promotion (a double meter subtraction).
    bool pinned = false;
  };

  /// Serializes a managed Object[] block into `out` (Kryo-style).
  void SerializeRecords(const RecordOps* ops, jvm::ObjRef records,
                        uint32_t count, ByteWriter* out);
  jvm::ObjRef DeserializeRecords(const RecordOps* ops, const uint8_t* data,
                                 size_t size, uint32_t count,
                                 TaskMetrics* metrics);

  /// Packs a T0 entry's heap representation into the tier currency
  /// (Kryo records / serialized run / raw page bytes).
  PackedBlock Pack(BlockKey key, const Entry& e, TaskMetrics* metrics);
  /// Materializes a heap representation from packed payload into
  /// `*block` (object_array / serialized / pages per level).
  void Unpack(BlockKey key, const PackedBlock& packed, LoadedBlock* block,
              TaskMetrics* metrics);

  /// T0 -> T1: packs the heap representation into an off-heap buffer
  /// (cascading LRU T1 blocks to disk when over the t1_fraction cap) and
  /// releases the heap copy.
  void DemoteToT1(BlockKey key, Entry* e, TaskMetrics* metrics);
  /// T0/T1 -> T2: writes the payload to the block's swap file.
  void SpillToT2(BlockKey key, Entry* e, TaskMetrics* metrics);
  /// T1 -> T0: re-admits a heap representation built from `packed`.
  void PromoteToT0(BlockKey key, Entry* e, const PackedBlock& packed,
                   LoadedBlock* block, TaskMetrics* metrics);
  /// T2 -> T1: re-admits the packed payload off-heap (storage_tiers >= 3).
  void PromoteToT1(BlockKey key, Entry* e, PackedBlock packed,
                   TaskMetrics* metrics);

  /// The admission policy's verdict for an access to a demoted block
  /// (`accesses` counts accesses since demotion, this one included).
  bool ShouldAdmit(uint64_t accesses) const;
  /// Makes room in T1 for `incoming` payload bytes by cascading LRU T1
  /// blocks to disk while over the t1_fraction cap.
  void EnsureT1Room(uint64_t incoming, TaskMetrics* metrics);

  /// Sheds blocks while the storage pool is over its limit: demote
  /// first (storage_tiers >= 3), spill once nothing is left to demote.
  /// `exclude` protects a just-promoted block from immediately becoming
  /// its own eviction victim.
  void EnforceBudget(TaskMetrics* metrics, const BlockKey* exclude = nullptr);
  /// Swaps out the least-recently-used in-memory block; false if none.
  bool SwapOutLru(TaskMetrics* metrics, const BlockKey* exclude);
  /// Demotes the least-recently-used T0 block to T1, returning its heap
  /// footprint estimate (0 if no T0 block was left).
  uint64_t DemoteLru(TaskMetrics* metrics, const BlockKey* exclude);
  /// LRU swap-out until about `need_bytes` are unpinned; returns blocks
  /// evicted.
  uint64_t EvictBytes(uint64_t need_bytes);
  /// Both-stage shared body of Get/GetLazy.
  LoadedBlock GetInternal(BlockKey key, bool lazy, TaskMetrics* metrics);

  uint64_t EstimateObjectBlockBytes(const RecordOps* ops, jvm::ObjRef records,
                                    uint32_t count) const;

  jvm::Heap* heap_;
  const SparkConfig* cfg_;
  memory::ExecutorMemoryManager* mm_;  // may be null (standalone tests)
  int executor_id_;
  uint64_t t1_cap_bytes_ = 0;
  std::unordered_map<BlockKey, Entry, BlockKeyHash> blocks_;
  std::map<int, const RecordOps*> ops_;
  OffHeapTier t1_;
  DiskTier t2_;
  std::atomic<uint64_t> memory_bytes_{0};
  std::atomic<uint64_t> disk_bytes_{0};
  std::atomic<uint64_t> peak_memory_bytes_{0};
  std::atomic<uint64_t> swap_out_count_{0};
  std::atomic<uint64_t> pressure_evictions_{0};
  std::atomic<uint64_t> demote_t1_count_{0};
  std::atomic<uint64_t> promote_count_{0};
  std::atomic<uint64_t> admit_rejects_{0};
  std::atomic<uint64_t> t0_hits_{0};
  std::atomic<uint64_t> t1_hits_{0};
  std::atomic<uint64_t> t2_hits_{0};
  std::atomic<uint64_t> misses_{0};
  // Mutator-thread only; the driver reads the derived percentiles via
  // tier_counters() after stage barriers (synchronized by the barrier).
  Histogram promote_ms_;
  uint64_t lru_clock_ = 0;
};

}  // namespace deca::spark

#endif  // DECA_SPARK_BLOCK_STORE_H_
