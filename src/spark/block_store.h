#ifndef DECA_SPARK_BLOCK_STORE_H_
#define DECA_SPARK_BLOCK_STORE_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/page.h"
#include "jvm/heap.h"
#include "memory/memory_manager.h"
#include "spark/config.h"
#include "spark/metrics.h"
#include "spark/record_ops.h"

namespace deca::spark {

/// Identifies one cached block: (rdd id, partition).
struct BlockKey {
  int rdd_id = 0;
  int partition = 0;

  bool operator<(const BlockKey& o) const {
    return rdd_id != o.rdd_id ? rdd_id < o.rdd_id : partition < o.partition;
  }
  bool operator==(const BlockKey& o) const {
    return rdd_id == o.rdd_id && partition == o.partition;
  }
};

/// A materialized cache block as returned to tasks. Exactly one
/// representation is set. `temporary` marks data streamed back from a swap
/// file (not re-inserted into the store).
struct LoadedBlock {
  StorageLevel level = StorageLevel::kMemoryObjects;
  uint32_t count = 0;
  /// kMemoryObjects: a managed Object[] of record roots.
  jvm::ObjRef object_array = jvm::kNullRef;
  /// kMemorySerialized: a managed byte[] of concatenated records.
  jvm::ObjRef serialized = jvm::kNullRef;
  /// kDecaPages: the block's page group.
  std::shared_ptr<core::PageGroup> pages;
  bool temporary = false;

  bool valid() const {
    return object_array != jvm::kNullRef || serialized != jvm::kNullRef ||
           pages != nullptr;
  }
};

/// Per-executor cache manager: stores blocks at the configured storage
/// level, charging the executor's unified memory manager's storage pool
/// and evicting least-recently-used blocks to swap files on disk (Spark's
/// MEMORY_AND_DISK) when the pool is over its limit. Deca page-group
/// blocks are written to disk as raw page bytes — no serialization (paper
/// Appendix C). Object/serialized blocks hold an explicit storage
/// reservation; page-group blocks are re-tagged to the storage pool, so
/// their footprint moves pools instead of being charged twice.
///
/// Registered as a GC root provider: in-memory object/serialized blocks
/// pin their managed arrays; page groups pin their own pages.
///
/// Concurrency contract (the src/exec runtime): a cache manager belongs
/// to one executor, and every Put/Get/Evict runs either on that
/// executor's mutator thread or on the driver after the stage barrier —
/// `blocks_` is never touched from two threads at once, and locking it
/// here would deadlock anyway (GC root visits re-enter during
/// allocation). Only the byte counters are read cross-thread (driver
/// progress/metric queries), so they are atomics.
class CacheManager : public jvm::RootProvider {
 public:
  CacheManager(jvm::Heap* heap, const SparkConfig* config, int executor_id);
  ~CacheManager() override;

  /// Associates the record operations used to (de)serialize blocks of
  /// `rdd_id` during swap.
  void RegisterOps(int rdd_id, const RecordOps* ops);

  /// Caches a block of managed records (level kMemoryObjects or, when the
  /// configured level is kMemorySerialized, serializes them). `records`
  /// must be a managed Object[].
  void PutObjects(BlockKey key, jvm::ObjRef records, uint32_t count,
                  TaskMetrics* metrics);

  /// Caches a Deca page-group block.
  void PutPages(BlockKey key, std::shared_ptr<core::PageGroup> pages,
                uint32_t count, TaskMetrics* metrics);

  /// Fetches a block; reloads from the swap file if it was evicted
  /// (charging deserialization/spill time to `metrics`). Returns an
  /// invalid block if the key was never cached.
  LoadedBlock Get(BlockKey key, TaskMetrics* metrics);

  /// Drops a block entirely (unpersist).
  void Evict(BlockKey key);

  /// OOM degradation hook: swaps LRU in-memory blocks to disk until about
  /// `need_bytes` of managed memory has been unpinned. Returns the number
  /// of blocks evicted (0 when nothing was in memory).
  uint64_t EvictUnderPressure(uint64_t need_bytes);

  /// Execution-pool borrowing hook: same LRU swap-out as
  /// EvictUnderPressure but does not count as a pressure eviction (it is
  /// routine pool arbitration, not an OOM rescue). The memory manager
  /// clamps `need_bytes` to what the storage floor permits.
  uint64_t EvictForExecution(uint64_t need_bytes);

  /// Simulated executor crash: drops every block (memory and swap files)
  /// and zeroes the byte counters. Lost blocks are recomputed from lineage
  /// on the next access.
  void DropAllForWipe();

  /// Blocks swapped out by the OOM degradation ladder.
  uint64_t pressure_evictions() const {
    return pressure_evictions_.load(std::memory_order_relaxed);
  }

  /// Total bytes of blocks currently held in memory.
  uint64_t memory_bytes() const {
    return memory_bytes_.load(std::memory_order_relaxed);
  }
  /// Total bytes of blocks currently swapped out.
  uint64_t disk_bytes() const {
    return disk_bytes_.load(std::memory_order_relaxed);
  }
  /// Peak in-memory footprint observed.
  uint64_t peak_memory_bytes() const {
    return peak_memory_bytes_.load(std::memory_order_relaxed);
  }
  uint64_t swap_out_count() const {
    return swap_out_count_.load(std::memory_order_relaxed);
  }

  void VisitRoots(const std::function<void(jvm::ObjRef*)>& fn) override;

 private:
  struct Entry {
    StorageLevel level;
    uint32_t count = 0;
    jvm::ObjRef data = jvm::kNullRef;  // Object[] or byte[] when in memory
    std::shared_ptr<core::PageGroup> pages;
    uint64_t bytes = 0;  // in-memory footprint estimate
    // Storage-pool grant for object/serialized blocks (page-group blocks
    // charge via their group's pool tag instead). Released on swap-out
    // and on entry destruction.
    memory::MemoryReservation reservation;
    bool on_disk = false;
    std::string disk_path;
    uint64_t lru_tick = 0;
  };

  /// Serializes a managed Object[] block into `out` (Kryo-style).
  void SerializeRecords(const RecordOps* ops, jvm::ObjRef records,
                        uint32_t count, ByteWriter* out);
  jvm::ObjRef DeserializeRecords(const RecordOps* ops, const uint8_t* data,
                                 size_t size, uint32_t count,
                                 TaskMetrics* metrics);

  /// Evicts LRU blocks to disk while the storage pool is over its limit.
  void EnforceBudget(TaskMetrics* metrics);
  /// Swaps out the least-recently-used in-memory block; false if none.
  bool SwapOutLru(TaskMetrics* metrics);
  /// LRU swap-out until about `need_bytes` are unpinned; returns blocks
  /// evicted.
  uint64_t EvictBytes(uint64_t need_bytes);
  void SwapOut(BlockKey key, Entry* e, TaskMetrics* metrics);
  std::string SwapPath(BlockKey key) const;

  uint64_t EstimateObjectBlockBytes(const RecordOps* ops, jvm::ObjRef records,
                                    uint32_t count) const;

  jvm::Heap* heap_;
  const SparkConfig* cfg_;
  memory::ExecutorMemoryManager* mm_;  // may be null (standalone tests)
  int executor_id_;
  std::map<BlockKey, Entry> blocks_;
  std::map<int, const RecordOps*> ops_;
  std::atomic<uint64_t> memory_bytes_{0};
  std::atomic<uint64_t> disk_bytes_{0};
  std::atomic<uint64_t> peak_memory_bytes_{0};
  std::atomic<uint64_t> swap_out_count_{0};
  std::atomic<uint64_t> pressure_evictions_{0};
  uint64_t lru_clock_ = 0;
};

}  // namespace deca::spark

#endif  // DECA_SPARK_BLOCK_STORE_H_
