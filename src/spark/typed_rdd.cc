#include "spark/typed_rdd.h"

namespace deca::spark {

RecordAdapter<int64_t> MakeBoxedLongAdapter() {
  RecordAdapter<int64_t> a;
  a.to_managed = [](jvm::Heap* h, const int64_t& v) {
    jvm::ObjRef r = h->AllocateInstance(h->registry()->boxed_long_class());
    h->SetField<int64_t>(r, 0, v);
    return r;
  };
  a.from_managed = [](jvm::Heap* h, jvm::ObjRef r) {
    return h->GetField<int64_t>(r, 0);
  };
  return a;
}

RecordAdapter<double> MakeBoxedDoubleAdapter() {
  RecordAdapter<double> a;
  a.to_managed = [](jvm::Heap* h, const double& v) {
    jvm::ObjRef r = h->AllocateInstance(h->registry()->boxed_double_class());
    h->SetField<double>(r, 0, v);
    return r;
  };
  a.from_managed = [](jvm::Heap* h, jvm::ObjRef r) {
    return h->GetField<double>(r, 0);
  };
  return a;
}

}  // namespace deca::spark
