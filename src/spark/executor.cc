#include "spark/executor.h"

#include <algorithm>

namespace deca::spark {

Executor::Executor(int id, const SparkConfig& config,
                   jvm::ClassRegistry* registry)
    : id_(id) {
  // The memory manager is built first: the heap registers its capacity
  // with it, and every page group / cache block charges it from then on.
  memory_ = std::make_unique<memory::ExecutorMemoryManager>(
      config.executor_memory(), config.storage_fraction);
  // Native allocation plane: one shard per worker thread plus one for the
  // driver/mutator thread. In fallback mode (DECA_ARENA=0) the handle only
  // counts calls, so the deterministic alloc counters match arena runs.
  alloc_ = std::make_unique<alloc::PageAllocator>(
      config.arena, std::max(1, config.num_worker_threads) + 1);
  jvm::HeapConfig heap_config = config.heap;
  heap_config.page_allocator = alloc_.get();
  heap_ = std::make_unique<jvm::Heap>(heap_config, registry);
  heap_->SetMemoryManager(memory_.get());
  cache_ = std::make_unique<CacheManager>(heap_.get(), &config, id);
  // Storage eviction is the manager's lever: execution-pool borrowing
  // sheds blocks down to the storage floor; the heap's OOM ladder digs
  // without floor protection (and counts as a pressure eviction). Both
  // run the two-stage ladder: demote T0 heap blocks into the serialized
  // off-heap tier first (a no-op with storage_tiers=2), spill to disk
  // for whatever demotion could not shed.
  memory_->SetStorageEvictor(
      [this](uint64_t need, memory::ExecutorMemoryManager::EvictStage stage,
             bool for_oom) {
        if (stage == memory::ExecutorMemoryManager::EvictStage::kDemote) {
          return cache_->DemoteUnderPressure(need, for_oom);
        }
        return for_oom ? cache_->EvictUnderPressure(need)
                       : cache_->EvictForExecution(need);
      });
  // OOM degradation: a failed allocation asks the manager for relief
  // (which evicts cached blocks to disk), then surfaces as a retryable
  // exception instead of aborting the process.
  heap_->set_oom_throws(true);
  heap_->SetOomHandler(
      [this](size_t need) { return memory_->EvictStorageForOom(need) > 0; });
}

void Executor::Wipe() {
  // Simulated crash: the cache (memory + swap files) and the entire heap
  // are lost. Root providers other than the cache survive (the driver
  // re-materializes their contents from lineage). Dropping the blocks
  // releases their reservations and page charges back to the pools.
  cache_->DropAllForWipe();
  heap_->Reset();
}

void Executor::VerifyMemoryAccounting() {
  heap_->ReportOccupancyNow();
  memory_->VerifyAccounting(heap_->capacity_bytes());
  cache_->VerifyAccounting();
}

}  // namespace deca::spark
