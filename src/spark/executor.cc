#include "spark/executor.h"

namespace deca::spark {

Executor::Executor(int id, const SparkConfig& config,
                   jvm::ClassRegistry* registry)
    : id_(id) {
  heap_ = std::make_unique<jvm::Heap>(config.heap, registry);
  cache_ = std::make_unique<CacheManager>(heap_.get(), &config, id);
}

}  // namespace deca::spark
