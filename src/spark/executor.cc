#include "spark/executor.h"

namespace deca::spark {

Executor::Executor(int id, const SparkConfig& config,
                   jvm::ClassRegistry* registry)
    : id_(id) {
  heap_ = std::make_unique<jvm::Heap>(config.heap, registry);
  cache_ = std::make_unique<CacheManager>(heap_.get(), &config, id);
  // OOM degradation: a failed allocation first tries shedding cached
  // blocks to disk, then surfaces as a retryable exception instead of
  // aborting the process.
  heap_->set_oom_throws(true);
  heap_->SetOomHandler(
      [this](size_t need) { return cache_->EvictUnderPressure(need) > 0; });
}

void Executor::Wipe() {
  // Simulated crash: the cache (memory + swap files) and the entire heap
  // are lost. Root providers other than the cache survive (the driver
  // re-materializes their contents from lineage).
  cache_->DropAllForWipe();
  heap_->Reset();
}

}  // namespace deca::spark
