#include "spark/network_shuffle.h"

#include <algorithm>

#include "common/logging.h"
#include "fault/task_failure.h"
#include "obs/trace.h"

namespace deca::spark {

namespace {

net::WireCodec ResolveCodec(const SparkConfig& config) {
  switch (config.shuffle_wire_codec) {
    case ShuffleWireCodec::kPage:
      return net::WireCodec::kPage;
    case ShuffleWireCodec::kRecord:
      return net::WireCodec::kRecord;
    case ShuffleWireCodec::kAuto:
      break;
  }
  // The paper's two worlds: Deca ships its decomposed pages untouched,
  // the JVM baseline pays a per-record serializer.
  return config.deca_shuffle ? net::WireCodec::kPage
                             : net::WireCodec::kRecord;
}

}  // namespace

NetworkShuffleService::NetworkShuffleService(const SparkConfig& config,
                                             net::Transport* transport,
                                             net::NetStats* stats,
                                             int local_endpoint)
    : num_executors_(config.num_executors),
      codec_(ResolveCodec(config)),
      fetch_chunk_bytes_(std::max<uint32_t>(1, config.net_fetch_chunk_bytes)),
      max_inflight_bytes_(
          std::max(config.net_max_inflight_bytes, config.net_fetch_chunk_bytes)),
      fetch_retries_(std::max(0, config.net_fetch_retries)),
      transport_(transport),
      stats_(stats) {
  DECA_CHECK_EQ(transport_->num_endpoints(), num_executors_);
  servers_.resize(static_cast<size_t>(num_executors_));
  for (int e = 0; e < num_executors_; ++e) {
    if (local_endpoint >= 0 && e != local_endpoint) continue;
    servers_[static_cast<size_t>(e)] =
        std::make_unique<net::BlockServer>(stats_);
    net::BlockServer* server = servers_[static_cast<size_t>(e)].get();
    transport_->Bind(e, [server](const std::vector<uint8_t>& request) {
      return server->HandleRequest(request);
    });
  }
}

int NetworkShuffleService::RegisterShuffle(int num_reducers) {
  std::lock_guard<std::mutex> lock(mu_);
  reducers_per_shuffle_.push_back(num_reducers);
  return static_cast<int>(reducers_per_shuffle_.size() - 1);
}

void NetworkShuffleService::PutChunk(int shuffle_id, int reducer,
                                     int map_partition,
                                     std::vector<uint8_t> bytes,
                                     const net::ChunkMeta& meta) {
  if (bytes.empty()) return;  // parity with LocalShuffleService
  // The shuffle-plane event matches LocalShuffleService exactly (trace
  // parity for the bench gate); the net-plane instant adds wire detail.
  obs::Instant(obs::Cat::kShuffle, "shuffle_put",
               static_cast<double>(bytes.size()),
               static_cast<double>(reducer));
  obs::Instant(obs::Cat::kNet, "net_put", static_cast<double>(bytes.size()),
               static_cast<double>(reducer));
  std::vector<uint8_t> frame = net::EncodeFrame(codec_, bytes, meta, stats_);
  net::BlockServer* server =
      servers_[static_cast<size_t>(ExecutorOf(map_partition))].get();
  DECA_CHECK(server != nullptr)
      << "PutChunk for a partition owned by a remote daemon";
  server->Register(shuffle_id, reducer, map_partition, std::move(frame),
                   bytes.size());
  InvalidateCache(shuffle_id);
}

void NetworkShuffleService::DropMapOutput(int shuffle_id, int map_partition) {
  net::BlockServer* server =
      servers_[static_cast<size_t>(ExecutorOf(map_partition))].get();
  // A remote daemon's outputs die with its process; nothing to drop here.
  if (server != nullptr) server->Drop(shuffle_id, map_partition);
  InvalidateCache(shuffle_id);
}

std::vector<std::vector<uint8_t>> NetworkShuffleService::FetchAll(
    int shuffle_id, int reducer) const {
  int from = ExecutorOf(reducer);
  // (map_partition, frame bytes) gathered from every executor's server.
  std::vector<std::pair<int, std::vector<uint8_t>>> frames;
  for (int e = 0; e < num_executors_; ++e) {
    // One index round trip per source executor.
    ByteWriter req;
    req.Write<uint8_t>(static_cast<uint8_t>(net::MsgType::kIndexRequest));
    req.WriteVarU64(static_cast<uint64_t>(shuffle_id));
    req.WriteVarU64(static_cast<uint64_t>(reducer));
    std::vector<uint8_t> resp_wire =
        transport_->Call(from, e, net::FrameMessage(req));
    if (stats_ != nullptr) {
      stats_->index_requests.fetch_add(1, std::memory_order_relaxed);
    }
    ByteReader resp(nullptr, 0);
    DECA_CHECK(net::UnframeMessage(resp_wire, &resp));
    DECA_CHECK_EQ(resp.Read<uint8_t>(),
                  static_cast<uint8_t>(net::MsgType::kIndexResponse));
    uint64_t count = resp.ReadVarU64();
    std::vector<std::pair<int, uint64_t>> index;
    index.reserve(count);
    for (uint64_t i = 0; i < count; ++i) {
      int mapper = static_cast<int>(resp.ReadVarU64());
      uint64_t frame_bytes = resp.ReadVarU64();
      index.emplace_back(mapper, frame_bytes);
    }

    for (const auto& [mapper, frame_bytes] : index) {
      // Pull the frame in flow-controlled slices: never more than the
      // in-flight window outstanding before the (modelled) decoder
      // drains it.
      std::vector<uint8_t> frame;
      frame.reserve(frame_bytes);
      uint64_t inflight = 0;
      while (frame.size() < frame_bytes) {
        if (inflight >= max_inflight_bytes_) {
          if (stats_ != nullptr) {
            stats_->flow_stalls.fetch_add(1, std::memory_order_relaxed);
          }
          inflight = 0;  // window drained
        }
        uint64_t budget = max_inflight_bytes_ - inflight;
        uint64_t ask = std::min<uint64_t>(fetch_chunk_bytes_, budget);
        ByteWriter freq;
        freq.Write<uint8_t>(static_cast<uint8_t>(net::MsgType::kFetchRequest));
        freq.WriteVarU64(static_cast<uint64_t>(shuffle_id));
        freq.WriteVarU64(static_cast<uint64_t>(reducer));
        freq.WriteVarU64(static_cast<uint64_t>(mapper));
        freq.WriteVarU64(frame.size());
        freq.WriteVarU64(ask);
        std::vector<uint8_t> slice_wire =
            transport_->Call(from, e, net::FrameMessage(freq));
        if (stats_ != nullptr) {
          stats_->slice_requests.fetch_add(1, std::memory_order_relaxed);
        }
        ByteReader sresp(nullptr, 0);
        DECA_CHECK(net::UnframeMessage(slice_wire, &sresp));
        DECA_CHECK_EQ(sresp.Read<uint8_t>(),
                      static_cast<uint8_t>(net::MsgType::kFetchResponse));
        DECA_CHECK_EQ(sresp.Read<uint8_t>(),
                      static_cast<uint8_t>(net::WireStatus::kOk));
        uint64_t total = sresp.ReadVarU64();
        DECA_CHECK_EQ(total, frame_bytes);
        uint64_t slice_len = sresp.ReadVarU64();
        DECA_CHECK(slice_len > 0) << "empty fetch slice";
        size_t off = frame.size();
        frame.resize(off + slice_len);
        sresp.ReadBytes(frame.data() + off, slice_len);
        inflight += slice_len;
      }
      frames.emplace_back(mapper, std::move(frame));
    }
  }

  // Executors were visited in id order but partition ids interleave
  // across them (p % E placement): restore global map-partition order so
  // the reducer sees exactly the local service's chunk order.
  std::sort(frames.begin(), frames.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });

  std::vector<std::vector<uint8_t>> chunks;
  chunks.reserve(frames.size());
  for (auto& [mapper, frame] : frames) {
    std::vector<uint8_t> payload;
    DECA_CHECK(net::DecodeFrame(frame, &payload, stats_))
        << "malformed shuffle wire frame (mapper " << mapper << ")";
    chunks.push_back(std::move(payload));
  }
  obs::Instant(obs::Cat::kShuffle, "shuffle_fetch",
               static_cast<double>(chunks.size()),
               static_cast<double>(reducer));
  obs::Instant(obs::Cat::kNet, "net_fetch", static_cast<double>(chunks.size()),
               static_cast<double>(reducer));
  return chunks;
}

const std::vector<std::vector<uint8_t>>& NetworkShuffleService::GetChunks(
    int shuffle_id, int reducer) const {
  {
    std::lock_guard<std::mutex> lock(cache_mu_);
    auto it = fetched_.find({shuffle_id, reducer});
    if (it != fetched_.end()) return *it->second;
  }
  auto chunks = std::make_unique<std::vector<std::vector<uint8_t>>>(
      FetchAll(shuffle_id, reducer));
  std::lock_guard<std::mutex> lock(cache_mu_);
  auto [it, inserted] =
      fetched_.try_emplace({shuffle_id, reducer}, std::move(chunks));
  return *it->second;
}

int NetworkShuffleService::num_reducers(int shuffle_id) const {
  std::lock_guard<std::mutex> lock(mu_);
  return reducers_per_shuffle_[static_cast<size_t>(shuffle_id)];
}

uint64_t NetworkShuffleService::total_bytes(int shuffle_id) const {
  uint64_t total = 0;
  for (const auto& server : servers_) {
    if (server != nullptr) total += server->PayloadBytes(shuffle_id);
  }
  return total;
}

int NetworkShuffleService::num_shuffles() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<int>(reducers_per_shuffle_.size());
}

void NetworkShuffleService::Release(int shuffle_id) {
  for (const auto& server : servers_) {
    if (server != nullptr) server->Release(shuffle_id);
  }
  InvalidateCache(shuffle_id);
}

void NetworkShuffleService::InvalidateCache(int shuffle_id) {
  std::lock_guard<std::mutex> lock(cache_mu_);
  auto begin = fetched_.lower_bound({shuffle_id, 0});
  auto end = fetched_.lower_bound({shuffle_id + 1, 0});
  fetched_.erase(begin, end);
}

void NetworkShuffleService::FailFetch(int stage, int partition, int attempt) {
  int from = ExecutorOf(partition);
  int to = num_executors_ > 1 ? (from + 1) % num_executors_ : from;
  ByteWriter probe;
  probe.Write<uint8_t>(static_cast<uint8_t>(net::MsgType::kFailProbe));
  probe.WriteVarU64(static_cast<uint64_t>(stage));
  probe.WriteVarU64(static_cast<uint64_t>(partition));
  probe.WriteVarU64(static_cast<uint64_t>(attempt));
  std::vector<uint8_t> wire = net::FrameMessage(probe);
  for (int attempt_i = 0; attempt_i <= fetch_retries_; ++attempt_i) {
    std::vector<uint8_t> resp_wire = transport_->Call(from, to, wire);
    ByteReader resp(nullptr, 0);
    DECA_CHECK(net::UnframeMessage(resp_wire, &resp));
    DECA_CHECK_EQ(resp.Read<uint8_t>(),
                  static_cast<uint8_t>(net::MsgType::kErrorResponse));
    DECA_CHECK_EQ(resp.Read<uint8_t>(),
                  static_cast<uint8_t>(net::WireStatus::kInjectedFailure));
    if (stats_ != nullptr && attempt_i > 0) {
      stats_->fetch_retries.fetch_add(1, std::memory_order_relaxed);
      // Virtual exponential backoff: 1ms, 2ms, 4ms, ... accounted as
      // simulated wire time, never slept.
      stats_->virtual_wire_us.fetch_add(1000ULL << (attempt_i - 1),
                                        std::memory_order_relaxed);
    }
  }
  if (stats_ != nullptr) {
    stats_->injected_fetch_failures.fetch_add(1, std::memory_order_relaxed);
  }
  obs::Instant(obs::Cat::kNet, "net_fetch_fail", static_cast<double>(stage),
               static_cast<double>(partition));
  throw fault::ShuffleFetchFailure(stage, partition, attempt);
}

}  // namespace deca::spark
