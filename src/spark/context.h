#ifndef DECA_SPARK_CONTEXT_H_
#define DECA_SPARK_CONTEXT_H_

#include <atomic>
#include <functional>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "exec/metrics_sink.h"
#include "exec/remote_task.h"
#include "exec/scheduler.h"
#include "fault/fault_injector.h"
#include "jvm/class_registry.h"
#include "net/net_stats.h"
#include "net/transport.h"
#include "obs/trace.h"
#include "spark/dist.h"
#include "spark/executor.h"
#include "spark/metrics.h"
#include "spark/shuffle.h"

namespace deca::spark {

class SparkContext;

/// Notified when an executor crash-wipes, before its heap is reset.
/// Listeners must drop every reference they hold into that executor's
/// heap (they are stale after the wipe) and arrange for the lost data to
/// be recomputed from lineage on next access.
class WipeListener {
 public:
  virtual ~WipeListener() = default;
  virtual void OnExecutorWipe(int executor_id) = 0;
};

/// Per-task view handed to stage functions: the partition id, the owning
/// executor (heap, cache) and the task's metric sink.
class TaskContext {
 public:
  TaskContext(SparkContext* ctx, Executor* executor, int partition,
              int num_partitions)
      : ctx_(ctx),
        executor_(executor),
        partition_(partition),
        num_partitions_(num_partitions) {}

  int partition() const { return partition_; }
  int num_partitions() const { return num_partitions_; }
  Executor* executor() { return executor_; }
  jvm::Heap* heap() { return executor_->heap(); }
  CacheManager* cache() { return executor_->cache(); }
  SparkContext* context() { return ctx_; }
  TaskMetrics& metrics() { return metrics_; }

 private:
  SparkContext* ctx_;
  Executor* executor_;
  int partition_;
  int num_partitions_;
  TaskMetrics metrics_;
};

/// The driver: owns the executors (each with its own managed heap), the
/// task scheduler, the shuffle service and the job metrics. Stages
/// execute one task per partition, round-robin across executors. With
/// `num_worker_threads == 0` (default) tasks run sequentially on the
/// driver thread; otherwise the src/exec runtime runs each executor's
/// tasks on its own OS thread, with bit-identical results.
class SparkContext {
 public:
  explicit SparkContext(const SparkConfig& config);
  ~SparkContext();

  SparkContext(const SparkContext&) = delete;
  SparkContext& operator=(const SparkContext&) = delete;

  const SparkConfig& config() const { return config_; }
  jvm::ClassRegistry* registry() { return &registry_; }
  ShuffleService* shuffle() { return shuffle_.get(); }
  /// Wire-plane counters; null when shuffle_transport == kLocal. A worker
  /// daemon reports the mesh's stats (owned by the daemon runtime).
  const net::NetStats* net_stats() const {
    return net_stats_ != nullptr ? net_stats_.get()
                                 : config_.runtime.net_stats;
  }

  int num_partitions() const {
    return config_.num_executors * config_.partitions_per_executor;
  }
  int num_executors() const { return config_.num_executors; }
  Executor* executor(int i) { return executors_[static_cast<size_t>(i)].get(); }
  /// Partition placement is owned by the scheduler so the sequential and
  /// parallel paths cannot disagree about which heap a partition's
  /// objects live in.
  Executor* executor_for_partition(int p) {
    return executors_[static_cast<size_t>(scheduler_.ExecutorOfPartition(p))]
        .get();
  }
  exec::TaskScheduler* scheduler() { return &scheduler_; }

  /// Runs one stage: `task` is invoked once per partition. Task wall time
  /// and the GC pauses incurred during it are recorded in the job metrics.
  /// A task that throws a fault::TaskFailure (or a jvm::OutOfMemoryError,
  /// converted to TaskOomFailure) is retried on the same executor in the
  /// same per-executor FIFO slot, up to `config.max_task_failures`
  /// attempts; other exception types propagate immediately.
  ///
  /// Distributed roles (config.runtime.role): the driver dispatches each
  /// partition as a task envelope to its executor's daemon instead of
  /// running `task`; a worker turns this call into a serve loop executing
  /// the driver's envelopes with the SAME `task` closure (SPMD — every
  /// process runs the same program). An executor that dies mid-stage
  /// quarantines the stage: partial results are discarded (never merged),
  /// the executor is respawned and fast-forwarded, lost state is replayed
  /// from lineage, and the whole stage retries, bounded by
  /// `config.max_task_failures` stage attempts.
  void RunStage(const std::string& name,
                const std::function<void(TaskContext&)>& task);

  /// A stage whose tasks each produce a byte blob, returned in partition
  /// order. In process mode the blobs are gathered over RPC and broadcast
  /// to every daemon at the stage barrier, so all processes fold the same
  /// values into driver-side state (e.g. LR weights stay in lockstep).
  using CollectFn = std::function<std::vector<uint8_t>(TaskContext&)>;
  std::vector<std::vector<uint8_t>> RunCollectStage(const std::string& name,
                                                    const CollectFn& fn);

  /// Like RunStage, but additionally records `task` as the producer of
  /// `shuffle_id`'s map outputs: if an executor later crash-wipes, the map
  /// outputs it deposited are dropped and `task` is deterministically
  /// re-executed for the lost partitions before the next stage runs.
  /// Returns a lineage token for DropLineage.
  int RunMapStage(const std::string& name, int shuffle_id,
                  const std::function<void(TaskContext&)>& task);

  /// Registers `fn` as the lineage of `rdd_id`'s cached blocks: when an
  /// executor crash-wipes, `fn` is re-run for the lost partitions before
  /// the next stage so the cache is restored. Call it after the stage that
  /// materialized the blocks; `fn` must be idempotent per partition.
  /// Returns a lineage token for DropLineage.
  int RegisterLineage(int rdd_id, std::function<void(TaskContext&)> fn);

  /// Retires a replayable stage (batch: an unpersisted RDD; streaming: a
  /// reclaimed epoch region). Its data is gone by contract, so replaying
  /// it after a wipe would resurrect reclaimed blocks — and over an
  /// unbounded epoch stream the replay log would otherwise grow without
  /// limit. Unknown tokens are ignored.
  void DropLineage(int token);

  /// Replayable stages still registered (tests assert retired epochs
  /// leave no replay residue behind).
  size_t replay_stage_count() const { return replay_stages_.size(); }

  /// Wipe listeners (e.g. TypedRdd state holding per-partition arrays).
  void AddWipeListener(WipeListener* listener);
  void RemoveWipeListener(WipeListener* listener);

  /// Simulates a crash of executor `e` at a stage boundary: wipe
  /// listeners drop their references, the cache and heap are wiped, and
  /// the executor's shuffle map outputs are discarded. Lost state is
  /// recomputed from lineage before the next stage runs.
  void WipeExecutor(int e);

  /// Worker-side note that one lost block was rebuilt from lineage;
  /// folded into the job metrics at the next stage barrier.
  void NoteRecomputedBlock() {
    recomputed_blocks_.fetch_add(1, std::memory_order_relaxed);
  }

  /// Registers record ops for an RDD id on every executor's cache manager.
  void RegisterCachedRdd(int rdd_id, const RecordOps* ops);

  /// Drops an unpersisted RDD's blocks on all executors.
  void UnpersistRdd(int rdd_id);

  JobMetrics& metrics() { return metrics_; }
  /// Resets accumulated job metrics (e.g. after warmup).
  void ResetMetrics();

  /// The structured-trace plane (disabled unless config.trace_enabled).
  obs::Tracer* tracer() { return &tracer_; }
  /// Final merge + hand-off of the accumulated trace log (null when
  /// tracing is disabled). The context keeps recording afterwards into a
  /// fresh log, so benches can take one log per measured run.
  std::shared_ptr<obs::TraceLog> TakeTraceLog() { return tracer_.Take(); }

  /// Sum of GC pause time across executors so far.
  double TotalGcPauseMs() const;
  double TotalConcurrentGcMs() const;
  uint64_t TotalMinorGcs() const;
  uint64_t TotalFullGcs() const;
  /// GC pause plane (schema v4): slice/pause counts summed across
  /// executors, latency percentiles composed by max (the job-level tail
  /// is bounded by the worst executor). Role-aware like the other
  /// getters.
  GcPauseAggregate TotalGcPauses() const;
  /// Sum of current in-memory cached bytes across executors.
  uint64_t CachedMemoryBytes() const;
  uint64_t PeakCachedMemoryBytes() const;
  uint64_t SwappedBytes() const;
  /// Cache blocks swapped out by the OOM degradation ladder.
  uint64_t TotalPressureEvictions() const;
  /// Block-store tier plane summed across executors (per-tier residency,
  /// hit/miss counts, demote/promote transitions). Role-aware like the
  /// other getters.
  TierCounters TotalTierCounters() const;
  /// Native-allocator plane summed across executors (role-aware), with
  /// the process-wide arena chunk counters overlaid once. The alloc/free
  /// call and bytes-requested counters are deterministic (identical under
  /// DECA_ARENA=0 and 1); the slab/steal/chunk fields are
  /// environment-dependent and informational only.
  alloc::AllocStats TotalAllocStats() const;
  /// Allocations rescued by eviction-under-pressure + full GC + retry.
  uint64_t TotalOomRecoveries() const;
  /// Unified memory-manager plane, summed across executors (peaks are
  /// per-executor high-water marks).
  uint64_t TotalExecPoolPeakBytes() const;
  uint64_t TotalStoragePoolPeakBytes() const;
  uint64_t TotalBorrowedBytes() const;
  uint64_t TotalDeniedReservations() const;
  /// One memory-manager snapshot per executor, in executor-id order.
  std::vector<memory::MemoryStats> ExecutorMemorySnapshots() const;

  /// Shuffle payload bytes for `shuffle_id`. Role-aware: the driver sums
  /// the per-daemon values from the latest stage-ack snapshots (its own
  /// shuffle service is a lockstep stub holding no data).
  uint64_t ShuffleTotalBytes(int shuffle_id) const;

  DistRole role() const { return config_.runtime.role; }
  /// Control-plane counters (driver role; zeros otherwise).
  ClusterCounters cluster_counters() const;

 private:
  /// A stage whose effects can be deterministically replayed after an
  /// executor wipe: a cached-RDD load (shuffle_id < 0) or a shuffle map
  /// stage. `lost` holds partitions whose output the wipe destroyed.
  struct ReplayStage {
    std::string name;
    int token = -1;
    int shuffle_id = -1;
    std::function<void(TaskContext&)> fn;
    std::set<int> lost;
  };

  /// One task with bounded retries; reports metrics on success.
  void RunTaskAttempts(int stage, int partition, int num_partitions,
                       const std::function<void(TaskContext&)>& task,
                       double queue_ms);
  /// `collect`, when set, replaces `task` as the stage body and its blob
  /// lands in (*results)[partition].
  void RunStageInternal(const std::string& name,
                        const std::function<void(TaskContext&)>& task,
                        const CollectFn* collect,
                        std::vector<std::vector<uint8_t>>* results);
  /// Driver role: one partition's bounded remote-attempt loop. Remote
  /// outcomes map back to the exact in-process exception types; a dead
  /// daemon surfaces as fault::ExecutorLostError (stage quarantine).
  void RunRemoteAttempts(int stage, int partition, bool collect,
                         double queue_ms,
                         std::vector<std::vector<uint8_t>>* results);
  /// Worker role: serve the driver's envelopes for this stage until
  /// StageDone, then return its broadcast collect blobs.
  std::vector<std::vector<uint8_t>> ServeStage(
      int stage, const std::function<void(TaskContext&)>& task,
      const CollectFn* collect);
  /// Worker role: execute one envelope (task attempt or lineage replay).
  exec::RemoteTaskOutcome ExecuteRemoteAttempt(
      int stage, const exec::RemoteTaskEnvelope& env,
      const std::function<void(TaskContext&)>& task, const CollectFn* collect);
  /// Driver role: the in-process wipe bookkeeping for an executor whose
  /// daemon died (lineage lost-sets, wipe counter). The data itself died
  /// with the process.
  void MarkExecutorLost(int e);
  /// Worker role: this executor's observability snapshot for a stage ack.
  ExecutorSnapshot BuildLocalSnapshot() const;
  /// Replays lineage/map stages for partitions lost to a wipe. `stage` is
  /// the id of the upcoming stage; replay trace windows are attributed to
  /// it with attempt = -1. Driver role replays over RPC.
  void RecoverLostState(int stage);

  SparkConfig config_;
  jvm::ClassRegistry registry_;
  std::vector<std::unique_ptr<Executor>> executors_;
  exec::TaskScheduler scheduler_;
  obs::Tracer tracer_;
  exec::MetricsSink sink_;
  // The wire plane (network transports only; null under kLocal). Declared
  // before shuffle_ so the service is destroyed before its transport.
  std::unique_ptr<net::NetStats> net_stats_;
  std::unique_ptr<net::Transport> transport_;
  std::unique_ptr<ShuffleService> shuffle_;
  JobMetrics metrics_;
  fault::FaultInjector injector_;
  int next_stage_id_ = 0;
  int next_lineage_token_ = 0;
  std::atomic<uint64_t> task_retries_{0};
  std::atomic<uint64_t> recomputed_blocks_{0};
  /// Driver role: injected faults reported by daemons (their identically
  /// seeded injectors make the decisions; the driver only counts).
  std::atomic<uint64_t> remote_fired_{0};
  /// Driver role: each executor's latest stage-ack snapshot; the Total*
  /// getters read these instead of the (idle) local executors.
  std::vector<ExecutorSnapshot> snapshots_;
  std::vector<WipeListener*> wipe_listeners_;
  std::vector<ReplayStage> replay_stages_;
};

}  // namespace deca::spark

#endif  // DECA_SPARK_CONTEXT_H_
