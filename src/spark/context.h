#ifndef DECA_SPARK_CONTEXT_H_
#define DECA_SPARK_CONTEXT_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "exec/metrics_sink.h"
#include "exec/scheduler.h"
#include "jvm/class_registry.h"
#include "spark/executor.h"
#include "spark/metrics.h"
#include "spark/shuffle.h"

namespace deca::spark {

class SparkContext;

/// Per-task view handed to stage functions: the partition id, the owning
/// executor (heap, cache) and the task's metric sink.
class TaskContext {
 public:
  TaskContext(SparkContext* ctx, Executor* executor, int partition,
              int num_partitions)
      : ctx_(ctx),
        executor_(executor),
        partition_(partition),
        num_partitions_(num_partitions) {}

  int partition() const { return partition_; }
  int num_partitions() const { return num_partitions_; }
  Executor* executor() { return executor_; }
  jvm::Heap* heap() { return executor_->heap(); }
  CacheManager* cache() { return executor_->cache(); }
  SparkContext* context() { return ctx_; }
  TaskMetrics& metrics() { return metrics_; }

 private:
  SparkContext* ctx_;
  Executor* executor_;
  int partition_;
  int num_partitions_;
  TaskMetrics metrics_;
};

/// The driver: owns the executors (each with its own managed heap), the
/// task scheduler, the shuffle service and the job metrics. Stages
/// execute one task per partition, round-robin across executors. With
/// `num_worker_threads == 0` (default) tasks run sequentially on the
/// driver thread; otherwise the src/exec runtime runs each executor's
/// tasks on its own OS thread, with bit-identical results.
class SparkContext {
 public:
  explicit SparkContext(const SparkConfig& config);
  ~SparkContext();

  SparkContext(const SparkContext&) = delete;
  SparkContext& operator=(const SparkContext&) = delete;

  const SparkConfig& config() const { return config_; }
  jvm::ClassRegistry* registry() { return &registry_; }
  ShuffleService* shuffle() { return &shuffle_; }

  int num_partitions() const {
    return config_.num_executors * config_.partitions_per_executor;
  }
  int num_executors() const { return config_.num_executors; }
  Executor* executor(int i) { return executors_[static_cast<size_t>(i)].get(); }
  /// Partition placement is owned by the scheduler so the sequential and
  /// parallel paths cannot disagree about which heap a partition's
  /// objects live in.
  Executor* executor_for_partition(int p) {
    return executors_[static_cast<size_t>(scheduler_.ExecutorOfPartition(p))]
        .get();
  }
  exec::TaskScheduler* scheduler() { return &scheduler_; }

  /// Runs one stage: `task` is invoked once per partition. Task wall time
  /// and the GC pauses incurred during it are recorded in the job metrics.
  void RunStage(const std::string& name,
                const std::function<void(TaskContext&)>& task);

  /// Registers record ops for an RDD id on every executor's cache manager.
  void RegisterCachedRdd(int rdd_id, const RecordOps* ops);

  /// Drops an unpersisted RDD's blocks on all executors.
  void UnpersistRdd(int rdd_id);

  JobMetrics& metrics() { return metrics_; }
  /// Resets accumulated job metrics (e.g. after warmup).
  void ResetMetrics();

  /// Sum of GC pause time across executors so far.
  double TotalGcPauseMs() const;
  double TotalConcurrentGcMs() const;
  uint64_t TotalMinorGcs() const;
  uint64_t TotalFullGcs() const;
  /// Sum of current in-memory cached bytes across executors.
  uint64_t CachedMemoryBytes() const;
  uint64_t PeakCachedMemoryBytes() const;
  uint64_t SwappedBytes() const;

 private:
  SparkConfig config_;
  jvm::ClassRegistry registry_;
  std::vector<std::unique_ptr<Executor>> executors_;
  exec::TaskScheduler scheduler_;
  exec::MetricsSink sink_;
  ShuffleService shuffle_;
  JobMetrics metrics_;
};

}  // namespace deca::spark

#endif  // DECA_SPARK_CONTEXT_H_
