#ifndef DECA_SPARK_TYPED_RDD_H_
#define DECA_SPARK_TYPED_RDD_H_

#include <functional>
#include <memory>
#include <vector>

#include "common/logging.h"
#include "spark/context.h"

namespace deca::spark {

/// Marshals one C++ value type T to/from a managed record. Applications
/// define an adapter once per type; the typed dataset then keeps its data
/// in the executors' managed heaps (so it is subject to real GC) while
/// exposing plain C++ values to user lambdas.
template <typename T>
struct RecordAdapter {
  std::function<jvm::ObjRef(jvm::Heap*, const T&)> to_managed;
  std::function<T(jvm::Heap*, jvm::ObjRef)> from_managed;
};

/// A minimal typed dataset facade over the engine: the Spark verbs an
/// application needs to get started (parallelize / map / filter / reduce /
/// count / collect / cache). Data is partitioned across the context's
/// executors and materialized as managed Object[] blocks pinned by GC
/// roots; transformations run as stages with per-task metrics.
///
/// This is the "quickstart" API; the paper-fidelity workloads in
/// src/workloads drive the engine directly for precise control over
/// layouts and kernels.
template <typename T>
class TypedRdd {
 public:
  /// Distributes `values` round-robin over the context's partitions.
  static TypedRdd Parallelize(SparkContext* ctx, RecordAdapter<T> adapter,
                              const std::vector<T>& values) {
    TypedRdd rdd(ctx, std::move(adapter));
    int parts = ctx->num_partitions();
    auto sliced = std::make_shared<std::vector<std::vector<T>>>(
        static_cast<size_t>(parts));
    for (size_t i = 0; i < values.size(); ++i) {
      (*sliced)[i % static_cast<size_t>(parts)].push_back(values[i]);
    }
    ctx->RunStage("parallelize", [&](TaskContext& tc) {
      rdd.MaterializePartition(
          tc, (*sliced)[static_cast<size_t>(tc.partition())]);
    });
    // Lineage: the source data itself. Raw State* avoids a shared_ptr
    // cycle (the closure lives exactly as long as the state it rebuilds).
    rdd.state_->recompute = [state = rdd.state_.get(),
                             adapter = rdd.adapter_,
                             sliced](TaskContext& tc) {
      MaterializeInto(state, adapter, tc,
                      (*sliced)[static_cast<size_t>(tc.partition())]);
    };
    return rdd;
  }

  /// Element-wise transformation into a new dataset.
  template <typename U>
  TypedRdd<U> Map(RecordAdapter<U> out_adapter,
                  const std::function<U(const T&)>& fn) const {
    TypedRdd<U> out(ctx_, std::move(out_adapter));
    ctx_->RunStage("map", [&](TaskContext& tc) {
      std::vector<U> result;
      VisitPartition(tc, [&](const T& value) { result.push_back(fn(value)); });
      out.MaterializePartition(tc, result);
    });
    // Lineage: re-read the parent partition (recursively recomputed if it
    // was lost too) and re-apply the transformation.
    out.state_->recompute = [parent = *this, state = out.state_.get(),
                             adapter = out.adapter_, fn](TaskContext& tc) {
      std::vector<U> result;
      parent.VisitPartition(
          tc, [&](const T& value) { result.push_back(fn(value)); });
      TypedRdd<U>::MaterializeInto(state, adapter, tc, result);
    };
    return out;
  }

  /// Same-type convenience overload reusing this dataset's adapter.
  TypedRdd Map(const std::function<T(const T&)>& fn) const {
    return Map<T>(adapter_, fn);
  }

  /// Keeps only values satisfying the predicate.
  TypedRdd Filter(const std::function<bool(const T&)>& pred) const {
    TypedRdd out(ctx_, adapter_);
    ctx_->RunStage("filter", [&](TaskContext& tc) {
      std::vector<T> result;
      VisitPartition(tc, [&](const T& value) {
        if (pred(value)) result.push_back(value);
      });
      out.MaterializePartition(tc, result);
    });
    out.state_->recompute = [parent = *this, state = out.state_.get(),
                             adapter = out.adapter_, pred](TaskContext& tc) {
      std::vector<T> result;
      parent.VisitPartition(tc, [&](const T& value) {
        if (pred(value)) result.push_back(value);
      });
      MaterializeInto(state, adapter, tc, result);
    };
    return out;
  }

  /// Folds all values with an associative function; `identity` seeds each
  /// partition (driver-side final combine, like Spark's reduce action).
  /// Tasks write disjoint per-partition slots; the driver folds them in
  /// partition order after the stage barrier, so the result — including
  /// floating-point rounding — is identical in parallel mode.
  T Reduce(const T& identity,
           const std::function<T(const T&, const T&)>& fn) const {
    std::vector<T> partials(static_cast<size_t>(ctx_->num_partitions()),
                            identity);
    ctx_->RunStage("reduce", [&](TaskContext& tc) {
      T partial = identity;
      VisitPartition(tc, [&](const T& value) { partial = fn(partial, value); });
      partials[static_cast<size_t>(tc.partition())] = partial;
    });
    T total = identity;
    for (const T& p : partials) total = fn(total, p);
    return total;
  }

  uint64_t Count() const {
    std::vector<uint64_t> partials(
        static_cast<size_t>(ctx_->num_partitions()), 0);
    ctx_->RunStage("count", [&](TaskContext& tc) {
      partials[static_cast<size_t>(tc.partition())] =
          state_->counts[static_cast<size_t>(tc.partition())];
    });
    uint64_t n = 0;
    for (uint64_t c : partials) n += c;
    return n;
  }

  /// Gathers every value to the driver (partition order).
  std::vector<T> Collect() const {
    std::vector<std::vector<T>> parts(
        static_cast<size_t>(ctx_->num_partitions()));
    ctx_->RunStage("collect", [&](TaskContext& tc) {
      auto& out = parts[static_cast<size_t>(tc.partition())];
      VisitPartition(tc, [&](const T& value) { out.push_back(value); });
    });
    std::vector<T> all;
    for (auto& p : parts) {
      all.insert(all.end(), std::make_move_iterator(p.begin()),
                 std::make_move_iterator(p.end()));
    }
    return all;
  }

  uint64_t num_values() const {
    uint64_t n = 0;
    for (uint32_t c : state_->counts) n += c;
    return n;
  }

 private:
  template <typename U>
  friend class TypedRdd;

  /// Per-executor pinned blocks (one Object[] per partition). Listens for
  /// executor crash-wipes: the wiped executor's references are dropped
  /// (they point into a dead heap) and its partitions marked lost, to be
  /// rebuilt from the `recompute` lineage closure on next access.
  struct State : public WipeListener {
    explicit State(SparkContext* ctx) : context(ctx) {
      providers.resize(static_cast<size_t>(ctx->num_executors()));
      for (int e = 0; e < ctx->num_executors(); ++e) {
        providers[static_cast<size_t>(e)] =
            std::make_unique<jvm::VectorRootProvider>();
        ctx->executor(e)->heap()->AddRootProvider(
            providers[static_cast<size_t>(e)].get());
        slot_of_partition.assign(
            static_cast<size_t>(ctx->num_partitions()), SIZE_MAX);
      }
      counts.assign(static_cast<size_t>(ctx->num_partitions()), 0);
      ctx->AddWipeListener(this);
    }
    ~State() override {
      context->RemoveWipeListener(this);
      for (int e = 0; e < context->num_executors(); ++e) {
        context->executor(e)->heap()->RemoveRootProvider(
            providers[static_cast<size_t>(e)].get());
      }
    }
    void OnExecutorWipe(int executor_id) override {
      providers[static_cast<size_t>(executor_id)]->refs().clear();
      for (int p = 0; p < context->num_partitions(); ++p) {
        if (context->scheduler()->ExecutorOfPartition(p) == executor_id) {
          slot_of_partition[static_cast<size_t>(p)] = SIZE_MAX;
        }
      }
    }
    SparkContext* context;
    std::vector<std::unique_ptr<jvm::VectorRootProvider>> providers;
    std::vector<size_t> slot_of_partition;  // index into provider refs
    std::vector<uint32_t> counts;
    /// Lineage: rebuilds this state's block for tc.partition().
    std::function<void(TaskContext&)> recompute;
  };

  TypedRdd(SparkContext* ctx, RecordAdapter<T> adapter)
      : ctx_(ctx),
        adapter_(std::move(adapter)),
        state_(std::make_shared<State>(ctx)) {}

  // Tasks write only their own partition's slots (and their own
  // executor's provider), so concurrent materialization is race-free.
  // Static so lineage closures can capture a raw State* without keeping
  // the whole TypedRdd alive. Reuses the partition's existing provider
  // slot when re-materializing after a wipe.
  static void MaterializeInto(State* state, const RecordAdapter<T>& adapter,
                              TaskContext& tc, const std::vector<T>& values) {
    jvm::Heap* h = tc.heap();
    jvm::HandleScope scope(h);
    jvm::Handle arr = scope.Make(h->AllocateArray(
        h->registry()->ref_array_class(),
        static_cast<uint32_t>(values.size())));
    for (size_t i = 0; i < values.size(); ++i) {
      jvm::HandleScope inner(h);
      jvm::ObjRef rec = adapter.to_managed(h, values[i]);
      h->SetRefElem(arr.get(), static_cast<uint32_t>(i), rec);
    }
    auto& refs =
        state->providers[static_cast<size_t>(tc.executor()->id())]->refs();
    size_t& slot =
        state->slot_of_partition[static_cast<size_t>(tc.partition())];
    if (slot == SIZE_MAX) {
      slot = refs.size();
      refs.push_back(arr.get());
    } else {
      refs[slot] = arr.get();
    }
    state->counts[static_cast<size_t>(tc.partition())] =
        static_cast<uint32_t>(values.size());
  }

  void MaterializePartition(TaskContext& tc, const std::vector<T>& values) {
    MaterializeInto(state_.get(), adapter_, tc, values);
  }

  void VisitPartition(TaskContext& tc,
                      const std::function<void(const T&)>& fn) const {
    size_t slot =
        state_->slot_of_partition[static_cast<size_t>(tc.partition())];
    if (slot == SIZE_MAX && state_->recompute &&
        state_->counts[static_cast<size_t>(tc.partition())] > 0) {
      // Block lost to an executor wipe: rebuild it from lineage.
      state_->recompute(tc);
      tc.context()->NoteRecomputedBlock();
      slot = state_->slot_of_partition[static_cast<size_t>(tc.partition())];
    }
    uint32_t count = state_->counts[static_cast<size_t>(tc.partition())];
    if (slot == SIZE_MAX || count == 0) return;
    jvm::Heap* h = tc.heap();
    auto& refs =
        state_->providers[static_cast<size_t>(tc.executor()->id())]->refs();
    for (uint32_t i = 0; i < count; ++i) {
      // Re-resolve through the provider each iteration: from_managed may
      // allocate and trigger a moving collection.
      jvm::ObjRef arr = refs[slot];
      fn(adapter_.from_managed(h, h->GetRefElem(arr, i)));
    }
  }

  SparkContext* ctx_;
  RecordAdapter<T> adapter_;
  std::shared_ptr<State> state_;
};

/// Ready-made adapters for common primitive records.
RecordAdapter<int64_t> MakeBoxedLongAdapter();
RecordAdapter<double> MakeBoxedDoubleAdapter();

}  // namespace deca::spark

#endif  // DECA_SPARK_TYPED_RDD_H_
