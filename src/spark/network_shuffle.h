#ifndef DECA_SPARK_NETWORK_SHUFFLE_H_
#define DECA_SPARK_NETWORK_SHUFFLE_H_

#include <map>
#include <memory>
#include <mutex>
#include <utility>
#include <vector>

#include "fault/fault_injector.h"
#include "net/block_server.h"
#include "net/transport.h"
#include "net/wire.h"
#include "spark/shuffle.h"

namespace deca::spark {

/// ShuffleService over a src/net Transport: each executor runs a
/// BlockServer holding its map tasks' encoded output frames; reducers
/// locate frames with an index request per source executor, then pull
/// each frame in flow-controlled slices and decode it back to the exact
/// chunk bytes the map task deposited. Because decoded chunks are
/// byte-identical to LocalShuffleService's and arrive in the same
/// map-partition order, everything downstream (results, GC counts, fault
/// counters) is bit-identical to the local path.
///
/// Placement mirrors the scheduler: partition p's output lives on
/// executor p % num_executors, and reducer r fetches from executor
/// r % num_executors.
class NetworkShuffleService final : public ShuffleService,
                                    public fault::FetchFailurePath {
 public:
  using ShuffleService::PutChunk;

  /// `transport` and `stats` are borrowed and must outlive the service.
  /// Binds every transport endpoint to its executor's BlockServer. With
  /// `local_endpoint >= 0` (a worker daemon's mesh) only that endpoint's
  /// BlockServer exists and is bound — the other executors' servers live
  /// in their own daemons, reached through the transport.
  NetworkShuffleService(const SparkConfig& config, net::Transport* transport,
                        net::NetStats* stats, int local_endpoint = -1);

  int RegisterShuffle(int num_reducers) override;
  void PutChunk(int shuffle_id, int reducer, int map_partition,
                std::vector<uint8_t> bytes,
                const net::ChunkMeta& meta) override;
  void DropMapOutput(int shuffle_id, int map_partition) override;
  const std::vector<std::vector<uint8_t>>& GetChunks(int shuffle_id,
                                                     int reducer) const
      override;
  int num_reducers(int shuffle_id) const override;
  /// With a local endpoint this is the LOCAL payload only; the driver
  /// sums the per-daemon values it receives in stage-ack snapshots.
  uint64_t total_bytes(int shuffle_id) const override;
  int num_shuffles() const override;
  void Release(int shuffle_id) override;

  /// fault::FetchFailurePath: sends the doomed probe of an injected fetch
  /// failure to a remote peer, burns the configured retries with virtual
  /// exponential backoff, then throws ShuffleFetchFailure. Heap-free, so
  /// retried attempts replay bit-identically.
  void FailFetch(int stage, int partition, int attempt) override;

  /// The codec frames are encoded with (resolved from the config).
  net::WireCodec codec() const { return codec_; }

 private:
  int ExecutorOf(int partition) const {
    return partition % num_executors_;
  }
  /// Fetches and decodes all of `reducer`'s chunks, ordered by map
  /// partition. Called with cache_mu_ NOT held.
  std::vector<std::vector<uint8_t>> FetchAll(int shuffle_id,
                                             int reducer) const;
  void InvalidateCache(int shuffle_id);

  int num_executors_;
  net::WireCodec codec_;
  uint32_t fetch_chunk_bytes_;
  uint32_t max_inflight_bytes_;
  int fetch_retries_;
  net::Transport* transport_;
  net::NetStats* stats_;
  std::vector<std::unique_ptr<net::BlockServer>> servers_;

  mutable std::mutex mu_;  // guards shuffle registry
  std::vector<int> reducers_per_shuffle_;

  // Reduce-side fetch results, keyed by (shuffle, reducer). unique_ptr
  // values keep GetChunks' returned references stable across rehashing;
  // entries are invalidated on PutChunk/DropMapOutput/Release.
  mutable std::mutex cache_mu_;
  mutable std::map<std::pair<int, int>,
                   std::unique_ptr<std::vector<std::vector<uint8_t>>>>
      fetched_;
};

}  // namespace deca::spark

#endif  // DECA_SPARK_NETWORK_SHUFFLE_H_
