#ifndef DECA_SPARK_RECORD_OPS_H_
#define DECA_SPARK_RECORD_OPS_H_

#include <cstdint>
#include <functional>

#include "common/bytes.h"
#include "jvm/heap.h"

namespace deca::spark {

/// Type-erased operations the engine needs over one record type. In Spark
/// these come from the JVM type system and Kryo registrations; in Deca
/// from the optimizer's generated SUDT code. Workloads register both
/// flavours; the planner's verdict decides which path runs.
struct RecordOps {
  /// Estimated managed-heap footprint of one record's object graph
  /// (headers included), for cache accounting.
  std::function<uint64_t(jvm::Heap*, jvm::ObjRef)> managed_bytes;

  /// Kryo-style compact binary serialization of one managed record.
  std::function<void(jvm::Heap*, jvm::ObjRef, ByteWriter*)> serialize;
  /// Rebuilds the managed object graph from serialized form.
  std::function<jvm::ObjRef(jvm::Heap*, ByteReader*)> deserialize;

  /// Size of the record's decomposed byte segment (SUDT data-size; only
  /// set for decomposable record types).
  std::function<uint32_t(jvm::Heap*, jvm::ObjRef)> deca_bytes;
  /// Writes the decomposed byte segment (discarding headers/references).
  std::function<void(jvm::Heap*, jvm::ObjRef, uint8_t*)> decompose;
  /// Re-creates the object graph from a decomposed segment (used when a
  /// later phase cannot run on bytes and Deca re-constructs, Section
  /// 4.3.2).
  std::function<jvm::ObjRef(jvm::Heap*, const uint8_t*)> reconstruct;

  bool decomposable() const { return static_cast<bool>(decompose); }
};

/// Sequential lazy deserializer over a packed (Kryo) record run — the
/// byte payload of a T1/T2 block served without promotion
/// (LoadedBlock::packed). A point query deserializes only the records up
/// to its target index instead of materializing the whole block's
/// Object[]; the records it does build are ordinary short-lived young
/// objects.
class RecordCursor {
 public:
  RecordCursor(const RecordOps* ops, jvm::Heap* heap, const uint8_t* data,
               size_t size, uint32_t count)
      : ops_(ops), heap_(heap), reader_(data, size), count_(count) {}

  /// Deserializes the next record; kNullRef once `count` records have
  /// been read. The caller roots the returned object if it allocates
  /// before consuming it.
  jvm::ObjRef Next() {
    if (index_ >= count_) return jvm::kNullRef;
    ++index_;
    return ops_->deserialize(heap_, &reader_);
  }

  /// Records returned so far.
  uint32_t index() const { return index_; }
  uint32_t count() const { return count_; }
  bool done() const { return index_ >= count_; }

 private:
  const RecordOps* ops_;
  jvm::Heap* heap_;
  ByteReader reader_;
  uint32_t count_;
  uint32_t index_ = 0;
};

/// Operations for shuffle key/value handling (hash-based buffers with
/// eager combining, paper Section 4.2).
struct ShuffleOps {
  // -- object (Spark) mode -------------------------------------------------
  std::function<uint64_t(jvm::Heap*, jvm::ObjRef)> key_hash;
  std::function<bool(jvm::Heap*, jvm::ObjRef, jvm::ObjRef)> key_equals;
  /// Eager combiner: merges `value` into `agg` and returns the new
  /// aggregate object. Like Spark's aggregator it may allocate a fresh
  /// object per merge (the temporary-object churn the paper measures).
  std::function<jvm::ObjRef(jvm::Heap*, jvm::ObjRef agg, jvm::ObjRef value)>
      combine;
  /// Estimated managed bytes of one (key, value) entry, for spill checks.
  std::function<uint64_t(jvm::Heap*, jvm::ObjRef, jvm::ObjRef)> entry_bytes;
  std::function<void(jvm::Heap*, jvm::ObjRef, ByteWriter*)> serialize_key;
  std::function<void(jvm::Heap*, jvm::ObjRef, ByteWriter*)> serialize_value;
  std::function<jvm::ObjRef(jvm::Heap*, ByteReader*)> deserialize_key;
  std::function<jvm::ObjRef(jvm::Heap*, ByteReader*)> deserialize_value;

  // -- decomposed (Deca) mode ----------------------------------------------
  /// Fixed decomposed sizes (SFST keys/values; 0 disables the Deca path).
  uint32_t deca_key_bytes = 0;
  uint32_t deca_value_bytes = 0;
  std::function<uint64_t(const uint8_t*)> deca_key_hash;
  /// In-place merge of a decomposed value into the aggregate segment —
  /// this is the paper's reuse of the old value's page segment, avoiding
  /// per-merge allocation entirely.
  std::function<void(uint8_t* agg, const uint8_t* value)> deca_combine;
};

}  // namespace deca::spark

#endif  // DECA_SPARK_RECORD_OPS_H_
