#ifndef DECA_SPARK_EXECUTOR_H_
#define DECA_SPARK_EXECUTOR_H_

#include <memory>

#include "jvm/class_registry.h"
#include "jvm/heap.h"
#include "spark/block_store.h"
#include "spark/config.h"

namespace deca::spark {

/// One simulated executor: a managed heap plus its cache manager. Tasks
/// assigned to this executor allocate from its heap; GC pauses incurred
/// while a task runs are attributed to that task.
class Executor {
 public:
  Executor(int id, const SparkConfig& config, jvm::ClassRegistry* registry);

  int id() const { return id_; }
  jvm::Heap* heap() { return heap_.get(); }
  CacheManager* cache() { return cache_.get(); }

  /// Simulated executor crash: drops all cached blocks and resets the
  /// heap to its freshly-constructed state (registered root providers are
  /// kept). Must run on the thread that owns the heap.
  void Wipe();

 private:
  int id_;
  std::unique_ptr<jvm::Heap> heap_;
  std::unique_ptr<CacheManager> cache_;
};

}  // namespace deca::spark

#endif  // DECA_SPARK_EXECUTOR_H_
