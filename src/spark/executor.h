#ifndef DECA_SPARK_EXECUTOR_H_
#define DECA_SPARK_EXECUTOR_H_

#include <memory>

#include "alloc/page_allocator.h"
#include "jvm/class_registry.h"
#include "jvm/heap.h"
#include "memory/memory_manager.h"
#include "spark/block_store.h"
#include "spark/config.h"

namespace deca::spark {

/// One simulated executor: a unified memory manager, a managed heap and a
/// cache manager, all charging the same per-executor byte budget. Tasks
/// assigned to this executor allocate from its heap; GC pauses incurred
/// while a task runs are attributed to that task.
class Executor {
 public:
  Executor(int id, const SparkConfig& config, jvm::ClassRegistry* registry);

  int id() const { return id_; }
  jvm::Heap* heap() { return heap_.get(); }
  const jvm::Heap* heap() const { return heap_.get(); }
  CacheManager* cache() { return cache_.get(); }
  const CacheManager* cache() const { return cache_.get(); }
  memory::ExecutorMemoryManager* memory() { return memory_.get(); }
  const memory::ExecutorMemoryManager* memory() const {
    return memory_.get();
  }
  alloc::PageAllocator* page_allocator() { return alloc_.get(); }
  const alloc::PageAllocator* page_allocator() const { return alloc_.get(); }

  /// Simulated executor crash: drops all cached blocks and resets the
  /// heap to its freshly-constructed state (registered root providers are
  /// kept). Must run on the thread that owns the heap.
  void Wipe();

  /// Accounting identity check (stage barriers, tests): syncs the heap's
  /// occupancy report, then asserts the manager's view matches the live
  /// heap capacity and the summed footprint of every live page group.
  void VerifyMemoryAccounting();

 private:
  int id_;
  std::unique_ptr<memory::ExecutorMemoryManager> memory_;
  // Declared before the heap/cache so every arena-backed buffer (heap
  // backing, T1 payloads, spill scratch) is freed before its allocator.
  std::unique_ptr<alloc::PageAllocator> alloc_;
  std::unique_ptr<jvm::Heap> heap_;
  std::unique_ptr<CacheManager> cache_;
};

}  // namespace deca::spark

#endif  // DECA_SPARK_EXECUTOR_H_
