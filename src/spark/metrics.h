#ifndef DECA_SPARK_METRICS_H_
#define DECA_SPARK_METRICS_H_

#include <cstdint>
#include <string>
#include <vector>

namespace deca::spark {

/// Wall-clock breakdown of one task (paper Figure 11's categories, plus
/// scheduler delay once tasks can wait in an executor queue).
struct TaskMetrics {
  double total_ms = 0;         // from task start; excludes queue_ms
  double queue_ms = 0;         // scheduler delay: submit -> task start
  double gc_ms = 0;            // stop-the-world GC pauses during the task
  double shuffle_read_ms = 0;
  double shuffle_write_ms = 0;
  double ser_ms = 0;           // serialization (cache + shuffle write)
  double deser_ms = 0;         // deserialization (cache + shuffle read)
  double spill_ms = 0;         // cache swap + shuffle spill disk I/O

  // Unified memory-manager plane, sampled from the task's executor when
  // the task finishes. Peaks are high-water marks (folded with max);
  // denied_reservations is the task's own delta (folded with +).
  uint64_t exec_pool_peak_bytes = 0;
  uint64_t storage_pool_peak_bytes = 0;
  uint64_t borrowed_bytes = 0;         // peak bytes across the pool split
  uint64_t denied_reservations = 0;

  double compute_ms() const {
    double other = gc_ms + shuffle_read_ms + shuffle_write_ms + ser_ms +
                   deser_ms + spill_ms;
    return total_ms > other ? total_ms - other : 0.0;
  }

  void Accumulate(const TaskMetrics& t) {
    total_ms += t.total_ms;
    queue_ms += t.queue_ms;
    gc_ms += t.gc_ms;
    shuffle_read_ms += t.shuffle_read_ms;
    shuffle_write_ms += t.shuffle_write_ms;
    ser_ms += t.ser_ms;
    deser_ms += t.deser_ms;
    spill_ms += t.spill_ms;
    if (t.exec_pool_peak_bytes > exec_pool_peak_bytes) {
      exec_pool_peak_bytes = t.exec_pool_peak_bytes;
    }
    if (t.storage_pool_peak_bytes > storage_pool_peak_bytes) {
      storage_pool_peak_bytes = t.storage_pool_peak_bytes;
    }
    if (t.borrowed_bytes > borrowed_bytes) borrowed_bytes = t.borrowed_bytes;
    denied_reservations += t.denied_reservations;
  }
};

/// Tier-plane counters of one block store (or summed across a job): per
/// tier resident bytes and hits, tier-transition counts, and the lazy
/// promotion latency percentiles. The byte/hit/transition counters are
/// deterministic simulation results; the percentiles are wall times.
struct TierCounters {
  uint64_t t0_resident_bytes = 0;  // heap blocks (objects/byte[]/pages)
  uint64_t t1_resident_bytes = 0;  // serialized off-heap buffers
  uint64_t t2_resident_bytes = 0;  // swap-file payload bytes
  uint64_t t1_peak_bytes = 0;
  uint64_t t0_hits = 0;
  uint64_t t1_hits = 0;
  uint64_t t2_hits = 0;
  uint64_t misses = 0;
  uint64_t demotes_to_t1 = 0;  // T0 -> T1 compactions
  uint64_t demotes_to_t2 = 0;  // spills to disk (from T0 or T1)
  uint64_t promotes = 0;       // re-admissions (T1 -> T0, T2 -> T1)
  uint64_t admit_rejects = 0;  // lazy serves the admission policy denied
  double promote_p50_ms = 0;
  double promote_p99_ms = 0;

  /// Accumulates `o` (counters sum; latency percentiles take the max —
  /// they do not compose across executors).
  void Add(const TierCounters& o) {
    t0_resident_bytes += o.t0_resident_bytes;
    t1_resident_bytes += o.t1_resident_bytes;
    t2_resident_bytes += o.t2_resident_bytes;
    t1_peak_bytes += o.t1_peak_bytes;
    t0_hits += o.t0_hits;
    t1_hits += o.t1_hits;
    t2_hits += o.t2_hits;
    misses += o.misses;
    demotes_to_t1 += o.demotes_to_t1;
    demotes_to_t2 += o.demotes_to_t2;
    promotes += o.promotes;
    admit_rejects += o.admit_rejects;
    if (o.promote_p50_ms > promote_p50_ms) promote_p50_ms = o.promote_p50_ms;
    if (o.promote_p99_ms > promote_p99_ms) promote_p99_ms = o.promote_p99_ms;
  }
};

/// Aggregated metrics for a stage or a whole job.
struct JobMetrics {
  double wall_ms = 0;           // end-to-end driver wall clock
  TaskMetrics tasks;            // sum over all tasks
  TaskMetrics slowest_task;     // task with the largest total_ms
  uint64_t minor_gcs = 0;
  uint64_t full_gcs = 0;
  double concurrent_gc_ms = 0;
  uint64_t cached_bytes = 0;    // peak cached data across executors
  uint64_t spilled_bytes = 0;

  // Unified memory-manager plane, summed across executors at each stage
  // barrier (peaks are per-executor high-water marks).
  uint64_t exec_pool_peak_bytes = 0;
  uint64_t storage_pool_peak_bytes = 0;
  uint64_t borrowed_bytes = 0;
  uint64_t denied_reservations = 0;

  // Fault-tolerance counters. All stay zero when injection is disabled
  // and no real fault occurs.
  uint64_t task_retries = 0;      // task attempts beyond the first
  uint64_t injected_faults = 0;   // faults fired by the injector
  uint64_t executor_wipes = 0;    // simulated executor crash-wipes
  uint64_t recomputed_blocks = 0; // cached blocks rebuilt from lineage

  void ObserveTask(const TaskMetrics& t) {
    tasks.Accumulate(t);
    if (t.total_ms > slowest_task.total_ms) slowest_task = t;
  }
};

}  // namespace deca::spark

#endif  // DECA_SPARK_METRICS_H_
