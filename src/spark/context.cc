#include "spark/context.h"

#include "common/clock.h"
#include "common/logging.h"

namespace deca::spark {

SparkContext::SparkContext(const SparkConfig& config) : config_(config) {
  DECA_CHECK_GT(config.num_executors, 0);
  for (int i = 0; i < config.num_executors; ++i) {
    executors_.push_back(std::make_unique<Executor>(i, config_, &registry_));
  }
}

SparkContext::~SparkContext() = default;

void SparkContext::RunStage(const std::string& name,
                            const std::function<void(TaskContext&)>& task) {
  (void)name;
  Stopwatch stage_sw;
  for (int p = 0; p < num_partitions(); ++p) {
    Executor* e = executor_for_partition(p);
    TaskContext tc(this, e, p, num_partitions());
    double gc0 = e->heap()->stats().TotalPauseMs();
    Stopwatch sw;
    task(tc);
    tc.metrics().total_ms = sw.ElapsedMillis();
    tc.metrics().gc_ms = e->heap()->stats().TotalPauseMs() - gc0;
    metrics_.ObserveTask(tc.metrics());
  }
  metrics_.wall_ms += stage_sw.ElapsedMillis();
}

void SparkContext::RegisterCachedRdd(int rdd_id, const RecordOps* ops) {
  for (auto& e : executors_) e->cache()->RegisterOps(rdd_id, ops);
}

void SparkContext::UnpersistRdd(int rdd_id) {
  for (auto& e : executors_) {
    for (int p = 0; p < num_partitions(); ++p) {
      e->cache()->Evict({rdd_id, p});
    }
  }
}

void SparkContext::ResetMetrics() { metrics_ = JobMetrics(); }

double SparkContext::TotalGcPauseMs() const {
  double total = 0;
  for (const auto& e : executors_) {
    total += const_cast<Executor&>(*e).heap()->stats().TotalPauseMs();
  }
  return total;
}

double SparkContext::TotalConcurrentGcMs() const {
  double total = 0;
  for (const auto& e : executors_) {
    total += const_cast<Executor&>(*e).heap()->stats().concurrent_ms;
  }
  return total;
}

uint64_t SparkContext::TotalMinorGcs() const {
  uint64_t total = 0;
  for (const auto& e : executors_) {
    total += const_cast<Executor&>(*e).heap()->stats().minor_count;
  }
  return total;
}

uint64_t SparkContext::TotalFullGcs() const {
  uint64_t total = 0;
  for (const auto& e : executors_) {
    total += const_cast<Executor&>(*e).heap()->stats().full_count;
  }
  return total;
}

uint64_t SparkContext::CachedMemoryBytes() const {
  uint64_t total = 0;
  for (const auto& e : executors_) {
    total += const_cast<Executor&>(*e).cache()->memory_bytes();
  }
  return total;
}

uint64_t SparkContext::PeakCachedMemoryBytes() const {
  uint64_t total = 0;
  for (const auto& e : executors_) {
    total += const_cast<Executor&>(*e).cache()->peak_memory_bytes();
  }
  return total;
}

uint64_t SparkContext::SwappedBytes() const {
  uint64_t total = 0;
  for (const auto& e : executors_) {
    total += const_cast<Executor&>(*e).cache()->disk_bytes();
  }
  return total;
}

}  // namespace deca::spark
