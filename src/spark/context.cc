#include "spark/context.h"

#include <unistd.h>

#include <algorithm>
#include <filesystem>
#include <thread>

#include "common/clock.h"
#include "common/logging.h"
#include "net/loopback_transport.h"
#include "net/tcp_transport.h"
#include "spark/network_shuffle.h"

namespace deca::spark {

namespace {

/// Returns each executor heap to the driver thread at scope exit — also
/// on the exception path, so a failing stage leaves ownership sane.
class ScopedHeapOwnership {
 public:
  ScopedHeapOwnership(std::vector<std::unique_ptr<Executor>>* executors,
                      exec::TaskScheduler* scheduler)
      : executors_(executors), active_(scheduler->parallel()) {
    if (!active_) return;
    for (size_t e = 0; e < executors_->size(); ++e) {
      (*executors_)[e]->heap()->SetMutatorThread(
          scheduler->MutatorThreadId(static_cast<int>(e)));
    }
  }
  ~ScopedHeapOwnership() {
    if (!active_) return;
    for (auto& e : *executors_) {
      e->heap()->SetMutatorThread(std::this_thread::get_id());
    }
  }

 private:
  std::vector<std::unique_ptr<Executor>>* executors_;
  bool active_;
};

}  // namespace

namespace {
/// Distinguishes concurrent contexts within one process in spill paths.
std::atomic<uint64_t> g_next_context_id{0};
}  // namespace

SparkContext::SparkContext(const SparkConfig& config)
    : config_(config),
      scheduler_(config.num_executors, config.num_worker_threads),
      tracer_(config.num_executors,
              config.trace_enabled ? config.trace_ring_capacity : 0),
      injector_(config.fault, config.max_task_failures) {
  DECA_CHECK_GT(config.num_executors, 0);
  // Unique per-context spill directory so concurrent applications (or
  // tests) sharing a configured spill_dir never collide on swap files.
  config_.spill_dir += "/ctx_" + std::to_string(::getpid()) + "_" +
                       std::to_string(g_next_context_id.fetch_add(1));
  for (int i = 0; i < config.num_executors; ++i) {
    executors_.push_back(std::make_unique<Executor>(i, config_, &registry_));
  }
  if (config_.shuffle_transport == ShuffleTransport::kLocal) {
    shuffle_ = std::make_unique<LocalShuffleService>();
  } else {
    net_stats_ = std::make_unique<net::NetStats>();
    if (config_.shuffle_transport == ShuffleTransport::kLoopback) {
      net::LoopbackOptions opts;
      opts.latency_us = config_.net_latency_us;
      opts.bandwidth_mbps = config_.net_bandwidth_mbps;
      transport_ = std::make_unique<net::LoopbackTransport>(
          config_.num_executors, opts, net_stats_.get());
    } else {
      transport_ = std::make_unique<net::TcpTransport>(config_.num_executors,
                                                       net_stats_.get());
    }
    auto service = std::make_unique<NetworkShuffleService>(
        config_, transport_.get(), net_stats_.get());
    // Injected fetch failures now travel the wire (doomed probe +
    // retries) before surfacing — same decision, same exception.
    injector_.set_fetch_failure_path(service.get());
    shuffle_ = std::move(service);
  }
}

SparkContext::~SparkContext() {
  // Cache managers delete their swap files first, then the (now empty)
  // per-context directory goes away. Best-effort: shuffle spill files of
  // crashed tasks may linger inside, remove_all sweeps those too.
  executors_.clear();
  std::error_code ec;
  std::filesystem::remove_all(config_.spill_dir, ec);
}

void SparkContext::RunTaskAttempts(
    int stage, int p, int nparts,
    const std::function<void(TaskContext&)>& task, double queue_ms) {
  Executor* e = executor_for_partition(p);
  obs::TraceRecorder* rec = tracer_.executor(e->id());
  const int max_attempts = std::max(1, config_.max_task_failures);
  for (int attempt = 0;; ++attempt) {
    // Each attempt is one trace window: exactly this thread writes
    // (stage, p, attempt) events, in sequential and parallel runs alike.
    if (rec != nullptr) rec->BeginWindow(stage, p, attempt);
    obs::ScopedRecorder trace_scope(rec);
    obs::ScopedSpan task_span(obs::Cat::kTask, "task");
    task_span.set_time_arg(queue_ms);
    TaskContext tc(this, e, p, nparts);
    tc.metrics().queue_ms = queue_ms;
    double gc0 = e->heap()->stats().TotalPauseMs();
    uint64_t denied0 = e->memory()->denied_reservations();
    uint64_t gcs0 =
        e->heap()->stats().minor_count + e->heap()->stats().full_count;
    Stopwatch sw;
    try {
      injector_.OnTaskAttempt(stage, p, attempt, e->heap());
      task(tc);
      // A forced allocation failure armed for this attempt must never
      // leak into a later task (the attempt may not have allocated).
      e->heap()->ForceAllocationFailures(0);
    } catch (const fault::TaskFailure& f) {
      e->heap()->ForceAllocationFailures(0);
      if (attempt + 1 >= max_attempts) throw;
      DECA_LOG(Warning) << "retrying task: " << f.what();
      task_retries_.fetch_add(1, std::memory_order_relaxed);
      obs::Instant(obs::Cat::kTask, "retry", attempt);
      continue;
    } catch (const jvm::OutOfMemoryError& oom) {
      e->heap()->ForceAllocationFailures(0);
      if (attempt + 1 >= max_attempts) {
        throw fault::TaskOomFailure(stage, p, attempt, oom.heap_dump());
      }
      DECA_LOG(Warning) << "retrying task after OOM (stage " << stage
                        << ", partition " << p << ", attempt " << attempt
                        << "): " << oom.what();
      task_retries_.fetch_add(1, std::memory_order_relaxed);
      obs::Instant(obs::Cat::kTask, "retry", attempt);
      continue;
    }
    tc.metrics().total_ms = sw.ElapsedMillis();
    tc.metrics().gc_ms = e->heap()->stats().TotalPauseMs() - gc0;
    // Pool peaks are the executor's high-water marks as of task end (the
    // stage fold takes the max); denials are this task's own delta.
    const memory::ExecutorMemoryManager* mm = e->memory();
    tc.metrics().exec_pool_peak_bytes = mm->exec_peak();
    tc.metrics().storage_pool_peak_bytes = mm->storage_peak();
    tc.metrics().borrowed_bytes = mm->borrowed_peak();
    tc.metrics().denied_reservations = mm->denied_reservations() - denied0;
    task_span.set_args(
        static_cast<double>(e->heap()->stats().minor_count +
                            e->heap()->stats().full_count - gcs0),
        static_cast<double>(tc.metrics().denied_reservations));
    sink_.Report(p, tc.metrics());
    return;
  }
}

void SparkContext::RunStageInternal(
    const std::string& name, const std::function<void(TaskContext&)>& task) {
  const int stage = next_stage_id_++;
  // Driver trace window for this stage: dispatch instants, wipe/recovery
  // bookkeeping and the stage span all land on the driver lane.
  obs::TraceRecorder* drec = tracer_.driver();
  if (drec != nullptr) drec->BeginWindow(stage, -1, -1);
  obs::ScopedRecorder driver_scope(drec);
  {
    obs::ScopedSpan stage_span(obs::Cat::kStage, name.c_str(),
                               num_partitions(), num_executors());
    int wipe = injector_.CrashWipeBefore(stage);
    if (wipe >= 0 && wipe < num_executors()) WipeExecutor(wipe);
    RecoverLostState(stage);
    Stopwatch stage_sw;
    const int nparts = num_partitions();
    sink_.BeginStage(nparts);
    {
      ScopedHeapOwnership ownership(&executors_, &scheduler_);
      scheduler_.RunStage(
          nparts,
          [&](int p, double queue_ms) {
            RunTaskAttempts(stage, p, nparts, task, queue_ms);
          },
          name.c_str());
    }
    // Post-barrier: fold task metrics in partition order (deterministic
    // regardless of completion order).
    sink_.EndStage(&metrics_);
    metrics_.wall_ms += stage_sw.ElapsedMillis();
    metrics_.task_retries += task_retries_.exchange(0);
    metrics_.injected_faults += injector_.TakeFired();
    metrics_.recomputed_blocks += recomputed_blocks_.exchange(0);
    metrics_.exec_pool_peak_bytes = TotalExecPoolPeakBytes();
    metrics_.storage_pool_peak_bytes = TotalStoragePoolPeakBytes();
    metrics_.borrowed_bytes = TotalBorrowedBytes();
    metrics_.denied_reservations = TotalDeniedReservations();
    // Every byte must be charged to exactly one manager — checked at every
    // stage barrier, in sequential and parallel runs alike.
    for (auto& e : executors_) e->VerifyMemoryAccounting();
  }
  // All writers are quiescent past the barrier: fold this stage's events
  // into the canonical log (content-identical across execution modes).
  tracer_.MergeBarrier();
}

void SparkContext::RunStage(const std::string& name,
                            const std::function<void(TaskContext&)>& task) {
  RunStageInternal(name, task);
}

int SparkContext::RunMapStage(const std::string& name, int shuffle_id,
                              const std::function<void(TaskContext&)>& task) {
  RunStageInternal(name, task);
  ReplayStage rs;
  rs.name = name;
  rs.token = next_lineage_token_++;
  rs.shuffle_id = shuffle_id;
  rs.fn = task;
  replay_stages_.push_back(std::move(rs));
  return replay_stages_.back().token;
}

int SparkContext::RegisterLineage(int rdd_id,
                                  std::function<void(TaskContext&)> fn) {
  ReplayStage rs;
  rs.name = "lineage rdd " + std::to_string(rdd_id);
  rs.token = next_lineage_token_++;
  rs.fn = std::move(fn);
  replay_stages_.push_back(std::move(rs));
  return replay_stages_.back().token;
}

void SparkContext::DropLineage(int token) {
  for (auto it = replay_stages_.begin(); it != replay_stages_.end(); ++it) {
    if (it->token == token) {
      replay_stages_.erase(it);
      return;
    }
  }
}

void SparkContext::AddWipeListener(WipeListener* listener) {
  wipe_listeners_.push_back(listener);
}

void SparkContext::RemoveWipeListener(WipeListener* listener) {
  auto it = std::find(wipe_listeners_.begin(), wipe_listeners_.end(),
                      listener);
  if (it != wipe_listeners_.end()) wipe_listeners_.erase(it);
}

void SparkContext::WipeExecutor(int e) {
  DECA_CHECK_GE(e, 0);
  DECA_CHECK_LT(e, num_executors());
  // Stale-reference drop must precede the heap reset: listeners still
  // hold refs into the dying heap.
  for (auto* l : wipe_listeners_) l->OnExecutorWipe(e);
  executors_[static_cast<size_t>(e)]->Wipe();
  // Everything this executor produced is marked lost: cached lineage
  // blocks and deposited shuffle map outputs alike.
  for (auto& rs : replay_stages_) {
    for (int p = 0; p < num_partitions(); ++p) {
      if (scheduler_.ExecutorOfPartition(p) != e) continue;
      if (rs.shuffle_id >= 0) shuffle_->DropMapOutput(rs.shuffle_id, p);
      rs.lost.insert(p);
    }
  }
  ++metrics_.executor_wipes;
  obs::Instant(obs::Cat::kSched, "wipe", e);
}

void SparkContext::RecoverLostState(int stage) {
  bool any = false;
  for (const auto& rs : replay_stages_) {
    if (!rs.lost.empty()) any = true;
  }
  if (!any) return;
  // Replay in original execution order so the wiped executor's heap sees
  // the same allocation history prefix a fresh run would produce. Replay
  // runs clean: no injection, no retry bookkeeping, no metric reports.
  const int nparts = num_partitions();
  ScopedHeapOwnership ownership(&executors_, &scheduler_);
  for (auto& rs : replay_stages_) {
    if (rs.lost.empty()) continue;
    std::string stage_name = "recover:" + rs.name;
    scheduler_.RunStage(
        nparts,
        [&](int p, double) {
          if (rs.lost.count(p) == 0) return;
          Executor* e = executor_for_partition(p);
          // Replay windows carry attempt = -1: they belong to the
          // upcoming stage's trace but are distinguishable from its
          // regular task attempts.
          obs::TraceRecorder* rec = tracer_.executor(e->id());
          if (rec != nullptr) rec->BeginWindow(stage, p, -1);
          obs::ScopedRecorder trace_scope(rec);
          obs::ScopedSpan span(obs::Cat::kTask, "recover");
          TaskContext tc(this, e, p, nparts);
          rs.fn(tc);
        },
        stage_name.c_str());
    if (rs.shuffle_id < 0) {
      metrics_.recomputed_blocks += rs.lost.size();
    }
    rs.lost.clear();
  }
}

void SparkContext::RegisterCachedRdd(int rdd_id, const RecordOps* ops) {
  for (auto& e : executors_) e->cache()->RegisterOps(rdd_id, ops);
}

void SparkContext::UnpersistRdd(int rdd_id) {
  for (auto& e : executors_) {
    for (int p = 0; p < num_partitions(); ++p) {
      e->cache()->Evict({rdd_id, p});
    }
  }
}

void SparkContext::ResetMetrics() { metrics_ = JobMetrics(); }

double SparkContext::TotalGcPauseMs() const {
  double total = 0;
  for (const auto& e : executors_) {
    total += e->heap()->stats().TotalPauseMs();
  }
  return total;
}

double SparkContext::TotalConcurrentGcMs() const {
  double total = 0;
  for (const auto& e : executors_) {
    total += e->heap()->stats().concurrent_ms;
  }
  return total;
}

uint64_t SparkContext::TotalMinorGcs() const {
  uint64_t total = 0;
  for (const auto& e : executors_) {
    total += e->heap()->stats().minor_count;
  }
  return total;
}

uint64_t SparkContext::TotalFullGcs() const {
  uint64_t total = 0;
  for (const auto& e : executors_) {
    total += e->heap()->stats().full_count;
  }
  return total;
}

uint64_t SparkContext::CachedMemoryBytes() const {
  uint64_t total = 0;
  for (const auto& e : executors_) {
    total += e->cache()->memory_bytes();
  }
  return total;
}

uint64_t SparkContext::PeakCachedMemoryBytes() const {
  uint64_t total = 0;
  for (const auto& e : executors_) {
    total += e->cache()->peak_memory_bytes();
  }
  return total;
}

uint64_t SparkContext::SwappedBytes() const {
  uint64_t total = 0;
  for (const auto& e : executors_) {
    total += e->cache()->disk_bytes();
  }
  return total;
}

uint64_t SparkContext::TotalPressureEvictions() const {
  uint64_t total = 0;
  for (const auto& e : executors_) {
    total += e->cache()->pressure_evictions();
  }
  return total;
}

uint64_t SparkContext::TotalOomRecoveries() const {
  uint64_t total = 0;
  for (const auto& e : executors_) {
    total += e->heap()->stats().oom_recoveries;
  }
  return total;
}

uint64_t SparkContext::TotalExecPoolPeakBytes() const {
  uint64_t total = 0;
  for (const auto& e : executors_) total += e->memory()->exec_peak();
  return total;
}

uint64_t SparkContext::TotalStoragePoolPeakBytes() const {
  uint64_t total = 0;
  for (const auto& e : executors_) total += e->memory()->storage_peak();
  return total;
}

uint64_t SparkContext::TotalBorrowedBytes() const {
  uint64_t total = 0;
  for (const auto& e : executors_) total += e->memory()->borrowed_peak();
  return total;
}

uint64_t SparkContext::TotalDeniedReservations() const {
  uint64_t total = 0;
  for (const auto& e : executors_) {
    total += e->memory()->denied_reservations();
  }
  return total;
}

std::vector<memory::MemoryStats> SparkContext::ExecutorMemorySnapshots()
    const {
  std::vector<memory::MemoryStats> out;
  out.reserve(executors_.size());
  for (const auto& e : executors_) out.push_back(e->memory()->Snapshot());
  return out;
}

}  // namespace deca::spark
