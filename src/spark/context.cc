#include "spark/context.h"

#include <unistd.h>

#include <algorithm>
#include <filesystem>
#include <thread>

#include "common/clock.h"
#include "common/logging.h"
#include "fault/task_failure.h"
#include "net/loopback_transport.h"
#include "net/socket_io.h"
#include "net/tcp_transport.h"
#include "spark/network_shuffle.h"

namespace deca::spark {

namespace {

/// Returns each executor heap to the driver thread at scope exit — also
/// on the exception path, so a failing stage leaves ownership sane.
class ScopedHeapOwnership {
 public:
  ScopedHeapOwnership(std::vector<std::unique_ptr<Executor>>* executors,
                      exec::TaskScheduler* scheduler)
      : executors_(executors), active_(scheduler->parallel()) {
    if (!active_) return;
    for (size_t e = 0; e < executors_->size(); ++e) {
      (*executors_)[e]->heap()->SetMutatorThread(
          scheduler->MutatorThreadId(static_cast<int>(e)));
    }
  }
  ~ScopedHeapOwnership() {
    if (!active_) return;
    for (auto& e : *executors_) {
      e->heap()->SetMutatorThread(std::this_thread::get_id());
    }
  }

 private:
  std::vector<std::unique_ptr<Executor>>* executors_;
  bool active_;
};

}  // namespace

namespace {
/// Distinguishes concurrent contexts within one process in spill paths.
std::atomic<uint64_t> g_next_context_id{0};
}  // namespace

SparkContext::SparkContext(const SparkConfig& config)
    : config_(config),
      scheduler_(config.num_executors, config.num_worker_threads),
      tracer_(config.num_executors,
              config.trace_enabled ? config.trace_ring_capacity : 0),
      injector_(config.fault, config.max_task_failures) {
  DECA_CHECK_GT(config.num_executors, 0);
  // Unique per-context spill directory so concurrent applications (or
  // tests) sharing a configured spill_dir never collide on swap files.
  config_.spill_dir += "/ctx_" + std::to_string(::getpid()) + "_" +
                       std::to_string(g_next_context_id.fetch_add(1));
  for (int i = 0; i < config.num_executors; ++i) {
    executors_.push_back(std::make_unique<Executor>(i, config_, &registry_));
  }
  if (config_.runtime.role == DistRole::kDriver) {
    // SPMD driver: shuffle data lives in the daemons. A local stub keeps
    // shuffle-id assignment in lockstep with every worker's program; it
    // never holds bytes because no tasks run here.
    DECA_CHECK(config_.runtime.driver != nullptr);
    shuffle_ = std::make_unique<LocalShuffleService>();
  } else if (config_.runtime.role == DistRole::kWorker) {
    // Worker daemon: the mesh transport (owned by the daemon runtime)
    // carries shuffle traffic between daemons; only this executor's
    // BlockServer exists locally.
    DECA_CHECK(config_.runtime.worker != nullptr);
    DECA_CHECK(config_.runtime.transport != nullptr);
    auto service = std::make_unique<NetworkShuffleService>(
        config_, config_.runtime.transport, config_.runtime.net_stats,
        config_.runtime.my_executor);
    injector_.set_fetch_failure_path(service.get());
    shuffle_ = std::move(service);
  } else if (config_.shuffle_transport == ShuffleTransport::kLocal) {
    shuffle_ = std::make_unique<LocalShuffleService>();
  } else {
    net_stats_ = std::make_unique<net::NetStats>();
    if (config_.shuffle_transport == ShuffleTransport::kLoopback) {
      net::LoopbackOptions opts;
      opts.latency_us = config_.net_latency_us;
      opts.bandwidth_mbps = config_.net_bandwidth_mbps;
      transport_ = std::make_unique<net::LoopbackTransport>(
          config_.num_executors, opts, net_stats_.get());
    } else {
      transport_ = std::make_unique<net::TcpTransport>(config_.num_executors,
                                                       net_stats_.get());
    }
    auto service = std::make_unique<NetworkShuffleService>(
        config_, transport_.get(), net_stats_.get());
    // Injected fetch failures now travel the wire (doomed probe +
    // retries) before surfacing — same decision, same exception.
    injector_.set_fetch_failure_path(service.get());
    shuffle_ = std::move(service);
  }
}

SparkContext::~SparkContext() {
  // Cache managers delete their swap files first, then the (now empty)
  // per-context directory goes away. Best-effort: shuffle spill files of
  // crashed tasks may linger inside, remove_all sweeps those too.
  executors_.clear();
  std::error_code ec;
  std::filesystem::remove_all(config_.spill_dir, ec);
}

void SparkContext::RunTaskAttempts(
    int stage, int p, int nparts,
    const std::function<void(TaskContext&)>& task, double queue_ms) {
  Executor* e = executor_for_partition(p);
  obs::TraceRecorder* rec = tracer_.executor(e->id());
  const int max_attempts = std::max(1, config_.max_task_failures);
  for (int attempt = 0;; ++attempt) {
    // Each attempt is one trace window: exactly this thread writes
    // (stage, p, attempt) events, in sequential and parallel runs alike.
    if (rec != nullptr) rec->BeginWindow(stage, p, attempt);
    obs::ScopedRecorder trace_scope(rec);
    obs::ScopedSpan task_span(obs::Cat::kTask, "task");
    task_span.set_time_arg(queue_ms);
    TaskContext tc(this, e, p, nparts);
    tc.metrics().queue_ms = queue_ms;
    double gc0 = e->heap()->stats().TotalPauseMs();
    uint64_t denied0 = e->memory()->denied_reservations();
    uint64_t gcs0 =
        e->heap()->stats().minor_count + e->heap()->stats().full_count;
    Stopwatch sw;
    try {
      injector_.OnTaskAttempt(stage, p, attempt, e->heap());
      task(tc);
      // A forced allocation failure armed for this attempt must never
      // leak into a later task (the attempt may not have allocated).
      e->heap()->ForceAllocationFailures(0);
    } catch (const fault::TaskFailure& f) {
      e->heap()->ForceAllocationFailures(0);
      if (attempt + 1 >= max_attempts) throw;
      DECA_LOG(Warning) << "retrying task: " << f.what();
      task_retries_.fetch_add(1, std::memory_order_relaxed);
      obs::Instant(obs::Cat::kTask, "retry", attempt);
      continue;
    } catch (const jvm::OutOfMemoryError& oom) {
      e->heap()->ForceAllocationFailures(0);
      if (attempt + 1 >= max_attempts) {
        throw fault::TaskOomFailure(stage, p, attempt, oom.heap_dump());
      }
      DECA_LOG(Warning) << "retrying task after OOM (stage " << stage
                        << ", partition " << p << ", attempt " << attempt
                        << "): " << oom.what();
      task_retries_.fetch_add(1, std::memory_order_relaxed);
      obs::Instant(obs::Cat::kTask, "retry", attempt);
      continue;
    }
    tc.metrics().total_ms = sw.ElapsedMillis();
    tc.metrics().gc_ms = e->heap()->stats().TotalPauseMs() - gc0;
    // Pool peaks are the executor's high-water marks as of task end (the
    // stage fold takes the max); denials are this task's own delta.
    const memory::ExecutorMemoryManager* mm = e->memory();
    tc.metrics().exec_pool_peak_bytes = mm->exec_peak();
    tc.metrics().storage_pool_peak_bytes = mm->storage_peak();
    tc.metrics().borrowed_bytes = mm->borrowed_peak();
    tc.metrics().denied_reservations = mm->denied_reservations() - denied0;
    task_span.set_args(
        static_cast<double>(e->heap()->stats().minor_count +
                            e->heap()->stats().full_count - gcs0),
        static_cast<double>(tc.metrics().denied_reservations));
    sink_.Report(p, tc.metrics());
    return;
  }
}

void SparkContext::RunRemoteAttempts(
    int stage, int p, bool collect, double queue_ms,
    std::vector<std::vector<uint8_t>>* results) {
  const int e = scheduler_.ExecutorOfPartition(p);
  const int max_attempts = std::max(1, config_.max_task_failures);
  for (int attempt = 0;; ++attempt) {
    exec::RemoteTaskEnvelope env;
    env.stage = stage;
    env.partition = p;
    env.attempt = attempt;
    env.collect = collect;
    env.queue_ms = queue_ms;
    // RunTask throws fault::ExecutorLostError if the daemon died — never
    // resent; it propagates to the stage-quarantine handler.
    exec::RemoteTaskOutcome out = config_.runtime.driver->RunTask(e, env);
    remote_fired_.fetch_add(out.fired_delta, std::memory_order_relaxed);
    if (out.status == exec::RemoteTaskStatus::kOk) {
      TaskMetrics m = out.metrics;
      m.queue_ms = queue_ms;  // the driver-side dispatch queue time
      sink_.Report(p, m);
      if (collect && results != nullptr) {
        (*results)[static_cast<size_t>(p)] = std::move(out.result);
      }
      return;
    }
    if (out.status == exec::RemoteTaskStatus::kFatal) {
      throw std::runtime_error("remote task failed (stage " +
                               std::to_string(stage) + ", partition " +
                               std::to_string(p) + "): " + out.message);
    }
    // Retryable — the same bookkeeping the in-process attempt loop does.
    if (attempt + 1 >= max_attempts) {
      switch (out.status) {
        case exec::RemoteTaskStatus::kFetchFailure:
          throw fault::ShuffleFetchFailure(stage, p, attempt);
        case exec::RemoteTaskStatus::kOom:
          throw fault::TaskOomFailure(stage, p, attempt, out.heap_dump);
        default:
          throw fault::InjectedTaskFailure(stage, p, attempt);
      }
    }
    DECA_LOG(Warning) << "retrying remote task (stage " << stage
                      << ", partition " << p << ", attempt " << attempt
                      << ")";
    task_retries_.fetch_add(1, std::memory_order_relaxed);
    obs::Instant(obs::Cat::kTask, "retry", attempt);
  }
}

std::vector<std::vector<uint8_t>> SparkContext::ServeStage(
    int stage, const std::function<void(TaskContext&)>& task,
    const CollectFn* collect) {
  DistWorker* worker = config_.runtime.worker;
  while (true) {
    DistWorker::Command cmd = worker->NextCommand();
    switch (cmd.kind) {
      case DistWorker::Command::Kind::kTask:
        worker->Reply(ExecuteRemoteAttempt(stage, cmd.env, task, collect));
        break;
      case DistWorker::Command::Kind::kStageDone: {
        DECA_CHECK_EQ(cmd.stage, stage)
            << "stage-done for a stage this daemon is not serving";
        executors_[static_cast<size_t>(config_.runtime.my_executor)]
            ->VerifyMemoryAccounting();
        worker->StageAck(BuildLocalSnapshot());
        return std::move(cmd.blobs);
      }
      case DistWorker::Command::Kind::kShutdown:
        // Unwinds through the workload program; the daemon main catches
        // it, so destructors (spill cleanup) still run.
        throw WorkerShutdown{};
    }
  }
}

exec::RemoteTaskOutcome SparkContext::ExecuteRemoteAttempt(
    int stage, const exec::RemoteTaskEnvelope& env,
    const std::function<void(TaskContext&)>& task, const CollectFn* collect) {
  exec::RemoteTaskOutcome out;
  const int p = env.partition;
  const int nparts = num_partitions();
  Executor* e = executor_for_partition(p);
  DECA_CHECK_EQ(e->id(), config_.runtime.my_executor)
      << "envelope for a partition this daemon does not own";
  if (env.replay_token >= 0) {
    // Lineage replay: clean execution — no injection, no retries, no
    // metric reports — exactly like the in-process RecoverLostState body.
    for (auto& rs : replay_stages_) {
      if (rs.token != env.replay_token) continue;
      TaskContext tc(this, e, p, nparts);
      rs.fn(tc);
      return out;
    }
    out.status = exec::RemoteTaskStatus::kFatal;
    out.message = "unknown replay token " + std::to_string(env.replay_token);
    return out;
  }
  TaskContext tc(this, e, p, nparts);
  tc.metrics().queue_ms = env.queue_ms;
  double gc0 = e->heap()->stats().TotalPauseMs();
  uint64_t denied0 = e->memory()->denied_reservations();
  Stopwatch sw;
  try {
    injector_.OnTaskAttempt(stage, p, env.attempt, e->heap());
    if (collect != nullptr) {
      out.result = (*collect)(tc);
    } else {
      task(tc);
    }
    e->heap()->ForceAllocationFailures(0);
  } catch (const fault::ShuffleFetchFailure&) {
    e->heap()->ForceAllocationFailures(0);
    out.status = exec::RemoteTaskStatus::kFetchFailure;
  } catch (const fault::TaskFailure&) {
    e->heap()->ForceAllocationFailures(0);
    out.status = exec::RemoteTaskStatus::kInjectedFailure;
  } catch (const jvm::OutOfMemoryError& oom) {
    e->heap()->ForceAllocationFailures(0);
    out.status = exec::RemoteTaskStatus::kOom;
    out.heap_dump = oom.heap_dump();
  } catch (const net::ConnectError& ce) {
    // A shuffle fetch hit a dead peer daemon: retryable like any other
    // fetch failure — the driver's bounded attempt loop decides.
    e->heap()->ForceAllocationFailures(0);
    out.status = exec::RemoteTaskStatus::kFetchFailure;
    out.message = ce.what();
  } catch (const std::exception& ex) {
    e->heap()->ForceAllocationFailures(0);
    out.status = exec::RemoteTaskStatus::kFatal;
    out.message = ex.what();
  }
  if (out.status == exec::RemoteTaskStatus::kOk) {
    tc.metrics().total_ms = sw.ElapsedMillis();
    tc.metrics().gc_ms = e->heap()->stats().TotalPauseMs() - gc0;
    const memory::ExecutorMemoryManager* mm = e->memory();
    tc.metrics().exec_pool_peak_bytes = mm->exec_peak();
    tc.metrics().storage_pool_peak_bytes = mm->storage_peak();
    tc.metrics().borrowed_bytes = mm->borrowed_peak();
    tc.metrics().denied_reservations = mm->denied_reservations() - denied0;
    out.metrics = tc.metrics();
  } else {
    out.result.clear();
  }
  out.fired_delta = injector_.TakeFired();
  return out;
}

void SparkContext::MarkExecutorLost(int e) {
  DECA_CHECK_GE(e, 0);
  DECA_CHECK_LT(e, num_executors());
  // The daemon's heaps, cache blocks and deposited map outputs died with
  // its process — only the driver-side bookkeeping needs the in-process
  // wipe treatment so lineage replay and counters stay identical.
  for (auto* l : wipe_listeners_) l->OnExecutorWipe(e);
  for (auto& rs : replay_stages_) {
    for (int p = 0; p < num_partitions(); ++p) {
      if (scheduler_.ExecutorOfPartition(p) != e) continue;
      rs.lost.insert(p);
    }
  }
  ++metrics_.executor_wipes;
  obs::Instant(obs::Cat::kSched, "wipe", e);
}

ExecutorSnapshot SparkContext::BuildLocalSnapshot() const {
  Executor* e =
      executors_[static_cast<size_t>(config_.runtime.my_executor)].get();
  ExecutorSnapshot s;
  s.gc_pause_ms = e->heap()->stats().TotalPauseMs();
  s.concurrent_gc_ms = e->heap()->stats().concurrent_ms;
  s.minor_gcs = e->heap()->stats().minor_count;
  s.full_gcs = e->heap()->stats().full_count;
  s.oom_recoveries = e->heap()->stats().oom_recoveries;
  s.cached_bytes = e->cache()->memory_bytes();
  s.peak_cached_bytes = e->cache()->peak_memory_bytes();
  s.swapped_bytes = e->cache()->disk_bytes();
  s.pressure_evictions = e->cache()->pressure_evictions();
  s.tier = e->cache()->tier_counters();
  s.memory = e->memory()->Snapshot();
  {
    const jvm::Heap* h = e->heap();
    const Histogram& ph = h->pause_hist();
    const Histogram& sh = h->mark_slice_hist();
    s.mark_slices = h->stats().mark_slices;
    s.pause_events = ph.count();
    s.pause_p50_ms = ph.Percentile(50);
    s.pause_p99_ms = ph.Percentile(99);
    s.pause_max_ms = ph.Max();
    s.slice_p50_ms = sh.Percentile(50);
    s.slice_p99_ms = sh.Percentile(99);
    s.slice_max_ms = sh.Max();
  }
  s.alloc = e->page_allocator()->Stats();
  const int n = shuffle_->num_shuffles();
  s.shuffle_bytes.resize(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    s.shuffle_bytes[static_cast<size_t>(i)] = shuffle_->total_bytes(i);
  }
  return s;
}

void SparkContext::RunStageInternal(
    const std::string& name, const std::function<void(TaskContext&)>& task,
    const CollectFn* collect, std::vector<std::vector<uint8_t>>* results) {
  const int stage = next_stage_id_++;
  if (config_.runtime.role == DistRole::kWorker) {
    // SPMD worker: this stage is served, not run. The driver dispatches
    // envelopes; the broadcast collect blobs keep this program's
    // between-stage state identical to the driver's.
    auto blobs = ServeStage(stage, task, collect);
    if (results != nullptr) *results = std::move(blobs);
    return;
  }
  const bool remote = config_.runtime.role == DistRole::kDriver;
  // Driver trace window for this stage: dispatch instants, wipe/recovery
  // bookkeeping and the stage span all land on the driver lane.
  obs::TraceRecorder* drec = tracer_.driver();
  if (drec != nullptr) drec->BeginWindow(stage, -1, -1);
  obs::ScopedRecorder driver_scope(drec);
  {
    obs::ScopedSpan stage_span(obs::Cat::kStage, name.c_str(),
                               num_partitions(), num_executors());
    int wipe = injector_.CrashWipeBefore(stage);
    if (wipe >= 0 && wipe < num_executors()) {
      if (remote) {
        // The same seeded decision that wipes an executor in-process
        // delivers a real SIGKILL here; heartbeat loss detects the death
        // and a respawned daemon is fast-forwarded through the program
        // log before lineage replay.
        obs::Instant(obs::Cat::kCluster, "kill", wipe);
        config_.runtime.driver->KillExecutor(wipe);
        obs::Instant(obs::Cat::kCluster, "dead", wipe);
        MarkExecutorLost(wipe);
        config_.runtime.driver->RecoverExecutor(wipe);
        obs::Instant(obs::Cat::kCluster, "respawn", wipe);
      } else {
        WipeExecutor(wipe);
      }
    }
    RecoverLostState(stage);
    Stopwatch stage_sw;
    const int nparts = num_partitions();
    if (results != nullptr) results->assign(static_cast<size_t>(nparts), {});
    const int max_stage_attempts = std::max(1, config_.max_task_failures);
    for (int stage_attempt = 0;; ++stage_attempt) {
      sink_.BeginStage(nparts);
      try {
        ScopedHeapOwnership ownership(&executors_, &scheduler_);
        scheduler_.RunStage(
            nparts,
            [&](int p, double queue_ms) {
              if (remote) {
                RunRemoteAttempts(stage, p, collect != nullptr, queue_ms,
                                  results);
              } else if (collect != nullptr) {
                RunTaskAttempts(
                    stage, p, nparts,
                    [&](TaskContext& tc) {
                      (*results)[static_cast<size_t>(tc.partition())] =
                          (*collect)(tc);
                    },
                    queue_ms);
              } else {
                RunTaskAttempts(stage, p, nparts, task, queue_ms);
              }
            },
            name.c_str());
        break;
      } catch (const fault::ExecutorLostError& lost) {
        // Quarantine: the stage's partial results are discarded — sink
        // and collect blobs alike — never merged. Recover the executor,
        // replay what died with it, and retry the whole stage.
        if (stage_attempt + 1 >= max_stage_attempts) throw;
        DECA_LOG(Warning) << "quarantining stage " << stage << ": "
                          << lost.what();
        config_.runtime.driver->NoteStageQuarantine();
        if (results != nullptr) {
          results->assign(static_cast<size_t>(nparts), {});
        }
        obs::Instant(obs::Cat::kCluster, "dead", lost.executor());
        MarkExecutorLost(lost.executor());
        config_.runtime.driver->RecoverExecutor(lost.executor());
        obs::Instant(obs::Cat::kCluster, "respawn", lost.executor());
        RecoverLostState(stage);
        continue;
      }
    }
    if (remote) {
      // Stage barrier broadcast: every daemon leaves its serve loop,
      // folds the same collect blobs, and acks with its stats snapshot
      // (which the Total* getters below read).
      static const std::vector<std::vector<uint8_t>> kNoBlobs;
      snapshots_ = config_.runtime.driver->StageDone(
          stage, collect != nullptr, results != nullptr ? *results : kNoBlobs);
    }
    // Post-barrier: fold task metrics in partition order (deterministic
    // regardless of completion order).
    sink_.EndStage(&metrics_);
    metrics_.wall_ms += stage_sw.ElapsedMillis();
    metrics_.task_retries += task_retries_.exchange(0);
    metrics_.injected_faults +=
        remote ? remote_fired_.exchange(0) : injector_.TakeFired();
    metrics_.recomputed_blocks += recomputed_blocks_.exchange(0);
    metrics_.exec_pool_peak_bytes = TotalExecPoolPeakBytes();
    metrics_.storage_pool_peak_bytes = TotalStoragePoolPeakBytes();
    metrics_.borrowed_bytes = TotalBorrowedBytes();
    metrics_.denied_reservations = TotalDeniedReservations();
    // Every byte must be charged to exactly one manager — checked at every
    // stage barrier, in sequential and parallel runs alike.
    for (auto& e : executors_) e->VerifyMemoryAccounting();
  }
  // All writers are quiescent past the barrier: fold this stage's events
  // into the canonical log (content-identical across execution modes).
  tracer_.MergeBarrier();
}

void SparkContext::RunStage(const std::string& name,
                            const std::function<void(TaskContext&)>& task) {
  RunStageInternal(name, task, nullptr, nullptr);
}

std::vector<std::vector<uint8_t>> SparkContext::RunCollectStage(
    const std::string& name, const CollectFn& fn) {
  std::vector<std::vector<uint8_t>> results;
  RunStageInternal(name, {}, &fn, &results);
  return results;
}

int SparkContext::RunMapStage(const std::string& name, int shuffle_id,
                              const std::function<void(TaskContext&)>& task) {
  RunStageInternal(name, task, nullptr, nullptr);
  ReplayStage rs;
  rs.name = name;
  rs.token = next_lineage_token_++;
  rs.shuffle_id = shuffle_id;
  rs.fn = task;
  replay_stages_.push_back(std::move(rs));
  return replay_stages_.back().token;
}

int SparkContext::RegisterLineage(int rdd_id,
                                  std::function<void(TaskContext&)> fn) {
  ReplayStage rs;
  rs.name = "lineage rdd " + std::to_string(rdd_id);
  rs.token = next_lineage_token_++;
  rs.fn = std::move(fn);
  replay_stages_.push_back(std::move(rs));
  return replay_stages_.back().token;
}

void SparkContext::DropLineage(int token) {
  for (auto it = replay_stages_.begin(); it != replay_stages_.end(); ++it) {
    if (it->token == token) {
      replay_stages_.erase(it);
      return;
    }
  }
}

void SparkContext::AddWipeListener(WipeListener* listener) {
  wipe_listeners_.push_back(listener);
}

void SparkContext::RemoveWipeListener(WipeListener* listener) {
  auto it = std::find(wipe_listeners_.begin(), wipe_listeners_.end(),
                      listener);
  if (it != wipe_listeners_.end()) wipe_listeners_.erase(it);
}

void SparkContext::WipeExecutor(int e) {
  DECA_CHECK_GE(e, 0);
  DECA_CHECK_LT(e, num_executors());
  // Stale-reference drop must precede the heap reset: listeners still
  // hold refs into the dying heap.
  for (auto* l : wipe_listeners_) l->OnExecutorWipe(e);
  executors_[static_cast<size_t>(e)]->Wipe();
  // Everything this executor produced is marked lost: cached lineage
  // blocks and deposited shuffle map outputs alike.
  for (auto& rs : replay_stages_) {
    for (int p = 0; p < num_partitions(); ++p) {
      if (scheduler_.ExecutorOfPartition(p) != e) continue;
      if (rs.shuffle_id >= 0) shuffle_->DropMapOutput(rs.shuffle_id, p);
      rs.lost.insert(p);
    }
  }
  ++metrics_.executor_wipes;
  obs::Instant(obs::Cat::kSched, "wipe", e);
}

void SparkContext::RecoverLostState(int stage) {
  bool any = false;
  for (const auto& rs : replay_stages_) {
    if (!rs.lost.empty()) any = true;
  }
  if (!any) return;
  if (config_.runtime.role == DistRole::kDriver) {
    // Replay over RPC, in original execution order, partitions ascending
    // (std::set order): the respawned daemon's fresh heap sees the same
    // allocation history prefix a fresh in-process run would produce.
    for (auto& rs : replay_stages_) {
      if (rs.lost.empty()) continue;
      for (int p : rs.lost) {
        exec::RemoteTaskEnvelope env;
        env.stage = stage;
        env.partition = p;
        env.attempt = -1;
        env.replay_token = rs.token;
        exec::RemoteTaskOutcome out = config_.runtime.driver->RunTask(
            scheduler_.ExecutorOfPartition(p), env);
        if (out.status != exec::RemoteTaskStatus::kOk) {
          throw std::runtime_error("lineage replay failed (" + rs.name +
                                   ", partition " + std::to_string(p) +
                                   "): " + out.message);
        }
      }
      obs::Instant(obs::Cat::kCluster, "replay",
                   static_cast<double>(rs.lost.size()));
      if (rs.shuffle_id < 0) {
        metrics_.recomputed_blocks += rs.lost.size();
      }
      rs.lost.clear();
    }
    return;
  }
  // Replay in original execution order so the wiped executor's heap sees
  // the same allocation history prefix a fresh run would produce. Replay
  // runs clean: no injection, no retry bookkeeping, no metric reports.
  const int nparts = num_partitions();
  ScopedHeapOwnership ownership(&executors_, &scheduler_);
  for (auto& rs : replay_stages_) {
    if (rs.lost.empty()) continue;
    std::string stage_name = "recover:" + rs.name;
    scheduler_.RunStage(
        nparts,
        [&](int p, double) {
          if (rs.lost.count(p) == 0) return;
          Executor* e = executor_for_partition(p);
          // Replay windows carry attempt = -1: they belong to the
          // upcoming stage's trace but are distinguishable from its
          // regular task attempts.
          obs::TraceRecorder* rec = tracer_.executor(e->id());
          if (rec != nullptr) rec->BeginWindow(stage, p, -1);
          obs::ScopedRecorder trace_scope(rec);
          obs::ScopedSpan span(obs::Cat::kTask, "recover");
          TaskContext tc(this, e, p, nparts);
          rs.fn(tc);
        },
        stage_name.c_str());
    if (rs.shuffle_id < 0) {
      metrics_.recomputed_blocks += rs.lost.size();
    }
    rs.lost.clear();
  }
}

void SparkContext::RegisterCachedRdd(int rdd_id, const RecordOps* ops) {
  for (auto& e : executors_) e->cache()->RegisterOps(rdd_id, ops);
}

void SparkContext::UnpersistRdd(int rdd_id) {
  for (auto& e : executors_) {
    for (int p = 0; p < num_partitions(); ++p) {
      e->cache()->Evict({rdd_id, p});
    }
  }
}

void SparkContext::ResetMetrics() { metrics_ = JobMetrics(); }

// The Total* getters are role-aware: the SPMD driver's local executors
// never run a task, so it reads the per-daemon snapshots piggybacked on
// the last stage barrier instead. Each daemon reports only the executor
// it hosts, so the sums equal the in-process run's bit for bit.

double SparkContext::TotalGcPauseMs() const {
  if (config_.runtime.role == DistRole::kDriver) {
    double total = 0;
    for (const auto& s : snapshots_) total += s.gc_pause_ms;
    return total;
  }
  double total = 0;
  for (const auto& e : executors_) {
    total += e->heap()->stats().TotalPauseMs();
  }
  return total;
}

double SparkContext::TotalConcurrentGcMs() const {
  if (config_.runtime.role == DistRole::kDriver) {
    double total = 0;
    for (const auto& s : snapshots_) total += s.concurrent_gc_ms;
    return total;
  }
  double total = 0;
  for (const auto& e : executors_) {
    total += e->heap()->stats().concurrent_ms;
  }
  return total;
}

uint64_t SparkContext::TotalMinorGcs() const {
  if (config_.runtime.role == DistRole::kDriver) {
    uint64_t total = 0;
    for (const auto& s : snapshots_) total += s.minor_gcs;
    return total;
  }
  uint64_t total = 0;
  for (const auto& e : executors_) {
    total += e->heap()->stats().minor_count;
  }
  return total;
}

uint64_t SparkContext::TotalFullGcs() const {
  if (config_.runtime.role == DistRole::kDriver) {
    uint64_t total = 0;
    for (const auto& s : snapshots_) total += s.full_gcs;
    return total;
  }
  uint64_t total = 0;
  for (const auto& e : executors_) {
    total += e->heap()->stats().full_count;
  }
  return total;
}

GcPauseAggregate SparkContext::TotalGcPauses() const {
  GcPauseAggregate agg;
  auto fold_max = [&agg](uint64_t slices, uint64_t events, double pp50,
                         double pp99, double pmax, double sp50, double sp99,
                         double smax) {
    agg.mark_slices += slices;
    agg.pause_events += events;
    agg.pause_p50_ms = std::max(agg.pause_p50_ms, pp50);
    agg.pause_p99_ms = std::max(agg.pause_p99_ms, pp99);
    agg.pause_max_ms = std::max(agg.pause_max_ms, pmax);
    agg.slice_p50_ms = std::max(agg.slice_p50_ms, sp50);
    agg.slice_p99_ms = std::max(agg.slice_p99_ms, sp99);
    agg.slice_max_ms = std::max(agg.slice_max_ms, smax);
  };
  if (config_.runtime.role == DistRole::kDriver) {
    for (const auto& s : snapshots_) {
      fold_max(s.mark_slices, s.pause_events, s.pause_p50_ms, s.pause_p99_ms,
               s.pause_max_ms, s.slice_p50_ms, s.slice_p99_ms,
               s.slice_max_ms);
    }
    return agg;
  }
  for (const auto& e : executors_) {
    const jvm::Heap* h = e->heap();
    const Histogram& ph = h->pause_hist();
    const Histogram& sh = h->mark_slice_hist();
    fold_max(h->stats().mark_slices, ph.count(), ph.Percentile(50),
             ph.Percentile(99), ph.Max(), sh.Percentile(50),
             sh.Percentile(99), sh.Max());
  }
  return agg;
}

uint64_t SparkContext::CachedMemoryBytes() const {
  if (config_.runtime.role == DistRole::kDriver) {
    uint64_t total = 0;
    for (const auto& s : snapshots_) total += s.cached_bytes;
    return total;
  }
  uint64_t total = 0;
  for (const auto& e : executors_) {
    total += e->cache()->memory_bytes();
  }
  return total;
}

uint64_t SparkContext::PeakCachedMemoryBytes() const {
  if (config_.runtime.role == DistRole::kDriver) {
    uint64_t total = 0;
    for (const auto& s : snapshots_) total += s.peak_cached_bytes;
    return total;
  }
  uint64_t total = 0;
  for (const auto& e : executors_) {
    total += e->cache()->peak_memory_bytes();
  }
  return total;
}

uint64_t SparkContext::SwappedBytes() const {
  if (config_.runtime.role == DistRole::kDriver) {
    uint64_t total = 0;
    for (const auto& s : snapshots_) total += s.swapped_bytes;
    return total;
  }
  uint64_t total = 0;
  for (const auto& e : executors_) {
    total += e->cache()->disk_bytes();
  }
  return total;
}

uint64_t SparkContext::TotalPressureEvictions() const {
  if (config_.runtime.role == DistRole::kDriver) {
    uint64_t total = 0;
    for (const auto& s : snapshots_) total += s.pressure_evictions;
    return total;
  }
  uint64_t total = 0;
  for (const auto& e : executors_) {
    total += e->cache()->pressure_evictions();
  }
  return total;
}

TierCounters SparkContext::TotalTierCounters() const {
  TierCounters total;
  if (config_.runtime.role == DistRole::kDriver) {
    for (const auto& s : snapshots_) total.Add(s.tier);
    return total;
  }
  for (const auto& e : executors_) {
    total.Add(e->cache()->tier_counters());
  }
  return total;
}

alloc::AllocStats SparkContext::TotalAllocStats() const {
  alloc::AllocStats total;
  if (config_.runtime.role == DistRole::kDriver) {
    for (const auto& s : snapshots_) total.Add(s.alloc);
  } else {
    for (const auto& e : executors_) {
      total.Add(e->page_allocator()->Stats());
    }
  }
  // The chunk-level fields live on the process-wide arena, not the
  // per-executor handles; overlay them once (no-op when DECA_ARENA=0 and
  // the global arena was never created).
  alloc::AddGlobalArenaStats(&total);
  return total;
}

uint64_t SparkContext::TotalOomRecoveries() const {
  if (config_.runtime.role == DistRole::kDriver) {
    uint64_t total = 0;
    for (const auto& s : snapshots_) total += s.oom_recoveries;
    return total;
  }
  uint64_t total = 0;
  for (const auto& e : executors_) {
    total += e->heap()->stats().oom_recoveries;
  }
  return total;
}

uint64_t SparkContext::TotalExecPoolPeakBytes() const {
  if (config_.runtime.role == DistRole::kDriver) {
    uint64_t total = 0;
    for (const auto& s : snapshots_) total += s.memory.exec_peak;
    return total;
  }
  uint64_t total = 0;
  for (const auto& e : executors_) total += e->memory()->exec_peak();
  return total;
}

uint64_t SparkContext::TotalStoragePoolPeakBytes() const {
  if (config_.runtime.role == DistRole::kDriver) {
    uint64_t total = 0;
    for (const auto& s : snapshots_) total += s.memory.storage_peak;
    return total;
  }
  uint64_t total = 0;
  for (const auto& e : executors_) total += e->memory()->storage_peak();
  return total;
}

uint64_t SparkContext::TotalBorrowedBytes() const {
  if (config_.runtime.role == DistRole::kDriver) {
    uint64_t total = 0;
    for (const auto& s : snapshots_) total += s.memory.borrowed_peak;
    return total;
  }
  uint64_t total = 0;
  for (const auto& e : executors_) total += e->memory()->borrowed_peak();
  return total;
}

uint64_t SparkContext::TotalDeniedReservations() const {
  if (config_.runtime.role == DistRole::kDriver) {
    uint64_t total = 0;
    for (const auto& s : snapshots_) total += s.memory.denied_reservations;
    return total;
  }
  uint64_t total = 0;
  for (const auto& e : executors_) {
    total += e->memory()->denied_reservations();
  }
  return total;
}

std::vector<memory::MemoryStats> SparkContext::ExecutorMemorySnapshots()
    const {
  std::vector<memory::MemoryStats> out;
  if (config_.runtime.role == DistRole::kDriver) {
    out.reserve(snapshots_.size());
    for (const auto& s : snapshots_) out.push_back(s.memory);
    return out;
  }
  out.reserve(executors_.size());
  for (const auto& e : executors_) out.push_back(e->memory()->Snapshot());
  return out;
}

uint64_t SparkContext::ShuffleTotalBytes(int shuffle_id) const {
  if (config_.runtime.role == DistRole::kDriver) {
    uint64_t total = 0;
    for (const auto& s : snapshots_) {
      if (shuffle_id >= 0 &&
          static_cast<size_t>(shuffle_id) < s.shuffle_bytes.size()) {
        total += s.shuffle_bytes[static_cast<size_t>(shuffle_id)];
      }
    }
    return total;
  }
  return shuffle_->total_bytes(shuffle_id);
}

ClusterCounters SparkContext::cluster_counters() const {
  if (config_.runtime.role == DistRole::kDriver) {
    return config_.runtime.driver->counters();
  }
  return ClusterCounters{};
}

}  // namespace deca::spark
