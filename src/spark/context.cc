#include "spark/context.h"

#include <thread>

#include "common/clock.h"
#include "common/logging.h"

namespace deca::spark {

namespace {

/// Returns each executor heap to the driver thread at scope exit — also
/// on the exception path, so a failing stage leaves ownership sane.
class ScopedHeapOwnership {
 public:
  ScopedHeapOwnership(std::vector<std::unique_ptr<Executor>>* executors,
                      exec::TaskScheduler* scheduler)
      : executors_(executors), active_(scheduler->parallel()) {
    if (!active_) return;
    for (size_t e = 0; e < executors_->size(); ++e) {
      (*executors_)[e]->heap()->SetMutatorThread(
          scheduler->MutatorThreadId(static_cast<int>(e)));
    }
  }
  ~ScopedHeapOwnership() {
    if (!active_) return;
    for (auto& e : *executors_) {
      e->heap()->SetMutatorThread(std::this_thread::get_id());
    }
  }

 private:
  std::vector<std::unique_ptr<Executor>>* executors_;
  bool active_;
};

}  // namespace

SparkContext::SparkContext(const SparkConfig& config)
    : config_(config),
      scheduler_(config.num_executors, config.num_worker_threads) {
  DECA_CHECK_GT(config.num_executors, 0);
  for (int i = 0; i < config.num_executors; ++i) {
    executors_.push_back(std::make_unique<Executor>(i, config_, &registry_));
  }
}

SparkContext::~SparkContext() = default;

void SparkContext::RunStage(const std::string& name,
                            const std::function<void(TaskContext&)>& task) {
  (void)name;
  Stopwatch stage_sw;
  const int nparts = num_partitions();
  sink_.BeginStage(nparts);
  {
    ScopedHeapOwnership ownership(&executors_, &scheduler_);
    scheduler_.RunStage(nparts, [&](int p, double queue_ms) {
      Executor* e = executor_for_partition(p);
      TaskContext tc(this, e, p, nparts);
      tc.metrics().queue_ms = queue_ms;
      double gc0 = e->heap()->stats().TotalPauseMs();
      Stopwatch sw;
      task(tc);
      tc.metrics().total_ms = sw.ElapsedMillis();
      tc.metrics().gc_ms = e->heap()->stats().TotalPauseMs() - gc0;
      sink_.Report(p, tc.metrics());
    });
  }
  // Post-barrier: fold task metrics in partition order (deterministic
  // regardless of completion order).
  sink_.EndStage(&metrics_);
  metrics_.wall_ms += stage_sw.ElapsedMillis();
}

void SparkContext::RegisterCachedRdd(int rdd_id, const RecordOps* ops) {
  for (auto& e : executors_) e->cache()->RegisterOps(rdd_id, ops);
}

void SparkContext::UnpersistRdd(int rdd_id) {
  for (auto& e : executors_) {
    for (int p = 0; p < num_partitions(); ++p) {
      e->cache()->Evict({rdd_id, p});
    }
  }
}

void SparkContext::ResetMetrics() { metrics_ = JobMetrics(); }

double SparkContext::TotalGcPauseMs() const {
  double total = 0;
  for (const auto& e : executors_) {
    total += const_cast<Executor&>(*e).heap()->stats().TotalPauseMs();
  }
  return total;
}

double SparkContext::TotalConcurrentGcMs() const {
  double total = 0;
  for (const auto& e : executors_) {
    total += const_cast<Executor&>(*e).heap()->stats().concurrent_ms;
  }
  return total;
}

uint64_t SparkContext::TotalMinorGcs() const {
  uint64_t total = 0;
  for (const auto& e : executors_) {
    total += const_cast<Executor&>(*e).heap()->stats().minor_count;
  }
  return total;
}

uint64_t SparkContext::TotalFullGcs() const {
  uint64_t total = 0;
  for (const auto& e : executors_) {
    total += const_cast<Executor&>(*e).heap()->stats().full_count;
  }
  return total;
}

uint64_t SparkContext::CachedMemoryBytes() const {
  uint64_t total = 0;
  for (const auto& e : executors_) {
    total += const_cast<Executor&>(*e).cache()->memory_bytes();
  }
  return total;
}

uint64_t SparkContext::PeakCachedMemoryBytes() const {
  uint64_t total = 0;
  for (const auto& e : executors_) {
    total += const_cast<Executor&>(*e).cache()->peak_memory_bytes();
  }
  return total;
}

uint64_t SparkContext::SwappedBytes() const {
  uint64_t total = 0;
  for (const auto& e : executors_) {
    total += const_cast<Executor&>(*e).cache()->disk_bytes();
  }
  return total;
}

}  // namespace deca::spark
