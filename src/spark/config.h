#ifndef DECA_SPARK_CONFIG_H_
#define DECA_SPARK_CONFIG_H_

#include <string>

#include "alloc/arena.h"
#include "fault/fault_config.h"
#include "jvm/heap_config.h"
#include "spark/dist.h"

namespace deca::spark {

/// How cached RDD blocks are stored in an executor.
enum class StorageLevel {
  /// Deserialized managed objects (Spark's MEMORY_AND_DISK): fastest to
  /// access, most GC load.
  kMemoryObjects,
  /// One managed byte array per block holding Kryo-style serialized
  /// records (Spark's MEMORY_AND_DISK_SER — the paper's "SparkSer").
  kMemorySerialized,
  /// Deca page groups of decomposed records.
  kDecaPages,
};

const char* StorageLevelName(StorageLevel s);

/// Re-admission policy for blocks served from the serialized off-heap
/// tier (T1) or disk (T2). Decisions are driven purely by per-block
/// access counts, so they are deterministic.
enum class AdmitPolicy {
  /// Every access promotes the block back up one tier.
  kAlways,
  /// Promote on the second access after demotion: a one-shot scan cannot
  /// thrash the resident working set, a re-used block earns its way back.
  kOnSecondAccess,
  /// Never promote; demoted blocks are served as temporary views forever.
  kNever,
};

const char* AdmitPolicyName(AdmitPolicy p);

/// Where the size/lifetime classification that gates the Deca decomposed
/// path comes from (paper Section 3 vs the online ROLP-style profile).
enum class LifetimeSource {
  /// Static analysis over the workload's annotated UDT model + call graph
  /// (analysis::GlobalClassifier) — the paper's approach and the default.
  kStatic,
  /// Online calibration: a scratch-heap profiling run summarized by
  /// analysis::ProfiledClassifier. Workloads cross-check the profiled
  /// verdict against the static one, so results stay bit-identical.
  kProfiled,
  /// Ground truth asserted by the workload author (skips both analyses;
  /// the workload still checks it against the static verdict).
  kOracle,
};

const char* LifetimeSourceName(LifetimeSource s);

/// How shuffle chunks travel from map tasks to reducers.
enum class ShuffleTransport {
  /// Direct in-memory deposit/fetch (the original single-process path).
  kLocal,
  /// Framed wire messages over in-process loopback channels: real
  /// encode/frame/fetch protocol, deterministic, optional simulated
  /// latency/bandwidth. The default for network-mode tests and benches.
  kLoopback,
  /// Real TCP sockets on 127.0.0.1 (manual runs; timing not
  /// deterministic, bytes and results still are).
  kTcp,
};

const char* ShuffleTransportName(ShuffleTransport t);

/// Wire codec for network shuffle chunks (see net::WireCodec).
enum class ShuffleWireCodec {
  /// Follow the workload mode: Deca runs ship pages, JVM runs ship
  /// per-record serialized frames.
  kAuto,
  kPage,    // force zero-copy page transfer
  kRecord,  // force Kryo-like per-record serialization
};

/// Engine configuration: one simulated application (driver + executors).
struct SparkConfig {
  /// Number of simulated executors, each with its own managed heap.
  int num_executors = 2;
  /// Tasks per stage = num_executors * partitions_per_executor.
  int partitions_per_executor = 2;
  /// Worker threads for the parallel task-execution runtime (src/exec).
  /// 0 keeps the legacy sequential driver loop (the default, so benchmark
  /// measurements stay deterministic); N > 0 spawns min(N, num_executors)
  /// executor threads, each the sole mutator of the heaps striped onto
  /// it. Results are bit-identical across the two modes.
  int num_worker_threads = 0;
  /// Per-executor heap sizing and GC algorithm.
  jvm::HeapConfig heap;

  /// Single per-executor byte budget arbitrated by the
  /// memory::ExecutorMemoryManager (execution + storage pools, Spark
  /// 1.6's spark.memory.* region). 0 (the default) derives it as
  /// heap_bytes * memory_fraction.
  size_t executor_memory_bytes = 0;
  /// Fraction of the heap available to storage + shuffle (Spark's
  /// spark.memory.fraction). Only consulted when executor_memory_bytes is
  /// left 0.
  double memory_fraction = 0.65;
  /// Share of executor_memory() reserved as the storage-pool floor —
  /// cached blocks below it are safe from execution-pool borrowing
  /// (Spark's spark.memory.storageFraction; the knob the paper's Table 4
  /// tunes).
  double storage_fraction = 0.5;

  /// Cached-RDD storage level.
  StorageLevel cache_level = StorageLevel::kMemoryObjects;
  /// When true, shuffle buffers with decomposable key/value types use Deca
  /// page groups with in-place aggregation instead of managed objects.
  bool deca_shuffle = false;

  /// Size of Deca's logical memory pages.
  uint32_t deca_page_bytes = 64u << 10;

  /// Depth of the block-store tier ladder. 2 (default) is the legacy
  /// heap <-> disk store, bit-identical to every prior release. 3 enables
  /// the serialized off-heap middle tier (T1): eviction demotes
  /// T0 heap blocks into compact contiguous buffers — charged to the
  /// storage pool but invisible to GC root scans — before anything is
  /// spilled to disk, and Gets re-admit under `admit_policy`.
  int storage_tiers = 2;
  /// Share of the unified executor budget the T1 tier may occupy. When a
  /// demotion would push T1 residency past the cap, LRU T1 blocks cascade
  /// to disk first (the T1 -> T2 edge of the state machine).
  double t1_fraction = 0.5;
  /// Re-admission policy for Gets that land on T1/T2 blocks.
  AdmitPolicy admit_policy = AdmitPolicy::kOnSecondAccess;

  /// Source of the size/lifetime classification gating the Deca path.
  LifetimeSource lifetime_source = LifetimeSource::kStatic;

  /// True when the serialized off-heap tier is active.
  bool t1_enabled() const { return storage_tiers >= 3; }

  /// Native arena plane (src/alloc). With arena.enabled the executor heap
  /// buffer, T1 packed payloads, EncodeRaw staging, and spill/tier I/O
  /// buffers come from huge-page slab arenas; off (default) those paths
  /// use plain `new[]`/vector storage. Digests, GC counts, and fault
  /// counters are bit-identical either way — only placement and the
  /// informational arena stats change.
  alloc::ArenaOptions arena;

  bool arena_enabled() const { return arena.enabled; }

  /// Shuffle transport seam (src/net). kLocal preserves the original
  /// in-memory path bit for bit; kLoopback/kTcp route every chunk through
  /// the framed wire protocol. Results, GC counts, and fault counters are
  /// identical across all three.
  ShuffleTransport shuffle_transport = ShuffleTransport::kLocal;
  /// Chunk wire codec (network transports only).
  ShuffleWireCodec shuffle_wire_codec = ShuffleWireCodec::kAuto;
  /// Max bytes per fetch slice request.
  uint32_t net_fetch_chunk_bytes = 64u << 10;
  /// Per-reducer in-flight byte window (flow control): a fetch slice is
  /// clamped so outstanding-but-undecoded bytes never exceed this.
  uint32_t net_max_inflight_bytes = 256u << 10;
  /// Transport-level retries of a failed fetch before the failure
  /// surfaces to the task layer.
  int net_fetch_retries = 3;
  /// Simulated per-message wire latency (loopback only; virtual time).
  uint64_t net_latency_us = 0;
  /// Simulated wire bandwidth in Mbit/s, 0 = infinite (loopback only).
  uint64_t net_bandwidth_mbps = 0;

  /// Directory for cache swap and shuffle spill files. Each SparkContext
  /// appends a unique per-context suffix (pid + counter) and removes its
  /// directory on destruction, so concurrent contexts never collide.
  std::string spill_dir = "/tmp/deca_spill";

  /// Maximum attempts per task (Spark's spark.task.maxFailures). A task
  /// that throws a retryable failure is re-run on the same executor, in
  /// the same per-executor FIFO slot, up to this many times.
  int max_task_failures = 4;

  /// Deterministic fault injection (disabled by default).
  fault::FaultConfig fault;

  /// Execution backend: every executor in this process (default) or one
  /// daemon process per executor driven over the control-plane RPC
  /// protocol. Workload digests, GC counts, and fault counters are
  /// bit-identical across the two (enforced by the equivalence matrix in
  /// tests/cluster_dist_test.cc).
  DistMode dist_mode = DistMode::kInProcess;
  /// Control-plane tuning (process mode only).
  ClusterKnobs cluster;
  /// Internal per-process wiring (role, driver/worker seams). Filled in
  /// by cluster::ScopedJob / the daemon main — never set it by hand, and
  /// it is not serialized into job specs.
  ClusterRuntime runtime;

  /// Structured tracing (src/obs). Disabled by default: no recorders are
  /// created and every hook is one thread-local load + branch. When
  /// enabled, each executor (and the driver) gets a preallocated ring of
  /// `trace_ring_capacity` events, drained at stage barriers; a full ring
  /// overwrites the oldest event and counts it as dropped.
  bool trace_enabled = false;
  uint32_t trace_ring_capacity = 1u << 15;

  /// The unified per-executor memory budget (see executor_memory_bytes).
  size_t executor_memory() const {
    if (executor_memory_bytes != 0) return executor_memory_bytes;
    return static_cast<size_t>(static_cast<double>(heap.heap_bytes) *
                               memory_fraction);
  }

  /// Deprecated alias: the storage pool's floor within executor_memory().
  /// Pre-unification this was a hard cache budget; it now only bounds how
  /// far the execution pool can evict storage. Kept for callers that sized
  /// flush thresholds off it (same default numerics).
  size_t storage_budget_bytes() const {
    return static_cast<size_t>(static_cast<double>(executor_memory()) *
                               storage_fraction);
  }
  /// Deprecated alias: the execution region (executor_memory() minus the
  /// storage floor). Pre-unification this was a hard shuffle budget.
  size_t shuffle_budget_bytes() const {
    return static_cast<size_t>(static_cast<double>(executor_memory()) *
                               (1.0 - storage_fraction));
  }
};

}  // namespace deca::spark

#endif  // DECA_SPARK_CONFIG_H_
