#include "spark/dist.h"

namespace deca::spark {

const char* DistModeName(DistMode m) {
  switch (m) {
    case DistMode::kInProcess:
      return "in-process";
    case DistMode::kProcess:
      return "process";
  }
  return "?";
}

void ExecutorSnapshot::Encode(ByteWriter* w) const {
  w->Write<double>(gc_pause_ms);
  w->Write<double>(concurrent_gc_ms);
  w->WriteVarU64(minor_gcs);
  w->WriteVarU64(full_gcs);
  w->WriteVarU64(oom_recoveries);
  w->WriteVarU64(cached_bytes);
  w->WriteVarU64(peak_cached_bytes);
  w->WriteVarU64(swapped_bytes);
  w->WriteVarU64(pressure_evictions);
  w->WriteVarU64(tier.t0_resident_bytes);
  w->WriteVarU64(tier.t1_resident_bytes);
  w->WriteVarU64(tier.t2_resident_bytes);
  w->WriteVarU64(tier.t1_peak_bytes);
  w->WriteVarU64(tier.t0_hits);
  w->WriteVarU64(tier.t1_hits);
  w->WriteVarU64(tier.t2_hits);
  w->WriteVarU64(tier.misses);
  w->WriteVarU64(tier.demotes_to_t1);
  w->WriteVarU64(tier.demotes_to_t2);
  w->WriteVarU64(tier.promotes);
  w->WriteVarU64(tier.admit_rejects);
  w->Write<double>(tier.promote_p50_ms);
  w->Write<double>(tier.promote_p99_ms);
  w->WriteVarU64(memory.total_bytes);
  w->WriteVarU64(memory.storage_floor_bytes);
  w->WriteVarU64(memory.exec_used);
  w->WriteVarU64(memory.exec_peak);
  w->WriteVarU64(memory.storage_used);
  w->WriteVarU64(memory.storage_peak);
  w->WriteVarU64(memory.borrowed_peak);
  w->WriteVarU64(memory.denied_reservations);
  w->WriteVarU64(memory.storage_reserved);
  w->WriteVarU64(memory.demoted_blocks);
  w->WriteVarU64(memory.spilled_blocks);
  w->WriteVarU64(memory.page_bytes);
  w->WriteVarU64(memory.heap_capacity);
  w->WriteVarU64(memory.heap_used);
  w->WriteVarU64(memory.heap_old_used);
  w->WriteVarU64(mark_slices);
  w->WriteVarU64(pause_events);
  w->Write<double>(pause_p50_ms);
  w->Write<double>(pause_p99_ms);
  w->Write<double>(pause_max_ms);
  w->Write<double>(slice_p50_ms);
  w->Write<double>(slice_p99_ms);
  w->Write<double>(slice_max_ms);
  w->WriteVarU64(alloc.alloc_calls);
  w->WriteVarU64(alloc.free_calls);
  w->WriteVarU64(alloc.bytes_requested);
  w->WriteVarU64(alloc.slab_allocs);
  w->WriteVarU64(alloc.slab_reuses);
  w->WriteVarU64(alloc.freelist_steals);
  w->WriteVarU64(alloc.remote_frees);
  w->WriteVarU64(alloc.direct_maps);
  w->WriteVarU64(alloc.direct_unmaps);
  w->WriteVarU64(shuffle_bytes.size());
  for (uint64_t b : shuffle_bytes) w->WriteVarU64(b);
}

ExecutorSnapshot ExecutorSnapshot::Decode(ByteReader* r) {
  ExecutorSnapshot s;
  s.gc_pause_ms = r->Read<double>();
  s.concurrent_gc_ms = r->Read<double>();
  s.minor_gcs = r->ReadVarU64();
  s.full_gcs = r->ReadVarU64();
  s.oom_recoveries = r->ReadVarU64();
  s.cached_bytes = r->ReadVarU64();
  s.peak_cached_bytes = r->ReadVarU64();
  s.swapped_bytes = r->ReadVarU64();
  s.pressure_evictions = r->ReadVarU64();
  s.tier.t0_resident_bytes = r->ReadVarU64();
  s.tier.t1_resident_bytes = r->ReadVarU64();
  s.tier.t2_resident_bytes = r->ReadVarU64();
  s.tier.t1_peak_bytes = r->ReadVarU64();
  s.tier.t0_hits = r->ReadVarU64();
  s.tier.t1_hits = r->ReadVarU64();
  s.tier.t2_hits = r->ReadVarU64();
  s.tier.misses = r->ReadVarU64();
  s.tier.demotes_to_t1 = r->ReadVarU64();
  s.tier.demotes_to_t2 = r->ReadVarU64();
  s.tier.promotes = r->ReadVarU64();
  s.tier.admit_rejects = r->ReadVarU64();
  s.tier.promote_p50_ms = r->Read<double>();
  s.tier.promote_p99_ms = r->Read<double>();
  s.memory.total_bytes = r->ReadVarU64();
  s.memory.storage_floor_bytes = r->ReadVarU64();
  s.memory.exec_used = r->ReadVarU64();
  s.memory.exec_peak = r->ReadVarU64();
  s.memory.storage_used = r->ReadVarU64();
  s.memory.storage_peak = r->ReadVarU64();
  s.memory.borrowed_peak = r->ReadVarU64();
  s.memory.denied_reservations = r->ReadVarU64();
  s.memory.storage_reserved = r->ReadVarU64();
  s.memory.demoted_blocks = r->ReadVarU64();
  s.memory.spilled_blocks = r->ReadVarU64();
  s.memory.page_bytes = r->ReadVarU64();
  s.memory.heap_capacity = r->ReadVarU64();
  s.memory.heap_used = r->ReadVarU64();
  s.memory.heap_old_used = r->ReadVarU64();
  s.mark_slices = r->ReadVarU64();
  s.pause_events = r->ReadVarU64();
  s.pause_p50_ms = r->Read<double>();
  s.pause_p99_ms = r->Read<double>();
  s.pause_max_ms = r->Read<double>();
  s.slice_p50_ms = r->Read<double>();
  s.slice_p99_ms = r->Read<double>();
  s.slice_max_ms = r->Read<double>();
  s.alloc.alloc_calls = r->ReadVarU64();
  s.alloc.free_calls = r->ReadVarU64();
  s.alloc.bytes_requested = r->ReadVarU64();
  s.alloc.slab_allocs = r->ReadVarU64();
  s.alloc.slab_reuses = r->ReadVarU64();
  s.alloc.freelist_steals = r->ReadVarU64();
  s.alloc.remote_frees = r->ReadVarU64();
  s.alloc.direct_maps = r->ReadVarU64();
  s.alloc.direct_unmaps = r->ReadVarU64();
  s.shuffle_bytes.resize(r->ReadVarU64());
  for (auto& b : s.shuffle_bytes) b = r->ReadVarU64();
  return s;
}

}  // namespace deca::spark
