#ifndef DECA_SPARK_DIST_H_
#define DECA_SPARK_DIST_H_

#include <cstdint>
#include <string>
#include <vector>

#include "alloc/arena.h"
#include "common/bytes.h"
#include "exec/remote_task.h"
#include "memory/memory_manager.h"
#include "spark/metrics.h"

namespace deca::net {
class Transport;
struct NetStats;
}  // namespace deca::net

namespace deca::spark {

/// Where the engine runs: all executors in this process (the default,
/// deterministic-test backend) or one daemon process per executor with
/// the driver dispatching stages over the control-plane RPC protocol.
/// Results, GC counts, and fault counters are bit-identical across both.
enum class DistMode {
  kInProcess,
  kProcess,
};

const char* DistModeName(DistMode m);

/// This process's role in the SPMD program. C++ closures cannot ship
/// over RPC, so every process runs the same workload program: the driver
/// turns each stage into remote dispatch, a worker turns it into a serve
/// loop executing the driver's task envelopes, and between stages every
/// process folds the same broadcast collect blobs so driver-side state
/// (e.g. LR weights) advances in lockstep everywhere.
enum class DistRole {
  kLocal,   // in-process: stages run right here
  kDriver,  // dispatches task envelopes to executor daemons
  kWorker,  // one daemon hosting one executor, serving the driver
};

/// Control-plane tuning. Defaults favor fast tests; benches raise the
/// heartbeat interval via DECA_HEARTBEAT_MS etc.
struct ClusterKnobs {
  /// Liveness ping period (driver monitor thread).
  int heartbeat_interval_ms = 100;
  /// Consecutive missed heartbeats before reconnect probing starts.
  int heartbeat_miss_threshold = 3;
  /// Exponential-backoff reconnect probes before declaring death.
  int reconnect_probes = 3;
  /// Base of the exponential retry/probe backoff.
  int retry_backoff_base_ms = 20;
  /// Control RPC response deadline (dispatch + stage barriers).
  int rpc_deadline_ms = 20000;
  /// Connect retries toward a daemon that is still binding its port.
  int connect_attempts = 25;
  /// Executor daemon binary; empty = DECA_EXECUTORD env, then a path
  /// derived from the running binary's directory.
  std::string executord_path;

  /// Test hook: the driver monitor pretends this executor's next
  /// `test_suppress_heartbeats_count` pings were lost (never sent), so
  /// the miss -> probe path runs against a perfectly healthy daemon.
  int test_suppress_heartbeats_executor = -1;
  int test_suppress_heartbeats_count = 0;
};

/// Control-plane event counters, surfaced in RunReports as cluster.*.
/// Spawn/kill/respawn/dead/quarantine counts are deterministic for a
/// given seed; heartbeat and probe counts are wall-clock paced.
struct ClusterCounters {
  uint64_t executors_spawned = 0;
  uint64_t executors_killed = 0;
  uint64_t executors_respawned = 0;
  uint64_t executors_declared_dead = 0;
  uint64_t heartbeats_sent = 0;
  uint64_t heartbeat_misses = 0;
  uint64_t reconnect_probes = 0;
  uint64_t stage_quarantines = 0;
  uint64_t rpc_messages = 0;
};

/// One executor's observability plane, reported by its daemon in every
/// stage-done acknowledgment. The driver serves the SparkContext Total*
/// getters from the latest snapshots, so bench/report output is
/// identical to the in-process run (each daemon reports only its own
/// executor; the sum across daemons equals the in-process sum).
/// Job-level GC pause aggregate (SparkContext::TotalGcPauses): counters
/// summed across executor heaps, percentiles composed by max.
struct GcPauseAggregate {
  uint64_t mark_slices = 0;
  uint64_t pause_events = 0;
  double pause_p50_ms = 0;
  double pause_p99_ms = 0;
  double pause_max_ms = 0;
  double slice_p50_ms = 0;
  double slice_p99_ms = 0;
  double slice_max_ms = 0;
};

struct ExecutorSnapshot {
  double gc_pause_ms = 0;
  double concurrent_gc_ms = 0;
  uint64_t minor_gcs = 0;
  uint64_t full_gcs = 0;
  uint64_t oom_recoveries = 0;
  uint64_t cached_bytes = 0;
  uint64_t peak_cached_bytes = 0;
  uint64_t swapped_bytes = 0;
  uint64_t pressure_evictions = 0;
  /// Block-store tier plane (per-tier residency, hits, transitions).
  TierCounters tier;
  memory::MemoryStats memory;
  /// GC pause plane: mark-slice count, stop-the-world pause events, and
  /// pause/slice latency percentiles of this executor's heap. The driver
  /// sums the counters and composes percentiles by max across executors.
  uint64_t mark_slices = 0;
  uint64_t pause_events = 0;
  double pause_p50_ms = 0;
  double pause_p99_ms = 0;
  double pause_max_ms = 0;
  double slice_p50_ms = 0;
  double slice_p99_ms = 0;
  double slice_max_ms = 0;
  /// Native-allocator plane: this executor's PageAllocator counters
  /// (per-executor fields only; the process-wide arena fields stay zero
  /// here — the driver overlays them once after summing snapshots).
  alloc::AllocStats alloc;
  /// Local shuffle-payload bytes per shuffle id (this executor's
  /// deposits only; the driver sums across executors).
  std::vector<uint64_t> shuffle_bytes;

  void Encode(ByteWriter* w) const;
  static ExecutorSnapshot Decode(ByteReader* r);
};

/// Driver-side cluster seam the SparkContext dispatches through in
/// kDriver role. Implemented by cluster::ClusterManager; an interface so
/// spark does not depend on the cluster library (workloads wire it up).
class DistDriver {
 public:
  virtual ~DistDriver() = default;

  /// Executes one task attempt (or lineage replay) on `executor`'s
  /// daemon. Blocks until the outcome arrives. Throws
  /// fault::ExecutorLostError if the daemon died or stopped answering —
  /// the envelope is never resent (LaunchTask is not idempotent).
  virtual exec::RemoteTaskOutcome RunTask(
      int executor, const exec::RemoteTaskEnvelope& env) = 0;

  /// Stage barrier: broadcasts StageDone(stage, blobs) to every daemon
  /// (workers leave their serve loops and fold the same collect blobs),
  /// appends the entry to the program log used to fast-forward respawned
  /// daemons, and returns each executor's stats snapshot.
  virtual std::vector<ExecutorSnapshot> StageDone(
      int stage, bool collect,
      const std::vector<std::vector<uint8_t>>& blobs) = 0;

  /// Delivers SIGKILL to `executor`'s daemon and blocks until the
  /// heartbeat monitor has declared it dead (missed pings, then failed
  /// backoff probes) and the corpse is reaped.
  virtual void KillExecutor(int executor) = 0;

  /// Respawns `executor`'s daemon (next generation), re-registers it,
  /// fast-forwards it through the program log, and re-broadcasts the
  /// peer table. On return the daemon is serving the current stage.
  virtual void RecoverExecutor(int executor) = 0;

  /// Counts a quarantined stage: an executor died mid-stage and the
  /// stage's partial results were discarded, never merged.
  virtual void NoteStageQuarantine() = 0;

  virtual ClusterCounters counters() const = 0;
};

/// Worker-side command feed: the daemon's control server parses frames
/// and hands them to the worker program's serve loop. Implemented by
/// cluster::DaemonRuntime.
class DistWorker {
 public:
  virtual ~DistWorker() = default;

  struct Command {
    enum class Kind { kTask, kStageDone, kShutdown };
    Kind kind = Kind::kTask;
    exec::RemoteTaskEnvelope env;  // kTask
    int stage = -1;                // kStageDone
    std::vector<std::vector<uint8_t>> blobs;  // kStageDone collect payload
  };

  /// Blocks for the next driver command addressed to the serve loop.
  virtual Command NextCommand() = 0;
  /// Replies to the kTask command currently being served.
  virtual void Reply(const exec::RemoteTaskOutcome& outcome) = 0;
  /// Acknowledges the kStageDone command with this executor's snapshot.
  virtual void StageAck(const ExecutorSnapshot& snapshot) = 0;
};

/// Thrown out of a worker program's serve loop when the driver orders
/// shutdown mid-job; the daemon main catches it and exits cleanly (all
/// destructors run, spill directories are removed).
class WorkerShutdown {};

/// Internal wiring for one process of a distributed run. Not serialized;
/// filled in by cluster::ScopedJob (driver) or the daemon main (worker).
/// All pointers are borrowed.
struct ClusterRuntime {
  DistRole role = DistRole::kLocal;
  DistDriver* driver = nullptr;     // kDriver
  DistWorker* worker = nullptr;     // kWorker
  net::Transport* transport = nullptr;  // kWorker: the data-plane mesh
  net::NetStats* net_stats = nullptr;   // kWorker
  int my_executor = -1;             // kWorker
};

}  // namespace deca::spark

#endif  // DECA_SPARK_DIST_H_
