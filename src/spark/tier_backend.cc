#include "spark/tier_backend.h"

#include <cerrno>
#include <cstdio>
#include <cstring>

#include "common/clock.h"
#include "common/logging.h"

namespace deca::spark {

namespace {

void WriteFileBytes(const std::string& path, const uint8_t* data,
                    size_t size) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  DECA_CHECK(f != nullptr) << "cannot open swap file for writing: " << path
                           << ": " << std::strerror(errno);
  if (size > 0) {
    size_t n = std::fwrite(data, 1, size, f);
    DECA_CHECK_EQ(n, size);
  }
  std::fclose(f);
}

/// Reads a whole swap file into an allocator-backed buffer (arena slabs
/// under DECA_ARENA=1, counted `new[]` otherwise).
alloc::BytesPtr ReadFileBytes(const std::string& path,
                              alloc::PageAllocator* pa) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  DECA_CHECK(f != nullptr) << "cannot open swap file for reading: " << path
                           << ": " << std::strerror(errno);
  std::fseek(f, 0, SEEK_END);
  long size = std::ftell(f);
  std::fseek(f, 0, SEEK_SET);
  auto data = alloc::Bytes::New(pa, static_cast<size_t>(size));
  if (size > 0) {
    size_t n = std::fread(data->mutable_data(), 1, data->size(), f);
    DECA_CHECK_EQ(n, data->size());
  }
  std::fclose(f);
  return data;
}

}  // namespace

// -- OffHeapTier -------------------------------------------------------------

void OffHeapTier::Store(BlockKey key, PackedBlock block,
                        TaskMetrics* metrics) {
  (void)metrics;  // native memcpy-speed store; nothing worth attributing
  DECA_CHECK(block.valid());
  Drop(key);
  Slot slot;
  uint64_t bytes = block.size();
  slot.block = std::move(block);
  if (mm_ != nullptr) {
    // Overcommit is allowed (counting a denial when the pool is full) —
    // the CacheManager sheds overflow right after, same contract as heap
    // block puts.
    slot.reservation = mm_->Reserve(memory::Pool::kStorage, bytes);
  }
  blocks_.emplace(key, std::move(slot));
  AddResident(bytes);
}

PackedBlock OffHeapTier::Load(BlockKey key, TaskMetrics* metrics) const {
  (void)metrics;
  auto it = blocks_.find(key);
  if (it == blocks_.end()) return {};
  return it->second.block;
}

bool OffHeapTier::Contains(BlockKey key) const {
  return blocks_.find(key) != blocks_.end();
}

void OffHeapTier::Drop(BlockKey key) {
  auto it = blocks_.find(key);
  if (it == blocks_.end()) return;
  SubResident(it->second.block.size());
  blocks_.erase(it);  // the slot's reservation releases on destruction
}

void OffHeapTier::DropAll() {
  blocks_.clear();
  ZeroResident();
}

uint64_t OffHeapTier::reserved_bytes() const {
  uint64_t total = 0;
  for (const auto& [key, slot] : blocks_) total += slot.reservation.bytes();
  return total;
}

// -- DiskTier ----------------------------------------------------------------

DiskTier::~DiskTier() {
  for (const auto& [key, slot] : blocks_) std::remove(slot.path.c_str());
}

std::string DiskTier::SwapPath(BlockKey key) const {
  return dir_ + "/swap_e" + std::to_string(executor_id_) + "_r" +
         std::to_string(key.rdd_id) + "_p" + std::to_string(key.partition);
}

void DiskTier::Store(BlockKey key, PackedBlock block, TaskMetrics* metrics) {
  DECA_CHECK(block.valid());
  Drop(key);
  Slot slot;
  slot.level = block.level;
  slot.count = block.count;
  slot.bytes = block.size();
  slot.path = SwapPath(key);
  {
    ScopedTimerMs timer(&metrics->spill_ms);
    WriteFileBytes(slot.path, block.bytes->data(), block.bytes->size());
  }
  AddResident(slot.bytes);
  blocks_.emplace(key, std::move(slot));
}

PackedBlock DiskTier::Load(BlockKey key, TaskMetrics* metrics) const {
  auto it = blocks_.find(key);
  if (it == blocks_.end()) return {};
  PackedBlock block;
  block.level = it->second.level;
  block.count = it->second.count;
  {
    ScopedTimerMs timer(&metrics->spill_ms);
    block.bytes = ReadFileBytes(it->second.path, pa_);
  }
  return block;
}

bool DiskTier::Contains(BlockKey key) const {
  return blocks_.find(key) != blocks_.end();
}

void DiskTier::Drop(BlockKey key) {
  auto it = blocks_.find(key);
  if (it == blocks_.end()) return;
  std::remove(it->second.path.c_str());
  SubResident(it->second.bytes);
  blocks_.erase(it);
}

void DiskTier::DropAll() {
  for (const auto& [key, slot] : blocks_) std::remove(slot.path.c_str());
  blocks_.clear();
  ZeroResident();
}

}  // namespace deca::spark
