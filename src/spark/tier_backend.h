#ifndef DECA_SPARK_TIER_BACKEND_H_
#define DECA_SPARK_TIER_BACKEND_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "alloc/page_allocator.h"
#include "memory/memory_manager.h"
#include "spark/config.h"
#include "spark/metrics.h"

namespace deca::spark {

/// Identifies one cached block: (rdd id, partition). Workloads that
/// sub-divide a partition encode the granule as partition * 1024 + sub.
struct BlockKey {
  int rdd_id = 0;
  int partition = 0;

  bool operator<(const BlockKey& o) const {
    return rdd_id != o.rdd_id ? rdd_id < o.rdd_id : partition < o.partition;
  }
  bool operator==(const BlockKey& o) const {
    return rdd_id == o.rdd_id && partition == o.partition;
  }
};

/// Hash for the block store's hot lookup map (and any other hashed
/// container keyed by block).
struct BlockKeyHash {
  size_t operator()(const BlockKey& k) const {
    // Pack both ids into one word and finalize with a 64-bit mix
    // (splitmix64); rdd ids and partitions are small and sequential, so
    // identity hashing would cluster badly.
    uint64_t x = (static_cast<uint64_t>(static_cast<uint32_t>(k.rdd_id))
                  << 32) |
                 static_cast<uint32_t>(k.partition);
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return static_cast<size_t>(x ^ (x >> 31));
  }
};

/// One block's payload in packed form: Kryo-serialized records
/// (kMemoryObjects), the raw serialized byte run (kMemorySerialized), or
/// raw page bytes (kDecaPages, PageGroup::EncodeRaw). This is the common
/// currency of the lower tiers — T1 holds it in an off-heap buffer, T2 in
/// a swap file — and of the lazy read path (LoadedBlock::packed).
struct PackedBlock {
  StorageLevel level = StorageLevel::kMemoryObjects;
  uint32_t count = 0;
  // Arena-capable payload (alloc::Bytes keeps the vector's data()/size()
  // shape); under DECA_ARENA=1 these live in huge-page slab memory.
  alloc::BytesPtr bytes;

  bool valid() const { return bytes != nullptr; }
  uint64_t size() const { return bytes != nullptr ? bytes->size() : 0; }
};

/// A storage tier below the heap tier (T0): a keyed store of packed block
/// payloads. The CacheManager owns the per-block tier state machine and
/// the representation conversions (it has the heap and the record ops);
/// backends only hold bytes and account for them. Same concurrency
/// contract as the CacheManager: all mutation on the executor's mutator
/// thread, byte counters are relaxed atomics for driver metric reads.
class TierBackend {
 public:
  virtual ~TierBackend() = default;

  virtual const char* name() const = 0;
  virtual void Store(BlockKey key, PackedBlock block,
                     TaskMetrics* metrics) = 0;
  /// Loads a block's packed payload; `bytes == nullptr` when absent.
  virtual PackedBlock Load(BlockKey key, TaskMetrics* metrics) const = 0;
  virtual bool Contains(BlockKey key) const = 0;
  virtual void Drop(BlockKey key) = 0;
  virtual void DropAll() = 0;
  virtual uint64_t block_count() const = 0;

  /// Payload bytes currently resident in this tier.
  uint64_t resident_bytes() const {
    return resident_.load(std::memory_order_relaxed);
  }
  uint64_t peak_resident_bytes() const {
    return peak_.load(std::memory_order_relaxed);
  }

 protected:
  void AddResident(uint64_t bytes) {
    uint64_t now = resident_.fetch_add(bytes, std::memory_order_relaxed) +
                   bytes;
    if (now > peak_.load(std::memory_order_relaxed)) {
      peak_.store(now, std::memory_order_relaxed);
    }
  }
  void SubResident(uint64_t bytes) {
    resident_.fetch_sub(bytes, std::memory_order_relaxed);
  }
  void ZeroResident() { resident_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> resident_{0};
  std::atomic<uint64_t> peak_{0};
};

/// T1: compact serialized blocks in off-heap (native) buffers. Charged to
/// the storage pool through an explicit reservation per block, but
/// invisible to GC root scans — a full collection traces zero references
/// into this tier no matter how many blocks it holds.
class OffHeapTier : public TierBackend {
 public:
  /// `mm` may be null (standalone caches in tests): blocks are then held
  /// without pool accounting.
  explicit OffHeapTier(memory::ExecutorMemoryManager* mm) : mm_(mm) {}

  const char* name() const override { return "offheap"; }
  void Store(BlockKey key, PackedBlock block, TaskMetrics* metrics) override;
  PackedBlock Load(BlockKey key, TaskMetrics* metrics) const override;
  bool Contains(BlockKey key) const override;
  void Drop(BlockKey key) override;
  void DropAll() override;
  uint64_t block_count() const override { return blocks_.size(); }

  /// Sum of the live per-block storage reservations (accounting identity
  /// checks).
  uint64_t reserved_bytes() const;

 private:
  struct Slot {
    PackedBlock block;
    memory::MemoryReservation reservation;
  };

  memory::ExecutorMemoryManager* mm_;
  std::unordered_map<BlockKey, Slot, BlockKeyHash> blocks_;
};

/// T2: swap files on disk, one per block (Spark's MEMORY_AND_DISK spill
/// half). Owns the file lifecycle; payload bytes only, the CacheManager
/// keeps level/count in its entry.
class DiskTier : public TierBackend {
 public:
  /// `pa` (may be null) backs Load's read buffers: arena slabs under
  /// DECA_ARENA=1, counted `new[]` otherwise.
  DiskTier(std::string dir, int executor_id, alloc::PageAllocator* pa)
      : dir_(std::move(dir)), executor_id_(executor_id), pa_(pa) {}
  ~DiskTier() override;

  const char* name() const override { return "disk"; }
  /// Writes the payload to the block's swap file (disk time charged to
  /// the task's spill bucket).
  void Store(BlockKey key, PackedBlock block, TaskMetrics* metrics) override;
  /// Streams the payload back (spill time); the file stays on disk until
  /// Drop.
  PackedBlock Load(BlockKey key, TaskMetrics* metrics) const override;
  bool Contains(BlockKey key) const override;
  void Drop(BlockKey key) override;
  void DropAll() override;
  uint64_t block_count() const override { return blocks_.size(); }

 private:
  struct Slot {
    StorageLevel level;
    uint32_t count = 0;
    uint64_t bytes = 0;
    std::string path;
  };

  std::string SwapPath(BlockKey key) const;

  std::string dir_;
  int executor_id_;
  alloc::PageAllocator* pa_;
  std::unordered_map<BlockKey, Slot, BlockKeyHash> blocks_;
};

}  // namespace deca::spark

#endif  // DECA_SPARK_TIER_BACKEND_H_
