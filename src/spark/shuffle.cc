#include "spark/shuffle.h"

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>

#include "common/clock.h"

#include "common/logging.h"
#include "obs/trace.h"

namespace deca::spark {

// -- LocalShuffleService ------------------------------------------------------

LocalShuffleService::ShuffleData* LocalShuffleService::Find(int shuffle_id) const {
  std::lock_guard<std::mutex> lock(mu_);
  return &shuffles_[static_cast<size_t>(shuffle_id)];
}

int LocalShuffleService::RegisterShuffle(int num_reducers) {
  std::lock_guard<std::mutex> lock(mu_);
  ShuffleData& d = shuffles_.emplace_back();
  d.num_reducers = num_reducers;
  d.buckets.reserve(static_cast<size_t>(num_reducers));
  for (int r = 0; r < num_reducers; ++r) {
    d.buckets.push_back(std::make_unique<ReducerBucket>());
  }
  return static_cast<int>(shuffles_.size() - 1);
}

void LocalShuffleService::PutChunk(int shuffle_id, int reducer,
                                   int map_partition,
                                   std::vector<uint8_t> bytes,
                                   const net::ChunkMeta& meta) {
  (void)meta;  // record boundaries only matter on a wire
  if (bytes.empty()) return;
  obs::Instant(obs::Cat::kShuffle, "shuffle_put",
               static_cast<double>(bytes.size()),
               static_cast<double>(reducer));
  ReducerBucket& b = *Find(shuffle_id)->buckets[static_cast<size_t>(reducer)];
  std::lock_guard<std::mutex> lock(b.mu);
  // Keep chunks sorted by map partition id so the reducer reads them in
  // the same order regardless of map-task completion order.
  auto it = std::upper_bound(b.mappers.begin(), b.mappers.end(),
                             map_partition);
  size_t pos = static_cast<size_t>(it - b.mappers.begin());
  if (pos > 0 && b.mappers[pos - 1] == map_partition) {
    // A retried (or re-executed after map-output loss) map task replaces
    // its previous deposit.
    b.chunks[pos - 1] = std::move(bytes);
    return;
  }
  b.mappers.insert(it, map_partition);
  b.chunks.insert(b.chunks.begin() + static_cast<ptrdiff_t>(pos),
                  std::move(bytes));
}

void LocalShuffleService::DropMapOutput(int shuffle_id, int map_partition) {
  for (auto& bucket : Find(shuffle_id)->buckets) {
    std::lock_guard<std::mutex> lock(bucket->mu);
    auto it = std::lower_bound(bucket->mappers.begin(), bucket->mappers.end(),
                               map_partition);
    if (it == bucket->mappers.end() || *it != map_partition) continue;
    size_t pos = static_cast<size_t>(it - bucket->mappers.begin());
    bucket->mappers.erase(it);
    bucket->chunks.erase(bucket->chunks.begin() +
                         static_cast<ptrdiff_t>(pos));
  }
}

const std::vector<std::vector<uint8_t>>& LocalShuffleService::GetChunks(
    int shuffle_id, int reducer) const {
  const auto& chunks =
      Find(shuffle_id)->buckets[static_cast<size_t>(reducer)]->chunks;
  obs::Instant(obs::Cat::kShuffle, "shuffle_fetch",
               static_cast<double>(chunks.size()),
               static_cast<double>(reducer));
  return chunks;
}

int LocalShuffleService::num_reducers(int shuffle_id) const {
  return Find(shuffle_id)->num_reducers;
}

int LocalShuffleService::num_shuffles() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<int>(shuffles_.size());
}

uint64_t LocalShuffleService::total_bytes(int shuffle_id) const {
  uint64_t total = 0;
  for (const auto& bucket : Find(shuffle_id)->buckets) {
    for (const auto& chunk : bucket->chunks) total += chunk.size();
  }
  return total;
}

void LocalShuffleService::Release(int shuffle_id) {
  for (auto& bucket : Find(shuffle_id)->buckets) {
    bucket->mappers.clear();
    bucket->chunks.clear();
    bucket->mappers.shrink_to_fit();
    bucket->chunks.shrink_to_fit();
  }
}

// -- ObjectHashShuffleBuffer --------------------------------------------------

ObjectHashShuffleBuffer::ObjectHashShuffleBuffer(jvm::Heap* heap,
                                                 const ShuffleOps* ops,
                                                 uint32_t initial_capacity)
    : heap_(heap), ops_(ops), capacity_(initial_capacity) {
  // Allocate before registering the root provider: if the allocation
  // throws (OOM), the heap must not keep a pointer to this dying buffer.
  jvm::ObjRef table = heap_->AllocateArray(
      heap_->registry()->ref_array_class(), 2 * capacity_);
  heap_->AddRootProvider(&table_root_);
  table_root_.refs().push_back(table);
}

ObjectHashShuffleBuffer::~ObjectHashShuffleBuffer() {
  heap_->RemoveRootProvider(&table_root_);
}

void ObjectHashShuffleBuffer::Insert(jvm::ObjRef key0, jvm::ObjRef value0) {
  jvm::HandleScope scope(heap_);
  jvm::Handle hk = scope.Make(key0);
  jvm::Handle hv = scope.Make(value0);
  if ((size_ + 1) * 10 > capacity_ * 7) Grow();
  uint64_t h = ops_->key_hash(heap_, hk.get());
  for (uint32_t probe = 0;; ++probe) {
    uint32_t i = static_cast<uint32_t>((h + probe) % capacity_);
    jvm::ObjRef k = heap_->GetRefElem(table(), 2 * i);
    if (k == jvm::kNullRef) {
      heap_->SetRefElem(table(), 2 * i, hk.get());
      heap_->SetRefElem(table(), 2 * i + 1, hv.get());
      ++size_;
      estimated_bytes_ += ops_->entry_bytes(heap_, hk.get(), hv.get());
      return;
    }
    if (ops_->key_equals(heap_, k, hk.get())) {
      jvm::ObjRef agg = heap_->GetRefElem(table(), 2 * i + 1);
      // Eager combining: like Spark's aggregator this allocates a fresh
      // aggregate object, killing the previous one.
      jvm::ObjRef merged = ops_->combine(heap_, agg, hv.get());
      heap_->SetRefElem(table(), 2 * i + 1, merged);
      return;
    }
  }
}

void ObjectHashShuffleBuffer::Grow() {
  uint32_t new_capacity = capacity_ * 2;
  jvm::ObjRef fresh = heap_->AllocateArray(
      heap_->registry()->ref_array_class(), 2 * new_capacity);
  table_root_.refs().push_back(fresh);  // root it during rehash
  jvm::ObjRef old = table_root_.refs()[0];
  fresh = table_root_.refs()[1];
  for (uint32_t i = 0; i < capacity_; ++i) {
    jvm::ObjRef k = heap_->GetRefElem(old, 2 * i);
    if (k == jvm::kNullRef) continue;
    jvm::ObjRef v = heap_->GetRefElem(old, 2 * i + 1);
    uint64_t h = ops_->key_hash(heap_, k);
    for (uint32_t probe = 0;; ++probe) {
      uint32_t j = static_cast<uint32_t>((h + probe) % new_capacity);
      if (heap_->GetRefElem(fresh, 2 * j) == jvm::kNullRef) {
        heap_->SetRefElem(fresh, 2 * j, k);
        heap_->SetRefElem(fresh, 2 * j + 1, v);
        break;
      }
    }
  }
  table_root_.refs().erase(table_root_.refs().begin());
  capacity_ = new_capacity;
}

void ObjectHashShuffleBuffer::ForEach(
    const std::function<void(jvm::ObjRef, jvm::ObjRef)>& fn) const {
  for (uint32_t i = 0; i < capacity_; ++i) {
    jvm::ObjRef k = heap_->GetRefElem(table(), 2 * i);
    if (k == jvm::kNullRef) continue;
    fn(k, heap_->GetRefElem(table(), 2 * i + 1));
  }
}

void ObjectHashShuffleBuffer::Clear() {
  size_ = 0;
  estimated_bytes_ = 0;
  capacity_ = 64;
  table_root_.refs().clear();
  table_root_.refs().push_back(heap_->AllocateArray(
      heap_->registry()->ref_array_class(), 2 * capacity_));
}

// -- DecaHashShuffleBuffer ----------------------------------------------------

constexpr core::SegPtr DecaHashShuffleBuffer::kEmpty;

DecaHashShuffleBuffer::DecaHashShuffleBuffer(jvm::Heap* heap,
                                             const ShuffleOps* ops,
                                             uint32_t page_bytes,
                                             uint32_t initial_capacity)
    : heap_(heap),
      ops_(ops),
      pages_(std::make_shared<core::PageGroup>(heap, page_bytes)),
      slots_(initial_capacity, kEmpty),
      entry_bytes_(ops->deca_key_bytes + ops->deca_value_bytes) {
  DECA_CHECK_GT(ops->deca_key_bytes, 0u)
      << "Deca shuffle requires SFST keys/values";
}

void DecaHashShuffleBuffer::Insert(const uint8_t* key, const uint8_t* value) {
  if ((size_ + 1) * 10 > slots_.size() * 7) Grow();
  uint64_t h = ops_->deca_key_hash(key);
  for (size_t probe = 0;; ++probe) {
    size_t i = (h + probe) % slots_.size();
    if (slots_[i] == kEmpty) {
      core::SegPtr seg = pages_->Append(entry_bytes_);
      uint8_t* p = pages_->Resolve(seg);
      std::memcpy(p, key, ops_->deca_key_bytes);
      std::memcpy(p + ops_->deca_key_bytes, value, ops_->deca_value_bytes);
      slots_[i] = seg;
      ++size_;
      return;
    }
    uint8_t* p = pages_->Resolve(slots_[i]);
    if (std::memcmp(p, key, ops_->deca_key_bytes) == 0) {
      // In-place combining: the aggregate's page segment is reused
      // (paper Section 4.3.2) — no allocation, nothing for the GC.
      ops_->deca_combine(p + ops_->deca_key_bytes, value);
      return;
    }
  }
}

void DecaHashShuffleBuffer::Grow() {
  std::vector<core::SegPtr> fresh(slots_.size() * 2, kEmpty);
  for (core::SegPtr s : slots_) {
    if (s == kEmpty) continue;
    uint64_t h = ops_->deca_key_hash(pages_->Resolve(s));
    for (size_t probe = 0;; ++probe) {
      size_t j = (h + probe) % fresh.size();
      if (fresh[j] == kEmpty) {
        fresh[j] = s;
        break;
      }
    }
  }
  slots_.swap(fresh);
}

void DecaHashShuffleBuffer::ForEach(
    const std::function<void(const uint8_t*)>& fn) const {
  for (core::SegPtr s : slots_) {
    if (s == kEmpty) continue;
    fn(pages_->Resolve(s));
  }
}

void DecaHashShuffleBuffer::Clear() {
  pages_ = std::make_shared<core::PageGroup>(heap_, pages_->page_bytes());
  slots_.assign(64, kEmpty);
  size_ = 0;
}

// -- ObjectGroupByBuffer ------------------------------------------------------

ObjectGroupByBuffer::ObjectGroupByBuffer(jvm::Heap* heap,
                                         const ShuffleOps* ops,
                                         uint32_t initial_capacity)
    : heap_(heap), ops_(ops), capacity_(initial_capacity) {
  // Allocate before registering the root provider (see
  // ObjectHashShuffleBuffer): an OOM here must not leave a dangling root.
  jvm::HandleScope scope(heap_);
  jvm::Handle keys = scope.Make(heap_->AllocateArray(
      heap_->registry()->ref_array_class(), capacity_));
  jvm::Handle vals = scope.Make(heap_->AllocateArray(
      heap_->registry()->ref_array_class(), capacity_));
  heap_->AddRootProvider(&roots_);
  roots_.refs().push_back(keys.get());
  roots_.refs().push_back(vals.get());
  counts_.assign(capacity_, 0);
}

ObjectGroupByBuffer::~ObjectGroupByBuffer() {
  heap_->RemoveRootProvider(&roots_);
}

void ObjectGroupByBuffer::Insert(jvm::ObjRef key0, jvm::ObjRef value0) {
  jvm::HandleScope scope(heap_);
  jvm::Handle hk = scope.Make(key0);
  jvm::Handle hv = scope.Make(value0);
  if ((size_ + 1) * 10 > capacity_ * 7) Grow();
  uint64_t h = ops_->key_hash(heap_, hk.get());
  for (uint32_t probe = 0;; ++probe) {
    uint32_t i = static_cast<uint32_t>((h + probe) % capacity_);
    jvm::ObjRef k = heap_->GetRefElem(keys(), i);
    if (k == jvm::kNullRef) {
      jvm::ObjRef arr =
          heap_->AllocateArray(heap_->registry()->ref_array_class(), 4);
      heap_->SetRefElem(keys(), i, hk.get());
      heap_->SetRefElem(vals(), i, arr);
      heap_->SetRefElem(arr, 0, hv.get());
      counts_[i] = 1;
      ++size_;
      estimated_bytes_ += ops_->entry_bytes(heap_, hk.get(), hv.get()) +
                          jvm::kHeaderBytes + 16;
      return;
    }
    if (ops_->key_equals(heap_, k, hk.get())) {
      jvm::ObjRef arr = heap_->GetRefElem(vals(), i);
      uint32_t len = heap_->ArrayLength(arr);
      if (counts_[i] == len) {
        // Grow the group's value array (ArrayBuffer doubling).
        jvm::ObjRef bigger = heap_->AllocateArray(
            heap_->registry()->ref_array_class(), len * 2);
        arr = heap_->GetRefElem(vals(), i);  // re-read after allocation
        for (uint32_t j = 0; j < len; ++j) {
          heap_->SetRefElem(bigger, j, heap_->GetRefElem(arr, j));
        }
        heap_->SetRefElem(vals(), i, bigger);
        arr = bigger;
        estimated_bytes_ += 4ull * len;
      }
      heap_->SetRefElem(arr, counts_[i], hv.get());
      counts_[i] += 1;
      estimated_bytes_ +=
          ops_->entry_bytes(heap_, hk.get(), hv.get());
      return;
    }
  }
}

void ObjectGroupByBuffer::Grow() {
  uint32_t new_capacity = capacity_ * 2;
  // Allocate both new tables first (rooted during rehash).
  roots_.refs().push_back(heap_->AllocateArray(
      heap_->registry()->ref_array_class(), new_capacity));
  roots_.refs().push_back(heap_->AllocateArray(
      heap_->registry()->ref_array_class(), new_capacity));
  std::vector<uint32_t> new_counts(new_capacity, 0);
  jvm::ObjRef old_keys = roots_.refs()[0];
  jvm::ObjRef old_vals = roots_.refs()[1];
  jvm::ObjRef new_keys = roots_.refs()[2];
  jvm::ObjRef new_vals = roots_.refs()[3];
  for (uint32_t i = 0; i < capacity_; ++i) {
    jvm::ObjRef k = heap_->GetRefElem(old_keys, i);
    if (k == jvm::kNullRef) continue;
    uint64_t h = ops_->key_hash(heap_, k);
    for (uint32_t probe = 0;; ++probe) {
      uint32_t j = static_cast<uint32_t>((h + probe) % new_capacity);
      if (heap_->GetRefElem(new_keys, j) == jvm::kNullRef) {
        heap_->SetRefElem(new_keys, j, k);
        heap_->SetRefElem(new_vals, j, heap_->GetRefElem(old_vals, i));
        new_counts[j] = counts_[i];
        break;
      }
    }
  }
  roots_.refs().erase(roots_.refs().begin(), roots_.refs().begin() + 2);
  counts_.swap(new_counts);
  capacity_ = new_capacity;
}

void ObjectGroupByBuffer::ForEach(
    const std::function<void(jvm::ObjRef, jvm::ObjRef, uint32_t)>& fn) const {
  for (uint32_t i = 0; i < capacity_; ++i) {
    jvm::ObjRef k = heap_->GetRefElem(keys(), i);
    if (k == jvm::kNullRef) continue;
    fn(k, heap_->GetRefElem(vals(), i), counts_[i]);
  }
}

// -- DecaStaticHashShuffleBuffer ----------------------------------------------

DecaStaticHashShuffleBuffer::DecaStaticHashShuffleBuffer(
    jvm::Heap* heap, const ShuffleOps* ops, uint32_t page_bytes,
    uint32_t initial_capacity)
    : heap_(heap), ops_(ops), page_bytes_(page_bytes) {
  DECA_CHECK_GT(ops->deca_key_bytes, 0u);
  slot_bytes_ = static_cast<uint32_t>(
      AlignUp(1 + ops->deca_key_bytes + ops->deca_value_bytes, 8));
  slots_per_page_ = page_bytes_ / slot_bytes_;
  DECA_CHECK_GT(slots_per_page_, 0u);
  capacity_ = initial_capacity;
  pages_ = MakeTable(capacity_);
}

std::shared_ptr<core::PageGroup> DecaStaticHashShuffleBuffer::MakeTable(
    uint32_t capacity) {
  auto table = std::make_shared<core::PageGroup>(heap_, page_bytes_);
  uint32_t pages = (capacity + slots_per_page_ - 1) / slots_per_page_;
  for (uint32_t i = 0; i < pages; ++i) {
    // Materialize full pages so any slot offset resolves; fresh pages are
    // zeroed by the allocator (occupancy tag 0 = empty).
    table->Append(slots_per_page_ * slot_bytes_);
  }
  return table;
}

void DecaStaticHashShuffleBuffer::Insert(const uint8_t* key,
                                         const uint8_t* value) {
  if ((size_ + 1) * 10 > capacity_ * 7) Grow();
  uint64_t h = ops_->deca_key_hash(key);
  for (uint32_t probe = 0;; ++probe) {
    uint32_t i = static_cast<uint32_t>((h + probe) % capacity_);
    uint8_t* slot = Slot(i);
    if (slot[0] == 0) {
      slot[0] = 1;
      std::memcpy(slot + 1, key, ops_->deca_key_bytes);
      std::memcpy(slot + 1 + ops_->deca_key_bytes, value,
                  ops_->deca_value_bytes);
      ++size_;
      return;
    }
    if (std::memcmp(slot + 1, key, ops_->deca_key_bytes) == 0) {
      ops_->deca_combine(slot + 1 + ops_->deca_key_bytes, value);
      return;
    }
  }
}

void DecaStaticHashShuffleBuffer::Grow() {
  uint32_t old_capacity = capacity_;
  auto old_pages = pages_;
  uint32_t old_spp = slots_per_page_;
  capacity_ = old_capacity * 2;
  pages_ = MakeTable(capacity_);
  for (uint32_t i = 0; i < old_capacity; ++i) {
    uint8_t* slot =
        old_pages->Resolve({i / old_spp, (i % old_spp) * slot_bytes_});
    if (slot[0] == 0) continue;
    uint64_t h = ops_->deca_key_hash(slot + 1);
    for (uint32_t probe = 0;; ++probe) {
      uint32_t j = static_cast<uint32_t>((h + probe) % capacity_);
      uint8_t* dst = Slot(j);
      if (dst[0] == 0) {
        std::memcpy(dst, slot, slot_bytes_);
        break;
      }
    }
  }
}

void DecaStaticHashShuffleBuffer::ForEach(
    const std::function<void(const uint8_t*)>& fn) const {
  for (uint32_t i = 0; i < capacity_; ++i) {
    uint8_t* slot = Slot(i);
    if (slot[0] != 0) fn(slot + 1);
  }
}

// -- DecaSortSpillWriter --------------------------------------------------------

DecaSortSpillWriter::DecaSortSpillWriter(jvm::Heap* heap, uint32_t page_bytes,
                                         std::string spill_dir, Less less)
    : heap_(heap),
      page_bytes_(page_bytes),
      mm_(heap->memory_manager()),
      dir_(std::move(spill_dir)),
      less_(std::move(less)),
      pages_(std::make_shared<core::PageGroup>(heap, page_bytes)) {}

DecaSortSpillWriter::~DecaSortSpillWriter() {
  for (const auto& f : files_) std::remove(f.c_str());
}

void DecaSortSpillWriter::Append(const uint8_t* data, uint32_t bytes) {
  // Spill is reservation-denial driven: before committing to a fresh
  // page, probe the execution pool (which may first evict storage down to
  // its floor). Denied -> sort and spill the current run, freeing its
  // pages, then start the new run.
  if (mm_ != nullptr && pages_->page_count() > 0 &&
      pages_->NeedsNewPage(bytes) &&
      !mm_->TryExecutionRoom(pages_->page_cost_bytes())) {
    SpillCurrentRun();
  }
  core::SegPtr seg = pages_->Append(bytes);
  std::memcpy(pages_->Resolve(seg), data, bytes);
  entries_.emplace_back(seg, bytes);
}

void DecaSortSpillWriter::SpillCurrentRun() {
  if (entries_.empty()) return;
  std::sort(entries_.begin(), entries_.end(),
            [&](const auto& a, const auto& b) {
              return less_(pages_->Resolve(a.first),
                           pages_->Resolve(b.first));
            });
  std::string path = dir_ + "/sortspill_" + std::to_string(files_.size()) +
                     "_" + std::to_string(reinterpret_cast<uintptr_t>(this));
  std::FILE* f = std::fopen(path.c_str(), "wb");
  DECA_CHECK(f != nullptr) << "cannot open spill file for writing: " << path
                           << ": " << std::strerror(errno);
  for (const auto& [seg, bytes] : entries_) {
    // Decomposed bytes go to disk as-is, length-prefixed.
    std::fwrite(&bytes, sizeof(bytes), 1, f);
    std::fwrite(pages_->Resolve(seg), 1, bytes, f);
    spilled_bytes_ += bytes + sizeof(bytes);
  }
  std::fclose(f);
  files_.push_back(path);
  entries_.clear();
  pages_ = std::make_shared<core::PageGroup>(heap_, page_bytes_);
}

void DecaSortSpillWriter::Merge(
    const std::function<void(const uint8_t*, uint32_t)>& fn,
    double* spill_ms) {
  Stopwatch sw;
  // Sort the in-memory run.
  std::sort(entries_.begin(), entries_.end(),
            [&](const auto& a, const auto& b) {
              return less_(pages_->Resolve(a.first),
                           pages_->Resolve(b.first));
            });
  // One cursor per spilled run, each holding a single record in an
  // allocator-backed scratch buffer (arena slabs under DECA_ARENA=1).
  struct Run {
    std::FILE* file = nullptr;
    alloc::ScratchBuffer record;
    uint32_t size = 0;
    bool Next() {
      uint32_t bytes = 0;
      if (std::fread(&bytes, sizeof(bytes), 1, file) != 1) return false;
      record.Reserve(bytes);
      size = bytes;
      return std::fread(record.data(), 1, bytes, file) == bytes;
    }
  };
  std::vector<Run> runs;
  runs.reserve(files_.size());
  for (size_t i = 0; i < files_.size(); ++i) {
    runs.push_back(Run{nullptr,
                       alloc::ScratchBuffer(heap_->page_allocator()), 0});
    runs[i].file = std::fopen(files_[i].c_str(), "rb");
    DECA_CHECK(runs[i].file != nullptr)
        << "cannot open spill file for reading: " << files_[i] << ": "
        << std::strerror(errno);
    DECA_CHECK(runs[i].Next());
  }
  size_t mem_pos = 0;
  std::vector<bool> run_alive(runs.size(), true);
  size_t alive = runs.size();
  while (alive > 0 || mem_pos < entries_.size()) {
    // Pick the smallest head among spilled runs and the in-memory run.
    int best = -1;
    const uint8_t* best_rec = nullptr;
    for (size_t i = 0; i < runs.size(); ++i) {
      if (!run_alive[i]) continue;
      if (best_rec == nullptr || less_(runs[i].record.data(), best_rec)) {
        best = static_cast<int>(i);
        best_rec = runs[i].record.data();
      }
    }
    bool take_memory = false;
    if (mem_pos < entries_.size()) {
      const uint8_t* mem_rec = pages_->Resolve(entries_[mem_pos].first);
      if (best_rec == nullptr || less_(mem_rec, best_rec)) {
        take_memory = true;
      }
    }
    if (take_memory) {
      fn(pages_->Resolve(entries_[mem_pos].first), entries_[mem_pos].second);
      ++mem_pos;
    } else {
      Run& r = runs[static_cast<size_t>(best)];
      fn(r.record.data(), r.size);
      if (!r.Next()) {
        run_alive[static_cast<size_t>(best)] = false;
        --alive;
      }
    }
  }
  for (auto& r : runs) {
    if (r.file != nullptr) std::fclose(r.file);
  }
  if (spill_ms != nullptr) *spill_ms += sw.ElapsedMillis();
}

// -- DecaSortShuffleBuffer ----------------------------------------------------

DecaSortShuffleBuffer::DecaSortShuffleBuffer(jvm::Heap* heap,
                                             uint32_t page_bytes)
    : pages_(std::make_shared<core::PageGroup>(heap, page_bytes)) {}

core::SegPtr DecaSortShuffleBuffer::Append(const uint8_t* data,
                                           uint32_t bytes) {
  core::SegPtr seg = pages_->Append(bytes);
  std::memcpy(pages_->Resolve(seg), data, bytes);
  entries_.emplace_back(seg, bytes);
  return seg;
}

void DecaSortShuffleBuffer::SortAndVisit(
    const std::function<bool(const uint8_t*, const uint8_t*)>& less,
    const std::function<void(const uint8_t*, uint32_t)>& fn) {
  std::sort(entries_.begin(), entries_.end(),
            [&](const auto& a, const auto& b) {
              return less(pages_->Resolve(a.first),
                          pages_->Resolve(b.first));
            });
  for (const auto& [seg, bytes] : entries_) {
    fn(pages_->Resolve(seg), bytes);
  }
}

}  // namespace deca::spark
