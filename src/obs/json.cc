#include "obs/json.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace deca::obs {

const JsonValue* JsonValue::Find(std::string_view key) const {
  if (type != Type::kObject) return nullptr;
  for (const auto& [k, v] : obj) {
    if (k == key) return &v;
  }
  return nullptr;
}

double JsonValue::Num(std::string_view key, double def) const {
  const JsonValue* v = Find(key);
  return v != nullptr && v->is(Type::kNumber) ? v->number : def;
}

std::string JsonValue::Str(std::string_view key, std::string_view def) const {
  const JsonValue* v = Find(key);
  return v != nullptr && v->is(Type::kString) ? v->str : std::string(def);
}

bool JsonValue::Bool(std::string_view key, bool def) const {
  const JsonValue* v = Find(key);
  return v != nullptr && v->is(Type::kBool) ? v->boolean : def;
}

namespace {

/// Recursive-descent JSON parser over a string_view.
class Parser {
 public:
  Parser(std::string_view text, std::string* err) : text_(text), err_(err) {}

  bool Parse(JsonValue* out) {
    SkipWs();
    if (!Value(out, /*depth=*/0)) return false;
    SkipWs();
    if (pos_ != text_.size()) return Fail("trailing characters");
    return true;
  }

 private:
  static constexpr int kMaxDepth = 64;

  bool Fail(const char* what) {
    if (err_ != nullptr) {
      *err_ = std::string("JSON parse error at byte ") +
              std::to_string(pos_) + ": " + what;
    }
    return false;
  }

  void SkipWs() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool Literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return Fail("bad literal");
    pos_ += lit.size();
    return true;
  }

  bool Value(JsonValue* out, int depth) {
    if (depth > kMaxDepth) return Fail("nesting too deep");
    if (pos_ >= text_.size()) return Fail("unexpected end");
    char c = text_[pos_];
    switch (c) {
      case '{':
        return Object(out, depth);
      case '[':
        return Array(out, depth);
      case '"':
        out->type = JsonValue::Type::kString;
        return String(&out->str);
      case 't':
        out->type = JsonValue::Type::kBool;
        out->boolean = true;
        return Literal("true");
      case 'f':
        out->type = JsonValue::Type::kBool;
        out->boolean = false;
        return Literal("false");
      case 'n':
        out->type = JsonValue::Type::kNull;
        return Literal("null");
      default:
        return Number(out);
    }
  }

  bool Object(JsonValue* out, int depth) {
    out->type = JsonValue::Type::kObject;
    ++pos_;  // '{'
    SkipWs();
    if (pos_ < text_.size() && text_[pos_] == '}') {
      ++pos_;
      return true;
    }
    while (true) {
      SkipWs();
      std::string key;
      if (pos_ >= text_.size() || text_[pos_] != '"' || !String(&key)) {
        return Fail("expected object key");
      }
      SkipWs();
      if (pos_ >= text_.size() || text_[pos_] != ':') return Fail("expected ':'");
      ++pos_;
      SkipWs();
      JsonValue v;
      if (!Value(&v, depth + 1)) return false;
      out->obj.emplace_back(std::move(key), std::move(v));
      SkipWs();
      if (pos_ >= text_.size()) return Fail("unterminated object");
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == '}') {
        ++pos_;
        return true;
      }
      return Fail("expected ',' or '}'");
    }
  }

  bool Array(JsonValue* out, int depth) {
    out->type = JsonValue::Type::kArray;
    ++pos_;  // '['
    SkipWs();
    if (pos_ < text_.size() && text_[pos_] == ']') {
      ++pos_;
      return true;
    }
    while (true) {
      SkipWs();
      JsonValue v;
      if (!Value(&v, depth + 1)) return false;
      out->arr.push_back(std::move(v));
      SkipWs();
      if (pos_ >= text_.size()) return Fail("unterminated array");
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == ']') {
        ++pos_;
        return true;
      }
      return Fail("expected ',' or ']'");
    }
  }

  bool String(std::string* out) {
    ++pos_;  // opening quote
    out->clear();
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (c == '"') {
        ++pos_;
        return true;
      }
      if (c == '\\') {
        ++pos_;
        if (pos_ >= text_.size()) break;
        char e = text_[pos_++];
        switch (e) {
          case '"':
            out->push_back('"');
            break;
          case '\\':
            out->push_back('\\');
            break;
          case '/':
            out->push_back('/');
            break;
          case 'b':
            out->push_back('\b');
            break;
          case 'f':
            out->push_back('\f');
            break;
          case 'n':
            out->push_back('\n');
            break;
          case 'r':
            out->push_back('\r');
            break;
          case 't':
            out->push_back('\t');
            break;
          case 'u': {
            if (pos_ + 4 > text_.size()) return Fail("bad \\u escape");
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              char h = text_[pos_++];
              code <<= 4;
              if (h >= '0' && h <= '9') {
                code |= static_cast<unsigned>(h - '0');
              } else if (h >= 'a' && h <= 'f') {
                code |= static_cast<unsigned>(h - 'a' + 10);
              } else if (h >= 'A' && h <= 'F') {
                code |= static_cast<unsigned>(h - 'A' + 10);
              } else {
                return Fail("bad \\u escape");
              }
            }
            // UTF-8 encode the BMP code point (we never emit surrogates).
            if (code < 0x80) {
              out->push_back(static_cast<char>(code));
            } else if (code < 0x800) {
              out->push_back(static_cast<char>(0xC0 | (code >> 6)));
              out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
            } else {
              out->push_back(static_cast<char>(0xE0 | (code >> 12)));
              out->push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
              out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
            }
            break;
          }
          default:
            return Fail("bad escape");
        }
        continue;
      }
      out->push_back(c);
      ++pos_;
    }
    return Fail("unterminated string");
  }

  bool Number(JsonValue* out) {
    size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) return Fail("expected value");
    std::string num(text_.substr(start, pos_ - start));
    char* end = nullptr;
    double v = std::strtod(num.c_str(), &end);
    if (end != num.c_str() + num.size()) return Fail("bad number");
    out->type = JsonValue::Type::kNumber;
    out->number = v;
    return true;
  }

  std::string_view text_;
  size_t pos_ = 0;
  std::string* err_;
};

}  // namespace

bool ParseJson(std::string_view text, JsonValue* out, std::string* err) {
  return Parser(text, err).Parse(out);
}

std::string JsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

std::string JsonNumber(double v) {
  if (!std::isfinite(v)) return "null";
  char buf[40];
  // Try the shortest representation that round-trips exactly, fall back
  // to full %.17g precision.
  for (int prec = 1; prec <= 17; ++prec) {
    std::snprintf(buf, sizeof buf, "%.*g", prec, v);
    if (std::strtod(buf, nullptr) == v) break;
  }
  return buf;
}

}  // namespace deca::obs
