#include "obs/trace.h"

#include <algorithm>
#include <map>
#include <tuple>

#include "common/logging.h"

namespace deca::obs {

const char* CatName(Cat c) {
  switch (c) {
    case Cat::kStage:
      return "stage";
    case Cat::kSched:
      return "sched";
    case Cat::kTask:
      return "task";
    case Cat::kGc:
      return "gc";
    case Cat::kShuffle:
      return "shuffle";
    case Cat::kCache:
      return "cache";
    case Cat::kMemory:
      return "memory";
    case Cat::kNet:
      return "net";
    case Cat::kEpoch:
      return "epoch";
    case Cat::kCluster:
      return "cluster";
  }
  return "?";
}

bool CanonicalLess(const TraceEvent& a, const TraceEvent& b) {
  return std::tie(a.stage, a.partition, a.attempt, a.seq) <
         std::tie(b.stage, b.partition, b.attempt, b.seq);
}

bool SameContent(const TraceEvent& a, const TraceEvent& b) {
  return a.stage == b.stage && a.partition == b.partition &&
         a.attempt == b.attempt && a.seq == b.seq && a.cat == b.cat &&
         a.executor == b.executor && a.arg0 == b.arg0 && a.arg1 == b.arg1 &&
         std::strncmp(a.name, b.name, TraceEvent::kNameBytes) == 0;
}

TraceRecorder::TraceRecorder(int executor, uint32_t capacity)
    : ring_(capacity), executor_(executor) {
  DECA_CHECK_GT(capacity, 0u);
}

void TraceRecorder::Drain(std::vector<TraceEvent>* out) {
  for (uint64_t i = tail_; i != head_; ++i) {
    out->push_back(ring_[i % ring_.size()]);
  }
  tail_ = head_;
}

namespace {
thread_local TraceRecorder* t_current = nullptr;
}  // namespace

TraceRecorder* Current() { return t_current; }

ScopedRecorder::ScopedRecorder(TraceRecorder* r) : prev_(t_current) {
  t_current = r;
}

ScopedRecorder::~ScopedRecorder() { t_current = prev_; }

std::vector<SpanAgg> TraceLog::Aggregate() const {
  std::map<std::pair<std::string, std::string>, SpanAgg> by_key;
  for (const TraceEvent& ev : events) {
    SpanAgg& agg = by_key[{CatName(ev.cat), ev.name}];
    if (agg.count == 0) {
      agg.cat = CatName(ev.cat);
      agg.name = ev.name;
    }
    agg.count += 1;
    if (!ev.instant()) agg.total_ms += static_cast<double>(ev.dur_ns) / 1e6;
  }
  std::vector<SpanAgg> out;
  out.reserve(by_key.size());
  for (auto& [key, agg] : by_key) out.push_back(std::move(agg));
  return out;
}

Tracer::Tracer(int num_executors, uint32_t ring_capacity) {
  if (ring_capacity == 0) return;
  recorders_.reserve(static_cast<size_t>(num_executors) + 1);
  recorders_.push_back(
      std::make_unique<TraceRecorder>(/*executor=*/-1, ring_capacity));
  for (int e = 0; e < num_executors; ++e) {
    recorders_.push_back(std::make_unique<TraceRecorder>(e, ring_capacity));
  }
  log_ = std::make_shared<TraceLog>();
  log_->base_ns = NowNanos();
  log_->num_executors = num_executors;
}

void Tracer::MergeBarrier() {
  if (!enabled()) return;
  scratch_.clear();
  for (auto& r : recorders_) r->Drain(&scratch_);
  // Stable: equal keys (possible only for repeated lineage replays of one
  // partition) keep their deterministic per-recorder drain order.
  std::stable_sort(scratch_.begin(), scratch_.end(), CanonicalLess);
  log_->events.insert(log_->events.end(), scratch_.begin(), scratch_.end());
}

std::shared_ptr<TraceLog> Tracer::Take() {
  if (!enabled()) return nullptr;
  MergeBarrier();
  // Recorder drop counters are cumulative; each taken log reports only the
  // drops that happened since the previous hand-off.
  uint64_t dropped_total = 0;
  for (auto& r : recorders_) dropped_total += r->dropped_events();
  log_->dropped_events = dropped_total - dropped_reported_;
  dropped_reported_ = dropped_total;
  std::shared_ptr<TraceLog> out = std::move(log_);
  log_ = std::make_shared<TraceLog>();
  log_->base_ns = NowNanos();
  log_->num_executors = out->num_executors;
  return out;
}

}  // namespace deca::obs
