#include "obs/run_report.h"

#include <algorithm>
#include <cmath>
#include <set>

#include "obs/json.h"

namespace deca::obs {

const ReportMetric* ReportRun::Find(std::string_view name) const {
  for (const ReportMetric& m : metrics) {
    if (m.name == name) return &m;
  }
  return nullptr;
}

void ReportRun::Add(std::string_view name, double value, bool exact) {
  metrics.push_back({std::string(name), value, exact});
}

const ReportRun* RunReport::Find(std::string_view label) const {
  for (const ReportRun& r : runs) {
    if (r.label == label) return &r;
  }
  return nullptr;
}

std::string ToJson(const RunReport& report) {
  std::string out;
  out += "{\n";
  out += "  \"schema\": \"" + std::string(RunReport::kSchema) + "\",\n";
  out += "  \"version\": " + std::to_string(RunReport::kVersion) + ",\n";
  out += "  \"bench\": \"" + JsonEscape(report.bench) + "\",\n";
  out += "  \"runs\": [";
  for (size_t i = 0; i < report.runs.size(); ++i) {
    const ReportRun& run = report.runs[i];
    out += i == 0 ? "\n" : ",\n";
    out += "    {\"label\": \"" + JsonEscape(run.label) + "\",\n";
    out += "     \"metrics\": [";
    for (size_t m = 0; m < run.metrics.size(); ++m) {
      const ReportMetric& mm = run.metrics[m];
      out += m == 0 ? "\n" : ",\n";
      out += "       {\"name\": \"" + JsonEscape(mm.name) +
             "\", \"value\": " + JsonNumber(mm.value) +
             ", \"exact\": " + (mm.exact ? "true" : "false") + "}";
    }
    out += "\n     ],\n";
    out += "     \"spans\": [";
    for (size_t s = 0; s < run.spans.size(); ++s) {
      const SpanAgg& sp = run.spans[s];
      out += s == 0 ? "\n" : ",\n";
      out += "       {\"cat\": \"" + JsonEscape(sp.cat) + "\", \"name\": \"" +
             JsonEscape(sp.name) +
             "\", \"count\": " + std::to_string(sp.count) +
             ", \"total_ms\": " + JsonNumber(sp.total_ms) + "}";
    }
    out += "\n     ]";
    if (run.epochs.present) {
      const EpochAgg& e = run.epochs;
      out += ",\n     \"epochs\": {\"epochs_run\": " +
             std::to_string(e.epochs_run) +
             ", \"windows\": " + std::to_string(e.windows) +
             ", \"reclaimed_bytes\": " + std::to_string(e.reclaimed_bytes) +
             ", \"pause_p50_ms\": " + JsonNumber(e.pause_p50_ms) +
             ", \"pause_p99_ms\": " + JsonNumber(e.pause_p99_ms) +
             ", \"reclaim_p99_ms\": " + JsonNumber(e.reclaim_p99_ms) + "}";
    }
    if (run.tier.present) {
      const TierAgg& t = run.tier;
      out += ",\n     \"tier\": {\"t0_resident_bytes\": " +
             std::to_string(t.t0_resident_bytes) +
             ", \"t1_resident_bytes\": " +
             std::to_string(t.t1_resident_bytes) +
             ", \"t2_resident_bytes\": " +
             std::to_string(t.t2_resident_bytes) +
             ", \"t1_peak_bytes\": " + std::to_string(t.t1_peak_bytes) +
             ", \"t0_hits\": " + std::to_string(t.t0_hits) +
             ", \"t1_hits\": " + std::to_string(t.t1_hits) +
             ", \"t2_hits\": " + std::to_string(t.t2_hits) +
             ", \"misses\": " + std::to_string(t.misses) +
             ", \"demotes_to_t1\": " + std::to_string(t.demotes_to_t1) +
             ", \"demotes_to_t2\": " + std::to_string(t.demotes_to_t2) +
             ", \"promotes\": " + std::to_string(t.promotes) +
             ", \"admit_rejects\": " + std::to_string(t.admit_rejects) +
             ", \"promote_p50_ms\": " + JsonNumber(t.promote_p50_ms) +
             ", \"promote_p99_ms\": " + JsonNumber(t.promote_p99_ms) + "}";
    }
    if (run.pauses.present) {
      const PauseAgg& p = run.pauses;
      out += ",\n     \"pauses\": {\"mark_slices\": " +
             std::to_string(p.mark_slices) +
             ", \"pause_events\": " + std::to_string(p.pause_events) +
             ", \"pause_p50_ms\": " + JsonNumber(p.pause_p50_ms) +
             ", \"pause_p99_ms\": " + JsonNumber(p.pause_p99_ms) +
             ", \"pause_max_ms\": " + JsonNumber(p.pause_max_ms) +
             ", \"slice_p50_ms\": " + JsonNumber(p.slice_p50_ms) +
             ", \"slice_p99_ms\": " + JsonNumber(p.slice_p99_ms) +
             ", \"slice_max_ms\": " + JsonNumber(p.slice_max_ms) + "}";
    }
    if (run.alloc.present) {
      const AllocAgg& a = run.alloc;
      out += ",\n     \"alloc\": {\"arena\": ";
      out += a.arena ? "true" : "false";
      out += ", \"alloc_calls\": " + std::to_string(a.alloc_calls) +
             ", \"free_calls\": " + std::to_string(a.free_calls) +
             ", \"bytes_requested\": " + std::to_string(a.bytes_requested) +
             ", \"slab_allocs\": " + std::to_string(a.slab_allocs) +
             ", \"slab_reuses\": " + std::to_string(a.slab_reuses) +
             ", \"freelist_steals\": " + std::to_string(a.freelist_steals) +
             ", \"remote_frees\": " + std::to_string(a.remote_frees) +
             ", \"direct_maps\": " + std::to_string(a.direct_maps) +
             ", \"direct_unmaps\": " + std::to_string(a.direct_unmaps) +
             ", \"chunks_mapped\": " + std::to_string(a.chunks_mapped) +
             ", \"hugepage_chunks\": " + std::to_string(a.hugepage_chunks) +
             ", \"arena_bytes_reserved\": " +
             std::to_string(a.arena_bytes_reserved) + "}";
    }
    out += "}";
  }
  out += "\n  ]\n}\n";
  return out;
}

bool FromJson(std::string_view json, RunReport* out, std::string* err) {
  JsonValue root;
  if (!ParseJson(json, &root, err)) return false;
  if (!root.is(JsonValue::Type::kObject)) {
    if (err != nullptr) *err = "report root is not an object";
    return false;
  }
  if (root.Str("schema") != RunReport::kSchema) {
    if (err != nullptr) *err = "schema is not '" +
                               std::string(RunReport::kSchema) + "'";
    return false;
  }
  int version = static_cast<int>(root.Num("version", -1));
  if (version < RunReport::kMinVersion || version > RunReport::kVersion) {
    if (err != nullptr) *err = "unsupported report version";
    return false;
  }
  out->bench = root.Str("bench");
  out->runs.clear();
  const JsonValue* runs = root.Find("runs");
  if (runs == nullptr || !runs->is(JsonValue::Type::kArray)) {
    if (err != nullptr) *err = "missing 'runs' array";
    return false;
  }
  for (const JsonValue& jr : runs->arr) {
    if (!jr.is(JsonValue::Type::kObject)) {
      if (err != nullptr) *err = "run entry is not an object";
      return false;
    }
    ReportRun run;
    run.label = jr.Str("label");
    if (const JsonValue* metrics = jr.Find("metrics");
        metrics != nullptr && metrics->is(JsonValue::Type::kArray)) {
      for (const JsonValue& jm : metrics->arr) {
        ReportMetric m;
        m.name = jm.Str("name");
        m.value = jm.Num("value");
        m.exact = jm.Bool("exact");
        run.metrics.push_back(std::move(m));
      }
    }
    if (const JsonValue* spans = jr.Find("spans");
        spans != nullptr && spans->is(JsonValue::Type::kArray)) {
      for (const JsonValue& js : spans->arr) {
        SpanAgg s;
        s.cat = js.Str("cat");
        s.name = js.Str("name");
        s.count = static_cast<uint64_t>(js.Num("count"));
        s.total_ms = js.Num("total_ms");
        run.spans.push_back(std::move(s));
      }
    }
    if (const JsonValue* epochs = jr.Find("epochs");
        epochs != nullptr && epochs->is(JsonValue::Type::kObject)) {
      run.epochs.present = true;
      run.epochs.epochs_run =
          static_cast<uint64_t>(epochs->Num("epochs_run"));
      run.epochs.windows = static_cast<uint64_t>(epochs->Num("windows"));
      run.epochs.reclaimed_bytes =
          static_cast<uint64_t>(epochs->Num("reclaimed_bytes"));
      run.epochs.pause_p50_ms = epochs->Num("pause_p50_ms");
      run.epochs.pause_p99_ms = epochs->Num("pause_p99_ms");
      run.epochs.reclaim_p99_ms = epochs->Num("reclaim_p99_ms");
    }
    if (const JsonValue* tier = jr.Find("tier");
        tier != nullptr && tier->is(JsonValue::Type::kObject)) {
      run.tier.present = true;
      run.tier.t0_resident_bytes =
          static_cast<uint64_t>(tier->Num("t0_resident_bytes"));
      run.tier.t1_resident_bytes =
          static_cast<uint64_t>(tier->Num("t1_resident_bytes"));
      run.tier.t2_resident_bytes =
          static_cast<uint64_t>(tier->Num("t2_resident_bytes"));
      run.tier.t1_peak_bytes =
          static_cast<uint64_t>(tier->Num("t1_peak_bytes"));
      run.tier.t0_hits = static_cast<uint64_t>(tier->Num("t0_hits"));
      run.tier.t1_hits = static_cast<uint64_t>(tier->Num("t1_hits"));
      run.tier.t2_hits = static_cast<uint64_t>(tier->Num("t2_hits"));
      run.tier.misses = static_cast<uint64_t>(tier->Num("misses"));
      run.tier.demotes_to_t1 =
          static_cast<uint64_t>(tier->Num("demotes_to_t1"));
      run.tier.demotes_to_t2 =
          static_cast<uint64_t>(tier->Num("demotes_to_t2"));
      run.tier.promotes = static_cast<uint64_t>(tier->Num("promotes"));
      run.tier.admit_rejects =
          static_cast<uint64_t>(tier->Num("admit_rejects"));
      run.tier.promote_p50_ms = tier->Num("promote_p50_ms");
      run.tier.promote_p99_ms = tier->Num("promote_p99_ms");
    }
    if (const JsonValue* pauses = jr.Find("pauses");
        pauses != nullptr && pauses->is(JsonValue::Type::kObject)) {
      run.pauses.present = true;
      run.pauses.mark_slices =
          static_cast<uint64_t>(pauses->Num("mark_slices"));
      run.pauses.pause_events =
          static_cast<uint64_t>(pauses->Num("pause_events"));
      run.pauses.pause_p50_ms = pauses->Num("pause_p50_ms");
      run.pauses.pause_p99_ms = pauses->Num("pause_p99_ms");
      run.pauses.pause_max_ms = pauses->Num("pause_max_ms");
      run.pauses.slice_p50_ms = pauses->Num("slice_p50_ms");
      run.pauses.slice_p99_ms = pauses->Num("slice_p99_ms");
      run.pauses.slice_max_ms = pauses->Num("slice_max_ms");
    }
    if (const JsonValue* alloc = jr.Find("alloc");
        alloc != nullptr && alloc->is(JsonValue::Type::kObject)) {
      run.alloc.present = true;
      run.alloc.arena = alloc->Bool("arena");
      run.alloc.alloc_calls =
          static_cast<uint64_t>(alloc->Num("alloc_calls"));
      run.alloc.free_calls = static_cast<uint64_t>(alloc->Num("free_calls"));
      run.alloc.bytes_requested =
          static_cast<uint64_t>(alloc->Num("bytes_requested"));
      run.alloc.slab_allocs =
          static_cast<uint64_t>(alloc->Num("slab_allocs"));
      run.alloc.slab_reuses =
          static_cast<uint64_t>(alloc->Num("slab_reuses"));
      run.alloc.freelist_steals =
          static_cast<uint64_t>(alloc->Num("freelist_steals"));
      run.alloc.remote_frees =
          static_cast<uint64_t>(alloc->Num("remote_frees"));
      run.alloc.direct_maps =
          static_cast<uint64_t>(alloc->Num("direct_maps"));
      run.alloc.direct_unmaps =
          static_cast<uint64_t>(alloc->Num("direct_unmaps"));
      run.alloc.chunks_mapped =
          static_cast<uint64_t>(alloc->Num("chunks_mapped"));
      run.alloc.hugepage_chunks =
          static_cast<uint64_t>(alloc->Num("hugepage_chunks"));
      run.alloc.arena_bytes_reserved =
          static_cast<uint64_t>(alloc->Num("arena_bytes_reserved"));
    }
    out->runs.push_back(std::move(run));
  }
  return true;
}

bool Validate(const RunReport& report, std::string* err) {
  auto fail = [err](const std::string& what) {
    if (err != nullptr) *err = what;
    return false;
  };
  if (report.bench.empty()) return fail("empty bench name");
  if (report.runs.empty()) return fail("report has no runs");
  std::set<std::string> labels;
  for (const ReportRun& run : report.runs) {
    if (run.label.empty()) return fail("run with empty label");
    if (!labels.insert(run.label).second) {
      return fail("duplicate run label '" + run.label + "'");
    }
    std::set<std::string> names;
    for (const ReportMetric& m : run.metrics) {
      if (m.name.empty()) return fail("metric with empty name in '" +
                                      run.label + "'");
      if (!names.insert(m.name).second) {
        return fail("duplicate metric '" + m.name + "' in '" + run.label +
                    "'");
      }
      if (!std::isfinite(m.value)) {
        return fail("non-finite metric '" + m.name + "' in '" + run.label +
                    "'");
      }
    }
    for (const SpanAgg& s : run.spans) {
      if (s.cat.empty() || s.name.empty()) {
        return fail("span aggregate with empty cat/name in '" + run.label +
                    "'");
      }
      if (!std::isfinite(s.total_ms) || s.total_ms < 0) {
        return fail("bad span total_ms for '" + s.name + "' in '" +
                    run.label + "'");
      }
    }
    if (run.epochs.present) {
      const EpochAgg& e = run.epochs;
      if (!std::isfinite(e.pause_p50_ms) || e.pause_p50_ms < 0 ||
          !std::isfinite(e.pause_p99_ms) || e.pause_p99_ms < 0 ||
          !std::isfinite(e.reclaim_p99_ms) || e.reclaim_p99_ms < 0) {
        return fail("bad epoch pause aggregate in '" + run.label + "'");
      }
      if (e.pause_p50_ms > e.pause_p99_ms) {
        return fail("epoch pause p50 > p99 in '" + run.label + "'");
      }
    }
    if (run.tier.present) {
      const TierAgg& t = run.tier;
      if (!std::isfinite(t.promote_p50_ms) || t.promote_p50_ms < 0 ||
          !std::isfinite(t.promote_p99_ms) || t.promote_p99_ms < 0) {
        return fail("bad tier promote aggregate in '" + run.label + "'");
      }
      if (t.promote_p50_ms > t.promote_p99_ms) {
        return fail("tier promote p50 > p99 in '" + run.label + "'");
      }
    }
    if (run.pauses.present) {
      const PauseAgg& p = run.pauses;
      for (double v : {p.pause_p50_ms, p.pause_p99_ms, p.pause_max_ms,
                       p.slice_p50_ms, p.slice_p99_ms, p.slice_max_ms}) {
        if (!std::isfinite(v) || v < 0) {
          return fail("bad pause aggregate in '" + run.label + "'");
        }
      }
      if (p.pause_p50_ms > p.pause_p99_ms ||
          p.pause_p99_ms > p.pause_max_ms ||
          p.slice_p50_ms > p.slice_p99_ms ||
          p.slice_p99_ms > p.slice_max_ms) {
        return fail("pause percentiles out of order in '" + run.label +
                    "'");
      }
    }
    if (run.alloc.present) {
      if (run.alloc.free_calls > run.alloc.alloc_calls) {
        return fail("alloc free_calls > alloc_calls in '" + run.label +
                    "'");
      }
    }
  }
  return true;
}

bool ReportsEqual(const RunReport& a, const RunReport& b) {
  if (a.bench != b.bench || a.runs.size() != b.runs.size()) return false;
  for (size_t i = 0; i < a.runs.size(); ++i) {
    const ReportRun& ra = a.runs[i];
    const ReportRun& rb = b.runs[i];
    if (ra.label != rb.label || ra.metrics.size() != rb.metrics.size() ||
        ra.spans.size() != rb.spans.size()) {
      return false;
    }
    for (size_t m = 0; m < ra.metrics.size(); ++m) {
      if (ra.metrics[m].name != rb.metrics[m].name ||
          ra.metrics[m].value != rb.metrics[m].value ||
          ra.metrics[m].exact != rb.metrics[m].exact) {
        return false;
      }
    }
    for (size_t s = 0; s < ra.spans.size(); ++s) {
      if (ra.spans[s].cat != rb.spans[s].cat ||
          ra.spans[s].name != rb.spans[s].name ||
          ra.spans[s].count != rb.spans[s].count ||
          ra.spans[s].total_ms != rb.spans[s].total_ms) {
        return false;
      }
    }
    const EpochAgg& ea = ra.epochs;
    const EpochAgg& eb = rb.epochs;
    if (ea.present != eb.present || ea.epochs_run != eb.epochs_run ||
        ea.windows != eb.windows ||
        ea.reclaimed_bytes != eb.reclaimed_bytes ||
        ea.pause_p50_ms != eb.pause_p50_ms ||
        ea.pause_p99_ms != eb.pause_p99_ms ||
        ea.reclaim_p99_ms != eb.reclaim_p99_ms) {
      return false;
    }
    const TierAgg& ta = ra.tier;
    const TierAgg& tb = rb.tier;
    if (ta.present != tb.present ||
        ta.t0_resident_bytes != tb.t0_resident_bytes ||
        ta.t1_resident_bytes != tb.t1_resident_bytes ||
        ta.t2_resident_bytes != tb.t2_resident_bytes ||
        ta.t1_peak_bytes != tb.t1_peak_bytes ||
        ta.t0_hits != tb.t0_hits || ta.t1_hits != tb.t1_hits ||
        ta.t2_hits != tb.t2_hits || ta.misses != tb.misses ||
        ta.demotes_to_t1 != tb.demotes_to_t1 ||
        ta.demotes_to_t2 != tb.demotes_to_t2 ||
        ta.promotes != tb.promotes ||
        ta.admit_rejects != tb.admit_rejects ||
        ta.promote_p50_ms != tb.promote_p50_ms ||
        ta.promote_p99_ms != tb.promote_p99_ms) {
      return false;
    }
    const PauseAgg& pa = ra.pauses;
    const PauseAgg& pb = rb.pauses;
    if (pa.present != pb.present || pa.mark_slices != pb.mark_slices ||
        pa.pause_events != pb.pause_events ||
        pa.pause_p50_ms != pb.pause_p50_ms ||
        pa.pause_p99_ms != pb.pause_p99_ms ||
        pa.pause_max_ms != pb.pause_max_ms ||
        pa.slice_p50_ms != pb.slice_p50_ms ||
        pa.slice_p99_ms != pb.slice_p99_ms ||
        pa.slice_max_ms != pb.slice_max_ms) {
      return false;
    }
    const AllocAgg& aa = ra.alloc;
    const AllocAgg& ab = rb.alloc;
    if (aa.present != ab.present || aa.arena != ab.arena ||
        aa.alloc_calls != ab.alloc_calls ||
        aa.free_calls != ab.free_calls ||
        aa.bytes_requested != ab.bytes_requested ||
        aa.slab_allocs != ab.slab_allocs ||
        aa.slab_reuses != ab.slab_reuses ||
        aa.freelist_steals != ab.freelist_steals ||
        aa.remote_frees != ab.remote_frees ||
        aa.direct_maps != ab.direct_maps ||
        aa.direct_unmaps != ab.direct_unmaps ||
        aa.chunks_mapped != ab.chunks_mapped ||
        aa.hugepage_chunks != ab.hugepage_chunks ||
        aa.arena_bytes_reserved != ab.arena_bytes_reserved) {
      return false;
    }
  }
  return true;
}

namespace {

bool ExactEqual(double base, double cur, double rel_eps) {
  double scale = std::max({1.0, std::fabs(base), std::fabs(cur)});
  return std::fabs(base - cur) <= rel_eps * scale;
}

}  // namespace

DiffResult DiffReports(const RunReport& baseline, const RunReport& current,
                       const DiffOptions& opt) {
  DiffResult result;
  auto fail = [&result](std::string what) {
    result.failures.push_back(std::move(what));
  };
  if (baseline.bench != current.bench) {
    fail("bench mismatch: baseline '" + baseline.bench + "' vs current '" +
         current.bench + "'");
    return result;
  }
  for (const ReportRun& base_run : baseline.runs) {
    const ReportRun* cur_run = current.Find(base_run.label);
    if (cur_run == nullptr) {
      fail("run '" + base_run.label + "' missing from current report");
      continue;
    }
    for (const ReportMetric& bm : base_run.metrics) {
      if (opt.exact_only && !bm.exact) continue;
      const ReportMetric* cm = cur_run->Find(bm.name);
      if (cm == nullptr) {
        fail(base_run.label + ": metric '" + bm.name +
             "' missing from current report");
        continue;
      }
      if (bm.exact) {
        if (!ExactEqual(bm.value, cm->value, opt.exact_rel_eps)) {
          fail(base_run.label + ": exact metric '" + bm.name + "' changed " +
               JsonNumber(bm.value) + " -> " + JsonNumber(cm->value));
        }
      } else {
        double limit = bm.value * (1.0 + opt.time_threshold);
        if (cm->value > limit && cm->value - bm.value > opt.time_floor_ms) {
          fail(base_run.label + ": time metric '" + bm.name + "' regressed " +
               JsonNumber(bm.value) + " -> " + JsonNumber(cm->value) +
               " ms (allowed +" +
               JsonNumber(opt.time_threshold * 100.0) + "%)");
        }
      }
    }
    for (const SpanAgg& bs : base_run.spans) {
      if (opt.exact_only) break;
      const SpanAgg* cs = nullptr;
      for (const SpanAgg& s : cur_run->spans) {
        if (s.cat == bs.cat && s.name == bs.name) {
          cs = &s;
          break;
        }
      }
      if (cs == nullptr) {
        fail(base_run.label + ": span '" + bs.cat + "/" + bs.name +
             "' missing from current report");
        continue;
      }
      if (cs->count != bs.count) {
        fail(base_run.label + ": span '" + bs.cat + "/" + bs.name +
             "' count changed " + std::to_string(bs.count) + " -> " +
             std::to_string(cs->count));
      }
      double limit = bs.total_ms * (1.0 + opt.time_threshold);
      if (cs->total_ms > limit &&
          cs->total_ms - bs.total_ms > opt.time_floor_ms) {
        fail(base_run.label + ": span '" + bs.cat + "/" + bs.name +
             "' total_ms regressed " + JsonNumber(bs.total_ms) + " -> " +
             JsonNumber(cs->total_ms));
      }
    }
    if (base_run.epochs.present) {
      const EpochAgg& be = base_run.epochs;
      const EpochAgg& ce = cur_run->epochs;
      if (!ce.present) {
        fail(base_run.label + ": epoch aggregates missing from current "
             "report");
        continue;
      }
      // Deterministic epoch counters: bit-compare.
      auto counter = [&](const char* name, uint64_t bv, uint64_t cv) {
        if (bv != cv) {
          fail(base_run.label + ": epoch counter '" + std::string(name) +
               "' changed " + std::to_string(bv) + " -> " +
               std::to_string(cv));
        }
      };
      counter("epochs_run", be.epochs_run, ce.epochs_run);
      counter("windows", be.windows, ce.windows);
      counter("reclaimed_bytes", be.reclaimed_bytes, ce.reclaimed_bytes);
      // Pause percentiles are wall times: regression threshold only.
      auto pause = [&](const char* name, double bv, double cv) {
        if (cv > bv * (1.0 + opt.time_threshold) &&
            cv - bv > opt.time_floor_ms) {
          fail(base_run.label + ": epoch pause '" + std::string(name) +
               "' regressed " + JsonNumber(bv) + " -> " + JsonNumber(cv) +
               " ms");
        }
      };
      if (!opt.exact_only) {
        pause("pause_p50_ms", be.pause_p50_ms, ce.pause_p50_ms);
        pause("pause_p99_ms", be.pause_p99_ms, ce.pause_p99_ms);
        pause("reclaim_p99_ms", be.reclaim_p99_ms, ce.reclaim_p99_ms);
      }
    }
    if (base_run.tier.present) {
      const TierAgg& bt = base_run.tier;
      const TierAgg& ct = cur_run->tier;
      if (!ct.present) {
        fail(base_run.label + ": tier aggregates missing from current "
             "report");
        continue;
      }
      // Deterministic tier counters: bit-compare.
      auto counter = [&](const char* name, uint64_t bv, uint64_t cv) {
        if (bv != cv) {
          fail(base_run.label + ": tier counter '" + std::string(name) +
               "' changed " + std::to_string(bv) + " -> " +
               std::to_string(cv));
        }
      };
      counter("t0_resident_bytes", bt.t0_resident_bytes,
              ct.t0_resident_bytes);
      counter("t1_resident_bytes", bt.t1_resident_bytes,
              ct.t1_resident_bytes);
      counter("t2_resident_bytes", bt.t2_resident_bytes,
              ct.t2_resident_bytes);
      counter("t1_peak_bytes", bt.t1_peak_bytes, ct.t1_peak_bytes);
      counter("t0_hits", bt.t0_hits, ct.t0_hits);
      counter("t1_hits", bt.t1_hits, ct.t1_hits);
      counter("t2_hits", bt.t2_hits, ct.t2_hits);
      counter("misses", bt.misses, ct.misses);
      counter("demotes_to_t1", bt.demotes_to_t1, ct.demotes_to_t1);
      counter("demotes_to_t2", bt.demotes_to_t2, ct.demotes_to_t2);
      counter("promotes", bt.promotes, ct.promotes);
      counter("admit_rejects", bt.admit_rejects, ct.admit_rejects);
      // Promote percentiles are wall times: regression threshold only.
      auto promote = [&](const char* name, double bv, double cv) {
        if (cv > bv * (1.0 + opt.time_threshold) &&
            cv - bv > opt.time_floor_ms) {
          fail(base_run.label + ": tier promote '" + std::string(name) +
               "' regressed " + JsonNumber(bv) + " -> " + JsonNumber(cv) +
               " ms");
        }
      };
      if (!opt.exact_only) {
        promote("promote_p50_ms", bt.promote_p50_ms, ct.promote_p50_ms);
        promote("promote_p99_ms", bt.promote_p99_ms, ct.promote_p99_ms);
      }
    }
    if (base_run.pauses.present) {
      const PauseAgg& bp = base_run.pauses;
      const PauseAgg& cp = cur_run->pauses;
      if (!cp.present) {
        fail(base_run.label + ": pause aggregates missing from current "
             "report");
        continue;
      }
      // Slice/pause event counts are deterministic at pause_budget_ms=0
      // (one slice per mark): bit-compare. Budgeted runs must not be
      // diffed against unbudgeted baselines (use --slo instead).
      auto counter = [&](const char* name, uint64_t bv, uint64_t cv) {
        if (bv != cv) {
          fail(base_run.label + ": pause counter '" + std::string(name) +
               "' changed " + std::to_string(bv) + " -> " +
               std::to_string(cv));
        }
      };
      counter("mark_slices", bp.mark_slices, cp.mark_slices);
      counter("pause_events", bp.pause_events, cp.pause_events);
      // Percentiles are wall times: regression threshold only.
      auto pause_time = [&](const char* name, double bv, double cv) {
        if (cv > bv * (1.0 + opt.time_threshold) &&
            cv - bv > opt.time_floor_ms) {
          fail(base_run.label + ": pause time '" + std::string(name) +
               "' regressed " + JsonNumber(bv) + " -> " + JsonNumber(cv) +
               " ms");
        }
      };
      if (!opt.exact_only) {
        pause_time("pause_p50_ms", bp.pause_p50_ms, cp.pause_p50_ms);
        pause_time("pause_p99_ms", bp.pause_p99_ms, cp.pause_p99_ms);
        pause_time("pause_max_ms", bp.pause_max_ms, cp.pause_max_ms);
        pause_time("slice_p50_ms", bp.slice_p50_ms, cp.slice_p50_ms);
        pause_time("slice_p99_ms", bp.slice_p99_ms, cp.slice_p99_ms);
        pause_time("slice_max_ms", bp.slice_max_ms, cp.slice_max_ms);
      }
    }
    if (base_run.alloc.present) {
      const AllocAgg& ba = base_run.alloc;
      const AllocAgg& ca = cur_run->alloc;
      if (!ca.present) {
        fail(base_run.label + ": alloc aggregates missing from current "
             "report");
        continue;
      }
      // Only the call/byte counters are part of the determinism contract
      // (identical across DECA_ARENA=0|1, threads, and dist modes). The
      // slab/steal/chunk fields depend on thread interleaving and
      // huge-page availability and are never diffed.
      auto counter = [&](const char* name, uint64_t bv, uint64_t cv) {
        if (bv != cv) {
          fail(base_run.label + ": alloc counter '" + std::string(name) +
               "' changed " + std::to_string(bv) + " -> " +
               std::to_string(cv));
        }
      };
      counter("alloc_calls", ba.alloc_calls, ca.alloc_calls);
      counter("free_calls", ba.free_calls, ca.free_calls);
      counter("bytes_requested", ba.bytes_requested, ca.bytes_requested);
    }
  }
  return result;
}

}  // namespace deca::obs
