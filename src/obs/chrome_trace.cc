#include "obs/chrome_trace.h"

#include <cstdio>

#include "obs/json.h"

namespace deca::obs {

namespace {

/// Chrome lane of an event: driver 0; executor e mutator 1+2e, GC 2+2e.
int LaneOf(const TraceEvent& ev) {
  if (ev.executor < 0) return 0;
  return 1 + 2 * ev.executor + (ev.cat == Cat::kGc ? 1 : 0);
}

void WriteThreadName(std::FILE* f, int tid, const std::string& name,
                     bool* first) {
  std::fprintf(f,
               "%s  {\"ph\": \"M\", \"pid\": 0, \"tid\": %d, "
               "\"name\": \"thread_name\", \"args\": {\"name\": \"%s\"}}",
               *first ? "\n" : ",\n", tid, name.c_str());
  *first = false;
}

}  // namespace

bool WriteChromeTrace(const TraceLog& log, const std::string& path,
                      std::string* err) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    if (err != nullptr) *err = "cannot open '" + path + "' for writing";
    return false;
  }
  std::fprintf(f, "{\"traceEvents\": [");
  bool first = true;
  WriteThreadName(f, 0, "driver", &first);
  for (int e = 0; e < log.num_executors; ++e) {
    WriteThreadName(f, 1 + 2 * e, "executor " + std::to_string(e), &first);
    WriteThreadName(f, 2 + 2 * e, "executor " + std::to_string(e) + " gc",
                    &first);
  }
  for (const TraceEvent& ev : log.events) {
    double ts_us = static_cast<double>(ev.start_ns - log.base_ns) / 1e3;
    std::fprintf(f, "%s  {\"name\": \"%s\", \"cat\": \"%s\", ",
                 first ? "\n" : ",\n", JsonEscape(ev.name).c_str(),
                 CatName(ev.cat));
    first = false;
    if (ev.instant()) {
      std::fprintf(f, "\"ph\": \"i\", \"s\": \"t\", \"ts\": %s, ",
                   JsonNumber(ts_us).c_str());
    } else {
      double dur_us = static_cast<double>(ev.dur_ns) / 1e3;
      std::fprintf(f, "\"ph\": \"X\", \"ts\": %s, \"dur\": %s, ",
                   JsonNumber(ts_us).c_str(), JsonNumber(dur_us).c_str());
    }
    std::fprintf(f,
                 "\"pid\": 0, \"tid\": %d, \"args\": {\"stage\": %d, "
                 "\"partition\": %d, \"attempt\": %d, \"arg0\": %s, "
                 "\"arg1\": %s, \"time_arg\": %s}}",
                 LaneOf(ev), ev.stage, ev.partition, ev.attempt,
                 JsonNumber(ev.arg0).c_str(), JsonNumber(ev.arg1).c_str(),
                 JsonNumber(ev.time_arg).c_str());
  }
  std::fprintf(f, "\n]}\n");
  bool ok = std::fclose(f) == 0;
  if (!ok && err != nullptr) *err = "write to '" + path + "' failed";
  return ok;
}

}  // namespace deca::obs
