#ifndef DECA_OBS_TRACE_H_
#define DECA_OBS_TRACE_H_

#include <cstdint>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "common/clock.h"

namespace deca::obs {

/// Trace-event categories. Each category maps to one conceptual plane of
/// the engine; the Chrome exporter uses them to pick lanes (GC events get
/// their own lane per executor).
enum class Cat : uint8_t {
  kStage,    // driver-side stage windows
  kSched,    // scheduler dispatch decisions
  kTask,     // task lifecycle (queue wait, attempts, retries)
  kGc,       // stop-the-world pauses + concurrent cycles, per phase
  kShuffle,  // map-side deposits, reduce-side fetches
  kCache,    // block store puts/swaps/evictions
  kMemory,   // unified memory-manager grants/denials/borrow arbitration
  kNet,      // wire transport: puts, fetch slices, retries, flow stalls
  kEpoch,    // streaming epoch lifecycle: open, close, region reclaim
  kCluster,  // control plane: executor kills, deaths, respawns, replays
};

const char* CatName(Cat c);

/// One fixed-size trace record. Events are PODs so recording never
/// allocates: the name is copied into an inline buffer and everything else
/// is scalar.
///
/// Determinism contract: `start_ns`, `dur_ns` and `time_arg` are wall-time
/// *data* — they ride along for humans and the Chrome exporter but are
/// excluded from report content. Everything else (identity, category,
/// name, arg0/arg1) must be a pure function of the deterministic
/// simulation state, so the canonical event sequence of a parallel run is
/// byte-identical to the sequential one.
struct TraceEvent {
  static constexpr size_t kNameBytes = 32;

  char name[kNameBytes] = {0};
  int64_t start_ns = 0;  // wall time (data only)
  int64_t dur_ns = -1;   // < 0 marks an instant event (data only)
  double arg0 = 0;       // deterministic payload (bytes, counts, ids)
  double arg1 = 0;       // deterministic payload
  double time_arg = 0;   // wall-time payload (e.g. queue_ms; data only)
  int32_t stage = -1;     // -1: outside any stage
  int32_t partition = -1; // -1: driver-side
  int32_t attempt = -1;   // -1: driver-side or lineage replay
  int32_t executor = -1;  // -1: driver lane
  uint32_t seq = 0;       // per-(task|stage-window) sequence number
  Cat cat = Cat::kTask;

  bool instant() const { return dur_ns < 0; }
  void set_name(const char* n) {
    std::strncpy(name, n, kNameBytes - 1);
    name[kNameBytes - 1] = '\0';
  }
};

/// Canonical content ordering: (stage, partition, attempt, seq). Exactly
/// one recorder writes any given (stage, partition, attempt) window, and
/// seq increments per record, so the key is unique within a barrier batch
/// and identical across sequential/parallel runs.
bool CanonicalLess(const TraceEvent& a, const TraceEvent& b);

/// True when two events carry the same deterministic content (everything
/// except the wall-time fields).
bool SameContent(const TraceEvent& a, const TraceEvent& b);

/// Single-writer ring buffer of trace events for one executor (or the
/// driver). Recording is wait-free and allocation-free: the ring is
/// preallocated and a full ring overwrites the oldest event, counting it
/// in `dropped_events` instead of corrupting anything. The driver drains
/// the ring at stage barriers, when the writer is quiescent.
class TraceRecorder {
 public:
  /// `executor` is the lane id (-1 = driver). `capacity` is the max
  /// buffered events between drains; must be > 0.
  TraceRecorder(int executor, uint32_t capacity);

  TraceRecorder(const TraceRecorder&) = delete;
  TraceRecorder& operator=(const TraceRecorder&) = delete;

  int executor() const { return executor_; }

  /// Rebinds the identity stamped onto subsequent events and resets the
  /// per-window sequence counter. Called at task start (stage, partition,
  /// attempt) and at stage start for the driver (stage, -1, -1).
  void BeginWindow(int32_t stage, int32_t partition, int32_t attempt) {
    stage_ = stage;
    partition_ = partition;
    attempt_ = attempt;
    seq_ = 0;
  }

  /// Records one event. `dur_ns < 0` means instant. Never allocates.
  void Record(Cat cat, const char* name, int64_t start_ns, int64_t dur_ns,
              double arg0 = 0, double arg1 = 0, double time_arg = 0) {
    TraceEvent& ev = ring_[head_ % ring_.size()];
    if (head_ - tail_ == ring_.size()) {  // full: drop the oldest
      ++tail_;
      ++dropped_;
    }
    ev.set_name(name);
    ev.start_ns = start_ns;
    ev.dur_ns = dur_ns;
    ev.arg0 = arg0;
    ev.arg1 = arg1;
    ev.time_arg = time_arg;
    ev.stage = stage_;
    ev.partition = partition_;
    ev.attempt = attempt_;
    ev.executor = executor_;
    ev.seq = seq_++;
    ev.cat = cat;
    ++head_;
  }

  /// Records a completed span that ended just now and lasted `dur_ms`.
  void CompleteSpanMs(Cat cat, const char* name, double dur_ms,
                      double arg0 = 0, double arg1 = 0) {
    int64_t dur_ns = static_cast<int64_t>(dur_ms * 1e6);
    Record(cat, name, NowNanos() - dur_ns, dur_ns, arg0, arg1);
  }

  /// Moves all buffered events (oldest first) into `out`; the buffer is
  /// empty afterwards. Driver-side, writer quiescent.
  void Drain(std::vector<TraceEvent>* out);

  /// Events overwritten before they could be drained (cumulative).
  uint64_t dropped_events() const { return dropped_; }
  /// Events currently buffered.
  uint64_t pending() const { return head_ - tail_; }

 private:
  std::vector<TraceEvent> ring_;
  uint64_t head_ = 0;  // total events recorded
  uint64_t tail_ = 0;  // oldest still-buffered event
  uint64_t dropped_ = 0;
  int executor_;
  int32_t stage_ = -1;
  int32_t partition_ = -1;
  int32_t attempt_ = -1;
  uint32_t seq_ = 0;
};

// -- Thread-local current recorder --------------------------------------------
//
// Instrumentation points (collectors, shuffle, block store, memory
// manager) record through the calling thread's current recorder, so no
// recorder pointer plumbing is needed and a disabled tracer costs one TLS
// load + branch on every hook — no allocation, no clock read.

/// The calling thread's active recorder (null = tracing off on this
/// thread).
TraceRecorder* Current();

/// Installs `r` as the thread's recorder for the scope; restores the
/// previous one on exit (scopes nest: driver window -> task window).
class ScopedRecorder {
 public:
  explicit ScopedRecorder(TraceRecorder* r);
  ~ScopedRecorder();

  ScopedRecorder(const ScopedRecorder&) = delete;
  ScopedRecorder& operator=(const ScopedRecorder&) = delete;

 private:
  TraceRecorder* prev_;
};

/// Records an instant event on the current recorder, if any.
inline void Instant(Cat cat, const char* name, double arg0 = 0,
                    double arg1 = 0) {
  if (TraceRecorder* r = Current()) {
    r->Record(cat, name, NowNanos(), /*dur_ns=*/-1, arg0, arg1);
  }
}

/// RAII span: captures the current recorder and start time on entry and
/// records a complete event on exit. A null current recorder makes every
/// member a no-op (not even a clock read).
class ScopedSpan {
 public:
  ScopedSpan(Cat cat, const char* name, double arg0 = 0, double arg1 = 0)
      : r_(Current()),
        name_(name),
        t0_(r_ != nullptr ? NowNanos() : 0),
        arg0_(arg0),
        arg1_(arg1),
        cat_(cat) {}
  ~ScopedSpan() {
    if (r_ != nullptr) {
      r_->Record(cat_, name_, t0_, NowNanos() - t0_, arg0_, arg1_, time_arg_);
    }
  }

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  void set_args(double arg0, double arg1) {
    arg0_ = arg0;
    arg1_ = arg1;
  }
  void set_time_arg(double v) { time_arg_ = v; }

 private:
  TraceRecorder* r_;
  const char* name_;
  int64_t t0_;
  double arg0_;
  double arg1_;
  double time_arg_ = 0;
  Cat cat_;
};

// -- Merged log ---------------------------------------------------------------

/// Aggregate of one (category, name) span/event population.
struct SpanAgg {
  std::string cat;
  std::string name;
  uint64_t count = 0;
  double total_ms = 0;  // instants contribute 0
};

/// The merged, canonically ordered trace of one SparkContext run.
struct TraceLog {
  int64_t base_ns = 0;  // tracer construction time (Chrome ts origin)
  int num_executors = 0;
  uint64_t dropped_events = 0;
  std::vector<TraceEvent> events;

  /// Per-(category, name) counts and total span time, sorted by
  /// (category, name). Counts are deterministic; total_ms is wall time.
  std::vector<SpanAgg> Aggregate() const;
};

/// Per-context trace plane: one recorder per executor plus a driver
/// recorder. The driver merges all recorders at every stage barrier —
/// stable-sorted by the canonical key, so the accumulated log's *content*
/// is identical between sequential and parallel runs while wall times ride
/// along as data. Construct with capacity 0 to disable: recorders are
/// never created and every accessor returns null.
class Tracer {
 public:
  Tracer(int num_executors, uint32_t ring_capacity);

  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  bool enabled() const { return !recorders_.empty(); }
  TraceRecorder* driver() {
    return enabled() ? recorders_[0].get() : nullptr;
  }
  TraceRecorder* executor(int e) {
    return enabled() ? recorders_[static_cast<size_t>(e) + 1].get() : nullptr;
  }

  /// Drains every recorder, canonically sorts the batch and appends it to
  /// the log. Driver-side, all writers quiescent (post stage barrier).
  void MergeBarrier();

  /// Final merge + hand-off of the accumulated log; recording continues
  /// into a fresh log afterwards. Null when disabled.
  std::shared_ptr<TraceLog> Take();

 private:
  std::vector<std::unique_ptr<TraceRecorder>> recorders_;  // [0]=driver
  std::shared_ptr<TraceLog> log_;
  std::vector<TraceEvent> scratch_;
  uint64_t dropped_reported_ = 0;
};

}  // namespace deca::obs

#endif  // DECA_OBS_TRACE_H_
