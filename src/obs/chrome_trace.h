#ifndef DECA_OBS_CHROME_TRACE_H_
#define DECA_OBS_CHROME_TRACE_H_

#include <string>

#include "obs/trace.h"

namespace deca::obs {

/// Writes `log` as Chrome trace_event JSON (the format chrome://tracing
/// and Perfetto open directly). Lane layout: tid 0 is the driver, each
/// executor e gets a mutator lane (tid 1+2e) and a GC lane (tid 2+2e) so
/// stop-the-world pauses are visually separable from task work.
/// Timestamps are microseconds relative to the tracer's construction.
/// Returns false and fills `err` on I/O failure.
bool WriteChromeTrace(const TraceLog& log, const std::string& path,
                      std::string* err);

}  // namespace deca::obs

#endif  // DECA_OBS_CHROME_TRACE_H_
