#ifndef DECA_OBS_JSON_H_
#define DECA_OBS_JSON_H_

#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace deca::obs {

/// Minimal JSON document tree — just enough for RunReport round-trips and
/// report_diff. Numbers are doubles printed with %.17g, so every value the
/// writer emits parses back bit-identically.
struct JsonValue {
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  Type type = Type::kNull;
  bool boolean = false;
  double number = 0;
  std::string str;
  std::vector<JsonValue> arr;
  std::vector<std::pair<std::string, JsonValue>> obj;  // insertion order

  bool is(Type t) const { return type == t; }
  /// First member named `key`, or null when absent / not an object.
  const JsonValue* Find(std::string_view key) const;
  /// Typed lookups with defaults (missing / wrong type returns `def`).
  double Num(std::string_view key, double def = 0) const;
  std::string Str(std::string_view key, std::string_view def = "") const;
  bool Bool(std::string_view key, bool def = false) const;
};

/// Parses `text` into `out`. On failure returns false and describes the
/// error (with byte offset) in `err`.
bool ParseJson(std::string_view text, JsonValue* out, std::string* err);

/// Escapes a string for embedding inside JSON quotes.
std::string JsonEscape(std::string_view s);

/// Shortest round-trippable representation of `v` (%.17g; non-finite
/// values become null, which the report layer rejects at validation).
std::string JsonNumber(double v);

}  // namespace deca::obs

#endif  // DECA_OBS_JSON_H_
