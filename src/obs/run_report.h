#ifndef DECA_OBS_RUN_REPORT_H_
#define DECA_OBS_RUN_REPORT_H_

#include <string>
#include <string_view>
#include <vector>

#include "obs/trace.h"

namespace deca::obs {

/// One named measurement. `exact` partitions the diff rules:
///  - exact metrics are deterministic simulation counters (GC counts,
///    spills, denials, byte peaks) and must match a baseline bit-for-bit;
///  - inexact metrics are wall times and are compared against a relative
///    regression threshold only.
struct ReportMetric {
  std::string name;
  double value = 0;
  bool exact = false;
};

/// Epoch plane of a micro-batch streaming run (schema v2). Absent
/// (`present == false`) for batch runs. The counters are deterministic
/// simulation results and are bit-compared by report_diff; the pause
/// percentiles are wall times and are threshold-compared.
struct EpochAgg {
  bool present = false;
  uint64_t epochs_run = 0;
  uint64_t windows = 0;
  uint64_t reclaimed_bytes = 0;
  double pause_p50_ms = 0;
  double pause_p99_ms = 0;
  double reclaim_p99_ms = 0;
};

/// Storage-tier plane of a run with the serialized off-heap tier enabled
/// (schema v3). Absent (`present == false`) when storage_tiers=2 (the
/// legacy heap→disk store). Resident bytes and hit/demote/promote counters
/// are deterministic simulation results and are bit-compared by
/// report_diff; the promote percentiles are wall times and are
/// threshold-compared.
struct TierAgg {
  bool present = false;
  uint64_t t0_resident_bytes = 0;
  uint64_t t1_resident_bytes = 0;
  uint64_t t2_resident_bytes = 0;
  uint64_t t1_peak_bytes = 0;
  uint64_t t0_hits = 0;
  uint64_t t1_hits = 0;
  uint64_t t2_hits = 0;
  uint64_t misses = 0;
  uint64_t demotes_to_t1 = 0;
  uint64_t demotes_to_t2 = 0;
  uint64_t promotes = 0;
  uint64_t admit_rejects = 0;
  double promote_p50_ms = 0;
  double promote_p99_ms = 0;
};

/// GC pause plane of a run (schema v4). `mark_slices` counts every
/// recorded mark slice (monolithic marks count one each, so at
/// pause_budget_ms=0 it is a deterministic counter; at budget > 0 the
/// slice count is timing-dependent — budgeted runs are gated with
/// report_diff --slo assertions, not baseline diffs). `pause_events`
/// counts mutator-visible stop-the-world pauses. The percentiles are wall
/// times over the pause/slice histograms and are threshold-compared.
struct PauseAgg {
  bool present = false;
  uint64_t mark_slices = 0;
  uint64_t pause_events = 0;
  double pause_p50_ms = 0;
  double pause_p99_ms = 0;
  double pause_max_ms = 0;
  double slice_p50_ms = 0;
  double slice_p99_ms = 0;
  double slice_max_ms = 0;
};

/// Native-allocator plane of a run (schema v5). Absent
/// (`present == false`) for reports written before the arena subsystem
/// or for standalone-heap runs that never touched a PageAllocator. The
/// call/byte counters are deterministic — every engine consumer routes
/// through the allocator in both DECA_ARENA modes, so they are
/// bit-compared by report_diff. The slab/steal/chunk fields depend on
/// thread timing and huge-page availability and are informational only
/// (never bit-compared; zero when the arena is off).
struct AllocAgg {
  bool present = false;
  bool arena = false;  // DECA_ARENA=1 (mmap slabs) vs fallback new[]
  uint64_t alloc_calls = 0;
  uint64_t free_calls = 0;
  uint64_t bytes_requested = 0;
  uint64_t slab_allocs = 0;
  uint64_t slab_reuses = 0;
  uint64_t freelist_steals = 0;
  uint64_t remote_frees = 0;
  uint64_t direct_maps = 0;
  uint64_t direct_unmaps = 0;
  uint64_t chunks_mapped = 0;
  uint64_t hugepage_chunks = 0;
  uint64_t arena_bytes_reserved = 0;
};

/// One workload run (one mode / configuration) inside a bench binary.
struct ReportRun {
  std::string label;  // e.g. "LR-large/Deca"
  std::vector<ReportMetric> metrics;
  std::vector<SpanAgg> spans;  // per-(cat,name) trace aggregates
  EpochAgg epochs;             // streaming runs only
  TierAgg tier;                // tiered-store runs only
  PauseAgg pauses;             // GC pause/mark-slice histograms
  AllocAgg alloc;              // native page-allocator counters

  const ReportMetric* Find(std::string_view name) const;
  void Add(std::string_view name, double value, bool exact);
};

/// The machine-readable result of one bench binary execution
/// (`--json-out=` / `DECA_JSON_OUT`). Schema "deca-run-report" v5
/// (v2 added the optional per-run "epochs" aggregate, v3 the optional
/// per-run "tier" aggregate, v4 the optional per-run "pauses" aggregate,
/// v5 the optional per-run "alloc" aggregate; older reports are still
/// parsed).
struct RunReport {
  static constexpr const char* kSchema = "deca-run-report";
  static constexpr int kVersion = 5;
  static constexpr int kMinVersion = 1;

  std::string bench;  // binary name, e.g. "fig11_breakdown"
  std::vector<ReportRun> runs;

  const ReportRun* Find(std::string_view label) const;
};

/// Serializes with enough float precision that FromJson(ToJson(r)) == r.
std::string ToJson(const RunReport& report);

/// Parses a report; false + `err` on malformed input or schema mismatch.
bool FromJson(std::string_view json, RunReport* out, std::string* err);

/// Structural schema check: schema/version match, non-empty bench,
/// unique non-empty run labels, finite metric values, sane span aggs.
bool Validate(const RunReport& report, std::string* err);

/// Deep equality (used by the exporter round-trip test).
bool ReportsEqual(const RunReport& a, const RunReport& b);

struct DiffOptions {
  /// Inexact (time) metrics fail when
  ///   current > baseline * (1 + time_threshold)
  /// and the absolute regression exceeds `time_floor_ms` (noise guard for
  /// sub-millisecond measurements).
  double time_threshold = 0.15;
  double time_floor_ms = 1.0;
  /// Exact metrics compare with this relative epsilon (doubles that went
  /// through decimal text).
  double exact_rel_eps = 1e-9;
  /// Compare exact metrics and deterministic epoch/tier counters only;
  /// skip
  /// wall-time metrics and trace spans entirely. Used to diff a
  /// multi-process run against an in-process baseline: the determinism
  /// contract covers counters, not timings, and executor daemons do not
  /// record worker-side spans.
  bool exact_only = false;
};

struct DiffResult {
  std::vector<std::string> failures;
  bool ok() const { return failures.empty(); }
};

/// Compares `current` against `baseline`. Exact metrics and span counts
/// must match; time metrics and span totals gate on the relative
/// threshold (regressions only — improvements always pass). A run or
/// metric present in the baseline but missing from `current` fails; extra
/// runs/metrics in `current` are allowed (reports may grow).
DiffResult DiffReports(const RunReport& baseline, const RunReport& current,
                       const DiffOptions& opt);

}  // namespace deca::obs

#endif  // DECA_OBS_RUN_REPORT_H_
