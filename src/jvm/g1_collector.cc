#include "jvm/g1_collector.h"

#include <algorithm>
#include <cstring>

#include "common/clock.h"
#include "common/logging.h"
#include "jvm/heap.h"
#include "jvm/heap_profiler.h"
#include "obs/trace.h"

namespace deca::jvm {

namespace {
constexpr size_t kMinRegionBytes = 64u << 10;
constexpr size_t kMaxRegionBytes = 1u << 20;
// Fraction of post-reclaim free space a mixed collection may fill with
// evacuated old data (the rest is reserved for the young evacuation).
constexpr double kMixedEvacBudget = 0.8;
// Backoff (in young GCs) applied when a mixed collection reclaims < 2% of
// the heap, to avoid back-to-back useless marking cycles.
constexpr int kMixedBackoffGcs = 4;
}  // namespace

G1Collector::G1Collector(Heap* heap, const HeapConfig& config)
    : heap_(heap), cfg_(config), marker_(heap) {
  region_bytes_ = config.g1_region_bytes;
  if (region_bytes_ == 0) {
    region_bytes_ = AlignUp(config.heap_bytes / 128, kMinRegionBytes);
    region_bytes_ = std::clamp(region_bytes_, kMinRegionBytes,
                               kMaxRegionBytes);
  }
  DECA_CHECK_EQ(region_bytes_ % kWordSize, 0u);
  region_base_ = heap->base() + 2 * kWordSize;
  size_t num = config.heap_bytes / region_bytes_;
  DECA_CHECK_GE(num, 8u) << "G1 heap too small for region size";
  regions_.resize(num);
  for (size_t i = 0; i < num; ++i) regions_[i].top = RegionBegin(i);
  max_young_regions_ = std::max<size_t>(
      1, static_cast<size_t>(static_cast<double>(num) *
                             config.young_fraction));
}

size_t G1Collector::free_region_count() const {
  size_t n = 0;
  for (const auto& r : regions_) {
    if (r.type == RegionType::kFree) ++n;
  }
  return n;
}

int G1Collector::TakeFreeRegion(RegionType type) {
  for (size_t i = 0; i < regions_.size(); ++i) {
    if (regions_[i].type == RegionType::kFree) {
      regions_[i].type = type;
      regions_[i].top = RegionBegin(i);
      regions_[i].live_bytes = 0;
      regions_[i].in_cset = false;
      return static_cast<int>(i);
    }
  }
  return -1;
}

void G1Collector::FreeRegion(size_t idx) {
  Region& r = regions_[idx];
  r.type = RegionType::kFree;
  r.top = RegionBegin(idx);
  r.live_bytes = 0;
  r.in_cset = false;
  r.evac_failed = false;
}

uint8_t* G1Collector::BumpIn(int region_idx, size_t bytes) {
  Region& r = regions_[static_cast<size_t>(region_idx)];
  if (r.top + bytes > RegionEnd(static_cast<size_t>(region_idx))) {
    return nullptr;
  }
  uint8_t* p = r.top;
  r.top += bytes;
  return p;
}

uint8_t* G1Collector::AllocateRaw(size_t bytes, bool large) {
  DECA_DCHECK(bytes % kWordSize == 0);
  if (bytes >= region_bytes_ / 2) return AllocateHumongous(bytes);
  if (large) return AllocateOldDirect(bytes);
  return AllocateSmall(bytes);
}

uint8_t* G1Collector::AllocateSmall(size_t bytes) {
  for (int attempt = 0; attempt < 3; ++attempt) {
    if (cur_eden_ >= 0) {
      if (uint8_t* p = BumpIn(cur_eden_, bytes)) return p;
    }
    // The young target caps *eden*; survivor regions hold live data and
    // must not starve allocation (survivor overflow tenures early below).
    if (eden_regions_.size() < max_young_regions_) {
      int idx = TakeFreeRegion(RegionType::kEden);
      if (idx >= 0) {
        eden_regions_.push_back(static_cast<size_t>(idx));
        cur_eden_ = idx;
        if (uint8_t* p = BumpIn(cur_eden_, bytes)) return p;
      }
    }
    if (attempt == 0) {
      if (ShouldStartMixed() && cfg_.pause_budget_ms <= 0) {
        MixedGc(/*aggressive=*/false);
      } else {
        YoungGc();
        // Budgeted mode: an IHOP crossing starts a concurrent cycle
        // drained by allocation ticks instead of marking in this pause.
        if (cfg_.pause_budget_ms > 0 && !marker_.active() &&
            ShouldStartMixed()) {
          StartConcurrentCycle();
        }
      }
    } else if (attempt == 1) {
      MixedGc(/*aggressive=*/true);
    }
  }
  return nullptr;
}

uint8_t* G1Collector::AllocateOldDirect(size_t bytes) {
  for (int attempt = 0; attempt < 2; ++attempt) {
    if (cur_old_ >= 0) {
      if (uint8_t* p = BumpIn(cur_old_, bytes)) return p;
    }
    int idx = TakeFreeRegion(RegionType::kOld);
    if (idx >= 0) {
      cur_old_ = idx;
      if (uint8_t* p = BumpIn(cur_old_, bytes)) return p;
    }
    if (attempt == 0) MixedGc(/*aggressive=*/true);
  }
  return nullptr;
}

uint8_t* G1Collector::AllocateHumongous(size_t bytes) {
  size_t need = (bytes + region_bytes_ - 1) / region_bytes_;
  for (int attempt = 0; attempt < 2; ++attempt) {
    size_t run = 0;
    for (size_t i = 0; i < regions_.size(); ++i) {
      run = regions_[i].type == RegionType::kFree ? run + 1 : 0;
      if (run < need) continue;
      size_t first = i + 1 - need;
      size_t remaining = bytes;
      for (size_t k = 0; k < need; ++k) {
        Region& r = regions_[first + k];
        r.type = k == 0 ? RegionType::kHumStart : RegionType::kHumCont;
        r.live_bytes = 0;
        r.in_cset = false;
        size_t portion = std::min(remaining, region_bytes_);
        r.top = RegionBegin(first + k) + portion;
        remaining -= portion;
      }
      return RegionBegin(first);
    }
    if (attempt == 0) MixedGc(/*aggressive=*/true);
  }
  return nullptr;
}

void G1Collector::WriteBarrier(ObjRef holder, ObjRef value) {
  const Region& hr = RegionOf(heap_->Addr(holder));
  if (hr.type == RegionType::kEden || hr.type == RegionType::kSurvivor) {
    return;
  }
  const Region& vr = RegionOf(heap_->Addr(value));
  if (vr.type != RegionType::kEden && vr.type != RegionType::kSurvivor) {
    return;
  }
  uint32_t& meta = heap_->MetaOf(holder);
  if ((meta & kInRemsetBit) != 0) return;
  meta |= kInRemsetBit;
  remset_.push_back(holder);
}

bool G1Collector::IsYoung(ObjRef obj) const {
  RegionType t = RegionOf(heap_->Addr(obj)).type;
  return t == RegionType::kEden || t == RegionType::kSurvivor;
}

size_t G1Collector::young_used_bytes() const {
  size_t total = 0;
  for (size_t idx : eden_regions_) {
    total += static_cast<size_t>(regions_[idx].top - RegionBegin(idx));
  }
  for (size_t idx : survivor_regions_) {
    total += static_cast<size_t>(regions_[idx].top - RegionBegin(idx));
  }
  return total;
}

size_t G1Collector::used_bytes() const {
  size_t total = 0;
  for (size_t i = 0; i < regions_.size(); ++i) {
    if (regions_[i].type == RegionType::kFree) continue;
    total += static_cast<size_t>(regions_[i].top - RegionBegin(i));
  }
  return total;
}

size_t G1Collector::old_used_bytes() const {
  size_t total = 0;
  for (size_t i = 0; i < regions_.size(); ++i) {
    RegionType t = regions_[i].type;
    if (t != RegionType::kOld && t != RegionType::kHumStart &&
        t != RegionType::kHumCont) {
      continue;
    }
    total += static_cast<size_t>(regions_[i].top - RegionBegin(i));
  }
  return total;
}

size_t G1Collector::capacity_bytes() const {
  return regions_.size() * region_bytes_;
}

void G1Collector::WalkRegion(size_t idx,
                             const std::function<void(ObjRef)>& fn) const {
  uint8_t* p = RegionBegin(idx);
  uint8_t* top = regions_[idx].top;
  while (p < top) {
    ObjRef r = heap_->RefOf(p);
    uint32_t walk = heap_->WalkBytes(r);
    if (heap_->ClassIdOf(r) != 0) fn(r);
    p += walk;
  }
}

void G1Collector::ForEachObject(
    const std::function<void(ObjRef)>& fn) const {
  for (size_t i = 0; i < regions_.size(); ++i) {
    switch (regions_[i].type) {
      case RegionType::kEden:
      case RegionType::kSurvivor:
      case RegionType::kOld:
        WalkRegion(i, fn);
        break;
      case RegionType::kHumStart:
        fn(heap_->RefOf(RegionBegin(i)));
        break;
      case RegionType::kFree:
      case RegionType::kHumCont:
        break;
    }
  }
}

std::string G1Collector::DebugString() const {
  size_t counts[6] = {0, 0, 0, 0, 0, 0};
  size_t used[6] = {0, 0, 0, 0, 0, 0};
  for (size_t i = 0; i < regions_.size(); ++i) {
    size_t t = static_cast<size_t>(regions_[i].type);
    counts[t] += 1;
    used[t] += static_cast<size_t>(regions_[i].top - RegionBegin(i));
  }
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "G1 regions free=%zu eden=%zu(%zuKB) sur=%zu(%zuKB) "
                "old=%zu(%zuKB) hum=%zu backoff=%d",
                counts[0], counts[1], used[1] >> 10, counts[2],
                used[2] >> 10, counts[3], used[3] >> 10, counts[4] + counts[5],
                mixed_backoff_);
  return buf;
}

bool G1Collector::ShouldStartMixed() const {
  if (mixed_backoff_ > 0) return false;
  return static_cast<double>(old_used_bytes()) >
         cfg_.g1_ihop * static_cast<double>(capacity_bytes());
}

void G1Collector::CollectMinor() { YoungGc(); }

void G1Collector::CollectFull() { MixedGc(/*aggressive=*/true); }

void G1Collector::YoungGc() {
  if (marker_.active()) {
    // Evacuation would invalidate the in-flight mark state: finish the
    // cycle; its consuming mixed collection empties the young gen too.
    MixedGc(/*aggressive=*/false);
    return;
  }
  if (young_region_count() == 0) return;
  if (free_region_count() * region_bytes_ < young_used_bytes()) {
    // Not enough target space for a guaranteed evacuation: reclaim old
    // space first.
    MixedGc(/*aggressive=*/true);
    return;
  }
  Stopwatch sw;
  for (size_t idx : eden_regions_) regions_[idx].in_cset = true;
  for (size_t idx : survivor_regions_) regions_[idx].in_cset = true;
  EvacuateCollectionSet(/*is_mixed=*/false);
  GcStats& st = heap_->mutable_stats();
  st.minor_count += 1;
  double pause_ms = sw.ElapsedMillis();
  st.minor_pause_ms += pause_ms;
  heap_->RecordPauseMs(pause_ms);
  if (auto* rec = obs::Current()) {
    rec->CompleteSpanMs(obs::Cat::kGc, "minor_pause", pause_ms,
                        static_cast<double>(st.minor_count));
  }
  if (mixed_backoff_ > 0) --mixed_backoff_;
}

void G1Collector::MixedGc(bool aggressive) {
  Stopwatch mark_sw;
  if (marker_.active()) {
    // Force-complete the in-flight concurrent cycle in budget-bounded
    // slices; the marked set equals a fresh monolithic mark modulo SATB
    // floating garbage.
    marker_.FinishAll(cfg_.pause_budget_ms);
  } else {
    uint64_t epoch = heap_->NextGcEpoch();
    for (auto& r : regions_) r.live_bytes = 0;
    auto on_mark = [this](ObjRef o) {
      RegionOf(heap_->Addr(o)).live_bytes += heap_->ObjectBytes(o);
    };
    if (cfg_.pause_budget_ms > 0) {
      marker_.Begin(epoch, on_mark);
      marker_.FinishAll(cfg_.pause_budget_ms);
    } else {
      MarkAllReachable(heap_, epoch, &mark_stack_, on_mark);
      heap_->RecordMarkSlice(mark_sw.ElapsedMillis(), /*standalone=*/false);
    }
  }
  MixedFinish(aggressive, mark_sw.ElapsedMillis());
}

void G1Collector::StartConcurrentCycle() {
  uint64_t epoch = heap_->NextGcEpoch();
  for (auto& r : regions_) r.live_bytes = 0;
  marker_.Begin(epoch, [this](ObjRef o) {
    RegionOf(heap_->Addr(o)).live_bytes += heap_->ObjectBytes(o);
  });
}

void G1Collector::IncrementalMarkTick() {
  if (!marker_.active()) return;
  if (marker_.Step(cfg_.pause_budget_ms, /*standalone=*/true)) {
    // Consume the mark immediately: promotions would dilute the region
    // liveness table if the mixed collection were deferred. The tick fires
    // before the triggering allocation, so no raw refs are live. The mark
    // time was already charged per-slice.
    MixedFinish(/*aggressive=*/false, /*mark_ms=*/0.0);
  }
}

void G1Collector::MixedFinish(bool aggressive, double mark_ms) {
  GcStats& st = heap_->mutable_stats();
  uint64_t epoch = heap_->gc_epoch();

  Stopwatch evac_sw;
  size_t regions_reclaimed = 0;
  // Free dead humongous objects (their start region is unmarked).
  for (size_t i = 0; i < regions_.size(); ++i) {
    if (regions_[i].type != RegionType::kHumStart) continue;
    ObjRef h = heap_->RefOf(RegionBegin(i));
    if (regions_[i].live_bytes > 0 &&
        GcIsMarkedIn(heap_->GcWordOf(h), epoch)) {
      continue;
    }
    size_t k = i;
    FreeRegion(k++);
    ++regions_reclaimed;
    while (k < regions_.size() && regions_[k].type == RegionType::kHumCont) {
      FreeRegion(k++);
      ++regions_reclaimed;
    }
  }
  // Free wholly dead old regions in place (G1's cheap reclaim).
  for (size_t i = 0; i < regions_.size(); ++i) {
    if (regions_[i].type == RegionType::kOld &&
        regions_[i].live_bytes == 0) {
      FreeRegion(i);
      ++regions_reclaimed;
      if (cur_old_ == static_cast<int>(i)) cur_old_ = -1;
    }
  }

  // Select evacuation candidates among the surviving old regions.
  double threshold = aggressive ? 0.999 : cfg_.g1_live_threshold;
  std::vector<std::pair<size_t, size_t>> candidates;  // (live, idx)
  for (size_t i = 0; i < regions_.size(); ++i) {
    const Region& r = regions_[i];
    if (r.type != RegionType::kOld) continue;
    double ratio = static_cast<double>(r.live_bytes) /
                   static_cast<double>(region_bytes_);
    if (ratio < threshold) candidates.emplace_back(r.live_bytes, i);
  }
  std::sort(candidates.begin(), candidates.end());
  size_t free_bytes = free_region_count() * region_bytes_;
  size_t young_used = young_used_bytes();
  size_t budget =
      free_bytes > young_used
          ? static_cast<size_t>(
                static_cast<double>(free_bytes - young_used) *
                kMixedEvacBudget)
          : 0;
  size_t selected_live = 0;
  for (const auto& [live, idx] : candidates) {
    if (selected_live + live > budget) break;
    regions_[idx].in_cset = true;
    selected_live += live;
    ++regions_reclaimed;
    if (cur_old_ == static_cast<int>(idx)) cur_old_ = -1;
  }
  for (size_t idx : eden_regions_) regions_[idx].in_cset = true;
  for (size_t idx : survivor_regions_) regions_[idx].in_cset = true;

  EvacuateCollectionSet(/*is_mixed=*/true);

  double evac_ms = evac_sw.ElapsedMillis();
  st.full_count += 1;
  double pause_ms = mark_ms * cfg_.concurrent_pause_share + evac_ms;
  st.full_pause_ms += pause_ms;
  st.concurrent_ms += mark_ms * (1.0 - cfg_.concurrent_pause_share);
  heap_->RecordPauseMs(pause_ms);
  if (auto* rec = obs::Current()) {
    rec->CompleteSpanMs(obs::Cat::kGc, "mixed_pause", pause_ms,
                        static_cast<double>(st.full_count),
                        static_cast<double>(regions_reclaimed));
    rec->CompleteSpanMs(obs::Cat::kGc, "concurrent_mark",
                        mark_ms * (1.0 - cfg_.concurrent_pause_share),
                        static_cast<double>(st.full_count));
  }

  if (regions_reclaimed * region_bytes_ <
      static_cast<size_t>(0.02 * static_cast<double>(capacity_bytes()))) {
    mixed_backoff_ = kMixedBackoffGcs;
  }
}

void G1Collector::EvacuateCollectionSet(bool is_mixed) {
  EvacTargets t;
  worklist_.clear();

  std::vector<size_t> cset;
  for (size_t i = 0; i < regions_.size(); ++i) {
    if (regions_[i].in_cset) cset.push_back(i);
  }
  // Snapshot of non-cset old/humongous regions to scan (mixed only): the
  // ranges existing *before* any evacuation target allocation.
  struct ScanRange {
    size_t idx;
    uint8_t* top;
    bool humongous;
  };
  std::vector<ScanRange> scan;
  if (is_mixed) {
    for (size_t i = 0; i < regions_.size(); ++i) {
      const Region& r = regions_[i];
      if (r.in_cset) continue;
      if (r.type == RegionType::kOld) {
        scan.push_back({i, r.top, false});
      } else if (r.type == RegionType::kHumStart) {
        scan.push_back({i, r.top, true});
      }
    }
  }

  std::vector<ObjRef> old_remset;
  old_remset.swap(remset_);
  for (ObjRef o : old_remset) heap_->MetaOf(o) &= ~kInRemsetBit;

  heap_->VisitRoots([&](ObjRef* slot) { EvacuateSlot(slot, &t); });

  if (is_mixed) {
    // Fix incoming references by linearly scanning all live (marked) old
    // objects outside the collection set. This also rebuilds the
    // old-to-young remembered set.
    uint64_t epoch = heap_->gc_epoch();
    for (const ScanRange& sr : scan) {
      if (sr.humongous) {
        ObjRef h = heap_->RefOf(RegionBegin(sr.idx));
        if (GcIsMarkedIn(heap_->GcWordOf(h), epoch)) ScanObject(h, &t);
        continue;
      }
      uint8_t* p = RegionBegin(sr.idx);
      while (p < sr.top) {
        ObjRef r = heap_->RefOf(p);
        uint32_t walk = heap_->WalkBytes(r);
        if (GcIsMarkedIn(heap_->GcWordOf(r), epoch)) ScanObject(r, &t);
        p += walk;
      }
    }
  } else {
    for (ObjRef o : old_remset) ScanObject(o, &t);
  }

  while (!worklist_.empty()) {
    ObjRef o = worklist_.back();
    worklist_.pop_back();
    ScanObject(o, &t);
  }

  for (size_t idx : cset) {
    Region& r = regions_[idx];
    if (!r.evac_failed) {
      FreeRegion(idx);
      continue;
    }
    // Promote the region in place: live objects are self-forwarded. Clear
    // their gcwords and record any old-to-young edges they now carry in
    // the remembered set.
    uint8_t* p = RegionBegin(idx);
    while (p < r.top) {
      jvm::ObjRef obj = heap_->RefOf(p);
      uint32_t walk = heap_->WalkBytes(obj);
      uint64_t& gw = heap_->GcWordOf(obj);
      if (GcIsForwarded(gw)) {
        gw = 0;
        bool has_young = false;
        heap_->VisitRefSlots(obj, [&](ObjRef* s) {
          if (*s == kNullRef) return;
          RegionType rt = RegionOf(heap_->Addr(*s)).type;
          if (rt == RegionType::kEden || rt == RegionType::kSurvivor) {
            has_young = true;
          }
        });
        if (has_young) {
          uint32_t& m = heap_->MetaOf(obj);
          if ((m & kInRemsetBit) == 0) {
            m |= kInRemsetBit;
            remset_.push_back(obj);
          }
        }
      } else {
        gw = 0;
      }
      p += walk;
    }
    r.type = RegionType::kOld;
    r.in_cset = false;
    r.evac_failed = false;
    r.live_bytes = static_cast<size_t>(r.top - RegionBegin(idx));
  }
  eden_regions_.clear();
  cur_eden_ = -1;
  survivor_regions_ = std::move(t.new_survivors);
}

void G1Collector::EvacuateSlot(ObjRef* slot, EvacTargets* t) {
  ObjRef r = *slot;
  uint8_t* p = heap_->Addr(r);
  Region& reg = RegionOf(p);
  if (!reg.in_cset) return;
  uint64_t gw = heap_->GcWordOf(r);
  if (GcIsForwarded(gw)) {
    *slot = GcForwardRef(gw);
    return;
  }
  GcStats& st = heap_->mutable_stats();
  uint32_t size = heap_->ObjectBytes(r);
  uint32_t meta = heap_->MetaOf(r);
  uint32_t age = MetaAge(meta) + 1;
  bool from_young = reg.type == RegionType::kEden ||
                    reg.type == RegionType::kSurvivor;
  uint8_t* dst = nullptr;
  bool promoted = !from_young;
  // Survivor overflow: once this GC has filled a quarter of the young
  // target with survivors, tenure everything else immediately (Hotspot's
  // adaptive tenuring under survivor pressure).
  bool survivor_full =
      t->new_survivors.size() >= std::max<size_t>(1, max_young_regions_ / 4);
  if (from_young && age < cfg_.tenure_threshold && !survivor_full) {
    if (t->survivor_region >= 0) dst = BumpIn(t->survivor_region, size);
    if (dst == nullptr) {
      int idx = TakeFreeRegion(RegionType::kSurvivor);
      if (idx >= 0) {
        t->survivor_region = idx;
        t->new_survivors.push_back(static_cast<size_t>(idx));
        dst = BumpIn(idx, size);
      }
    }
  }
  if (dst == nullptr) {
    if (from_young) promoted = true;
    // Promotions share the persistent old allocation region (cur_old_) so
    // successive collections fill regions densely instead of abandoning a
    // nearly-empty region per GC.
    if (cur_old_ >= 0) dst = BumpIn(cur_old_, size);
    if (dst == nullptr) {
      int idx = TakeFreeRegion(RegionType::kOld);
      if (idx >= 0) {
        cur_old_ = idx;
        dst = BumpIn(idx, size);
      }
    }
  }
  if (dst == nullptr) {
    // Evacuation failure: promote the object in place by self-forwarding
    // (real G1's handling); the region is retyped old after the GC.
    heap_->GcWordOf(r) = GcMakeForward(r, /*keep_mark=*/false);
    reg.evac_failed = true;
    *slot = r;
    worklist_.push_back(r);
    st.objects_traced += 1;
    return;
  }
  std::memcpy(dst, p, size);
  ObjRef nr = heap_->RefOf(dst);
  uint32_t nmeta = MetaWithAge(meta & ~(kInRemsetBit | kSlack8Bit),
                               promoted ? 0 : age);
  if ((meta & kSampledBit) != 0) {
    // First evacuation of a sampled object: report the survival
    // observation and drop the tag (each sample is observed once).
    nmeta &= ~kSampledBit;
    if (auto* prof = heap_->alloc_profiler()) {
      prof->OnSurvive(MetaClassId(meta), promoted);
    }
  }
  heap_->MetaOf(nr) = nmeta;
  heap_->GcWordOf(nr) = 0;
  heap_->GcWordOf(r) = GcMakeForward(nr, /*keep_mark=*/false);
  *slot = nr;
  worklist_.push_back(nr);

  st.objects_traced += 1;
  st.bytes_copied += size;
  if (promoted && from_young) st.objects_promoted += 1;
}

void G1Collector::ScanObject(ObjRef owner, EvacTargets* t) {
  bool has_young = false;
  heap_->VisitRefSlots(owner, [&](ObjRef* s) {
    if (*s == kNullRef) return;
    EvacuateSlot(s, t);
    RegionType rt = RegionOf(heap_->Addr(*s)).type;
    if (rt == RegionType::kEden || rt == RegionType::kSurvivor) {
      has_young = true;
    }
  });
  if (!has_young) return;
  RegionType ot = RegionOf(heap_->Addr(owner)).type;
  if (ot == RegionType::kEden || ot == RegionType::kSurvivor) return;
  uint32_t& m = heap_->MetaOf(owner);
  if ((m & kInRemsetBit) == 0) {
    m |= kInRemsetBit;
    remset_.push_back(owner);
  }
}

}  // namespace deca::jvm
