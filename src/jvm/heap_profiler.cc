#include "jvm/heap_profiler.h"

#include "jvm/heap.h"

namespace deca::jvm {

HeapProfiler::HeapProfiler(Heap* heap, uint32_t class_id)
    : heap_(heap), class_id_(class_id) {}

void HeapProfiler::Sample(double t_ms) {
  object_counts_.Add(t_ms,
                     static_cast<double>(heap_->CountInstances(class_id_)));
  gc_time_ms_.Add(t_ms, heap_->stats().TotalPauseMs());
}

namespace {
// splitmix64 finalizer: spreads the seed over the first sampling interval
// so co-seeded heaps do not sample in lockstep.
uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}
}  // namespace

AllocationSiteProfiler::AllocationSiteProfiler(size_t sample_bytes,
                                               uint64_t seed)
    : sample_bytes_(sample_bytes) {
  DECA_CHECK_GT(sample_bytes, 0u);
  bytes_until_sample_ =
      static_cast<int64_t>(Mix64(seed) % static_cast<uint64_t>(sample_bytes)) +
      1;
}

bool AllocationSiteProfiler::OnAllocate(Heap* heap, ObjRef r,
                                        uint32_t bytes) {
  bytes_until_sample_ -= static_cast<int64_t>(bytes);
  if (bytes_until_sample_ > 0) return false;
  bytes_until_sample_ += static_cast<int64_t>(sample_bytes_);
  // Giant allocations may overshoot a whole interval; sample once and
  // realign rather than multi-sampling one object.
  if (bytes_until_sample_ <= 0) {
    bytes_until_sample_ = static_cast<int64_t>(sample_bytes_);
  }
  heap->MetaOf(r) |= kSampledBit;
  SiteStats& s = sites_[heap->ClassIdOf(r)];
  if (s.sampled == 0 || bytes < s.size_min) s.size_min = bytes;
  if (bytes > s.size_max) s.size_max = bytes;
  s.sampled += 1;
  s.bytes += bytes;
  total_sampled_ += 1;
  return true;
}

void AllocationSiteProfiler::OnSurvive(uint32_t class_id, bool promoted) {
  SiteStats& s = sites_[class_id];
  s.observed += 1;
  if (promoted) {
    s.promoted += 1;
  } else {
    s.survived += 1;
  }
}

double AllocationSiteProfiler::SurvivalRate(uint32_t class_id) const {
  auto it = sites_.find(class_id);
  if (it == sites_.end() || it->second.sampled == 0) return 0.0;
  return static_cast<double>(it->second.observed) /
         static_cast<double>(it->second.sampled);
}

}  // namespace deca::jvm
