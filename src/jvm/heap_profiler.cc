#include "jvm/heap_profiler.h"

#include "jvm/heap.h"

namespace deca::jvm {

HeapProfiler::HeapProfiler(Heap* heap, uint32_t class_id)
    : heap_(heap), class_id_(class_id) {}

void HeapProfiler::Sample(double t_ms) {
  object_counts_.Add(t_ms,
                     static_cast<double>(heap_->CountInstances(class_id_)));
  gc_time_ms_.Add(t_ms, heap_->stats().TotalPauseMs());
}

}  // namespace deca::jvm
