#ifndef DECA_JVM_G1_COLLECTOR_H_
#define DECA_JVM_G1_COLLECTOR_H_

#include <cstdint>
#include <vector>

#include "jvm/collector.h"
#include "jvm/heap_config.h"
#include "jvm/incremental_mark.h"

namespace deca::jvm {

class Heap;

/// Simplified G1: the heap is split into fixed-size regions typed
/// free/eden/survivor/old/humongous. Young collections evacuate all young
/// regions (object-level remembered set for old-to-young references, as in
/// the generational collectors). When old occupancy crosses the IHOP
/// threshold, a marking cycle runs (charged mostly as concurrent work),
/// wholly dead old/humongous regions are freed in place, and low-liveness
/// old regions are evacuated in a mixed collection that linearly scans the
/// marked old objects to fix incoming references.
class G1Collector : public Collector {
 public:
  G1Collector(Heap* heap, const HeapConfig& config);

  uint8_t* AllocateRaw(size_t bytes, bool large) override;
  void CollectMinor() override;
  void CollectFull() override;
  void WriteBarrier(ObjRef holder, ObjRef value) override;
  bool IsYoung(ObjRef obj) const override;

  size_t used_bytes() const override;
  size_t old_used_bytes() const override;
  size_t capacity_bytes() const override;
  void ForEachObject(const std::function<void(ObjRef)>& fn) const override;
  /// Advances an in-flight concurrent marking cycle by one budgeted slice;
  /// on completion runs the consuming mixed collection.
  void IncrementalMarkTick() override;
  const char* name() const override { return "G1"; }
  std::string DebugString() const override;

  // Introspection for tests.
  size_t region_bytes() const { return region_bytes_; }
  size_t num_regions() const { return regions_.size(); }
  size_t free_region_count() const;
  size_t young_region_count() const {
    return eden_regions_.size() + survivor_regions_.size();
  }

 private:
  enum class RegionType : uint8_t {
    kFree,
    kEden,
    kSurvivor,
    kOld,
    kHumStart,
    kHumCont,
  };

  struct Region {
    RegionType type = RegionType::kFree;
    uint8_t* top = nullptr;     // allocation top within the region
    size_t live_bytes = 0;      // from the most recent marking
    bool in_cset = false;       // member of the current collection set
    bool evac_failed = false;   // an object could not be evacuated
  };

  struct EvacTargets {
    int survivor_region = -1;  // region currently receiving survivors
    std::vector<size_t> new_survivors;  // survivor regions created this GC
  };

  uint8_t* RegionBegin(size_t idx) const {
    return region_base_ + idx * region_bytes_;
  }
  uint8_t* RegionEnd(size_t idx) const { return RegionBegin(idx + 1); }
  size_t RegionIndexOf(const uint8_t* p) const {
    return static_cast<size_t>(p - region_base_) / region_bytes_;
  }
  Region& RegionOf(const uint8_t* p) { return regions_[RegionIndexOf(p)]; }
  const Region& RegionOf(const uint8_t* p) const {
    return regions_[RegionIndexOf(p)];
  }

  /// Pops a free region and retypes it; returns -1 when none remain.
  int TakeFreeRegion(RegionType type);
  void FreeRegion(size_t idx);

  /// Bump-allocates in the region, or returns nullptr when full.
  uint8_t* BumpIn(int region_idx, size_t bytes);

  uint8_t* AllocateSmall(size_t bytes);
  uint8_t* AllocateOldDirect(size_t bytes);
  uint8_t* AllocateHumongous(size_t bytes);

  /// Evacuates every region flagged in_cset (all young regions, plus old
  /// victims during mixed collections). Aborts on evacuation failure
  /// (no free target regions), which the promotion guarantees prevent.
  void EvacuateCollectionSet(bool is_mixed);

  size_t young_used_bytes() const;

  void YoungGc();
  /// Marking + dead-region reclamation + optional old evacuation.
  /// `aggressive` selects every non-full old region as a candidate (used as
  /// the full-GC fallback). An in-flight concurrent cycle is force-finished
  /// (budget-bounded slices) and consumed instead of re-marking.
  void MixedGc(bool aggressive);
  /// Post-mark half of a mixed collection: humongous/dead-region reclaim,
  /// candidate selection, and collection-set evacuation, using the region
  /// liveness recorded by the most recent mark (epoch = heap gc_epoch).
  void MixedFinish(bool aggressive, double mark_ms);
  /// Begins a concurrent marking cycle (budgeted mode): takes a fresh
  /// epoch, zeroes region liveness, and snapshots the roots; allocation
  /// ticks drain the rest.
  void StartConcurrentCycle();

  bool ShouldStartMixed() const;

  void EvacuateSlot(ObjRef* slot, EvacTargets* t);
  void ScanObject(ObjRef owner, EvacTargets* t);

  void WalkRegion(size_t idx, const std::function<void(ObjRef)>& fn) const;

  Heap* heap_;
  HeapConfig cfg_;
  size_t region_bytes_ = 0;
  uint8_t* region_base_ = nullptr;
  std::vector<Region> regions_;
  std::vector<size_t> eden_regions_;
  std::vector<size_t> survivor_regions_;
  int cur_eden_ = -1;
  int cur_old_ = -1;                        // mutator-time old allocation
  size_t max_young_regions_ = 0;
  std::vector<ObjRef> remset_;
  std::vector<ObjRef> worklist_;
  std::vector<ObjRef> mark_stack_;
  IncrementalMarker marker_;                // resumable mark (budgeted mode)
  int mixed_backoff_ = 0;                   // young GCs to skip mixed checks
};

}  // namespace deca::jvm

#endif  // DECA_JVM_G1_COLLECTOR_H_
