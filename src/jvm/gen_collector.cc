#include "jvm/gen_collector.h"

#include <algorithm>
#include <cstring>

#include "common/clock.h"
#include "common/logging.h"
#include "jvm/heap.h"
#include "jvm/heap_profiler.h"
#include "obs/trace.h"

namespace deca::jvm {

namespace {
// Collections are attempted at most this many times per allocation before
// the request is reported as OOM.
constexpr int kMaxAllocAttempts = 3;
}  // namespace

GenCollectorBase::GenCollectorBase(Heap* heap, const HeapConfig& config)
    : heap_(heap), cfg_(config), marker_(heap) {
  uint8_t* start = heap->base() + 2 * kWordSize;  // word 0/1 reserved (null)
  size_t usable = config.heap_bytes;
  size_t young = AlignUp(static_cast<size_t>(
                             static_cast<double>(usable) *
                             config.young_fraction),
                         kWordSize);
  size_t survivor = AlignUp(static_cast<size_t>(static_cast<double>(young) *
                                                config.survivor_fraction),
                            kWordSize);
  size_t eden = young - 2 * survivor;
  size_t old = usable - young;
  DECA_CHECK_GT(eden, 4 * kWordSize);
  DECA_CHECK_GT(survivor, 4 * kWordSize);

  old_begin_ = start;
  old_end_ = old_begin_ + old;
  eden_begin_ = old_end_;
  eden_end_ = eden_begin_ + eden;
  sur_begin_[0] = eden_end_;
  sur_end_[0] = sur_begin_[0] + survivor;
  sur_begin_[1] = sur_end_[0];
  sur_end_[1] = sur_begin_[1] + survivor;

  old_top_ = old_begin_;
  eden_alloc_begin_ = eden_begin_;
  eden_top_ = eden_begin_;
  sur_top_[0] = sur_begin_[0];
  sur_top_[1] = sur_begin_[1];
}

uint8_t* GenCollectorBase::AllocateRaw(size_t bytes, bool large) {
  DECA_DCHECK(bytes % kWordSize == 0);
  pending_slack8_ = false;
  if (large) {
    bool slack = false;
    uint8_t* p = AllocateOldRaw(bytes, &slack);
    if (p == nullptr) {
      CollectFull();
      p = AllocateOldRaw(bytes, &slack);
    }
    if (p == nullptr && OnAllocationFailureAfterFull()) {
      p = AllocateOldRaw(bytes, &slack);
    }
    pending_slack8_ = slack;
    return p;
  }
  for (int attempt = 0; attempt <= kMaxAllocAttempts; ++attempt) {
    if (eden_top_ + bytes <= eden_end_) {
      uint8_t* p = eden_top_;
      eden_top_ += bytes;
      return p;
    }
    if (attempt == 0) {
      CollectMinor();
    } else if (attempt == 1) {
      CollectFull();
    } else if (attempt == 2) {
      if (!OnAllocationFailureAfterFull()) break;
    }
  }
  // The object does not fit in eden (or the heap is nearly full): fall back
  // to a direct old-generation allocation.
  bool slack = false;
  uint8_t* p = AllocateOldRaw(bytes, &slack);
  if (p == nullptr && OnAllocationFailureAfterFull()) {
    p = AllocateOldRaw(bytes, &slack);
  }
  pending_slack8_ = slack;
  return p;
}

void GenCollectorBase::WriteBarrier(ObjRef holder, ObjRef value) {
  const uint8_t* hp = heap_->Addr(holder);
  if (InYoungPtr(hp)) return;
  if (!InYoungPtr(heap_->Addr(value))) return;
  uint32_t& meta = heap_->MetaOf(holder);
  if ((meta & kInRemsetBit) != 0) return;
  meta |= kInRemsetBit;
  remset_.push_back(holder);
}

bool GenCollectorBase::IsYoung(ObjRef obj) const {
  return InYoungPtr(heap_->Addr(obj));
}

size_t GenCollectorBase::young_used_bytes() const {
  return static_cast<size_t>(eden_top_ - eden_alloc_begin_) +
         static_cast<size_t>(sur_top_[from_] - sur_begin_[from_]);
}

size_t GenCollectorBase::used_bytes() const {
  return old_used_bytes() + young_used_bytes();
}

size_t GenCollectorBase::capacity_bytes() const {
  return static_cast<size_t>(sur_end_[1] - old_begin_);
}

bool GenCollectorBase::PromotionGuaranteeHolds() const {
  return OldFreeBytes() >= young_used_bytes();
}

void GenCollectorBase::WalkRange(
    uint8_t* begin, uint8_t* top,
    const std::function<void(ObjRef)>& fn) const {
  uint8_t* p = begin;
  while (p < top) {
    ObjRef r = heap_->RefOf(p);
    uint32_t walk = heap_->WalkBytes(r);
    if (heap_->ClassIdOf(r) != 0) fn(r);
    p += walk;
  }
}

void GenCollectorBase::ForEachObject(
    const std::function<void(ObjRef)>& fn) const {
  WalkRange(old_begin_, old_top_, fn);
  WalkRange(eden_alloc_begin_, eden_top_, fn);
  WalkRange(sur_begin_[0], sur_top_[0], fn);
  WalkRange(sur_begin_[1], sur_top_[1], fn);
}

// -- minor collection -------------------------------------------------------

struct GenCollectorBase::EvacuationState {
  int to;
};

void GenCollectorBase::CollectMinor() {
  if (young_used_bytes() == 0) return;
  if (!PromotionGuaranteeHolds()) {
    // Worst-case promotion guarantee failed: a full collection both
    // reclaims the young generation and makes room in the old one. This is
    // exactly the "minor GCs escalate into frequent full GCs" behaviour
    // the paper reports for caching-heavy Spark executors.
    CollectFull();
    return;
  }
  minor_promo_failed_ = false;
  MinorGcImpl();
  if (minor_promo_failed_) {
    minor_promo_failed_ = false;
    CollectFull();
    return;
  }
  PostMinor();
}

void GenCollectorBase::MinorGcImpl() {
  Stopwatch sw;
  GcStats& st = heap_->mutable_stats();
  EvacuationState es{1 - from_};
  sur_top_[es.to] = sur_begin_[es.to];
  worklist_.clear();
  promoted_bytes_cur_minor_ = 0;

  heap_->VisitRoots([&](ObjRef* slot) { EvacuateSlot(slot, &es); });

  std::vector<ObjRef> old_remset;
  old_remset.swap(remset_);
  for (ObjRef o : old_remset) heap_->MetaOf(o) &= ~kInRemsetBit;
  for (ObjRef o : old_remset) ScanObject(o, &es);

  while (!worklist_.empty()) {
    ObjRef o = worklist_.back();
    worklist_.pop_back();
    ScanObject(o, &es);
  }

  if (!minor_promo_failed_) {
    eden_top_ = eden_alloc_begin_;
    sur_top_[from_] = sur_begin_[from_];
    from_ = es.to;
  }
  // On promotion failure the from-space still holds self-forwarded live
  // objects; spaces are left as-is and the caller escalates to a full
  // collection, whose fresh mark epoch invalidates the stale forwards.
  promoted_bytes_last_minor_ = promoted_bytes_cur_minor_;

  st.minor_count += 1;
  double pause_ms = sw.ElapsedMillis();
  st.minor_pause_ms += pause_ms;
  heap_->RecordPauseMs(pause_ms);
  if (auto* rec = obs::Current()) {
    rec->CompleteSpanMs(obs::Cat::kGc, "minor_pause", pause_ms,
                        static_cast<double>(st.minor_count),
                        static_cast<double>(promoted_bytes_last_minor_));
  }
}

void GenCollectorBase::EvacuateSlot(ObjRef* slot, EvacuationState* es) {
  ObjRef r = *slot;
  uint8_t* p = heap_->Addr(r);
  if (!InYoungPtr(p)) return;
  uint64_t gw = heap_->GcWordOf(r);
  if (GcIsForwarded(gw)) {
    *slot = GcForwardRef(gw);
    return;
  }
  GcStats& st = heap_->mutable_stats();
  uint32_t size = heap_->ObjectBytes(r);
  uint32_t meta = heap_->MetaOf(r);
  uint32_t age = MetaAge(meta) + 1;
  uint8_t* dst = nullptr;
  bool promoted = false;
  bool slack8 = false;
  if (age < cfg_.tenure_threshold &&
      sur_top_[es->to] + size <= sur_end_[es->to]) {
    dst = sur_top_[es->to];
    sur_top_[es->to] += size;
  } else {
    dst = AllocateOldRaw(size, &slack8);
    if (dst != nullptr) {
      promoted = true;
    } else if (sur_top_[es->to] + size <= sur_end_[es->to]) {
      // Promotion failed (old-gen fragmentation): keep in survivor.
      dst = sur_top_[es->to];
      sur_top_[es->to] += size;
    } else {
      // Promotion failure: self-forward in place (Hotspot's handling); the
      // caller follows up with a full collection.
      heap_->GcWordOf(r) = GcMakeForward(r, /*keep_mark=*/false);
      minor_promo_failed_ = true;
      *slot = r;
      worklist_.push_back(r);
      st.objects_traced += 1;
      return;
    }
  }
  std::memcpy(dst, p, size);
  ObjRef nr = heap_->RefOf(dst);
  uint32_t nmeta =
      MetaWithAge(meta & ~(kInRemsetBit | kSlack8Bit), promoted ? 0 : age);
  if ((meta & kSampledBit) != 0) {
    // First evacuation of a sampled object: report the survival
    // observation and drop the tag (each sample is observed once).
    nmeta &= ~kSampledBit;
    if (auto* prof = heap_->alloc_profiler()) {
      prof->OnSurvive(MetaClassId(meta), promoted);
    }
  }
  if (slack8) nmeta |= kSlack8Bit;
  heap_->MetaOf(nr) = nmeta;
  heap_->GcWordOf(nr) = 0;
  heap_->GcWordOf(r) = GcMakeForward(nr, /*keep_mark=*/false);
  *slot = nr;
  worklist_.push_back(nr);

  st.objects_traced += 1;
  st.bytes_copied += size;
  if (promoted) {
    st.objects_promoted += 1;
    promoted_bytes_cur_minor_ += size;
  }
}

void GenCollectorBase::ScanObject(ObjRef owner, EvacuationState* es) {
  bool has_young = false;
  heap_->VisitRefSlots(owner, [&](ObjRef* s) {
    if (*s == kNullRef) return;
    EvacuateSlot(s, es);
    if (InYoungPtr(heap_->Addr(*s))) has_young = true;
  });
  if (has_young && !InYoungPtr(heap_->Addr(owner))) {
    uint32_t& m = heap_->MetaOf(owner);
    if ((m & kInRemsetBit) == 0) {
      m |= kInRemsetBit;
      remset_.push_back(owner);
    }
  }
}

// -- full collection machinery ----------------------------------------------

size_t GenCollectorBase::MarkAll(uint64_t epoch) {
  if (cfg_.pause_budget_ms > 0) {
    // Budgeted mode: run the identical transitive mark as back-to-back
    // bounded slices so every slice lands in the pause histogram.
    marker_.Begin(epoch);
    return marker_.FinishAll(cfg_.pause_budget_ms);
  }
  Stopwatch sw;
  size_t live = MarkAllReachable(heap_, epoch, &mark_stack_);
  heap_->RecordMarkSlice(sw.ElapsedMillis(), /*standalone=*/false);
  return live;
}

void GenCollectorBase::CompactAll(uint64_t epoch) {
  GcStats& st = heap_->mutable_stats();
  auto walk_all = [&](const std::function<void(ObjRef)>& fn) {
    WalkRange(old_begin_, old_top_, fn);
    WalkRange(eden_alloc_begin_, eden_top_, fn);
    WalkRange(sur_begin_[0], sur_top_[0], fn);
    WalkRange(sur_begin_[1], sur_top_[1], fn);
  };

  // Pass 1: compute forwarding addresses (slide towards old_begin_).
  uint8_t* target = old_begin_;
  walk_all([&](ObjRef r) {
    uint64_t& gw = heap_->GcWordOf(r);
    if (!GcIsMarkedIn(gw, epoch)) return;
    uint32_t size = heap_->ObjectBytes(r);
    gw = GcMakeForwardMarked(heap_->RefOf(target), epoch);
    target += size;
  });
  DECA_CHECK_LE(static_cast<const void*>(target),
                static_cast<const void*>(sur_begin_[0]))
      << "live data exceeds heap capacity during full GC";

  // Pass 2: update all reference slots (roots + live objects).
  heap_->VisitRoots(
      [&](ObjRef* s) { *s = GcForwardRef(heap_->GcWordOf(*s)); });
  walk_all([&](ObjRef r) {
    if (!GcIsMarkedIn(heap_->GcWordOf(r), epoch)) return;
    heap_->VisitRefSlots(r, [&](ObjRef* s) {
      if (*s != kNullRef) *s = GcForwardRef(heap_->GcWordOf(*s));
    });
  });

  // Pass 3: slide objects to their new locations (ascending addresses, so
  // every destination is at or below its source).
  size_t moved = 0;
  walk_all([&](ObjRef r) {
    uint64_t gw = heap_->GcWordOf(r);
    if (!GcIsMarkedIn(gw, epoch)) return;
    uint32_t size = heap_->ObjectBytes(r);
    uint8_t* src = heap_->Addr(r);
    uint8_t* dst = heap_->Addr(GcForwardRef(gw));
    if (dst != src) std::memmove(dst, src, size);
    ObjRef nr = heap_->RefOf(dst);
    heap_->GcWordOf(nr) = 0;
    heap_->MetaOf(nr) &= ~(kInRemsetBit | kSlack8Bit);
    moved += size;
  });
  st.bytes_copied += moved;

  old_top_ = target;
  PostCompact();
  RecomputeEdenAfterCompact();
  sur_top_[0] = sur_begin_[0];
  sur_top_[1] = sur_begin_[1];
  from_ = 0;
  remset_.clear();
}

void GenCollectorBase::RecomputeEdenAfterCompact() {
  uint8_t* p = old_top_;
  if (p < eden_begin_) p = eden_begin_;
  if (p > eden_end_) p = eden_end_;
  eden_alloc_begin_ = p;
  eden_top_ = p;
}

// -- ParallelScavenge ---------------------------------------------------------

PsCollector::PsCollector(Heap* heap, const HeapConfig& config)
    : GenCollectorBase(heap, config) {}

uint8_t* PsCollector::AllocateOldRaw(size_t bytes, bool* slack8) {
  *slack8 = false;
  if (old_top_ + bytes > old_end_) return nullptr;
  uint8_t* p = old_top_;
  old_top_ += bytes;
  return p;
}

size_t PsCollector::OldFreeBytes() const {
  return old_top_ >= old_end_ ? 0
                              : static_cast<size_t>(old_end_ - old_top_);
}

size_t PsCollector::old_used_bytes() const {
  return static_cast<size_t>(old_top_ - old_begin_);
}

void PsCollector::CollectFull() {
  Stopwatch sw;
  uint64_t epoch = heap_->NextGcEpoch();
  MarkAll(epoch);
  CompactAll(epoch);
  GcStats& st = heap_->mutable_stats();
  st.full_count += 1;
  double pause_ms = sw.ElapsedMillis();
  st.full_pause_ms += pause_ms;
  heap_->RecordPauseMs(pause_ms);
  if (auto* rec = obs::Current()) {
    rec->CompleteSpanMs(obs::Cat::kGc, "full_pause", pause_ms,
                        static_cast<double>(st.full_count),
                        static_cast<double>(old_used_bytes()));
  }
}

// -- CMS ----------------------------------------------------------------------

CmsCollector::CmsCollector(Heap* heap, const HeapConfig& config)
    : GenCollectorBase(heap, config) {
  size_t old_bytes = static_cast<size_t>(old_end_ - old_begin_);
  WriteFreeChunk(old_begin_, old_bytes);
  free_list_.push_back({old_begin_, old_bytes});
  // CMS keeps the old space parsable end to end: old_top_ is the walk limit.
  old_top_ = old_end_;
}

void CmsCollector::WriteFreeChunk(uint8_t* begin, size_t bytes) {
  DECA_DCHECK(bytes >= kHeaderBytes);
  ObjRef r = heap_->RefOf(begin);
  heap_->MetaOf(r) = 0;  // free-chunk pseudo class
  heap_->LengthOf(r) = static_cast<uint32_t>(bytes - kHeaderBytes);
  heap_->GcWordOf(r) = 0;
}

uint8_t* CmsCollector::AllocateOldRaw(size_t bytes, bool* slack8) {
  *slack8 = false;
  for (size_t i = 0; i < free_list_.size(); ++i) {
    FreeChunk& c = free_list_[i];
    if (c.bytes < bytes) continue;
    size_t remainder = c.bytes - bytes;
    uint8_t* p = c.begin;
    if (remainder == 0) {
      free_list_.erase(free_list_.begin() + static_cast<long>(i));
    } else if (remainder == kWordSize) {
      // Too small for a filler header: grant the slack to the object.
      *slack8 = true;
      free_list_.erase(free_list_.begin() + static_cast<long>(i));
    } else {
      c.begin += bytes;
      c.bytes = remainder;
      WriteFreeChunk(c.begin, remainder);
    }
    return p;
  }
  return nullptr;
}

bool CmsCollector::PromotionGuaranteeHolds() const {
  // Promotion-rate estimate only: with a cache-saturated old generation
  // (the paper's scenario) CMS keeps scavenging — occasional promotion
  // failures degrade to a concurrent-mode-failure compaction instead of
  // stopping the world on every eden fill the way PS's worst-case
  // guarantee does.
  size_t need = std::max<size_t>(64u << 10, 4 * promoted_bytes_last_minor_);
  return OldFreeBytes() >= std::min(need, young_used_bytes());
}

size_t CmsCollector::FreeListBytes() const {
  size_t total = 0;
  for (const auto& c : free_list_) total += c.bytes;
  return total;
}

size_t CmsCollector::OldFreeBytes() const { return FreeListBytes(); }

size_t CmsCollector::old_used_bytes() const {
  return static_cast<size_t>(old_top_ - old_begin_) - FreeListBytes();
}

void CmsCollector::SweepOld(uint64_t epoch) {
  free_list_.clear();
  uint8_t* p = old_begin_;
  uint8_t* end = old_top_;
  uint8_t* run_begin = nullptr;
  while (p < end) {
    ObjRef r = heap_->RefOf(p);
    uint32_t walk = heap_->WalkBytes(r);
    bool live = heap_->ClassIdOf(r) != 0 &&
                GcIsMarkedIn(heap_->GcWordOf(r), epoch);
    if (live) {
      if (run_begin != nullptr) {
        size_t bytes = static_cast<size_t>(p - run_begin);
        WriteFreeChunk(run_begin, bytes);
        free_list_.push_back({run_begin, bytes});
        run_begin = nullptr;
      }
    } else if (run_begin == nullptr) {
      run_begin = p;
    }
    p += walk;
  }
  if (run_begin != nullptr) {
    size_t bytes = static_cast<size_t>(end - run_begin);
    WriteFreeChunk(run_begin, bytes);
    free_list_.push_back({run_begin, bytes});
  }
}

void CmsCollector::CollectMinor() {
  // Evacuation moves objects and overwrites their gcwords, which would
  // corrupt an in-flight incremental mark: force-complete the cycle first.
  if (marker_.active()) CompleteActiveCycle();
  GenCollectorBase::CollectMinor();
}

void CmsCollector::CollectFull() {
  if (in_full_gc_) return;
  if (marker_.active()) CompleteActiveCycle();
  in_full_gc_ = true;
  // Empty the young generation first when the promotion guarantee already
  // holds, so the sweep's survivors are stable.
  bool minor_done = false;
  if (young_used_bytes() > 0 && PromotionGuaranteeHolds()) {
    minor_promo_failed_ = false;
    MinorGcImpl();
    minor_done = true;
  }

  Stopwatch sw;
  uint64_t epoch = heap_->NextGcEpoch();
  MarkAll(epoch);
  SweepOld(epoch);
  // Drop remembered-set entries that died in this cycle.
  std::vector<ObjRef> survivors;
  survivors.reserve(remset_.size());
  for (ObjRef o : remset_) {
    if (GcIsMarkedIn(heap_->GcWordOf(o), epoch)) {
      survivors.push_back(o);
    }
  }
  remset_.swap(survivors);

  double total = sw.ElapsedMillis();
  GcStats& st = heap_->mutable_stats();
  st.full_count += 1;
  st.full_pause_ms += total * cfg_.concurrent_pause_share;
  st.concurrent_ms += total * (1.0 - cfg_.concurrent_pause_share);
  heap_->RecordPauseMs(total * cfg_.concurrent_pause_share);
  if (auto* rec = obs::Current()) {
    rec->CompleteSpanMs(obs::Cat::kGc, "full_pause",
                        total * cfg_.concurrent_pause_share,
                        static_cast<double>(st.full_count),
                        static_cast<double>(old_used_bytes()));
    rec->CompleteSpanMs(obs::Cat::kGc, "concurrent_sweep",
                        total * (1.0 - cfg_.concurrent_pause_share),
                        static_cast<double>(st.full_count));
  }

  // If the guarantee failed on entry, the sweep may have freed enough old
  // space to make the minor collection possible now — without this, the
  // young generation stays full and the caller escalates to a
  // stop-the-world compaction (concurrent mode failure) unnecessarily.
  if (!minor_done && young_used_bytes() > 0 && PromotionGuaranteeHolds()) {
    minor_promo_failed_ = false;
    MinorGcImpl();
  }
  // A promotion failure inside this cycle leaves young unswept; the
  // allocation path's compaction fallback recovers (concurrent mode
  // failure). Clear the flag so CollectMinor does not double-escalate.
  minor_promo_failed_ = false;
  in_full_gc_ = false;
}

bool CmsCollector::OnAllocationFailureAfterFull() {
  // Concurrent mode failure: stop the world and compact everything.
  if (marker_.active()) CompleteActiveCycle();
  Stopwatch sw;
  uint64_t epoch = heap_->NextGcEpoch();
  MarkAll(epoch);
  CompactAll(epoch);
  GcStats& st = heap_->mutable_stats();
  st.full_count += 1;
  double pause_ms = sw.ElapsedMillis();
  st.full_pause_ms += pause_ms;
  heap_->RecordPauseMs(pause_ms);
  if (auto* rec = obs::Current()) {
    rec->CompleteSpanMs(obs::Cat::kGc, "concurrent_mode_failure", pause_ms,
                        static_cast<double>(st.full_count),
                        static_cast<double>(old_used_bytes()));
  }
  return true;
}

void CmsCollector::PostMinor() {
  // CMSInitiatingOccupancyFraction analogue: kick off a (mostly
  // concurrent) mark-sweep cycle once the old generation is 70% full.
  // One cycle per several minor collections — a concurrent collector's
  // cycle spans many scavenges; re-marking after every minor would burn
  // the whole mutator budget.
  ++minors_since_cycle_;
  size_t old_capacity = static_cast<size_t>(old_end_ - old_begin_);
  if (old_used_bytes() * 10 > old_capacity * 7 &&
      minors_since_cycle_ >= kMinorsPerCmsCycle) {
    minors_since_cycle_ = 0;
    if (cfg_.pause_budget_ms > 0) {
      // Budgeted mode: snapshot the roots now (the young generation was
      // just emptied) and let allocation ticks drain the mark in bounded
      // slices; the sweep runs when the cycle completes.
      marker_.Begin(heap_->NextGcEpoch());
    } else {
      CollectFull();
    }
  }
}

void CmsCollector::IncrementalMarkTick() {
  if (!marker_.active()) return;
  if (marker_.Step(cfg_.pause_budget_ms, /*standalone=*/true)) {
    FinishIncrementalCycle();
  }
}

void CmsCollector::CompleteActiveCycle() {
  marker_.FinishAll(cfg_.pause_budget_ms);
  FinishIncrementalCycle();
}

void CmsCollector::FinishIncrementalCycle() {
  DECA_CHECK(!marker_.active());
  Stopwatch sw;
  uint64_t epoch = marker_.epoch();
  SweepOld(epoch);
  // Drop remembered-set entries that died in this cycle (mirrors the
  // monolithic CollectFull).
  std::vector<ObjRef> survivors;
  survivors.reserve(remset_.size());
  for (ObjRef o : remset_) {
    if (GcIsMarkedIn(heap_->GcWordOf(o), epoch)) {
      survivors.push_back(o);
    }
  }
  remset_.swap(survivors);

  double total = sw.ElapsedMillis();
  GcStats& st = heap_->mutable_stats();
  st.full_count += 1;
  st.full_pause_ms += total * cfg_.concurrent_pause_share;
  st.concurrent_ms += total * (1.0 - cfg_.concurrent_pause_share);
  heap_->RecordPauseMs(total * cfg_.concurrent_pause_share);
  if (auto* rec = obs::Current()) {
    rec->CompleteSpanMs(obs::Cat::kGc, "full_pause",
                        total * cfg_.concurrent_pause_share,
                        static_cast<double>(st.full_count),
                        static_cast<double>(old_used_bytes()));
    rec->CompleteSpanMs(obs::Cat::kGc, "concurrent_sweep",
                        total * (1.0 - cfg_.concurrent_pause_share),
                        static_cast<double>(st.full_count));
  }
}

void CmsCollector::PostCompact() {
  free_list_.clear();
  if (old_top_ < old_end_) {
    size_t tail = static_cast<size_t>(old_end_ - old_top_);
    if (tail >= kHeaderBytes) {
      WriteFreeChunk(old_top_, tail);
      free_list_.push_back({old_top_, tail});
      old_top_ = old_end_;
    }
    // An 8-byte tail cannot hold a filler header; leave old_top_ at the
    // dense prefix so the walk limit excludes the hole.
  }
}

}  // namespace deca::jvm
