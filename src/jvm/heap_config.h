#ifndef DECA_JVM_HEAP_CONFIG_H_
#define DECA_JVM_HEAP_CONFIG_H_

#include <cstddef>
#include <cstdint>

namespace deca::alloc {
class PageAllocator;
}  // namespace deca::alloc

namespace deca::jvm {

/// Which garbage collector manages the heap. Mirrors the three Hotspot
/// collectors the paper evaluates (Section 6.4, Table 4).
enum class GcAlgorithm {
  kParallelScavenge,    // default: STW copying minor + mark-compact full
  kConcurrentMarkSweep, // free-list old gen, mostly-concurrent major
  kG1,                  // region-based, liveness-driven mixed collections
};

const char* GcAlgorithmName(GcAlgorithm a);

/// Static sizing and policy knobs for one simulated executor heap.
struct HeapConfig {
  /// Total managed heap size (the executor's -Xmx).
  size_t heap_bytes = 64u << 20;

  /// Fraction of the heap given to the young generation (PS/CMS) or the
  /// maximum young region share (G1).
  double young_fraction = 0.25;

  /// Each survivor's share of the young generation (PS/CMS).
  double survivor_fraction = 0.125;

  /// Object age (number of survived minor GCs) at which objects are
  /// promoted to the old generation.
  uint32_t tenure_threshold = 4;

  /// Objects at least this large are allocated directly in the old
  /// generation (PS/CMS) or as humongous regions (G1).
  size_t large_object_bytes = 32u << 10;

  GcAlgorithm algorithm = GcAlgorithm::kParallelScavenge;

  /// G1: region size; 0 = auto (heap/128 clamped to [64KB, 1MB]).
  size_t g1_region_bytes = 0;

  /// G1: old-generation occupancy fraction that triggers a marking cycle
  /// (InitiatingHeapOccupancyPercent analogue).
  double g1_ihop = 0.45;

  /// G1: old regions with live ratio below this become evacuation
  /// candidates during mixed collections.
  double g1_live_threshold = 0.85;

  /// CMS/G1: share of major-collection mark/sweep work charged as
  /// stop-the-world pause; the remainder is accounted as concurrent work
  /// (running on spare cores in a real deployment).
  double concurrent_pause_share = 0.1;

  /// Marking pause budget in milliseconds. 0 (default) keeps the
  /// monolithic stop-the-world mark phases byte-for-byte identical to the
  /// historical behaviour. > 0 splits every mark into resumable slices of
  /// at most this duration: allocation-triggered collections run their
  /// slices back to back inside the pause (same marked set, bounded slice
  /// samples), while occupancy-triggered cycles (CMS background cycle, G1
  /// IHOP mark) become genuinely incremental with mutator progress between
  /// slices (SATB dirty-logging keeps them sound).
  double pause_budget_ms = 0.0;

  /// Sampling allocation profiler: take one survival sample every this
  /// many allocated bytes (0 = profiler disabled). Sampling is
  /// deterministic: the first sample point is derived from profile_seed.
  size_t profile_sample_bytes = 0;

  /// Seed for the profiler's initial sampling offset.
  uint64_t profile_seed = 1;

  /// Runtime wiring (never serialized; set by the owning Executor): when
  /// non-null the heap's backing buffer is carved from this allocator — a
  /// huge-page arena mapping under DECA_ARENA=1, a counted `new[]`
  /// otherwise — so every PageGroup page physically lives in arena memory
  /// while the GC simulation stays byte-for-byte identical. Null (the
  /// default, and every standalone test heap) keeps the plain
  /// make_unique buffer.
  alloc::PageAllocator* page_allocator = nullptr;
};

}  // namespace deca::jvm

#endif  // DECA_JVM_HEAP_CONFIG_H_
