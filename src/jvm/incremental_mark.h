#ifndef DECA_JVM_INCREMENTAL_MARK_H_
#define DECA_JVM_INCREMENTAL_MARK_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "jvm/object_model.h"

namespace deca::jvm {

class Heap;

/// Resumable snapshot-at-the-beginning marking. A cycle begins with a
/// stop-the-world root scan (Begin), then drains the gray stack in slices
/// bounded by a pause budget (Step), with mutator progress allowed between
/// slices. Soundness under mutation follows the classic SATB argument:
///
///  - Begin grays every root-referenced object, snapshotting the root set.
///  - Every in-heap reference-slot overwrite logs the old value through
///    OnRefOverwrite (the heap's ref-store path calls it while a marker is
///    active), so an edge deleted mid-cycle cannot hide its target.
///  - Objects allocated mid-cycle are marked black on allocation
///    (OnAllocate), so the sweep/reclaim that consumes the mark cannot
///    free them.
///
/// Together these guarantee every object reachable at Begin (plus every
/// object allocated during the cycle) is marked; objects that die
/// mid-cycle may float one cycle, which only delays reclamation.
///
/// The marker does NOT tolerate concurrent moving collections: any
/// evacuation or compaction invalidates the gray stack and the epoch
/// marks, so collectors force-finish an active cycle (back-to-back
/// budgeted slices) before moving anything.
class IncrementalMarker {
 public:
  explicit IncrementalMarker(Heap* heap) : heap_(heap) {}

  IncrementalMarker(const IncrementalMarker&) = delete;
  IncrementalMarker& operator=(const IncrementalMarker&) = delete;

  bool active() const { return active_; }
  uint64_t epoch() const { return epoch_; }
  /// Live bytes attributed so far (final once the cycle completes).
  size_t live_bytes() const { return live_bytes_; }

  /// Starts a cycle: snapshots the roots (one slice-sized pause is
  /// recorded for the scan) and registers this marker with the heap so
  /// the mutator's SATB / allocate-black hooks fire. `on_mark` is invoked
  /// once per marked object (G1 attributes region live bytes with it).
  void Begin(uint64_t epoch, std::function<void(ObjRef)> on_mark = nullptr);

  /// Drains gray objects for at most `budget_ms` (<= 0 drains fully).
  /// Records the slice into the heap's mark-slice histogram and trace
  /// ring. `standalone` marks the slice as a mutator-visible pause (a
  /// tick between mutator work) rather than a sub-phase of an enclosing
  /// collection pause. Returns true when marking is complete; the marker
  /// deregisters itself but keeps live_bytes()/epoch() readable.
  bool Step(double budget_ms, bool standalone);

  /// Runs Step back to back until done; returns total live bytes.
  size_t FinishAll(double budget_ms);

  /// Drops all cycle state without completing (crash-wipe / heap reset).
  void Abandon();

  /// SATB write barrier: called with the about-to-be-overwritten value of
  /// a reference slot. Grays it if unmarked.
  void OnRefOverwrite(ObjRef old_value);

  /// Allocate-black: new objects are marked immediately so they survive
  /// the sweep that consumes this cycle's marks. Runs on_mark so
  /// collector-side liveness accounting (G1 region live bytes) includes
  /// them.
  void OnAllocate(ObjRef r);

 private:
  void TryMark(ObjRef r);
  void Deactivate();

  Heap* heap_;
  bool active_ = false;
  uint64_t epoch_ = 0;
  size_t live_bytes_ = 0;
  uint64_t count_ = 0;  // objects marked this cycle (folded into stats)
  std::vector<ObjRef> gray_;
  std::function<void(ObjRef)> on_mark_;
};

}  // namespace deca::jvm

#endif  // DECA_JVM_INCREMENTAL_MARK_H_
