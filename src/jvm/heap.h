#ifndef DECA_JVM_HEAP_H_
#define DECA_JVM_HEAP_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <stdexcept>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "alloc/page_allocator.h"
#include "common/bytes.h"
#include "common/histogram.h"
#include "common/logging.h"
#include "jvm/class_registry.h"
#include "jvm/collector.h"
#include "jvm/gc_stats.h"
#include "jvm/heap_config.h"
#include "jvm/object_model.h"
#include "memory/memory_manager.h"

namespace deca::jvm {

class AllocationSiteProfiler;
class Heap;
class IncrementalMarker;

/// Thrown (instead of aborting) when a heap with `oom_throws` enabled
/// cannot satisfy an allocation even after its degradation ladder. The
/// engine's task-retry layer converts it into a retryable TaskOomFailure.
class OutOfMemoryError : public std::runtime_error {
 public:
  OutOfMemoryError(uint32_t bytes_requested, const std::string& class_name,
                   std::string heap_dump, bool injected)
      : std::runtime_error("managed heap OOM allocating " +
                           std::to_string(bytes_requested) + " bytes of " +
                           class_name + (injected ? " (injected)" : "")),
        bytes_requested_(bytes_requested),
        injected_(injected),
        heap_dump_(std::move(heap_dump)) {}

  uint32_t bytes_requested() const { return bytes_requested_; }
  /// True when the failure was forced by fault injection rather than a
  /// genuinely exhausted heap.
  bool injected() const { return injected_; }
  /// Collector state dump captured at the failure point.
  const std::string& heap_dump() const { return heap_dump_; }

 private:
  uint32_t bytes_requested_;
  bool injected_;
  std::string heap_dump_;
};

/// Supplies additional GC roots (e.g. a cache manager's block references).
/// Providers are visited at every collection; they must call `fn` with the
/// address of every live reference slot they own so moving collectors can
/// update it in place.
class RootProvider {
 public:
  virtual ~RootProvider() = default;
  virtual void VisitRoots(const std::function<void(ObjRef*)>& fn) = 0;
};

/// A RootProvider backed by a plain vector of references. Containers that
/// pin managed objects (cache blocks, page groups) embed one of these.
class VectorRootProvider : public RootProvider {
 public:
  void VisitRoots(const std::function<void(ObjRef*)>& fn) override {
    for (auto& r : refs_) {
      if (r != kNullRef) fn(&r);
    }
  }
  std::vector<ObjRef>& refs() { return refs_; }
  const std::vector<ObjRef>& refs() const { return refs_; }

 private:
  std::vector<ObjRef> refs_;
};

/// A GC-safe reference to a managed object. The referenced slot lives in
/// the heap's handle stack and is updated by moving collectors; the Handle
/// itself is a trivially copyable (heap, slot index) pair. Handles are only
/// valid while their enclosing HandleScope is alive.
class Handle {
 public:
  Handle() : heap_(nullptr), index_(0) {}
  Handle(Heap* heap, uint32_t index) : heap_(heap), index_(index) {}

  inline ObjRef get() const;
  inline void set(ObjRef value);
  inline ObjRef operator*() const;
  bool valid() const { return heap_ != nullptr; }

 private:
  Heap* heap_;
  uint32_t index_;
};

/// One simulated JVM heap (one executor). Single-mutator: allocation,
/// field access, and collections all happen on the owning thread. The
/// owner is the constructing thread until the execution runtime
/// (src/exec) hands the heap to an executor thread for a stage and
/// returns it to the driver at the stage barrier (SetMutatorThread).
/// Debug builds assert the invariant on every allocation, field access
/// and collection so a cross-thread touch fails fast instead of
/// corrupting the simulation.
///
/// Usage discipline (mirrors JNI local references): any raw ObjRef held in
/// a C++ local across a potential allocation must be wrapped in a Handle
/// inside an active HandleScope, because every allocation may trigger a
/// moving collection.
class Heap {
 public:
  Heap(const HeapConfig& config, ClassRegistry* registry);
  ~Heap();

  Heap(const Heap&) = delete;
  Heap& operator=(const Heap&) = delete;

  // -- Allocation ---------------------------------------------------------

  /// Allocates an instance of `class_id` with zeroed payload; aborts on OOM.
  ObjRef AllocateInstance(uint32_t class_id);
  /// Allocates an array with zeroed elements; aborts on OOM.
  ObjRef AllocateArray(uint32_t class_id, uint32_t length);
  /// Like the above but returns kNullRef instead of aborting on OOM.
  ObjRef TryAllocateInstance(uint32_t class_id);
  ObjRef TryAllocateArray(uint32_t class_id, uint32_t length);

  // -- Object access ------------------------------------------------------

  uint8_t* Addr(ObjRef ref) const {
    DECA_DCHECK(ref != kNullRef);
    return base_ + static_cast<uint64_t>(ref) * kWordSize;
  }
  ObjRef RefOf(const uint8_t* p) const {
    return static_cast<ObjRef>((p - base_) / kWordSize);
  }

  uint32_t& MetaOf(ObjRef ref) const {
    return *reinterpret_cast<uint32_t*>(Addr(ref));
  }
  uint32_t& LengthOf(ObjRef ref) const {
    return *reinterpret_cast<uint32_t*>(Addr(ref) + 4);
  }
  uint64_t& GcWordOf(ObjRef ref) const {
    return *reinterpret_cast<uint64_t*>(Addr(ref) + 8);
  }
  uint32_t ClassIdOf(ObjRef ref) const { return MetaClassId(MetaOf(ref)); }
  const ClassInfo& ClassOf(ObjRef ref) const {
    return registry_->Get(ClassIdOf(ref));
  }
  uint32_t ArrayLength(ObjRef ref) const { return LengthOf(ref); }

  /// Object size in bytes (header included).
  uint32_t ObjectBytes(ObjRef ref) const {
    return ClassOf(ref).ObjectBytes(LengthOf(ref));
  }
  /// Size used for address-order heap walking: object size plus any
  /// allocator slack recorded in the header.
  uint32_t WalkBytes(ObjRef ref) const {
    return ObjectBytes(ref) + ((MetaOf(ref) & kSlack8Bit) != 0 ? 8 : 0);
  }

  template <typename T>
  T GetField(ObjRef obj, uint32_t offset) const {
    AssertMutator();
    DECA_DCHECK_LE(offset + sizeof(T), ClassOf(obj).payload_bytes());
    return LoadRaw<T>(Addr(obj) + kHeaderBytes + offset);
  }
  template <typename T>
  void SetField(ObjRef obj, uint32_t offset, T value) {
    AssertMutator();
    DECA_DCHECK_LE(offset + sizeof(T), ClassOf(obj).payload_bytes());
    StoreRaw(Addr(obj) + kHeaderBytes + offset, value);
  }

  ObjRef GetRefField(ObjRef obj, uint32_t offset) const {
    AssertMutator();
    DECA_DCHECK_LE(offset + sizeof(ObjRef), ClassOf(obj).payload_bytes());
    return LoadRaw<ObjRef>(Addr(obj) + kHeaderBytes + offset);
  }
  void SetRefField(ObjRef obj, uint32_t offset, ObjRef value) {
    AssertMutator();
    DECA_DCHECK_LE(offset + sizeof(ObjRef), ClassOf(obj).payload_bytes());
    uint8_t* slot = Addr(obj) + kHeaderBytes + offset;
    if (active_marker_ != nullptr) SatbLogOverwrite(LoadRaw<ObjRef>(slot));
    StoreRaw(slot, value);
    if (value != kNullRef) collector_->WriteBarrier(obj, value);
  }

  template <typename T>
  T GetElem(ObjRef arr, uint32_t i) const {
    AssertMutator();
    DECA_DCHECK(i < LengthOf(arr));
    return LoadRaw<T>(Addr(arr) + kHeaderBytes + i * sizeof(T));
  }
  template <typename T>
  void SetElem(ObjRef arr, uint32_t i, T value) {
    AssertMutator();
    DECA_DCHECK(i < LengthOf(arr));
    StoreRaw(Addr(arr) + kHeaderBytes + i * sizeof(T), value);
  }
  ObjRef GetRefElem(ObjRef arr, uint32_t i) const {
    return GetElem<ObjRef>(arr, i);
  }
  void SetRefElem(ObjRef arr, uint32_t i, ObjRef value) {
    if (active_marker_ != nullptr) SatbLogOverwrite(GetElem<ObjRef>(arr, i));
    SetElem<ObjRef>(arr, i, value);
    if (value != kNullRef) collector_->WriteBarrier(arr, value);
  }

  /// Raw payload pointer of an array (valid until the next allocation).
  uint8_t* ArrayData(ObjRef arr) const { return Addr(arr) + kHeaderBytes; }

  // -- Handles & roots ----------------------------------------------------

  /// Pushes a new handle slot holding `ref`; released by the enclosing
  /// HandleScope.
  Handle NewHandle(ObjRef ref) {
    AssertMutator();
    if (handle_top_ == handle_slots_.size()) {
      handle_slots_.push_back(ref);
    } else {
      handle_slots_[handle_top_] = ref;
    }
    return Handle(this, static_cast<uint32_t>(handle_top_++));
  }

  void AddRootProvider(RootProvider* provider);
  void RemoveRootProvider(RootProvider* provider);

  /// Calls `fn` for every non-null root slot (handles + providers).
  template <typename F>
  void VisitRoots(F&& fn) {
    for (size_t i = 0; i < handle_top_; ++i) {
      if (handle_slots_[i] != kNullRef) fn(&handle_slots_[i]);
    }
    std::function<void(ObjRef*)> wrapped = [&fn](ObjRef* slot) {
      if (*slot != kNullRef) fn(slot);
    };
    for (auto* p : root_providers_) p->VisitRoots(wrapped);
  }

  /// Calls `fn(ObjRef* slot)` for every reference slot inside `obj`.
  template <typename F>
  void VisitRefSlots(ObjRef obj, F&& fn) const {
    const ClassInfo& ci = ClassOf(obj);
    uint8_t* payload = Addr(obj) + kHeaderBytes;
    if (ci.is_array()) {
      if (ci.elem_kind() == FieldKind::kRef) {
        uint32_t n = LengthOf(obj);
        ObjRef* elems = reinterpret_cast<ObjRef*>(payload);
        for (uint32_t i = 0; i < n; ++i) fn(&elems[i]);
      }
    } else {
      for (uint32_t off : ci.ref_offsets()) {
        fn(reinterpret_cast<ObjRef*>(payload + off));
      }
    }
  }

  // -- Collection & introspection ------------------------------------------

  void CollectMinor() {
    AssertMutator();
    collector_->CollectMinor();
    MaybeReportOccupancy();
  }
  void CollectFull() {
    AssertMutator();
    collector_->CollectFull();
    MaybeReportOccupancy();
  }

  const GcStats& stats() const { return stats_; }
  GcStats& mutable_stats() { return stats_; }

  // -- Pause accounting -----------------------------------------------------

  /// Records one mutator-visible stop-the-world pause sample. Collectors
  /// call this for every minor/full/mixed pause and for standalone mark
  /// slices, so percentiles exist at any pause budget.
  void RecordPauseMs(double ms) { pause_hist_.Add(ms); }

  /// Records one executed mark slice: bumps the exact slice counter, adds
  /// the duration to the slice histogram, and emits a "mark_slice" trace
  /// span. `standalone` marks a mutator-visible pause (a slice run between
  /// mutator work, not inside an enclosing collection pause): it is also
  /// charged to full_pause_ms and the pause histogram.
  void RecordMarkSlice(double ms, bool standalone);

  /// Every stop-the-world pause (one sample per pause event).
  const Histogram& pause_hist() const { return pause_hist_; }
  /// Mark-slice durations (monolithic marks count as one slice).
  const Histogram& mark_slice_hist() const { return slice_hist_; }

  // -- Incremental marking --------------------------------------------------

  /// Registered by IncrementalMarker::Begin; while non-null the ref-store
  /// paths SATB-log overwritten values and new objects allocate black.
  void set_active_marker(IncrementalMarker* m) { active_marker_ = m; }
  IncrementalMarker* active_marker() const { return active_marker_; }

  // -- Allocation profiling -------------------------------------------------

  /// Attaches (or detaches, with nullptr) a sampling allocation profiler.
  /// Not owned; the caller must detach it before destroying it.
  void SetAllocProfiler(AllocationSiteProfiler* p) { alloc_profiler_ = p; }
  AllocationSiteProfiler* alloc_profiler() const { return alloc_profiler_; }

  // -- OOM policy & fault tolerance ----------------------------------------

  /// Last-resort memory-pressure valve, invoked on the mutator thread when
  /// a collection cannot satisfy an allocation. `need_bytes` is the failed
  /// request; the handler sheds external pinned memory (e.g. evicts cached
  /// blocks to disk) and returns true if it freed anything — the heap then
  /// runs one full collection and retries the allocation once. The handler
  /// must not allocate from this heap.
  using OomHandler = std::function<bool(size_t need_bytes)>;
  void SetOomHandler(OomHandler handler) { oom_handler_ = std::move(handler); }

  /// When enabled, an unrecovered OOM on the aborting allocation path
  /// throws OutOfMemoryError instead of terminating the process. The
  /// engine enables this on executor heaps so the task-retry layer can
  /// degrade gracefully; standalone heaps keep the fail-fast abort.
  void set_oom_throws(bool value) { oom_throws_ = value; }
  bool oom_throws() const { return oom_throws_; }

  /// Arms `n` forced allocation failures (fault injection): each of the
  /// next `n` allocations fails immediately, bypassing the degradation
  /// ladder so the heap state is not perturbed. Pass 0 to disarm.
  void ForceAllocationFailures(uint32_t n) {
    AssertMutator();
    forced_alloc_failures_ = n;
  }

  /// Wipes the heap back to its just-constructed state: all objects and
  /// handles are gone, the collector is rebuilt, stats and GC epochs
  /// restart from zero. Simulates replacing a crashed executor process.
  /// Root providers stay registered — callers must have dropped their
  /// stale references first (wipe listeners), exactly as a replacement
  /// process starts with empty containers.
  void Reset();

  /// Multi-line diagnostics dump (occupancy, GC counters, collector
  /// internals) for OOM post-mortems.
  std::string DumpState() const;

  // -- Memory accounting ---------------------------------------------------

  /// Attaches the executor's unified memory manager: the heap registers
  /// its committed capacity immediately and reports live/old occupancy to
  /// it after every collection. Page groups on this heap pick the manager
  /// up from here to charge their footprint.
  void SetMemoryManager(memory::ExecutorMemoryManager* mm);
  memory::ExecutorMemoryManager* memory_manager() const { return mm_; }

  /// Pushes the current occupancy to the manager unconditionally (stage
  /// barriers sync accounting before verification).
  void ReportOccupancyNow();

  ClassRegistry* registry() const { return registry_; }
  const HeapConfig& config() const { return config_; }
  Collector* collector() const { return collector_.get(); }

  size_t used_bytes() const { return collector_->used_bytes(); }
  size_t old_used_bytes() const { return collector_->old_used_bytes(); }
  size_t capacity_bytes() const { return collector_->capacity_bytes(); }

  /// Walks every allocated object (see Collector::ForEachObject).
  void ForEachObject(const std::function<void(ObjRef)>& fn) const {
    collector_->ForEachObject(fn);
  }

  /// Counts allocated instances of one class (heap-profiler style).
  uint64_t CountInstances(uint32_t class_id) const;

  /// Counts allocated instances per class id.
  std::unordered_map<uint32_t, uint64_t> CountAllInstances() const;

  /// Consistency check: every object has a valid class and every reference
  /// slot points to an object start (or is null). Aborts on violation.
  /// O(heap); intended for tests.
  void Verify() const;

  // -- Thread ownership ----------------------------------------------------

  /// Hands the heap to a new mutator thread. Called by the execution
  /// runtime when a stage starts (driver -> executor thread) and at the
  /// stage barrier (executor thread -> driver); callers must guarantee
  /// the previous mutator is quiescent.
  void SetMutatorThread(std::thread::id id) {
    mutator_.store(id, std::memory_order_release);
  }
  std::thread::id mutator_thread() const {
    return mutator_.load(std::memory_order_acquire);
  }

  /// Debug-mode single-mutator check: allocation, field access and
  /// collection must happen on the owning thread. No-op under NDEBUG.
  void AssertMutator() const {
#ifndef NDEBUG
    DECA_CHECK(mutator_.load(std::memory_order_relaxed) ==
               std::this_thread::get_id())
        << "heap touched off its mutator thread";
#endif
  }

  // -- Collector-internal facilities ---------------------------------------

  uint8_t* base() const { return base_; }
  size_t buffer_bytes() const { return buffer_bytes_; }
  /// The executor's native allocator (null for standalone heaps). Spill
  /// and tier paths borrow it for their staging buffers.
  alloc::PageAllocator* page_allocator() const {
    return config_.page_allocator;
  }
  /// Advances and returns the mark epoch for a new collection cycle.
  uint64_t NextGcEpoch() { return ++gc_epoch_; }
  uint64_t gc_epoch() const { return gc_epoch_; }
  size_t handle_top() const { return handle_top_; }

 private:
  friend class HandleScope;
  friend class Handle;

  ObjRef AllocateImpl(uint32_t class_id, uint32_t length, bool die_on_oom);
  std::unique_ptr<Collector> MakeCollector();

  /// Out-of-line marker/profiler hooks (keep heap.h free of their
  /// definitions; the null checks stay inline at the call sites).
  void SatbLogOverwrite(ObjRef old_value);
  void MarkerOnAllocate(ObjRef r);
  void ProfilerOnAllocate(ObjRef r, uint32_t bytes);
  void MaybeIncrementalTick(uint32_t bytes);

  /// Reports occupancy to the memory manager when a collection has run
  /// since the last report (one counter compare on the allocation path).
  void MaybeReportOccupancy() {
    if (mm_ != nullptr &&
        stats_.minor_count + stats_.full_count != last_reported_gc_) {
      ReportOccupancyNow();
    }
  }

  HeapConfig config_;
  ClassRegistry* registry_;
  std::unique_ptr<uint8_t[]> buffer_;      // standalone heaps only
  alloc::Block arena_buffer_;              // when config.page_allocator set
  uint8_t* base_ = nullptr;
  size_t buffer_bytes_ = 0;
  std::unique_ptr<Collector> collector_;
  GcStats stats_;
  uint64_t gc_epoch_ = 0;
  Histogram pause_hist_;
  Histogram slice_hist_;
  IncrementalMarker* active_marker_ = nullptr;  // owned by the collector
  AllocationSiteProfiler* alloc_profiler_ = nullptr;  // externally owned
  uint32_t tick_bytes_ = 0;  // allocated bytes since the last mark tick

  std::vector<ObjRef> handle_slots_;
  size_t handle_top_ = 0;
  std::vector<RootProvider*> root_providers_;
  std::atomic<std::thread::id> mutator_{std::this_thread::get_id()};

  OomHandler oom_handler_;
  bool oom_throws_ = false;
  bool in_oom_handler_ = false;
  uint32_t forced_alloc_failures_ = 0;

  memory::ExecutorMemoryManager* mm_ = nullptr;
  uint64_t last_reported_gc_ = 0;  // minor+full count at the last report
};

/// RAII scope for handles: releases every handle created after its
/// construction. Scopes must nest properly.
class HandleScope {
 public:
  explicit HandleScope(Heap* heap) : heap_(heap), mark_(heap->handle_top_) {}
  ~HandleScope() { heap_->handle_top_ = mark_; }

  HandleScope(const HandleScope&) = delete;
  HandleScope& operator=(const HandleScope&) = delete;

  /// Creates a handle in this scope (delegates to the heap).
  Handle Make(ObjRef ref) { return heap_->NewHandle(ref); }

 private:
  Heap* heap_;
  size_t mark_;
};

inline ObjRef Handle::get() const { return heap_->handle_slots_[index_]; }
inline void Handle::set(ObjRef value) { heap_->handle_slots_[index_] = value; }
inline ObjRef Handle::operator*() const { return get(); }

/// Marks every object reachable from the heap's roots with `epoch` and
/// returns the total live bytes. `stack` is caller-provided scratch.
/// `on_mark` (optional) is invoked once per newly marked object — G1 uses
/// it to attribute live bytes to regions.
size_t MarkAllReachable(Heap* heap, uint64_t epoch, std::vector<ObjRef>* stack,
                        const std::function<void(ObjRef)>& on_mark = nullptr);

}  // namespace deca::jvm

#endif  // DECA_JVM_HEAP_H_
