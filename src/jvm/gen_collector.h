#ifndef DECA_JVM_GEN_COLLECTOR_H_
#define DECA_JVM_GEN_COLLECTOR_H_

#include <cstdint>
#include <vector>

#include "jvm/collector.h"
#include "jvm/heap_config.h"
#include "jvm/incremental_mark.h"

namespace deca::jvm {

class Heap;

/// Shared machinery for the two classic generational collectors
/// (ParallelScavenge and CMS): contiguous space layout
/// `[old | eden | survivor0 | survivor1]`, copying minor collections with
/// an object-level old-to-young remembered set, promotion guarantees, and
/// a global sliding mark-compact used as the PS full collection and the
/// CMS "concurrent mode failure" fallback.
class GenCollectorBase : public Collector {
 public:
  GenCollectorBase(Heap* heap, const HeapConfig& config);

  uint8_t* AllocateRaw(size_t bytes, bool large) override;
  void CollectMinor() override;
  void WriteBarrier(ObjRef holder, ObjRef value) override;
  bool IsYoung(ObjRef obj) const override;

  size_t used_bytes() const override;
  size_t capacity_bytes() const override;
  void ForEachObject(const std::function<void(ObjRef)>& fn) const override;
  bool TakeAllocSlack() override {
    bool s = pending_slack8_;
    pending_slack8_ = false;
    return s;
  }

  // Exposed for tests.
  size_t eden_capacity() const {
    return static_cast<size_t>(eden_end_ - eden_alloc_begin_);
  }
  size_t remset_size() const { return remset_.size(); }

 protected:
  /// Allocates `bytes` from the old generation without triggering GC;
  /// returns nullptr when it cannot. Sets `slack8` when the grant includes
  /// 8 bytes of trailing slack (free-list splits only).
  virtual uint8_t* AllocateOldRaw(size_t bytes, bool* slack8) = 0;

  /// Total reclaimable free bytes in the old generation.
  virtual size_t OldFreeBytes() const = 0;

  /// Last-resort hook after a failed post-full-GC allocation. Returns true
  /// if the collector freed additional space (CMS compaction fallback).
  virtual bool OnAllocationFailureAfterFull() { return false; }

  /// Called at the end of a global compaction so the subclass can rebuild
  /// its old-generation bookkeeping (`old_top_` is already updated).
  virtual void PostCompact() {}

  /// Called after every minor collection (occupancy-triggered concurrent
  /// cycles hook here).
  virtual void PostMinor() {}

  // -- shared algorithms ----------------------------------------------------

  /// Marks all reachable objects; returns total live bytes. `epoch` is the
  /// fresh mark epoch. With a pause budget configured the mark runs as
  /// back-to-back budget-bounded slices (identical marked set, bounded
  /// per-slice pause samples); otherwise the historical monolithic pass,
  /// recorded as a single slice.
  size_t MarkAll(uint64_t epoch);

  /// Global sliding compaction of all spaces into the start of the old
  /// generation (Lisp-2). Requires MarkAll(epoch) to have run. After the
  /// call the heap is dense in [old_begin, old_top_) and young is empty.
  void CompactAll(uint64_t epoch);

  /// Copying collection of the young generation. `guarantee_checked` must
  /// be true (callers verify the promotion guarantee first).
  void MinorGcImpl();

  /// True when the promotion guarantee holds; minor collections are only
  /// attempted under the guarantee. The base (PS) uses the worst case (old
  /// free >= young used): with a cache-saturated old generation every eden
  /// fill escalates to a full collection — the thrash the paper measures.
  /// CMS overrides this with a promotion-rate estimate, which is why it
  /// keeps scavenging where PS stops the world.
  virtual bool PromotionGuaranteeHolds() const;

  bool InYoungPtr(const uint8_t* p) const {
    return (p >= eden_alloc_begin_ && p < eden_end_) ||
           (p >= sur_begin_[0] && p < sur_end_[1]);
  }

  size_t young_used_bytes() const;

  void WalkRange(uint8_t* begin, uint8_t* top,
                 const std::function<void(ObjRef)>& fn) const;

  Heap* heap_;
  HeapConfig cfg_;

  // Space boundaries (fixed at construction); layout: old, eden, s0, s1.
  uint8_t* old_begin_ = nullptr;
  uint8_t* old_end_ = nullptr;
  uint8_t* eden_begin_ = nullptr;
  uint8_t* eden_end_ = nullptr;
  uint8_t* sur_begin_[2] = {nullptr, nullptr};
  uint8_t* sur_end_[2] = {nullptr, nullptr};

  // Allocation state.
  uint8_t* old_top_ = nullptr;        // PS bump top / dense prefix end (CMS
                                      // tracks its free list separately)
  uint8_t* eden_alloc_begin_ = nullptr;  // > eden_begin_ after compaction
                                         // spill into eden
  uint8_t* eden_top_ = nullptr;
  uint8_t* sur_top_[2] = {nullptr, nullptr};
  int from_ = 0;

  std::vector<ObjRef> remset_;     // old objects that may hold young refs
  std::vector<ObjRef> worklist_;   // evacuation scan queue (reused)
  std::vector<ObjRef> mark_stack_; // marking stack (reused)
  IncrementalMarker marker_;       // resumable mark state (budgeted mode)
  bool pending_slack8_ = false;    // slack of the most recent allocation
  size_t promoted_bytes_last_minor_ = 0;
  size_t promoted_bytes_cur_minor_ = 0;
  bool minor_promo_failed_ = false;

 private:
  struct EvacuationState;
  void EvacuateSlot(ObjRef* slot, EvacuationState* st);
  void ScanObject(ObjRef owner, EvacuationState* st);
  void RecomputeEdenAfterCompact();
};

/// Hotspot's default throughput collector: bump-pointer old generation,
/// stop-the-world copying minor GCs, and sliding mark-compact full GCs.
class PsCollector : public GenCollectorBase {
 public:
  PsCollector(Heap* heap, const HeapConfig& config);

  void CollectFull() override;
  size_t old_used_bytes() const override;
  const char* name() const override { return "ParallelScavenge"; }

 protected:
  uint8_t* AllocateOldRaw(size_t bytes, bool* slack8) override;
  size_t OldFreeBytes() const override;
};

/// CMS-style collector: free-list old generation, mark-sweep major
/// collections whose mark/sweep work is mostly charged as concurrent time,
/// with a stop-the-world compaction fallback on fragmentation
/// ("concurrent mode failure").
class CmsCollector : public GenCollectorBase {
 public:
  CmsCollector(Heap* heap, const HeapConfig& config);

  /// Force-completes any active incremental cycle (evacuation would
  /// invalidate its mark state), then delegates to the base.
  void CollectMinor() override;
  void CollectFull() override;
  /// Advances the background cycle by one budgeted slice; on completion
  /// runs the consuming sweep.
  void IncrementalMarkTick() override;
  size_t old_used_bytes() const override;
  const char* name() const override { return "CMS"; }

  /// Promotion-rate-based guarantee (vs PS's worst case): minor
  /// collections proceed as long as the old free list can absorb a few
  /// times the recent promotion volume plus a survivor's worth of slack.
  bool PromotionGuaranteeHolds() const override;

  size_t FreeListBytes() const;
  size_t FreeListChunks() const { return free_list_.size(); }

 protected:
  uint8_t* AllocateOldRaw(size_t bytes, bool* slack8) override;
  size_t OldFreeBytes() const override;
  bool OnAllocationFailureAfterFull() override;
  void PostCompact() override;
  /// CMS background cycle trigger: start a (mostly concurrent) mark-sweep
  /// once old occupancy crosses the initiating threshold.
  void PostMinor() override;

 private:
  struct FreeChunk {
    uint8_t* begin;
    size_t bytes;
  };

  /// Writes a class-0 filler object over [begin, begin+bytes).
  void WriteFreeChunk(uint8_t* begin, size_t bytes);
  void SweepOld(uint64_t epoch);

  /// Consumes a completed incremental mark: sweeps the old generation and
  /// filters the remembered set, charging the sweep like the monolithic
  /// cycle (mostly concurrent). The marker must be inactive.
  void FinishIncrementalCycle();
  /// Forced completion: drains the remaining gray set in budget-bounded
  /// back-to-back slices, then consumes the cycle.
  void CompleteActiveCycle();

  static constexpr int kMinorsPerCmsCycle = 8;

  std::vector<FreeChunk> free_list_;  // address-ordered
  bool in_full_gc_ = false;
  int minors_since_cycle_ = 0;
};

}  // namespace deca::jvm

#endif  // DECA_JVM_GEN_COLLECTOR_H_
