#ifndef DECA_JVM_GC_STATS_H_
#define DECA_JVM_GC_STATS_H_

#include <cstdint>

namespace deca::jvm {

/// Cumulative garbage-collection counters for one heap. Pause times are
/// real measured CPU time spent doing the collection work; `concurrent_ms`
/// is mark/sweep work a concurrent collector would run on spare cores.
struct GcStats {
  uint64_t minor_count = 0;
  uint64_t full_count = 0;        // full / major / mixed collections
  double minor_pause_ms = 0.0;
  double full_pause_ms = 0.0;
  double concurrent_ms = 0.0;

  uint64_t mark_slices = 0;       // resumable mark slices executed (each
                                  // monolithic mark counts as one slice)
  uint64_t objects_traced = 0;    // objects visited by marking/evacuation
  uint64_t bytes_copied = 0;      // bytes moved by copying/compaction
  uint64_t objects_promoted = 0;  // young objects tenured into old gen

  uint64_t objects_allocated = 0;
  uint64_t bytes_allocated = 0;

  /// Allocation failures rescued by the OOM degradation ladder (cache
  /// eviction under pressure + one full collection + retry).
  uint64_t oom_recoveries = 0;

  /// Total stop-the-world GC time; this is the "gc" column of the paper's
  /// tables.
  double TotalPauseMs() const { return minor_pause_ms + full_pause_ms; }
};

}  // namespace deca::jvm

#endif  // DECA_JVM_GC_STATS_H_
