#include "jvm/heap.h"

#include <algorithm>
#include <cstring>
#include <sstream>
#include <unordered_set>

#include "jvm/g1_collector.h"
#include "jvm/gen_collector.h"
#include "jvm/heap_profiler.h"
#include "jvm/incremental_mark.h"
#include "obs/trace.h"

namespace deca::jvm {

namespace {
// Allocation bytes between incremental-mark ticks while a cycle is active:
// small enough that a cycle makes steady progress under allocation
// pressure, large enough that the tick check stays off the fast path's
// critical cost (one add + compare per allocation).
constexpr uint32_t kIncrementalTickBytes = 64u << 10;
}  // namespace

const char* GcAlgorithmName(GcAlgorithm a) {
  switch (a) {
    case GcAlgorithm::kParallelScavenge:
      return "PS";
    case GcAlgorithm::kConcurrentMarkSweep:
      return "CMS";
    case GcAlgorithm::kG1:
      return "G1";
  }
  return "?";
}

Heap::Heap(const HeapConfig& config, ClassRegistry* registry)
    : config_(config), registry_(registry) {
  DECA_CHECK(registry != nullptr);
  // Reserve two leading words so ObjRef 0 and 1 are never valid objects,
  // plus one trailing word of guard slack.
  buffer_bytes_ = config.heap_bytes + 4 * kWordSize;
  if (config_.page_allocator != nullptr) {
    // Arena-backed buffer (a huge-page direct mapping under DECA_ARENA=1).
    // Slab reuse can hand back dirty memory, so zero explicitly to match
    // the value-initialized make_unique path bit for bit.
    arena_buffer_ = config_.page_allocator->Allocate(buffer_bytes_);
    base_ = arena_buffer_.data;
    std::memset(base_, 0, buffer_bytes_);
  } else {
    buffer_ = std::make_unique<uint8_t[]>(buffer_bytes_);
    base_ = buffer_.get();
  }
  DECA_CHECK_EQ(reinterpret_cast<uintptr_t>(base_) % alignof(uint64_t), 0u);
  collector_ = MakeCollector();
}

Heap::~Heap() {
  if (arena_buffer_.valid()) config_.page_allocator->Free(&arena_buffer_);
}

std::unique_ptr<Collector> Heap::MakeCollector() {
  switch (config_.algorithm) {
    case GcAlgorithm::kParallelScavenge:
      return std::make_unique<PsCollector>(this, config_);
    case GcAlgorithm::kConcurrentMarkSweep:
      return std::make_unique<CmsCollector>(this, config_);
    case GcAlgorithm::kG1:
      return std::make_unique<G1Collector>(this, config_);
  }
  DECA_LOG(Fatal) << "unknown GC algorithm";
  return nullptr;
}

void Heap::Reset() {
  AssertMutator();
  // An in-flight incremental mark cycle dies with the process: drop the
  // registration before the collector (which owns the marker) is torn
  // down.
  if (active_marker_ != nullptr) active_marker_->Abandon();
  active_marker_ = nullptr;
  tick_bytes_ = 0;
  collector_.reset();
  // Zero the buffer so a replayed allocation history observes exactly the
  // bytes a freshly constructed heap would (make_unique value-initializes).
  std::memset(base_, 0, buffer_bytes_);
  collector_ = MakeCollector();
  stats_ = GcStats();
  pause_hist_ = Histogram();
  slice_hist_ = Histogram();
  gc_epoch_ = 0;
  handle_slots_.clear();
  handle_top_ = 0;
  forced_alloc_failures_ = 0;
  if (mm_ != nullptr) ReportOccupancyNow();
}

void Heap::SetMemoryManager(memory::ExecutorMemoryManager* mm) {
  mm_ = mm;
  if (mm_ != nullptr) {
    mm_->RegisterHeapCapacity(capacity_bytes());
    ReportOccupancyNow();
  }
}

void Heap::ReportOccupancyNow() {
  if (mm_ == nullptr) return;
  last_reported_gc_ = stats_.minor_count + stats_.full_count;
  mm_->ReportHeapOccupancy(used_bytes(), old_used_bytes());
}

std::string Heap::DumpState() const {
  std::ostringstream os;
  os << collector_->name() << " heap: used " << used_bytes() << "/"
     << capacity_bytes() << " bytes (old gen " << old_used_bytes()
     << "), minor GCs " << stats_.minor_count << ", full GCs "
     << stats_.full_count << ", allocated " << stats_.bytes_allocated
     << " bytes / " << stats_.objects_allocated << " objects, promoted "
     << stats_.objects_promoted << ", oom recoveries "
     << stats_.oom_recoveries << "; " << collector_->DebugString();
  return os.str();
}

void Heap::SatbLogOverwrite(ObjRef old_value) {
  if (old_value != kNullRef) active_marker_->OnRefOverwrite(old_value);
}

void Heap::MarkerOnAllocate(ObjRef r) { active_marker_->OnAllocate(r); }

void Heap::ProfilerOnAllocate(ObjRef r, uint32_t bytes) {
  alloc_profiler_->OnAllocate(this, r, bytes);
}

void Heap::MaybeIncrementalTick(uint32_t bytes) {
  tick_bytes_ += bytes;
  if (tick_bytes_ < kIncrementalTickBytes) return;
  tick_bytes_ = 0;
  collector_->IncrementalMarkTick();
}

void Heap::RecordMarkSlice(double ms, bool standalone) {
  stats_.mark_slices += 1;
  slice_hist_.Add(ms);
  if (standalone) {
    stats_.full_pause_ms += ms;
    pause_hist_.Add(ms);
  }
  if (auto* rec = obs::Current()) {
    rec->CompleteSpanMs(obs::Cat::kGc, "mark_slice", ms,
                        static_cast<double>(stats_.mark_slices),
                        standalone ? 1.0 : 0.0);
  }
}

ObjRef Heap::AllocateImpl(uint32_t class_id, uint32_t length,
                          bool die_on_oom) {
  AssertMutator();
  const ClassInfo& ci = registry_->Get(class_id);
  uint32_t total = ci.ObjectBytes(length);
  // Advance an active incremental mark cycle before touching the
  // allocator: a tick may complete the cycle, whose consuming collection
  // (sweep or evacuation) must never run while a just-allocated object is
  // held as a raw ref.
  if (active_marker_ != nullptr) MaybeIncrementalTick(total);
  bool large = total >= config_.large_object_bytes;
  bool forced = false;
  uint8_t* p = nullptr;
  if (forced_alloc_failures_ > 0) {
    // Injected failure: surfaces directly, bypassing the degradation
    // ladder, so a retried attempt replays an unperturbed heap history
    // (no extra collections, no evictions).
    --forced_alloc_failures_;
    forced = true;
  } else {
    p = collector_->AllocateRaw(total, large);
  }
  if (p == nullptr && !forced && oom_handler_ && !in_oom_handler_) {
    // Graceful degradation: let the owner shed externally pinned memory
    // (cache eviction under pressure), then run one full collection to
    // reclaim the unpinned objects and retry the allocation once.
    obs::Instant(obs::Cat::kGc, "oom_degrade", static_cast<double>(total));
    in_oom_handler_ = true;
    bool shed = oom_handler_(total);
    in_oom_handler_ = false;
    if (shed) {
      collector_->CollectFull();
      p = collector_->AllocateRaw(total, large);
      if (p != nullptr) {
        ++stats_.oom_recoveries;
        obs::Instant(obs::Cat::kGc, "oom_recovered",
                     static_cast<double>(total));
      }
    }
  }
  if (p == nullptr) {
    if (die_on_oom) {
      std::string dump = DumpState();
      if (oom_throws_) {
        throw OutOfMemoryError(total, ci.name(), std::move(dump), forced);
      }
      DECA_LOG(Fatal) << "managed heap OOM allocating " << total
                      << " bytes of " << ci.name() << "; " << dump;
    }
    MaybeReportOccupancy();
    return kNullRef;
  }
  std::memset(p, 0, total);
  ObjRef r = RefOf(p);
  MetaOf(r) = class_id | (collector_->TakeAllocSlack() ? kSlack8Bit : 0);
  LengthOf(r) = length;
  // The tick above may have completed the cycle, so re-check before
  // allocating black.
  if (active_marker_ != nullptr) MarkerOnAllocate(r);
  if (alloc_profiler_ != nullptr) ProfilerOnAllocate(r, total);
  stats_.objects_allocated += 1;
  stats_.bytes_allocated += total;
  MaybeReportOccupancy();
  return r;
}

ObjRef Heap::AllocateInstance(uint32_t class_id) {
  return AllocateImpl(class_id, 0, /*die_on_oom=*/true);
}

ObjRef Heap::AllocateArray(uint32_t class_id, uint32_t length) {
  return AllocateImpl(class_id, length, /*die_on_oom=*/true);
}

ObjRef Heap::TryAllocateInstance(uint32_t class_id) {
  return AllocateImpl(class_id, 0, /*die_on_oom=*/false);
}

ObjRef Heap::TryAllocateArray(uint32_t class_id, uint32_t length) {
  return AllocateImpl(class_id, length, /*die_on_oom=*/false);
}

void Heap::AddRootProvider(RootProvider* provider) {
  root_providers_.push_back(provider);
}

void Heap::RemoveRootProvider(RootProvider* provider) {
  auto it =
      std::find(root_providers_.begin(), root_providers_.end(), provider);
  DECA_CHECK(it != root_providers_.end());
  root_providers_.erase(it);
}

uint64_t Heap::CountInstances(uint32_t class_id) const {
  uint64_t n = 0;
  ForEachObject([&](ObjRef r) {
    if (ClassIdOf(r) == class_id) ++n;
  });
  return n;
}

std::unordered_map<uint32_t, uint64_t> Heap::CountAllInstances() const {
  std::unordered_map<uint32_t, uint64_t> counts;
  ForEachObject([&](ObjRef r) { counts[ClassIdOf(r)] += 1; });
  return counts;
}

void Heap::Verify() const {
  // Collect all valid object starts, then check that every reachable
  // object's reference slots land on one of them.
  std::unordered_set<ObjRef> starts;
  ForEachObject([&](ObjRef r) {
    DECA_CHECK_LT(ClassIdOf(r), registry_->size());
    starts.insert(r);
  });
  // Reachability pass (non-destructive: uses a local visited set).
  std::unordered_set<ObjRef> visited;
  std::vector<ObjRef> stack;
  auto push = [&](ObjRef r) {
    DECA_CHECK(starts.count(r) != 0)
        << "dangling reference to " << r << " (not an object start)";
    if (visited.insert(r).second) stack.push_back(r);
  };
  // Verify only reads through the root slots, but VisitRoots hands out
  // ObjRef* for the collectors to rewrite, so it cannot be const.
  // NOLINTNEXTLINE(cppcoreguidelines-pro-type-const-cast)
  const_cast<Heap*>(this)->VisitRoots([&](ObjRef* s) { push(*s); });
  while (!stack.empty()) {
    ObjRef r = stack.back();
    stack.pop_back();
    VisitRefSlots(r, [&](ObjRef* s) {
      if (*s != kNullRef) push(*s);
    });
  }
}

size_t MarkAllReachable(Heap* heap, uint64_t epoch, std::vector<ObjRef>* stack,
                        const std::function<void(ObjRef)>& on_mark) {
  stack->clear();
  size_t live_bytes = 0;
  uint64_t count = 0;
  auto try_mark = [&](ObjRef r) {
    uint64_t& gw = heap->GcWordOf(r);
    if (GcIsMarkedIn(gw, epoch)) return;
    gw = GcMakeMark(epoch);
    live_bytes += heap->ObjectBytes(r);
    ++count;
    if (on_mark) on_mark(r);
    stack->push_back(r);
  };
  heap->VisitRoots([&](ObjRef* s) { try_mark(*s); });
  while (!stack->empty()) {
    ObjRef r = stack->back();
    stack->pop_back();
    heap->VisitRefSlots(r, [&](ObjRef* s) {
      if (*s != kNullRef) try_mark(*s);
    });
  }
  heap->mutable_stats().objects_traced += count;
  return live_bytes;
}

}  // namespace deca::jvm
