#ifndef DECA_JVM_CLASS_REGISTRY_H_
#define DECA_JVM_CLASS_REGISTRY_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "common/logging.h"
#include "jvm/object_model.h"

namespace deca::jvm {

/// One declared field of a managed class: name, kind and its byte offset
/// within the object payload (header excluded).
struct FieldDesc {
  std::string name;
  FieldKind kind;
  uint32_t offset;
};

/// Immutable layout metadata for one managed class (instance or array).
/// The garbage collectors use `ref_offsets` / `elem_kind` to trace objects;
/// workloads use `FieldOffset` for symbolic field access; the Deca layout
/// synthesizer consumes `fields` to compute decomposed offsets.
class ClassInfo {
 public:
  uint32_t id() const { return id_; }
  const std::string& name() const { return name_; }
  bool is_array() const { return is_array_; }
  FieldKind elem_kind() const { return elem_kind_; }
  uint32_t elem_bytes() const { return elem_bytes_; }
  /// Instance payload size in bytes, 8-byte aligned (arrays: 0).
  uint32_t payload_bytes() const { return payload_bytes_; }
  const std::vector<uint32_t>& ref_offsets() const { return ref_offsets_; }
  const std::vector<FieldDesc>& fields() const { return fields_; }

  /// Returns the payload offset of the named field; aborts if missing.
  uint32_t FieldOffset(const std::string& field_name) const;

  /// Total object size in bytes (header included) for an instance of this
  /// class, or an array of `length` elements.
  uint32_t ObjectBytes(uint32_t length) const {
    if (is_array_) {
      return kHeaderBytes +
             static_cast<uint32_t>(AlignUp(
                 static_cast<uint64_t>(length) * elem_bytes_, kWordSize));
    }
    return kHeaderBytes + payload_bytes_;
  }

 private:
  friend class ClassRegistry;
  uint32_t id_ = 0;
  std::string name_;
  bool is_array_ = false;
  FieldKind elem_kind_ = FieldKind::kByte;
  uint32_t elem_bytes_ = 1;
  uint32_t payload_bytes_ = 0;
  std::vector<uint32_t> ref_offsets_;
  std::vector<FieldDesc> fields_;
};

/// Registry of all managed classes visible to one (or more) heaps.
/// Class id 0 is reserved for heap-internal free chunks (CMS sweep leaves
/// parsable free-space filler objects, like Hotspot's int[] fillers).
/// Ids 1..8 are the preregistered primitive array classes.
class ClassRegistry {
 public:
  ClassRegistry();

  /// Defines an instance class. Field offsets are assigned in declaration
  /// order with natural alignment; the payload is padded to 8 bytes.
  uint32_t RegisterClass(const std::string& name,
                         const std::vector<std::pair<std::string, FieldKind>>&
                             field_specs);

  /// Defines an array class with the given element kind.
  uint32_t RegisterArrayClass(const std::string& name, FieldKind elem_kind);

  const ClassInfo& Get(uint32_t id) const {
    DECA_DCHECK(id < classes_.size());
    return classes_[id];
  }

  /// Looks a class up by name; aborts if missing.
  const ClassInfo& GetByName(const std::string& name) const;

  /// Returns the class id for `name`, or UINT32_MAX if not registered.
  uint32_t FindId(const std::string& name) const;

  size_t size() const { return classes_.size(); }

  // Preregistered well-known classes.
  uint32_t free_chunk_class() const { return 0; }
  uint32_t byte_array_class() const { return byte_array_; }
  uint32_t int_array_class() const { return int_array_; }
  uint32_t long_array_class() const { return long_array_; }
  uint32_t double_array_class() const { return double_array_; }
  uint32_t ref_array_class() const { return ref_array_; }
  uint32_t char_array_class() const { return char_array_; }
  /// java.lang.Double-style box: one double payload.
  uint32_t boxed_double_class() const { return boxed_double_; }
  /// java.lang.Long-style box: one long payload.
  uint32_t boxed_long_class() const { return boxed_long_; }
  /// java.lang.Integer-style box: one int payload.
  uint32_t boxed_int_class() const { return boxed_int_; }

 private:
  std::vector<ClassInfo> classes_;
  uint32_t byte_array_ = 0;
  uint32_t int_array_ = 0;
  uint32_t long_array_ = 0;
  uint32_t double_array_ = 0;
  uint32_t ref_array_ = 0;
  uint32_t char_array_ = 0;
  uint32_t boxed_double_ = 0;
  uint32_t boxed_long_ = 0;
  uint32_t boxed_int_ = 0;
};

}  // namespace deca::jvm

#endif  // DECA_JVM_CLASS_REGISTRY_H_
