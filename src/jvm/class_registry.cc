#include "jvm/class_registry.h"

namespace deca::jvm {

const char* FieldKindName(FieldKind k) {
  switch (k) {
    case FieldKind::kBool:
      return "bool";
    case FieldKind::kByte:
      return "byte";
    case FieldKind::kShort:
      return "short";
    case FieldKind::kChar:
      return "char";
    case FieldKind::kInt:
      return "int";
    case FieldKind::kFloat:
      return "float";
    case FieldKind::kLong:
      return "long";
    case FieldKind::kDouble:
      return "double";
    case FieldKind::kRef:
      return "ref";
  }
  return "?";
}

uint32_t ClassInfo::FieldOffset(const std::string& field_name) const {
  for (const auto& f : fields_) {
    if (f.name == field_name) return f.offset;
  }
  DECA_LOG(Fatal) << "class " << name_ << " has no field " << field_name;
  return 0;
}

ClassRegistry::ClassRegistry() {
  // Class 0: heap-internal free chunk (a pseudo byte array).
  RegisterArrayClass("<free>", FieldKind::kByte);
  byte_array_ = RegisterArrayClass("byte[]", FieldKind::kByte);
  int_array_ = RegisterArrayClass("int[]", FieldKind::kInt);
  long_array_ = RegisterArrayClass("long[]", FieldKind::kLong);
  double_array_ = RegisterArrayClass("double[]", FieldKind::kDouble);
  ref_array_ = RegisterArrayClass("Object[]", FieldKind::kRef);
  char_array_ = RegisterArrayClass("char[]", FieldKind::kChar);
  boxed_double_ = RegisterClass("java.lang.Double",
                                {{"value", FieldKind::kDouble}});
  boxed_long_ = RegisterClass("java.lang.Long", {{"value", FieldKind::kLong}});
  boxed_int_ = RegisterClass("java.lang.Integer", {{"value", FieldKind::kInt}});
}

uint32_t ClassRegistry::RegisterClass(
    const std::string& name,
    const std::vector<std::pair<std::string, FieldKind>>& field_specs) {
  DECA_CHECK_LT(classes_.size(), static_cast<size_t>(kClassIdMask));
  ClassInfo info;
  info.id_ = static_cast<uint32_t>(classes_.size());
  info.name_ = name;
  info.is_array_ = false;
  uint32_t offset = 0;
  for (const auto& [fname, kind] : field_specs) {
    uint32_t size = FieldKindBytes(kind);
    offset = static_cast<uint32_t>(AlignUp(offset, size));
    info.fields_.push_back({fname, kind, offset});
    if (kind == FieldKind::kRef) info.ref_offsets_.push_back(offset);
    offset += size;
  }
  info.payload_bytes_ = static_cast<uint32_t>(AlignUp(offset, kWordSize));
  classes_.push_back(std::move(info));
  return classes_.back().id_;
}

uint32_t ClassRegistry::RegisterArrayClass(const std::string& name,
                                           FieldKind elem_kind) {
  DECA_CHECK_LT(classes_.size(), static_cast<size_t>(kClassIdMask));
  ClassInfo info;
  info.id_ = static_cast<uint32_t>(classes_.size());
  info.name_ = name;
  info.is_array_ = true;
  info.elem_kind_ = elem_kind;
  info.elem_bytes_ = FieldKindBytes(elem_kind);
  classes_.push_back(std::move(info));
  return classes_.back().id_;
}

const ClassInfo& ClassRegistry::GetByName(const std::string& name) const {
  uint32_t id = FindId(name);
  DECA_CHECK_NE(id, UINT32_MAX) << "unknown class " << name;
  return classes_[id];
}

uint32_t ClassRegistry::FindId(const std::string& name) const {
  for (const auto& c : classes_) {
    if (c.name() == name) return c.id();
  }
  return UINT32_MAX;
}

}  // namespace deca::jvm
