#include "jvm/incremental_mark.h"

#include "common/clock.h"
#include "common/logging.h"
#include "jvm/heap.h"

namespace deca::jvm {

namespace {
// Budget-check granularity: the stopwatch is consulted once per this many
// drained gray objects, so a slice overshoots its budget by at most the
// scan time of one batch (the acceptance criterion allows 2x slop).
constexpr uint64_t kBudgetCheckMask = 63;
}  // namespace

void IncrementalMarker::TryMark(ObjRef r) {
  uint64_t& gw = heap_->GcWordOf(r);
  if (GcIsMarkedIn(gw, epoch_)) return;
  gw = GcMakeMark(epoch_);
  live_bytes_ += heap_->ObjectBytes(r);
  ++count_;
  if (on_mark_) on_mark_(r);
  gray_.push_back(r);
}

void IncrementalMarker::Begin(uint64_t epoch,
                              std::function<void(ObjRef)> on_mark) {
  DECA_CHECK(!active_) << "incremental mark cycle already active";
  Stopwatch sw;
  active_ = true;
  epoch_ = epoch;
  live_bytes_ = 0;
  count_ = 0;
  gray_.clear();
  on_mark_ = std::move(on_mark);
  // The root scan is the cycle's snapshot and must be atomic (one slice);
  // root counts are small so it stays well under any sane budget.
  heap_->VisitRoots([&](ObjRef* s) { TryMark(*s); });
  heap_->set_active_marker(this);
  heap_->RecordMarkSlice(sw.ElapsedMillis(), /*standalone=*/false);
}

bool IncrementalMarker::Step(double budget_ms, bool standalone) {
  DECA_CHECK(active_);
  Stopwatch sw;
  uint64_t drained = 0;
  while (!gray_.empty()) {
    ObjRef r = gray_.back();
    gray_.pop_back();
    heap_->VisitRefSlots(r, [&](ObjRef* s) {
      if (*s != kNullRef) TryMark(*s);
    });
    if (budget_ms > 0 && (++drained & kBudgetCheckMask) == 0 &&
        sw.ElapsedMillis() >= budget_ms) {
      break;
    }
  }
  bool done = gray_.empty();
  if (done) Deactivate();
  heap_->RecordMarkSlice(sw.ElapsedMillis(), standalone);
  return done;
}

size_t IncrementalMarker::FinishAll(double budget_ms) {
  while (!Step(budget_ms, /*standalone=*/false)) {
  }
  return live_bytes_;
}

void IncrementalMarker::Abandon() {
  if (!active_) return;
  Deactivate();
  gray_.clear();
  live_bytes_ = 0;
}

void IncrementalMarker::Deactivate() {
  heap_->set_active_marker(nullptr);
  active_ = false;
  heap_->mutable_stats().objects_traced += count_;
  count_ = 0;
  on_mark_ = nullptr;
}

void IncrementalMarker::OnRefOverwrite(ObjRef old_value) { TryMark(old_value); }

void IncrementalMarker::OnAllocate(ObjRef r) {
  // Allocate black: the object joins the marked set but its fields are
  // all null at this point, so it never needs to be grayed.
  uint64_t& gw = heap_->GcWordOf(r);
  if (GcIsMarkedIn(gw, epoch_)) return;
  gw = GcMakeMark(epoch_);
  live_bytes_ += heap_->ObjectBytes(r);
  ++count_;
  if (on_mark_) on_mark_(r);
}

}  // namespace deca::jvm
