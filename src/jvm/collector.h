#ifndef DECA_JVM_COLLECTOR_H_
#define DECA_JVM_COLLECTOR_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>

#include "jvm/object_model.h"

namespace deca::jvm {

class Heap;

/// Strategy interface implemented by the three collectors. A collector owns
/// the heap's space layout, the allocation fast path, the old-to-young
/// remembered set, and the collection algorithms. All methods run on the
/// heap's single mutator thread (collections are stop-the-world).
class Collector {
 public:
  virtual ~Collector() = default;

  /// Returns storage for an object of `bytes` total size (header included,
  /// 8-byte aligned), running collections as needed. `large` objects go
  /// directly to the old generation / humongous regions. Returns nullptr
  /// when the heap cannot satisfy the request even after a full collection.
  virtual uint8_t* AllocateRaw(size_t bytes, bool large) = 0;

  /// Forces a young collection (no-op if the young gen is empty).
  virtual void CollectMinor() = 0;

  /// Forces a full (major/mixed) collection.
  virtual void CollectFull() = 0;

  /// Post-store hook: records `holder` in the remembered set when it may
  /// now hold an old-to-young reference.
  virtual void WriteBarrier(ObjRef holder, ObjRef value) = 0;

  /// True if `obj` lies in the young generation (used by tests/profiling).
  virtual bool IsYoung(ObjRef obj) const = 0;

  /// Bytes currently occupied by (live or not-yet-reclaimed) objects.
  virtual size_t used_bytes() const = 0;
  /// Bytes occupied in the old generation.
  virtual size_t old_used_bytes() const = 0;
  /// Total collectable capacity.
  virtual size_t capacity_bytes() const = 0;

  /// Walks every currently allocated object in address order (including
  /// unreachable ones not yet collected, matching what a heap profiler
  /// attached to a JVM reports). Free-space filler chunks are skipped.
  virtual void ForEachObject(const std::function<void(ObjRef)>& fn) const = 0;

  /// Allocation-driven pacing hook for incremental marking: called by the
  /// heap every ~64KB of allocation while a mark cycle is active, before
  /// the allocation is satisfied. The collector runs one budgeted mark
  /// slice and, if that completes the cycle, the collection that consumes
  /// it (sweep / mixed evacuation).
  virtual void IncrementalMarkTick() {}

  /// Returns (and clears) whether the most recent AllocateRaw granted
  /// 8 bytes of trailing slack (free-list allocators only); the heap
  /// records this in the object header to keep the space parsable.
  virtual bool TakeAllocSlack() { return false; }

  virtual const char* name() const = 0;

  /// Collector-specific state dump for OOM diagnostics.
  virtual std::string DebugString() const { return ""; }
};

}  // namespace deca::jvm

#endif  // DECA_JVM_COLLECTOR_H_
