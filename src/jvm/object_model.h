#ifndef DECA_JVM_OBJECT_MODEL_H_
#define DECA_JVM_OBJECT_MODEL_H_

#include <cstdint>

namespace deca::jvm {

/// A managed reference: index of an 8-byte word from the heap base.
/// 0 is the null reference (the first heap word is reserved). 32-bit word
/// indices address up to 32 GB of simulated heap.
using ObjRef = uint32_t;

inline constexpr ObjRef kNullRef = 0;
inline constexpr uint32_t kWordSize = 8;

/// Every managed object carries a 16-byte header:
///   word 0: [ meta : 32 | array length : 32 ]
///   word 1: gcword (mark / forwarding state, zero outside collections)
/// This mirrors the 12–16 byte headers of production JVMs; Deca's benefit of
/// eliminating per-object headers is measured against this overhead.
inline constexpr uint32_t kHeaderBytes = 16;

// -- meta word layout ---------------------------------------------------
inline constexpr uint32_t kClassIdBits = 20;
inline constexpr uint32_t kClassIdMask = (1u << kClassIdBits) - 1;
inline constexpr uint32_t kAgeShift = 20;
inline constexpr uint32_t kAgeMask = 0xFu << kAgeShift;
inline constexpr uint32_t kInRemsetBit = 1u << 24;
/// Set when the allocator granted the object 8 bytes of trailing slack to
/// avoid leaving an unparsable sub-minimum hole (CMS free-list splits).
inline constexpr uint32_t kSlack8Bit = 1u << 25;
/// Set on objects picked by the sampling allocation profiler; cleared (and
/// the survival observed) the first time the object is evacuated.
inline constexpr uint32_t kSampledBit = 1u << 26;

inline uint32_t MetaClassId(uint32_t meta) { return meta & kClassIdMask; }
inline uint32_t MetaAge(uint32_t meta) { return (meta & kAgeMask) >> kAgeShift; }
inline uint32_t MetaWithAge(uint32_t meta, uint32_t age) {
  return (meta & ~kAgeMask) | (age << kAgeShift);
}

// -- gcword layout ------------------------------------------------------
inline constexpr uint64_t kGcMarkBit = 1;
inline constexpr uint64_t kGcForwardBit = 2;
inline constexpr uint32_t kGcForwardShift = 2;

inline bool GcIsMarked(uint64_t gcword) { return (gcword & kGcMarkBit) != 0; }
inline bool GcIsForwarded(uint64_t gcword) {
  return (gcword & kGcForwardBit) != 0;
}
inline ObjRef GcForwardRef(uint64_t gcword) {
  return static_cast<ObjRef>(gcword >> kGcForwardShift);
}
inline uint64_t GcMakeForward(ObjRef target, bool keep_mark) {
  return (static_cast<uint64_t>(target) << kGcForwardShift) | kGcForwardBit |
         (keep_mark ? kGcMarkBit : 0);
}

// Mark state is tagged with a collection epoch (bits 34..63) so collectors
// never need a separate pass to clear mark bits: a mark from an older epoch
// simply reads as unmarked.
inline constexpr uint32_t kGcEpochShift = 34;

inline bool GcIsMarkedIn(uint64_t gcword, uint64_t epoch) {
  return (gcword & kGcMarkBit) != 0 && (gcword >> kGcEpochShift) == epoch;
}
inline uint64_t GcMakeMark(uint64_t epoch) {
  return (epoch << kGcEpochShift) | kGcMarkBit;
}
inline uint64_t GcMakeForwardMarked(ObjRef target, uint64_t epoch) {
  return (epoch << kGcEpochShift) |
         (static_cast<uint64_t>(target) << kGcForwardShift) | kGcForwardBit |
         kGcMarkBit;
}

/// Element kinds for managed arrays and field kinds for instances.
enum class FieldKind : uint8_t {
  kBool,
  kByte,
  kShort,
  kChar,
  kInt,
  kFloat,
  kLong,
  kDouble,
  kRef,
};

/// Size in bytes of one value of the given kind (references are 4-byte
/// compressed oops, as in a JVM with CompressedOops enabled).
inline uint32_t FieldKindBytes(FieldKind k) {
  switch (k) {
    case FieldKind::kBool:
    case FieldKind::kByte:
      return 1;
    case FieldKind::kShort:
    case FieldKind::kChar:
      return 2;
    case FieldKind::kInt:
    case FieldKind::kFloat:
    case FieldKind::kRef:
      return 4;
    case FieldKind::kLong:
    case FieldKind::kDouble:
      return 8;
  }
  return 0;
}

const char* FieldKindName(FieldKind k);

}  // namespace deca::jvm

#endif  // DECA_JVM_OBJECT_MODEL_H_
