#ifndef DECA_JVM_HEAP_PROFILER_H_
#define DECA_JVM_HEAP_PROFILER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/histogram.h"

namespace deca::jvm {

class Heap;

/// JProfiler-style sampler: records, per sample, the number of allocated
/// instances of a tracked class and the cumulative GC time. Drives the
/// paper's object-lifetime figures (Fig. 8a, Fig. 9a). Sampling walks the
/// heap (O(heap)), so callers sample at coarse intervals (e.g. once per
/// task or per iteration).
class HeapProfiler {
 public:
  /// `class_id` is the tracked class (e.g. Tuple2 or LabeledPoint).
  HeapProfiler(Heap* heap, uint32_t class_id);

  /// Takes one sample at elapsed time `t_ms` since the run started.
  void Sample(double t_ms);

  const TimeSeries& object_counts() const { return object_counts_; }
  const TimeSeries& gc_time_ms() const { return gc_time_ms_; }

 private:
  Heap* heap_;
  uint32_t class_id_;
  TimeSeries object_counts_;
  TimeSeries gc_time_ms_;
};

}  // namespace deca::jvm

#endif  // DECA_JVM_HEAP_PROFILER_H_
