#ifndef DECA_JVM_HEAP_PROFILER_H_
#define DECA_JVM_HEAP_PROFILER_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/histogram.h"
#include "jvm/object_model.h"

namespace deca::jvm {

class Heap;

/// JProfiler-style sampler: records, per sample, the number of allocated
/// instances of a tracked class and the cumulative GC time. Drives the
/// paper's object-lifetime figures (Fig. 8a, Fig. 9a). Sampling walks the
/// heap (O(heap)), so callers sample at coarse intervals (e.g. once per
/// task or per iteration).
class HeapProfiler {
 public:
  /// `class_id` is the tracked class (e.g. Tuple2 or LabeledPoint).
  HeapProfiler(Heap* heap, uint32_t class_id);

  /// Takes one sample at elapsed time `t_ms` since the run started.
  void Sample(double t_ms);

  const TimeSeries& object_counts() const { return object_counts_; }
  const TimeSeries& gc_time_ms() const { return gc_time_ms_; }

 private:
  Heap* heap_;
  uint32_t class_id_;
  TimeSeries object_counts_;
  TimeSeries gc_time_ms_;
};

/// ROLP-style sampling allocation profiler: picks one allocation every
/// `sample_bytes` allocated bytes (deterministic byte countdown; the first
/// sample point is derived from `seed`), tags it with kSampledBit, and
/// observes what happens to it at its first evacuation — survived into a
/// survivor space or tenured straight to the old generation. The per-class
/// site table feeds analysis::ProfiledClassifier so lifetime and size
/// classification can be made online instead of only from static UDT
/// analysis.
///
/// Attach with Heap::SetAllocProfiler; a heap without a profiler pays one
/// null-pointer check per allocation and nothing on the GC paths.
class AllocationSiteProfiler {
 public:
  struct SiteStats {
    uint64_t sampled = 0;         // sampled allocations of this class
    uint64_t observed = 0;        // samples seen at their first evacuation
    uint64_t survived = 0;        // ... of which stayed in the young gen
    uint64_t promoted = 0;        // ... of which tenured to the old gen
    uint64_t bytes = 0;           // total sampled bytes
    uint32_t size_min = 0;        // smallest sampled object (bytes)
    uint32_t size_max = 0;        // largest sampled object (bytes)
  };

  AllocationSiteProfiler(size_t sample_bytes, uint64_t seed);

  /// Allocation-path hook (called by the heap): advances the byte
  /// countdown and samples `r` when it expires. Returns true when the
  /// object was sampled (its kSampledBit is set).
  bool OnAllocate(Heap* heap, ObjRef r, uint32_t bytes);

  /// Evacuation-path hook: a sampled object of `class_id` was just copied;
  /// `promoted` says it went to the old generation.
  void OnSurvive(uint32_t class_id, bool promoted);

  /// Deterministically ordered per-class site table.
  const std::map<uint32_t, SiteStats>& sites() const { return sites_; }

  uint64_t total_sampled() const { return total_sampled_; }

  /// Fraction of sampled objects of `class_id` observed surviving an
  /// evacuation. Samples that die before their first minor collection are
  /// never evacuated, so sampled - observed estimates the die-young count.
  double SurvivalRate(uint32_t class_id) const;

 private:
  size_t sample_bytes_;
  int64_t bytes_until_sample_;
  uint64_t total_sampled_ = 0;
  std::map<uint32_t, SiteStats> sites_;
};

}  // namespace deca::jvm

#endif  // DECA_JVM_HEAP_PROFILER_H_
