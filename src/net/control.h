#ifndef DECA_NET_CONTROL_H_
#define DECA_NET_CONTROL_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <vector>

#include "common/bytes.h"

namespace deca::net {

/// Control-plane message types. Numbered from 32 so they can never
/// collide with the shuffle-plane MsgType values (1..6) — a misrouted
/// frame fails loudly instead of being misparsed. Framing is identical:
/// varint length + body, first body byte is the type.
enum class CtrlType : uint8_t {
  // Registration handshake (driver's registration port).
  kHello = 32,     // executor, generation, pid, control_port
  kSpec = 33,      // job spec: config + workload + params + peer count
  kReady = 34,     // data_port (the daemon's mesh endpoint)
  kReadyAck = 35,
  // Task dispatch (daemon's control port).
  kLaunchTask = 36,   // remote task envelope
  kTaskResult = 37,   // remote task outcome
  kStageDone = 38,    // stage seq + broadcast collect blobs
  kStageAck = 39,     // executor stats snapshot
  // Liveness.
  kHeartbeat = 40,     // ping (answered inline, even mid-task)
  kHeartbeatAck = 41,
  // Mesh wiring.
  kUpdatePeers = 42,  // n x (executor, data_port)
  kPeersAck = 43,
  // Teardown.
  kShutdown = 44,
  kShutdownAck = 45,
};

/// An RPC that failed after the request may have been written. Carries
/// whether the failure was a response deadline (the peer may still be
/// alive but wedged) vs a transport error (connection refused/reset).
/// Control RPCs are NOT resent past the write — LaunchTask is not
/// idempotent — so this always surfaces to the failure detector.
class RpcError : public std::runtime_error {
 public:
  RpcError(const std::string& what, bool timed_out)
      : std::runtime_error(what), timed_out_(timed_out) {}
  bool timed_out() const { return timed_out_; }

 private:
  bool timed_out_;
};

/// Framed request->response server for the control plane: an accept
/// thread plus one serving thread per inbound connection. The handler is
/// invoked on the connection's thread — heartbeats are therefore answered
/// even while the daemon's main thread is busy running a task; handlers
/// that need the main thread hand the frame off and block on the reply.
class RpcServer {
 public:
  /// Takes one framed request, returns the framed response.
  using Handler =
      std::function<std::vector<uint8_t>(const std::vector<uint8_t>&)>;

  /// Binds an ephemeral loopback port and starts accepting. Throws
  /// std::runtime_error if the socket can't be created.
  explicit RpcServer(Handler handler);
  ~RpcServer();

  RpcServer(const RpcServer&) = delete;
  RpcServer& operator=(const RpcServer&) = delete;

  uint16_t port() const { return port_; }

  /// Stops accepting, unblocks every connection, joins all threads.
  /// Idempotent; also run by the destructor.
  void Stop();

 private:
  void AcceptLoop();
  void ServeConnection(int fd);

  Handler handler_;
  int listen_fd_ = -1;
  uint16_t port_ = 0;
  std::thread accept_thread_;
  std::mutex mu_;
  bool stopping_ = false;
  std::vector<int> conn_fds_;
  std::vector<std::thread> conn_threads_;
};

/// One control-plane connection to an RpcServer, used by exactly one
/// thread at a time (callers serialize; the driver keeps separate clients
/// for dispatch and heartbeats so the two never contend).
///
/// Retry semantics: connect failures retry with exponential backoff (the
/// peer may still be binding its port). Once a request has been written
/// there are NO resends — a lost response throws RpcError and the caller
/// decides (for the driver: count a miss / declare the executor dead).
class RpcClient {
 public:
  RpcClient(uint16_t port, int connect_attempts, int backoff_base_ms);
  ~RpcClient();

  RpcClient(const RpcClient&) = delete;
  RpcClient& operator=(const RpcClient&) = delete;

  /// One framed round trip. `deadline_ms <= 0` waits forever. Throws
  /// ConnectError (no connection could be established) or RpcError (send
  /// failed, peer closed, or response deadline exceeded). After an
  /// RpcError the connection is closed; the next Call reconnects.
  std::vector<uint8_t> Call(const std::vector<uint8_t>& frame,
                            int deadline_ms);

  void Close();

 private:
  uint16_t port_;
  int connect_attempts_;
  int backoff_base_ms_;
  int fd_ = -1;
};

}  // namespace deca::net

#endif  // DECA_NET_CONTROL_H_
