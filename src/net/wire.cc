#include "net/wire.h"

#include <cstring>

#include "common/clock.h"

namespace deca::net {

std::vector<uint8_t> FrameMessage(const ByteWriter& body) {
  ByteWriter header;
  header.WriteVarU64(body.size());
  std::vector<uint8_t> wire;
  wire.reserve(header.size() + body.size());
  wire.insert(wire.end(), header.data(), header.data() + header.size());
  wire.insert(wire.end(), body.data(), body.data() + body.size());
  return wire;
}

bool UnframeMessage(const std::vector<uint8_t>& wire, ByteReader* body) {
  ByteReader header(wire.data(), wire.size());
  if (header.AtEnd()) return false;
  uint64_t len = header.ReadVarU64();
  if (len != header.remaining()) return false;
  *body = ByteReader(wire.data() + header.position(), len);
  return true;
}

const char* WireCodecName(WireCodec c) {
  switch (c) {
    case WireCodec::kPage:
      return "page";
    case WireCodec::kRecord:
      return "record";
  }
  return "?";
}

std::vector<uint8_t> EncodeFrame(WireCodec codec,
                                 const std::vector<uint8_t>& payload,
                                 const ChunkMeta& meta, NetStats* stats) {
  Stopwatch sw;
  ByteWriter w;
  w.Write<uint8_t>(static_cast<uint8_t>(codec));
  uint64_t records = 0;
  if (codec == WireCodec::kPage) {
    // Zero-copy page transfer: the decomposed bytes ship as one block.
    // No record is ever visited — only this bulk append.
    w.WriteVarU64(payload.size());
    w.WriteBytes(payload.data(), payload.size());
  } else {
    // Kryo-like record serialization: each record framed and copied on
    // its own, the per-record cost Deca's decomposition eliminates.
    size_t off = 0;
    auto put_record = [&](uint32_t len) {
      w.WriteVarU64(len);
      w.WriteBytes(payload.data() + off, len);
      off += len;
      ++records;
    };
    if (meta.fixed_record_bytes > 0) {
      uint64_t count = payload.size() / meta.fixed_record_bytes;
      w.WriteVarU64(count);
      for (uint64_t i = 0; i < count; ++i) put_record(meta.fixed_record_bytes);
    } else if (!meta.record_lens.empty()) {
      w.WriteVarU64(meta.record_lens.size());
      for (uint32_t len : meta.record_lens) put_record(len);
    } else {
      // No boundaries known: the whole chunk is one record.
      w.WriteVarU64(1);
      put_record(static_cast<uint32_t>(payload.size()));
    }
  }
  if (stats != nullptr) {
    stats->payload_bytes.fetch_add(payload.size(), std::memory_order_relaxed);
    stats->records_encoded.fetch_add(records, std::memory_order_relaxed);
    stats->encode_ns.fetch_add(
        static_cast<uint64_t>(sw.ElapsedMillis() * 1e6),
        std::memory_order_relaxed);
  }
  return w.TakeBuffer();
}

bool DecodeFrame(const std::vector<uint8_t>& frame,
                 std::vector<uint8_t>* payload, NetStats* stats) {
  Stopwatch sw;
  ByteReader r(frame.data(), frame.size());
  if (r.AtEnd()) return false;
  auto codec = static_cast<WireCodec>(r.Read<uint8_t>());
  uint64_t records = 0;
  payload->clear();
  if (codec == WireCodec::kPage) {
    uint64_t len = r.ReadVarU64();
    if (len != r.remaining()) return false;
    payload->resize(len);
    r.ReadBytes(payload->data(), len);
  } else if (codec == WireCodec::kRecord) {
    uint64_t count = r.ReadVarU64();
    for (uint64_t i = 0; i < count; ++i) {
      if (r.AtEnd()) return false;
      uint64_t len = r.ReadVarU64();
      if (len > r.remaining()) return false;
      size_t off = payload->size();
      payload->resize(off + len);
      r.ReadBytes(payload->data() + off, len);
      ++records;
    }
    if (!r.AtEnd()) return false;
  } else {
    return false;
  }
  if (stats != nullptr) {
    stats->records_decoded.fetch_add(records, std::memory_order_relaxed);
    stats->decode_ns.fetch_add(
        static_cast<uint64_t>(sw.ElapsedMillis() * 1e6),
        std::memory_order_relaxed);
  }
  return true;
}

}  // namespace deca::net
