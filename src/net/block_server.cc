#include "net/block_server.h"

#include <algorithm>

namespace deca::net {

namespace {

std::vector<uint8_t> ErrorResponse(WireStatus status) {
  ByteWriter body;
  body.Write<uint8_t>(static_cast<uint8_t>(MsgType::kErrorResponse));
  body.Write<uint8_t>(static_cast<uint8_t>(status));
  return FrameMessage(body);
}

}  // namespace

void BlockServer::Register(int shuffle_id, int reducer, int map_partition,
                           std::vector<uint8_t> frame,
                           uint64_t payload_bytes) {
  std::lock_guard<std::mutex> lock(mu_);
  Frame& f = frames_[{shuffle_id, reducer, map_partition}];
  f.bytes = std::move(frame);
  f.payload_bytes = payload_bytes;
}

void BlockServer::Drop(int shuffle_id, int map_partition) {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto it = frames_.lower_bound({shuffle_id, 0, 0});
       it != frames_.end() && std::get<0>(it->first) == shuffle_id;) {
    if (std::get<2>(it->first) == map_partition) {
      it = frames_.erase(it);
    } else {
      ++it;
    }
  }
}

void BlockServer::Release(int shuffle_id) {
  std::lock_guard<std::mutex> lock(mu_);
  auto begin = frames_.lower_bound({shuffle_id, 0, 0});
  auto end = frames_.lower_bound({shuffle_id + 1, 0, 0});
  frames_.erase(begin, end);
}

uint64_t BlockServer::PayloadBytes(int shuffle_id) const {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t total = 0;
  for (auto it = frames_.lower_bound({shuffle_id, 0, 0});
       it != frames_.end() && std::get<0>(it->first) == shuffle_id; ++it) {
    total += it->second.payload_bytes;
  }
  return total;
}

std::vector<uint8_t> BlockServer::HandleRequest(
    const std::vector<uint8_t>& request) {
  ByteReader body(nullptr, 0);
  if (!UnframeMessage(request, &body) || body.AtEnd()) {
    return ErrorResponse(WireStatus::kNotFound);
  }
  auto type = static_cast<MsgType>(body.Read<uint8_t>());
  switch (type) {
    case MsgType::kIndexRequest:
      return HandleIndex(&body);
    case MsgType::kFetchRequest:
      return HandleFetch(&body);
    case MsgType::kFailProbe:
      // The doomed probe of an injected fetch failure: the request
      // travels the wire and is always refused, so retry/backoff logic
      // exercises the full transport path deterministically.
      return ErrorResponse(WireStatus::kInjectedFailure);
    default:
      return ErrorResponse(WireStatus::kNotFound);
  }
}

std::vector<uint8_t> BlockServer::HandleIndex(ByteReader* body) {
  int shuffle_id = static_cast<int>(body->ReadVarU64());
  int reducer = static_cast<int>(body->ReadVarU64());
  ByteWriter out;
  out.Write<uint8_t>(static_cast<uint8_t>(MsgType::kIndexResponse));
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::pair<int, uint64_t>> entries;
  for (auto it = frames_.lower_bound({shuffle_id, reducer, 0});
       it != frames_.end() && std::get<0>(it->first) == shuffle_id &&
       std::get<1>(it->first) == reducer;
       ++it) {
    entries.emplace_back(std::get<2>(it->first), it->second.bytes.size());
  }
  out.WriteVarU64(entries.size());
  for (const auto& [map_partition, frame_bytes] : entries) {
    out.WriteVarU64(static_cast<uint64_t>(map_partition));
    out.WriteVarU64(frame_bytes);
  }
  return FrameMessage(out);
}

std::vector<uint8_t> BlockServer::HandleFetch(ByteReader* body) {
  int shuffle_id = static_cast<int>(body->ReadVarU64());
  int reducer = static_cast<int>(body->ReadVarU64());
  int map_partition = static_cast<int>(body->ReadVarU64());
  uint64_t offset = body->ReadVarU64();
  uint64_t max_bytes = body->ReadVarU64();
  std::lock_guard<std::mutex> lock(mu_);
  auto it = frames_.find({shuffle_id, reducer, map_partition});
  if (it == frames_.end() || offset > it->second.bytes.size()) {
    return ErrorResponse(WireStatus::kNotFound);
  }
  const std::vector<uint8_t>& frame = it->second.bytes;
  uint64_t slice = std::min<uint64_t>(max_bytes, frame.size() - offset);
  ByteWriter out;
  out.Write<uint8_t>(static_cast<uint8_t>(MsgType::kFetchResponse));
  out.Write<uint8_t>(static_cast<uint8_t>(WireStatus::kOk));
  out.WriteVarU64(frame.size());
  out.WriteVarU64(slice);
  out.WriteBytes(frame.data() + offset, slice);
  return FrameMessage(out);
}

}  // namespace deca::net
