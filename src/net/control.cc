#include "net/control.h"

#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>

#include "net/socket_io.h"

namespace deca::net {

RpcServer::RpcServer(Handler handler) : handler_(std::move(handler)) {
  listen_fd_ = ListenLoopback(&port_);
  accept_thread_ = std::thread([this] { AcceptLoop(); });
}

RpcServer::~RpcServer() { Stop(); }

void RpcServer::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_) return;
    stopping_ = true;
    if (listen_fd_ >= 0) ::shutdown(listen_fd_, SHUT_RDWR);
    for (int fd : conn_fds_) ::shutdown(fd, SHUT_RDWR);
  }
  if (accept_thread_.joinable()) accept_thread_.join();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  std::vector<std::thread> threads;
  std::vector<int> fds;
  {
    std::lock_guard<std::mutex> lock(mu_);
    threads.swap(conn_threads_);
    fds.swap(conn_fds_);
  }
  for (auto& t : threads) {
    if (t.joinable()) t.join();
  }
  for (int fd : fds) ::close(fd);
}

void RpcServer::AcceptLoop() {
  while (true) {
    int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // listen socket shut down
    }
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_) {
      ::close(fd);
      return;
    }
    conn_fds_.push_back(fd);
    conn_threads_.emplace_back([this, fd] { ServeConnection(fd); });
  }
}

void RpcServer::ServeConnection(int fd) {
  std::vector<uint8_t> request;
  while (ReadFramed(fd, &request)) {
    std::vector<uint8_t> response = handler_(request);
    if (!WriteAll(fd, response.data(), response.size())) break;
  }
}

RpcClient::RpcClient(uint16_t port, int connect_attempts, int backoff_base_ms)
    : port_(port),
      connect_attempts_(connect_attempts),
      backoff_base_ms_(backoff_base_ms) {}

RpcClient::~RpcClient() { Close(); }

void RpcClient::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

std::vector<uint8_t> RpcClient::Call(const std::vector<uint8_t>& frame,
                                     int deadline_ms) {
  if (fd_ < 0) {
    fd_ = DialLoopbackRetry(port_, connect_attempts_, backoff_base_ms_);
  }
  if (!WriteAll(fd_, frame.data(), frame.size())) {
    Close();
    throw RpcError("control rpc: send failed (peer down)",
                   /*timed_out=*/false);
  }
  std::vector<uint8_t> response;
  bool timed_out = false;
  if (!ReadFramedDeadline(fd_, &response, deadline_ms, &timed_out)) {
    Close();
    throw RpcError(timed_out ? "control rpc: response deadline exceeded"
                             : "control rpc: connection lost mid-call",
                   timed_out);
  }
  return response;
}

}  // namespace deca::net
