#ifndef DECA_NET_TRANSPORT_H_
#define DECA_NET_TRANSPORT_H_

#include <cstdint>
#include <functional>
#include <vector>

namespace deca::net {

/// Serves one endpoint's requests: takes a framed request message and
/// returns the framed response message. Handlers must be thread-safe —
/// calls can arrive concurrently from different client endpoints.
using MessageHandler =
    std::function<std::vector<uint8_t>(const std::vector<uint8_t>& request)>;

/// Pluggable synchronous message transport between numbered endpoints
/// (one per executor). Implementations move the exact framed bytes
/// produced by FrameMessage, so wire byte accounting is
/// transport-independent.
///
/// Ordering contract: messages between one (from, to) endpoint pair are
/// FIFO — a later Call on the same link cannot overtake an earlier one.
/// Calls on distinct links may interleave freely.
class Transport {
 public:
  virtual ~Transport() = default;

  /// Installs `handler` as endpoint `endpoint`'s server. Must be called
  /// for every endpoint before the first Call targeting it; not
  /// thread-safe against in-flight Calls.
  virtual void Bind(int endpoint, MessageHandler handler) = 0;

  /// Sends `request` from endpoint `from` to endpoint `to` and blocks for
  /// the response. Thread-safe. Both buffers are complete framed
  /// messages.
  virtual std::vector<uint8_t> Call(int from, int to,
                                    const std::vector<uint8_t>& request) = 0;

  virtual int num_endpoints() const = 0;
};

}  // namespace deca::net

#endif  // DECA_NET_TRANSPORT_H_
