#include "net/tcp_transport.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>

#include "common/bytes.h"

namespace deca::net {

namespace {

bool WriteAll(int fd, const uint8_t* data, size_t size) {
  size_t sent = 0;
  while (sent < size) {
    ssize_t n = ::send(fd, data + sent, size - sent, MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return false;
    }
    sent += static_cast<size_t>(n);
  }
  return true;
}

bool ReadAll(int fd, uint8_t* data, size_t size) {
  size_t got = 0;
  while (got < size) {
    ssize_t n = ::recv(fd, data + got, size - got, 0);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return false;
    }
    got += static_cast<size_t>(n);
  }
  return true;
}

/// Reads one varint-framed message (header + body) off the socket into
/// `wire`, preserving the exact on-wire bytes. Returns false on EOF or a
/// malformed header.
bool ReadFramed(int fd, std::vector<uint8_t>* wire) {
  wire->clear();
  uint64_t len = 0;
  int shift = 0;
  while (true) {
    uint8_t byte;
    if (!ReadAll(fd, &byte, 1)) return false;
    wire->push_back(byte);
    len |= static_cast<uint64_t>(byte & 0x7f) << shift;
    if ((byte & 0x80) == 0) break;
    shift += 7;
    if (shift > 63) return false;
  }
  if (len > (64u << 20)) return false;  // sanity cap: 64 MB per message
  size_t header = wire->size();
  wire->resize(header + len);
  return ReadAll(fd, wire->data() + header, len);
}

}  // namespace

TcpTransport::TcpTransport(int num_endpoints, NetStats* stats)
    : num_endpoints_(num_endpoints), stats_(stats) {
  endpoints_.reserve(static_cast<size_t>(num_endpoints));
  for (int i = 0; i < num_endpoints; ++i) {
    auto ep = std::make_unique<Endpoint>();
    ep->listen_fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (ep->listen_fd < 0) throw std::runtime_error("tcp: socket() failed");
    int one = 1;
    ::setsockopt(ep->listen_fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = 0;  // ephemeral
    if (::bind(ep->listen_fd, reinterpret_cast<sockaddr*>(&addr),
               sizeof(addr)) != 0 ||
        ::listen(ep->listen_fd, 64) != 0) {
      throw std::runtime_error("tcp: bind/listen failed");
    }
    socklen_t addr_len = sizeof(addr);
    ::getsockname(ep->listen_fd, reinterpret_cast<sockaddr*>(&addr),
                  &addr_len);
    ep->port = ntohs(addr.sin_port);
    endpoints_.push_back(std::move(ep));
  }
}

TcpTransport::~TcpTransport() {
  // Phase 1: shutdown() every socket so blocked accept()/recv() calls
  // return and the threads exit. No fd is closed yet — closing a
  // descriptor another thread is blocked on races with the syscall (and
  // the number could be reused mid-call), so close waits for the joins.
  for (auto& ep : endpoints_) {
    if (ep->listen_fd >= 0) ::shutdown(ep->listen_fd, SHUT_RDWR);
    std::lock_guard<std::mutex> lock(ep->conn_mu);
    for (int fd : ep->conn_fds) ::shutdown(fd, SHUT_RDWR);
  }
  {
    std::lock_guard<std::mutex> lock(clients_mu_);
    for (auto& [key, conn] : clients_) {
      std::lock_guard<std::mutex> conn_lock(conn->mu);
      if (conn->fd >= 0) ::shutdown(conn->fd, SHUT_RDWR);
    }
  }
  // Phase 2: join every thread, then close its sockets.
  for (auto& ep : endpoints_) {
    if (ep->accept_thread.joinable()) ep->accept_thread.join();
    if (ep->listen_fd >= 0) {
      ::close(ep->listen_fd);
      ep->listen_fd = -1;
    }
    std::vector<std::thread> threads;
    std::vector<int> fds;
    {
      std::lock_guard<std::mutex> lock(ep->conn_mu);
      threads.swap(ep->conn_threads);
      fds.swap(ep->conn_fds);
    }
    for (auto& t : threads) {
      if (t.joinable()) t.join();
    }
    for (int fd : fds) ::close(fd);
  }
  {
    std::lock_guard<std::mutex> lock(clients_mu_);
    for (auto& [key, conn] : clients_) {
      std::lock_guard<std::mutex> conn_lock(conn->mu);
      if (conn->fd >= 0) {
        ::close(conn->fd);
        conn->fd = -1;
      }
    }
  }
}

void TcpTransport::Bind(int endpoint, MessageHandler handler) {
  Endpoint* ep = endpoints_[static_cast<size_t>(endpoint)].get();
  ep->handler = std::move(handler);
  int listen_fd = ep->listen_fd;
  ep->accept_thread =
      std::thread([this, ep, listen_fd] { AcceptLoop(ep, listen_fd); });
}

void TcpTransport::AcceptLoop(Endpoint* ep, int listen_fd) {
  while (true) {
    int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // listen socket closed: shutting down
    }
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    std::lock_guard<std::mutex> lock(ep->conn_mu);
    ep->conn_fds.push_back(fd);
    ep->conn_threads.emplace_back(
        [this, ep, fd] { ServeConnection(ep, fd); });
  }
}

void TcpTransport::ServeConnection(Endpoint* ep, int fd) {
  std::vector<uint8_t> request;
  while (ReadFramed(fd, &request)) {
    std::vector<uint8_t> response = ep->handler(request);
    if (!WriteAll(fd, response.data(), response.size())) break;
  }
}

int TcpTransport::ConnectTo(int to) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) throw std::runtime_error("tcp: socket() failed");
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(endpoints_[static_cast<size_t>(to)]->port);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    throw std::runtime_error("tcp: connect() failed");
  }
  return fd;
}

std::vector<uint8_t> TcpTransport::Call(int from, int to,
                                        const std::vector<uint8_t>& request) {
  ClientConn* conn;
  {
    std::lock_guard<std::mutex> lock(clients_mu_);
    auto& slot = clients_[{from, to}];
    if (!slot) slot = std::make_unique<ClientConn>();
    conn = slot.get();
  }
  std::lock_guard<std::mutex> lock(conn->mu);
  if (conn->fd < 0) conn->fd = ConnectTo(to);
  std::vector<uint8_t> response;
  if (!WriteAll(conn->fd, request.data(), request.size()) ||
      !ReadFramed(conn->fd, &response)) {
    ::close(conn->fd);
    conn->fd = -1;
    throw std::runtime_error("tcp: call failed (peer closed connection)");
  }
  if (stats_ != nullptr) {
    stats_->messages.fetch_add(1, std::memory_order_relaxed);
    stats_->wire_bytes.fetch_add(request.size() + response.size(),
                                 std::memory_order_relaxed);
  }
  return response;
}

uint16_t TcpTransport::port(int endpoint) const {
  return endpoints_[static_cast<size_t>(endpoint)]->port;
}

}  // namespace deca::net
