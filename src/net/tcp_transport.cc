#include "net/tcp_transport.h"

#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <stdexcept>

#include "net/socket_io.h"

namespace deca::net {

TcpTransport::TcpTransport(int num_endpoints, NetStats* stats)
    : num_endpoints_(num_endpoints), stats_(stats) {
  endpoints_.reserve(static_cast<size_t>(num_endpoints));
  for (int i = 0; i < num_endpoints; ++i) {
    auto ep = std::make_unique<Endpoint>();
    ep->listen_fd = ListenLoopback(&ep->port);
    endpoints_.push_back(std::move(ep));
  }
}

TcpTransport::~TcpTransport() {
  // Phase 1: shutdown() every socket so blocked accept()/recv() calls
  // return and the threads exit. No fd is closed yet — closing a
  // descriptor another thread is blocked on races with the syscall (and
  // the number could be reused mid-call), so close waits for the joins.
  for (auto& ep : endpoints_) {
    if (ep->listen_fd >= 0) ::shutdown(ep->listen_fd, SHUT_RDWR);
    std::lock_guard<std::mutex> lock(ep->conn_mu);
    for (int fd : ep->conn_fds) ::shutdown(fd, SHUT_RDWR);
  }
  {
    std::lock_guard<std::mutex> lock(clients_mu_);
    for (auto& [key, conn] : clients_) {
      std::lock_guard<std::mutex> conn_lock(conn->mu);
      if (conn->fd >= 0) ::shutdown(conn->fd, SHUT_RDWR);
    }
  }
  // Phase 2: join every thread, then close its sockets.
  for (auto& ep : endpoints_) {
    if (ep->accept_thread.joinable()) ep->accept_thread.join();
    if (ep->listen_fd >= 0) {
      ::close(ep->listen_fd);
      ep->listen_fd = -1;
    }
    std::vector<std::thread> threads;
    std::vector<int> fds;
    {
      std::lock_guard<std::mutex> lock(ep->conn_mu);
      threads.swap(ep->conn_threads);
      fds.swap(ep->conn_fds);
    }
    for (auto& t : threads) {
      if (t.joinable()) t.join();
    }
    for (int fd : fds) ::close(fd);
  }
  {
    std::lock_guard<std::mutex> lock(clients_mu_);
    for (auto& [key, conn] : clients_) {
      std::lock_guard<std::mutex> conn_lock(conn->mu);
      if (conn->fd >= 0) {
        ::close(conn->fd);
        conn->fd = -1;
      }
    }
  }
}

void TcpTransport::Bind(int endpoint, MessageHandler handler) {
  Endpoint* ep = endpoints_[static_cast<size_t>(endpoint)].get();
  ep->handler = std::move(handler);
  int listen_fd = ep->listen_fd;
  ep->accept_thread =
      std::thread([this, ep, listen_fd] { AcceptLoop(ep, listen_fd); });
}

void TcpTransport::AcceptLoop(Endpoint* ep, int listen_fd) {
  while (true) {
    int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // listen socket closed: shutting down
    }
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    std::lock_guard<std::mutex> lock(ep->conn_mu);
    ep->conn_fds.push_back(fd);
    ep->conn_threads.emplace_back(
        [this, ep, fd] { ServeConnection(ep, fd); });
  }
}

void TcpTransport::ServeConnection(Endpoint* ep, int fd) {
  std::vector<uint8_t> request;
  while (ReadFramed(fd, &request)) {
    std::vector<uint8_t> response = ep->handler(request);
    if (!WriteAll(fd, response.data(), response.size())) break;
  }
}

int TcpTransport::ConnectTo(int to) {
  // Throws the typed retryable ConnectError on refusal: endpoints here
  // live in-process, so a refusal is a hard bug upstream, but callers
  // that share this seam (the daemon mesh) reconnect-with-backoff on it.
  return DialLoopback(endpoints_[static_cast<size_t>(to)]->port);
}

std::vector<uint8_t> TcpTransport::Call(int from, int to,
                                        const std::vector<uint8_t>& request) {
  ClientConn* conn;
  {
    std::lock_guard<std::mutex> lock(clients_mu_);
    auto& slot = clients_[{from, to}];
    if (!slot) slot = std::make_unique<ClientConn>();
    conn = slot.get();
  }
  std::lock_guard<std::mutex> lock(conn->mu);
  if (conn->fd < 0) conn->fd = ConnectTo(to);
  std::vector<uint8_t> response;
  if (!WriteAll(conn->fd, request.data(), request.size()) ||
      !ReadFramed(conn->fd, &response)) {
    ::close(conn->fd);
    conn->fd = -1;
    throw std::runtime_error("tcp: call failed (peer closed connection)");
  }
  if (stats_ != nullptr) {
    stats_->messages.fetch_add(1, std::memory_order_relaxed);
    stats_->wire_bytes.fetch_add(request.size() + response.size(),
                                 std::memory_order_relaxed);
  }
  return response;
}

uint16_t TcpTransport::port(int endpoint) const {
  return endpoints_[static_cast<size_t>(endpoint)]->port;
}

}  // namespace deca::net
