#ifndef DECA_NET_NET_STATS_H_
#define DECA_NET_NET_STATS_H_

#include <atomic>
#include <cstdint>

namespace deca::net {

/// Point-in-time copy of a NetStats (plain integers/doubles, safe to pass
/// around after the run). All counters are deterministic functions of the
/// simulation (message and byte counts never depend on thread timing);
/// encode_ms / decode_ms are wall time and must be threshold-compared.
struct NetStatsSnapshot {
  uint64_t wire_bytes = 0;
  uint64_t payload_bytes = 0;
  uint64_t messages = 0;
  uint64_t index_requests = 0;
  uint64_t slice_requests = 0;
  uint64_t records_encoded = 0;
  uint64_t records_decoded = 0;
  uint64_t fetch_retries = 0;
  uint64_t injected_fetch_failures = 0;
  uint64_t flow_stalls = 0;
  uint64_t virtual_wire_us = 0;
  double encode_ms = 0;
  double decode_ms = 0;
};

/// Shared counters of one network plane (one per SparkContext): the
/// transport counts messages/bytes/virtual wire time, the shuffle service
/// counts codec work and fetch-path events. All fields are atomics so
/// worker threads on different executors can report concurrently; every
/// counter except the two *_ms wall times is deterministic (bit-identical
/// between sequential and parallel runs of the same seed).
class NetStats {
 public:
  /// Every framed byte that crossed the transport (requests + responses).
  std::atomic<uint64_t> wire_bytes{0};
  /// Shuffle chunk payload bytes deposited (pre-codec, what the local
  /// service would have stored).
  std::atomic<uint64_t> payload_bytes{0};
  /// Request/response round trips.
  std::atomic<uint64_t> messages{0};
  /// Reducer-side index lookups (one per (reducer, source executor)).
  std::atomic<uint64_t> index_requests{0};
  /// Chunked fetch slices issued by reducers.
  std::atomic<uint64_t> slice_requests{0};
  /// Records individually framed by the record-serialized codec. Stays 0
  /// under the page codec — the paper's serialization-elimination claim.
  std::atomic<uint64_t> records_encoded{0};
  std::atomic<uint64_t> records_decoded{0};
  /// Transport-level retries of doomed fetch probes (injected faults).
  std::atomic<uint64_t> fetch_retries{0};
  /// Injected fetch failures that travelled the transport path.
  std::atomic<uint64_t> injected_fetch_failures{0};
  /// Times the per-reducer in-flight window forced a smaller slice.
  std::atomic<uint64_t> flow_stalls{0};
  /// Simulated wire time (latency + bytes/bandwidth), accounted virtually
  /// so runs stay fast and deterministic.
  std::atomic<uint64_t> virtual_wire_us{0};
  /// Wall time spent encoding/decoding wire frames (codec cost).
  std::atomic<uint64_t> encode_ns{0};
  std::atomic<uint64_t> decode_ns{0};

  NetStatsSnapshot Snapshot() const {
    NetStatsSnapshot s;
    s.wire_bytes = wire_bytes.load(std::memory_order_relaxed);
    s.payload_bytes = payload_bytes.load(std::memory_order_relaxed);
    s.messages = messages.load(std::memory_order_relaxed);
    s.index_requests = index_requests.load(std::memory_order_relaxed);
    s.slice_requests = slice_requests.load(std::memory_order_relaxed);
    s.records_encoded = records_encoded.load(std::memory_order_relaxed);
    s.records_decoded = records_decoded.load(std::memory_order_relaxed);
    s.fetch_retries = fetch_retries.load(std::memory_order_relaxed);
    s.injected_fetch_failures =
        injected_fetch_failures.load(std::memory_order_relaxed);
    s.flow_stalls = flow_stalls.load(std::memory_order_relaxed);
    s.virtual_wire_us = virtual_wire_us.load(std::memory_order_relaxed);
    s.encode_ms =
        static_cast<double>(encode_ns.load(std::memory_order_relaxed)) / 1e6;
    s.decode_ms =
        static_cast<double>(decode_ns.load(std::memory_order_relaxed)) / 1e6;
    return s;
  }
};

}  // namespace deca::net

#endif  // DECA_NET_NET_STATS_H_
