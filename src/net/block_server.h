#ifndef DECA_NET_BLOCK_SERVER_H_
#define DECA_NET_BLOCK_SERVER_H_

#include <cstdint>
#include <map>
#include <mutex>
#include <tuple>
#include <vector>

#include "net/net_stats.h"
#include "net/wire.h"

namespace deca::net {

/// Per-executor registry of encoded map-output frames, plus the server
/// side of the shuffle wire protocol. Map tasks deposit frames keyed by
/// (shuffle, reducer, map_partition); reducers on any executor then ask
/// for the index of their reducer's frames and fetch each frame in
/// slices. The sorted map key keeps index responses ordered by map
/// partition, which is what makes network fetch results byte-identical
/// to the local shuffle's mapper-sorted chunk list.
class BlockServer {
 public:
  explicit BlockServer(NetStats* stats) : stats_(stats) {}

  /// Deposits one encoded frame. `payload_bytes` is the pre-codec chunk
  /// size (for total_bytes parity with the local service). Thread-safe.
  void Register(int shuffle_id, int reducer, int map_partition,
                std::vector<uint8_t> frame, uint64_t payload_bytes);

  /// Drops every frame produced by `map_partition` (executor loss).
  void Drop(int shuffle_id, int map_partition);

  /// Releases all frames of a finished shuffle.
  void Release(int shuffle_id);

  /// Sum of deposited pre-codec payload bytes for `shuffle_id`.
  uint64_t PayloadBytes(int shuffle_id) const;

  /// Serves one framed request message (kIndexRequest / kFetchRequest /
  /// kFailProbe) and returns the framed response. Thread-safe; this is
  /// the MessageHandler bound to the transport.
  std::vector<uint8_t> HandleRequest(const std::vector<uint8_t>& request);

 private:
  struct Frame {
    std::vector<uint8_t> bytes;
    uint64_t payload_bytes = 0;
  };
  using Key = std::tuple<int, int, int>;  // (shuffle, reducer, map_partition)

  std::vector<uint8_t> HandleIndex(ByteReader* body);
  std::vector<uint8_t> HandleFetch(ByteReader* body);

  mutable std::mutex mu_;
  std::map<Key, Frame> frames_;
  NetStats* stats_;
};

}  // namespace deca::net

#endif  // DECA_NET_BLOCK_SERVER_H_
