#ifndef DECA_NET_SOCKET_IO_H_
#define DECA_NET_SOCKET_IO_H_

#include <cstdint>
#include <stdexcept>
#include <vector>

namespace deca::net {

/// Typed, retryable connection failure: the peer's port did not accept
/// (refused, reset, or timed out). Reconnect paths — daemon registration,
/// heartbeat probes, mesh links to a respawning executor — catch this
/// specific type and back off instead of aborting the job. Permanent
/// socket-layer failures (no fds, bad address family) still throw plain
/// std::runtime_error and propagate.
class ConnectError : public std::runtime_error {
 public:
  ConnectError(uint16_t port, int error_code);

  uint16_t port() const { return port_; }
  int error_code() const { return error_code_; }
  /// Always true by construction: a refused connect may succeed later
  /// (the peer may still be binding, or a replacement daemon may be on
  /// its way up).
  bool retryable() const { return true; }

 private:
  uint16_t port_;
  int error_code_;
};

// EINTR-hardened socket helpers shared by every wire user (TcpTransport,
// the control-plane RPC layer, the executor mesh). All writes use
// MSG_NOSIGNAL so a dead peer surfaces as an error, never as SIGPIPE;
// every fd is opened close-on-exec so spawned daemons don't inherit the
// driver's sockets.

/// Writes exactly `size` bytes, retrying EINTR and short writes.
bool WriteAll(int fd, const uint8_t* data, size_t size);

/// Reads exactly `size` bytes, retrying EINTR and short reads. False on
/// EOF or error.
bool ReadAll(int fd, uint8_t* data, size_t size);

/// Reads one varint-framed message (header + body) off the socket into
/// `wire`, preserving the exact on-wire bytes. False on EOF, a malformed
/// header, or a body over the 64 MB sanity cap.
bool ReadFramed(int fd, std::vector<uint8_t>* wire);

/// ReadFramed with a whole-message deadline: false on timeout (sets
/// *timed_out when non-null), EOF, or error. `deadline_ms <= 0` means no
/// deadline.
bool ReadFramedDeadline(int fd, std::vector<uint8_t>* wire, int deadline_ms,
                        bool* timed_out);

/// Creates a listening socket on an ephemeral 127.0.0.1 port and stores
/// the port in `*port_out`. Throws std::runtime_error on failure.
int ListenLoopback(uint16_t* port_out, int backlog = 64);

/// Connects to 127.0.0.1:`port` with TCP_NODELAY. Throws ConnectError
/// when the peer refuses (retryable); std::runtime_error otherwise.
int DialLoopback(uint16_t port);

/// DialLoopback with up to `attempts` tries and exponential backoff
/// (backoff_base_ms, doubling per retry, capped at 500 ms per sleep).
/// Rethrows the last ConnectError when every attempt is refused.
int DialLoopbackRetry(uint16_t port, int attempts, int backoff_base_ms);

}  // namespace deca::net

#endif  // DECA_NET_SOCKET_IO_H_
