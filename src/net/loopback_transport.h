#ifndef DECA_NET_LOOPBACK_TRANSPORT_H_
#define DECA_NET_LOOPBACK_TRANSPORT_H_

#include <memory>
#include <mutex>
#include <vector>

#include "net/net_stats.h"
#include "net/transport.h"

namespace deca::net {

/// Knobs for the simulated wire. Latency and bandwidth are accounted as
/// *virtual* time in NetStats::virtual_wire_us — no thread ever sleeps —
/// so simulated-slow runs finish as fast as unsimulated ones and stay
/// deterministic.
struct LoopbackOptions {
  uint64_t latency_us = 0;       // per message round trip
  uint64_t bandwidth_mbps = 0;   // 0 = infinite
};

/// In-process transport: a Call invokes the target endpoint's handler
/// synchronously on the caller's thread, after serializing on the
/// (from, to) link mutex. The per-link mutex gives the FIFO ordering the
/// Transport contract requires while leaving distinct links concurrent.
class LoopbackTransport : public Transport {
 public:
  LoopbackTransport(int num_endpoints, LoopbackOptions options,
                    NetStats* stats);

  void Bind(int endpoint, MessageHandler handler) override;
  std::vector<uint8_t> Call(int from, int to,
                            const std::vector<uint8_t>& request) override;
  int num_endpoints() const override { return num_endpoints_; }

 private:
  struct Link {
    std::mutex mu;
  };

  int num_endpoints_;
  LoopbackOptions options_;
  NetStats* stats_;
  std::vector<MessageHandler> handlers_;
  std::vector<std::unique_ptr<Link>> links_;  // links_[from * n + to]
};

}  // namespace deca::net

#endif  // DECA_NET_LOOPBACK_TRANSPORT_H_
