#ifndef DECA_NET_TCP_TRANSPORT_H_
#define DECA_NET_TCP_TRANSPORT_H_

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "net/net_stats.h"
#include "net/transport.h"

namespace deca::net {

/// Real-socket transport for manual runs: every endpoint listens on a
/// 127.0.0.1 ephemeral port, an accept thread per endpoint spawns one
/// serving thread per inbound connection, and each (from, to) link keeps
/// one cached client connection whose mutex provides the contract's FIFO
/// ordering. Frames on the socket are varint length + body — the same
/// bytes FrameMessage produces, sent verbatim.
///
/// Determinism note: the bytes and counters match loopback exactly; only
/// wall time differs. Tier-1 tests use loopback, TCP is covered by a
/// small smoke test.
class TcpTransport : public Transport {
 public:
  /// Binds `num_endpoints` listen sockets immediately; throws
  /// std::runtime_error on socket failure.
  TcpTransport(int num_endpoints, NetStats* stats);
  ~TcpTransport() override;

  void Bind(int endpoint, MessageHandler handler) override;
  std::vector<uint8_t> Call(int from, int to,
                            const std::vector<uint8_t>& request) override;
  int num_endpoints() const override { return num_endpoints_; }

  /// The ephemeral port endpoint `endpoint` listens on (for tests).
  uint16_t port(int endpoint) const;

 private:
  struct Endpoint {
    int listen_fd = -1;
    uint16_t port = 0;
    MessageHandler handler;
    std::thread accept_thread;
    std::mutex conn_mu;
    std::vector<std::thread> conn_threads;
    std::vector<int> conn_fds;
  };
  struct ClientConn {
    std::mutex mu;
    int fd = -1;
  };

  /// `listen_fd` is the thread's own copy: the destructor overwrites
  /// ep->listen_fd while this loop may still be running, so the member
  /// must not be re-read here.
  void AcceptLoop(Endpoint* ep, int listen_fd);
  void ServeConnection(Endpoint* ep, int fd);
  int ConnectTo(int to);

  int num_endpoints_;
  NetStats* stats_;
  std::vector<std::unique_ptr<Endpoint>> endpoints_;
  std::mutex clients_mu_;
  std::map<std::pair<int, int>, std::unique_ptr<ClientConn>> clients_;
};

}  // namespace deca::net

#endif  // DECA_NET_TCP_TRANSPORT_H_
