#include "net/mesh_transport.h"

#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <stdexcept>

#include "common/logging.h"
#include "net/socket_io.h"

namespace deca::net {

MeshTransport::MeshTransport(int num_endpoints, int local_endpoint,
                             const MeshOptions& options, NetStats* stats)
    : num_endpoints_(num_endpoints),
      local_endpoint_(local_endpoint),
      options_(options),
      stats_(stats) {
  DECA_CHECK(local_endpoint >= 0 && local_endpoint < num_endpoints);
  listen_fd_ = ListenLoopback(&local_port_);
}

MeshTransport::~MeshTransport() {
  // Same two-phase teardown as TcpTransport: shutdown() unblocks every
  // thread, joins happen before any close().
  {
    std::lock_guard<std::mutex> lock(conn_mu_);
    stopping_ = true;
    if (listen_fd_ >= 0) ::shutdown(listen_fd_, SHUT_RDWR);
    for (int fd : conn_fds_) ::shutdown(fd, SHUT_RDWR);
  }
  {
    std::lock_guard<std::mutex> lock(peers_mu_);
    for (auto& [ep, conn] : peer_conns_) {
      std::lock_guard<std::mutex> conn_lock(conn->mu);
      if (conn->fd >= 0) ::shutdown(conn->fd, SHUT_RDWR);
    }
  }
  if (accept_thread_.joinable()) accept_thread_.join();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  std::vector<std::thread> threads;
  std::vector<int> fds;
  {
    std::lock_guard<std::mutex> lock(conn_mu_);
    threads.swap(conn_threads_);
    fds.swap(conn_fds_);
  }
  for (auto& t : threads) {
    if (t.joinable()) t.join();
  }
  for (int fd : fds) ::close(fd);
  {
    std::lock_guard<std::mutex> lock(peers_mu_);
    for (auto& [ep, conn] : peer_conns_) {
      std::lock_guard<std::mutex> conn_lock(conn->mu);
      if (conn->fd >= 0) {
        ::close(conn->fd);
        conn->fd = -1;
      }
    }
  }
}

void MeshTransport::Bind(int endpoint, MessageHandler handler) {
  DECA_CHECK_EQ(endpoint, local_endpoint_);
  handler_ = std::move(handler);
  accept_thread_ = std::thread([this] { AcceptLoop(); });
}

void MeshTransport::AcceptLoop() {
  while (true) {
    int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // listen socket shut down
    }
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    std::lock_guard<std::mutex> lock(conn_mu_);
    if (stopping_) {
      ::close(fd);
      return;
    }
    conn_fds_.push_back(fd);
    conn_threads_.emplace_back([this, fd] { ServeConnection(fd); });
  }
}

void MeshTransport::ServeConnection(int fd) {
  std::vector<uint8_t> request;
  while (ReadFramed(fd, &request)) {
    std::vector<uint8_t> response = handler_(request);
    if (!WriteAll(fd, response.data(), response.size())) break;
  }
}

void MeshTransport::UpdatePeers(
    const std::vector<std::pair<int, uint16_t>>& peers) {
  std::lock_guard<std::mutex> lock(peers_mu_);
  for (const auto& [endpoint, port] : peers) {
    auto it = peer_ports_.find(endpoint);
    if (it != peer_ports_.end() && it->second == port) continue;
    peer_ports_[endpoint] = port;
    // A respawned peer listens on a new port: the cached connection (if
    // any) points at the dead process, so drop it.
    auto conn_it = peer_conns_.find(endpoint);
    if (conn_it != peer_conns_.end()) {
      std::lock_guard<std::mutex> conn_lock(conn_it->second->mu);
      if (conn_it->second->fd >= 0) {
        ::close(conn_it->second->fd);
        conn_it->second->fd = -1;
      }
    }
  }
}

std::vector<uint8_t> MeshTransport::Call(int from, int to,
                                         const std::vector<uint8_t>& request) {
  DECA_CHECK_EQ(from, local_endpoint_);
  std::vector<uint8_t> response;
  if (to == local_endpoint_) {
    response = handler_(request);
  } else {
    uint16_t port = 0;
    PeerConn* conn = nullptr;
    {
      std::lock_guard<std::mutex> lock(peers_mu_);
      auto it = peer_ports_.find(to);
      if (it == peer_ports_.end()) {
        throw std::runtime_error("mesh: no peer address for endpoint " +
                                 std::to_string(to));
      }
      port = it->second;
      auto& slot = peer_conns_[to];
      if (!slot) slot = std::make_unique<PeerConn>();
      conn = slot.get();
    }
    std::lock_guard<std::mutex> conn_lock(conn->mu);
    if (conn->fd < 0) {
      conn->fd = DialLoopbackRetry(port, options_.connect_attempts,
                                   options_.backoff_base_ms);
    }
    bool timed_out = false;
    if (!WriteAll(conn->fd, request.data(), request.size()) ||
        !ReadFramedDeadline(conn->fd, &response, options_.deadline_ms,
                            &timed_out)) {
      ::close(conn->fd);
      conn->fd = -1;
      // Surface as the typed retryable error: the peer likely died and
      // the shuffle layer turns this into a bounded-retry fetch failure.
      throw ConnectError(port, timed_out ? ETIMEDOUT : ECONNRESET);
    }
  }
  if (stats_ != nullptr) {
    stats_->messages.fetch_add(1, std::memory_order_relaxed);
    stats_->wire_bytes.fetch_add(request.size() + response.size(),
                                 std::memory_order_relaxed);
  }
  return response;
}

}  // namespace deca::net
