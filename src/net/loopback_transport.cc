#include "net/loopback_transport.h"

#include <cassert>

namespace deca::net {

LoopbackTransport::LoopbackTransport(int num_endpoints,
                                     LoopbackOptions options, NetStats* stats)
    : num_endpoints_(num_endpoints),
      options_(options),
      stats_(stats),
      handlers_(static_cast<size_t>(num_endpoints)) {
  links_.reserve(static_cast<size_t>(num_endpoints) * num_endpoints);
  for (int i = 0; i < num_endpoints * num_endpoints; ++i) {
    links_.push_back(std::make_unique<Link>());
  }
}

void LoopbackTransport::Bind(int endpoint, MessageHandler handler) {
  assert(endpoint >= 0 && endpoint < num_endpoints_);
  handlers_[static_cast<size_t>(endpoint)] = std::move(handler);
}

std::vector<uint8_t> LoopbackTransport::Call(
    int from, int to, const std::vector<uint8_t>& request) {
  assert(from >= 0 && from < num_endpoints_);
  assert(to >= 0 && to < num_endpoints_);
  Link& link = *links_[static_cast<size_t>(from) * num_endpoints_ + to];
  std::lock_guard<std::mutex> lock(link.mu);
  const MessageHandler& handler = handlers_[static_cast<size_t>(to)];
  assert(handler);
  std::vector<uint8_t> response = handler(request);
  if (stats_ != nullptr) {
    uint64_t bytes = request.size() + response.size();
    stats_->messages.fetch_add(1, std::memory_order_relaxed);
    stats_->wire_bytes.fetch_add(bytes, std::memory_order_relaxed);
    uint64_t wire_us = options_.latency_us;
    if (options_.bandwidth_mbps > 0) {
      // bytes * 8 bits / (mbps * 1e6 bit/s) seconds -> microseconds.
      wire_us += bytes * 8 / options_.bandwidth_mbps;
    }
    if (wire_us > 0) {
      stats_->virtual_wire_us.fetch_add(wire_us, std::memory_order_relaxed);
    }
  }
  return response;
}

}  // namespace deca::net
