#include "net/socket_io.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <string>
#include <thread>

namespace deca::net {

namespace {

void SetCloexec(int fd) { ::fcntl(fd, F_SETFD, FD_CLOEXEC); }

int64_t NowMs() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// ReadAll against an absolute steady-clock deadline (deadline_at_ms <= 0
/// disables it). Uses poll() so a stuck peer cannot block forever.
bool ReadAllDeadline(int fd, uint8_t* data, size_t size,
                     int64_t deadline_at_ms, bool* timed_out) {
  size_t got = 0;
  while (got < size) {
    if (deadline_at_ms > 0) {
      int64_t left = deadline_at_ms - NowMs();
      if (left <= 0) {
        if (timed_out != nullptr) *timed_out = true;
        return false;
      }
      pollfd pfd{};
      pfd.fd = fd;
      pfd.events = POLLIN;
      int pr = ::poll(&pfd, 1, static_cast<int>(left));
      if (pr < 0) {
        if (errno == EINTR) continue;
        return false;
      }
      if (pr == 0) {
        if (timed_out != nullptr) *timed_out = true;
        return false;
      }
    }
    ssize_t n = ::recv(fd, data + got, size - got, 0);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return false;
    }
    got += static_cast<size_t>(n);
  }
  return true;
}

bool ReadFramedAt(int fd, std::vector<uint8_t>* wire, int64_t deadline_at_ms,
                  bool* timed_out) {
  wire->clear();
  uint64_t len = 0;
  int shift = 0;
  while (true) {
    uint8_t byte;
    if (!ReadAllDeadline(fd, &byte, 1, deadline_at_ms, timed_out)) {
      return false;
    }
    wire->push_back(byte);
    len |= static_cast<uint64_t>(byte & 0x7f) << shift;
    if ((byte & 0x80) == 0) break;
    shift += 7;
    if (shift > 63) return false;
  }
  if (len > (64u << 20)) return false;  // sanity cap: 64 MB per message
  size_t header = wire->size();
  wire->resize(header + len);
  return ReadAllDeadline(fd, wire->data() + header, len, deadline_at_ms,
                         timed_out);
}

}  // namespace

ConnectError::ConnectError(uint16_t port, int error_code)
    : std::runtime_error("connect to 127.0.0.1:" + std::to_string(port) +
                         " failed: " + std::strerror(error_code) +
                         " (retryable)"),
      port_(port),
      error_code_(error_code) {}

bool WriteAll(int fd, const uint8_t* data, size_t size) {
  size_t sent = 0;
  while (sent < size) {
    ssize_t n = ::send(fd, data + sent, size - sent, MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return false;
    }
    sent += static_cast<size_t>(n);
  }
  return true;
}

bool ReadAll(int fd, uint8_t* data, size_t size) {
  return ReadAllDeadline(fd, data, size, /*deadline_at_ms=*/0, nullptr);
}

bool ReadFramed(int fd, std::vector<uint8_t>* wire) {
  return ReadFramedAt(fd, wire, /*deadline_at_ms=*/0, nullptr);
}

bool ReadFramedDeadline(int fd, std::vector<uint8_t>* wire, int deadline_ms,
                        bool* timed_out) {
  if (timed_out != nullptr) *timed_out = false;
  int64_t at = deadline_ms > 0 ? NowMs() + deadline_ms : 0;
  return ReadFramedAt(fd, wire, at, timed_out);
}

int ListenLoopback(uint16_t* port_out, int backlog) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) throw std::runtime_error("socket() failed");
  SetCloexec(fd);
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = 0;  // ephemeral
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0 ||
      ::listen(fd, backlog) != 0) {
    ::close(fd);
    throw std::runtime_error("bind/listen failed");
  }
  socklen_t addr_len = sizeof(addr);
  ::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &addr_len);
  if (port_out != nullptr) *port_out = ntohs(addr.sin_port);
  return fd;
}

int DialLoopback(uint16_t port) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) throw std::runtime_error("socket() failed");
  SetCloexec(fd);
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  while (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
         0) {
    if (errno == EINTR) continue;
    int err = errno;
    ::close(fd);
    throw ConnectError(port, err);
  }
  return fd;
}

int DialLoopbackRetry(uint16_t port, int attempts, int backoff_base_ms) {
  if (attempts < 1) attempts = 1;
  int backoff = backoff_base_ms > 0 ? backoff_base_ms : 1;
  for (int i = 0;; ++i) {
    try {
      return DialLoopback(port);
    } catch (const ConnectError&) {
      if (i + 1 >= attempts) throw;
    }
    std::this_thread::sleep_for(
        std::chrono::milliseconds(std::min(backoff, 500)));
    backoff *= 2;
  }
}

}  // namespace deca::net
