#ifndef DECA_NET_MESH_TRANSPORT_H_
#define DECA_NET_MESH_TRANSPORT_H_

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

#include "net/net_stats.h"
#include "net/transport.h"

namespace deca::net {

struct MeshOptions {
  /// Connect retry budget toward a peer that is still binding (or being
  /// respawned by the driver).
  int connect_attempts = 25;
  int backoff_base_ms = 20;
  /// Per-call response deadline; <= 0 disables.
  int deadline_ms = 20000;
};

/// The multi-process data plane: a Transport where exactly one endpoint
/// (`local_endpoint`) is hosted in this process and every other endpoint
/// is a peer daemon reachable over 127.0.0.1. The local endpoint listens
/// on an ephemeral port immediately (its port is advertised to the driver
/// during registration); peer addresses arrive later via UpdatePeers and
/// may change when the driver respawns a crashed executor — stale cached
/// connections are dropped on update.
///
/// Call(from == local, to == local) dispatches the bound handler
/// directly; remote calls move the exact framed bytes. Failures toward a
/// dead peer throw ConnectError (typed, retryable) so the shuffle layer
/// can convert them into a retryable fetch failure instead of aborting.
class MeshTransport : public Transport {
 public:
  MeshTransport(int num_endpoints, int local_endpoint,
                const MeshOptions& options, NetStats* stats);
  ~MeshTransport() override;

  /// Only `local_endpoint` may be bound in this process.
  void Bind(int endpoint, MessageHandler handler) override;
  std::vector<uint8_t> Call(int from, int to,
                            const std::vector<uint8_t>& request) override;
  int num_endpoints() const override { return num_endpoints_; }

  uint16_t local_port() const { return local_port_; }
  int local_endpoint() const { return local_endpoint_; }

  /// Installs/refreshes the peer table: (endpoint, port) pairs. A changed
  /// port closes any cached connection to that endpoint. Thread-safe.
  void UpdatePeers(const std::vector<std::pair<int, uint16_t>>& peers);

 private:
  struct PeerConn {
    std::mutex mu;
    int fd = -1;
  };

  void AcceptLoop();
  void ServeConnection(int fd);

  int num_endpoints_;
  int local_endpoint_;
  MeshOptions options_;
  NetStats* stats_;

  MessageHandler handler_;
  int listen_fd_ = -1;
  uint16_t local_port_ = 0;
  std::thread accept_thread_;
  std::mutex conn_mu_;
  bool stopping_ = false;
  std::vector<int> conn_fds_;
  std::vector<std::thread> conn_threads_;

  std::mutex peers_mu_;
  std::map<int, uint16_t> peer_ports_;
  std::map<int, std::unique_ptr<PeerConn>> peer_conns_;
};

}  // namespace deca::net

#endif  // DECA_NET_MESH_TRANSPORT_H_
